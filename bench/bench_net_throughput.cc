// Network serving throughput: closed-loop load through the TCP front end
// (InflexServer + wire protocol) measured from the client side, so every
// latency includes framing, the socket round trip, admission queueing, and
// the engine itself. Two scenarios land in the `net` section of
// BENCH_serving.json:
//  - scaling rows: 1/2/4/8 concurrent connections against a well-provisioned
//    server (no shedding expected) — the wire-tax counterpart of the
//    in-process rows that bench_serving_throughput emits;
//  - an overload row: many closed-loop connections against one slow worker
//    and a tiny admission queue, where the server must shed with kOverloaded
//    instead of queueing unboundedly — the shed rate and the throughput the
//    surviving requests still get are the artifact.
//
// Run bench_serving_throughput first: this binary splices `net` into the
// BENCH_serving.json it wrote.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "data/workload.h"
#include "inflex/query_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace inflex;                // NOLINT
using namespace inflex::benchsupport;  // NOLINT

namespace {

/// A serving trace of `total` requests over `unique` distinct mixtures (the
/// same re-submission-heavy shape bench_serving_throughput uses).
std::vector<core::QueryRequest> MakeTrace(const Testbed& tb, size_t unique,
                                          size_t total, size_t k) {
  data::QueryWorkloadOptions wopts;
  wopts.num_data_driven = unique / 2;
  wopts.num_uniform = unique - wopts.num_data_driven;
  wopts.seed = 1303;
  auto workload = data::GenerateQueryWorkload(tb.dataset->catalog, wopts);
  std::vector<core::QueryRequest> trace;
  if (!workload.ok()) return trace;
  const auto& qs = workload.ValueOrDie().queries;
  Rng rng(77);
  trace.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    core::QueryRequest r;
    r.item = qs[i < qs.size() ? i : rng.UniformInt(qs.size())];
    r.k = k;
    trace.push_back(std::move(r));
  }
  return trace;
}

struct LoopResult {
  size_t requests = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t failed = 0;
  double wall_s = 0.0;
  /// Client-observed latencies of OK responses (wire + queue + engine), ms.
  std::vector<double> latencies_ms;

  double qps() const { return wall_s > 0 ? ok / wall_s : 0.0; }
  double shed_rate() const {
    return requests > 0 ? static_cast<double>(shed) / requests : 0.0;
  }
  double Percentile(double q) const {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = std::min(
        latencies_ms.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies_ms.size())));
    return latencies_ms[idx];
  }
};

/// Closed-loop load: `connections` client threads, each with its own
/// InflexClient, each issuing `per_connection` requests back to back (a shed
/// response completes the request — real clients would back off
/// retry_after_ms; the bench measures the server's shedding, not a retry
/// policy).
LoopResult RunClosedLoop(uint16_t port,
                         const std::vector<core::QueryRequest>& trace,
                         size_t connections, size_t per_connection) {
  std::vector<std::vector<double>> lat(connections);
  std::vector<std::array<size_t, 3>> counts(connections, {0, 0, 0});
  std::atomic<size_t> connect_failures{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      auto client = net::InflexClient::Connect("127.0.0.1", port, 30000);
      if (!client.ok()) {
        connect_failures.fetch_add(1);
        return;
      }
      lat[t].reserve(per_connection);
      for (size_t i = 0; i < per_connection; ++i) {
        const auto& request = trace[(t * per_connection + i) % trace.size()];
        Timer rt;
        auto resp = client.ValueOrDie().Query(request);
        const double ms = rt.ElapsedMillis();
        if (!resp.ok()) {
          ++counts[t][2];
          continue;
        }
        switch (resp.ValueOrDie().status) {
          case net::WireStatus::kOk:
            ++counts[t][0];
            lat[t].push_back(ms);
            break;
          case net::WireStatus::kOverloaded:
            ++counts[t][1];
            break;
          default:
            ++counts[t][2];
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  LoopResult out;
  out.wall_s = wall.ElapsedSeconds();
  out.requests = connections * per_connection;
  for (size_t t = 0; t < connections; ++t) {
    out.ok += counts[t][0];
    out.shed += counts[t][1];
    out.failed += counts[t][2] + connect_failures.load();
    out.latencies_ms.insert(out.latencies_ms.end(), lat[t].begin(),
                            lat[t].end());
  }
  std::sort(out.latencies_ms.begin(), out.latencies_ms.end());
  return out;
}

struct NetRow {
  size_t connections = 0;
  LoopResult result;
};

/// Splices the `net` section into the BENCH_serving.json written by
/// bench_serving_throughput (replacing any previous `net` section).
///
/// If the file is missing, a minimal-but-valid skeleton is created (with a
/// warning) so the net rows are never silently dropped; the full-artifact
/// checker will still demand the serving sections. If the file exists but is
/// not the JSON object this bench expects, it refuses to touch it — a
/// truncated or corrupt artifact must fail loudly, not be clobbered into a
/// plausible-looking one.
bool SpliceNetSection(const std::string& net_json) {
  const char* path = "BENCH_serving.json";
  std::string content;
  bool file_exists = false;
  {
    std::FILE* f = std::fopen(path, "r");
    if (f != nullptr) {
      file_exists = true;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        content.append(buf, n);
      }
      std::fclose(f);
    }
  }
  if (!file_exists) {
    std::fprintf(stderr,
                 "warning: %s missing — writing a skeleton; run "
                 "bench_serving_throughput for the serving sections\n",
                 path);
    content = "{\n  \"benchmark\": \"serving_throughput\"";
  } else {
    const size_t first_printable = content.find_first_not_of(" \t\r\n");
    if (first_printable == std::string::npos ||
        content[first_printable] != '{' ||
        content.find("\"benchmark\"") == std::string::npos ||
        content.rfind('}') == std::string::npos) {
      std::fprintf(stderr,
                   "error: %s exists but is not the JSON object this bench "
                   "expects — refusing to overwrite it\n",
                   path);
      return false;
    }
    const size_t existing = content.find(",\n  \"net\":");
    if (existing != std::string::npos) {
      content.resize(existing);  // drop the old net section + closing brace
    } else {
      content.resize(content.rfind('}'));  // top-level closing brace
      while (!content.empty() &&
             (content.back() == '\n' || content.back() == ' ')) {
        content.pop_back();
      }
    }
  }
  content += ",\n  \"net\": ";
  content += net_json;
  content += "\n}\n";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("spliced \"net\" into %s\n", path);
  return true;
}

std::string FormatNetJson(size_t io_threads, const std::vector<NetRow>& rows,
                          const LoopResult& overload, size_t ov_connections,
                          size_t ov_workers, size_t ov_queue_high) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "{\n    \"io_threads\": %zu,\n    \"rows\": [\n",
                io_threads);
  std::string out = buf;
  for (size_t i = 0; i < rows.size(); ++i) {
    const NetRow& r = rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"connections\": %zu, \"requests\": %zu, \"qps\": %.0f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"shed_rate\": %.4f}%s\n",
        r.connections, r.result.requests, r.result.qps(),
        r.result.Percentile(0.50), r.result.Percentile(0.95),
        r.result.Percentile(0.99), r.result.shed_rate(),
        i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "    ],\n";
  std::snprintf(
      buf, sizeof(buf),
      "    \"overload\": {\"connections\": %zu, \"workers\": %zu, "
      "\"queue_high\": %zu, \"requests\": %zu, \"ok\": %zu, \"shed\": %zu, "
      "\"shed_rate\": %.4f, \"qps\": %.0f, \"p99_ms\": %.4f}\n  }",
      ov_connections, ov_workers, ov_queue_high, overload.requests,
      overload.ok, overload.shed, overload.shed_rate(), overload.qps(),
      overload.Percentile(0.99));
  out += buf;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Network serving — wire protocol + bounded admission", tb);
  if (quick) std::printf("[--quick] smoke-sized rows; numbers are not comparable\n");

  constexpr size_t kUnique = 96;
  constexpr size_t kK = 10;
  const size_t kRequestsPerRow = quick ? 256 : 1024;
  // The scaling rows run against the sharded IO plane (one loop per
  // closed-loop client pair) so the row reflects serving, not accept/poll
  // serialization.
  constexpr size_t kIoThreads = 4;
  const auto trace = MakeTrace(tb, kUnique, kRequestsPerRow, kK);
  if (trace.empty()) {
    std::fprintf(stderr, "failed to build the serving trace\n");
    return 1;
  }

  // --- Scaling rows: a well-provisioned server (cache on, ample queue) ---
  std::vector<NetRow> rows;
  {
    ThreadPool pool(4);
    core::QueryEngineOptions eopts;
    eopts.pool = &pool;
    eopts.cache.capacity = 4096;
    eopts.cache.num_shards = 16;
    core::QueryEngine engine(tb.index.get(), eopts);
    net::InflexServerOptions sopts;
    sopts.io_threads = kIoThreads;
    net::InflexServer server(&engine, sopts);
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
      return 1;
    }

    // Warm pass: every unique mixture once, so the scaling rows measure
    // steady-state serving (same protocol as the in-process bench).
    RunClosedLoop(server.port(), trace, 1, kUnique);

    std::printf("%-14s %10s %9s %9s %9s %10s\n", "connections", "QPS",
                "p50 ms", "p95 ms", "p99 ms", "shed rate");
    for (size_t connections : {1u, 2u, 4u, 8u}) {
      NetRow row;
      row.connections = connections;
      row.result = RunClosedLoop(server.port(), trace, connections,
                                 kRequestsPerRow / connections);
      if (row.result.failed > 0) {
        std::fprintf(stderr, "%zu requests failed at %zu connections\n",
                     row.result.failed, connections);
        return 1;
      }
      std::printf("%-14zu %10.0f %9.3f %9.3f %9.3f %9.1f%%\n", connections,
                  row.result.qps(), row.result.Percentile(0.50),
                  row.result.Percentile(0.95), row.result.Percentile(0.99),
                  100.0 * row.result.shed_rate());
      rows.push_back(std::move(row));
    }
    server.Stop();
  }

  // --- Overload: one uncached worker, a tiny queue, many more closed-loop
  // connections than the queue admits. The server must shed (kOverloaded)
  // rather than queue unboundedly; surviving requests keep flowing. ---
  constexpr size_t kOverloadConnections = 24;
  constexpr size_t kOverloadWorkers = 1;
  constexpr size_t kOverloadQueueHigh = 8;
  LoopResult overload;
  {
    ThreadPool pool(1);
    core::QueryEngineOptions eopts;
    eopts.pool = &pool;
    eopts.enable_cache = false;  // full engine cost per request
    core::QueryEngine engine(tb.index.get(), eopts);
    net::InflexServerOptions sopts;
    sopts.num_workers = kOverloadWorkers;
    sopts.max_worker_batch = 1;
    sopts.queue_high_watermark = kOverloadQueueHigh;
    sopts.queue_low_watermark = 2;
    sopts.retry_after_ms = 5;
    net::InflexServer server(&engine, sopts);
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
      return 1;
    }
    overload = RunClosedLoop(server.port(), trace, kOverloadConnections,
                             quick ? 16 : 64);
    server.Stop();
    const net::ServerStats stats = server.stats();
    std::printf(
        "\noverload (%zu connections, %zu worker, queue high %zu): "
        "%zu/%zu shed (%.1f%%), surviving QPS %.0f, p99 %.3f ms, "
        "queue peak %zu\n",
        kOverloadConnections, kOverloadWorkers, kOverloadQueueHigh,
        overload.shed, overload.requests, 100.0 * overload.shed_rate(),
        overload.qps(), overload.Percentile(0.99), stats.queue_depth_peak);
    if (overload.failed > 0) {
      std::fprintf(stderr, "%zu overload requests failed outright\n",
                   overload.failed);
      return 1;
    }
    if (overload.shed == 0) {
      std::fprintf(stderr,
                   "overload scenario shed nothing — admission control is "
                   "not bounding the queue\n");
      return 1;
    }
  }

  if (!SpliceNetSection(FormatNetJson(kIoThreads, rows, overload,
                                      kOverloadConnections, kOverloadWorkers,
                                      kOverloadQueueHigh))) {
    return 1;
  }

  std::printf(
      "\nShape to expect: the 1-connection row pays the wire round trip on "
      "top of the in-process p50; QPS grows with connections until the "
      "engine pool saturates. The overload row must show a nonzero shed "
      "rate with bounded p99 for the surviving requests — back-pressure, "
      "not collapse.\n");
  return 0;
}
