// Figure 7: per-query run-time comparison of the online strategies, with
// the offline from-scratch CELF++ time for contrast. The paper's headline:
// INFLEX answers in < 30 ms what offline computation takes hours-days for.
#include <cstdio>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "stats/descriptive.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Figure 7 — run-time comparison (per TIM query, k=50, K=10)",
              tb);

  const core::QueryStrategy strategies[] = {
      core::QueryStrategy::kInflex, core::QueryStrategy::kExactKnn,
      core::QueryStrategy::kApproxKnn, core::QueryStrategy::kApproxKnnSel,
      core::QueryStrategy::kApproxAd};

  TablePrinter table({"method", "avg ms", "search ms", "aggregation ms",
                      "max ms", "avg KL evals", "avg leaves",
                      "avg lists aggregated"});
  for (core::QueryStrategy s : strategies) {
    core::QueryOptions opts;
    opts.strategy = s;
    opts.knn_k = 10;
    opts.max_leaves = 5;
    auto m = EvaluateStrategy(tb, opts, core::QueryStrategyName(s), 50,
                              /*evaluate_spread=*/false);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    const auto& v = m.ValueOrDie();
    table.AddRow({v.name, TablePrinter::Fmt(v.avg_query_ms),
                  TablePrinter::Fmt(v.avg_search_ms),
                  TablePrinter::Fmt(v.avg_aggregation_ms),
                  TablePrinter::Fmt(v.max_query_ms),
                  TablePrinter::Fmt(v.avg_kl_evaluations, 1),
                  TablePrinter::Fmt(v.avg_leaves_visited, 2),
                  TablePrinter::Fmt(v.avg_lists_aggregated, 2)});
  }
  table.Print();

  // Offline contrast.
  std::vector<double> offline_s;
  for (const auto& gt : tb.ground_truth) {
    offline_s.push_back(gt.offline_seconds);
  }
  std::printf("\noffline TIC (from-scratch CELF++, the computation INFLEX "
              "replaces): avg %.2f s per query — %.0fx slower than INFLEX "
              "on this scaled-down test-bed; the gap grows with graph size "
              "(paper: days vs milliseconds).\n",
              stats::Mean(offline_s), stats::Mean(offline_s) * 1e3);
  std::printf("\nPaper shape to match: every index strategy answers in "
              "milliseconds; approxKNN+Sel fastest, exactKNN slowest of the "
              "online methods.\n");
  return 0;
}
