// Figure 8 + Table 2: expected spread of the seed sets (k = 50) produced by
// every method, evaluated with TIC Monte-Carlo simulation, plus RMSE/NRMSE
// against the offline TIC ground truth.
// Paper shape: offline TIC ≥ exactKNN ≈ INFLEX ≈ approxKNN > approxAD ≈
// approxKNN+Sel ≫ offline IC (less than half) ≫ random.
#include <cstdio>

#include "common/evaluation.h"
#include "common/testbed.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  const size_t k = 50;
  PrintBanner("Figure 8 / Table 2 — expected spread of the seed sets "
              "(k = 50, TIC Monte-Carlo)", tb);

  std::vector<StrategyMetrics> rows;

  auto offline_tic = EvaluateOfflineTic(tb, k);
  if (!offline_tic.ok()) {
    std::fprintf(stderr, "%s\n", offline_tic.status().ToString().c_str());
    return 1;
  }
  rows.push_back(offline_tic.ValueOrDie());

  const core::QueryStrategy strategies[] = {
      core::QueryStrategy::kExactKnn, core::QueryStrategy::kInflex,
      core::QueryStrategy::kApproxKnn, core::QueryStrategy::kApproxAd,
      core::QueryStrategy::kApproxKnnSel};
  for (core::QueryStrategy s : strategies) {
    core::QueryOptions opts;
    opts.strategy = s;
    opts.knn_k = 10;
    opts.max_leaves = 5;
    auto m = EvaluateStrategy(tb, opts, core::QueryStrategyName(s), k,
                              /*evaluate_spread=*/true);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    rows.push_back(m.ValueOrDie());
  }

  auto offline_ic = EvaluateOfflineIc(tb, k);
  if (!offline_ic.ok()) {
    std::fprintf(stderr, "%s\n", offline_ic.status().ToString().c_str());
    return 1;
  }
  rows.push_back(offline_ic.ValueOrDie());

  auto random = EvaluateRandom(tb, k, tb.config.seed + 888);
  if (!random.ok()) {
    std::fprintf(stderr, "%s\n", random.status().ToString().c_str());
    return 1;
  }
  rows.push_back(random.ValueOrDie());

  TablePrinter table({"Method", "Exp.Spread", "RMSE", "NRMSE"});
  for (const auto& m : rows) {
    table.AddRow({m.name,
                  TablePrinter::Fmt(m.avg_spread, 2) + " ± " +
                      TablePrinter::Fmt(m.spread_std_error, 2),
                  m.name == "offline TIC" ? "-" : TablePrinter::Fmt(m.rmse, 2),
                  m.name == "offline TIC" ? "-"
                                          : TablePrinter::Fmt(m.nrmse, 3)});
  }
  table.Print();

  // Per-population breakdown: the topic-blind collapse concentrates on the
  // data-driven (topical) queries; uniform-simplex queries are near the
  // topic-blind mixture by construction and compress the aggregate gap.
  std::printf("\nper-query-population average spread:\n");
  TablePrinter split({"Method", "data-driven queries", "uniform queries",
                      "% of offline TIC (data-driven)"});
  std::vector<double> tic_split(2, 0.0);
  for (const auto& m : rows) {
    double sum[2] = {0.0, 0.0};
    size_t count[2] = {0, 0};
    for (size_t i = 0; i < m.spread_per_query.size(); ++i) {
      const int pop = tb.workload.is_data_driven[i] ? 0 : 1;
      sum[pop] += m.spread_per_query[i];
      ++count[pop];
    }
    const double dd = count[0] ? sum[0] / count[0] : 0.0;
    const double uni = count[1] ? sum[1] / count[1] : 0.0;
    if (m.name == "offline TIC") {
      tic_split[0] = dd;
      tic_split[1] = uni;
    }
    split.AddRow({m.name, TablePrinter::Fmt(dd, 2), TablePrinter::Fmt(uni, 2),
                  tic_split[0] > 0.0
                      ? TablePrinter::Fmt(100.0 * dd / tic_split[0], 1)
                      : "-"});
  }
  split.Print();

  std::printf("\nPaper shape to match (Table 2): aggregation-based methods "
              "within a few %% of offline TIC (NRMSE ~0.02-0.06); offline IC "
              "far below TIC on topical items (paper: less than half); "
              "random far below everything.\n");
  return 0;
}
