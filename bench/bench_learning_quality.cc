// TIC parameter learning quality — the prerequisite stage of Figure 1.
// The paper delegates this to Barbieri et al. (ICDM 2012); since our data
// substrate knows the ground-truth parameters, we can quantify how well the
// EM learner recovers them from the simulated propagation log, and — the
// measure that matters for INFLEX — how much spread is lost when seeds are
// chosen on the LEARNED model but the world follows the TRUE one.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "inflex/baselines.h"
#include "stats/descriptive.h"
#include "tic/tic_learner.h"
#include "tic/tic_model.h"
#include "util/timer.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

namespace {

// Learned topics are identifiable only up to a permutation: match them to
// ground truth greedily on the item-primary-topic confusion matrix.
std::vector<size_t> MatchTopics(const std::vector<std::vector<size_t>>& conf) {
  const size_t z = conf.size();
  std::vector<size_t> mapping(z, z);
  std::vector<char> used(z, 0);
  for (size_t step = 0; step < z; ++step) {
    size_t best_l = 0, best_t = 0, best = 0;
    for (size_t l = 0; l < z; ++l) {
      if (mapping[l] != z) continue;
      for (size_t t = 0; t < z; ++t) {
        if (used[t]) continue;
        if (conf[l][t] >= best) {
          best = conf[l][t];
          best_l = l;
          best_t = t;
        }
      }
    }
    mapping[best_l] = best_t;
    used[best_t] = 1;
  }
  return mapping;
}

size_t Primary(const simplex::TopicVector& p) {
  return std::max_element(p.begin(), p.end()) - p.begin();
}

}  // namespace

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Learning quality — TIC EM vs ground truth (the Figure 1 "
              "prerequisite)", tb);

  tic::TicLearnerOptions lopts;
  lopts.num_topics = tb.graph().num_topics();
  lopts.max_iterations = 25;
  Timer t;
  auto learned_r =
      tic::LearnTicParameters(tb.graph(), tb.dataset->log, lopts);
  if (!learned_r.ok()) {
    std::fprintf(stderr, "%s\n", learned_r.status().ToString().c_str());
    return 1;
  }
  const auto& learned = learned_r.ValueOrDie();
  std::printf("\nEM: %d sweeps in %.1f s over %zu log records\n",
              learned.iterations, t.ElapsedSeconds(), tb.dataset->log.size());

  const size_t z = tb.graph().num_topics();

  // --- Topic recovery (items). --------------------------------------------
  std::vector<std::vector<size_t>> confusion(z, std::vector<size_t>(z, 0));
  for (size_t i = 0; i < tb.dataset->catalog.size(); ++i) {
    confusion[Primary(learned.item_topics[i].probs())]
             [Primary(tb.dataset->catalog[i].probs())]++;
  }
  const std::vector<size_t> mapping = MatchTopics(confusion);
  size_t correct = 0;
  for (size_t i = 0; i < tb.dataset->catalog.size(); ++i) {
    if (mapping[Primary(learned.item_topics[i].probs())] ==
        Primary(tb.dataset->catalog[i].probs())) {
      ++correct;
    }
  }
  std::printf("item primary-topic accuracy (after permutation matching): "
              "%.1f%% over %zu items (chance: %.1f%%)\n",
              100.0 * correct / tb.dataset->catalog.size(),
              tb.dataset->catalog.size(), 100.0 / static_cast<double>(z));

  // --- Arc-probability recovery. ------------------------------------------
  std::vector<double> truth_p, learned_p;
  for (graph::ArcId a = 0; a < tb.graph().num_arcs(); a += 7) {
    for (size_t lz = 0; lz < z; ++lz) {
      learned_p.push_back(
          learned.arc_topic_probs[static_cast<size_t>(a) * z + lz]);
      truth_p.push_back(tb.graph().ArcTopicProb(a, mapping[lz]));
    }
  }
  auto corr = stats::PearsonCorrelation(learned_p, truth_p);
  std::printf("arc-probability correlation (learned vs truth, matched "
              "topics): %.3f over %zu samples\n",
              corr.ok() ? corr.ValueOrDie() : 0.0, truth_p.size());

  // --- Downstream fidelity: seeds from the learned model on the true one. --
  graph::TopicGraph learned_graph = tb.graph();
  if (auto st = learned_graph.SetArcTopicProbabilities(learned.arc_topic_probs);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  core::OfflineImOptions oopts;
  oopts.num_snapshots = tb.config.oracle_snapshots;
  tic::TicModel true_model(&tb.graph());
  im::MonteCarloOptions mc;
  mc.num_simulations = tb.config.spread_mc_simulations;
  mc.parallel = false;

  TablePrinter table({"topic", "true-model seeds", "learned-model seeds",
                      "retained %"});
  std::vector<double> retained;
  for (size_t topic = 0; topic < z; topic += 2) {
    // Pick a real catalog item that is strongly topical in the TRUE space;
    // the learned-model run is then queried with that item's LEARNED
    // description — exactly how a production system (which never sees the
    // true space) would operate. This sidesteps the topic-permutation
    // ambiguity entirely.
    size_t item_id = tb.dataset->catalog.size();
    double best_mass = 0.0;
    for (size_t i = 0; i < tb.dataset->catalog.size(); ++i) {
      const double mass = tb.dataset->catalog[i][topic];
      if (Primary(tb.dataset->catalog[i].probs()) == topic &&
          mass > best_mass) {
        best_mass = mass;
        item_id = i;
      }
    }
    if (item_id == tb.dataset->catalog.size()) continue;
    const auto& true_item = tb.dataset->catalog[item_id];
    const auto& learned_item = learned.item_topics[item_id];
    auto seeds_true = core::OfflineTicSeeds(tb.graph(), true_item, 20, oopts);
    auto seeds_learned =
        core::OfflineTicSeeds(learned_graph, learned_item, 20, oopts);
    if (!seeds_true.ok() || !seeds_learned.ok()) continue;
    const double s_true =
        true_model.EstimateSpread(true_item, seeds_true.ValueOrDie().seeds, mc)
            .ValueOrDie()
            .mean;
    const double s_learned =
        true_model
            .EstimateSpread(true_item, seeds_learned.ValueOrDie().seeds, mc)
            .ValueOrDie()
            .mean;
    retained.push_back(100.0 * s_learned / s_true);
    table.AddRow({std::to_string(topic), TablePrinter::Fmt(s_true, 1),
                  TablePrinter::Fmt(s_learned, 1),
                  TablePrinter::Fmt(retained.back(), 1)});
  }
  std::printf("\nspread on the TRUE model of k=20 seeds chosen on each "
              "model (per topical item):\n");
  table.Print();
  if (!retained.empty()) {
    std::printf("\naverage retained spread: %.1f%% of what perfect-parameter "
                "seeding achieves.\n",
                stats::Mean(retained));
  }
  std::printf("\nContext: TIC learning from sparse logs is genuinely hard "
              "(Barbieri et al. train on millions of Flixster ratings; this "
              "test-bed has %zu records). Topic recovery well above chance "
              "plus substantially-better-than-random downstream seeding is "
              "the expected regime here; the rest of the benchmark suite "
              "uses ground-truth parameters, as the paper uses its "
              "separately-learned ones.\n",
              tb.dataset->log.size());
  return 0;
}
