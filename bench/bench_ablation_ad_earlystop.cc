// Ablation: the Anderson-Darling early-stopping confidence level α and the
// leaf cap — the knobs of Algorithm 1's `similar_enough` test.
#include <cstdio>

#include "common/evaluation.h"
#include "common/testbed.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Ablation — Anderson-Darling early stop (alpha sweep + leaf "
              "cap, INFLEX, k = 50)", tb);

  TablePrinter table({"AD alpha", "leaf cap", "avg leaves", "avg KL evals",
                      "avg Kendall-tau", "avg query ms"});
  for (double alpha : {0.05, 0.25, 0.50, 0.75}) {
    for (size_t cap : {3u, 5u, 8u}) {
      core::QueryOptions opts;
      opts.strategy = core::QueryStrategy::kInflex;
      opts.search.ad_alpha = alpha;
      opts.max_leaves = cap;
      auto m = EvaluateStrategy(tb, opts, "ad", 50, /*evaluate_spread=*/false);
      if (!m.ok()) {
        std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
        return 1;
      }
      const auto& v = m.ValueOrDie();
      table.AddRow({TablePrinter::Fmt(alpha, 2), std::to_string(cap),
                    TablePrinter::Fmt(v.avg_leaves_visited, 2),
                    TablePrinter::Fmt(v.avg_kl_evaluations, 1),
                    TablePrinter::Fmt(v.avg_kendall),
                    TablePrinter::Fmt(v.avg_query_ms)});
    }
  }
  table.Print();
  std::printf("\nExpected: the search stops when normality is ACCEPTED "
              "(p >= alpha), so higher alpha explores more leaves and more "
              "KL evaluations for better accuracy — the trade-off behind "
              "the paper's early-stopping design.\n");
  return 0;
}
