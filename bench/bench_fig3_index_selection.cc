// Figure 3: the three-phase index-point selection pipeline.
// (a) catalog items  (b) 100k-scale Dirichlet samples  (c) K-means++
// centroids — visualized in the paper via ILR projection; here we print the
// fitted Dirichlet, per-ILR-dimension summary statistics of the three point
// populations, and coverage statistics showing the centroids track the
// catalog's region of the simplex.
#include <cstdio>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "inflex/index_points.h"
#include "simplex/divergence.h"
#include "simplex/ilr.h"
#include "stats/descriptive.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

namespace {

struct IlrSummary {
  std::vector<double> mean;
  std::vector<double> stddev;
};

IlrSummary SummarizeIlr(const std::vector<simplex::TopicVector>& points) {
  IlrSummary s;
  if (points.empty()) return s;
  const size_t d = points.front().size() - 1;
  std::vector<std::vector<double>> coords(d);
  for (const auto& p : points) {
    const auto y = simplex::IlrTransform(p);
    for (size_t j = 0; j < d; ++j) coords[j].push_back(y[j]);
  }
  for (size_t j = 0; j < d; ++j) {
    s.mean.push_back(stats::Mean(coords[j]));
    s.stddev.push_back(stats::StdDev(coords[j]));
  }
  return s;
}

}  // namespace

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Figure 3 — selection of index items (catalog -> Dirichlet "
              "MLE -> sampling -> K-means++ centroids)", tb);

  core::IndexPointOptions opts;
  opts.num_index_points = tb.config.num_index_points;
  opts.num_dirichlet_samples = tb.config.dirichlet_samples;
  opts.seed = tb.config.seed + 1;
  auto sel_r = core::SelectIndexPoints(tb.dataset->catalog, opts);
  if (!sel_r.ok()) {
    std::fprintf(stderr, "selection: %s\n",
                 sel_r.status().ToString().c_str());
    return 1;
  }
  const auto& sel = sel_r.ValueOrDie();

  std::printf("\nmaximum-likelihood Dirichlet alpha (Minka generalized "
              "Newton):\n  alpha = (");
  for (size_t z = 0; z < sel.dirichlet_alpha.size(); ++z) {
    std::printf("%s%.4f", z ? ", " : "", sel.dirichlet_alpha[z]);
  }
  std::printf(")\n\n");

  std::vector<simplex::TopicVector> catalog_raw;
  for (const auto& item : tb.dataset->catalog) {
    catalog_raw.push_back(item.probs());
  }
  const IlrSummary a = SummarizeIlr(catalog_raw);
  const IlrSummary b = SummarizeIlr(sel.samples);
  const IlrSummary c = SummarizeIlr(sel.points);

  TablePrinter table({"ILR dim", "(a) catalog mean±sd", "(b) samples mean±sd",
                      "(c) centroids mean±sd"});
  for (size_t j = 0; j < a.mean.size(); ++j) {
    table.AddRow({std::to_string(j),
                  TablePrinter::Fmt(a.mean[j]) + " ± " +
                      TablePrinter::Fmt(a.stddev[j]),
                  TablePrinter::Fmt(b.mean[j]) + " ± " +
                      TablePrinter::Fmt(b.stddev[j]),
                  TablePrinter::Fmt(c.mean[j]) + " ± " +
                      TablePrinter::Fmt(c.stddev[j])});
  }
  table.Print();

  // Coverage: distance from every catalog item to its nearest centroid —
  // the "good coverage of the simplex" requirement of §3.1.
  std::vector<double> nn_dist;
  for (const auto& item : catalog_raw) {
    double best = 1e18;
    for (const auto& p : sel.points) {
      best = std::min(best, simplex::KlDivergence(p, item));
    }
    nn_dist.push_back(best);
  }
  std::printf("\ncoverage of the catalog by the h=%zu centroids "
              "(KL from nearest centroid to item):\n",
              sel.points.size());
  std::printf("  mean = %.4f, sd = %.4f, max = %.4f\n",
              stats::Mean(nn_dist), stats::StdDev(nn_dist),
              *std::max_element(nn_dist.begin(), nn_dist.end()));
  std::printf("\nPaper shape to match: samples follow the catalog's "
              "distribution; centroids cover its region evenly.\n");
  return 0;
}
