// Serving throughput: batched parallel TIM query serving through the
// QueryEngine (sharded QueryCache + ThreadPool fan-out) versus a serial
// query loop. This is the system counterpart of Figure 7: the paper makes a
// single query cheap; the serving layer makes *many concurrent* queries
// cheap. Reports QPS scaling with thread count, cache effectiveness, and the
// latency tail an operator would monitor (p50/p95/p99).
//
// Note: QPS scales with *physical* cores. On a single-core host the threaded
// rows collapse to ~1x and only the cache rows show gains.
#include <cstdio>
#include <string>
#include <vector>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "data/workload.h"
#include "inflex/query_engine.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace inflex;                // NOLINT
using namespace inflex::benchsupport;  // NOLINT

namespace {

/// A serving trace: `unique` distinct mixtures, expanded to `total` requests
/// by re-drawing from the unique set (ad platforms see heavy re-submission of
/// near-identical campaigns, which is what the cache exploits).
std::vector<core::QueryRequest> MakeTrace(const Testbed& tb, size_t unique,
                                          size_t total, size_t k) {
  data::QueryWorkloadOptions wopts;
  wopts.num_data_driven = unique / 2;
  wopts.num_uniform = unique - wopts.num_data_driven;
  wopts.seed = 1303;
  auto workload = data::GenerateQueryWorkload(tb.dataset->catalog, wopts);
  std::vector<core::QueryRequest> trace;
  if (!workload.ok()) return trace;
  const auto& qs = workload.ValueOrDie().queries;
  Rng rng(77);
  trace.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    core::QueryRequest r;
    r.item = qs[i < qs.size() ? i : rng.UniformInt(qs.size())];
    r.k = k;
    trace.push_back(std::move(r));
  }
  return trace;
}

/// One emitted row of BENCH_serving.json.
struct ServingRow {
  std::string label;
  bool cached = false;
  size_t threads = 1;
  core::ServingStats stats;
  double kl_evals_per_query = 0.0;
};

void WriteServingJson(double serial_qps, double serial_kl_per_query,
                      const std::vector<ServingRow>& rows) {
  const char* path = "BENCH_serving.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"serving_throughput\",\n");
  std::fprintf(f, "  \"serial\": {\"qps\": %.0f, \"kl_evaluations_per_query\": %.1f},\n",
               serial_qps, serial_kl_per_query);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ServingRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"config\": \"%s\", \"cached\": %s, \"threads\": %zu, "
        "\"qps\": %.0f, \"speedup_vs_serial\": %.2f, \"hit_rate\": %.3f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"max_ms\": %.4f, \"kl_evaluations_per_query\": %.1f}%s\n",
        r.label.c_str(), r.cached ? "true" : "false", r.threads, r.stats.qps,
        serial_qps > 0.0 ? r.stats.qps / serial_qps : 0.0, r.stats.hit_rate(),
        r.stats.p50_ms, r.stats.p95_ms, r.stats.p99_ms, r.stats.max_ms,
        r.kl_evals_per_query, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// Mean KL evaluations per successfully served request (0 for fully cached
/// batches — cache hits run no search).
double MeanKlEvaluations(const std::vector<Result<core::QueryResult>>& results) {
  size_t ok = 0;
  double total = 0.0;
  for (const auto& r : results) {
    if (!r.ok()) continue;
    ++ok;
    total += static_cast<double>(r.ValueOrDie().search_stats.kl_evaluations);
  }
  return ok > 0 ? total / static_cast<double>(ok) : 0.0;
}

}  // namespace

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Serving throughput — batched parallel queries + sharded cache",
              tb);

  constexpr size_t kUnique = 96;
  constexpr size_t kTotal = 2048;
  constexpr size_t kK = 10;
  const auto trace = MakeTrace(tb, kUnique, kTotal, kK);
  if (trace.empty()) {
    std::fprintf(stderr, "failed to build the serving trace\n");
    return 1;
  }

  // Serial baseline: one thread, straight through the index, no cache.
  double serial_qps = 0.0;
  double serial_kl_per_query = 0.0;
  {
    Timer t;
    size_t failed = 0;
    size_t kl_total = 0;
    for (const auto& r : trace) {
      auto result = tb.index->Query(r.item, r.k, r.options);
      if (!result.ok()) {
        ++failed;
      } else {
        kl_total += result.ValueOrDie().search_stats.kl_evaluations;
      }
    }
    const double wall_s = t.ElapsedSeconds();
    serial_qps = static_cast<double>(trace.size()) / wall_s;
    serial_kl_per_query = trace.size() > failed
                              ? static_cast<double>(kl_total) /
                                    static_cast<double>(trace.size() - failed)
                              : 0.0;
    std::printf("serial (no cache, 1 thread): %zu queries in %.1f ms -> "
                "%.0f QPS, %.1f KL evals/query (%zu failed)\n\n",
                trace.size(), wall_s * 1e3, serial_qps, serial_kl_per_query,
                failed);
  }

  std::printf("%-28s %10s %8s %9s %9s %9s %9s %9s %9s\n", "configuration",
              "QPS", "vs serial", "hit rate", "p50 ms", "p95 ms", "p99 ms",
              "max ms", "KL/query");
  std::vector<ServingRow> rows;
  const size_t thread_counts[] = {1, 2, 4, 8};
  for (bool cached : {false, true}) {
    for (size_t threads : thread_counts) {
      ThreadPool pool(threads);
      core::QueryEngineOptions eopts;
      eopts.pool = &pool;
      eopts.enable_cache = cached;
      eopts.cache.capacity = 4096;
      eopts.cache.num_shards = 16;
      core::QueryEngine engine(tb.index.get(), eopts);
      // Warm-up pass (populates the cache for the cached rows), then the
      // measured pass — steady-state serving is what the row reports.
      engine.QueryBatch(trace);
      core::ServingStats stats;
      const auto results = engine.QueryBatch(trace, &stats);
      char label[64];
      std::snprintf(label, sizeof(label), "%s, %zu thread%s",
                    cached ? "cached" : "uncached", threads,
                    threads == 1 ? "" : "s");
      ServingRow row;
      row.label = label;
      row.cached = cached;
      row.threads = threads;
      row.stats = stats;
      row.kl_evals_per_query = MeanKlEvaluations(results);
      rows.push_back(row);
      std::printf(
          "%-28s %10.0f %7.2fx %8.1f%% %9.3f %9.3f %9.3f %9.3f %9.1f\n", label,
          stats.qps, stats.qps / serial_qps, 100.0 * stats.hit_rate(),
          stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.max_ms,
          row.kl_evals_per_query);
    }
  }
  WriteServingJson(serial_qps, serial_kl_per_query, rows);

  std::printf(
      "\nShape to expect: uncached QPS grows with threads up to the physical "
      "core count; the cached rows add a ~%zux request-collapse on top "
      "(%zu unique mixtures serve %zu requests), with p50 dropping to the "
      "cache-probe cost.\n",
      kTotal / kUnique, kUnique, kTotal);
  return 0;
}
