// Serving throughput: batched parallel TIM query serving through the
// QueryEngine (sharded QueryCache + ThreadPool fan-out) versus a serial
// query loop. This is the system counterpart of Figure 7: the paper makes a
// single query cheap; the serving layer makes *many concurrent* queries
// cheap. Reports QPS scaling with thread count, cache effectiveness, and the
// latency tail an operator would monitor (p50/p95/p99).
//
// Note: QPS scales with *physical* cores. On a single-core host the threaded
// rows collapse to ~1x and only the cache rows show gains.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "data/workload.h"
#include "im/spread_estimator.h"
#include "inflex/index_maintainer.h"
#include "inflex/query_engine.h"
#include "oracle/spread_oracle.h"
#include "simplex/divergence.h"
#include "simplex/kl_kernel_simd.h"
#include "simplex/sampling.h"
#include "tenant/tenant_registry.h"
#include "tenant/tenant_router.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace inflex;                // NOLINT
using namespace inflex::benchsupport;  // NOLINT

namespace {

/// A serving trace: `unique` distinct mixtures, expanded to `total` requests
/// by re-drawing from the unique set (ad platforms see heavy re-submission of
/// near-identical campaigns, which is what the cache exploits).
std::vector<core::QueryRequest> MakeTrace(const Testbed& tb, size_t unique,
                                          size_t total, size_t k) {
  data::QueryWorkloadOptions wopts;
  wopts.num_data_driven = unique / 2;
  wopts.num_uniform = unique - wopts.num_data_driven;
  wopts.seed = 1303;
  auto workload = data::GenerateQueryWorkload(tb.dataset->catalog, wopts);
  std::vector<core::QueryRequest> trace;
  if (!workload.ok()) return trace;
  const auto& qs = workload.ValueOrDie().queries;
  Rng rng(77);
  trace.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    core::QueryRequest r;
    r.item = qs[i < qs.size() ? i : rng.UniformInt(qs.size())];
    r.k = k;
    trace.push_back(std::move(r));
  }
  return trace;
}

/// One emitted row of BENCH_serving.json.
struct ServingRow {
  std::string label;
  bool cached = false;
  size_t threads = 1;
  core::ServingStats stats;
  double kl_evals_per_query = 0.0;
};

/// One phase row of the churn+decay scenario: cumulative generation swaps
/// seen by the engine and the index size at the end of the phase.
struct ChurnPhase {
  std::string phase;
  uint64_t generation_swaps = 0;
  size_t index_points = 0;
  uint64_t points_evicted = 0;
};

/// Summary of the catalog-churn + decay-sweep scenario.
struct ChurnSummary {
  size_t deltas_submitted = 0;
  uint64_t admitted = 0;
  uint64_t burst_generations = 0;
  uint64_t batched_deltas = 0;
  size_t index_points_initial = 0;
  size_t index_points_peak = 0;
  uint64_t decay_sweeps = 0;
  uint64_t points_evicted = 0;
  std::vector<ChurnPhase> phases;
};

/// One backend's row of the oracle A/B scenario.
struct OracleRow {
  std::string backend;
  double admit_to_publish_mean_ms = 0.0;
  double admit_to_publish_max_ms = 0.0;
  double precompute_mean_ms = 0.0;
  double mean_spread = 0.0;
  double quality_vs_celfpp = 0.0;
  double speedup_vs_celfpp = 0.0;
};

/// Summary of the oracle A/B scenario (one maintainer per backend).
struct OracleSummary {
  bool quick = false;
  size_t deltas = 0;
  size_t k = 0;
  std::vector<OracleRow> rows;
};

/// One quiet tenant's row of the noisy-neighbor scenario: its p99 served
/// alone versus served next to the flooding hot tenant.
struct TenantQuietRow {
  std::string tenant;
  size_t requests = 0;
  double solo_p99_ms = 0.0;
  double storm_p99_ms = 0.0;
  /// storm_p99 / solo_p99 — the number the checker gates.
  double isolation_ratio = 0.0;
  uint64_t shed = 0;
};

/// Summary of the multi-tenant noisy-neighbor scenario.
struct TenantSummary {
  bool quick = false;
  size_t quiet_tenants = 0;
  double hot_budget_qps = 0.0;
  size_t hot_attempts = 0;
  uint64_t hot_admitted = 0;
  uint64_t hot_shed = 0;
  double hot_shed_rate = 0.0;
  double hot_p99_ms = 0.0;
  double isolation_ratio_max = 0.0;
  std::vector<TenantQuietRow> rows;
};

void WriteServingJson(double serial_qps, double serial_kl_per_query,
                      const std::vector<ServingRow>& rows,
                      const ChurnSummary& churn,
                      const OracleSummary& oracle_summary,
                      const TenantSummary& tenants) {
  const char* path = "BENCH_serving.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"serving_throughput\",\n");
  // The host record lets the checker scale its expectations: "8 threads must
  // beat serial" is physics on an 8-core box and fiction on a 1-core one.
  // The simd subrecord states which KL kernel variant served the run, so a
  // scalar-host (or forced-scalar) artifact is distinguishable from a SIMD
  // regression.
  std::fprintf(f,
               "  \"host\": {\"hardware_concurrency\": %u, "
               "\"simd\": {\"detected\": \"%s\", \"active\": \"%s\", "
               "\"forced_scalar\": %s}},\n",
               std::thread::hardware_concurrency(),
               inflex::simplex::DetectedSimdName(),
               inflex::simplex::ActiveKernelOps().name,
               inflex::simplex::ActiveKernelsForcedScalar() ? "true" : "false");
  std::fprintf(f, "  \"serial\": {\"qps\": %.0f, \"kl_evaluations_per_query\": %.1f},\n",
               serial_qps, serial_kl_per_query);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ServingRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"config\": \"%s\", \"cached\": %s, \"threads\": %zu, "
        "\"qps\": %.0f, \"speedup_vs_serial\": %.2f, \"hit_rate\": %.3f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"max_ms\": %.4f, \"kl_evaluations_per_query\": %.1f}%s\n",
        r.label.c_str(), r.cached ? "true" : "false", r.threads, r.stats.qps,
        serial_qps > 0.0 ? r.stats.qps / serial_qps : 0.0, r.stats.hit_rate(),
        r.stats.p50_ms, r.stats.p95_ms, r.stats.p99_ms, r.stats.max_ms,
        r.kl_evals_per_query, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"churn\": {\n"
      "    \"deltas_submitted\": %zu, \"admitted\": %llu, "
      "\"burst_generations\": %llu, \"batched_deltas\": %llu,\n"
      "    \"index_points_initial\": %zu, \"index_points_peak\": %zu, "
      "\"decay_sweeps\": %llu, \"points_evicted\": %llu,\n"
      "    \"rows\": [\n",
      churn.deltas_submitted,
      static_cast<unsigned long long>(churn.admitted),
      static_cast<unsigned long long>(churn.burst_generations),
      static_cast<unsigned long long>(churn.batched_deltas),
      churn.index_points_initial, churn.index_points_peak,
      static_cast<unsigned long long>(churn.decay_sweeps),
      static_cast<unsigned long long>(churn.points_evicted));
  for (size_t i = 0; i < churn.phases.size(); ++i) {
    const ChurnPhase& p = churn.phases[i];
    std::fprintf(f,
                 "      {\"phase\": \"%s\", \"generation_swaps\": %llu, "
                 "\"index_points\": %zu, \"points_evicted\": %llu}%s\n",
                 p.phase.c_str(),
                 static_cast<unsigned long long>(p.generation_swaps),
                 p.index_points,
                 static_cast<unsigned long long>(p.points_evicted),
                 i + 1 < churn.phases.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  // The oracle A/B section: admission-time seed precompute per backend.
  // (bench_net_throughput splices `net` in after this section, so it must
  // stay inside the body written here.)
  std::fprintf(f,
               "  \"oracle\": {\n"
               "    \"quick\": %s, \"deltas\": %zu, \"k\": %zu,\n"
               "    \"rows\": [\n",
               oracle_summary.quick ? "true" : "false", oracle_summary.deltas,
               oracle_summary.k);
  for (size_t i = 0; i < oracle_summary.rows.size(); ++i) {
    const OracleRow& r = oracle_summary.rows[i];
    std::fprintf(
        f,
        "      {\"backend\": \"%s\", \"admit_to_publish_mean_ms\": %.3f, "
        "\"admit_to_publish_max_ms\": %.3f, \"precompute_mean_ms\": %.3f, "
        "\"mean_spread\": %.2f, \"quality_vs_celfpp\": %.4f, "
        "\"speedup_vs_celfpp\": %.2f}%s\n",
        r.backend.c_str(), r.admit_to_publish_mean_ms,
        r.admit_to_publish_max_ms, r.precompute_mean_ms, r.mean_spread,
        r.quality_vs_celfpp, r.speedup_vs_celfpp,
        i + 1 < oracle_summary.rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  // The multi-tenant noisy-neighbor section: one hot tenant flooding against
  // its per-tenant budget next to quiet tenants, each quiet tenant's p99
  // under the storm versus served alone. check_bench_json.py gates the
  // isolation ratio (full runs, multi-core hosts).
  std::fprintf(
      f,
      "  \"tenants\": {\n"
      "    \"quick\": %s, \"quiet_tenants\": %zu, "
      "\"isolation_ratio_max\": %.3f,\n"
      "    \"hot\": {\"tenant\": \"hot\", \"budget_qps\": %.0f, "
      "\"attempts\": %zu, \"admitted\": %llu, \"shed\": %llu, "
      "\"shed_rate\": %.4f, \"p99_ms\": %.4f},\n"
      "    \"rows\": [\n",
      tenants.quick ? "true" : "false", tenants.quiet_tenants,
      tenants.isolation_ratio_max, tenants.hot_budget_qps,
      tenants.hot_attempts,
      static_cast<unsigned long long>(tenants.hot_admitted),
      static_cast<unsigned long long>(tenants.hot_shed),
      tenants.hot_shed_rate, tenants.hot_p99_ms);
  for (size_t i = 0; i < tenants.rows.size(); ++i) {
    const TenantQuietRow& r = tenants.rows[i];
    std::fprintf(f,
                 "      {\"tenant\": \"%s\", \"requests\": %zu, "
                 "\"solo_p99_ms\": %.4f, \"storm_p99_ms\": %.4f, "
                 "\"isolation_ratio\": %.3f, \"shed\": %llu}%s\n",
                 r.tenant.c_str(), r.requests, r.solo_p99_ms, r.storm_p99_ms,
                 r.isolation_ratio, static_cast<unsigned long long>(r.shed),
                 i + 1 < tenants.rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// Mixtures far (3× the admission threshold, both KL directions) from every
/// index point and from each other: a submitted burst admits in full with no
/// supersede losses, making the coalescing arithmetic of the scenario exact.
std::vector<simplex::TopicDistribution> FarApartMixtures(
    const core::InflexIndex& index, size_t n, double margin, uint64_t seed) {
  Rng rng(seed);
  const size_t dim = index.num_topics();
  std::vector<simplex::TopicDistribution> picked;
  for (int attempt = 0; attempt < 200000 && picked.size() < n; ++attempt) {
    const auto q = simplex::SampleUniformSimplex(dim, &rng);
    if (index.tree().ExactKnn(q, 1).front().divergence <= margin) continue;
    bool far = true;
    for (const auto& p : picked) {
      if (simplex::KlDivergence(p.probs(), q) <= margin ||
          simplex::KlDivergence(q, p.probs()) <= margin) {
        far = false;
        break;
      }
    }
    if (far) {
      picked.push_back(simplex::TopicDistribution::Create(q).ValueOrDie());
    }
  }
  return picked;
}

/// The churn+decay scenario: a 100-delta catalog burst against a live engine
/// (coalesced publication must cost O(1) generations, not 100), followed by
/// decay sweeps that evict the cold points back down to the floor while
/// serving continues. The phase rows land in BENCH_serving.json so a
/// regression in batching (generations exploding) or eviction (index never
/// shrinking) shows up in the committed artifact.
/// The oracle A/B scenario: a burst of near-corner catalog deltas is fed —
/// one delta at a time, coalescing disabled — through three maintainers
/// that differ only in the spread-oracle backend of the stage-2 precompute.
/// Per backend it reports the admit→publish latency (which the precompute
/// dominates by construction) and the seed quality of the published lists,
/// measured by one common Monte-Carlo referee on each delta's own IC
/// instance and normalized by the CELF++ row. check_bench_json.py gates
/// quality ≥ 0.95× and latency ≥ 10× below CELF++ (full runs).
///
/// The deltas are peaked on a primary topic like real catalog items
/// (the generator draws items from a peaked Dirichlet): a near-corner
/// mixture runs its community's arcs at full per-topic strength, the
/// supercritical regime where cascades are large and a slow precompute
/// actually gates catalog freshness. (Uniform-simplex mixtures would
/// dilute every arc by ~1/num_topics and measure the backends on
/// near-empty cascades instead.) Each corner is also maximally far from
/// the data-driven index points, so the burst admits in full.
OracleSummary RunOracleScenario(const Testbed& tb, bool quick) {
  OracleSummary out;
  out.quick = quick;
  constexpr size_t kSeedK = 10;
  out.k = kSeedK;
  auto initial = std::make_shared<core::InflexIndex>(*tb.index);
  const size_t num_topics = initial->num_topics();
  std::vector<simplex::TopicDistribution> deltas;
  for (size_t i = 0; i < (quick ? size_t{4} : size_t{8}); ++i) {
    const double mass = i % 2 == 0 ? 0.9997 : 0.999;
    std::vector<double> probs(
        num_topics, (1.0 - mass) / static_cast<double>(num_topics - 1));
    probs[i % num_topics] = mass;
    deltas.push_back(
        simplex::TopicDistribution::Create(std::move(probs)).ValueOrDie());
  }
  out.deltas = deltas.size();

  // One referee for every backend: the paper's Monte-Carlo evaluator with a
  // fixed seed, so quality ratios compare seed sets, not estimators.
  im::MonteCarloOptions mc;
  mc.num_simulations = quick ? 300 : 800;
  mc.seed = 4242;
  mc.parallel = false;

  const oracle::OracleBackend backends[] = {oracle::OracleBackend::kCelfPp,
                                            oracle::OracleBackend::kRis,
                                            oracle::OracleBackend::kSketch};
  std::printf("  %-8s %12s %12s %12s %10s %8s\n", "backend", "admit->pub",
              "max ms", "precomp ms", "spread", "quality");
  for (const oracle::OracleBackend backend : backends) {
    core::QueryEngineOptions eopts;
    eopts.enable_cache = false;
    core::QueryEngine engine(initial, eopts);
    core::IndexMaintainerOptions mopts;
    // Production-shaped precompute: ℓ follows the index (testbed ℓ=50 ranked
    // lists), CELF++ runs at the maintainer's default snapshot count. This
    // is the configuration whose admit→publish latency actually gates
    // catalog freshness, so it is what the A/B compares. --quick shrinks
    // every backend for CI smoke; those numbers are shape-only.
    mopts.seed_list_length = 0;
    // Publish each delta the moment its precompute lands: admit→publish is
    // then queueing + precompute + one-point publish, i.e. the quantity the
    // backends actually differ in.
    mopts.max_batch_delay_ms = 0.0;
    mopts.oracle.backend = backend;
    switch (backend) {
      case oracle::OracleBackend::kCelfPp:
        if (quick) mopts.oracle_snapshots = 20;
        break;
      case oracle::OracleBackend::kRis:
        mopts.oracle.num_rr_sets = quick ? 8000 : 30000;
        break;
      case oracle::OracleBackend::kSketch:
        mopts.oracle.sketch_instances = quick ? 16 : 40;
        mopts.oracle.sketch_k = 16;
        break;
    }
    core::IndexMaintainer maintainer(initial, &tb.graph(), &engine, mopts);
    for (size_t i = 0; i < deltas.size(); ++i) {
      core::CatalogDelta d;
      d.id = "oracle-" + std::to_string(i);
      d.item = deltas[i];
      const auto receipt = maintainer.SubmitDelta(d);
      INFLEX_CHECK(receipt.ok());
      INFLEX_CHECK(receipt.ValueOrDie().outcome ==
                   core::DeltaOutcome::kAdmitted);
      maintainer.Drain();
    }

    OracleRow row;
    row.backend = oracle::OracleBackendName(backend);
    const auto final_index = maintainer.current();
    for (const auto& item : deltas) {
      // The published point sits exactly at the delta's mixture, so the
      // 1-NN probe recovers the backend's seed list for that delta.
      const auto nn = final_index->tree().ExactKnn(item.probs(), 1).front();
      const rank::RankedList& list = final_index->seed_list(nn.point_id);
      const std::vector<graph::NodeId> seeds(
          list.begin(), list.begin() + std::min(list.size(), kSeedK));
      const auto est = im::EstimateSpread(
          tb.graph(), tb.graph().ItemArcProbabilities(item), seeds, mc);
      INFLEX_CHECK(est.ok());
      row.mean_spread += est.ValueOrDie().mean;
    }
    row.mean_spread /= static_cast<double>(deltas.size());

    const core::ServingStats stats = engine.cumulative_stats();
    row.admit_to_publish_mean_ms = stats.admit_to_publish_mean_ms;
    row.admit_to_publish_max_ms = stats.admit_to_publish_max_ms;
    for (const auto& pre : stats.precompute) {
      if (pre.backend == row.backend) row.precompute_mean_ms = pre.mean_ns() / 1e6;
    }
    if (!out.rows.empty()) {
      const OracleRow& golden = out.rows.front();
      row.quality_vs_celfpp =
          golden.mean_spread > 0.0 ? row.mean_spread / golden.mean_spread : 0.0;
      row.speedup_vs_celfpp =
          row.admit_to_publish_mean_ms > 0.0
              ? golden.admit_to_publish_mean_ms / row.admit_to_publish_mean_ms
              : 0.0;
    } else {
      row.quality_vs_celfpp = 1.0;
      row.speedup_vs_celfpp = 1.0;
    }
    std::printf("  %-8s %12.3f %12.3f %12.3f %10.2f %7.3fx\n",
                row.backend.c_str(), row.admit_to_publish_mean_ms,
                row.admit_to_publish_max_ms, row.precompute_mean_ms,
                row.mean_spread, row.quality_vs_celfpp);
    out.rows.push_back(std::move(row));
  }
  return out;
}

ChurnSummary RunChurnScenario(const Testbed& tb,
                              const std::vector<core::QueryRequest>& trace,
                              bool quick, oracle::OracleBackend churn_backend) {
  ChurnSummary out;
  auto initial = std::make_shared<core::InflexIndex>(*tb.index);
  out.index_points_initial = initial->num_index_points();

  ThreadPool serve_pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &serve_pool;
  eopts.cache.capacity = 4096;
  eopts.cache.num_shards = 16;
  eopts.enable_hit_accounting = true;
  core::QueryEngine engine(initial, eopts);

  constexpr size_t kMaintWorkers = 4;
  ThreadPool maint_pool(kMaintWorkers);
  core::IndexMaintainerOptions mopts;
  mopts.pool = &maint_pool;
  // Scaled-down precompute per admitted point: the scenario measures the
  // publication/eviction machinery, not CELF++ runtime.
  mopts.seed_list_length = quick ? 6 : 10;
  mopts.oracle_snapshots = quick ? 4 : 8;
  // The churn scenario exercises the publication/eviction machinery under
  // whichever precompute backend --oracle selects (CI smokes it with ris).
  // Precompute cost is scaled down to match the snapshot counts above: the
  // scenario measures publication, not seed selection.
  mopts.oracle.backend = churn_backend;
  mopts.oracle.num_rr_sets = quick ? 4000 : 12000;
  mopts.oracle.sketch_instances = quick ? 8 : 16;
  mopts.max_batch = 32;
  // A wide window: the batch cap and the in-flight gate close it, so the
  // burst drains in ceil(100/32) = 4 generations; the timeout is only a
  // safety valve (a timeout mid-burst would splinter the batch into extra
  // generations, so keep it far above any plausible precompute stall).
  mopts.max_batch_delay_ms = 60'000.0;
  mopts.min_point_age_generations = 1;
  mopts.min_index_points = initial->num_index_points();  // evict churn only
  core::IndexMaintainer maintainer(initial, &tb.graph(), &engine, mopts);

  // Serve a fixed request volume per phase regardless of trace size: the
  // decay/eviction dynamics (hit scores vs the threshold) must match between
  // --quick and full runs, or the quick run's weaker scores keep eviction
  // churning instead of stabilizing.
  const size_t serve_passes = (2048 + trace.size() - 1) / trace.size();
  const auto serve_phase = [&] {
    for (size_t p = 0; p < serve_passes; ++p) engine.QueryBatch(trace);
  };

  const auto snapshot_phase = [&](const char* name) {
    ChurnPhase p;
    p.phase = name;
    p.generation_swaps = engine.cumulative_stats().generation_swaps;
    p.index_points = maintainer.stats().index_points;
    p.points_evicted = maintainer.stats().points_evicted;
    out.phases.push_back(p);
    std::printf("  %-10s %8llu swaps %8zu points %8llu evicted\n", name,
                static_cast<unsigned long long>(p.generation_swaps),
                p.index_points,
                static_cast<unsigned long long>(p.points_evicted));
  };

  // Phase 0: warm serving — the hit accounting learns which index points
  // actually back answers before any churn arrives.
  serve_phase();
  snapshot_phase("warm");

  // Phase 1: the churn burst. 100 far-apart mixtures submitted back-to-back;
  // the publisher's coalescing window folds them into ceil(100/max_batch)
  // generations instead of 100.
  const auto burst =
      FarApartMixtures(*initial, 100, 0.15, tb.config.seed + 9);
  const uint64_t gens_before = maintainer.stats().generations_published;
  // Gate the maintenance workers behind a latch until the whole burst is
  // submitted: the scenario measures how a *concurrent* burst coalesces.
  // Without this, the first delta's (fast) precompute can finish before the
  // second SubmitDelta call even lands, and the publisher — correctly seeing
  // a lone ready delta with nothing in flight — publishes a singleton
  // generation, turning the measurement into a submit-loop race.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  for (size_t w = 0; w < kMaintWorkers; ++w) {
    maint_pool.Submit([&] {
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return gate_open; });
    });
  }
  for (size_t i = 0; i < burst.size(); ++i) {
    core::CatalogDelta d;
    d.id = "churn-" + std::to_string(i);
    d.item = burst[i];
    auto receipt = maintainer.SubmitDelta(d);
    if (receipt.ok() &&
        receipt.ValueOrDie().outcome == core::DeltaOutcome::kAdmitted) {
      ++out.admitted;
    }
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  out.deltas_submitted = burst.size();
  maintainer.Drain();
  out.burst_generations =
      maintainer.stats().generations_published - gens_before;
  out.batched_deltas = maintainer.stats().batched_deltas;
  out.index_points_peak = maintainer.stats().index_points;
  snapshot_phase("burst");

  // Phase 2: decay sweeps under continued serving. The churn points draw no
  // traffic, so their scores stay at zero and the sweeps evict them back to
  // the floor; the index size must stabilize, not keep shrinking. Evicting a
  // point re-routes its traffic to neighbors and shifts their hit scores, so
  // a marginal point can keep slipping under the threshold for a few rounds —
  // sweep until the size repeats (the artifact gate), bounded at 8 rounds.
  size_t prev_points = maintainer.stats().index_points;
  for (int round = 1; round <= 8; ++round) {
    serve_phase();
    maintainer.RequestDecaySweep();
    maintainer.Drain();
    char name[32];
    std::snprintf(name, sizeof(name), "sweep-%d", round);
    snapshot_phase(name);
    const size_t now = out.phases.back().index_points;
    if (round >= 2 && now == prev_points) break;
    prev_points = now;
  }
  out.decay_sweeps = maintainer.stats().decay_sweeps;
  out.points_evicted = maintainer.stats().points_evicted;
  return out;
}

double P99Ms(std::vector<double>* latencies_ms) {
  if (latencies_ms->empty()) return 0.0;
  std::sort(latencies_ms->begin(), latencies_ms->end());
  return (*latencies_ms)[static_cast<size_t>(
      0.99 * static_cast<double>(latencies_ms->size() - 1))];
}

/// The noisy-neighbor scenario: one "hot" tenant floods the shared serving
/// plane from multiple threads while quiet tenants serve their normal
/// traces. The hot tenant's token bucket sheds the flood at the admission
/// layer — a shed costs a bucket probe, not a KL search — so the quiet
/// tenants' tail latency must stay within a small factor of what they see
/// serving alone. Caches are off: every admitted query pays the real search
/// cost, which is exactly the resource the flood would otherwise steal.
TenantSummary RunTenantScenario(const Testbed& tb,
                                const std::vector<core::QueryRequest>& trace,
                                bool quick) {
  TenantSummary out;
  out.quick = quick;
  constexpr size_t kQuiet = 3;
  constexpr size_t kFlooders = 2;
  out.quiet_tenants = kQuiet;
  auto initial = std::make_shared<core::InflexIndex>(*tb.index);

  tenant::TenantRegistry registry;
  tenant::TenantRouter router(&registry);

  const auto make_tenant = [&](const std::string& id,
                               const tenant::TenantBudget& budget) {
    tenant::TenantOptions topts;
    topts.id = id;
    topts.budget = budget;
    topts.engine.enable_cache = false;
    topts.with_maintainer = false;  // query-only: the scenario floods reads
    auto created = registry.CreateTenant(topts, initial, &tb.graph());
    INFLEX_CHECK(created.ok());
    return created.ValueOrDie();
  };

  tenant::TenantBudget hot_budget;
  hot_budget.query_rate_per_sec = 200.0;
  hot_budget.query_burst = 50.0;
  out.hot_budget_qps = hot_budget.query_rate_per_sec;
  const auto hot = make_tenant("hot", hot_budget);
  std::vector<std::shared_ptr<tenant::Tenant>> quiet;
  for (size_t i = 0; i < kQuiet; ++i) {
    quiet.push_back(make_tenant("quiet-" + std::to_string(i),
                                tenant::TenantBudget{}));  // unlimited
  }

  const size_t per_quiet = quick ? 256 : 1024;

  // One quiet tenant's serving loop: route -> query -> record the latency.
  const auto run_quiet = [&](tenant::Tenant* t, std::vector<double>* lat) {
    for (size_t i = 0; i < per_quiet; ++i) {
      const auto& req = trace[i % trace.size()];
      Timer qt;
      auto route = router.RouteQuery(t->id());
      if (route.decision != tenant::RouteDecision::kOk) continue;
      if (route.tenant->engine()->Query(req).ok()) {
        lat->push_back(qt.ElapsedSeconds() * 1e3);
      }
    }
  };

  // The hot tenant's flood loop: hammer until the quiet tenants finish. A
  // shed client honors the retry-after interval instead of spinning (that is
  // what the wire layer tells it to do), so the flood stays a steady
  // thousands-of-attempts-per-second stream, not a busy-wait that measures
  // raw CPU contention.
  std::atomic<bool> storm_done{false};
  const auto run_hot = [&](std::vector<double>* lat, size_t* attempts) {
    size_t i = 0;
    while (!storm_done.load(std::memory_order_relaxed)) {
      const auto& req = trace[i++ % trace.size()];
      ++*attempts;
      auto route = router.RouteQuery("hot");
      if (route.decision != tenant::RouteDecision::kOk) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      Timer qt;
      if (route.tenant->engine()->Query(req).ok()) {
        lat->push_back(qt.ElapsedSeconds() * 1e3);
      }
    }
  };

  // Phase A — solo baseline: the quiet tenants serve concurrently with each
  // other (that is their steady state) but with no hot tenant traffic.
  std::vector<std::vector<double>> solo_lat(kQuiet);
  {
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kQuiet; ++i) {
      threads.emplace_back(run_quiet, quiet[i].get(), &solo_lat[i]);
    }
    for (auto& th : threads) th.join();
  }

  // Phase B — the storm: same quiet workload, now next to the flood.
  std::vector<std::vector<double>> storm_lat(kQuiet);
  std::vector<std::vector<double>> hot_lat(kFlooders);
  std::vector<size_t> hot_attempts(kFlooders, 0);
  {
    std::vector<std::thread> flooders;
    for (size_t i = 0; i < kFlooders; ++i) {
      flooders.emplace_back(run_hot, &hot_lat[i], &hot_attempts[i]);
    }
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kQuiet; ++i) {
      threads.emplace_back(run_quiet, quiet[i].get(), &storm_lat[i]);
    }
    for (auto& th : threads) th.join();
    storm_done.store(true, std::memory_order_relaxed);
    for (auto& th : flooders) th.join();
  }

  std::vector<double> hot_all;
  for (size_t i = 0; i < kFlooders; ++i) {
    out.hot_attempts += hot_attempts[i];
    hot_all.insert(hot_all.end(), hot_lat[i].begin(), hot_lat[i].end());
  }
  const tenant::TenantStats hot_stats = hot->Snapshot();
  out.hot_admitted = hot_stats.queries_admitted;
  out.hot_shed = hot_stats.queries_shed;
  out.hot_shed_rate =
      out.hot_attempts > 0
          ? static_cast<double>(out.hot_shed) /
                static_cast<double>(out.hot_attempts)
          : 0.0;
  out.hot_p99_ms = P99Ms(&hot_all);

  std::printf("  %-10s %10s %12s %12s %10s %8s\n", "tenant", "requests",
              "solo p99 ms", "storm p99 ms", "isolation", "shed");
  for (size_t i = 0; i < kQuiet; ++i) {
    TenantQuietRow row;
    row.tenant = quiet[i]->id();
    row.requests = per_quiet;
    row.solo_p99_ms = P99Ms(&solo_lat[i]);
    row.storm_p99_ms = P99Ms(&storm_lat[i]);
    row.isolation_ratio =
        row.solo_p99_ms > 0.0 ? row.storm_p99_ms / row.solo_p99_ms : 0.0;
    row.shed = quiet[i]->Snapshot().queries_shed;
    if (row.isolation_ratio > out.isolation_ratio_max) {
      out.isolation_ratio_max = row.isolation_ratio;
    }
    std::printf("  %-10s %10zu %12.4f %12.4f %9.2fx %8llu\n",
                row.tenant.c_str(), row.requests, row.solo_p99_ms,
                row.storm_p99_ms, row.isolation_ratio,
                static_cast<unsigned long long>(row.shed));
    out.rows.push_back(std::move(row));
  }
  std::printf(
      "  hot: %zu attempts, %llu admitted, %llu shed (%.1f%%), "
      "admitted p99 %.4f ms\n",
      out.hot_attempts, static_cast<unsigned long long>(out.hot_admitted),
      static_cast<unsigned long long>(out.hot_shed),
      100.0 * out.hot_shed_rate, out.hot_p99_ms);
  return out;
}

/// Mean KL evaluations per successfully served request (0 for fully cached
/// batches — cache hits run no search).
double MeanKlEvaluations(const std::vector<Result<core::QueryResult>>& results) {
  size_t ok = 0;
  double total = 0.0;
  for (const auto& r : results) {
    if (!r.ok()) continue;
    ++ok;
    total += static_cast<double>(r.ValueOrDie().search_stats.kl_evaluations);
  }
  return ok > 0 ? total / static_cast<double>(ok) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  oracle::OracleBackend churn_backend = oracle::OracleBackend::kCelfPp;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--oracle=", 9) == 0) {
      auto parsed = oracle::ParseOracleBackend(argv[i] + 9);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      churn_backend = parsed.ValueOrDie();
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--oracle=celfpp|ris|sketch]\n",
                   argv[0]);
      return 2;
    }
  }
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Serving throughput — batched parallel queries + sharded cache",
              tb);
  if (quick) std::printf("[--quick] smoke-sized trace; numbers are not comparable\n");

  // --quick keeps every section (the checker still sees the full shape) but
  // shrinks the trace so a CI smoke run finishes in seconds.
  const size_t kUnique = 96;
  const size_t kTotal = quick ? 512 : 2048;
  constexpr size_t kK = 10;
  const auto trace = MakeTrace(tb, kUnique, kTotal, kK);
  if (trace.empty()) {
    std::fprintf(stderr, "failed to build the serving trace\n");
    return 1;
  }

  // Serial baseline: one thread, straight through the index, no cache.
  double serial_qps = 0.0;
  double serial_kl_per_query = 0.0;
  {
    Timer t;
    size_t failed = 0;
    size_t kl_total = 0;
    for (const auto& r : trace) {
      auto result = tb.index->Query(r.item, r.k, r.options);
      if (!result.ok()) {
        ++failed;
      } else {
        kl_total += result.ValueOrDie().search_stats.kl_evaluations;
      }
    }
    const double wall_s = t.ElapsedSeconds();
    serial_qps = static_cast<double>(trace.size()) / wall_s;
    serial_kl_per_query = trace.size() > failed
                              ? static_cast<double>(kl_total) /
                                    static_cast<double>(trace.size() - failed)
                              : 0.0;
    std::printf("serial (no cache, 1 thread): %zu queries in %.1f ms -> "
                "%.0f QPS, %.1f KL evals/query (%zu failed)\n\n",
                trace.size(), wall_s * 1e3, serial_qps, serial_kl_per_query,
                failed);
  }

  std::printf("%-28s %10s %8s %9s %9s %9s %9s %9s %9s\n", "configuration",
              "QPS", "vs serial", "hit rate", "p50 ms", "p95 ms", "p99 ms",
              "max ms", "KL/query");
  std::vector<ServingRow> rows;
  const size_t thread_counts[] = {1, 2, 4, 8};
  for (bool cached : {false, true}) {
    for (size_t threads : thread_counts) {
      ThreadPool pool(threads);
      core::QueryEngineOptions eopts;
      eopts.pool = &pool;
      eopts.enable_cache = cached;
      eopts.cache.capacity = 4096;
      eopts.cache.num_shards = 16;
      core::QueryEngine engine(tb.index.get(), eopts);
      // Warm-up pass (populates the cache for the cached rows), then the
      // measured pass — steady-state serving is what the row reports.
      engine.QueryBatch(trace);
      core::ServingStats stats;
      const auto results = engine.QueryBatch(trace, &stats);
      char label[64];
      std::snprintf(label, sizeof(label), "%s, %zu thread%s",
                    cached ? "cached" : "uncached", threads,
                    threads == 1 ? "" : "s");
      ServingRow row;
      row.label = label;
      row.cached = cached;
      row.threads = threads;
      row.stats = stats;
      row.kl_evals_per_query = MeanKlEvaluations(results);
      rows.push_back(row);
      std::printf(
          "%-28s %10.0f %7.2fx %8.1f%% %9.3f %9.3f %9.3f %9.3f %9.1f\n", label,
          stats.qps, stats.qps / serial_qps, 100.0 * stats.hit_rate(),
          stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.max_ms,
          row.kl_evals_per_query);
    }
  }
  std::printf("\nChurn + decay: 100-delta burst, then eviction sweeps "
              "(oracle: %s)\n",
              oracle::OracleBackendName(churn_backend));
  const ChurnSummary churn = RunChurnScenario(tb, trace, quick, churn_backend);
  std::printf(
      "  burst: %llu/%zu admitted -> %llu generations (%llu coalesced), "
      "index %zu -> %zu; sweeps: %llu evicted, final %zu points\n",
      static_cast<unsigned long long>(churn.admitted), churn.deltas_submitted,
      static_cast<unsigned long long>(churn.burst_generations),
      static_cast<unsigned long long>(churn.batched_deltas),
      churn.index_points_initial, churn.index_points_peak,
      static_cast<unsigned long long>(churn.points_evicted),
      churn.phases.empty() ? 0 : churn.phases.back().index_points);

  std::printf("\nOracle A/B: admission-time precompute per backend\n");
  const OracleSummary oracle_summary = RunOracleScenario(tb, quick);

  std::printf("\nMulti-tenant noisy neighbor: hot tenant flood vs %d quiet "
              "tenants\n", 3);
  const TenantSummary tenant_summary = RunTenantScenario(tb, trace, quick);

  WriteServingJson(serial_qps, serial_kl_per_query, rows, churn,
                   oracle_summary, tenant_summary);

  std::printf(
      "\nShape to expect: uncached QPS grows with threads up to the physical "
      "core count; the cached rows add a ~%zux request-collapse on top "
      "(%zu unique mixtures serve %zu requests), with p50 dropping to the "
      "cache-probe cost. The churn section must show a burst coalescing into "
      "a handful of generations and the decay sweeps returning the index to "
      "its floor.\n",
      kTotal / kUnique, kUnique, kTotal);
  return 0;
}
