// Serving throughput: batched parallel TIM query serving through the
// QueryEngine (sharded QueryCache + ThreadPool fan-out) versus a serial
// query loop. This is the system counterpart of Figure 7: the paper makes a
// single query cheap; the serving layer makes *many concurrent* queries
// cheap. Reports QPS scaling with thread count, cache effectiveness, and the
// latency tail an operator would monitor (p50/p95/p99).
//
// Note: QPS scales with *physical* cores. On a single-core host the threaded
// rows collapse to ~1x and only the cache rows show gains.
#include <cstdio>
#include <vector>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "data/workload.h"
#include "inflex/query_engine.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace inflex;                // NOLINT
using namespace inflex::benchsupport;  // NOLINT

namespace {

/// A serving trace: `unique` distinct mixtures, expanded to `total` requests
/// by re-drawing from the unique set (ad platforms see heavy re-submission of
/// near-identical campaigns, which is what the cache exploits).
std::vector<core::QueryRequest> MakeTrace(const Testbed& tb, size_t unique,
                                          size_t total, size_t k) {
  data::QueryWorkloadOptions wopts;
  wopts.num_data_driven = unique / 2;
  wopts.num_uniform = unique - wopts.num_data_driven;
  wopts.seed = 1303;
  auto workload = data::GenerateQueryWorkload(tb.dataset->catalog, wopts);
  std::vector<core::QueryRequest> trace;
  if (!workload.ok()) return trace;
  const auto& qs = workload.ValueOrDie().queries;
  Rng rng(77);
  trace.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    core::QueryRequest r;
    r.item = qs[i < qs.size() ? i : rng.UniformInt(qs.size())];
    r.k = k;
    trace.push_back(std::move(r));
  }
  return trace;
}

}  // namespace

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Serving throughput — batched parallel queries + sharded cache",
              tb);

  constexpr size_t kUnique = 96;
  constexpr size_t kTotal = 2048;
  constexpr size_t kK = 10;
  const auto trace = MakeTrace(tb, kUnique, kTotal, kK);
  if (trace.empty()) {
    std::fprintf(stderr, "failed to build the serving trace\n");
    return 1;
  }

  // Serial baseline: one thread, straight through the index, no cache.
  double serial_qps = 0.0;
  {
    Timer t;
    size_t failed = 0;
    for (const auto& r : trace) {
      if (!tb.index->Query(r.item, r.k, r.options).ok()) ++failed;
    }
    const double wall_s = t.ElapsedSeconds();
    serial_qps = static_cast<double>(trace.size()) / wall_s;
    std::printf("serial (no cache, 1 thread): %zu queries in %.1f ms -> "
                "%.0f QPS (%zu failed)\n\n",
                trace.size(), wall_s * 1e3, serial_qps, failed);
  }

  std::printf("%-28s %10s %8s %9s %9s %9s %9s %9s\n", "configuration", "QPS",
              "vs serial", "hit rate", "p50 ms", "p95 ms", "p99 ms", "max ms");
  const size_t thread_counts[] = {1, 2, 4, 8};
  for (bool cached : {false, true}) {
    for (size_t threads : thread_counts) {
      ThreadPool pool(threads);
      core::QueryEngineOptions eopts;
      eopts.pool = &pool;
      eopts.enable_cache = cached;
      eopts.cache.capacity = 4096;
      eopts.cache.num_shards = 16;
      core::QueryEngine engine(tb.index.get(), eopts);
      // Warm-up pass (populates the cache for the cached rows), then the
      // measured pass — steady-state serving is what the row reports.
      engine.QueryBatch(trace);
      core::ServingStats stats;
      engine.QueryBatch(trace, &stats);
      char label[64];
      std::snprintf(label, sizeof(label), "%s, %zu thread%s",
                    cached ? "cached" : "uncached", threads,
                    threads == 1 ? "" : "s");
      std::printf("%-28s %10.0f %7.2fx %8.1f%% %9.3f %9.3f %9.3f %9.3f\n",
                  label, stats.qps, stats.qps / serial_qps,
                  100.0 * stats.hit_rate(), stats.p50_ms, stats.p95_ms,
                  stats.p99_ms, stats.max_ms);
    }
  }

  std::printf(
      "\nShape to expect: uncached QPS grows with threads up to the physical "
      "core count; the cached rows add a ~%zux request-collapse on top "
      "(%zu unique mixtures serve %zu requests), with p50 dropping to the "
      "cache-probe cost.\n",
      kTotal / kUnique, kUnique, kTotal);
  return 0;
}
