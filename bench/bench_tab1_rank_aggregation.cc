// Table 1: Kendall-τ distance between the seed lists produced by the four
// aggregation algorithms (Borda, weighted Borda, Copeland, weighted
// Copeland) and the offline ground truth, for seed-set sizes k = 5..50,
// retrieving the top-10 exact nearest neighbors (the paper's setting).
// Paper shape: weighted variants beat unweighted; Copeland^w is best.
#include <cstdio>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "stats/descriptive.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Table 1 — Kendall-tau of aggregated seed lists vs offline "
              "ground truth (top-10 exact NN retrieval)", tb);

  struct Config {
    const char* name;
    rank::AggregationMethod method;
    bool weighted;
  };
  const Config configs[] = {
      {"Borda", rank::AggregationMethod::kBorda, false},
      {"Borda^w", rank::AggregationMethod::kBorda, true},
      {"Copeland", rank::AggregationMethod::kCopeland, false},
      {"Copeland^w", rank::AggregationMethod::kCopeland, true},
  };

  TablePrinter table(
      {"k", "Borda", "Borda^w", "Copeland", "Copeland^w"});
  std::vector<std::vector<double>> per_config_k50(4);
  for (size_t k = 5; k <= 50; k += 5) {
    std::vector<std::string> row = {std::to_string(k)};
    for (size_t c = 0; c < 4; ++c) {
      core::QueryOptions opts;
      opts.strategy = core::QueryStrategy::kExactKnn;
      opts.knn_k = 10;
      opts.aggregation.method = configs[c].method;
      opts.aggregation.use_weights = configs[c].weighted;
      opts.weighting.enable_selection = false;
      auto m = EvaluateStrategy(tb, opts, configs[c].name, k,
                                /*evaluate_spread=*/false);
      if (!m.ok()) {
        std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
        return 1;
      }
      row.push_back(TablePrinter::Fmt(m.ValueOrDie().avg_kendall));
      if (k == 50) per_config_k50[c] = m.ValueOrDie().kendall_per_query;
    }
    table.AddRow(row);
  }
  table.Print();

  // Significance of Copeland^w vs the alternatives at k = 50.
  std::printf("\npaired t-tests at k=50 (positive t: Copeland^w is "
              "closer to the ground truth):\n");
  const char* names[] = {"Borda", "Borda^w", "Copeland"};
  for (size_t c = 0; c < 3; ++c) {
    auto t = stats::PairedTTest(per_config_k50[c], per_config_k50[3]);
    if (t.ok()) {
      std::printf("  Copeland^w vs %-10s t = %6.2f  p = %.4f\n", names[c],
                  t.ValueOrDie().t_statistic,
                  t.ValueOrDie().p_value_two_sided);
    }
  }
  std::printf("\nPaper shape to match: weighted variants <= unweighted; "
              "Copeland^w lowest across k (Table 1 reports 0.06-0.10).\n");
  return 0;
}
