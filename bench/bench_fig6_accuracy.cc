// Figure 6: accuracy comparison (avg Kendall-τ vs offline ground truth) of
// INFLEX against the retrieval baselines exactKNN, approxKNN,
// approxKNN+Sel and approxAD, for k = 10..50 with K = 10.
// Paper shape: INFLEX ≈ exactKNN/approxKNN (no statistical difference),
// better than approxKNN+Sel and approxAD.
#include <cstdio>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "stats/descriptive.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

namespace {

core::QueryOptions OptionsFor(core::QueryStrategy s) {
  core::QueryOptions opts;
  opts.strategy = s;
  opts.knn_k = 10;
  opts.max_leaves = 5;
  return opts;
}

}  // namespace

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Figure 6 — accuracy comparison (avg Kendall-tau to offline "
              "ground truth, K=10)", tb);

  const core::QueryStrategy strategies[] = {
      core::QueryStrategy::kInflex, core::QueryStrategy::kExactKnn,
      core::QueryStrategy::kApproxKnn, core::QueryStrategy::kApproxKnnSel,
      core::QueryStrategy::kApproxAd};

  TablePrinter table({"k", "INFLEX", "exactKNN", "approxKNN",
                      "approxKNN+Sel", "approxAD"});
  std::vector<double> inflex_k50, approxknn_k50;
  for (size_t k = 10; k <= 50; k += 10) {
    std::vector<std::string> row = {std::to_string(k)};
    for (core::QueryStrategy s : strategies) {
      auto m = EvaluateStrategy(tb, OptionsFor(s), core::QueryStrategyName(s),
                                k, /*evaluate_spread=*/false);
      if (!m.ok()) {
        std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
        return 1;
      }
      row.push_back(TablePrinter::Fmt(m.ValueOrDie().avg_kendall));
      if (k == 50 && s == core::QueryStrategy::kInflex) {
        inflex_k50 = m.ValueOrDie().kendall_per_query;
      }
      if (k == 50 && s == core::QueryStrategy::kApproxKnn) {
        approxknn_k50 = m.ValueOrDie().kendall_per_query;
      }
    }
    table.AddRow(row);
  }
  table.Print();

  auto t = stats::PairedTTest(inflex_k50, approxknn_k50);
  if (t.ok()) {
    std::printf("\npaired t-test INFLEX vs approxKNN at k=50: t = %.2f, "
                "p = %.4f (paper: no statistical difference)\n",
                t.ValueOrDie().t_statistic,
                t.ValueOrDie().p_value_two_sided);
  }
  std::printf("\nPaper shape to match: INFLEX tracks exactKNN/approxKNN; "
              "approxAD and approxKNN+Sel trail.\n");
  return 0;
}
