// Figure 5 + the early-stopping analysis of §5: recall of the top-K true
// nearest neighbors under leaf-bounded search for a growing leaf budget,
// and the Anderson-Darling early-stopping criterion's recall / KL-evaluation
// trade-off (the paper reports ~80% recall within 5 leaves, AD recall
// 0.61-0.63 at roughly half the KL evaluations, ~3.65 leaves on average).
#include <algorithm>
#include <cstdio>
#include <set>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "stats/descriptive.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Figure 5 — retrieval recall of leaf-bounded search and the "
              "Anderson-Darling early stop", tb);

  const auto& tree = tb.index->tree();
  const std::vector<size_t> ks = {5, 10, 15, 20};
  const std::vector<size_t> leaf_budgets = {1, 2, 3, 4, 5, 6, 8};

  // True nearest neighbors per query via linear scan.
  std::vector<std::vector<std::set<uint32_t>>> truth(
      tb.workload.queries.size());
  for (size_t qi = 0; qi < tb.workload.queries.size(); ++qi) {
    for (size_t k : ks) {
      const auto nn = tree.LinearScanKnn(tb.workload.queries[qi].probs(), k);
      std::set<uint32_t> ids;
      for (const auto& nb : nn) ids.insert(nb.point_id);
      truth[qi].push_back(std::move(ids));
    }
  }

  TablePrinter table({"visited leaves", "recall@5", "recall@10", "recall@15",
                      "recall@20", "avg KL evals"});
  for (size_t budget : leaf_budgets) {
    std::vector<double> recall(ks.size(), 0.0);
    double kl_evals = 0.0;
    for (size_t qi = 0; qi < tb.workload.queries.size(); ++qi) {
      bbtree::SearchStats stats;
      const auto got = tree.LeafBoundedKnn(tb.workload.queries[qi].probs(),
                                           20, budget, &stats);
      kl_evals += static_cast<double>(stats.kl_evaluations);
      for (size_t kidx = 0; kidx < ks.size(); ++kidx) {
        size_t hits = 0;
        for (size_t r = 0; r < std::min(ks[kidx], got.size()); ++r) {
          hits += truth[qi][kidx].count(got[r].point_id);
        }
        recall[kidx] +=
            static_cast<double>(hits) / static_cast<double>(ks[kidx]);
      }
    }
    const double n = static_cast<double>(tb.workload.queries.size());
    table.AddRow({std::to_string(budget), TablePrinter::Fmt(recall[0] / n),
                  TablePrinter::Fmt(recall[1] / n),
                  TablePrinter::Fmt(recall[2] / n),
                  TablePrinter::Fmt(recall[3] / n),
                  TablePrinter::Fmt(kl_evals / n, 1)});
  }
  table.Print();

  // Anderson-Darling early stop.
  std::printf("\nAnderson-Darling early-stopping criterion:\n");
  bbtree::InflexSearchOptions ad_opts;
  ad_opts.epsilon_exact = -1.0;
  ad_opts.max_leaves = 5;
  std::vector<double> ad_recall(ks.size(), 0.0);
  std::vector<double> ad_kls, ad_leaves;
  std::vector<double> l5_kls;
  std::vector<double> ad_recall10_per_query, l3_recall10_per_query;
  for (size_t qi = 0; qi < tb.workload.queries.size(); ++qi) {
    const auto r = tree.InflexSearch(tb.workload.queries[qi].probs(), ad_opts);
    ad_kls.push_back(static_cast<double>(r.stats.kl_evaluations));
    ad_leaves.push_back(static_cast<double>(r.stats.leaves_visited));
    for (size_t kidx = 0; kidx < ks.size(); ++kidx) {
      size_t hits = 0;
      for (size_t i = 0; i < std::min(ks[kidx], r.neighbors.size()); ++i) {
        hits += truth[qi][kidx].count(r.neighbors[i].point_id);
      }
      const double rec =
          static_cast<double>(hits) / static_cast<double>(ks[kidx]);
      ad_recall[kidx] += rec;
      if (ks[kidx] == 10) ad_recall10_per_query.push_back(rec);
    }
    // Fixed-leaf baselines for the paired comparisons: the paper contrasts
    // the AD stop against visiting 5 leaves (KL-evaluation savings, "101 vs
    // 200") and against visiting up to 3 leaves (recall gain).
    bbtree::SearchStats l5_stats;
    tree.LeafBoundedKnn(tb.workload.queries[qi].probs(), 10, 5, &l5_stats);
    l5_kls.push_back(static_cast<double>(l5_stats.kl_evaluations));
    const auto l3 =
        tree.LeafBoundedKnn(tb.workload.queries[qi].probs(), 10, 3);
    size_t hits = 0;
    for (size_t i = 0; i < std::min<size_t>(10, l3.size()); ++i) {
      hits += truth[qi][1].count(l3[i].point_id);
    }
    l3_recall10_per_query.push_back(hits / 10.0);
  }
  const double n = static_cast<double>(tb.workload.queries.size());
  TablePrinter ad_table({"metric", "value"});
  for (size_t kidx = 0; kidx < ks.size(); ++kidx) {
    ad_table.AddRow({"recall@" + std::to_string(ks[kidx]),
                     TablePrinter::Fmt(ad_recall[kidx] / n)});
  }
  ad_table.AddRow({"avg leaves visited",
                   TablePrinter::Fmt(stats::Mean(ad_leaves), 2)});
  ad_table.AddRow({"avg KL evaluations",
                   TablePrinter::Fmt(stats::Mean(ad_kls), 1)});
  ad_table.AddRow({"avg KL evals, 5-leaf baseline",
                   TablePrinter::Fmt(stats::Mean(l5_kls), 1)});
  ad_table.Print();

  auto kl_t = stats::PairedTTest(l5_kls, ad_kls);
  auto rec_t = stats::PairedTTest(ad_recall10_per_query,
                                  l3_recall10_per_query);
  if (kl_t.ok()) {
    std::printf("\npaired t-test, KL evals (5-leaf vs AD): t = %.2f, "
                "p = %.4f\n",
                kl_t.ValueOrDie().t_statistic,
                kl_t.ValueOrDie().p_value_two_sided);
  }
  if (rec_t.ok()) {
    std::printf("paired t-test, recall@10 (AD vs 3-leaf): t = %.2f, "
                "p = %.4f\n",
                rec_t.ValueOrDie().t_statistic,
                rec_t.ValueOrDie().p_value_two_sided);
  }
  std::printf("\nPaper shape to match: recall grows with the leaf budget "
              "(~0.8 within 5 leaves); the AD stop trades a modest recall "
              "loss for roughly half the KL evaluations.\n");
  return 0;
}
