// Ablation: the importance-weighting function of §4.2. Compares
//  - unweighted aggregation,
//  - the paper's Eq. 9 with KL_max = the smoothed-corner bound (which makes
//    all weights ≈ 1 — numerically indiscriminate; see DESIGN.md §5),
//  - Eq. 9 with a tighter KL_max,
//  - exponential decay at several scales (the library default).
#include <cstdio>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "simplex/divergence.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Ablation — importance-weighting function (k = 50, INFLEX "
              "strategy)", tb);

  struct Config {
    std::string name;
    core::WeightingOptions weighting;
    bool use_weights = true;
  };
  std::vector<Config> configs;
  {
    Config c;
    c.name = "unweighted";
    c.use_weights = false;
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "Eq.9, KL_max=corner bound";
    c.weighting.function = core::WeightFunction::kPaperEq9;
    c.weighting.kl_max = simplex::KlMaxBound();
    configs.push_back(c);
  }
  {
    Config c;
    c.name = "Eq.9, KL_max=4";
    c.weighting.function = core::WeightFunction::kPaperEq9;
    c.weighting.kl_max = 4.0;
    configs.push_back(c);
  }
  for (double scale : {0.25, 0.5, 1.0}) {
    Config c;
    c.name = "exp decay, scale=" + TablePrinter::Fmt(scale, 2);
    c.weighting.function = core::WeightFunction::kExponentialDecay;
    c.weighting.exponential_scale = scale;
    configs.push_back(c);
  }

  TablePrinter table({"weighting", "avg Kendall-tau", "avg lists aggregated",
                      "avg query ms"});
  for (const auto& c : configs) {
    core::QueryOptions opts;
    opts.strategy = core::QueryStrategy::kInflex;
    opts.weighting = c.weighting;
    opts.aggregation.use_weights = c.use_weights;
    auto m = EvaluateStrategy(tb, opts, c.name, 50, /*evaluate_spread=*/false);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    table.AddRow({c.name, TablePrinter::Fmt(m.ValueOrDie().avg_kendall),
                  TablePrinter::Fmt(m.ValueOrDie().avg_lists_aggregated, 2),
                  TablePrinter::Fmt(m.ValueOrDie().avg_query_ms)});
  }
  table.Print();
  std::printf("\nExpected: weighting helps (Table 1's Copeland^w gain); the "
              "corner-bound Eq. 9 behaves like the unweighted variant "
              "because its weights are all ~1.\n");
  return 0;
}
