// Google-benchmark microbenchmarks of the hot kernels: KL divergence (the
// reference scalar path vs the factorized vectorized kernel layer), ILR,
// Eq. 1 instance materialization, cascade simulation, snapshot-oracle
// marginal gains, bb-tree searches, Kendall-τ, and the aggregation kernels.
// After the google-benchmark suite, main() runs a self-timed reference-vs-
// kernel comparison across topic counts and leaf-scan batch sizes and writes
// it to BENCH_kernels.json (see RunKernelComparison below).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "bbtree/bbtree.h"
#include "data/synthetic.h"
#include "im/cascade.h"
#include "im/lt_model.h"
#include "im/ris.h"
#include "im/snapshot_oracle.h"
#include "rank/aggregators.h"
#include "rank/kendall_tau.h"
#include "simplex/divergence.h"
#include "simplex/ilr.h"
#include "simplex/kl_kernel.h"
#include "simplex/kl_kernel_simd.h"
#include "simplex/sampling.h"
#include "util/aligned.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace inflex;  // NOLINT

const data::SyntheticDataset& SharedDataset() {
  static const data::SyntheticDataset* ds = [] {
    data::SyntheticDatasetOptions opts;
    opts.num_users = 1000;
    opts.num_topics = 10;
    opts.num_items = 500;
    opts.seed = 3;
    auto r = data::GenerateSyntheticDataset(opts);
    INFLEX_CHECK(r.ok());
    return new data::SyntheticDataset(std::move(r).ValueOrDie());
  }();
  return *ds;
}

void BM_KlDivergence(benchmark::State& state) {
  Rng rng(1);
  const auto p = simplex::SampleUniformSimplex(state.range(0), &rng);
  const auto q = simplex::SampleUniformSimplex(state.range(0), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simplex::KlDivergence(p, q));
  }
}
BENCHMARK(BM_KlDivergence)->Arg(10)->Arg(50)->Arg(200);

void BM_KlKernelFactorized(benchmark::State& state) {
  // The factorized evaluation as the tree performs it: log q̂ and −H(p)
  // amortized away, one dot product per call.
  Rng rng(1);
  const size_t dim = state.range(0);
  const auto p = simplex::SampleUniformSimplex(dim, &rng);
  const auto q = simplex::SampleUniformSimplex(dim, &rng);
  const double negent = simplex::NegativeEntropy(p.data(), dim);
  simplex::KlQueryContext ctx;
  ctx.Reset(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Kl(p.data(), negent));
  }
}
BENCHMARK(BM_KlKernelFactorized)->Arg(10)->Arg(50)->Arg(200);

// One leaf scan: `batch` stored points against one query. The reference
// variant calls KlDivergence per point (scalar logs every call); the kernel
// variant is one KlBatch sweep over the contiguous rows.
void BM_KlLeafScanReference(benchmark::State& state) {
  Rng rng(1);
  const size_t dim = state.range(0);
  const size_t batch = state.range(1);
  const auto points = simplex::SampleUniformSimplexMany(dim, batch, &rng);
  const auto q = simplex::SampleUniformSimplex(dim, &rng);
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& p : points) acc += simplex::KlDivergence(p, q);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_KlLeafScanReference)
    ->Args({50, 16})
    ->Args({50, 64})
    ->Args({50, 256})
    ->Args({10, 64})
    ->Args({200, 64});

void BM_KlLeafScanKernel(benchmark::State& state) {
  Rng rng(1);
  const size_t dim = state.range(0);
  const size_t batch = state.range(1);
  const auto points = simplex::SampleUniformSimplexMany(dim, batch, &rng);
  std::vector<double> rows(batch * dim), negent(batch), out(batch);
  for (size_t i = 0; i < batch; ++i) {
    std::copy(points[i].begin(), points[i].end(), rows.begin() + i * dim);
    negent[i] = simplex::NegativeEntropy(points[i].data(), dim);
  }
  simplex::KlQueryContext ctx;
  ctx.Reset(simplex::SampleUniformSimplex(dim, &rng));
  for (auto _ : state) {
    simplex::KlBatch(rows.data(), negent.data(), batch, dim, ctx.log_query(),
                     out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_KlLeafScanKernel)
    ->Args({50, 16})
    ->Args({50, 64})
    ->Args({50, 256})
    ->Args({10, 64})
    ->Args({200, 64});

void BM_IlrTransform(benchmark::State& state) {
  Rng rng(2);
  const auto p = simplex::SampleUniformSimplex(state.range(0), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simplex::IlrTransform(p));
  }
}
BENCHMARK(BM_IlrTransform)->Arg(10)->Arg(50);

void BM_ItemArcProbabilities(benchmark::State& state) {
  const auto& ds = SharedDataset();
  graph::ArcProbabilities buf;
  const auto item = simplex::TopicDistribution::Uniform(10);
  for (auto _ : state) {
    ds.graph.ItemArcProbabilitiesInto(item, &buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.graph.num_arcs()));
}
BENCHMARK(BM_ItemArcProbabilities);

void BM_CascadeSimulation(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto probs =
      ds.graph.ItemArcProbabilities(ds.catalog[state.range(0)]);
  im::CascadeWorkspace ws(ds.graph.num_nodes());
  Rng rng(4);
  const std::vector<graph::NodeId> seeds = {1, 50, 200};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        im::SimulateCascadeCount(ds.graph, probs, seeds, &rng, &ws));
  }
}
BENCHMARK(BM_CascadeSimulation)->Arg(0)->Arg(1);

void BM_SnapshotMarginalGain(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto probs = ds.graph.ItemArcProbabilities(ds.catalog[0]);
  im::SnapshotSpreadOracle::Options opts;
  opts.num_snapshots = static_cast<size_t>(state.range(0));
  auto oracle = im::SnapshotSpreadOracle::Create(ds.graph, probs, opts);
  INFLEX_CHECK(oracle.ok());
  auto ws = oracle.ValueOrDie().MakeWorkspace();
  Rng rng(5);
  for (auto _ : state) {
    const auto v =
        static_cast<graph::NodeId>(rng.UniformInt(ds.graph.num_nodes()));
    benchmark::DoNotOptimize(oracle.ValueOrDie().MarginalGain(v, &ws));
  }
}
BENCHMARK(BM_SnapshotMarginalGain)->Arg(50)->Arg(100);

std::vector<simplex::TopicVector> BenchPoints(size_t n, size_t dim) {
  Rng rng(6);
  return simplex::SampleUniformSimplexMany(dim, n, &rng);
}

void BM_BbTreeBuild(benchmark::State& state) {
  const auto points = BenchPoints(state.range(0), 10);
  for (auto _ : state) {
    auto tree = bbtree::BbTree::Build(points, {});
    benchmark::DoNotOptimize(tree.ok());
  }
}
BENCHMARK(BM_BbTreeBuild)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_BbTreeExactKnn(benchmark::State& state) {
  const auto points = BenchPoints(1000, 10);
  auto tree = bbtree::BbTree::Build(points, {});
  INFLEX_CHECK(tree.ok());
  Rng rng(7);
  for (auto _ : state) {
    const auto q = simplex::SampleUniformSimplex(10, &rng);
    benchmark::DoNotOptimize(tree.ValueOrDie().ExactKnn(q, 10));
  }
}
BENCHMARK(BM_BbTreeExactKnn);

void BM_BbTreeInflexSearch(benchmark::State& state) {
  const auto points = BenchPoints(1000, 10);
  auto tree = bbtree::BbTree::Build(points, {});
  INFLEX_CHECK(tree.ok());
  Rng rng(8);
  for (auto _ : state) {
    const auto q = simplex::SampleUniformSimplex(10, &rng);
    benchmark::DoNotOptimize(tree.ValueOrDie().InflexSearch(q, {}));
  }
}
BENCHMARK(BM_BbTreeInflexSearch);

void BM_LinearScanKnn(benchmark::State& state) {
  const auto points = BenchPoints(1000, 10);
  auto tree = bbtree::BbTree::Build(points, {});
  INFLEX_CHECK(tree.ok());
  Rng rng(9);
  for (auto _ : state) {
    const auto q = simplex::SampleUniformSimplex(10, &rng);
    benchmark::DoNotOptimize(tree.ValueOrDie().LinearScanKnn(q, 10));
  }
}
BENCHMARK(BM_LinearScanKnn);

rank::RankedList RandomList(size_t ell, size_t universe, Rng* rng) {
  std::vector<rank::Item> ids(universe);
  std::iota(ids.begin(), ids.end(), 0u);
  rng->Shuffle(&ids);
  ids.resize(ell);
  return ids;
}

void BM_KendallTauTopL(benchmark::State& state) {
  Rng rng(10);
  const auto a = RandomList(state.range(0), 500, &rng);
  const auto b = RandomList(state.range(0), 500, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rank::KendallTauTopL(a, b).ValueOrDie());
  }
}
BENCHMARK(BM_KendallTauTopL)->Arg(10)->Arg(50);

void BM_RisSeedSelection(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto probs = ds.graph.ItemArcProbabilities(ds.catalog[0]);
  im::RisOptions opts;
  opts.num_rr_sets = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        im::SelectSeedsRis(ds.graph, probs, 10, opts).ok());
  }
}
BENCHMARK(BM_RisSeedSelection)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_LtCascadeSimulation(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto weights =
      im::NormalizeToLtWeights(ds.graph,
                               ds.graph.ItemArcProbabilities(ds.catalog[0]))
          .ValueOrDie();
  im::LtWorkspace ws(ds.graph.num_nodes());
  Rng rng(12);
  const std::vector<graph::NodeId> seeds = {1, 50, 200};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        im::SimulateLtCascadeCount(ds.graph, weights, seeds, &rng, &ws));
  }
}
BENCHMARK(BM_LtCascadeSimulation);

void BM_Aggregation(benchmark::State& state) {
  Rng rng(11);
  std::vector<rank::RankedList> lists;
  std::vector<double> weights;
  for (int j = 0; j < 10; ++j) {
    lists.push_back(RandomList(50, 300, &rng));
    weights.push_back(rng.Uniform(0.2, 1.0));
  }
  rank::AggregationOptions opts;
  opts.method = state.range(0) == 0 ? rank::AggregationMethod::kBorda
                                    : rank::AggregationMethod::kCopeland;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rank::AggregateRankings(lists, weights, 50, opts).ValueOrDie());
  }
}
BENCHMARK(BM_Aggregation)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// One measured configuration of the reference-vs-kernel comparison.
struct KernelRow {
  size_t dim = 0;
  size_t batch = 0;
  double ref_ns_per_eval = 0.0;
  /// The dispatched (possibly SIMD) KlBatch over stride-padded aligned rows.
  double kernel_ns_per_eval = 0.0;
  /// The fixed-order scalar kernel over the same rows — auto-vectorized by
  /// the compiler at whatever the build flags allow, but without the
  /// explicit-SIMD variants. The gap to `kernel` isolates the dispatch win.
  double scalar_kernel_ns_per_eval = 0.0;
  double speedup() const { return ref_ns_per_eval / kernel_ns_per_eval; }
  double simd_speedup() const {
    return scalar_kernel_ns_per_eval / kernel_ns_per_eval;
  }
};

// Self-timed leaf-scan comparison (independent of google-benchmark so the
// JSON is reproducible with a plain run): for each (Z, batch) configuration
// measures ns/eval of the reference scalar KlDivergence loop, of the
// fixed-order scalar kernel, and of the dispatched (SIMD) KlBatch over the
// same stride-padded rows, repeating each measurement until it accumulates
// enough wall time (≥ ~40 ms; ~4 ms in --quick smoke runs).
KernelRow MeasureKernelRow(size_t dim, size_t batch, bool quick) {
  Rng rng(21);
  const auto points = simplex::SampleUniformSimplexMany(dim, batch, &rng);
  const auto q = simplex::SampleUniformSimplex(dim, &rng);
  // The tree's actual storage shape: 64B-aligned rows, cache-line stride.
  const size_t stride = util::AlignedRowStride(dim);
  util::AlignedVector<double> rows(batch * stride, 0.0);
  std::vector<double> negent(batch), out(batch);
  for (size_t i = 0; i < batch; ++i) {
    std::copy(points[i].begin(), points[i].end(), rows.begin() + i * stride);
    negent[i] = simplex::NegativeEntropy(points[i].data(), dim);
  }
  simplex::KlQueryContext ctx;
  ctx.Reset(q);

  const double min_elapsed_s = quick ? 0.004 : 0.04;
  auto time_ns_per_eval = [&](auto&& body) {
    // Warm up, then grow the repeat count until the run is long enough for
    // the steady_clock resolution to be noise-free.
    body();
    size_t reps = 1;
    double elapsed_s = 0.0;
    for (;;) {
      Timer t;
      for (size_t r = 0; r < reps; ++r) body();
      elapsed_s = t.ElapsedSeconds();
      if (elapsed_s >= min_elapsed_s) break;
      reps *= 4;
    }
    return elapsed_s * 1e9 /
           (static_cast<double>(reps) * static_cast<double>(batch));
  };

  KernelRow row;
  row.dim = dim;
  row.batch = batch;
  double sink = 0.0;
  row.ref_ns_per_eval = time_ns_per_eval([&] {
    for (const auto& p : points) sink += simplex::KlDivergence(p, q);
  });
  row.scalar_kernel_ns_per_eval = time_ns_per_eval([&] {
    simplex::ScalarKernelOps().kl_batch(rows.data(), negent.data(), batch,
                                        dim, stride, ctx.log_query(),
                                        out.data());
    sink += out[0];
  });
  row.kernel_ns_per_eval = time_ns_per_eval([&] {
    simplex::KlBatch(rows.data(), negent.data(), batch, dim, stride,
                     ctx.log_query(), out.data());
    sink += out[0];
  });
  benchmark::DoNotOptimize(sink);
  return row;
}

void RunKernelComparison(bool quick) {
  const struct { size_t dim, batch; } configs[] = {
      {8, 64}, {10, 64}, {50, 16}, {50, 64}, {50, 256}, {200, 64},
  };
  std::printf("\nReference KlDivergence vs factorized kernel (leaf scan)\n");
  std::printf("active kernels: %s (detected %s%s)\n",
              simplex::ActiveKernelOps().name, simplex::DetectedSimdName(),
              simplex::ActiveKernelsForcedScalar()
                  ? ", forced scalar via INFLEX_FORCE_SCALAR"
                  : "");
  std::printf("%6s %6s %14s %14s %14s %9s %9s\n", "Z", "batch", "ref ns/eval",
              "scalar ns/eval", "kernel ns/eval", "speedup", "simd");
  std::vector<KernelRow> rows;
  for (const auto& c : configs) {
    rows.push_back(MeasureKernelRow(c.dim, c.batch, quick));
    const KernelRow& r = rows.back();
    std::printf("%6zu %6zu %14.2f %14.2f %14.2f %8.2fx %8.2fx\n", r.dim,
                r.batch, r.ref_ns_per_eval, r.scalar_kernel_ns_per_eval,
                r.kernel_ns_per_eval, r.speedup(), r.simd_speedup());
  }

  const char* path = "BENCH_kernels.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"kl_kernel_leaf_scan\",\n");
  std::fprintf(f, "  \"unit\": \"ns_per_eval\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  // The host SIMD record lets the checker decide whether the SIMD-speedup
  // gate applies: "avx2 must beat scalar" is physics on an AVX2 host and
  // fiction on a machine whose dispatch fell back to the scalar kernels.
  std::fprintf(f,
               "  \"host\": {\"simd\": {\"detected\": \"%s\", "
               "\"active\": \"%s\", \"forced_scalar\": %s}},\n",
               simplex::DetectedSimdName(), simplex::ActiveKernelOps().name,
               simplex::ActiveKernelsForcedScalar() ? "true" : "false");
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    std::fprintf(f,
                 "    {\"z\": %zu, \"batch\": %zu, \"reference\": %.2f, "
                 "\"scalar_kernel\": %.2f, \"kernel\": %.2f, "
                 "\"speedup\": %.2f, \"simd_speedup\": %.2f}%s\n",
                 r.dim, r.batch, r.ref_ns_per_eval,
                 r.scalar_kernel_ns_per_eval, r.kernel_ns_per_eval,
                 r.speedup(), r.simd_speedup(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: skip the google-benchmark suite and shrink the self-timed
  // budgets — a seconds-long smoke run for CI that still writes the full
  // BENCH_kernels.json shape (marked "quick": true so the checker relaxes
  // its numeric gates). Stripped before benchmark::Initialize sees it.
  bool quick = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!quick) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunKernelComparison(quick);
  return 0;
}
