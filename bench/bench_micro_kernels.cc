// Google-benchmark microbenchmarks of the hot kernels: KL divergence, ILR,
// Eq. 1 instance materialization, cascade simulation, snapshot-oracle
// marginal gains, bb-tree searches, Kendall-τ, and the aggregation kernels.
#include <benchmark/benchmark.h>

#include <numeric>

#include "bbtree/bbtree.h"
#include "data/synthetic.h"
#include "im/cascade.h"
#include "im/lt_model.h"
#include "im/ris.h"
#include "im/snapshot_oracle.h"
#include "rank/aggregators.h"
#include "rank/kendall_tau.h"
#include "simplex/divergence.h"
#include "simplex/ilr.h"
#include "simplex/sampling.h"
#include "util/random.h"

namespace {

using namespace inflex;  // NOLINT

const data::SyntheticDataset& SharedDataset() {
  static const data::SyntheticDataset* ds = [] {
    data::SyntheticDatasetOptions opts;
    opts.num_users = 1000;
    opts.num_topics = 10;
    opts.num_items = 500;
    opts.seed = 3;
    auto r = data::GenerateSyntheticDataset(opts);
    INFLEX_CHECK(r.ok());
    return new data::SyntheticDataset(std::move(r).ValueOrDie());
  }();
  return *ds;
}

void BM_KlDivergence(benchmark::State& state) {
  Rng rng(1);
  const auto p = simplex::SampleUniformSimplex(state.range(0), &rng);
  const auto q = simplex::SampleUniformSimplex(state.range(0), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simplex::KlDivergence(p, q));
  }
}
BENCHMARK(BM_KlDivergence)->Arg(10)->Arg(50)->Arg(200);

void BM_IlrTransform(benchmark::State& state) {
  Rng rng(2);
  const auto p = simplex::SampleUniformSimplex(state.range(0), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simplex::IlrTransform(p));
  }
}
BENCHMARK(BM_IlrTransform)->Arg(10)->Arg(50);

void BM_ItemArcProbabilities(benchmark::State& state) {
  const auto& ds = SharedDataset();
  graph::ArcProbabilities buf;
  const auto item = simplex::TopicDistribution::Uniform(10);
  for (auto _ : state) {
    ds.graph.ItemArcProbabilitiesInto(item, &buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.graph.num_arcs()));
}
BENCHMARK(BM_ItemArcProbabilities);

void BM_CascadeSimulation(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto probs =
      ds.graph.ItemArcProbabilities(ds.catalog[state.range(0)]);
  im::CascadeWorkspace ws(ds.graph.num_nodes());
  Rng rng(4);
  const std::vector<graph::NodeId> seeds = {1, 50, 200};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        im::SimulateCascadeCount(ds.graph, probs, seeds, &rng, &ws));
  }
}
BENCHMARK(BM_CascadeSimulation)->Arg(0)->Arg(1);

void BM_SnapshotMarginalGain(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto probs = ds.graph.ItemArcProbabilities(ds.catalog[0]);
  im::SnapshotSpreadOracle::Options opts;
  opts.num_snapshots = static_cast<size_t>(state.range(0));
  auto oracle = im::SnapshotSpreadOracle::Create(ds.graph, probs, opts);
  INFLEX_CHECK(oracle.ok());
  auto ws = oracle.ValueOrDie().MakeWorkspace();
  Rng rng(5);
  for (auto _ : state) {
    const auto v =
        static_cast<graph::NodeId>(rng.UniformInt(ds.graph.num_nodes()));
    benchmark::DoNotOptimize(oracle.ValueOrDie().MarginalGain(v, &ws));
  }
}
BENCHMARK(BM_SnapshotMarginalGain)->Arg(50)->Arg(100);

std::vector<simplex::TopicVector> BenchPoints(size_t n, size_t dim) {
  Rng rng(6);
  return simplex::SampleUniformSimplexMany(dim, n, &rng);
}

void BM_BbTreeBuild(benchmark::State& state) {
  const auto points = BenchPoints(state.range(0), 10);
  for (auto _ : state) {
    auto tree = bbtree::BbTree::Build(points, {});
    benchmark::DoNotOptimize(tree.ok());
  }
}
BENCHMARK(BM_BbTreeBuild)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_BbTreeExactKnn(benchmark::State& state) {
  const auto points = BenchPoints(1000, 10);
  auto tree = bbtree::BbTree::Build(points, {});
  INFLEX_CHECK(tree.ok());
  Rng rng(7);
  for (auto _ : state) {
    const auto q = simplex::SampleUniformSimplex(10, &rng);
    benchmark::DoNotOptimize(tree.ValueOrDie().ExactKnn(q, 10));
  }
}
BENCHMARK(BM_BbTreeExactKnn);

void BM_BbTreeInflexSearch(benchmark::State& state) {
  const auto points = BenchPoints(1000, 10);
  auto tree = bbtree::BbTree::Build(points, {});
  INFLEX_CHECK(tree.ok());
  Rng rng(8);
  for (auto _ : state) {
    const auto q = simplex::SampleUniformSimplex(10, &rng);
    benchmark::DoNotOptimize(tree.ValueOrDie().InflexSearch(q, {}));
  }
}
BENCHMARK(BM_BbTreeInflexSearch);

void BM_LinearScanKnn(benchmark::State& state) {
  const auto points = BenchPoints(1000, 10);
  auto tree = bbtree::BbTree::Build(points, {});
  INFLEX_CHECK(tree.ok());
  Rng rng(9);
  for (auto _ : state) {
    const auto q = simplex::SampleUniformSimplex(10, &rng);
    benchmark::DoNotOptimize(tree.ValueOrDie().LinearScanKnn(q, 10));
  }
}
BENCHMARK(BM_LinearScanKnn);

rank::RankedList RandomList(size_t ell, size_t universe, Rng* rng) {
  std::vector<rank::Item> ids(universe);
  std::iota(ids.begin(), ids.end(), 0u);
  rng->Shuffle(&ids);
  ids.resize(ell);
  return ids;
}

void BM_KendallTauTopL(benchmark::State& state) {
  Rng rng(10);
  const auto a = RandomList(state.range(0), 500, &rng);
  const auto b = RandomList(state.range(0), 500, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rank::KendallTauTopL(a, b).ValueOrDie());
  }
}
BENCHMARK(BM_KendallTauTopL)->Arg(10)->Arg(50);

void BM_RisSeedSelection(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto probs = ds.graph.ItemArcProbabilities(ds.catalog[0]);
  im::RisOptions opts;
  opts.num_rr_sets = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        im::SelectSeedsRis(ds.graph, probs, 10, opts).ok());
  }
}
BENCHMARK(BM_RisSeedSelection)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_LtCascadeSimulation(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto weights =
      im::NormalizeToLtWeights(ds.graph,
                               ds.graph.ItemArcProbabilities(ds.catalog[0]))
          .ValueOrDie();
  im::LtWorkspace ws(ds.graph.num_nodes());
  Rng rng(12);
  const std::vector<graph::NodeId> seeds = {1, 50, 200};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        im::SimulateLtCascadeCount(ds.graph, weights, seeds, &rng, &ws));
  }
}
BENCHMARK(BM_LtCascadeSimulation);

void BM_Aggregation(benchmark::State& state) {
  Rng rng(11);
  std::vector<rank::RankedList> lists;
  std::vector<double> weights;
  for (int j = 0; j < 10; ++j) {
    lists.push_back(RandomList(50, 300, &rng));
    weights.push_back(rng.Uniform(0.2, 1.0));
  }
  rank::AggregationOptions opts;
  opts.method = state.range(0) == 0 ? rank::AggregationMethod::kBorda
                                    : rank::AggregationMethod::kCopeland;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rank::AggregateRankings(lists, weights, 50, opts).ValueOrDie());
  }
}
BENCHMARK(BM_Aggregation)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
