// Figure 4: correlation between the KL-divergence of two items' topic
// distributions and the Kendall-τ distance of their pre-computed seed lists.
// This validates the core INFLEX assumption: topically similar items have
// similar influential users. The paper reports a high positive correlation.
#include <cstdio>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "rank/kendall_tau.h"
#include "simplex/divergence.h"
#include "stats/descriptive.h"
#include "util/random.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Figure 4 — KL divergence between items vs Kendall-tau "
              "distance between their seed lists", tb);

  const size_t h = tb.index->num_index_points();
  Rng rng(tb.config.seed + 404);
  std::vector<double> kl, kendall;
  const size_t pairs = 1500;
  for (size_t t = 0; t < pairs; ++t) {
    const uint32_t i = static_cast<uint32_t>(rng.UniformInt(h));
    uint32_t j = static_cast<uint32_t>(rng.UniformInt(h));
    if (i == j) continue;
    const double d = simplex::KlDivergence(tb.index->index_point(i),
                                           tb.index->index_point(j));
    auto kt = rank::KendallTauTopL(tb.index->seed_list(i),
                                   tb.index->seed_list(j));
    if (!kt.ok()) continue;
    kl.push_back(d);
    kendall.push_back(kt.ValueOrDie());
  }

  auto corr = stats::PearsonCorrelation(kl, kendall);
  if (!corr.ok()) {
    std::fprintf(stderr, "correlation: %s\n",
                 corr.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%zu random index-point pairs\n", kl.size());
  std::printf("Pearson correlation (KL vs Kendall-tau) = %.4f\n\n",
              corr.ValueOrDie());

  // Binned scatter, the textual rendering of the figure.
  const double kl_max = *std::max_element(kl.begin(), kl.end());
  const size_t bins = 10;
  std::vector<double> sum(bins, 0.0);
  std::vector<size_t> count(bins, 0);
  for (size_t t = 0; t < kl.size(); ++t) {
    size_t b = static_cast<size_t>(bins * kl[t] / (kl_max * 1.000001));
    sum[b] += kendall[t];
    ++count[b];
  }
  TablePrinter table({"KL-divergence bin", "pairs", "avg Kendall-tau"});
  for (size_t b = 0; b < bins; ++b) {
    if (count[b] == 0) continue;
    table.AddRow({"[" + TablePrinter::Fmt(b * kl_max / bins, 2) + ", " +
                      TablePrinter::Fmt((b + 1) * kl_max / bins, 2) + ")",
                  std::to_string(count[b]),
                  TablePrinter::Fmt(sum[b] / count[b])});
  }
  table.Print();
  std::printf("\nPaper shape to match: Kendall-tau grows monotonically with "
              "KL divergence; strong positive correlation.\n");
  return corr.ValueOrDie() > 0.3 ? 0 : 2;
}
