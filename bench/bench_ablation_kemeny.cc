// Ablation: how close do the fast aggregators get to the (NP-hard) Kemeny
// optimum? The paper relies on cited guarantees — Borda is a 5-approximation
// (Coppersmith et al.), Local Kemenization yields local optimality — but
// never measures the gap. The exact Held-Karp solver makes the measurement
// possible on small unions.
#include <cstdio>
#include <numeric>

#include "common/evaluation.h"
#include "rank/aggregators.h"
#include "rank/kemeny.h"
#include "stats/descriptive.h"
#include "util/random.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

namespace {

// Mildly conflicting voters: each list is the identity permutation of m
// items with `noise` random adjacent transpositions applied.
std::vector<rank::RankedList> MakeInstance(size_t m, size_t voters,
                                           size_t noise, Rng* rng) {
  std::vector<rank::RankedList> lists;
  for (size_t j = 0; j < voters; ++j) {
    rank::RankedList l(m);
    std::iota(l.begin(), l.end(), 0u);
    for (size_t s = 0; s < noise; ++s) {
      const size_t i = rng->UniformInt(m - 1);
      std::swap(l[i], l[i + 1]);
    }
    lists.push_back(l);
  }
  return lists;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation — aggregation quality vs the exact Kemeny optimum\n");
  std::printf("(500 random instances per row; ratio = pairwise Kemeny cost "
              "of the method / optimal cost)\n");
  std::printf("==============================================================\n");

  struct Config {
    const char* name;
    rank::AggregationMethod method;
    bool local_kemenization;
  };
  const Config configs[] = {
      {"Borda", rank::AggregationMethod::kBorda, false},
      {"Borda+LK", rank::AggregationMethod::kBorda, true},
      {"Copeland", rank::AggregationMethod::kCopeland, false},
      {"Copeland+LK", rank::AggregationMethod::kCopeland, true},
      {"MC4", rank::AggregationMethod::kMarkovChainMc4, false},
      {"MC4+LK", rank::AggregationMethod::kMarkovChainMc4, true},
  };

  TablePrinter table({"m", "voters", "noise", "Borda", "Borda+LK", "Copeland",
                      "Copeland+LK", "MC4", "MC4+LK", "optimal hit rate"});
  Rng rng(20140324);
  struct Shape {
    size_t m, voters, noise;
  };
  for (const Shape shape : {Shape{8, 5, 4}, Shape{10, 5, 8},
                            Shape{12, 7, 12}, Shape{12, 3, 20}}) {
    std::vector<std::vector<double>> ratios(6);
    size_t optimal_hits = 0, scored = 0;
    for (int inst = 0; inst < 500; ++inst) {
      const auto lists =
          MakeInstance(shape.m, shape.voters, shape.noise, &rng);
      auto exact = rank::ExactKemenyAggregate(lists, {});
      if (!exact.ok()) continue;
      const double optimum =
          rank::PairwiseKemenyCost(exact.ValueOrDie(), lists, {})
              .ValueOrDie();
      if (optimum <= 0.0) continue;  // unanimous instance: ratio undefined
      ++scored;
      bool any_hit = false;
      for (size_t c = 0; c < 6; ++c) {
        rank::AggregationOptions opts;
        opts.method = configs[c].method;
        opts.local_kemenization = configs[c].local_kemenization;
        auto heur = rank::AggregateRankings(lists, {}, shape.m, opts);
        if (!heur.ok()) continue;
        const double cost =
            rank::PairwiseKemenyCost(heur.ValueOrDie(), lists, {})
                .ValueOrDie();
        ratios[c].push_back(cost / optimum);
        if (cost <= optimum + 1e-9) any_hit = true;
      }
      if (any_hit) ++optimal_hits;
    }
    std::vector<std::string> row = {std::to_string(shape.m),
                                    std::to_string(shape.voters),
                                    std::to_string(shape.noise)};
    for (size_t c = 0; c < 6; ++c) {
      row.push_back(TablePrinter::Fmt(stats::Mean(ratios[c]), 3));
    }
    row.push_back(TablePrinter::Fmt(
        100.0 * static_cast<double>(optimal_hits) /
            static_cast<double>(scored),
        1) + "%");
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nExpected: every method stays FAR below Borda's worst-case "
              "factor-5 bound on realistic instances; Local Kemenization "
              "only ever helps; harder (noisier, fewer-voter) instances "
              "widen the gap.\n");
  return 0;
}
