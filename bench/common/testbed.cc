#include "common/testbed.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "data/dataset_io.h"
#include "inflex/baselines.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace inflex {
namespace benchsupport {

namespace {

constexpr uint32_t kTestbedMagic = 0x494e5442;  // "INTB"
constexpr uint32_t kTestbedVersion = 1;

std::string CacheDir() {
  const char* env = std::getenv("INFLEX_TESTBED_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return "inflex_testbed_cache";
}

void Progress(const std::string& msg) {
  std::fprintf(stderr, "[testbed] %s\n", msg.c_str());
}

}  // namespace

TestbedConfig TestbedConfig::FromEnv() {
  TestbedConfig c;
  const char* scale = std::getenv("INFLEX_BENCH_SCALE");
  const std::string s = scale == nullptr ? "small" : scale;
  if (s == "medium") {
    c.num_users = 4000;
    c.num_items = 6000;
    c.num_topics = 10;
    c.num_index_points = 512;
    c.dirichlet_samples = 60000;
    c.queries_data_driven = 50;
    c.queries_uniform = 50;
  } else if (s == "large") {
    c.num_users = 10000;
    c.num_items = 12000;
    c.num_topics = 10;
    c.num_index_points = 1000;  // the paper's h
    c.dirichlet_samples = 100000;
    c.oracle_snapshots = 120;
    c.queries_data_driven = 100;
    c.queries_uniform = 100;
  }
  return c;
}

std::string TestbedConfig::Fingerprint() const {
  std::ostringstream os;
  os << "v2:" << num_users << ":" << num_topics << ":" << num_items << ":"
     << avg_degree << ":" << num_index_points << ":" << seed_list_length << ":"
     << dirichlet_samples << ":" << oracle_snapshots << ":"
     << tree_max_leaf_size << ":" << queries_data_driven << ":"
     << queries_uniform << ":" << spread_mc_simulations << ":" << seed;
  return os.str();
}

namespace {

Status SaveAuxiliary(const Testbed& tb, const std::string& path) {
  INFLEX_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::Open(path));
  INFLEX_RETURN_NOT_OK(WriteHeader(&w, kTestbedMagic, kTestbedVersion));
  INFLEX_RETURN_NOT_OK(w.WriteString(tb.config.Fingerprint()));
  INFLEX_RETURN_NOT_OK(w.WritePod<uint64_t>(tb.workload.queries.size()));
  for (size_t i = 0; i < tb.workload.queries.size(); ++i) {
    INFLEX_RETURN_NOT_OK(w.WriteVector(tb.workload.queries[i].probs()));
    INFLEX_RETURN_NOT_OK(
        w.WritePod<uint8_t>(tb.workload.is_data_driven[i] ? 1 : 0));
    INFLEX_RETURN_NOT_OK(w.WriteVector(tb.ground_truth[i].seeds));
    INFLEX_RETURN_NOT_OK(w.WritePod(tb.ground_truth[i].offline_seconds));
  }
  return w.Close();
}

Status LoadAuxiliary(const std::string& path, const TestbedConfig& config,
                     Testbed* tb) {
  INFLEX_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  INFLEX_RETURN_NOT_OK(CheckHeader(&r, kTestbedMagic, kTestbedVersion));
  std::string fingerprint;
  INFLEX_RETURN_NOT_OK(r.ReadString(&fingerprint));
  if (fingerprint != config.Fingerprint()) {
    return Status::FailedPrecondition("testbed cache built with a different "
                                      "configuration");
  }
  uint64_t n = 0;
  INFLEX_RETURN_NOT_OK(r.ReadPod(&n));
  tb->workload.queries.clear();
  tb->workload.is_data_driven.clear();
  tb->ground_truth.clear();
  for (uint64_t i = 0; i < n; ++i) {
    simplex::TopicVector probs;
    INFLEX_RETURN_NOT_OK(r.ReadVector(&probs));
    INFLEX_ASSIGN_OR_RETURN(
        simplex::TopicDistribution q,
        simplex::TopicDistribution::Create(std::move(probs)));
    tb->workload.queries.push_back(std::move(q));
    uint8_t dd = 0;
    INFLEX_RETURN_NOT_OK(r.ReadPod(&dd));
    tb->workload.is_data_driven.push_back(dd != 0);
    GroundTruth gt;
    INFLEX_RETURN_NOT_OK(r.ReadVector(&gt.seeds));
    INFLEX_RETURN_NOT_OK(r.ReadPod(&gt.offline_seconds));
    tb->ground_truth.push_back(std::move(gt));
  }
  return Status::OK();
}

Result<std::shared_ptr<Testbed>> BuildTestbed(const TestbedConfig& config,
                                              const std::string& dir) {
  auto tb = std::make_shared<Testbed>();
  tb->config = config;

  Progress("generating synthetic Flixster-equivalent dataset (" +
           std::to_string(config.num_users) + " users, " +
           std::to_string(config.num_items) + " items, Z=" +
           std::to_string(config.num_topics) + ")");
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = config.num_users;
  dopts.num_topics = config.num_topics;
  dopts.num_items = config.num_items;
  dopts.avg_degree = config.avg_degree;
  dopts.seed = config.seed;
  INFLEX_ASSIGN_OR_RETURN(data::SyntheticDataset ds,
                          data::GenerateSyntheticDataset(dopts));
  tb->dataset = std::make_unique<data::SyntheticDataset>(std::move(ds));

  Progress("building INFLEX index: h=" +
           std::to_string(config.num_index_points) +
           ", l=" + std::to_string(config.seed_list_length) +
           " (one CELF++ run per index point)");
  Timer build_timer;
  core::InflexBuildOptions bopts;
  bopts.index_points.num_index_points = config.num_index_points;
  bopts.index_points.num_dirichlet_samples = config.dirichlet_samples;
  bopts.seed_list_length = config.seed_list_length;
  bopts.oracle_snapshots = config.oracle_snapshots;
  bopts.tree.max_leaf_size = config.tree_max_leaf_size;
  bopts.seed = config.seed + 1;
  INFLEX_ASSIGN_OR_RETURN(
      core::InflexIndex index,
      core::InflexIndex::Build(tb->dataset->graph, tb->dataset->catalog,
                               bopts));
  tb->index = std::make_unique<core::InflexIndex>(std::move(index));
  Progress("index built in " + std::to_string(build_timer.ElapsedSeconds()) +
           " s");

  Progress("generating TIM query workload (" +
           std::to_string(config.queries_data_driven) + " data-driven + " +
           std::to_string(config.queries_uniform) + " uniform)");
  data::QueryWorkloadOptions wopts;
  wopts.num_data_driven = config.queries_data_driven;
  wopts.num_uniform = config.queries_uniform;
  wopts.seed = config.seed + 2;
  INFLEX_ASSIGN_OR_RETURN(tb->workload,
                          data::GenerateQueryWorkload(tb->dataset->catalog,
                                                      wopts));

  Progress("computing offline TIC ground truth per query (CELF++ from "
           "scratch — the computation INFLEX replaces)");
  core::OfflineImOptions oopts;
  oopts.num_snapshots = config.oracle_snapshots;
  oopts.seed = config.seed + 3;
  tb->ground_truth.resize(tb->workload.queries.size());
  for (size_t i = 0; i < tb->workload.queries.size(); ++i) {
    Timer t;
    INFLEX_ASSIGN_OR_RETURN(
        im::SeedSelectionResult truth,
        core::OfflineTicSeeds(tb->dataset->graph, tb->workload.queries[i],
                              config.seed_list_length, oopts));
    tb->ground_truth[i].offline_seconds = t.ElapsedSeconds();
    tb->ground_truth[i].seeds.assign(truth.seeds.begin(), truth.seeds.end());
    if ((i + 1) % 10 == 0) {
      Progress("  ground truth " + std::to_string(i + 1) + "/" +
               std::to_string(tb->workload.queries.size()));
    }
  }

  Progress("caching test-bed to " + dir);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  INFLEX_RETURN_NOT_OK(data::SaveDataset(*tb->dataset, dir + "/dataset"));
  INFLEX_RETURN_NOT_OK(tb->index->Save(dir + "/index.bin"));
  INFLEX_RETURN_NOT_OK(SaveAuxiliary(*tb, dir + "/aux.bin"));
  return tb;
}

}  // namespace

Result<std::shared_ptr<Testbed>> GetTestbed() {
  const TestbedConfig config = TestbedConfig::FromEnv();
  const std::string dir = CacheDir();

  // Try the cache first.
  auto tb = std::make_shared<Testbed>();
  tb->config = config;
  Status cached = LoadAuxiliary(dir + "/aux.bin", config, tb.get());
  if (cached.ok()) {
    auto ds = data::LoadDataset(dir + "/dataset");
    if (ds.ok()) {
      tb->dataset =
          std::make_unique<data::SyntheticDataset>(std::move(ds).ValueOrDie());
      bbtree::BbTreeOptions topts;
      topts.max_leaf_size = config.tree_max_leaf_size;
      auto index =
          core::InflexIndex::Load(dir + "/index.bin", &tb->dataset->graph,
                                  topts);
      if (index.ok()) {
        tb->index = std::make_unique<core::InflexIndex>(
            std::move(index).ValueOrDie());
        Progress("loaded cached test-bed from " + dir);
        return tb;
      }
    }
  }
  return BuildTestbed(config, dir);
}

}  // namespace benchsupport
}  // namespace inflex
