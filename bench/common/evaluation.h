#ifndef INFLEX_BENCH_COMMON_EVALUATION_H_
#define INFLEX_BENCH_COMMON_EVALUATION_H_

#include <string>
#include <vector>

#include "common/testbed.h"
#include "inflex/inflex_index.h"

namespace inflex {
namespace benchsupport {

/// \brief Per-strategy evaluation over the whole query workload.
struct StrategyMetrics {
  std::string name;
  /// Mean top-k Kendall-τ distance to the offline TIC ground truth (Fig. 6).
  double avg_kendall = 0.0;
  /// Mean / max query evaluation time in milliseconds (Fig. 7).
  double avg_query_ms = 0.0;
  double max_query_ms = 0.0;
  /// Mean per-stage breakdown (similarity search vs rank aggregation).
  double avg_search_ms = 0.0;
  double avg_aggregation_ms = 0.0;
  /// Mean expected spread of the returned seed sets under TIC Monte Carlo,
  /// with the std-error of the mean across queries (Fig. 8 / Table 2).
  double avg_spread = 0.0;
  double spread_std_error = 0.0;
  /// RMSE / NRMSE of per-query spread against offline TIC (Table 2).
  double rmse = 0.0;
  double nrmse = 0.0;
  /// Mean number of seed lists entering the aggregation.
  double avg_lists_aggregated = 0.0;
  /// Mean KL-divergence evaluations per query (early-stop analysis, §5).
  double avg_kl_evaluations = 0.0;
  double avg_leaves_visited = 0.0;
  /// Per-query raw series (for correlation/t-test style analyses).
  std::vector<double> kendall_per_query;
  std::vector<double> spread_per_query;
  std::vector<double> ms_per_query;
};

/// Evaluates one index strategy on every workload query with seed-set size
/// k: runs the query, measures wall time, compares the ranked list against
/// the ground truth (both truncated to k) and Monte-Carlo-evaluates the
/// spread when `evaluate_spread`.
Result<StrategyMetrics> EvaluateStrategy(const Testbed& tb,
                                         const core::QueryOptions& options,
                                         const std::string& name, size_t k,
                                         bool evaluate_spread);

/// Spread metrics of the offline TIC ground-truth seed lists themselves
/// (the "offline TIC" row of Table 2).
Result<StrategyMetrics> EvaluateOfflineTic(const Testbed& tb, size_t k);

/// Topic-blind baseline: one CELF++ run with the uniform topic mixture,
/// whose seeds answer every query (the "offline IC" row).
Result<StrategyMetrics> EvaluateOfflineIc(const Testbed& tb, size_t k);

/// Random seed sets, fresh per query (the "random" row).
Result<StrategyMetrics> EvaluateRandom(const Testbed& tb, size_t k,
                                       uint64_t seed);

/// Monte-Carlo spread of `seeds` for `query` on the test-bed graph.
Result<double> SpreadOf(const Testbed& tb,
                        const simplex::TopicDistribution& query,
                        const rank::RankedList& seeds);

// ------------------------------------------------------------ table output ---

/// Minimal fixed-width table printer for paper-style output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

  static std::string Fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard experiment banner (config summary).
void PrintBanner(const std::string& title, const Testbed& tb);

}  // namespace benchsupport
}  // namespace inflex

#endif  // INFLEX_BENCH_COMMON_EVALUATION_H_
