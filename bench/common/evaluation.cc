#include "common/evaluation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "im/heuristics.h"
#include "inflex/baselines.h"
#include "rank/kendall_tau.h"
#include "stats/descriptive.h"
#include "tic/tic_model.h"
#include "util/random.h"
#include "util/timer.h"

namespace inflex {
namespace benchsupport {

namespace {

// Kendall-τ between two ranked lists truncated to k (top-ℓ variant, p=0.5).
Result<double> KendallVsTruth(const rank::RankedList& answer,
                              const rank::RankedList& truth, size_t k) {
  const size_t ell = std::min({k, answer.size(), truth.size()});
  if (ell == 0) return Status::InvalidArgument("empty list in comparison");
  rank::RankedList a(answer.begin(), answer.begin() + ell);
  rank::RankedList t(truth.begin(), truth.begin() + ell);
  return rank::KendallTauTopL(a, t);
}

// Fills the aggregate fields of `m` from its per-query series plus the
// ground-truth spreads (for RMSE/NRMSE).
Status FinalizeMetrics(const std::vector<double>& truth_spread,
                       StrategyMetrics* m) {
  if (!m->kendall_per_query.empty()) {
    m->avg_kendall = stats::Mean(m->kendall_per_query);
  }
  if (!m->ms_per_query.empty()) {
    m->avg_query_ms = stats::Mean(m->ms_per_query);
    m->max_query_ms =
        *std::max_element(m->ms_per_query.begin(), m->ms_per_query.end());
  }
  if (!m->spread_per_query.empty()) {
    m->avg_spread = stats::Mean(m->spread_per_query);
    if (m->spread_per_query.size() > 1) {
      m->spread_std_error = stats::StdDev(m->spread_per_query) /
                            std::sqrt(static_cast<double>(
                                m->spread_per_query.size()));
    }
    if (truth_spread.size() == m->spread_per_query.size()) {
      INFLEX_ASSIGN_OR_RETURN(m->rmse,
                              stats::Rmse(m->spread_per_query, truth_spread));
      INFLEX_ASSIGN_OR_RETURN(m->nrmse,
                              stats::Nrmse(m->spread_per_query, truth_spread));
    }
  }
  return Status::OK();
}

// Cached ground-truth spreads (shared across strategy evaluations within one
// binary): spread of ground_truth[i].seeds truncated to k.
Result<std::vector<double>> TruthSpreads(const Testbed& tb, size_t k) {
  std::vector<double> out;
  out.reserve(tb.workload.queries.size());
  for (size_t i = 0; i < tb.workload.queries.size(); ++i) {
    const auto& full = tb.ground_truth[i].seeds;
    rank::RankedList seeds(full.begin(),
                           full.begin() + std::min(k, full.size()));
    INFLEX_ASSIGN_OR_RETURN(const double s,
                            SpreadOf(tb, tb.workload.queries[i], seeds));
    out.push_back(s);
  }
  return out;
}

}  // namespace

Result<double> SpreadOf(const Testbed& tb,
                        const simplex::TopicDistribution& query,
                        const rank::RankedList& seeds) {
  std::vector<graph::NodeId> nodes(seeds.begin(), seeds.end());
  im::MonteCarloOptions mc;
  mc.num_simulations = tb.config.spread_mc_simulations;
  mc.seed = tb.config.seed + 77;
  mc.parallel = false;
  tic::TicModel model(&tb.graph());
  INFLEX_ASSIGN_OR_RETURN(im::SpreadEstimate est,
                          model.EstimateSpread(query, nodes, mc));
  return est.mean;
}

Result<StrategyMetrics> EvaluateStrategy(const Testbed& tb,
                                         const core::QueryOptions& options,
                                         const std::string& name, size_t k,
                                         bool evaluate_spread) {
  StrategyMetrics m;
  m.name = name;
  double lists_total = 0.0, kl_total = 0.0, leaves_total = 0.0;
  double search_total = 0.0, agg_total = 0.0;
  for (size_t i = 0; i < tb.workload.queries.size(); ++i) {
    const auto& q = tb.workload.queries[i];
    Timer t;
    INFLEX_ASSIGN_OR_RETURN(core::QueryResult r,
                            tb.index->Query(q, k, options));
    m.ms_per_query.push_back(t.ElapsedMillis());
    search_total += r.similarity_search_ms;
    agg_total += r.aggregation_ms;
    INFLEX_ASSIGN_OR_RETURN(
        const double kd, KendallVsTruth(r.seeds, tb.ground_truth[i].seeds, k));
    m.kendall_per_query.push_back(kd);
    lists_total += static_cast<double>(r.neighbors_used.size());
    kl_total += static_cast<double>(r.search_stats.kl_evaluations);
    leaves_total += static_cast<double>(r.search_stats.leaves_visited);
    if (evaluate_spread) {
      INFLEX_ASSIGN_OR_RETURN(const double s, SpreadOf(tb, q, r.seeds));
      m.spread_per_query.push_back(s);
    }
  }
  const double n = static_cast<double>(tb.workload.queries.size());
  m.avg_lists_aggregated = lists_total / n;
  m.avg_kl_evaluations = kl_total / n;
  m.avg_leaves_visited = leaves_total / n;
  m.avg_search_ms = search_total / n;
  m.avg_aggregation_ms = agg_total / n;

  std::vector<double> truth_spread;
  if (evaluate_spread) {
    INFLEX_ASSIGN_OR_RETURN(truth_spread, TruthSpreads(tb, k));
  }
  INFLEX_RETURN_NOT_OK(FinalizeMetrics(truth_spread, &m));
  return m;
}

Result<StrategyMetrics> EvaluateOfflineTic(const Testbed& tb, size_t k) {
  StrategyMetrics m;
  m.name = "offline TIC";
  for (size_t i = 0; i < tb.workload.queries.size(); ++i) {
    const auto& full = tb.ground_truth[i].seeds;
    rank::RankedList seeds(full.begin(),
                           full.begin() + std::min(k, full.size()));
    INFLEX_ASSIGN_OR_RETURN(const double s,
                            SpreadOf(tb, tb.workload.queries[i], seeds));
    m.spread_per_query.push_back(s);
    m.kendall_per_query.push_back(0.0);
    m.ms_per_query.push_back(tb.ground_truth[i].offline_seconds * 1e3);
  }
  INFLEX_RETURN_NOT_OK(FinalizeMetrics(m.spread_per_query, &m));
  return m;
}

Result<StrategyMetrics> EvaluateOfflineIc(const Testbed& tb, size_t k) {
  StrategyMetrics m;
  m.name = "offline IC";
  core::OfflineImOptions oopts;
  oopts.num_snapshots = tb.config.oracle_snapshots;
  oopts.seed = tb.config.seed + 9;
  oopts.selection.parallel_first_iteration = false;
  Timer t;
  INFLEX_ASSIGN_OR_RETURN(im::SeedSelectionResult blind,
                          core::OfflineIcSeeds(tb.graph(), k, oopts));
  const double blind_ms = t.ElapsedMillis();
  rank::RankedList seeds(blind.seeds.begin(), blind.seeds.end());
  std::vector<double> truth_spread;
  INFLEX_ASSIGN_OR_RETURN(truth_spread, TruthSpreads(tb, k));
  for (size_t i = 0; i < tb.workload.queries.size(); ++i) {
    INFLEX_ASSIGN_OR_RETURN(
        const double s, SpreadOf(tb, tb.workload.queries[i], seeds));
    m.spread_per_query.push_back(s);
    INFLEX_ASSIGN_OR_RETURN(
        const double kd,
        KendallVsTruth(seeds, tb.ground_truth[i].seeds, k));
    m.kendall_per_query.push_back(kd);
    m.ms_per_query.push_back(blind_ms);
  }
  INFLEX_RETURN_NOT_OK(FinalizeMetrics(truth_spread, &m));
  return m;
}

Result<StrategyMetrics> EvaluateRandom(const Testbed& tb, size_t k,
                                       uint64_t seed) {
  StrategyMetrics m;
  m.name = "random";
  Rng rng(seed);
  std::vector<double> truth_spread;
  INFLEX_ASSIGN_OR_RETURN(truth_spread, TruthSpreads(tb, k));
  for (size_t i = 0; i < tb.workload.queries.size(); ++i) {
    Timer t;
    INFLEX_ASSIGN_OR_RETURN(
        std::vector<graph::NodeId> seeds,
        im::SelectSeedsRandom(tb.graph().num_nodes(), k, &rng));
    m.ms_per_query.push_back(t.ElapsedMillis());
    rank::RankedList list(seeds.begin(), seeds.end());
    INFLEX_ASSIGN_OR_RETURN(
        const double s, SpreadOf(tb, tb.workload.queries[i], list));
    m.spread_per_query.push_back(s);
    INFLEX_ASSIGN_OR_RETURN(
        const double kd, KendallVsTruth(list, tb.ground_truth[i].seeds, k));
    m.kendall_per_query.push_back(kd);
  }
  INFLEX_RETURN_NOT_OK(FinalizeMetrics(truth_spread, &m));
  return m;
}

// ------------------------------------------------------------ table output ---

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < widths.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(const std::string& title, const Testbed& tb) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf(
      "test-bed: %zu users, %zu arcs, Z=%zu, %zu items | h=%zu index points, "
      "l=%zu | %zu queries\n",
      tb.graph().num_nodes(), tb.graph().num_arcs(), tb.graph().num_topics(),
      tb.dataset->catalog.size(), tb.index->num_index_points(),
      tb.index->seed_list_length(), tb.workload.queries.size());
  std::printf("==============================================================\n");
}

}  // namespace benchsupport
}  // namespace inflex
