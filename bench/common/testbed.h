#ifndef INFLEX_BENCH_COMMON_TESTBED_H_
#define INFLEX_BENCH_COMMON_TESTBED_H_

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "data/workload.h"
#include "inflex/inflex_index.h"
#include "rank/ranked_list.h"
#include "util/status.h"

namespace inflex {
namespace benchsupport {

/// \brief Scale of the experiment test-bed. The paper's Flixster setup
/// (30k users / 425k arcs / 12k items / h = 1000 / ℓ = 50) needed ~60 h of
/// CELF++ per index point; these scaled-down configurations regenerate every
/// table/figure on one core in minutes while preserving the result shapes.
struct TestbedConfig {
  size_t num_users = 2500;
  size_t num_topics = 8;
  size_t num_items = 3000;
  double avg_degree = 12.0;
  size_t num_index_points = 256;      // h
  size_t seed_list_length = 50;       // ℓ (paper value)
  size_t dirichlet_samples = 30000;
  size_t oracle_snapshots = 100;
  size_t tree_max_leaf_size = 16;
  size_t queries_data_driven = 30;
  size_t queries_uniform = 30;
  size_t spread_mc_simulations = 1500;
  uint64_t seed = 20140324;  // EDBT 2014 :-)

  /// Reads INFLEX_BENCH_SCALE (small|medium|large, default small).
  static TestbedConfig FromEnv();

  /// Cache-invalidation fingerprint: any parameter change rebuilds.
  std::string Fingerprint() const;
};

/// \brief Per-query offline ground truth: the CELF++ seed list computed from
/// scratch on the query's IC instance, and how long that took.
struct GroundTruth {
  rank::RankedList seeds;  // length ℓ
  double offline_seconds = 0.0;
};

/// \brief Everything the experiment binaries share. Building it is the heavy
/// offline phase (index precompute + per-query ground truth); it is cached
/// on disk so only the first bench binary of a session pays for it.
struct Testbed {
  TestbedConfig config;
  std::unique_ptr<data::SyntheticDataset> dataset;
  std::unique_ptr<core::InflexIndex> index;
  data::QueryWorkload workload;
  std::vector<GroundTruth> ground_truth;  // aligned with workload.queries

  const graph::TopicGraph& graph() const { return dataset->graph; }
};

/// Loads the cached test-bed (directory: $INFLEX_TESTBED_DIR or
/// ./inflex_testbed_cache) or builds and caches it. Prints progress to
/// stderr since the build can take a minute.
Result<std::shared_ptr<Testbed>> GetTestbed();

}  // namespace benchsupport
}  // namespace inflex

#endif  // INFLEX_BENCH_COMMON_TESTBED_H_
