// Figure 9: the run-time vs expected-spread trade-off (k = 50). Paper
// shape: INFLEX sits near the top-spread frontier at less than half the
// time of exact retrieval — "almost the best expected spread using less
// than half the time".
#include <cstdio>

#include "common/evaluation.h"
#include "common/testbed.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Figure 9 — run-time vs expected spread trade-off (k = 50)",
              tb);

  const core::QueryStrategy strategies[] = {
      core::QueryStrategy::kExactKnn, core::QueryStrategy::kInflex,
      core::QueryStrategy::kApproxKnn, core::QueryStrategy::kApproxKnnSel,
      core::QueryStrategy::kApproxAd};

  TablePrinter table({"method", "avg query ms", "avg expected spread",
                      "% of exactKNN time", "% of exactKNN spread"});
  std::vector<StrategyMetrics> results;
  for (core::QueryStrategy s : strategies) {
    core::QueryOptions opts;
    opts.strategy = s;
    opts.knn_k = 10;
    opts.max_leaves = 5;
    auto m = EvaluateStrategy(tb, opts, core::QueryStrategyName(s), 50,
                              /*evaluate_spread=*/true);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    results.push_back(m.ValueOrDie());
  }
  const double exact_ms = results[0].avg_query_ms;
  const double exact_spread = results[0].avg_spread;
  for (const auto& m : results) {
    table.AddRow({m.name, TablePrinter::Fmt(m.avg_query_ms),
                  TablePrinter::Fmt(m.avg_spread, 2),
                  TablePrinter::Fmt(100.0 * m.avg_query_ms / exact_ms, 1),
                  TablePrinter::Fmt(100.0 * m.avg_spread / exact_spread, 1)});
  }
  table.Print();
  std::printf("\nPaper shape to match: INFLEX keeps ~100%% of the exactKNN "
              "spread at a fraction of its query time.\n");
  return 0;
}
