// Ablation: the accuracy / space trade-off in the number of index points h
// (§3.1 discusses h as the budget knob; the paper's future work asks for
// automatic h selection). We subsample the built index's points uniformly
// so no extra CELF++ runs are needed.
#include <cstdio>
#include <numeric>

#include "common/evaluation.h"
#include "common/testbed.h"
#include "util/random.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Ablation — index size h (uniform subsamples of the built "
              "index, k = 50)", tb);

  const size_t h_full = tb.index->num_index_points();
  Rng rng(tb.config.seed + 555);

  TablePrinter table({"h", "avg Kendall-tau", "avg query ms",
                      "avg lists aggregated"});
  for (double fraction : {0.125, 0.25, 0.5, 1.0}) {
    const size_t h = std::max<size_t>(4, static_cast<size_t>(h_full * fraction));
    // Uniform subsample of point ids.
    std::vector<uint32_t> ids(h_full);
    std::iota(ids.begin(), ids.end(), 0u);
    rng.Shuffle(&ids);
    ids.resize(h);

    std::vector<simplex::TopicVector> points;
    std::vector<rank::RankedList> lists;
    for (uint32_t id : ids) {
      points.push_back(tb.index->index_point(id));
      lists.push_back(tb.index->seed_list(id));
    }
    bbtree::BbTreeOptions topts;
    topts.max_leaf_size = tb.config.tree_max_leaf_size;
    auto sub = core::InflexIndex::FromParts(&tb.graph(), std::move(points),
                                            std::move(lists), topts);
    if (!sub.ok()) {
      std::fprintf(stderr, "%s\n", sub.status().ToString().c_str());
      return 1;
    }

    // Evaluate with a locally constructed test-bed view sharing ground truth.
    Testbed view;
    view.config = tb.config;
    view.workload = tb.workload;
    view.ground_truth = tb.ground_truth;
    view.dataset = std::make_unique<data::SyntheticDataset>();
    // EvaluateStrategy only touches index + workload + ground truth +
    // graph(); borrow the graph via the index we just built.
    view.dataset->graph = tb.dataset->graph;
    view.index =
        std::make_unique<core::InflexIndex>(std::move(sub).ValueOrDie());

    core::QueryOptions opts;  // INFLEX defaults
    auto m = EvaluateStrategy(view, opts, "h=" + std::to_string(h), 50,
                              /*evaluate_spread=*/false);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    table.AddRow({std::to_string(h),
                  TablePrinter::Fmt(m.ValueOrDie().avg_kendall),
                  TablePrinter::Fmt(m.ValueOrDie().avg_query_ms),
                  TablePrinter::Fmt(m.ValueOrDie().avg_lists_aggregated, 2)});
  }
  table.Print();
  std::printf("\nExpected: accuracy degrades gracefully as h shrinks — the "
              "accuracy/space trade-off of §3.1.\n");
  return 0;
}
