// Table 3: accuracy of INFLEX's expected spread vs offline TIC across
// seed-set sizes k = 10..50. Paper shape: NRMSE stays small (~0.013-0.024)
// and stable in k.
#include <cstdio>

#include "common/evaluation.h"
#include "common/testbed.h"

using namespace inflex;             // NOLINT
using namespace inflex::benchsupport;  // NOLINT

int main() {
  auto tb_r = GetTestbed();
  if (!tb_r.ok()) {
    std::fprintf(stderr, "testbed: %s\n", tb_r.status().ToString().c_str());
    return 1;
  }
  const Testbed& tb = *tb_r.ValueOrDie();
  PrintBanner("Table 3 — expected spread of INFLEX vs offline TIC across k",
              tb);

  TablePrinter table({"k", "INFLEX", "offline TIC", "RMSE", "NRMSE"});
  for (size_t k = 10; k <= 50; k += 10) {
    core::QueryOptions opts;  // full INFLEX defaults
    auto inflex_m = EvaluateStrategy(tb, opts, "INFLEX", k,
                                     /*evaluate_spread=*/true);
    auto offline_m = EvaluateOfflineTic(tb, k);
    if (!inflex_m.ok() || !offline_m.ok()) {
      std::fprintf(stderr, "evaluation failed\n");
      return 1;
    }
    const auto& a = inflex_m.ValueOrDie();
    const auto& b = offline_m.ValueOrDie();
    table.AddRow({std::to_string(k),
                  TablePrinter::Fmt(a.avg_spread, 2) + " ± " +
                      TablePrinter::Fmt(a.spread_std_error, 2),
                  TablePrinter::Fmt(b.avg_spread, 2) + " ± " +
                      TablePrinter::Fmt(b.spread_std_error, 2),
                  TablePrinter::Fmt(a.rmse, 2),
                  TablePrinter::Fmt(a.nrmse, 3)});
  }
  table.Print();
  std::printf("\nPaper shape to match: INFLEX within a few %% of offline "
              "TIC at every k (Table 3 NRMSE 0.013-0.024).\n");
  return 0;
}
