// score_relevance — the CI quality gate's runner (DESIGN.md §15).
//
//   score_relevance --corpus tests/corpus/golden_v1.json
//                   [--backends celfpp,ris,sketch] [--report out.json]
//       Rebuilds the corpus world, replays the maintenance scenario per
//       backend, scores every corpus query against its golden, writes the
//       deterministic JSON report, and exits non-zero when any backend
//       fails its category floors (the gate).
//
//   score_relevance --init --corpus PATH
//       Builds a fresh corpus from the default world config (scenario
//       deltas, query fixture, exact-CELF++ goldens) and writes it.
//
//   score_relevance --regen --corpus PATH
//       Recomputes the goldens of an existing corpus in place (after a
//       deliberate referee/oracle parameter change; never run to paper over
//       a quality regression).
#include <cstdio>
#include <string>
#include <vector>

#include "oracle/spread_oracle.h"
#include "quality/corpus.h"
#include "quality/json.h"
#include "quality/scorer.h"
#include "util/args.h"

namespace inflex {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "score_relevance: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::vector<oracle::OracleBackend>> ParseBackends(
    const std::string& spec) {
  std::vector<oracle::OracleBackend> backends;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string name =
        spec.substr(start, comma == std::string::npos ? spec.size() - start
                                                      : comma - start);
    if (!name.empty()) {
      INFLEX_ASSIGN_OR_RETURN(oracle::OracleBackend b,
                              oracle::ParseOracleBackend(name));
      backends.push_back(b);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (backends.empty()) {
    return Status::InvalidArgument("--backends lists no backend");
  }
  return backends;
}

int Run(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string corpus_path =
      args.GetString("corpus", "tests/corpus/golden_v1.json");
  const std::string report_path = args.GetString("report", "");
  const std::string backend_spec =
      args.GetString("backends", "celfpp,ris,sketch");
  const bool init = args.HasFlag("init");
  const bool regen = args.HasFlag("regen");
  if (Status v = args.Validate(); !v.ok()) return Fail(v);

  if (init) {
    auto corpus = quality::GenerateCorpus();
    if (!corpus.ok()) return Fail(corpus.status());
    if (Status s = quality::SaveCorpus(corpus.ValueOrDie(), corpus_path);
        !s.ok()) {
      return Fail(s);
    }
    std::fprintf(stderr, "wrote corpus (%zu queries) to %s\n",
                 corpus.ValueOrDie().queries.size(), corpus_path.c_str());
    return 0;
  }

  auto corpus = quality::LoadCorpus(corpus_path);
  if (!corpus.ok()) return Fail(corpus.status());
  auto world = quality::BuildCorpusWorld(corpus.ValueOrDie());
  if (!world.ok()) return Fail(world.status());

  if (regen) {
    if (Status s = quality::RegenerateGoldens(world.ValueOrDie(),
                                              &corpus.ValueOrDie());
        !s.ok()) {
      return Fail(s);
    }
    if (Status s = quality::SaveCorpus(corpus.ValueOrDie(), corpus_path);
        !s.ok()) {
      return Fail(s);
    }
    std::fprintf(stderr, "regenerated goldens for %zu queries in %s\n",
                 corpus.ValueOrDie().queries.size(), corpus_path.c_str());
    return 0;
  }

  auto backends = ParseBackends(backend_spec);
  if (!backends.ok()) return Fail(backends.status());
  auto report = quality::ScoreCorpus(world.ValueOrDie(), corpus.ValueOrDie(),
                                     backends.ValueOrDie());
  if (!report.ok()) return Fail(report.status());

  const quality::JsonValue json = quality::ReportToJson(report.ValueOrDie());
  const std::string text = json.Dump();
  std::fprintf(stdout, "%s\n", text.c_str());
  if (!report_path.empty()) {
    if (Status s = quality::SaveJsonFile(json, report_path); !s.ok()) {
      return Fail(s);
    }
  }

  for (const auto& b : report.ValueOrDie().backends) {
    for (const auto& c : b.categories) {
      std::fprintf(stderr, "%-8s %-20s mean=%.3f min=%.3f overlap=%.3f %s\n",
                   b.backend.c_str(), c.category.c_str(), c.mean_spread_ratio,
                   c.min_spread_ratio, c.mean_seed_overlap,
                   c.passed ? "PASS" : "FAIL");
    }
    if (!b.scenario_ok) {
      std::fprintf(stderr, "%-8s scenario replay drifted (admitted=%llu "
                   "evicted=%llu final_points=%zu)\n",
                   b.backend.c_str(),
                   static_cast<unsigned long long>(b.deltas_admitted),
                   static_cast<unsigned long long>(b.points_evicted),
                   b.final_index_points);
    }
  }
  if (!report.ValueOrDie().passed) {
    std::fprintf(stderr, "QUALITY GATE: FAIL\n");
    return 2;
  }
  std::fprintf(stderr, "QUALITY GATE: PASS\n");
  return 0;
}

}  // namespace
}  // namespace inflex

int main(int argc, char** argv) { return inflex::Run(argc, argv); }
