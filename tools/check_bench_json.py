#!/usr/bin/env python3
"""Validate the committed BENCH_*.json artifacts.

CI runs this after the benchmarks regenerate the files, so a bench that
silently stops emitting a section (or emits garbage numbers) fails the build
instead of shipping a stale artifact. Checks are structural plus a few loose
physical invariants — they must hold on any machine, so no absolute
throughput thresholds.

Usage: tools/check_bench_json.py [repo_root]
"""

import json
import math
import sys
from pathlib import Path

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool) and math.isfinite(x)


def require_keys(obj, keys, where):
    for k in keys:
        check(k in obj, f"{where}: missing key '{k}'")
    return all(k in obj for k in keys)


SIMD_NAMES = ("scalar", "avx2", "avx512")


def check_simd_record(host, where):
    """Validates the host.simd record (which KL kernel variant ran) and
    returns it, or None when it is missing/malformed."""
    simd = host.get("simd") if isinstance(host, dict) else None
    check(isinstance(simd, dict),
          f"{where}: missing host.simd record (detected/active kernel "
          "variant — needed to decide whether SIMD gates apply)")
    if not isinstance(simd, dict):
        return None
    check(simd.get("detected") in SIMD_NAMES,
          f"{where}: host.simd.detected must be one of {SIMD_NAMES}")
    check(simd.get("active") in SIMD_NAMES,
          f"{where}: host.simd.active must be one of {SIMD_NAMES}")
    check(isinstance(simd.get("forced_scalar"), bool),
          f"{where}: host.simd.forced_scalar must be a bool")
    if simd.get("forced_scalar") is True:
        check(simd.get("active") == "scalar",
              f"{where}: forced_scalar artifact must record active=scalar")
    return simd


def check_kernels(path):
    d = json.loads(path.read_text())
    check(d.get("benchmark") == "kl_kernel_leaf_scan", f"{path.name}: bad 'benchmark'")
    check(d.get("unit") == "ns_per_eval", f"{path.name}: bad 'unit'")
    quick = d.get("quick") is True
    simd = check_simd_record(d.get("host", {}), path.name)
    rows = d.get("rows")
    check(isinstance(rows, list) and rows, f"{path.name}: 'rows' empty or missing")
    for i, row in enumerate(rows or []):
        where = f"{path.name} rows[{i}]"
        if not require_keys(row, ("z", "batch", "reference", "scalar_kernel",
                                  "kernel", "speedup", "simd_speedup"), where):
            continue
        check(is_num(row["reference"]) and row["reference"] > 0, f"{where}: bad reference")
        check(is_num(row["scalar_kernel"]) and row["scalar_kernel"] > 0,
              f"{where}: bad scalar_kernel")
        check(is_num(row["kernel"]) and row["kernel"] > 0, f"{where}: bad kernel")
        check(is_num(row["speedup"]) and row["speedup"] > (1.0 if not quick else 0.0),
              f"{where}: vectorized kernel must beat the scalar reference")
        check(is_num(row["simd_speedup"]) and row["simd_speedup"] > 0,
              f"{where}: bad simd_speedup")

    # --- SIMD-speedup gate: with an explicit SIMD variant active, the
    # dispatched KlBatch must beat the auto-vectorized fixed-order scalar
    # kernel by >= 1.5x per eval at the bench dims Z=8 and Z=50 (full runs
    # only; --quick measurements are too short to gate). On a host whose
    # dispatch fell back to scalar — no AVX2, or INFLEX_FORCE_SCALAR — the
    # gate is physics-free, so it skips loudly instead of failing (mirroring
    # the 1-core thread-scaling skip).
    active = simd.get("active") if isinstance(simd, dict) else None
    if active in ("avx2", "avx512") and not quick:
        for z in (8, 50):
            zrows = [r for r in (rows or [])
                     if isinstance(r, dict) and r.get("z") == z
                     and is_num(r.get("simd_speedup"))]
            check(bool(zrows), f"{path.name}: need a Z={z} row for the SIMD gate")
            for r in zrows:
                check(r["simd_speedup"] >= 1.5,
                      f"{path.name} Z={z} batch={r.get('batch')}: SIMD "
                      f"kl_batch speedup {r['simd_speedup']}x below the 1.5x "
                      f"gate the {active} variant exists to deliver")
    else:
        reason = "a --quick smoke run" if quick else \
            f"'{active}' kernels (no AVX2, or forced scalar)"
        print(f"WARNING: {path.name} recorded with {reason} — SIMD-speedup "
              "gate skipped (re-record a full run on an AVX2-capable host "
              "to enforce it)")


def check_serving(path):
    d = json.loads(path.read_text())
    check(d.get("benchmark") == "serving_throughput", f"{path.name}: bad 'benchmark'")

    host = d.get("host", {})
    check(isinstance(host, dict) and is_num(host.get("hardware_concurrency"))
          and host.get("hardware_concurrency", 0) >= 1,
          f"{path.name}: missing host.hardware_concurrency (needed to scale "
          "the throughput gates to the recording machine)")
    check_simd_record(host, path.name)
    hc = host.get("hardware_concurrency") if isinstance(host, dict) else None

    serial = d.get("serial", {})
    check(is_num(serial.get("qps")) and serial.get("qps", 0) > 0,
          f"{path.name}: serial.qps must be positive")

    rows = d.get("rows")
    check(isinstance(rows, list) and rows, f"{path.name}: 'rows' empty or missing")
    saw_cached = saw_uncached = False
    for i, row in enumerate(rows or []):
        where = f"{path.name} rows[{i}]"
        if not require_keys(
                row, ("config", "cached", "threads", "qps", "hit_rate", "p50_ms", "p99_ms"),
                where):
            continue
        check(is_num(row["qps"]) and row["qps"] > 0, f"{where}: bad qps")
        check(is_num(row["hit_rate"]) and 0.0 <= row["hit_rate"] <= 1.0,
              f"{where}: hit_rate out of [0,1]")
        check(is_num(row["p50_ms"]) and is_num(row["p99_ms"])
              and 0 <= row["p50_ms"] <= row["p99_ms"],
              f"{where}: latency percentiles must be ordered")
        if row["cached"]:
            saw_cached = True
            check(row["hit_rate"] > 0.5, f"{where}: cached row with cold cache")
        else:
            saw_uncached = True
            check(row["hit_rate"] == 0.0, f"{where}: uncached row reports cache hits")
    check(saw_cached and saw_uncached, f"{path.name}: need both cached and uncached rows")

    # --- Scaling gates: uncached QPS must scale with cores (the serving
    # plane is lock-free enough that threads add throughput, not contention).
    # The expectation is keyed to the recording host: on an 8-core machine the
    # max-thread row must reach >= 4x serial; fewer cores scale the bar down
    # (0.5x per effective core), and a 1-core host skips with a loud warning
    # instead of failing physics.
    uncached_rows = {
        row["threads"]: row
        for row in (rows or [])
        if isinstance(row, dict) and row.get("cached") is False
        and is_num(row.get("threads")) and is_num(row.get("qps"))
    }
    if is_num(hc) and uncached_rows and is_num(serial.get("qps")):
        top_threads = max(uncached_rows)
        top = uncached_rows[top_threads]
        eff = min(int(top_threads), int(hc))
        if eff >= 2:
            want = 0.5 * eff
            check(top["qps"] >= want * serial["qps"],
                  f"{path.name}: uncached {int(top_threads)}-thread qps "
                  f"{top['qps']:.0f} must be >= {want:.1f}x serial "
                  f"{serial['qps']:.0f} on a {int(hc)}-core host — the "
                  "serving plane is serializing")
            base = uncached_rows.get(1)
            if base and is_num(base.get("p95_ms")) and is_num(top.get("p95_ms")) \
                    and base["p95_ms"] > 0:
                check(top["p95_ms"] <= 3.0 * base["p95_ms"],
                      f"{path.name}: uncached {int(top_threads)}-thread p95 "
                      f"{top['p95_ms']:.3f} ms blew past 3x the 1-thread p95 "
                      f"{base['p95_ms']:.3f} ms — queueing under contention")
        else:
            print(f"WARNING: {path.name} recorded on a {int(hc)}-core host — "
                  "thread-scaling gates skipped (re-record on a multi-core "
                  "machine to enforce them)")

    # The churn scenario exercises the maintenance tentpole end to end: a
    # 100-delta burst must coalesce into a handful of generations, and the
    # decay sweeps must evict cold points with the index size stabilizing.
    churn = d.get("churn")
    check(isinstance(churn, dict), f"{path.name}: missing 'churn' section")
    if not isinstance(churn, dict):
        return
    ok = require_keys(
        churn,
        ("deltas_submitted", "admitted", "burst_generations", "batched_deltas",
         "index_points_initial", "index_points_peak", "decay_sweeps",
         "points_evicted", "rows"),
        f"{path.name} churn")
    if not ok:
        return
    check(churn["deltas_submitted"] >= 100, f"{path.name}: churn burst too small")
    check(churn["admitted"] == churn["deltas_submitted"],
          f"{path.name}: churn deltas must all be admitted (mixtures are far apart)")
    check(1 <= churn["burst_generations"] <= 5,
          f"{path.name}: {churn['deltas_submitted']}-delta burst published "
          f"{churn['burst_generations']} generations, want <= 5")
    check(churn["batched_deltas"] == churn["admitted"],
          f"{path.name}: every burst delta should land via a coalesced batch")
    check(churn["points_evicted"] > 0, f"{path.name}: decay sweeps evicted nothing")
    check(churn["decay_sweeps"] >= 2, f"{path.name}: need repeated sweeps")
    check(churn["index_points_peak"] > churn["index_points_initial"],
          f"{path.name}: burst did not grow the index")

    phases = churn["rows"]
    check(isinstance(phases, list) and len(phases) >= 4,
          f"{path.name}: churn needs warm/burst/sweep phases")
    if isinstance(phases, list):
        for i, row in enumerate(phases):
            require_keys(row, ("phase", "generation_swaps", "index_points",
                               "points_evicted"), f"{path.name} churn rows[{i}]")
        sweeps = [r for r in phases if str(r.get("phase", "")).startswith("sweep")]
        check(len(sweeps) >= 2, f"{path.name}: need at least two sweep snapshots")
        if len(sweeps) >= 2:
            check(sweeps[-1]["index_points"] == sweeps[-2]["index_points"],
                  f"{path.name}: index size must stabilize across trailing sweeps")
            check(sweeps[-1]["index_points"] < churn["index_points_peak"],
                  f"{path.name}: sweeps must shrink the index below its burst peak")

    # The oracle A/B section is the contract of the spread-oracle subsystem:
    # the pluggable RIS/sketch backends must match the CELF++ golden
    # reference's seed quality (>= 0.95x by a common Monte-Carlo referee)
    # while publishing admitted deltas >= 10x faster (full runs; --quick
    # runs are shape-only smoke, so they only gate a loose quality floor and
    # the latency *ordering*).
    oracle = d.get("oracle")
    check(isinstance(oracle, dict), f"{path.name}: missing 'oracle' section")
    if isinstance(oracle, dict) and require_keys(
            oracle, ("quick", "deltas", "k", "rows"), f"{path.name} oracle"):
        quick = oracle["quick"] is True
        check(is_num(oracle["deltas"]) and oracle["deltas"] >= (4 if quick else 8),
              f"{path.name}: oracle A/B needs >= {4 if quick else 8} deltas")
        orows = oracle["rows"]
        by_backend = {}
        if isinstance(orows, list):
            for i, row in enumerate(orows):
                where = f"{path.name} oracle.rows[{i}]"
                if not require_keys(
                        row, ("backend", "admit_to_publish_mean_ms",
                              "admit_to_publish_max_ms", "precompute_mean_ms",
                              "mean_spread", "quality_vs_celfpp",
                              "speedup_vs_celfpp"), where):
                    continue
                check(is_num(row["admit_to_publish_mean_ms"])
                      and row["admit_to_publish_mean_ms"] > 0,
                      f"{where}: bad admit_to_publish_mean_ms")
                check(is_num(row["precompute_mean_ms"])
                      and 0 < row["precompute_mean_ms"]
                      <= row["admit_to_publish_mean_ms"],
                      f"{where}: precompute must be positive and inside the "
                      "admit->publish window")
                check(is_num(row["mean_spread"]) and row["mean_spread"] > 0,
                      f"{where}: bad mean_spread")
                by_backend[row.get("backend")] = row
        for backend in ("celfpp", "ris", "sketch"):
            check(backend in by_backend,
                  f"{path.name}: oracle section missing the '{backend}' row")
        golden = by_backend.get("celfpp")
        if golden:
            check(golden.get("quality_vs_celfpp") == 1.0,
                  f"{path.name}: celfpp is its own quality reference")
            quality_floor = 0.8 if quick else 0.95
            for backend in ("ris", "sketch"):
                row = by_backend.get(backend)
                if not row:
                    continue
                where = f"{path.name} oracle '{backend}'"
                check(is_num(row.get("quality_vs_celfpp"))
                      and row["quality_vs_celfpp"] >= quality_floor,
                      f"{where}: seed quality {row.get('quality_vs_celfpp')} "
                      f"below the {quality_floor}x CELF++ floor")
                check(row["admit_to_publish_mean_ms"]
                      < golden["admit_to_publish_mean_ms"],
                      f"{where}: must publish faster than CELF++")
                if not quick:
                    check(is_num(row.get("speedup_vs_celfpp"))
                          and row["speedup_vs_celfpp"] >= 10.0,
                          f"{where}: admit->publish speedup "
                          f"{row.get('speedup_vs_celfpp')} below the 10x gate "
                          "the subsystem exists to deliver")

    # The net section (spliced in by bench_net_throughput) measures the TCP
    # front end: closed-loop scaling rows plus an overload scenario where the
    # bounded admission queue must shed instead of queueing unboundedly.
    net = d.get("net")
    check(isinstance(net, dict),
          f"{path.name}: missing 'net' section (run bench_net_throughput)")
    if not isinstance(net, dict):
        return
    net_rows = net.get("rows")
    check(isinstance(net_rows, list) and net_rows,
          f"{path.name}: net.rows empty or missing")
    for i, row in enumerate(net_rows or []):
        where = f"{path.name} net.rows[{i}]"
        if not require_keys(row, ("connections", "requests", "qps", "p50_ms",
                                  "p95_ms", "p99_ms", "shed_rate"), where):
            continue
        check(is_num(row["qps"]) and row["qps"] > 0, f"{where}: bad qps")
        check(is_num(row["p50_ms"]) and is_num(row["p95_ms"])
              and is_num(row["p99_ms"])
              and 0 <= row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"],
              f"{where}: latency percentiles must be ordered")
        check(is_num(row["shed_rate"]) and row["shed_rate"] == 0.0,
              f"{where}: the well-provisioned scaling rows must not shed")
    check(is_num(net.get("io_threads")) and net.get("io_threads", 0) >= 1,
          f"{path.name}: net.io_threads missing — the scaling rows must "
          "record the IO plane width they ran against")

    # Connection-scaling gate, host-scaled like the thread gate: on an 8-core
    # host the max-connection row must reach >= 2.5x the 1-connection row;
    # fewer cores shrink the bar proportionally (floor 1.0x — more
    # connections must never make the sharded IO plane slower).
    conn_rows = {
        row["connections"]: row
        for row in (net_rows or [])
        if isinstance(row, dict) and is_num(row.get("connections"))
        and is_num(row.get("qps"))
    }
    if is_num(hc) and len(conn_rows) >= 2 and 1 in conn_rows:
        top_conns = max(conn_rows)
        top = conn_rows[top_conns]
        base = conn_rows[1]
        eff = min(int(top_conns), int(hc))
        if eff >= 2:
            want = max(1.0, 2.5 * eff / 8.0)
            check(top["qps"] >= want * base["qps"],
                  f"{path.name}: net {int(top_conns)}-connection qps "
                  f"{top['qps']:.0f} must be >= {want:.2f}x the 1-connection "
                  f"{base['qps']:.0f} on a {int(hc)}-core host — the IO "
                  "plane is serializing")
        else:
            print(f"WARNING: {path.name} net section recorded on a "
                  f"{int(hc)}-core host — connection-scaling gate skipped")
    overload = net.get("overload")
    check(isinstance(overload, dict), f"{path.name}: missing net.overload")
    if isinstance(overload, dict) and require_keys(
            overload, ("connections", "workers", "queue_high", "requests",
                       "ok", "shed", "shed_rate", "qps", "p99_ms"),
            f"{path.name} net.overload"):
        check(overload["shed"] > 0,
              f"{path.name}: overload scenario must shed (bounded admission)")
        check(overload["ok"] > 0,
              f"{path.name}: overload must not starve surviving requests")
        check(overload["ok"] + overload["shed"] == overload["requests"],
              f"{path.name}: net.overload counts must add up (no failures)")
        check(is_num(overload["shed_rate"])
              and 0.0 < overload["shed_rate"] < 1.0,
              f"{path.name}: overload shed_rate out of (0,1)")


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    for name, checker in (("BENCH_kernels.json", check_kernels),
                          ("BENCH_serving.json", check_serving)):
        path = root / name
        if not path.exists():
            FAILURES.append(f"{name}: file not found under {root}")
            continue
        try:
            checker(path)
        except (json.JSONDecodeError, OSError) as e:
            FAILURES.append(f"{name}: unreadable ({e})")

    if FAILURES:
        print("BENCH json validation FAILED:")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print("BENCH json validation OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
