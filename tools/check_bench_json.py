#!/usr/bin/env python3
"""Validate the committed BENCH_*.json artifacts.

CI runs this after the benchmarks regenerate the files, so a bench that
silently stops emitting a section (or emits garbage numbers) fails the build
instead of shipping a stale artifact. Checks are structural plus a few loose
physical invariants — they must hold on any machine, so no absolute
throughput thresholds.

Usage: tools/check_bench_json.py [repo_root]
"""

import json
import math
import sys
from pathlib import Path

FAILURES = []


def check(cond, msg):
    if not cond:
        FAILURES.append(msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool) and math.isfinite(x)


def require_keys(obj, keys, where):
    for k in keys:
        check(k in obj, f"{where}: missing key '{k}'")
    return all(k in obj for k in keys)


SIMD_NAMES = ("scalar", "avx2", "avx512")


def check_simd_record(host, where):
    """Validates the host.simd record (which KL kernel variant ran) and
    returns it, or None when it is missing/malformed."""
    simd = host.get("simd") if isinstance(host, dict) else None
    check(isinstance(simd, dict),
          f"{where}: missing host.simd record (detected/active kernel "
          "variant — needed to decide whether SIMD gates apply)")
    if not isinstance(simd, dict):
        return None
    check(simd.get("detected") in SIMD_NAMES,
          f"{where}: host.simd.detected must be one of {SIMD_NAMES}")
    check(simd.get("active") in SIMD_NAMES,
          f"{where}: host.simd.active must be one of {SIMD_NAMES}")
    check(isinstance(simd.get("forced_scalar"), bool),
          f"{where}: host.simd.forced_scalar must be a bool")
    if simd.get("forced_scalar") is True:
        check(simd.get("active") == "scalar",
              f"{where}: forced_scalar artifact must record active=scalar")
    return simd


def check_kernels(path):
    d = json.loads(path.read_text())
    check(d.get("benchmark") == "kl_kernel_leaf_scan", f"{path.name}: bad 'benchmark'")
    check(d.get("unit") == "ns_per_eval", f"{path.name}: bad 'unit'")
    quick = d.get("quick") is True
    simd = check_simd_record(d.get("host", {}), path.name)
    rows = d.get("rows")
    check(isinstance(rows, list) and rows, f"{path.name}: 'rows' empty or missing")
    for i, row in enumerate(rows or []):
        where = f"{path.name} rows[{i}]"
        if not require_keys(row, ("z", "batch", "reference", "scalar_kernel",
                                  "kernel", "speedup", "simd_speedup"), where):
            continue
        check(is_num(row["reference"]) and row["reference"] > 0, f"{where}: bad reference")
        check(is_num(row["scalar_kernel"]) and row["scalar_kernel"] > 0,
              f"{where}: bad scalar_kernel")
        check(is_num(row["kernel"]) and row["kernel"] > 0, f"{where}: bad kernel")
        check(is_num(row["speedup"]) and row["speedup"] > (1.0 if not quick else 0.0),
              f"{where}: vectorized kernel must beat the scalar reference")
        check(is_num(row["simd_speedup"]) and row["simd_speedup"] > 0,
              f"{where}: bad simd_speedup")

    # --- SIMD-speedup gate: with an explicit SIMD variant active, the
    # dispatched KlBatch must beat the auto-vectorized fixed-order scalar
    # kernel by >= 1.5x per eval at the bench dims Z=8 and Z=50 (full runs
    # only; --quick measurements are too short to gate). On a host whose
    # dispatch fell back to scalar — no AVX2, or INFLEX_FORCE_SCALAR — the
    # gate is physics-free, so it skips loudly instead of failing (mirroring
    # the 1-core thread-scaling skip).
    active = simd.get("active") if isinstance(simd, dict) else None
    if active in ("avx2", "avx512") and not quick:
        for z in (8, 50):
            zrows = [r for r in (rows or [])
                     if isinstance(r, dict) and r.get("z") == z
                     and is_num(r.get("simd_speedup"))]
            check(bool(zrows), f"{path.name}: need a Z={z} row for the SIMD gate")
            for r in zrows:
                check(r["simd_speedup"] >= 1.5,
                      f"{path.name} Z={z} batch={r.get('batch')}: SIMD "
                      f"kl_batch speedup {r['simd_speedup']}x below the 1.5x "
                      f"gate the {active} variant exists to deliver")
    else:
        reason = "a --quick smoke run" if quick else \
            f"'{active}' kernels (no AVX2, or forced scalar)"
        print(f"WARNING: {path.name} recorded with {reason} — SIMD-speedup "
              "gate skipped (re-record a full run on an AVX2-capable host "
              "to enforce it)")


def check_serving(path):
    d = json.loads(path.read_text())
    check(d.get("benchmark") == "serving_throughput", f"{path.name}: bad 'benchmark'")

    host = d.get("host", {})
    check(isinstance(host, dict) and is_num(host.get("hardware_concurrency"))
          and host.get("hardware_concurrency", 0) >= 1,
          f"{path.name}: missing host.hardware_concurrency (needed to scale "
          "the throughput gates to the recording machine)")
    check_simd_record(host, path.name)
    hc = host.get("hardware_concurrency") if isinstance(host, dict) else None

    serial = d.get("serial", {})
    check(is_num(serial.get("qps")) and serial.get("qps", 0) > 0,
          f"{path.name}: serial.qps must be positive")

    rows = d.get("rows")
    check(isinstance(rows, list) and rows, f"{path.name}: 'rows' empty or missing")
    saw_cached = saw_uncached = False
    for i, row in enumerate(rows or []):
        where = f"{path.name} rows[{i}]"
        if not require_keys(
                row, ("config", "cached", "threads", "qps", "hit_rate", "p50_ms", "p99_ms"),
                where):
            continue
        check(is_num(row["qps"]) and row["qps"] > 0, f"{where}: bad qps")
        check(is_num(row["hit_rate"]) and 0.0 <= row["hit_rate"] <= 1.0,
              f"{where}: hit_rate out of [0,1]")
        check(is_num(row["p50_ms"]) and is_num(row["p99_ms"])
              and 0 <= row["p50_ms"] <= row["p99_ms"],
              f"{where}: latency percentiles must be ordered")
        if row["cached"]:
            saw_cached = True
            check(row["hit_rate"] > 0.5, f"{where}: cached row with cold cache")
        else:
            saw_uncached = True
            check(row["hit_rate"] == 0.0, f"{where}: uncached row reports cache hits")
    check(saw_cached and saw_uncached, f"{path.name}: need both cached and uncached rows")

    # --- Scaling gates: uncached QPS must scale with cores (the serving
    # plane is lock-free enough that threads add throughput, not contention).
    # The expectation is keyed to the recording host: on an 8-core machine the
    # max-thread row must reach >= 4x serial; fewer cores scale the bar down
    # (0.5x per effective core), and a 1-core host skips with a loud warning
    # instead of failing physics.
    uncached_rows = {
        row["threads"]: row
        for row in (rows or [])
        if isinstance(row, dict) and row.get("cached") is False
        and is_num(row.get("threads")) and is_num(row.get("qps"))
    }
    if is_num(hc) and uncached_rows and is_num(serial.get("qps")):
        top_threads = max(uncached_rows)
        top = uncached_rows[top_threads]
        eff = min(int(top_threads), int(hc))
        if eff >= 2:
            want = 0.5 * eff
            check(top["qps"] >= want * serial["qps"],
                  f"{path.name}: uncached {int(top_threads)}-thread qps "
                  f"{top['qps']:.0f} must be >= {want:.1f}x serial "
                  f"{serial['qps']:.0f} on a {int(hc)}-core host — the "
                  "serving plane is serializing")
            base = uncached_rows.get(1)
            if base and is_num(base.get("p95_ms")) and is_num(top.get("p95_ms")) \
                    and base["p95_ms"] > 0:
                check(top["p95_ms"] <= 3.0 * base["p95_ms"],
                      f"{path.name}: uncached {int(top_threads)}-thread p95 "
                      f"{top['p95_ms']:.3f} ms blew past 3x the 1-thread p95 "
                      f"{base['p95_ms']:.3f} ms — queueing under contention")
        else:
            print(f"WARNING: {path.name} recorded on a {int(hc)}-core host — "
                  "thread-scaling gates skipped (re-record on a multi-core "
                  "machine to enforce them)")

    # The churn scenario exercises the maintenance tentpole end to end: a
    # 100-delta burst must coalesce into a handful of generations, and the
    # decay sweeps must evict cold points with the index size stabilizing.
    churn = d.get("churn")
    check(isinstance(churn, dict), f"{path.name}: missing 'churn' section")
    if not isinstance(churn, dict):
        return
    ok = require_keys(
        churn,
        ("deltas_submitted", "admitted", "burst_generations", "batched_deltas",
         "index_points_initial", "index_points_peak", "decay_sweeps",
         "points_evicted", "rows"),
        f"{path.name} churn")
    if not ok:
        return
    for key in ("deltas_submitted", "admitted", "burst_generations",
                "batched_deltas", "index_points_initial", "index_points_peak",
                "decay_sweeps", "points_evicted"):
        if not is_num(churn.get(key)):
            check(False, f"{path.name} churn: '{key}' must be a finite number")
            return
    check(churn["deltas_submitted"] >= 100, f"{path.name}: churn burst too small")
    check(churn["admitted"] == churn["deltas_submitted"],
          f"{path.name}: churn deltas must all be admitted (mixtures are far apart)")
    check(1 <= churn["burst_generations"] <= 5,
          f"{path.name}: {churn['deltas_submitted']}-delta burst published "
          f"{churn['burst_generations']} generations, want <= 5")
    check(churn["batched_deltas"] == churn["admitted"],
          f"{path.name}: every burst delta should land via a coalesced batch")
    check(churn["points_evicted"] > 0, f"{path.name}: decay sweeps evicted nothing")
    check(churn["decay_sweeps"] >= 2, f"{path.name}: need repeated sweeps")
    check(churn["index_points_peak"] > churn["index_points_initial"],
          f"{path.name}: burst did not grow the index")

    phases = churn["rows"]
    check(isinstance(phases, list) and len(phases) >= 4,
          f"{path.name}: churn needs warm/burst/sweep phases")
    if isinstance(phases, list):
        for i, row in enumerate(phases):
            if isinstance(row, dict):
                require_keys(row, ("phase", "generation_swaps", "index_points",
                                   "points_evicted"), f"{path.name} churn rows[{i}]")
            else:
                check(False, f"{path.name} churn rows[{i}]: must be an object")
        # Only well-formed sweep rows enter the stabilization gate — a row
        # missing 'index_points' already failed require_keys above and must
        # not crash the comparison with a KeyError.
        sweeps = [r for r in phases
                  if isinstance(r, dict)
                  and str(r.get("phase", "")).startswith("sweep")
                  and is_num(r.get("index_points"))]
        check(len(sweeps) >= 2, f"{path.name}: need at least two sweep snapshots")
        if len(sweeps) >= 2:
            check(sweeps[-1]["index_points"] == sweeps[-2]["index_points"],
                  f"{path.name}: index size must stabilize across trailing sweeps")
            check(sweeps[-1]["index_points"] < churn["index_points_peak"],
                  f"{path.name}: sweeps must shrink the index below its burst peak")

    # The oracle A/B section is the contract of the spread-oracle subsystem:
    # the pluggable RIS/sketch backends must match the CELF++ golden
    # reference's seed quality (>= 0.95x by a common Monte-Carlo referee)
    # while publishing admitted deltas >= 10x faster (full runs; --quick
    # runs are shape-only smoke, so they only gate a loose quality floor and
    # the latency *ordering*).
    oracle = d.get("oracle")
    check(isinstance(oracle, dict), f"{path.name}: missing 'oracle' section")
    if isinstance(oracle, dict) and require_keys(
            oracle, ("quick", "deltas", "k", "rows"), f"{path.name} oracle"):
        quick = oracle["quick"] is True
        check(is_num(oracle["deltas"]) and oracle["deltas"] >= (4 if quick else 8),
              f"{path.name}: oracle A/B needs >= {4 if quick else 8} deltas")
        orows = oracle["rows"]
        by_backend = {}
        if isinstance(orows, list):
            for i, row in enumerate(orows):
                where = f"{path.name} oracle.rows[{i}]"
                if not require_keys(
                        row, ("backend", "admit_to_publish_mean_ms",
                              "admit_to_publish_max_ms", "precompute_mean_ms",
                              "mean_spread", "quality_vs_celfpp",
                              "speedup_vs_celfpp"), where):
                    continue
                check(is_num(row["admit_to_publish_mean_ms"])
                      and row["admit_to_publish_mean_ms"] > 0,
                      f"{where}: bad admit_to_publish_mean_ms")
                check(is_num(row["precompute_mean_ms"])
                      and 0 < row["precompute_mean_ms"]
                      <= row["admit_to_publish_mean_ms"],
                      f"{where}: precompute must be positive and inside the "
                      "admit->publish window")
                check(is_num(row["mean_spread"]) and row["mean_spread"] > 0,
                      f"{where}: bad mean_spread")
                by_backend[row.get("backend")] = row
        for backend in ("celfpp", "ris", "sketch"):
            check(backend in by_backend,
                  f"{path.name}: oracle section missing the '{backend}' row")
        golden = by_backend.get("celfpp")
        if golden:
            check(golden.get("quality_vs_celfpp") == 1.0,
                  f"{path.name}: celfpp is its own quality reference")
            quality_floor = 0.8 if quick else 0.95
            for backend in ("ris", "sketch"):
                row = by_backend.get(backend)
                if not row:
                    continue
                where = f"{path.name} oracle '{backend}'"
                check(is_num(row.get("quality_vs_celfpp"))
                      and row["quality_vs_celfpp"] >= quality_floor,
                      f"{where}: seed quality {row.get('quality_vs_celfpp')} "
                      f"below the {quality_floor}x CELF++ floor")
                check(row["admit_to_publish_mean_ms"]
                      < golden["admit_to_publish_mean_ms"],
                      f"{where}: must publish faster than CELF++")
                if not quick:
                    check(is_num(row.get("speedup_vs_celfpp"))
                          and row["speedup_vs_celfpp"] >= 10.0,
                          f"{where}: admit->publish speedup "
                          f"{row.get('speedup_vs_celfpp')} below the 10x gate "
                          "the subsystem exists to deliver")

    # The tenants section is the noisy-neighbor contract of the multi-tenant
    # serving plane: a hot tenant flooding against its per-tenant token
    # bucket must shed at the admission layer (cheap bucket probe, not a KL
    # search), and every quiet tenant's storm p99 must stay within a bounded
    # factor of its solo baseline. The isolation gate only means something
    # when the recorder could actually run tenants concurrently, so --quick
    # and 1-core artifacts skip it loudly instead of failing physics.
    tenants = d.get("tenants")
    check(isinstance(tenants, dict), f"{path.name}: missing 'tenants' section")
    if isinstance(tenants, dict) and require_keys(
            tenants, ("quick", "quiet_tenants", "isolation_ratio_max", "hot",
                      "rows"), f"{path.name} tenants"):
        tquick = tenants["quick"] is True
        check(is_num(tenants["quiet_tenants"])
              and tenants["quiet_tenants"] >= 2,
              f"{path.name}: noisy-neighbor scenario needs >= 2 quiet tenants")
        hot = tenants["hot"]
        if isinstance(hot, dict) and require_keys(
                hot, ("tenant", "budget_qps", "attempts", "admitted", "shed",
                      "shed_rate", "p99_ms"), f"{path.name} tenants.hot"):
            check(is_num(hot["budget_qps"]) and hot["budget_qps"] > 0,
                  f"{path.name}: the hot tenant must flood against a finite "
                  "per-tenant budget")
            check(is_num(hot["shed"]) and hot["shed"] > 0,
                  f"{path.name}: the hot flood must shed — the token bucket "
                  "is the isolation mechanism")
            check(is_num(hot["admitted"]) and hot["admitted"] > 0,
                  f"{path.name}: the budget must still admit the hot "
                  "tenant's in-budget traffic, not starve it")
            check(is_num(hot["shed_rate"]) and 0.0 < hot["shed_rate"] < 1.0,
                  f"{path.name}: tenants.hot.shed_rate out of (0,1)")
        else:
            check(isinstance(hot, dict), f"{path.name}: tenants.hot must be "
                  "an object")
        trows = tenants["rows"]
        check(isinstance(trows, list) and trows,
              f"{path.name}: tenants.rows empty or missing")
        for i, row in enumerate(trows or []):
            where = f"{path.name} tenants.rows[{i}]"
            if not isinstance(row, dict) or not require_keys(
                    row, ("tenant", "requests", "solo_p99_ms", "storm_p99_ms",
                          "isolation_ratio", "shed"), where):
                continue
            check(is_num(row["solo_p99_ms"]) and row["solo_p99_ms"] > 0,
                  f"{where}: bad solo_p99_ms")
            check(is_num(row["storm_p99_ms"]) and row["storm_p99_ms"] > 0,
                  f"{where}: bad storm_p99_ms")
            check(is_num(row["shed"]) and row["shed"] == 0,
                  f"{where}: an unmetered quiet tenant must never shed")
        if not tquick and is_num(hc) and int(hc) >= 2:
            check(is_num(tenants["isolation_ratio_max"])
                  and 0.0 < tenants["isolation_ratio_max"] <= 3.0,
                  f"{path.name}: quiet-tenant isolation ratio "
                  f"{tenants.get('isolation_ratio_max')} above the 3.0x "
                  "gate — the hot tenant is starving its neighbors")
        else:
            reason = "a --quick smoke run" if tquick else \
                f"a {int(hc) if is_num(hc) else '?'}-core host"
            print(f"WARNING: {path.name} tenants section recorded with "
                  f"{reason} — noisy-neighbor isolation gate skipped "
                  "(re-record a full run on a multi-core machine to "
                  "enforce it)")

    # The net section (spliced in by bench_net_throughput) measures the TCP
    # front end: closed-loop scaling rows plus an overload scenario where the
    # bounded admission queue must shed instead of queueing unboundedly.
    net = d.get("net")
    check(isinstance(net, dict),
          f"{path.name}: missing 'net' section (run bench_net_throughput)")
    if not isinstance(net, dict):
        return
    net_rows = net.get("rows")
    check(isinstance(net_rows, list) and net_rows,
          f"{path.name}: net.rows empty or missing")
    for i, row in enumerate(net_rows or []):
        where = f"{path.name} net.rows[{i}]"
        if not require_keys(row, ("connections", "requests", "qps", "p50_ms",
                                  "p95_ms", "p99_ms", "shed_rate"), where):
            continue
        check(is_num(row["qps"]) and row["qps"] > 0, f"{where}: bad qps")
        check(is_num(row["p50_ms"]) and is_num(row["p95_ms"])
              and is_num(row["p99_ms"])
              and 0 <= row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"],
              f"{where}: latency percentiles must be ordered")
        check(is_num(row["shed_rate"]) and row["shed_rate"] == 0.0,
              f"{where}: the well-provisioned scaling rows must not shed")
    check(is_num(net.get("io_threads")) and net.get("io_threads", 0) >= 1,
          f"{path.name}: net.io_threads missing — the scaling rows must "
          "record the IO plane width they ran against")

    # Connection-scaling gate, host-scaled like the thread gate: on an 8-core
    # host the max-connection row must reach >= 2.5x the 1-connection row;
    # fewer cores shrink the bar proportionally (floor 1.0x — more
    # connections must never make the sharded IO plane slower).
    conn_rows = {
        row["connections"]: row
        for row in (net_rows or [])
        if isinstance(row, dict) and is_num(row.get("connections"))
        and is_num(row.get("qps"))
    }
    if is_num(hc) and len(conn_rows) >= 2 and 1 in conn_rows:
        top_conns = max(conn_rows)
        top = conn_rows[top_conns]
        base = conn_rows[1]
        eff = min(int(top_conns), int(hc))
        if eff >= 2:
            want = max(1.0, 2.5 * eff / 8.0)
            check(top["qps"] >= want * base["qps"],
                  f"{path.name}: net {int(top_conns)}-connection qps "
                  f"{top['qps']:.0f} must be >= {want:.2f}x the 1-connection "
                  f"{base['qps']:.0f} on a {int(hc)}-core host — the IO "
                  "plane is serializing")
        else:
            print(f"WARNING: {path.name} net section recorded on a "
                  f"{int(hc)}-core host — connection-scaling gate skipped")
    overload = net.get("overload")
    check(isinstance(overload, dict), f"{path.name}: missing net.overload")
    if isinstance(overload, dict) and require_keys(
            overload, ("connections", "workers", "queue_high", "requests",
                       "ok", "shed", "shed_rate", "qps", "p99_ms"),
            f"{path.name} net.overload"):
        check(overload["shed"] > 0,
              f"{path.name}: overload scenario must shed (bounded admission)")
        check(overload["ok"] > 0,
              f"{path.name}: overload must not starve surviving requests")
        check(overload["ok"] + overload["shed"] == overload["requests"],
              f"{path.name}: net.overload counts must add up (no failures)")
        check(is_num(overload["shed_rate"])
              and 0.0 < overload["shed_rate"] < 1.0,
              f"{path.name}: overload shed_rate out of (0,1)")


QUALITY_BACKENDS = ("celfpp", "ris", "sketch")
QUALITY_CATEGORIES = ("near-index-point", "far-from-index",
                      "segment-restricted", "post-eviction",
                      "post-delta-churn")


def check_quality(path):
    """Validates a quality report emitted by tools/score_relevance: every
    backend present, every category present and above its committed floors,
    the scenario replay undrifted, and the top-level gate green."""
    d = json.loads(path.read_text())
    check(d.get("schema") == "inflex-quality-v1", f"{path.name}: bad 'schema'")
    corpus = d.get("corpus")
    check(isinstance(corpus, dict) and isinstance(corpus.get("name"), str)
          and is_num(corpus.get("version")),
          f"{path.name}: missing corpus {{name, version}} record")
    backends = d.get("backends")
    check(isinstance(backends, list) and backends,
          f"{path.name}: 'backends' empty or missing")
    by_backend = {}
    for i, b in enumerate(backends or []):
        where = f"{path.name} backends[{i}]"
        if not isinstance(b, dict):
            check(False, f"{where}: must be an object")
            continue
        by_backend[b.get("backend")] = b
        scenario = b.get("scenario")
        check(isinstance(scenario, dict) and scenario.get("ok") is True,
              f"{where}: scenario replay drifted (admissions/evictions did "
              "not match the corpus — category labels are meaningless)")
        seen_categories = set()
        for j, c in enumerate(b.get("categories") or []):
            cwhere = f"{where} categories[{j}]"
            if not isinstance(c, dict) or not require_keys(
                    c, ("category", "num_queries", "mean_spread_ratio",
                        "min_spread_ratio", "mean_seed_overlap", "thresholds",
                        "passed"), cwhere):
                continue
            seen_categories.add(c["category"])
            t = c["thresholds"]
            if not isinstance(t, dict) or not require_keys(
                    t, ("min_mean_spread_ratio", "min_query_spread_ratio",
                        "min_mean_seed_overlap"), f"{cwhere} thresholds"):
                continue
            for metric, floor in (("mean_spread_ratio", "min_mean_spread_ratio"),
                                  ("min_spread_ratio", "min_query_spread_ratio"),
                                  ("mean_seed_overlap", "min_mean_seed_overlap")):
                check(is_num(c[metric]) and is_num(t[floor])
                      and c[metric] >= t[floor],
                      f"{cwhere} '{c['category']}': {metric} "
                      f"{c.get(metric)} below the committed floor {t.get(floor)}")
            check(c["passed"] is True,
                  f"{cwhere} '{c['category']}': category gate failed")
        check(seen_categories == set(QUALITY_CATEGORIES),
              f"{where}: categories {sorted(seen_categories)} != required "
              f"{sorted(QUALITY_CATEGORIES)}")
        queries = b.get("queries")
        check(isinstance(queries, list) and queries,
              f"{where}: 'queries' empty or missing")
        for j, q in enumerate(queries or []):
            qwhere = f"{where} queries[{j}]"
            if not isinstance(q, dict) or not require_keys(
                    q, ("id", "category", "seeds", "indexed_spread",
                        "golden_spread", "spread_ratio", "seed_overlap"),
                    qwhere):
                continue
            check(isinstance(q["seeds"], list) and q["seeds"],
                  f"{qwhere}: empty answer seed list")
            check(is_num(q["golden_spread"]) and q["golden_spread"] > 0,
                  f"{qwhere}: bad golden_spread")
            check(is_num(q["spread_ratio"]) and q["spread_ratio"] > 0,
                  f"{qwhere}: bad spread_ratio")
        check(b.get("passed") is True, f"{where}: backend gate failed")
    for backend in QUALITY_BACKENDS:
        check(backend in by_backend,
              f"{path.name}: missing the '{backend}' backend run")
    check(d.get("passed") is True, f"{path.name}: quality gate failed")


def compare_json(a, b, where, tol=1e-9):
    """Structural comparison with a numeric tolerance (libm last-ulp slack
    across hosts); any larger drift is a regression — or a deliberate change
    that must re-commit the baseline report."""
    if is_num(a) and is_num(b):
        check(abs(a - b) <= tol,
              f"{where}: {a} drifted from committed baseline {b}")
        return
    if type(a) is not type(b):
        check(False, f"{where}: type changed ({type(a).__name__} vs "
              f"baseline {type(b).__name__})")
        return
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a:
                check(False, f"{where}.{k}: missing (baseline has it)")
            elif k not in b:
                check(False, f"{where}.{k}: not in committed baseline")
            else:
                compare_json(a[k], b[k], f"{where}.{k}", tol)
    elif isinstance(a, list):
        if len(a) != len(b):
            check(False, f"{where}: length {len(a)} != baseline {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            compare_json(x, y, f"{where}[{i}]", tol)
    else:
        check(a == b, f"{where}: {a!r} != baseline {b!r}")


def check_quality_against_baseline(fresh_path, baseline_path):
    check_quality(fresh_path)
    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    compare_json(fresh, baseline, "report")


# ----------------------------------------------------------- self-test ------


def _good_kernels():
    row = lambda z: {"z": z, "batch": 64, "reference": 10.0,
                     "scalar_kernel": 5.0, "kernel": 2.0, "speedup": 5.0,
                     "simd_speedup": 2.5}
    return {"benchmark": "kl_kernel_leaf_scan", "unit": "ns_per_eval",
            "quick": False,
            "host": {"simd": {"detected": "avx2", "active": "avx2",
                              "forced_scalar": False}},
            "rows": [row(8), row(50)]}


def _good_serving():
    return {
        "benchmark": "serving_throughput",
        "host": {"hardware_concurrency": 8,
                 "simd": {"detected": "avx2", "active": "avx2",
                          "forced_scalar": False}},
        "serial": {"qps": 1000.0},
        "rows": [
            {"config": "uncached-1", "cached": False, "threads": 1,
             "qps": 1100.0, "hit_rate": 0.0, "p50_ms": 0.5, "p95_ms": 0.8,
             "p99_ms": 1.0},
            {"config": "uncached-8", "cached": False, "threads": 8,
             "qps": 6000.0, "hit_rate": 0.0, "p50_ms": 0.6, "p95_ms": 1.0,
             "p99_ms": 1.5},
            {"config": "cached-8", "cached": True, "threads": 8,
             "qps": 50000.0, "hit_rate": 0.9, "p50_ms": 0.1, "p95_ms": 0.2,
             "p99_ms": 0.3},
        ],
        "churn": {
            "deltas_submitted": 100, "admitted": 100, "burst_generations": 4,
            "batched_deltas": 100, "index_points_initial": 64,
            "index_points_peak": 164, "decay_sweeps": 2, "points_evicted": 30,
            "rows": [
                {"phase": "warm", "generation_swaps": 0, "index_points": 64,
                 "points_evicted": 0},
                {"phase": "burst", "generation_swaps": 4, "index_points": 164,
                 "points_evicted": 0},
                {"phase": "sweep-1", "generation_swaps": 5,
                 "index_points": 134, "points_evicted": 30},
                {"phase": "sweep-2", "generation_swaps": 6,
                 "index_points": 134, "points_evicted": 30},
            ],
        },
        "oracle": {
            "quick": False, "deltas": 8, "k": 10,
            "rows": [
                {"backend": "celfpp", "admit_to_publish_mean_ms": 100.0,
                 "admit_to_publish_max_ms": 150.0, "precompute_mean_ms": 90.0,
                 "mean_spread": 50.0, "quality_vs_celfpp": 1.0,
                 "speedup_vs_celfpp": 1.0},
                {"backend": "ris", "admit_to_publish_mean_ms": 5.0,
                 "admit_to_publish_max_ms": 8.0, "precompute_mean_ms": 4.0,
                 "mean_spread": 49.0, "quality_vs_celfpp": 0.97,
                 "speedup_vs_celfpp": 20.0},
                {"backend": "sketch", "admit_to_publish_mean_ms": 8.0,
                 "admit_to_publish_max_ms": 12.0, "precompute_mean_ms": 6.0,
                 "mean_spread": 48.5, "quality_vs_celfpp": 0.96,
                 "speedup_vs_celfpp": 12.5},
            ],
        },
        "tenants": {
            "quick": False, "quiet_tenants": 3, "isolation_ratio_max": 1.4,
            "hot": {"tenant": "hot", "budget_qps": 200.0, "attempts": 20000,
                    "admitted": 400, "shed": 19600, "shed_rate": 0.98,
                    "p99_ms": 2.0},
            "rows": [
                {"tenant": "quiet-0", "requests": 1024, "solo_p99_ms": 1.0,
                 "storm_p99_ms": 1.4, "isolation_ratio": 1.4, "shed": 0},
                {"tenant": "quiet-1", "requests": 1024, "solo_p99_ms": 1.1,
                 "storm_p99_ms": 1.3, "isolation_ratio": 1.2, "shed": 0},
                {"tenant": "quiet-2", "requests": 1024, "solo_p99_ms": 0.9,
                 "storm_p99_ms": 1.2, "isolation_ratio": 1.3, "shed": 0},
            ],
        },
        "net": {
            "io_threads": 1,
            "rows": [
                {"connections": 1, "requests": 1000, "qps": 5000.0,
                 "p50_ms": 0.2, "p95_ms": 0.4, "p99_ms": 0.6,
                 "shed_rate": 0.0},
                {"connections": 8, "requests": 8000, "qps": 20000.0,
                 "p50_ms": 0.3, "p95_ms": 0.5, "p99_ms": 0.8,
                 "shed_rate": 0.0},
            ],
            "overload": {"connections": 32, "workers": 4, "queue_high": 256,
                         "requests": 10000, "ok": 8000, "shed": 2000,
                         "shed_rate": 0.2, "qps": 9000.0, "p99_ms": 5.0},
        },
    }


def _good_quality():
    def category(name):
        return {"category": name, "num_queries": 3,
                "mean_spread_ratio": 0.97, "min_spread_ratio": 0.93,
                "mean_seed_overlap": 0.6,
                "thresholds": {"min_mean_spread_ratio": 0.9,
                               "min_query_spread_ratio": 0.8,
                               "min_mean_seed_overlap": 0.25},
                "passed": True}

    def backend(name):
        return {"backend": name, "passed": True,
                "scenario": {"deltas_admitted": 5, "points_evicted": 2,
                             "final_index_points": 23, "ok": True},
                "categories": [category(c) for c in QUALITY_CATEGORIES],
                "queries": [{"id": "near-index-point-0",
                             "category": "near-index-point",
                             "seeds": [1, 2, 3], "indexed_spread": 19.4,
                             "golden_spread": 20.0, "spread_ratio": 0.97,
                             "seed_overlap": 0.6, "epsilon_exact": False,
                             "from_cache": False}]}

    return {"schema": "inflex-quality-v1",
            "corpus": {"name": "golden_v1", "version": 1},
            "passed": True,
            "backends": [backend(b) for b in QUALITY_BACKENDS]}


def selftest():
    """Runs every checker against known-good and known-bad fixtures. A good
    fixture must validate clean; a bad one must produce a diagnostic that
    names the problem — and must NEVER escape as a raw traceback."""
    import copy
    import tempfile

    cases = []  # (label, checker, document, must_mention or None)

    cases.append(("kernels-good", check_kernels, _good_kernels(), None))
    bad = _good_kernels()
    del bad["host"]["simd"]
    cases.append(("kernels-no-simd", check_kernels, bad, "host.simd"))
    bad = _good_kernels()
    del bad["rows"][0]["simd_speedup"]
    cases.append(("kernels-row-missing-key", check_kernels, bad,
                  "simd_speedup"))

    cases.append(("serving-good", check_serving, _good_serving(), None))
    for section in ("oracle", "net", "churn", "tenants"):
        bad = _good_serving()
        del bad[section]
        cases.append((f"serving-no-{section}", check_serving, bad, section))
    # Noisy-neighbor regressions the tenants gate exists to catch: the quiet
    # tail blowing past the solo baseline, and a budget that never sheds.
    bad = _good_serving()
    bad["tenants"]["isolation_ratio_max"] = 5.0
    cases.append(("serving-tenant-isolation-broken", check_serving, bad,
                  "isolation"))
    bad = _good_serving()
    bad["tenants"]["hot"]["shed"] = 0
    cases.append(("serving-tenant-flood-unshed", check_serving, bad, "shed"))
    bad = _good_serving()
    bad["tenants"]["rows"][1]["shed"] = 7
    cases.append(("serving-quiet-tenant-shed", check_serving, bad,
                  "never shed"))
    # A --quick tenants recording must skip the isolation gate (loudly), not
    # fail it: the ratio is meaningless when the recorder couldn't actually
    # run the storm at full scale.
    ok = _good_serving()
    ok["tenants"]["quick"] = True
    ok["tenants"]["isolation_ratio_max"] = 5.0
    cases.append(("serving-tenant-quick-skips-gate", check_serving, ok, None))
    bad = _good_serving()
    del bad["host"]["simd"]
    cases.append(("serving-no-simd", check_serving, bad, "host.simd"))
    # The historical KeyError site: a sweep phase row without index_points
    # must produce a diagnostic, not a traceback.
    bad = _good_serving()
    del bad["churn"]["rows"][2]["index_points"]
    del bad["churn"]["rows"][3]["index_points"]
    cases.append(("serving-sweep-missing-key", check_serving, bad,
                  "index_points"))

    cases.append(("quality-good", check_quality, _good_quality(), None))
    bad = _good_quality()
    bad["backends"][1]["categories"][3]["mean_spread_ratio"] = 0.5
    cases.append(("quality-below-floor", check_quality, bad, "floor"))
    bad = _good_quality()
    bad["backends"][0]["categories"].pop()
    cases.append(("quality-missing-category", check_quality, bad,
                  "categories"))
    bad = _good_quality()
    bad["backends"][2]["scenario"]["ok"] = False
    cases.append(("quality-scenario-drift", check_quality, bad, "scenario"))
    bad = _good_quality()
    bad["passed"] = False
    cases.append(("quality-gate-red", check_quality, bad, "gate failed"))

    problems = []
    with tempfile.TemporaryDirectory() as tmp:
        for label, checker, doc, must_mention in cases:
            path = Path(tmp) / f"{label}.json"
            path.write_text(json.dumps(doc))
            FAILURES.clear()
            try:
                checker(path)
            except Exception as e:  # the one thing a validator must not do
                problems.append(f"{label}: checker CRASHED with "
                                f"{type(e).__name__}: {e}")
                continue
            if must_mention is None:
                if FAILURES:
                    problems.append(f"{label}: good fixture failed: {FAILURES}")
            else:
                if not any(must_mention in f for f in FAILURES):
                    problems.append(
                        f"{label}: no diagnostic mentioning "
                        f"'{must_mention}' (got: {FAILURES or 'nothing'})")

        # Baseline comparison: identical reports agree; a drifted number is
        # reported with its path.
        good = _good_quality()
        fresh_path = Path(tmp) / "fresh.json"
        base_path = Path(tmp) / "base.json"
        fresh_path.write_text(json.dumps(good))
        base_path.write_text(json.dumps(good))
        FAILURES.clear()
        check_quality_against_baseline(fresh_path, base_path)
        if FAILURES:
            problems.append(f"baseline-identical: {FAILURES}")
        drifted = copy.deepcopy(good)
        drifted["backends"][0]["queries"][0]["spread_ratio"] = 0.90
        fresh_path.write_text(json.dumps(drifted))
        FAILURES.clear()
        check_quality_against_baseline(fresh_path, base_path)
        if not any("drifted" in f for f in FAILURES):
            problems.append(f"baseline-drift: not detected ({FAILURES})")

    FAILURES.clear()
    if problems:
        print("check_bench_json SELFTEST FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"check_bench_json selftest OK ({len(cases)} fixtures + baseline "
          "comparison)")
    return 0


def main():
    argv = sys.argv[1:]
    if "--selftest" in argv:
        return selftest()
    if "--quality" in argv:
        # --quality REPORT [--baseline COMMITTED]: validate one quality
        # report, optionally against the committed regression baseline.
        i = argv.index("--quality")
        if i + 1 >= len(argv):
            print("usage: check_bench_json.py --quality REPORT.json "
                  "[--baseline BASELINE.json]")
            return 2
        report = Path(argv[i + 1])
        baseline = None
        if "--baseline" in argv:
            j = argv.index("--baseline")
            if j + 1 >= len(argv):
                print("--baseline needs a path")
                return 2
            baseline = Path(argv[j + 1])
        if not report.exists():
            FAILURES.append(f"{report}: file not found")
        else:
            try:
                if baseline is not None:
                    if not baseline.exists():
                        FAILURES.append(f"{baseline}: baseline not found")
                    else:
                        check_quality_against_baseline(report, baseline)
                else:
                    check_quality(report)
            except (json.JSONDecodeError, OSError) as e:
                FAILURES.append(f"{report}: unreadable ({e})")
            except Exception as e:  # never a raw traceback
                FAILURES.append(f"{report}: validator internal error "
                                f"({type(e).__name__}: {e}) — file this as a "
                                "check_bench_json bug")
        if FAILURES:
            print("QUALITY report validation FAILED:")
            for f in FAILURES:
                print(f"  - {f}")
            return 1
        print("QUALITY report validation OK")
        return 0

    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    checkers = [("BENCH_kernels.json", check_kernels, True),
                ("BENCH_serving.json", check_serving, True),
                # The committed quality baseline rides along when present
                # (bench-smoke scratch dirs legitimately lack it).
                ("QUALITY_report.json", check_quality, False)]
    for name, checker, required in checkers:
        path = root / name
        if not path.exists():
            if required:
                FAILURES.append(f"{name}: file not found under {root}")
            else:
                print(f"WARNING: {name} not found under {root} — "
                      "quality-report validation skipped")
            continue
        try:
            checker(path)
        except (json.JSONDecodeError, OSError) as e:
            FAILURES.append(f"{name}: unreadable ({e})")
        except Exception as e:  # a crash must read as a diagnostic, not a
            # traceback — missing newer sections (host.simd/oracle/net) used
            # to KeyError here
            FAILURES.append(f"{name}: validator internal error "
                            f"({type(e).__name__}: {e}) — file this as a "
                            "check_bench_json bug")

    if FAILURES:
        print("BENCH json validation FAILED:")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print("BENCH json validation OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
