// inflex_serve — the INFLEX serving front end, in three modes:
//
// 1. Replay (default): replays a synthetic request trace against a built
//    index through the concurrent QueryEngine (sharded QueryCache + batched
//    ThreadPool fan-out) and prints per-batch and final serving statistics.
//    With --deltas N it additionally exercises the live maintenance plane:
//    while the replay is in flight it submits N catalog deltas to an
//    IndexMaintainer attached to the engine — admitted items get their seed
//    lists recomputed on a background thread and each result is published as
//    a new index generation (RCU swap + cache-epoch bump) under the running
//    query storm, without rejecting or blocking a single request.
//
// 2. Daemon (--listen PORT): a real TCP server speaking the INFLEX wire
//    protocol (src/net/) in front of the same engine + maintainer, with a
//    bounded admission queue and load shedding. PORT 0 binds an ephemeral
//    port; the bound port is printed as "listening on HOST:PORT". SIGINT or
//    SIGTERM drains gracefully: in-flight requests are answered, the
//    maintainer is drained, and the summary lines are printed on exit.
//    With --tenants-config FILE the daemon serves MULTIPLE tenants: one
//    engine + maintainer per configured catalog behind a TenantRegistry/
//    TenantRouter, each with its own token-bucket query budget, bounded
//    delta queue, and eviction floors. Requests carrying no tenant id (all
//    v1 clients) route to the "default" tenant. Config format, one tenant
//    per line (# comments; every key optional, 0/absent = unlimited; keys:
//    rate=QPS burst=TOKENS delta_pending=N min_points=N decay_threshold=F
//    min_age=G sweep_every=N):
//      acme rate=200 burst=50 delta_pending=8 min_points=24
//
// 3. Client (--connect PORT [--host H]): a blocking wire-protocol client for
//    smoke tests and one-liners — sends --count queries for the mixture in
//    --gamma (or --ping / --delta-id) and prints the answers. --tenant NAME
//    stamps the flag-gated tenant field into every request.
//
//   inflex_serve --data data/ --index index.bin
//                [--queries N] [--unique U] [--batch B] [--threads T]
//                [--k K] [--strategy inflex|exact|approx|approx-sel|approx-ad]
//                [--cache-capacity C] [--shards S] [--quantization Q]
//                [--no-cache] [--seed S]
//                [--deltas D] [--admission-threshold T] [--delta-snapshots S]
//                [--oracle celfpp|ris|sketch]
//   inflex_serve --data data/ --index index.bin --listen PORT
//                [--io-threads N] [--workers W] [--worker-batch B]
//                [--queue-high H]
//                [--queue-low L] [--retry-after-ms R] [--deadline-ms D]
//                [--pending-high P] [--tenants-config FILE]
//                [...engine/maintainer options above]
//   inflex_serve --connect PORT [--host H] [--gamma P1,P2,...] [--count N]
//                [--k K] [--strategy ...] [--deadline-ms D]
//                [--ping] [--delta-id ID] [--timeout-ms T] [--tenant NAME]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset_io.h"
#include "data/workload.h"
#include "inflex/index_maintainer.h"
#include "inflex/query_engine.h"
#include "net/client.h"
#include "oracle/spread_oracle.h"
#include "net/server.h"
#include "tenant/tenant_registry.h"
#include "tenant/tenant_router.h"
#include "util/args.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace inflex {
namespace {

std::atomic<bool> g_shutdown{false};

void HandleShutdownSignal(int) { g_shutdown.store(true); }

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Extreme near-corner topic mixtures: maximally far (in KL) from the
/// data-driven index points, so a delta stream built from them reliably
/// exercises the admission→precompute→publish pipeline.
core::CatalogDelta MakeCornerDelta(size_t i, size_t num_topics) {
  const double mass = i % 2 == 0 ? 0.9997 : 0.999;
  std::vector<double> probs(num_topics,
                            (1.0 - mass) / static_cast<double>(num_topics - 1));
  probs[i % num_topics] = mass;
  core::CatalogDelta delta;
  delta.id = "delta-" + std::to_string(i);
  delta.item = simplex::TopicDistribution::Create(std::move(probs)).ValueOrDie();
  return delta;
}

Result<core::QueryStrategy> ParseStrategy(const std::string& name) {
  if (name == "inflex") return core::QueryStrategy::kInflex;
  if (name == "exact") return core::QueryStrategy::kExactKnn;
  if (name == "approx") return core::QueryStrategy::kApproxKnn;
  if (name == "approx-sel") return core::QueryStrategy::kApproxKnnSel;
  if (name == "approx-ad") return core::QueryStrategy::kApproxAd;
  return Status::InvalidArgument("unknown strategy: " + name);
}

/// Everything the replay and daemon modes share: dataset, index, pool,
/// engine, and (optionally) a maintainer attached to the engine. Multi-
/// tenant daemons skip the single engine/maintainer and build one per
/// tenant into `registry` instead, from the same option templates.
struct ServingStack {
  data::SyntheticDataset dataset;
  std::shared_ptr<core::InflexIndex> index;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<core::QueryEngine> engine;
  std::unique_ptr<core::IndexMaintainer> maintainer;
  /// Args-derived option templates (always filled; per-tenant construction
  /// starts from these and applies the config-file overrides).
  core::QueryEngineOptions engine_opts;
  core::IndexMaintainerOptions maintainer_opts;
  /// Multi-tenant mode only (--tenants-config). Declared in the stack so
  /// they outlive the InflexServer created later in RunDaemon.
  std::unique_ptr<tenant::TenantRegistry> registry;
  std::unique_ptr<tenant::TenantRouter> router;
};

/// One parsed --tenants-config line.
struct TenantSpec {
  std::string name;
  tenant::TenantBudget budget;
  /// Per-tenant eviction-floor / decay overrides (negative = inherit the
  /// args-derived template).
  double decay_threshold = -1.0;
  int64_t min_points = -1;
  int64_t min_age = -1;
  int64_t sweep_every = -1;
};

/// Parses the line-based tenants config (see the file header comment).
Result<std::vector<TenantSpec>> ParseTenantsConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open tenants config: " + path);
  }
  std::vector<TenantSpec> specs;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string name;
    if (!(tokens >> name) || name[0] == '#') continue;
    TenantSpec spec;
    spec.name = name;
    std::string kv;
    while (tokens >> kv) {
      const size_t eq = kv.find('=');
      const std::string where =
          path + ":" + std::to_string(line_no) + ": '" + kv + "'";
      if (eq == std::string::npos || eq == 0 || eq + 1 >= kv.size()) {
        return Status::InvalidArgument("expected key=value at " + where);
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      char* end = nullptr;
      const double num = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || num < 0.0) {
        return Status::InvalidArgument("bad numeric value at " + where);
      }
      if (key == "rate") {
        spec.budget.query_rate_per_sec = num;
      } else if (key == "burst") {
        spec.budget.query_burst = num;
      } else if (key == "delta_pending") {
        spec.budget.delta_pending_limit = static_cast<size_t>(num);
      } else if (key == "min_points") {
        spec.min_points = static_cast<int64_t>(num);
      } else if (key == "decay_threshold") {
        spec.decay_threshold = num;
      } else if (key == "min_age") {
        spec.min_age = static_cast<int64_t>(num);
      } else if (key == "sweep_every") {
        spec.sweep_every = static_cast<int64_t>(num);
      } else {
        return Status::InvalidArgument("unknown tenant option at " + where);
      }
    }
    for (const TenantSpec& s : specs) {
      if (s.name == spec.name) {
        return Status::InvalidArgument("duplicate tenant '" + spec.name +
                                       "' in " + path);
      }
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return Status::InvalidArgument("tenants config " + path +
                                   " defines no tenants");
  }
  return specs;
}

// --------------------------------------------------------------------------
// Client mode: --connect PORT
// --------------------------------------------------------------------------

int RunClient(ArgParser& args, uint16_t port) {
  const std::string host = args.GetString("host", "127.0.0.1");
  auto count = args.GetInt("count", 1);
  auto k = args.GetInt("k", 10);
  auto deadline = args.GetInt("deadline-ms", 0);
  auto timeout = args.GetDouble("timeout-ms", 10000.0);
  auto gamma = args.GetDoubleList("gamma");
  const std::string strategy_name = args.GetString("strategy", "inflex");
  const std::string delta_id = args.GetString("delta-id", "");
  const std::string tenant_id = args.GetString("tenant", "");
  const bool ping = args.HasFlag("ping");
  const bool quiet = args.HasFlag("quiet");
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  for (const auto* r : {&count, &k, &deadline}) {
    if (!r->ok()) return Fail(r->status());
  }
  if (!timeout.ok()) return Fail(timeout.status());
  auto strategy = ParseStrategy(strategy_name);
  if (!strategy.ok()) return Fail(strategy.status());

  auto client =
      net::InflexClient::Connect(host, port, timeout.ValueOrDie());
  if (!client.ok()) return Fail(client.status());
  net::InflexClient& c = client.ValueOrDie();
  c.set_tenant(tenant_id);

  if (ping) {
    auto resp = c.Ping();
    if (!resp.ok()) return Fail(resp.status());
    std::printf("ping %s | epoch %llu\n",
                net::WireStatusName(resp.ValueOrDie().status),
                static_cast<unsigned long long>(resp.ValueOrDie().epoch));
    return resp.ValueOrDie().ok() ? 0 : 1;
  }

  if (!delta_id.empty()) {
    if (!gamma.ok()) return Fail(gamma.status());
    auto resp = c.SubmitDelta(delta_id, gamma.ValueOrDie());
    if (!resp.ok()) return Fail(resp.status());
    const net::WireResponse& r = resp.ValueOrDie();
    const char* outcome =
        r.delta_outcome > 0
            ? core::DeltaOutcomeName(
                  static_cast<core::DeltaOutcome>(r.delta_outcome - 1))
            : net::WireStatusName(r.status);
    std::printf("delta %s: %s (epoch %llu)\n", delta_id.c_str(), outcome,
                static_cast<unsigned long long>(r.epoch));
    return r.ok() ? 0 : 1;
  }

  if (!gamma.ok()) return Fail(gamma.status());
  auto item = simplex::TopicDistribution::Create(gamma.ValueOrDie());
  if (!item.ok()) return Fail(item.status());
  core::QueryRequest request;
  request.item = std::move(item).ValueOrDie();
  request.k = static_cast<size_t>(std::max<int64_t>(k.ValueOrDie(), 1));
  request.options.strategy = strategy.ValueOrDie();

  size_t ok = 0, overloaded = 0, expired = 0, failed = 0;
  for (int64_t i = 0; i < count.ValueOrDie(); ++i) {
    auto resp =
        c.Query(request, static_cast<uint32_t>(deadline.ValueOrDie()));
    if (!resp.ok()) return Fail(resp.status());
    const net::WireResponse& r = resp.ValueOrDie();
    switch (r.status) {
      case net::WireStatus::kOk:
        ++ok;
        if (!quiet) {
          std::printf("seeds:");
          for (uint32_t s : r.seeds) std::printf(" %u", s);
          std::printf(" | epoch %llu%s | engine %.3f ms + queue %.3f ms\n",
                      static_cast<unsigned long long>(r.epoch),
                      r.from_cache ? " | cached" : "", r.engine_ms,
                      r.queue_ms);
        }
        break;
      case net::WireStatus::kOverloaded:
        ++overloaded;
        if (!quiet) {
          std::printf("overloaded (retry after %u ms)\n", r.retry_after_ms);
        }
        break;
      case net::WireStatus::kDeadlineExceeded:
        ++expired;
        if (!quiet) std::printf("deadline exceeded\n");
        break;
      default:
        ++failed;
        std::fprintf(stderr, "query failed: %s %s\n",
                     net::WireStatusName(r.status), r.message.c_str());
        break;
    }
  }
  std::printf("%zu ok, %zu overloaded, %zu expired, %zu failed\n", ok,
              overloaded, expired, failed);
  return failed == 0 ? 0 : 1;
}

// --------------------------------------------------------------------------
// Shared engine construction (replay + daemon)
// --------------------------------------------------------------------------

Result<std::unique_ptr<ServingStack>> BuildStack(
    ArgParser& args, const std::string& data_dir,
    const std::string& index_path, bool with_maintainer,
    bool with_engine = true) {
  auto threads = args.GetInt("threads", 0);  // 0 = hardware concurrency
  auto capacity = args.GetInt("cache-capacity", 4096);
  auto shards = args.GetInt("shards", 16);
  auto quantization = args.GetDouble("quantization", 0.01);
  auto seed = args.GetInt("seed", 7);
  auto admission = args.GetDouble("admission-threshold", 0.05);
  auto delta_snapshots = args.GetInt("delta-snapshots", 30);
  auto pending_high = args.GetInt("pending-high", 0);
  // --oracle picks the stage-2 seed-precompute backend; ris (the default,
  // quality-gate-verified against exact-CELF++ goldens — DESIGN.md §15)
  // gives the cheap admission-time precompute, --oracle celfpp reproduces
  // the historical snapshot-CELF++ path bit-for-bit. Validated up front so
  // a typo fails fast even in replay mode (which never builds a
  // maintainer).
  INFLEX_ASSIGN_OR_RETURN(
      const oracle::OracleBackend oracle_backend,
      oracle::ParseOracleBackend(args.GetString("oracle", "ris")));
  const bool no_cache = args.HasFlag("no-cache");
  for (const auto* r :
       {&threads, &capacity, &shards, &seed, &delta_snapshots, &pending_high}) {
    INFLEX_RETURN_NOT_OK(r->status());
  }
  INFLEX_RETURN_NOT_OK(quantization.status());
  INFLEX_RETURN_NOT_OK(admission.status());

  auto stack = std::make_unique<ServingStack>();
  auto ds = data::LoadDataset(data_dir);
  INFLEX_RETURN_NOT_OK(ds.status());
  stack->dataset = std::move(ds).ValueOrDie();
  auto index = core::InflexIndex::Load(index_path, &stack->dataset.graph);
  INFLEX_RETURN_NOT_OK(index.status());
  stack->index =
      std::make_shared<core::InflexIndex>(std::move(index).ValueOrDie());

  stack->pool = std::make_unique<ThreadPool>(
      static_cast<size_t>(threads.ValueOrDie()));
  core::QueryEngineOptions& eopts = stack->engine_opts;
  eopts.pool = stack->pool.get();
  eopts.enable_cache = !no_cache;
  eopts.cache.capacity = static_cast<size_t>(capacity.ValueOrDie());
  eopts.cache.num_shards = static_cast<size_t>(shards.ValueOrDie());
  eopts.cache.quantization = quantization.ValueOrDie();

  core::IndexMaintainerOptions& mopts = stack->maintainer_opts;
  mopts.admission_threshold = admission.ValueOrDie();
  mopts.oracle_snapshots = static_cast<size_t>(delta_snapshots.ValueOrDie());
  mopts.oracle.backend = oracle_backend;
  mopts.seed = static_cast<uint64_t>(seed.ValueOrDie()) + 100;
  mopts.pending_high_watermark =
      static_cast<size_t>(pending_high.ValueOrDie());

  if (!with_engine) return stack;  // multi-tenant: built per tenant instead

  stack->engine =
      std::make_unique<core::QueryEngine>(stack->index, eopts);
  if (with_maintainer) {
    core::IndexMaintainerOptions single = mopts;
    single.on_publish = [](uint64_t epoch,
                           std::shared_ptr<const core::InflexIndex> gen) {
      std::printf("  maintenance: published generation %llu "
                  "(%zu index points)\n",
                  static_cast<unsigned long long>(epoch),
                  gen->num_index_points());
      std::fflush(stdout);
    };
    stack->maintainer = std::make_unique<core::IndexMaintainer>(
        stack->index, &stack->dataset.graph, stack->engine.get(), single);
  }
  return stack;
}

/// Builds the multi-tenant registry + router from the parsed config: one
/// owned engine + maintainer per tenant, all from the args-derived templates
/// with per-tenant budget/eviction overrides. A "default" tenant is always
/// registered (unlimited unless the config names it) so v1 traffic keeps
/// working.
Status BuildTenants(ServingStack* stack, std::vector<TenantSpec> specs) {
  const bool has_default = std::any_of(
      specs.begin(), specs.end(), [](const TenantSpec& s) {
        return s.name == tenant::kDefaultTenantId;
      });
  if (!has_default) {
    TenantSpec def;
    def.name = tenant::kDefaultTenantId;
    specs.insert(specs.begin(), std::move(def));
  }
  stack->registry = std::make_unique<tenant::TenantRegistry>();
  stack->router =
      std::make_unique<tenant::TenantRouter>(stack->registry.get());
  for (const TenantSpec& spec : specs) {
    tenant::TenantOptions topts;
    topts.id = spec.name;
    topts.budget = spec.budget;
    topts.engine = stack->engine_opts;
    topts.maintainer = stack->maintainer_opts;
    if (spec.decay_threshold >= 0.0) {
      topts.maintainer.eviction_score_threshold = spec.decay_threshold;
    }
    if (spec.min_points >= 0) {
      topts.maintainer.min_index_points = static_cast<size_t>(spec.min_points);
    }
    if (spec.min_age >= 0) {
      topts.maintainer.min_point_age_generations =
          static_cast<size_t>(spec.min_age);
    }
    if (spec.sweep_every >= 0) {
      topts.maintainer.auto_sweep_every = static_cast<size_t>(spec.sweep_every);
    }
    // Sweeps key off hit scores; a tenant that tunes its eviction policy
    // gets hit accounting switched on so those knobs actually bite.
    if (spec.sweep_every > 0 || spec.min_points >= 0 ||
        spec.decay_threshold >= 0.0) {
      topts.engine.enable_hit_accounting = true;
    }
    const std::string name = spec.name;
    topts.maintainer.on_publish =
        [name](uint64_t epoch, std::shared_ptr<const core::InflexIndex> gen) {
          std::printf("  maintenance[%s]: published generation %llu "
                      "(%zu index points)\n",
                      name.c_str(), static_cast<unsigned long long>(epoch),
                      gen->num_index_points());
          std::fflush(stdout);
        };
    auto created = stack->registry->CreateTenant(topts, stack->index,
                                                 &stack->dataset.graph);
    INFLEX_RETURN_NOT_OK(created.status());
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Daemon mode: --listen PORT
// --------------------------------------------------------------------------

int RunDaemon(ArgParser& args, uint16_t port, const std::string& data_dir,
              const std::string& index_path) {
  auto io_threads = args.GetInt("io-threads", 1);
  auto workers = args.GetInt("workers", 4);
  auto worker_batch = args.GetInt("worker-batch", 8);
  auto queue_high = args.GetInt("queue-high", 1024);
  auto queue_low = args.GetInt("queue-low", 0);
  auto retry_after = args.GetInt("retry-after-ms", 50);
  auto deadline = args.GetInt("deadline-ms", 0);
  const std::string tenants_config = args.GetString("tenants-config", "");
  for (const auto* r : {&io_threads, &workers, &worker_batch, &queue_high,
                        &queue_low, &retry_after, &deadline}) {
    if (!r->ok()) return Fail(r->status());
  }
  const bool multi_tenant = !tenants_config.empty();

  auto stack = BuildStack(args, data_dir, index_path, /*with_maintainer=*/true,
                          /*with_engine=*/!multi_tenant);
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (!stack.ok()) return Fail(stack.status());
  ServingStack& s = *stack.ValueOrDie();

  if (multi_tenant) {
    auto specs = ParseTenantsConfig(tenants_config);
    if (!specs.ok()) return Fail(specs.status());
    if (auto st = BuildTenants(&s, std::move(specs).ValueOrDie()); !st.ok()) {
      return Fail(st);
    }
  }

  net::InflexServerOptions sopts;
  sopts.port = port;
  sopts.io_threads = static_cast<size_t>(io_threads.ValueOrDie());
  sopts.num_workers = static_cast<size_t>(workers.ValueOrDie());
  sopts.max_worker_batch = static_cast<size_t>(worker_batch.ValueOrDie());
  sopts.queue_high_watermark = static_cast<size_t>(queue_high.ValueOrDie());
  sopts.queue_low_watermark = static_cast<size_t>(queue_low.ValueOrDie());
  sopts.retry_after_ms = static_cast<uint32_t>(retry_after.ValueOrDie());
  sopts.default_deadline_ms = static_cast<uint32_t>(deadline.ValueOrDie());
  core::QueryEngine* front_engine = s.engine.get();
  if (multi_tenant) {
    sopts.router = s.router.get();
    // Global queue-depth mirroring lands on the default tenant's engine.
    front_engine =
        s.registry->Resolve(tenant::kDefaultTenantId)->engine();
  } else {
    sopts.maintainer = s.maintainer.get();
  }
  net::InflexServer server(front_engine, sopts);
  if (auto st = server.Start(); !st.ok()) return Fail(st);

  std::printf("listening on %s:%u (%zu io loops, %zu workers, queue high %zu",
              sopts.bind_address.c_str(), server.port(), sopts.io_threads,
              sopts.num_workers, sopts.queue_high_watermark);
  if (multi_tenant) {
    std::printf(", %zu tenants", s.registry->size());
  }
  std::printf(")\n");
  std::fflush(stdout);

  struct sigaction sa {};
  sa.sa_handler = HandleShutdownSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("shutting down: draining in-flight requests\n");
  server.Stop();
  std::printf("net serving summary: %s\n", server.stats().ToString().c_str());
  if (multi_tenant) {
    for (const auto& t : s.registry->List()) {
      std::printf("%s\n", t->Snapshot().ToString().c_str());
    }
  } else {
    std::printf("engine summary: %s\n",
                s.engine->cumulative_stats().ToString().c_str());
    if (s.maintainer != nullptr) {
      std::printf("maintenance summary: %s\n",
                  s.maintainer->stats().ToString().c_str());
    }
  }
  std::printf("drained cleanly\n");
  return 0;
}

// --------------------------------------------------------------------------
// Replay mode (default)
// --------------------------------------------------------------------------

int RunReplay(ArgParser& args, const std::string& data_dir,
              const std::string& index_path) {
  auto queries = args.GetInt("queries", 4096);
  auto unique = args.GetInt("unique", 128);
  auto batch = args.GetInt("batch", 512);
  auto k = args.GetInt("k", 10);
  auto seed = args.GetInt("seed", 7);
  auto deltas = args.GetInt("deltas", 0);
  const std::string strategy_name = args.GetString("strategy", "inflex");
  for (const auto* r : {&queries, &unique, &batch, &k, &seed, &deltas}) {
    if (!r->ok()) return Fail(r->status());
  }
  auto strategy = ParseStrategy(strategy_name);
  if (!strategy.ok()) return Fail(strategy.status());
  const size_t num_deltas = static_cast<size_t>(deltas.ValueOrDie());

  auto stack = BuildStack(args, data_dir, index_path,
                          /*with_maintainer=*/num_deltas > 0);
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (!stack.ok()) return Fail(stack.status());
  ServingStack& s = *stack.ValueOrDie();

  // Build the request trace: `unique` distinct mixtures drawn like real
  // queries (half data-driven, half uniform), replayed with repetition up to
  // `queries` requests — the repetition profile is what the cache collapses.
  data::QueryWorkloadOptions wopts;
  wopts.num_data_driven = static_cast<size_t>(unique.ValueOrDie()) / 2;
  wopts.num_uniform =
      static_cast<size_t>(unique.ValueOrDie()) - wopts.num_data_driven;
  wopts.seed = static_cast<uint64_t>(seed.ValueOrDie());
  auto workload = data::GenerateQueryWorkload(s.dataset.catalog, wopts);
  if (!workload.ok()) return Fail(workload.status());
  const auto& mixtures = workload.ValueOrDie().queries;
  Rng rng(static_cast<uint64_t>(seed.ValueOrDie()) + 1);
  std::vector<core::QueryRequest> trace;
  trace.reserve(static_cast<size_t>(queries.ValueOrDie()));
  for (size_t i = 0; i < static_cast<size_t>(queries.ValueOrDie()); ++i) {
    core::QueryRequest r;
    r.item = mixtures[i < mixtures.size() ? i : rng.UniformInt(mixtures.size())];
    r.k = static_cast<size_t>(k.ValueOrDie());
    r.options.strategy = strategy.ValueOrDie();
    trace.push_back(std::move(r));
  }

  std::printf("serving %zu requests (%zu unique mixtures, k=%lld, %s) in "
              "batches of %lld across %zu threads\n",
              trace.size(), mixtures.size(),
              static_cast<long long>(k.ValueOrDie()), strategy_name.c_str(),
              static_cast<long long>(batch.ValueOrDie()),
              s.pool->num_threads());

  Timer total;
  const size_t batch_size = static_cast<size_t>(batch.ValueOrDie());
  size_t batch_no = 0;
  size_t deltas_sent = 0;
  for (size_t start = 0; start < trace.size(); start += batch_size) {
    // Interleave catalog deltas with the replay so generation swaps land
    // while requests are in flight. SubmitDelta never blocks on the
    // precompute — admission is a microsecond tree probe.
    if (s.maintainer != nullptr && deltas_sent < num_deltas) {
      const auto delta =
          MakeCornerDelta(deltas_sent++, s.index->num_topics());
      auto receipt = s.maintainer->SubmitDelta(delta);
      if (!receipt.ok()) return Fail(receipt.status());
      std::printf("  delta %s: %s (min divergence %.4f)\n", delta.id.c_str(),
                  core::DeltaOutcomeName(receipt.ValueOrDie().outcome),
                  receipt.ValueOrDie().min_divergence);
    }
    const size_t stop = std::min(trace.size(), start + batch_size);
    std::span<const core::QueryRequest> slice(trace.data() + start,
                                              stop - start);
    core::ServingStats stats;
    s.engine->QueryBatch(slice, &stats);
    std::printf("  batch %zu: %s\n", ++batch_no, stats.ToString().c_str());
  }
  // More deltas than batches: flush the rest of the stream.
  for (; s.maintainer != nullptr && deltas_sent < num_deltas; ++deltas_sent) {
    const auto delta = MakeCornerDelta(deltas_sent, s.index->num_topics());
    auto receipt = s.maintainer->SubmitDelta(delta);
    if (!receipt.ok()) return Fail(receipt.status());
    std::printf("  delta %s: %s (min divergence %.4f)\n", delta.id.c_str(),
                core::DeltaOutcomeName(receipt.ValueOrDie().outcome),
                receipt.ValueOrDie().min_divergence);
  }
  const double wall_s = total.ElapsedSeconds();

  const auto stats = s.engine->cumulative_stats();
  std::printf("served %zu requests in %.2f s -> %.0f QPS overall | "
              "hit rate %.1f%% | %zu failed | cache holds %zu entries\n",
              stats.num_requests, wall_s,
              static_cast<double>(stats.num_requests) / wall_s,
              100.0 * stats.hit_rate(), stats.num_failed,
              s.engine->cache().size());

  if (s.maintainer != nullptr) {
    s.maintainer->Drain();
    const auto mstats = s.maintainer->stats();
    std::printf("maintenance summary: %s | engine epoch %llu\n",
                mstats.ToString().c_str(),
                static_cast<unsigned long long>(s.engine->index_epoch()));
    if (mstats.admitted == 0 || mstats.failed != 0) {
      std::fprintf(stderr,
                   "error: delta demo expected >=1 admission and no "
                   "failures\n");
      return 1;
    }
  }
  return stats.num_failed == 0 ? 0 : 1;
}

int Run(ArgParser& args) {
  auto connect = args.GetInt("connect", -1);
  auto listen = args.GetInt("listen", -1);
  for (const auto* r : {&connect, &listen}) {
    if (!r->ok()) return Fail(r->status());
  }
  if (connect.ValueOrDie() >= 0) {
    return RunClient(args, static_cast<uint16_t>(connect.ValueOrDie()));
  }

  const std::string data_dir = args.GetString("data", "");
  const std::string index_path = args.GetString("index", "");
  if (data_dir.empty() || index_path.empty()) {
    return Fail(Status::InvalidArgument("--data and --index are required"));
  }
  if (listen.ValueOrDie() >= 0) {
    return RunDaemon(args, static_cast<uint16_t>(listen.ValueOrDie()),
                     data_dir, index_path);
  }
  return RunReplay(args, data_dir, index_path);
}

}  // namespace
}  // namespace inflex

int main(int argc, char** argv) {
  using namespace inflex;  // NOLINT
  ArgParser args(argc, argv);  // the parser skips argv[0] itself
  return Run(args);
}
