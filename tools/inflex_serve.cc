// inflex_serve — serving-layer demo: replays a synthetic request trace
// against a built index through the concurrent QueryEngine (sharded
// QueryCache + batched ThreadPool fan-out) and prints per-batch and final
// serving statistics. This is what a production front-end in front of the
// INFLEX index looks like: accept a batch of TIM requests, fan them across
// workers, answer repeats from the cache.
//
// With --deltas N the demo additionally exercises the live maintenance
// plane: while the replay is in flight it submits N catalog deltas to an
// IndexMaintainer attached to the engine — admitted items get their seed
// lists recomputed on a background thread and each result is published as a
// new index generation (RCU swap + cache-epoch bump) under the running
// query storm, without rejecting or blocking a single request.
//
//   inflex_serve --data data/ --index index.bin
//                [--queries N] [--unique U] [--batch B] [--threads T]
//                [--k K] [--strategy inflex|exact|approx|approx-sel|approx-ad]
//                [--cache-capacity C] [--shards S] [--quantization Q]
//                [--no-cache] [--seed S]
//                [--deltas D] [--admission-threshold T] [--delta-snapshots S]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset_io.h"
#include "data/workload.h"
#include "inflex/index_maintainer.h"
#include "inflex/query_engine.h"
#include "util/args.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace inflex {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Extreme near-corner topic mixtures: maximally far (in KL) from the
/// data-driven index points, so a delta stream built from them reliably
/// exercises the admission→precompute→publish pipeline.
core::CatalogDelta MakeCornerDelta(size_t i, size_t num_topics) {
  const double mass = i % 2 == 0 ? 0.9997 : 0.999;
  std::vector<double> probs(num_topics,
                            (1.0 - mass) / static_cast<double>(num_topics - 1));
  probs[i % num_topics] = mass;
  core::CatalogDelta delta;
  delta.id = "delta-" + std::to_string(i);
  delta.item = simplex::TopicDistribution::Create(std::move(probs)).ValueOrDie();
  return delta;
}

Result<core::QueryStrategy> ParseStrategy(const std::string& name) {
  if (name == "inflex") return core::QueryStrategy::kInflex;
  if (name == "exact") return core::QueryStrategy::kExactKnn;
  if (name == "approx") return core::QueryStrategy::kApproxKnn;
  if (name == "approx-sel") return core::QueryStrategy::kApproxKnnSel;
  if (name == "approx-ad") return core::QueryStrategy::kApproxAd;
  return Status::InvalidArgument("unknown strategy: " + name);
}

int Run(ArgParser& args) {
  const std::string data_dir = args.GetString("data", "");
  const std::string index_path = args.GetString("index", "");
  auto queries = args.GetInt("queries", 4096);
  auto unique = args.GetInt("unique", 128);
  auto batch = args.GetInt("batch", 512);
  auto threads = args.GetInt("threads", 0);  // 0 = hardware concurrency
  auto k = args.GetInt("k", 10);
  auto capacity = args.GetInt("cache-capacity", 4096);
  auto shards = args.GetInt("shards", 16);
  auto quantization = args.GetDouble("quantization", 0.01);
  auto seed = args.GetInt("seed", 7);
  auto deltas = args.GetInt("deltas", 0);
  auto admission = args.GetDouble("admission-threshold", 0.05);
  auto delta_snapshots = args.GetInt("delta-snapshots", 30);
  const std::string strategy_name = args.GetString("strategy", "inflex");
  const bool no_cache = args.HasFlag("no-cache");
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (data_dir.empty() || index_path.empty()) {
    return Fail(Status::InvalidArgument("--data and --index are required"));
  }
  for (const auto* r : {&queries, &unique, &batch, &threads, &k, &capacity,
                        &shards, &seed, &deltas, &delta_snapshots}) {
    if (!r->ok()) return Fail(r->status());
  }
  if (!quantization.ok()) return Fail(quantization.status());
  if (!admission.ok()) return Fail(admission.status());
  auto strategy = ParseStrategy(strategy_name);
  if (!strategy.ok()) return Fail(strategy.status());

  auto ds = data::LoadDataset(data_dir);
  if (!ds.ok()) return Fail(ds.status());
  auto index = core::InflexIndex::Load(index_path, &ds.ValueOrDie().graph);
  if (!index.ok()) return Fail(index.status());

  // Build the request trace: `unique` distinct mixtures drawn like real
  // queries (half data-driven, half uniform), replayed with repetition up to
  // `queries` requests — the repetition profile is what the cache collapses.
  data::QueryWorkloadOptions wopts;
  wopts.num_data_driven = static_cast<size_t>(unique.ValueOrDie()) / 2;
  wopts.num_uniform =
      static_cast<size_t>(unique.ValueOrDie()) - wopts.num_data_driven;
  wopts.seed = static_cast<uint64_t>(seed.ValueOrDie());
  auto workload =
      data::GenerateQueryWorkload(ds.ValueOrDie().catalog, wopts);
  if (!workload.ok()) return Fail(workload.status());
  const auto& mixtures = workload.ValueOrDie().queries;
  Rng rng(static_cast<uint64_t>(seed.ValueOrDie()) + 1);
  std::vector<core::QueryRequest> trace;
  trace.reserve(static_cast<size_t>(queries.ValueOrDie()));
  for (size_t i = 0; i < static_cast<size_t>(queries.ValueOrDie()); ++i) {
    core::QueryRequest r;
    r.item = mixtures[i < mixtures.size() ? i : rng.UniformInt(mixtures.size())];
    r.k = static_cast<size_t>(k.ValueOrDie());
    r.options.strategy = strategy.ValueOrDie();
    trace.push_back(std::move(r));
  }

  ThreadPool pool(static_cast<size_t>(threads.ValueOrDie()));
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  eopts.enable_cache = !no_cache;
  eopts.cache.capacity = static_cast<size_t>(capacity.ValueOrDie());
  eopts.cache.num_shards = static_cast<size_t>(shards.ValueOrDie());
  eopts.cache.quantization = quantization.ValueOrDie();
  auto shared_index =
      std::make_shared<core::InflexIndex>(std::move(index).ValueOrDie());
  core::QueryEngine engine(shared_index, eopts);

  // Optional live maintenance under the replay: an IndexMaintainer attached
  // to the engine, fed one extreme-corner delta per batch.
  const size_t num_deltas = static_cast<size_t>(deltas.ValueOrDie());
  std::unique_ptr<core::IndexMaintainer> maintainer;
  if (num_deltas > 0) {
    core::IndexMaintainerOptions mopts;
    mopts.admission_threshold = admission.ValueOrDie();
    mopts.oracle_snapshots =
        static_cast<size_t>(delta_snapshots.ValueOrDie());
    mopts.seed = static_cast<uint64_t>(seed.ValueOrDie()) + 100;
    mopts.on_publish = [](uint64_t epoch,
                          std::shared_ptr<const core::InflexIndex> gen) {
      std::printf("  maintenance: published generation %llu "
                  "(%zu index points)\n",
                  static_cast<unsigned long long>(epoch),
                  gen->num_index_points());
    };
    maintainer = std::make_unique<core::IndexMaintainer>(
        shared_index, &ds.ValueOrDie().graph, &engine, mopts);
  }

  std::printf("serving %zu requests (%zu unique mixtures, k=%lld, %s) in "
              "batches of %lld across %zu threads, cache %s (capacity %lld, "
              "%lld shards)\n",
              trace.size(), mixtures.size(),
              static_cast<long long>(k.ValueOrDie()), strategy_name.c_str(),
              static_cast<long long>(batch.ValueOrDie()), pool.num_threads(),
              no_cache ? "OFF" : "ON",
              static_cast<long long>(capacity.ValueOrDie()),
              static_cast<long long>(shards.ValueOrDie()));

  Timer total;
  const size_t batch_size = static_cast<size_t>(batch.ValueOrDie());
  size_t batch_no = 0;
  size_t deltas_sent = 0;
  for (size_t start = 0; start < trace.size(); start += batch_size) {
    // Interleave catalog deltas with the replay so generation swaps land
    // while requests are in flight. SubmitDelta never blocks on the
    // precompute — admission is a microsecond tree probe.
    if (maintainer != nullptr && deltas_sent < num_deltas) {
      const auto delta =
          MakeCornerDelta(deltas_sent++, shared_index->num_topics());
      auto receipt = maintainer->SubmitDelta(delta);
      if (!receipt.ok()) return Fail(receipt.status());
      std::printf("  delta %s: %s (min divergence %.4f)\n", delta.id.c_str(),
                  core::DeltaOutcomeName(receipt.ValueOrDie().outcome),
                  receipt.ValueOrDie().min_divergence);
    }
    const size_t stop = std::min(trace.size(), start + batch_size);
    std::span<const core::QueryRequest> slice(trace.data() + start,
                                              stop - start);
    core::ServingStats stats;
    engine.QueryBatch(slice, &stats);
    std::printf("  batch %zu: %s\n", ++batch_no, stats.ToString().c_str());
  }
  // More deltas than batches: flush the rest of the stream.
  for (; maintainer != nullptr && deltas_sent < num_deltas; ++deltas_sent) {
    const auto delta =
        MakeCornerDelta(deltas_sent, shared_index->num_topics());
    auto receipt = maintainer->SubmitDelta(delta);
    if (!receipt.ok()) return Fail(receipt.status());
    std::printf("  delta %s: %s (min divergence %.4f)\n", delta.id.c_str(),
                core::DeltaOutcomeName(receipt.ValueOrDie().outcome),
                receipt.ValueOrDie().min_divergence);
  }
  const double wall_s = total.ElapsedSeconds();

  const auto stats = engine.cumulative_stats();
  std::printf("served %zu requests in %.2f s -> %.0f QPS overall | "
              "hit rate %.1f%% | %zu failed | cache holds %zu entries\n",
              stats.num_requests, wall_s,
              static_cast<double>(stats.num_requests) / wall_s,
              100.0 * stats.hit_rate(), stats.num_failed,
              engine.cache().size());

  if (maintainer != nullptr) {
    maintainer->Drain();
    const auto mstats = maintainer->stats();
    std::printf("maintenance summary: %s | engine epoch %llu\n",
                mstats.ToString().c_str(),
                static_cast<unsigned long long>(engine.index_epoch()));
    if (mstats.admitted == 0 || mstats.failed != 0) {
      std::fprintf(stderr,
                   "error: delta demo expected >=1 admission and no "
                   "failures\n");
      return 1;
    }
  }
  return stats.num_failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace inflex

int main(int argc, char** argv) {
  using namespace inflex;  // NOLINT
  ArgParser args(argc, argv);  // the parser skips argv[0] itself
  return Run(args);
}
