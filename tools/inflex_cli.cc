// inflex_cli — the command-line face of the library. Drives the full
// pipeline of the paper (Figure 1 + Figure 2) from a shell:
//
//   inflex_cli generate    --out data/            # synthetic dataset
//   inflex_cli learn       --data data/ --out learned/   # TIC EM from the log
//   inflex_cli suggest-h   --data data/                  # auto index sizing
//   inflex_cli build-index --data data/ --out index.bin --h 128 --ell 50
//   inflex_cli query       --data data/ --index index.bin
//                          --mix 0.6,0.2,0.1,0.05,0.05 --k 10
//   inflex_cli evaluate    --data data/ --index index.bin --queries 20
//   inflex_cli info        --data data/ [--index index.bin]
#include <cstdio>
#include <string>

#include "data/dataset_io.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "inflex/baselines.h"
#include "inflex/index_points.h"
#include "inflex/inflex_index.h"
#include "rank/kendall_tau.h"
#include "stats/descriptive.h"
#include "tic/tic_learner.h"
#include "tic/tic_model.h"
#include "util/args.h"
#include "util/timer.h"

/// Like INFLEX_ASSIGN_OR_RETURN but converts the error into a CLI exit code.
#define INFLEX_ASSIGN_OR_RETURN_CLI(lhs, expr)                            \
  INFLEX_ASSIGN_OR_RETURN_CLI_IMPL(INFLEX_CONCAT(_cli_result_, __LINE__), \
                                   lhs, expr)
#define INFLEX_ASSIGN_OR_RETURN_CLI_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                                     \
  if (!result_name.ok()) return Fail(result_name.status());      \
  lhs = std::move(result_name).ValueOrDie()

namespace inflex {
namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: inflex_cli <command> [options]\n"
      "commands:\n"
      "  generate     --out DIR [--users N] [--topics Z] [--items M]\n"
      "               [--degree D] [--seed S]\n"
      "  learn        --data DIR --out DIR [--topics Z] [--iters N]\n"
      "  suggest-h    --data DIR [--target KL] [--quantile Q]\n"
      "  build-index  --data DIR --out FILE [--h H] [--ell L]\n"
      "               [--snapshots W] [--auto-size]\n"
      "  query        --data DIR --index FILE --mix p1,p2,... [--k K]\n"
      "               [--strategy inflex|exact|approx|approx-sel|approx-ad]\n"
      "  add-item     --data DIR --index FILE --mix p1,p2,... [--ell L]\n"
      "               (runs offline CELF++ for the new item, indexes it "
      "online,\n                rewrites FILE)\n"
      "  evaluate     --data DIR --index FILE [--queries N] [--k K]\n"
      "  info         --data DIR [--index FILE]\n");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerate(ArgParser& args) {
  const std::string out = args.GetString("out", "");
  data::SyntheticDatasetOptions opts;
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t users, args.GetInt("users", 2000));
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t topics, args.GetInt("topics", 8));
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t items, args.GetInt("items", 2000));
  INFLEX_ASSIGN_OR_RETURN_CLI(double degree, args.GetDouble("degree", 10.0));
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t seed, args.GetInt("seed", 1));
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));
  opts.num_users = static_cast<size_t>(users);
  opts.num_topics = static_cast<size_t>(topics);
  opts.num_items = static_cast<size_t>(items);
  opts.avg_degree = degree;
  opts.seed = static_cast<uint64_t>(seed);

  Timer t;
  auto ds = data::GenerateSyntheticDataset(opts);
  if (!ds.ok()) return Fail(ds.status());
  if (auto st = data::SaveDataset(ds.ValueOrDie(), out); !st.ok()) {
    return Fail(st);
  }
  std::printf("generated %zu users / %zu arcs / Z=%zu / %zu items with a "
              "propagation log of %zu records in %.1f s -> %s\n",
              ds.ValueOrDie().graph.num_nodes(),
              ds.ValueOrDie().graph.num_arcs(),
              ds.ValueOrDie().graph.num_topics(),
              ds.ValueOrDie().catalog.size(), ds.ValueOrDie().log.size(),
              t.ElapsedSeconds(), out.c_str());
  return 0;
}

int CmdLearn(ArgParser& args) {
  const std::string data_dir = args.GetString("data", "");
  const std::string out = args.GetString("out", "");
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t topics, args.GetInt("topics", 0));
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t iters, args.GetInt("iters", 25));
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (data_dir.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("--data and --out are required"));
  }
  auto ds = data::LoadDataset(data_dir);
  if (!ds.ok()) return Fail(ds.status());

  tic::TicLearnerOptions lopts;
  lopts.num_topics = topics > 0 ? static_cast<size_t>(topics)
                                : ds.ValueOrDie().graph.num_topics();
  lopts.max_iterations = static_cast<int>(iters);
  Timer t;
  auto learned = tic::LearnTicParameters(ds.ValueOrDie().graph,
                                         ds.ValueOrDie().log, lopts);
  if (!learned.ok()) return Fail(learned.status());
  std::printf("EM converged after %d sweeps in %.1f s (final expected "
              "log-likelihood %.1f)\n",
              learned.ValueOrDie().iterations, t.ElapsedSeconds(),
              learned.ValueOrDie().log_likelihood.back());

  // Persist the learned model as a dataset: graph with learned parameters,
  // learned item-topic catalog, the original log and communities.
  data::SyntheticDataset out_ds;
  out_ds.graph = ds.ValueOrDie().graph;
  if (auto st = out_ds.graph.SetArcTopicProbabilities(
          learned.ValueOrDie().arc_topic_probs);
      !st.ok()) {
    return Fail(st);
  }
  out_ds.catalog = learned.ValueOrDie().item_topics;
  out_ds.log = std::move(ds.ValueOrDie().log);
  out_ds.user_community = ds.ValueOrDie().user_community;
  if (auto st = data::SaveDataset(out_ds, out); !st.ok()) return Fail(st);
  std::printf("learned model written to %s\n", out.c_str());
  return 0;
}

int CmdSuggestH(ArgParser& args) {
  const std::string data_dir = args.GetString("data", "");
  INFLEX_ASSIGN_OR_RETURN_CLI(double target, args.GetDouble("target", 0.25));
  INFLEX_ASSIGN_OR_RETURN_CLI(double quantile,
                              args.GetDouble("quantile", 0.9));
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (data_dir.empty()) {
    return Fail(Status::InvalidArgument("--data is required"));
  }
  auto ds = data::LoadDataset(data_dir);
  if (!ds.ok()) return Fail(ds.status());
  core::IndexSizeCriterion criterion;
  criterion.target_divergence = target;
  criterion.quantile = quantile;
  auto h = core::SuggestIndexPointCount(ds.ValueOrDie().catalog, criterion);
  if (!h.ok()) return Fail(h.status());
  std::printf("suggested h = %zu (so that %.0f%% of catalog-like queries "
              "have an index point within KL %.3f)\n",
              h.ValueOrDie(), 100.0 * quantile, target);
  return 0;
}

int CmdBuildIndex(ArgParser& args) {
  const std::string data_dir = args.GetString("data", "");
  const std::string out = args.GetString("out", "");
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t h, args.GetInt("h", 128));
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t ell, args.GetInt("ell", 50));
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t snapshots,
                              args.GetInt("snapshots", 100));
  const bool auto_size = args.HasFlag("auto-size");
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (data_dir.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("--data and --out are required"));
  }
  auto ds = data::LoadDataset(data_dir);
  if (!ds.ok()) return Fail(ds.status());

  core::InflexBuildOptions bopts;
  bopts.index_points.num_index_points = static_cast<size_t>(h);
  if (auto_size) {
    auto suggested = core::SuggestIndexPointCount(ds.ValueOrDie().catalog);
    if (!suggested.ok()) return Fail(suggested.status());
    bopts.index_points.num_index_points = suggested.ValueOrDie();
    std::printf("auto-size: h = %zu\n", suggested.ValueOrDie());
  }
  bopts.index_points.num_dirichlet_samples =
      std::max<size_t>(20000, 50 * bopts.index_points.num_index_points);
  bopts.seed_list_length = static_cast<size_t>(ell);
  bopts.oracle_snapshots = static_cast<size_t>(snapshots);

  Timer t;
  auto index = core::InflexIndex::Build(ds.ValueOrDie().graph,
                                        ds.ValueOrDie().catalog, bopts);
  if (!index.ok()) return Fail(index.status());
  if (auto st = index.ValueOrDie().Save(out); !st.ok()) return Fail(st);
  std::printf("built index (h=%zu, l=%zu) in %.1f s -> %s\n",
              index.ValueOrDie().num_index_points(),
              index.ValueOrDie().seed_list_length(), t.ElapsedSeconds(),
              out.c_str());
  return 0;
}

Result<core::QueryStrategy> ParseStrategy(const std::string& name) {
  if (name == "inflex") return core::QueryStrategy::kInflex;
  if (name == "exact") return core::QueryStrategy::kExactKnn;
  if (name == "approx") return core::QueryStrategy::kApproxKnn;
  if (name == "approx-sel") return core::QueryStrategy::kApproxKnnSel;
  if (name == "approx-ad") return core::QueryStrategy::kApproxAd;
  return Status::InvalidArgument("unknown strategy: " + name);
}

int CmdQuery(ArgParser& args) {
  const std::string data_dir = args.GetString("data", "");
  const std::string index_path = args.GetString("index", "");
  auto mix = args.GetDoubleList("mix");
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t k, args.GetInt("k", 10));
  const std::string strategy_name = args.GetString("strategy", "inflex");
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (data_dir.empty() || index_path.empty()) {
    return Fail(Status::InvalidArgument("--data and --index are required"));
  }
  if (!mix.ok()) return Fail(mix.status());

  auto ds = data::LoadDataset(data_dir);
  if (!ds.ok()) return Fail(ds.status());
  auto index = core::InflexIndex::Load(index_path, &ds.ValueOrDie().graph);
  if (!index.ok()) return Fail(index.status());

  auto item = simplex::TopicDistribution::FromUnnormalized(
      std::move(mix).ValueOrDie());
  if (!item.ok()) return Fail(item.status());
  auto strategy = ParseStrategy(strategy_name);
  if (!strategy.ok()) return Fail(strategy.status());

  core::QueryOptions qopts;
  qopts.strategy = strategy.ValueOrDie();
  auto r = index.ValueOrDie().Query(item.ValueOrDie(),
                                    static_cast<size_t>(k), qopts);
  if (!r.ok()) return Fail(r.status());
  const auto& result = r.ValueOrDie();
  std::printf("query %s (%s)\n", item.ValueOrDie().ToString().c_str(),
              strategy_name.c_str());
  std::printf("answered in %.2f ms (%zu lists aggregated%s)\nseeds:",
              result.total_ms, result.neighbors_used.size(),
              result.epsilon_exact ? ", epsilon-exact" : "");
  for (rank::Item v : result.seeds) std::printf(" %u", v);
  std::printf("\n");

  tic::TicModel model(&ds.ValueOrDie().graph);
  std::vector<graph::NodeId> seeds(result.seeds.begin(), result.seeds.end());
  im::MonteCarloOptions mc;
  mc.num_simulations = 3000;
  auto spread = model.EstimateSpread(item.ValueOrDie(), seeds, mc);
  if (spread.ok()) {
    std::printf("expected spread: %.1f (+/- %.1f)\n",
                spread.ValueOrDie().mean, spread.ValueOrDie().std_error);
  }
  return 0;
}

int CmdAddItem(ArgParser& args) {
  const std::string data_dir = args.GetString("data", "");
  const std::string index_path = args.GetString("index", "");
  auto mix = args.GetDoubleList("mix");
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t ell, args.GetInt("ell", 0));
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (data_dir.empty() || index_path.empty()) {
    return Fail(Status::InvalidArgument("--data and --index are required"));
  }
  if (!mix.ok()) return Fail(mix.status());
  auto ds = data::LoadDataset(data_dir);
  if (!ds.ok()) return Fail(ds.status());
  auto index = core::InflexIndex::Load(index_path, &ds.ValueOrDie().graph);
  if (!index.ok()) return Fail(index.status());
  auto item = simplex::TopicDistribution::FromUnnormalized(
      std::move(mix).ValueOrDie());
  if (!item.ok()) return Fail(item.status());

  const size_t list_len = ell > 0 ? static_cast<size_t>(ell)
                                  : index.ValueOrDie().seed_list_length();
  Timer t;
  core::OfflineImOptions oopts;
  auto seeds = core::OfflineTicSeeds(ds.ValueOrDie().graph,
                                     item.ValueOrDie(), list_len, oopts);
  if (!seeds.ok()) return Fail(seeds.status());
  rank::RankedList list(seeds.ValueOrDie().seeds.begin(),
                        seeds.ValueOrDie().seeds.end());
  if (auto st = index.ValueOrDie().AddIndexPoint(item.ValueOrDie(),
                                                 std::move(list));
      !st.ok()) {
    return Fail(st);
  }
  if (auto st = index.ValueOrDie().Compact(); !st.ok()) return Fail(st);
  if (auto st = index.ValueOrDie().Save(index_path); !st.ok()) {
    return Fail(st);
  }
  std::printf("indexed new item %s in %.1f s (CELF++ l=%zu); index now has "
              "%zu points -> %s\n",
              item.ValueOrDie().ToString().c_str(), t.ElapsedSeconds(),
              list_len, index.ValueOrDie().num_index_points(),
              index_path.c_str());
  return 0;
}

int CmdEvaluate(ArgParser& args) {
  const std::string data_dir = args.GetString("data", "");
  const std::string index_path = args.GetString("index", "");
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t queries, args.GetInt("queries", 20));
  INFLEX_ASSIGN_OR_RETURN_CLI(int64_t k, args.GetInt("k", 20));
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (data_dir.empty() || index_path.empty()) {
    return Fail(Status::InvalidArgument("--data and --index are required"));
  }
  auto ds = data::LoadDataset(data_dir);
  if (!ds.ok()) return Fail(ds.status());
  auto index = core::InflexIndex::Load(index_path, &ds.ValueOrDie().graph);
  if (!index.ok()) return Fail(index.status());

  data::QueryWorkloadOptions wopts;
  wopts.num_data_driven = static_cast<size_t>(queries) / 2;
  wopts.num_uniform = static_cast<size_t>(queries) - wopts.num_data_driven;
  auto workload = data::GenerateQueryWorkload(ds.ValueOrDie().catalog, wopts);
  if (!workload.ok()) return Fail(workload.status());

  core::OfflineImOptions oopts;
  std::vector<double> kendall, ms;
  for (const auto& q : workload.ValueOrDie().queries) {
    auto truth = core::OfflineTicSeeds(ds.ValueOrDie().graph, q,
                                       static_cast<size_t>(k), oopts);
    if (!truth.ok()) return Fail(truth.status());
    Timer t;
    auto answer = index.ValueOrDie().Query(q, static_cast<size_t>(k));
    if (!answer.ok()) return Fail(answer.status());
    ms.push_back(t.ElapsedMillis());
    rank::RankedList truth_list(truth.ValueOrDie().seeds.begin(),
                                truth.ValueOrDie().seeds.end());
    rank::RankedList got = answer.ValueOrDie().seeds;
    const size_t ell = std::min(truth_list.size(), got.size());
    truth_list.resize(ell);
    got.resize(ell);
    auto kd = rank::KendallTauTopL(got, truth_list);
    if (!kd.ok()) return Fail(kd.status());
    kendall.push_back(kd.ValueOrDie());
  }
  std::printf("evaluated %zu queries at k=%lld:\n", kendall.size(),
              static_cast<long long>(k));
  std::printf("  avg Kendall-tau vs offline CELF++ ground truth: %.3f\n",
              stats::Mean(kendall));
  std::printf("  avg query latency: %.2f ms\n", stats::Mean(ms));
  return 0;
}

int CmdInfo(ArgParser& args) {
  const std::string data_dir = args.GetString("data", "");
  const std::string index_path = args.GetString("index", "");
  if (auto st = args.Validate(); !st.ok()) return Fail(st);
  if (data_dir.empty()) {
    return Fail(Status::InvalidArgument("--data is required"));
  }
  auto ds = data::LoadDataset(data_dir);
  if (!ds.ok()) return Fail(ds.status());
  const auto& d = ds.ValueOrDie();
  std::printf("dataset %s:\n  users: %zu\n  arcs: %zu\n  topics: %zu\n"
              "  items: %zu\n  log records: %zu (%zu active items)\n",
              data_dir.c_str(), d.graph.num_nodes(), d.graph.num_arcs(),
              d.graph.num_topics(), d.catalog.size(), d.log.size(),
              d.log.num_active_items());
  if (!index_path.empty()) {
    auto index = core::InflexIndex::Load(index_path, &d.graph);
    if (!index.ok()) return Fail(index.status());
    const auto& ix = index.ValueOrDie();
    // Footnote 4 of the paper: per-point memory cost
    // (Z−1)·sizeof(double) + l·sizeof(int).
    const size_t per_point = (ix.num_topics() - 1) * sizeof(double) +
                             ix.seed_list_length() * sizeof(uint32_t);
    std::printf("index %s:\n  points (h): %zu\n  seed list length (l): %zu\n"
                "  tree: %zu nodes, %zu leaves, depth %zu\n"
                "  per-point payload: %zu bytes (total ~%zu KiB)\n",
                index_path.c_str(), ix.num_index_points(),
                ix.seed_list_length(), ix.tree().num_nodes(),
                ix.tree().num_leaves(), ix.tree().depth(), per_point,
                per_point * ix.num_index_points() / 1024);
  }
  return 0;
}

}  // namespace
}  // namespace inflex

int main(int argc, char** argv) {
  using namespace inflex;  // NOLINT
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  ArgParser args(argc - 1, argv + 1);
  if (command == "generate") return CmdGenerate(args);
  if (command == "learn") return CmdLearn(args);
  if (command == "suggest-h") return CmdSuggestH(args);
  if (command == "build-index") return CmdBuildIndex(args);
  if (command == "query") return CmdQuery(args);
  if (command == "add-item") return CmdAddItem(args);
  if (command == "evaluate") return CmdEvaluate(args);
  if (command == "info") return CmdInfo(args);
  PrintUsage();
  return 1;
}
