// The paper's motivating scenario (§1.2): a viral-ads platform. Advertisers
// submit ads described as topic mixtures; the platform must pick, *online*,
// the users to target for each ad. We simulate a stream of heterogeneous ad
// campaigns and show per-ad millisecond answers whose targeted users differ
// by topic — plus what a topic-blind platform would have lost.
#include <cstdio>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "inflex/baselines.h"
#include "inflex/inflex_index.h"
#include "inflex/query_cache.h"
#include "tic/tic_model.h"
#include "util/check.h"
#include "util/timer.h"

using namespace inflex;  // NOLINT

namespace {

struct AdCampaign {
  std::string name;
  std::vector<double> topic_mix;  // over {sports, politics, tech, music, film}
};

}  // namespace

int main() {
  const std::vector<std::string> topic_names = {"sports", "politics", "tech",
                                                "music", "film"};
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 800;
  dopts.num_topics = topic_names.size();
  dopts.num_items = 500;
  dopts.seed = 7;
  auto dataset = data::GenerateSyntheticDataset(dopts);
  INFLEX_CHECK_OK(dataset.status());
  const auto& ds = dataset.ValueOrDie();

  std::printf("building the INFLEX index (offline, once)...\n");
  core::InflexBuildOptions bopts;
  bopts.index_points.num_index_points = 48;
  bopts.index_points.num_dirichlet_samples = 8000;
  bopts.seed_list_length = 25;
  bopts.oracle_snapshots = 60;
  Timer build_timer;
  auto index = core::InflexIndex::Build(ds.graph, ds.catalog, bopts);
  INFLEX_CHECK_OK(index.status());
  std::printf("index ready in %.1f s — the platform can now serve "
              "advertisers online\n\n",
              build_timer.ElapsedSeconds());

  const std::vector<AdCampaign> campaigns = {
      {"sneaker drop (sports)", {0.8, 0.02, 0.08, 0.05, 0.05}},
      {"election podcast (politics+tech)", {0.02, 0.55, 0.35, 0.04, 0.04}},
      {"indie film festival (film+music)", {0.03, 0.02, 0.05, 0.3, 0.6}},
      {"smartwatch launch (tech+sports)", {0.35, 0.03, 0.55, 0.03, 0.04}},
  };

  tic::TicModel model(&ds.graph);
  im::MonteCarloOptions mc;
  mc.num_simulations = 4000;

  for (const auto& ad : campaigns) {
    auto item = simplex::TopicDistribution::Create(ad.topic_mix);
    INFLEX_CHECK_OK(item.status());
    auto answer = index.ValueOrDie().Query(item.ValueOrDie(), /*k=*/8);
    INFLEX_CHECK_OK(answer.status());
    const auto& r = answer.ValueOrDie();

    std::vector<graph::NodeId> seeds(r.seeds.begin(), r.seeds.end());
    auto spread = model.EstimateSpread(item.ValueOrDie(), seeds, mc);
    INFLEX_CHECK_OK(spread.status());

    std::printf("ad: %-36s answered in %5.2f ms | targets:", ad.name.c_str(),
                r.total_ms);
    for (graph::NodeId v : seeds) std::printf(" %u", v);
    std::printf(" | expected adoptions: %.0f\n", spread.ValueOrDie().mean);
  }

  // Serving-path optimization: advertisers resubmit near-identical
  // descriptions constantly; a quantized LRU cache absorbs them.
  core::QueryCache cache;
  double cold_ms = 0.0, warm_ms = 0.0;
  for (const auto& ad : campaigns) {
    auto item = simplex::TopicDistribution::Create(ad.topic_mix);
    INFLEX_CHECK_OK(item.status());
    auto cold = cache.Query(index.ValueOrDie(), item.ValueOrDie(), 8);
    INFLEX_CHECK_OK(cold.status());
    cold_ms += cold.ValueOrDie().total_ms;
    auto warm = cache.Query(index.ValueOrDie(), item.ValueOrDie(), 8);
    INFLEX_CHECK_OK(warm.status());
    warm_ms += warm.ValueOrDie().total_ms;
  }
  std::printf("\nresubmission handling: first pass %.2f ms total, cached "
              "pass %.3f ms total (%llu hits / %llu misses)\n",
              cold_ms, warm_ms,
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));

  // What would a topic-blind platform do? One generic seed set for all ads.
  std::printf("\ntopic-blind comparison (one generic seed set for every "
              "ad, as pre-TIC platforms would):\n");
  core::OfflineImOptions oopts;
  oopts.num_snapshots = 60;
  auto blind = core::OfflineIcSeeds(ds.graph, 8, oopts);
  INFLEX_CHECK_OK(blind.status());
  for (const auto& ad : campaigns) {
    auto item = simplex::TopicDistribution::Create(ad.topic_mix);
    INFLEX_CHECK_OK(item.status());
    auto spread = model.EstimateSpread(item.ValueOrDie(),
                                       blind.ValueOrDie().seeds, mc);
    INFLEX_CHECK_OK(spread.status());
    std::printf("  %-36s expected adoptions: %.0f\n", ad.name.c_str(),
                spread.ValueOrDie().mean);
  }
  std::printf("\nTopic-aware targeting adapts the influencers to each ad; "
              "the generic seed set leaves adoptions on the table.\n");
  return 0;
}
