// Operational workflow: build the expensive index once, persist it, and
// serve queries from a freshly loaded copy (e.g. after a process restart or
// on a different serving replica). Demonstrates Save/Load and verifies that
// the loaded index returns identical answers.
#include <cstdio>

#include "data/dataset_io.h"
#include "data/synthetic.h"
#include "inflex/inflex_index.h"
#include "simplex/sampling.h"
#include "util/check.h"
#include "util/random.h"
#include "util/timer.h"

using namespace inflex;  // NOLINT

int main() {
  const std::string dir = "inflex_example_artifacts";

  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 600;
  dopts.num_topics = 5;
  dopts.num_items = 350;
  dopts.seed = 21;
  auto dataset = data::GenerateSyntheticDataset(dopts);
  INFLEX_CHECK_OK(dataset.status());
  const auto& ds = dataset.ValueOrDie();

  // Offline: build and persist dataset + index.
  core::InflexBuildOptions bopts;
  bopts.index_points.num_index_points = 32;
  bopts.index_points.num_dirichlet_samples = 5000;
  bopts.seed_list_length = 20;
  bopts.oracle_snapshots = 50;
  Timer build_timer;
  auto built = core::InflexIndex::Build(ds.graph, ds.catalog, bopts);
  INFLEX_CHECK_OK(built.status());
  const double build_s = build_timer.ElapsedSeconds();

  INFLEX_CHECK_OK(data::SaveDataset(ds, dir));
  INFLEX_CHECK_OK(built.ValueOrDie().Save(dir + "/index.bin"));
  std::printf("built index in %.1f s and persisted to %s/\n", build_s,
              dir.c_str());

  // Serving replica: load everything back.
  Timer load_timer;
  auto loaded_ds = data::LoadDataset(dir);
  INFLEX_CHECK_OK(loaded_ds.status());
  auto loaded =
      core::InflexIndex::Load(dir + "/index.bin", &loaded_ds.ValueOrDie().graph);
  INFLEX_CHECK_OK(loaded.status());
  std::printf("loaded dataset + index in %.2f s (tree rebuilt from %zu "
              "points)\n",
              load_timer.ElapsedSeconds(),
              loaded.ValueOrDie().num_index_points());

  // The loaded replica must answer exactly like the builder process.
  Rng rng(99);
  size_t agreements = 0;
  const size_t trials = 20;
  double total_ms = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    auto q = simplex::TopicDistribution::Create(
        simplex::SampleUniformSimplex(5, &rng));
    INFLEX_CHECK_OK(q.status());
    auto a = built.ValueOrDie().Query(q.ValueOrDie(), 10);
    auto b = loaded.ValueOrDie().Query(q.ValueOrDie(), 10);
    INFLEX_CHECK_OK(a.status());
    INFLEX_CHECK_OK(b.status());
    if (a.ValueOrDie().seeds == b.ValueOrDie().seeds) ++agreements;
    total_ms += b.ValueOrDie().total_ms;
  }
  std::printf("loaded replica agreed on %zu/%zu queries, avg latency "
              "%.2f ms\n",
              agreements, trials, total_ms / trials);
  INFLEX_CHECK_EQ(agreements, trials);
  std::printf("OK: persistence round trip preserves answers.\n");
  return 0;
}
