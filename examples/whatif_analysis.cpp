// What-if simulation for marketing decision making (the paper's §1 pitch:
// "online social influence analytics, what-if simulation, and marketing
// decision making"). A marketer repositions a product between two topics and
// watches, interactively, how the best seed set and the expected adoption
// change along the mixture path — 11 full TIM queries, answered from the
// index in milliseconds each.
#include <cstdio>
#include <set>

#include "data/synthetic.h"
#include "inflex/inflex_index.h"
#include "tic/tic_model.h"
#include "util/check.h"

using namespace inflex;  // NOLINT

int main() {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 700;
  dopts.num_topics = 6;
  dopts.num_items = 400;
  dopts.seed = 11;
  auto dataset = data::GenerateSyntheticDataset(dopts);
  INFLEX_CHECK_OK(dataset.status());
  const auto& ds = dataset.ValueOrDie();

  core::InflexBuildOptions bopts;
  bopts.index_points.num_index_points = 40;
  bopts.index_points.num_dirichlet_samples = 6000;
  bopts.seed_list_length = 20;
  bopts.oracle_snapshots = 60;
  auto index = core::InflexIndex::Build(ds.graph, ds.catalog, bopts);
  INFLEX_CHECK_OK(index.status());

  tic::TicModel model(&ds.graph);
  im::MonteCarloOptions mc;
  mc.num_simulations = 3000;

  std::printf("what-if: reposition a product from topic 0 toward topic 3\n");
  std::printf("%-8s %-10s %-12s %-9s %s\n", "mix", "latency", "exp.spread",
              "overlap", "seed set (k=8)");

  rank::RankedList previous;
  for (int step = 0; step <= 10; ++step) {
    const double lambda = step / 10.0;
    simplex::TopicVector mix(6, 0.01);
    mix[0] = (1.0 - lambda) * 0.95;
    mix[3] = lambda * 0.95;
    auto item = simplex::TopicDistribution::FromUnnormalized(mix);
    INFLEX_CHECK_OK(item.status());

    auto answer = index.ValueOrDie().Query(item.ValueOrDie(), 8);
    INFLEX_CHECK_OK(answer.status());
    const auto& r = answer.ValueOrDie();

    std::vector<graph::NodeId> seeds(r.seeds.begin(), r.seeds.end());
    auto spread = model.EstimateSpread(item.ValueOrDie(), seeds, mc);
    INFLEX_CHECK_OK(spread.status());

    // Seed-set churn relative to the previous mixture point.
    size_t overlap = 0;
    std::set<rank::Item> prev_set(previous.begin(), previous.end());
    for (rank::Item v : r.seeds) overlap += prev_set.count(v);
    previous = r.seeds;

    char mix_label[16];
    std::snprintf(mix_label, sizeof(mix_label), "%.1f/%.1f", 1.0 - lambda,
                  lambda);
    std::printf("%-8s %6.2f ms  %8.1f     %zu/8      ", mix_label, r.total_ms,
                spread.ValueOrDie().mean, step == 0 ? size_t{8} : overlap);
    for (rank::Item v : r.seeds) std::printf("%u ", v);
    std::printf("\n");
  }
  std::printf("\nAs the mixture crosses over, the influential users rotate "
              "from topic-0 authorities to topic-3 authorities — exactly "
              "the topic-dependence the TIC model captures.\n");
  return 0;
}
