// Quickstart: the full INFLEX pipeline in one file.
//  1. synthesize a topic-structured social network + item catalog,
//  2. build the INFLEX index (index-point selection + CELF++ precompute +
//     Bregman ball tree),
//  3. answer a Topic-aware Influence Maximization query in milliseconds,
//  4. sanity-check the answer's expected spread with TIC Monte Carlo.
#include <cstdio>

#include "data/synthetic.h"
#include "inflex/inflex_index.h"
#include "tic/tic_model.h"
#include "util/check.h"

using namespace inflex;  // NOLINT

int main() {
  // 1. A small synthetic dataset (in production: your social graph with
  //    TIC parameters learned from a propagation log — see the tic module).
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 500;
  dopts.num_topics = 5;
  dopts.num_items = 300;
  dopts.seed = 42;
  auto dataset = data::GenerateSyntheticDataset(dopts);
  INFLEX_CHECK_OK(dataset.status());
  const auto& ds = dataset.ValueOrDie();
  std::printf("dataset: %zu users, %zu arcs, Z=%zu topics, %zu items\n",
              ds.graph.num_nodes(), ds.graph.num_arcs(),
              ds.graph.num_topics(), ds.catalog.size());

  // 2. Build the index. This is the heavy offline phase: one CELF++
  //    influence-maximization run per index point.
  core::InflexBuildOptions bopts;
  bopts.index_points.num_index_points = 32;      // h
  bopts.index_points.num_dirichlet_samples = 5000;
  bopts.seed_list_length = 20;                   // l
  bopts.oracle_snapshots = 60;
  auto index = core::InflexIndex::Build(ds.graph, ds.catalog, bopts);
  INFLEX_CHECK_OK(index.status());
  std::printf("index: %zu points, seed lists of length %zu\n",
              index.ValueOrDie().num_index_points(),
              index.ValueOrDie().seed_list_length());

  // 3. A TIM query: an item described as a topic mixture, and k.
  auto item = simplex::TopicDistribution::Create({0.7, 0.1, 0.1, 0.05, 0.05});
  INFLEX_CHECK_OK(item.status());
  auto answer = index.ValueOrDie().Query(item.ValueOrDie(), /*k=*/10);
  INFLEX_CHECK_OK(answer.status());
  const auto& r = answer.ValueOrDie();
  std::printf("\nTIM query %s, k=10 answered in %.2f ms "
              "(%zu seed lists aggregated%s)\n",
              item.ValueOrDie().ToString().c_str(), r.total_ms,
              r.neighbors_used.size(),
              r.epsilon_exact ? ", epsilon-exact match" : "");
  std::printf("seed users:");
  for (rank::Item v : r.seeds) std::printf(" %u", v);
  std::printf("\n");

  // 4. Verify the quality: expected spread under the TIC model.
  tic::TicModel model(&ds.graph);
  std::vector<graph::NodeId> seeds(r.seeds.begin(), r.seeds.end());
  im::MonteCarloOptions mc;
  mc.num_simulations = 5000;
  auto spread = model.EstimateSpread(item.ValueOrDie(), seeds, mc);
  INFLEX_CHECK_OK(spread.status());
  std::printf("expected spread of the answer: %.1f users (+/- %.1f)\n",
              spread.ValueOrDie().mean, spread.ValueOrDie().std_error);
  return 0;
}
