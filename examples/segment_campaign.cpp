// Segment-targeted campaigns and online catalog growth — the two §6
// future-work directions of the paper, working together:
//  1. an advertiser targets a specific market segment (e.g. "only users in
//     the loyalty program"), served via QueryOptions::segment_mask;
//  2. a brand-new item arrives after the index was built; its seed list is
//     computed once and added online (AddIndexPoint), then served with the
//     ε-exact shortcut until the next Compact().
#include <cstdio>

#include "data/synthetic.h"
#include "inflex/baselines.h"
#include "inflex/index_points.h"
#include "inflex/inflex_index.h"
#include "tic/tic_model.h"
#include "util/check.h"
#include "util/random.h"

using namespace inflex;  // NOLINT

int main() {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 800;
  dopts.num_topics = 6;
  dopts.num_items = 400;
  dopts.seed = 33;
  auto dataset = data::GenerateSyntheticDataset(dopts);
  INFLEX_CHECK_OK(dataset.status());
  const auto& ds = dataset.ValueOrDie();

  // Size the index automatically (paper §6: "automatic determination of the
  // number of items to index").
  core::IndexSizeCriterion criterion;
  criterion.target_divergence = 0.35;
  auto suggested = core::SuggestIndexPointCount(ds.catalog, criterion);
  INFLEX_CHECK_OK(suggested.status());
  std::printf("automatic index sizing suggests h = %zu\n",
              suggested.ValueOrDie());

  core::InflexBuildOptions bopts;
  bopts.index_points.num_index_points = suggested.ValueOrDie();
  bopts.index_points.num_dirichlet_samples =
      50 * suggested.ValueOrDie();
  bopts.seed_list_length = 20;
  bopts.oracle_snapshots = 60;
  auto index = core::InflexIndex::Build(ds.graph, ds.catalog, bopts);
  INFLEX_CHECK_OK(index.status());

  // --- 1. Segment-targeted campaign. --------------------------------------
  // The loyalty program: every fourth user.
  core::QueryOptions segment_opts;
  segment_opts.segment_mask.assign(ds.graph.num_nodes(), 0);
  size_t segment_size = 0;
  for (size_t v = 0; v < ds.graph.num_nodes(); v += 4) {
    segment_opts.segment_mask[v] = 1;
    ++segment_size;
  }
  auto item = simplex::TopicDistribution::Create(
                  {0.55, 0.2, 0.1, 0.05, 0.05, 0.05})
                  .ValueOrDie();

  auto open_answer = index.ValueOrDie().Query(item, 8);
  auto segment_answer = index.ValueOrDie().Query(item, 8, segment_opts);
  INFLEX_CHECK_OK(open_answer.status());
  INFLEX_CHECK_OK(segment_answer.status());
  std::printf("\ncampaign item %s\n", item.ToString().c_str());
  std::printf("open targeting   (%5.2f ms):", open_answer.ValueOrDie().total_ms);
  for (rank::Item v : open_answer.ValueOrDie().seeds) std::printf(" %u", v);
  std::printf("\nloyalty segment  (%5.2f ms):",
              segment_answer.ValueOrDie().total_ms);
  for (rank::Item v : segment_answer.ValueOrDie().seeds) std::printf(" %u", v);
  std::printf("  [segment of %zu users]\n", segment_size);

  tic::TicModel model(&ds.graph);
  im::MonteCarloOptions mc;
  mc.num_simulations = 4000;
  auto spread_of = [&](const rank::RankedList& seeds) {
    std::vector<graph::NodeId> s(seeds.begin(), seeds.end());
    return model.EstimateSpread(item, s, mc).ValueOrDie().mean;
  };
  std::printf("expected adoptions: open %.0f vs segment-restricted %.0f "
              "(the cost of the targeting constraint)\n",
              spread_of(open_answer.ValueOrDie().seeds),
              spread_of(segment_answer.ValueOrDie().seeds));

  // --- 2. Online item arrival. ---------------------------------------------
  auto new_item = simplex::TopicDistribution::Create(
                      {0.05, 0.05, 0.05, 0.05, 0.05, 0.75})
                      .ValueOrDie();
  std::printf("\na new item %s enters the catalog: one offline CELF++ run, "
              "then it is indexed online\n",
              new_item.ToString().c_str());
  core::OfflineImOptions oopts;
  oopts.num_snapshots = 60;
  auto new_seeds = core::OfflineTicSeeds(ds.graph, new_item, 20, oopts);
  INFLEX_CHECK_OK(new_seeds.status());
  rank::RankedList new_list(new_seeds.ValueOrDie().seeds.begin(),
                            new_seeds.ValueOrDie().seeds.end());
  INFLEX_CHECK_OK(index.ValueOrDie().AddIndexPoint(new_item, new_list));

  auto served = index.ValueOrDie().Query(new_item, 10);
  INFLEX_CHECK_OK(served.status());
  std::printf("query on the new item: epsilon-exact=%s, %.2f ms, seeds:",
              served.ValueOrDie().epsilon_exact ? "yes" : "no",
              served.ValueOrDie().total_ms);
  for (rank::Item v : served.ValueOrDie().seeds) std::printf(" %u", v);
  std::printf("\n");

  INFLEX_CHECK_OK(index.ValueOrDie().Compact());
  std::printf("after Compact(): %zu index points in the tree, overflow "
              "buffer empty\n",
              index.ValueOrDie().num_index_points());
  return 0;
}
