file(REMOVE_RECURSE
  "../examples/segment_campaign"
  "../examples/segment_campaign.pdb"
  "CMakeFiles/segment_campaign.dir/segment_campaign.cpp.o"
  "CMakeFiles/segment_campaign.dir/segment_campaign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
