# Empty compiler generated dependencies file for segment_campaign.
# This may be replaced when dependencies are built.
