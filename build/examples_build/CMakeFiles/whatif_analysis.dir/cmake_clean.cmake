file(REMOVE_RECURSE
  "../examples/whatif_analysis"
  "../examples/whatif_analysis.pdb"
  "CMakeFiles/whatif_analysis.dir/whatif_analysis.cpp.o"
  "CMakeFiles/whatif_analysis.dir/whatif_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
