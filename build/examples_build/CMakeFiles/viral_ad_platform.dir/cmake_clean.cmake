file(REMOVE_RECURSE
  "../examples/viral_ad_platform"
  "../examples/viral_ad_platform.pdb"
  "CMakeFiles/viral_ad_platform.dir/viral_ad_platform.cpp.o"
  "CMakeFiles/viral_ad_platform.dir/viral_ad_platform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viral_ad_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
