# Empty dependencies file for viral_ad_platform.
# This may be replaced when dependencies are built.
