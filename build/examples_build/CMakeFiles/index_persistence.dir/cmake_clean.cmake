file(REMOVE_RECURSE
  "../examples/index_persistence"
  "../examples/index_persistence.pdb"
  "CMakeFiles/index_persistence.dir/index_persistence.cpp.o"
  "CMakeFiles/index_persistence.dir/index_persistence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
