# Empty compiler generated dependencies file for inflex_util.
# This may be replaced when dependencies are built.
