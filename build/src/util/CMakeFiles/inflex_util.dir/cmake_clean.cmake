file(REMOVE_RECURSE
  "CMakeFiles/inflex_util.dir/args.cc.o"
  "CMakeFiles/inflex_util.dir/args.cc.o.d"
  "CMakeFiles/inflex_util.dir/logging.cc.o"
  "CMakeFiles/inflex_util.dir/logging.cc.o.d"
  "CMakeFiles/inflex_util.dir/serialize.cc.o"
  "CMakeFiles/inflex_util.dir/serialize.cc.o.d"
  "CMakeFiles/inflex_util.dir/status.cc.o"
  "CMakeFiles/inflex_util.dir/status.cc.o.d"
  "CMakeFiles/inflex_util.dir/thread_pool.cc.o"
  "CMakeFiles/inflex_util.dir/thread_pool.cc.o.d"
  "libinflex_util.a"
  "libinflex_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
