file(REMOVE_RECURSE
  "libinflex_util.a"
)
