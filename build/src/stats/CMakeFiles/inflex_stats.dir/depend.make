# Empty dependencies file for inflex_stats.
# This may be replaced when dependencies are built.
