file(REMOVE_RECURSE
  "CMakeFiles/inflex_stats.dir/anderson_darling.cc.o"
  "CMakeFiles/inflex_stats.dir/anderson_darling.cc.o.d"
  "CMakeFiles/inflex_stats.dir/descriptive.cc.o"
  "CMakeFiles/inflex_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/inflex_stats.dir/dirichlet.cc.o"
  "CMakeFiles/inflex_stats.dir/dirichlet.cc.o.d"
  "CMakeFiles/inflex_stats.dir/special_functions.cc.o"
  "CMakeFiles/inflex_stats.dir/special_functions.cc.o.d"
  "libinflex_stats.a"
  "libinflex_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
