file(REMOVE_RECURSE
  "libinflex_stats.a"
)
