# Empty compiler generated dependencies file for inflex_core.
# This may be replaced when dependencies are built.
