file(REMOVE_RECURSE
  "libinflex_core.a"
)
