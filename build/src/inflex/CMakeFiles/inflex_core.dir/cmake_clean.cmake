file(REMOVE_RECURSE
  "CMakeFiles/inflex_core.dir/baselines.cc.o"
  "CMakeFiles/inflex_core.dir/baselines.cc.o.d"
  "CMakeFiles/inflex_core.dir/index_points.cc.o"
  "CMakeFiles/inflex_core.dir/index_points.cc.o.d"
  "CMakeFiles/inflex_core.dir/inflex_index.cc.o"
  "CMakeFiles/inflex_core.dir/inflex_index.cc.o.d"
  "CMakeFiles/inflex_core.dir/query_cache.cc.o"
  "CMakeFiles/inflex_core.dir/query_cache.cc.o.d"
  "CMakeFiles/inflex_core.dir/query_engine.cc.o"
  "CMakeFiles/inflex_core.dir/query_engine.cc.o.d"
  "CMakeFiles/inflex_core.dir/weighting.cc.o"
  "CMakeFiles/inflex_core.dir/weighting.cc.o.d"
  "libinflex_core.a"
  "libinflex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
