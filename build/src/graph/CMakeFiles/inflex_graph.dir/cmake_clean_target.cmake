file(REMOVE_RECURSE
  "libinflex_graph.a"
)
