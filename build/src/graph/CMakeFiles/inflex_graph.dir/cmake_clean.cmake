file(REMOVE_RECURSE
  "CMakeFiles/inflex_graph.dir/graph_io.cc.o"
  "CMakeFiles/inflex_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/inflex_graph.dir/topic_graph.cc.o"
  "CMakeFiles/inflex_graph.dir/topic_graph.cc.o.d"
  "libinflex_graph.a"
  "libinflex_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
