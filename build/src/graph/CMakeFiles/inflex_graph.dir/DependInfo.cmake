
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/inflex_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/inflex_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/topic_graph.cc" "src/graph/CMakeFiles/inflex_graph.dir/topic_graph.cc.o" "gcc" "src/graph/CMakeFiles/inflex_graph.dir/topic_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/inflex_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simplex/CMakeFiles/inflex_simplex.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/inflex_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
