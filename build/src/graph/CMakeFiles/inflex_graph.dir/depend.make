# Empty dependencies file for inflex_graph.
# This may be replaced when dependencies are built.
