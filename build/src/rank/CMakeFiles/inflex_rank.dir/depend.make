# Empty dependencies file for inflex_rank.
# This may be replaced when dependencies are built.
