file(REMOVE_RECURSE
  "CMakeFiles/inflex_rank.dir/aggregators.cc.o"
  "CMakeFiles/inflex_rank.dir/aggregators.cc.o.d"
  "CMakeFiles/inflex_rank.dir/kemeny.cc.o"
  "CMakeFiles/inflex_rank.dir/kemeny.cc.o.d"
  "CMakeFiles/inflex_rank.dir/kendall_tau.cc.o"
  "CMakeFiles/inflex_rank.dir/kendall_tau.cc.o.d"
  "CMakeFiles/inflex_rank.dir/local_kemenization.cc.o"
  "CMakeFiles/inflex_rank.dir/local_kemenization.cc.o.d"
  "CMakeFiles/inflex_rank.dir/markov_chain.cc.o"
  "CMakeFiles/inflex_rank.dir/markov_chain.cc.o.d"
  "CMakeFiles/inflex_rank.dir/preference_matrix.cc.o"
  "CMakeFiles/inflex_rank.dir/preference_matrix.cc.o.d"
  "libinflex_rank.a"
  "libinflex_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
