
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rank/aggregators.cc" "src/rank/CMakeFiles/inflex_rank.dir/aggregators.cc.o" "gcc" "src/rank/CMakeFiles/inflex_rank.dir/aggregators.cc.o.d"
  "/root/repo/src/rank/kemeny.cc" "src/rank/CMakeFiles/inflex_rank.dir/kemeny.cc.o" "gcc" "src/rank/CMakeFiles/inflex_rank.dir/kemeny.cc.o.d"
  "/root/repo/src/rank/kendall_tau.cc" "src/rank/CMakeFiles/inflex_rank.dir/kendall_tau.cc.o" "gcc" "src/rank/CMakeFiles/inflex_rank.dir/kendall_tau.cc.o.d"
  "/root/repo/src/rank/local_kemenization.cc" "src/rank/CMakeFiles/inflex_rank.dir/local_kemenization.cc.o" "gcc" "src/rank/CMakeFiles/inflex_rank.dir/local_kemenization.cc.o.d"
  "/root/repo/src/rank/markov_chain.cc" "src/rank/CMakeFiles/inflex_rank.dir/markov_chain.cc.o" "gcc" "src/rank/CMakeFiles/inflex_rank.dir/markov_chain.cc.o.d"
  "/root/repo/src/rank/preference_matrix.cc" "src/rank/CMakeFiles/inflex_rank.dir/preference_matrix.cc.o" "gcc" "src/rank/CMakeFiles/inflex_rank.dir/preference_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/inflex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
