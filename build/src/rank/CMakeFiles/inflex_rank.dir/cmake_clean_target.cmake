file(REMOVE_RECURSE
  "libinflex_rank.a"
)
