# Empty dependencies file for inflex_data.
# This may be replaced when dependencies are built.
