file(REMOVE_RECURSE
  "libinflex_data.a"
)
