file(REMOVE_RECURSE
  "CMakeFiles/inflex_data.dir/dataset_io.cc.o"
  "CMakeFiles/inflex_data.dir/dataset_io.cc.o.d"
  "CMakeFiles/inflex_data.dir/synthetic.cc.o"
  "CMakeFiles/inflex_data.dir/synthetic.cc.o.d"
  "CMakeFiles/inflex_data.dir/workload.cc.o"
  "CMakeFiles/inflex_data.dir/workload.cc.o.d"
  "libinflex_data.a"
  "libinflex_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
