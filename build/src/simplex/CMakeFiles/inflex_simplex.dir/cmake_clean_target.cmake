file(REMOVE_RECURSE
  "libinflex_simplex.a"
)
