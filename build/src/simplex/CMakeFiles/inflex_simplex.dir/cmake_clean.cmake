file(REMOVE_RECURSE
  "CMakeFiles/inflex_simplex.dir/divergence.cc.o"
  "CMakeFiles/inflex_simplex.dir/divergence.cc.o.d"
  "CMakeFiles/inflex_simplex.dir/ilr.cc.o"
  "CMakeFiles/inflex_simplex.dir/ilr.cc.o.d"
  "CMakeFiles/inflex_simplex.dir/sampling.cc.o"
  "CMakeFiles/inflex_simplex.dir/sampling.cc.o.d"
  "CMakeFiles/inflex_simplex.dir/topic_distribution.cc.o"
  "CMakeFiles/inflex_simplex.dir/topic_distribution.cc.o.d"
  "libinflex_simplex.a"
  "libinflex_simplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
