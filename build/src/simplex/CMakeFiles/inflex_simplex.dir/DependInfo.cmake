
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simplex/divergence.cc" "src/simplex/CMakeFiles/inflex_simplex.dir/divergence.cc.o" "gcc" "src/simplex/CMakeFiles/inflex_simplex.dir/divergence.cc.o.d"
  "/root/repo/src/simplex/ilr.cc" "src/simplex/CMakeFiles/inflex_simplex.dir/ilr.cc.o" "gcc" "src/simplex/CMakeFiles/inflex_simplex.dir/ilr.cc.o.d"
  "/root/repo/src/simplex/sampling.cc" "src/simplex/CMakeFiles/inflex_simplex.dir/sampling.cc.o" "gcc" "src/simplex/CMakeFiles/inflex_simplex.dir/sampling.cc.o.d"
  "/root/repo/src/simplex/topic_distribution.cc" "src/simplex/CMakeFiles/inflex_simplex.dir/topic_distribution.cc.o" "gcc" "src/simplex/CMakeFiles/inflex_simplex.dir/topic_distribution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/inflex_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/inflex_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
