# Empty dependencies file for inflex_simplex.
# This may be replaced when dependencies are built.
