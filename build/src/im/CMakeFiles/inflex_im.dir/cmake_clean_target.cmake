file(REMOVE_RECURSE
  "libinflex_im.a"
)
