# Empty compiler generated dependencies file for inflex_im.
# This may be replaced when dependencies are built.
