
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/im/cascade.cc" "src/im/CMakeFiles/inflex_im.dir/cascade.cc.o" "gcc" "src/im/CMakeFiles/inflex_im.dir/cascade.cc.o.d"
  "/root/repo/src/im/celf.cc" "src/im/CMakeFiles/inflex_im.dir/celf.cc.o" "gcc" "src/im/CMakeFiles/inflex_im.dir/celf.cc.o.d"
  "/root/repo/src/im/celfpp.cc" "src/im/CMakeFiles/inflex_im.dir/celfpp.cc.o" "gcc" "src/im/CMakeFiles/inflex_im.dir/celfpp.cc.o.d"
  "/root/repo/src/im/greedy.cc" "src/im/CMakeFiles/inflex_im.dir/greedy.cc.o" "gcc" "src/im/CMakeFiles/inflex_im.dir/greedy.cc.o.d"
  "/root/repo/src/im/heuristics.cc" "src/im/CMakeFiles/inflex_im.dir/heuristics.cc.o" "gcc" "src/im/CMakeFiles/inflex_im.dir/heuristics.cc.o.d"
  "/root/repo/src/im/lt_model.cc" "src/im/CMakeFiles/inflex_im.dir/lt_model.cc.o" "gcc" "src/im/CMakeFiles/inflex_im.dir/lt_model.cc.o.d"
  "/root/repo/src/im/ris.cc" "src/im/CMakeFiles/inflex_im.dir/ris.cc.o" "gcc" "src/im/CMakeFiles/inflex_im.dir/ris.cc.o.d"
  "/root/repo/src/im/snapshot_oracle.cc" "src/im/CMakeFiles/inflex_im.dir/snapshot_oracle.cc.o" "gcc" "src/im/CMakeFiles/inflex_im.dir/snapshot_oracle.cc.o.d"
  "/root/repo/src/im/spread_estimator.cc" "src/im/CMakeFiles/inflex_im.dir/spread_estimator.cc.o" "gcc" "src/im/CMakeFiles/inflex_im.dir/spread_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/inflex_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/inflex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/simplex/CMakeFiles/inflex_simplex.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/inflex_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
