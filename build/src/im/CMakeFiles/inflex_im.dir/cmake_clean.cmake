file(REMOVE_RECURSE
  "CMakeFiles/inflex_im.dir/cascade.cc.o"
  "CMakeFiles/inflex_im.dir/cascade.cc.o.d"
  "CMakeFiles/inflex_im.dir/celf.cc.o"
  "CMakeFiles/inflex_im.dir/celf.cc.o.d"
  "CMakeFiles/inflex_im.dir/celfpp.cc.o"
  "CMakeFiles/inflex_im.dir/celfpp.cc.o.d"
  "CMakeFiles/inflex_im.dir/greedy.cc.o"
  "CMakeFiles/inflex_im.dir/greedy.cc.o.d"
  "CMakeFiles/inflex_im.dir/heuristics.cc.o"
  "CMakeFiles/inflex_im.dir/heuristics.cc.o.d"
  "CMakeFiles/inflex_im.dir/lt_model.cc.o"
  "CMakeFiles/inflex_im.dir/lt_model.cc.o.d"
  "CMakeFiles/inflex_im.dir/ris.cc.o"
  "CMakeFiles/inflex_im.dir/ris.cc.o.d"
  "CMakeFiles/inflex_im.dir/snapshot_oracle.cc.o"
  "CMakeFiles/inflex_im.dir/snapshot_oracle.cc.o.d"
  "CMakeFiles/inflex_im.dir/spread_estimator.cc.o"
  "CMakeFiles/inflex_im.dir/spread_estimator.cc.o.d"
  "libinflex_im.a"
  "libinflex_im.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_im.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
