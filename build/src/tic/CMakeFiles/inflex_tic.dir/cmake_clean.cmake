file(REMOVE_RECURSE
  "CMakeFiles/inflex_tic.dir/propagation_log.cc.o"
  "CMakeFiles/inflex_tic.dir/propagation_log.cc.o.d"
  "CMakeFiles/inflex_tic.dir/tic_learner.cc.o"
  "CMakeFiles/inflex_tic.dir/tic_learner.cc.o.d"
  "CMakeFiles/inflex_tic.dir/tic_model.cc.o"
  "CMakeFiles/inflex_tic.dir/tic_model.cc.o.d"
  "libinflex_tic.a"
  "libinflex_tic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_tic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
