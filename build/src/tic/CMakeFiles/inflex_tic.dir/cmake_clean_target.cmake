file(REMOVE_RECURSE
  "libinflex_tic.a"
)
