# Empty compiler generated dependencies file for inflex_tic.
# This may be replaced when dependencies are built.
