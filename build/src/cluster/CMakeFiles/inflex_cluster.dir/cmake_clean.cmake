file(REMOVE_RECURSE
  "CMakeFiles/inflex_cluster.dir/gmeans.cc.o"
  "CMakeFiles/inflex_cluster.dir/gmeans.cc.o.d"
  "CMakeFiles/inflex_cluster.dir/kmeans.cc.o"
  "CMakeFiles/inflex_cluster.dir/kmeans.cc.o.d"
  "libinflex_cluster.a"
  "libinflex_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
