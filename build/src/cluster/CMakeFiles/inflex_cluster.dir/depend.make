# Empty dependencies file for inflex_cluster.
# This may be replaced when dependencies are built.
