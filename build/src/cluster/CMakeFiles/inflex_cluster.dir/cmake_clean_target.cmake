file(REMOVE_RECURSE
  "libinflex_cluster.a"
)
