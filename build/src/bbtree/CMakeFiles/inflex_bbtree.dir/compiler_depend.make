# Empty compiler generated dependencies file for inflex_bbtree.
# This may be replaced when dependencies are built.
