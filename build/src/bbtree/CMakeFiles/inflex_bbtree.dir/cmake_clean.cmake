file(REMOVE_RECURSE
  "CMakeFiles/inflex_bbtree.dir/bbtree.cc.o"
  "CMakeFiles/inflex_bbtree.dir/bbtree.cc.o.d"
  "CMakeFiles/inflex_bbtree.dir/bregman_ball.cc.o"
  "CMakeFiles/inflex_bbtree.dir/bregman_ball.cc.o.d"
  "CMakeFiles/inflex_bbtree.dir/search.cc.o"
  "CMakeFiles/inflex_bbtree.dir/search.cc.o.d"
  "libinflex_bbtree.a"
  "libinflex_bbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_bbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
