file(REMOVE_RECURSE
  "libinflex_bbtree.a"
)
