# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/args_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/simplex_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/im_test[1]_include.cmake")
include("/root/repo/build/tests/tic_test[1]_include.cmake")
include("/root/repo/build/tests/rank_test[1]_include.cmake")
include("/root/repo/build/tests/bbtree_test[1]_include.cmake")
include("/root/repo/build/tests/inflex_core_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/serving_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
