# Empty dependencies file for bbtree_test.
# This may be replaced when dependencies are built.
