file(REMOVE_RECURSE
  "CMakeFiles/bbtree_test.dir/bbtree_test.cc.o"
  "CMakeFiles/bbtree_test.dir/bbtree_test.cc.o.d"
  "bbtree_test"
  "bbtree_test.pdb"
  "bbtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
