file(REMOVE_RECURSE
  "CMakeFiles/tic_test.dir/tic_test.cc.o"
  "CMakeFiles/tic_test.dir/tic_test.cc.o.d"
  "tic_test"
  "tic_test.pdb"
  "tic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
