# Empty compiler generated dependencies file for tic_test.
# This may be replaced when dependencies are built.
