# Empty dependencies file for inflex_core_test.
# This may be replaced when dependencies are built.
