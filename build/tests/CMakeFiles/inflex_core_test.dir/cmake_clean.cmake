file(REMOVE_RECURSE
  "CMakeFiles/inflex_core_test.dir/inflex_core_test.cc.o"
  "CMakeFiles/inflex_core_test.dir/inflex_core_test.cc.o.d"
  "inflex_core_test"
  "inflex_core_test.pdb"
  "inflex_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
