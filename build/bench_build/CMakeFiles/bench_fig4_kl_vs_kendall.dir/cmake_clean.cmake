file(REMOVE_RECURSE
  "../bench/bench_fig4_kl_vs_kendall"
  "../bench/bench_fig4_kl_vs_kendall.pdb"
  "CMakeFiles/bench_fig4_kl_vs_kendall.dir/bench_fig4_kl_vs_kendall.cc.o"
  "CMakeFiles/bench_fig4_kl_vs_kendall.dir/bench_fig4_kl_vs_kendall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_kl_vs_kendall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
