# Empty compiler generated dependencies file for bench_fig4_kl_vs_kendall.
# This may be replaced when dependencies are built.
