file(REMOVE_RECURSE
  "../bench/bench_fig3_index_selection"
  "../bench/bench_fig3_index_selection.pdb"
  "CMakeFiles/bench_fig3_index_selection.dir/bench_fig3_index_selection.cc.o"
  "CMakeFiles/bench_fig3_index_selection.dir/bench_fig3_index_selection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_index_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
