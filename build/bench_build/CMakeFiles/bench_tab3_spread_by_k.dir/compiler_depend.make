# Empty compiler generated dependencies file for bench_tab3_spread_by_k.
# This may be replaced when dependencies are built.
