file(REMOVE_RECURSE
  "../bench/bench_tab3_spread_by_k"
  "../bench/bench_tab3_spread_by_k.pdb"
  "CMakeFiles/bench_tab3_spread_by_k.dir/bench_tab3_spread_by_k.cc.o"
  "CMakeFiles/bench_tab3_spread_by_k.dir/bench_tab3_spread_by_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_spread_by_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
