# Empty dependencies file for bench_fig8_tab2_spread.
# This may be replaced when dependencies are built.
