# Empty dependencies file for bench_tab1_rank_aggregation.
# This may be replaced when dependencies are built.
