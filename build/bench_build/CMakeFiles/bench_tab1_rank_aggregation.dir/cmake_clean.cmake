file(REMOVE_RECURSE
  "../bench/bench_tab1_rank_aggregation"
  "../bench/bench_tab1_rank_aggregation.pdb"
  "CMakeFiles/bench_tab1_rank_aggregation.dir/bench_tab1_rank_aggregation.cc.o"
  "CMakeFiles/bench_tab1_rank_aggregation.dir/bench_tab1_rank_aggregation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_rank_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
