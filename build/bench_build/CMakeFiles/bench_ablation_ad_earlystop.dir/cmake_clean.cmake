file(REMOVE_RECURSE
  "../bench/bench_ablation_ad_earlystop"
  "../bench/bench_ablation_ad_earlystop.pdb"
  "CMakeFiles/bench_ablation_ad_earlystop.dir/bench_ablation_ad_earlystop.cc.o"
  "CMakeFiles/bench_ablation_ad_earlystop.dir/bench_ablation_ad_earlystop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ad_earlystop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
