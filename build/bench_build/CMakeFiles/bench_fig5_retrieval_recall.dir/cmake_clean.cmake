file(REMOVE_RECURSE
  "../bench/bench_fig5_retrieval_recall"
  "../bench/bench_fig5_retrieval_recall.pdb"
  "CMakeFiles/bench_fig5_retrieval_recall.dir/bench_fig5_retrieval_recall.cc.o"
  "CMakeFiles/bench_fig5_retrieval_recall.dir/bench_fig5_retrieval_recall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_retrieval_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
