# Empty dependencies file for bench_ablation_index_size.
# This may be replaced when dependencies are built.
