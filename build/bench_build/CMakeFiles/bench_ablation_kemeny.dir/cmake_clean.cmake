file(REMOVE_RECURSE
  "../bench/bench_ablation_kemeny"
  "../bench/bench_ablation_kemeny.pdb"
  "CMakeFiles/bench_ablation_kemeny.dir/bench_ablation_kemeny.cc.o"
  "CMakeFiles/bench_ablation_kemeny.dir/bench_ablation_kemeny.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kemeny.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
