# Empty dependencies file for bench_ablation_kemeny.
# This may be replaced when dependencies are built.
