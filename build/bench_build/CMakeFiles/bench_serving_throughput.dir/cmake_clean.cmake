file(REMOVE_RECURSE
  "../bench/bench_serving_throughput"
  "../bench/bench_serving_throughput.pdb"
  "CMakeFiles/bench_serving_throughput.dir/bench_serving_throughput.cc.o"
  "CMakeFiles/bench_serving_throughput.dir/bench_serving_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serving_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
