file(REMOVE_RECURSE
  "../bench/bench_learning_quality"
  "../bench/bench_learning_quality.pdb"
  "CMakeFiles/bench_learning_quality.dir/bench_learning_quality.cc.o"
  "CMakeFiles/bench_learning_quality.dir/bench_learning_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_learning_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
