# Empty compiler generated dependencies file for bench_learning_quality.
# This may be replaced when dependencies are built.
