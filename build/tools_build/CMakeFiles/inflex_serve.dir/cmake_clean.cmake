file(REMOVE_RECURSE
  "../tools/inflex_serve"
  "../tools/inflex_serve.pdb"
  "CMakeFiles/inflex_serve.dir/inflex_serve.cc.o"
  "CMakeFiles/inflex_serve.dir/inflex_serve.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
