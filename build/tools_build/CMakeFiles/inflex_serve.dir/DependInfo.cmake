
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/inflex_serve.cc" "tools_build/CMakeFiles/inflex_serve.dir/inflex_serve.cc.o" "gcc" "tools_build/CMakeFiles/inflex_serve.dir/inflex_serve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/inflex/CMakeFiles/inflex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/inflex_data.dir/DependInfo.cmake"
  "/root/repo/build/src/bbtree/CMakeFiles/inflex_bbtree.dir/DependInfo.cmake"
  "/root/repo/build/src/rank/CMakeFiles/inflex_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/tic/CMakeFiles/inflex_tic.dir/DependInfo.cmake"
  "/root/repo/build/src/im/CMakeFiles/inflex_im.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/inflex_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/inflex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/simplex/CMakeFiles/inflex_simplex.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/inflex_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inflex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
