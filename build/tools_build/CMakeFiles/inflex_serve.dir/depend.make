# Empty dependencies file for inflex_serve.
# This may be replaced when dependencies are built.
