file(REMOVE_RECURSE
  "../tools/inflex_cli"
  "../tools/inflex_cli.pdb"
  "CMakeFiles/inflex_cli.dir/inflex_cli.cc.o"
  "CMakeFiles/inflex_cli.dir/inflex_cli.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
