# Empty dependencies file for inflex_cli.
# This may be replaced when dependencies are built.
