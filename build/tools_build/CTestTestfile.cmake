# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools_build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_end_to_end "sh" "/root/repo/tests/cli_e2e.sh" "/root/repo/build/tools/inflex_cli" "/root/repo/build/tools/inflex_serve")
set_tests_properties(cli_end_to_end PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
