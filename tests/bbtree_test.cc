#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "bbtree/bbtree.h"
#include "bbtree/bregman_ball.h"
#include "simplex/divergence.h"
#include "simplex/sampling.h"
#include "stats/dirichlet.h"
#include "util/random.h"

namespace inflex {
namespace bbtree {
namespace {

using simplex::TopicVector;

// Clustered points resembling real index points (peaked Dirichlet mixture).
std::vector<TopicVector> ClusteredPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<TopicVector> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> alpha(dim, 0.3);
    alpha[i % dim] = 6.0;
    stats::Dirichlet d(alpha);
    points.push_back(d.Sample(&rng));
  }
  return points;
}

// ------------------------------------------------------------ BregmanBall ---

TEST(BregmanBallTest, ContainsCenterAndRespectsRadius) {
  const TopicVector center = {0.4, 0.3, 0.3};
  BregmanBall ball(center, 0.05);
  EXPECT_TRUE(ball.Contains(center));
  EXPECT_TRUE(ball.Contains({0.41, 0.3, 0.29}));
  EXPECT_FALSE(ball.Contains({0.95, 0.03, 0.02}));
}

TEST(BregmanBallTest, MinDivergenceZeroWhenQueryInside) {
  BregmanBall ball({0.5, 0.5}, 0.1);
  EXPECT_DOUBLE_EQ(ball.MinDivergenceFrom({0.52, 0.48}), 0.0);
}

TEST(BregmanBallTest, MinDivergenceIsValidLowerBound) {
  // Property: for any point x sampled inside the ball,
  // KL(x ‖ q) ≥ MinDivergenceFrom(q) − tolerance.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const TopicVector center = simplex::SampleUniformSimplex(4, &rng);
    const double radius = rng.Uniform(0.01, 0.2);
    BregmanBall ball(center, radius);
    const TopicVector q = simplex::SampleUniformSimplex(4, &rng);
    const double bound = ball.MinDivergenceFrom(q);
    // Rejection-sample points inside the ball around its center.
    int checked = 0;
    for (int i = 0; i < 3000 && checked < 300; ++i) {
      TopicVector x(4);
      double sum = 0.0;
      for (size_t d = 0; d < 4; ++d) {
        x[d] = std::max(center[d] * std::exp(0.5 * rng.Normal()), 1e-9);
        sum += x[d];
      }
      for (double& v : x) v /= sum;
      if (!ball.Contains(x)) continue;
      ++checked;
      EXPECT_GE(simplex::KlDivergence(x, q), bound - 1e-7)
          << "trial " << trial;
    }
    ASSERT_GT(checked, 0) << "sampler never hit the ball";
  }
}

TEST(BregmanBallTest, MinDivergenceTightOnBoundaryCase) {
  // For a tiny ball the bound approaches KL(center ‖ q).
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    const TopicVector center = simplex::SampleUniformSimplex(3, &rng);
    const TopicVector q = simplex::SampleUniformSimplex(3, &rng);
    BregmanBall ball(center, 1e-10);
    EXPECT_NEAR(ball.MinDivergenceFrom(q), simplex::KlDivergence(center, q),
                1e-3);
  }
}

TEST(BregmanBallTest, CanPruneConsistentWithBound) {
  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    const TopicVector center = simplex::SampleUniformSimplex(4, &rng);
    BregmanBall ball(center, rng.Uniform(0.01, 0.3));
    const TopicVector q = simplex::SampleUniformSimplex(4, &rng);
    const double bound = ball.MinDivergenceFrom(q);
    // Far above the bound: never prune; far below: always prune.
    EXPECT_FALSE(ball.CanPrune(q, bound + 0.5));
    if (bound > 1e-6) {
      EXPECT_TRUE(ball.CanPrune(q, bound * 0.5));
    }
  }
}

TEST(BregmanBallTest, InfiniteDeltaNeverPrunes) {
  BregmanBall ball({0.5, 0.5}, 0.01);
  EXPECT_FALSE(
      ball.CanPrune({0.9, 0.1}, std::numeric_limits<double>::infinity()));
}

TEST(BregmanBallTest, ScreenedPrimitivesMatchUnscreenedExactly) {
  // The batched searches precompute the screen D_KL(q ‖ μ) and pass it to
  // the *Screened refinements; with a screen bit-equal to what the
  // unscreened methods compute themselves (guaranteed: same dispatched
  // kernel over the same operands), bounds and decisions must be identical.
  Rng rng(471);
  simplex::KlQueryContext ctx;
  BisectionScratch scratch;
  for (int t = 0; t < 50; ++t) {
    const TopicVector center = simplex::SampleUniformSimplex(6, &rng);
    BregmanBall ball(center, rng.Uniform(0.005, 0.3));
    const TopicVector q = simplex::SampleUniformSimplex(6, &rng);
    ctx.Reset(q);
    const double screen = ctx.KlOfQueryAgainst(ball.log_center().data());
    EXPECT_DOUBLE_EQ(ball.MinDivergenceScreened(ctx, screen, &scratch),
                     ball.MinDivergenceFrom(ctx, &scratch));
    const double bound = ball.MinDivergenceFrom(ctx, &scratch);
    for (double delta : {bound * 0.5, bound, bound + 1e-6, bound + 0.5,
                         std::numeric_limits<double>::infinity()}) {
      EXPECT_EQ(ball.CanPruneScreened(ctx, screen, delta, &scratch),
                ball.CanPrune(ctx, delta, &scratch))
          << "t=" << t << " delta=" << delta;
    }
  }
}

// ------------------------------------------------------------- tree build ---

TEST(BbTreeBuildTest, RejectsBadInput) {
  EXPECT_FALSE(BbTree::Build({}, {}).ok());
  EXPECT_FALSE(BbTree::Build({{1.0}}, {}).ok());  // dimension 1
  BbTreeOptions zero_leaf;
  zero_leaf.max_leaf_size = 0;
  EXPECT_FALSE(BbTree::Build({{0.5, 0.5}}, zero_leaf).ok());
  EXPECT_FALSE(BbTree::Build({{0.5, 0.5}, {0.2, 0.3, 0.5}}, {}).ok());
}

TEST(BbTreeBuildTest, SinglePointTree) {
  auto tree = BbTree::Build({{0.5, 0.5}}, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.ValueOrDie().num_points(), 1u);
  EXPECT_EQ(tree.ValueOrDie().num_leaves(), 1u);
}

TEST(BbTreeBuildTest, AllPointsReachableViaLeaves) {
  const auto points = ClusteredPoints(300, 6, 11);
  BbTreeOptions opts;
  opts.max_leaf_size = 12;
  auto tree_r = BbTree::Build(points, opts);
  ASSERT_TRUE(tree_r.ok());
  const BbTree& tree = tree_r.ValueOrDie();
  EXPECT_GT(tree.num_leaves(), 1u);
  EXPECT_GT(tree.depth(), 1u);
  // Exhaustive leaf-bounded search over all leaves must see every point.
  SearchStats stats;
  const auto all = tree.LeafBoundedKnn(points[0], 300, tree.num_leaves() * 2,
                                       &stats);
  std::set<uint32_t> ids;
  for (const auto& nb : all) ids.insert(nb.point_id);
  EXPECT_EQ(ids.size(), 300u);
  EXPECT_EQ(stats.leaves_visited, tree.num_leaves());
}

TEST(BbTreeBuildTest, DuplicatePointsHandled) {
  std::vector<TopicVector> points(100, {0.3, 0.7});
  BbTreeOptions opts;
  opts.max_leaf_size = 8;
  auto tree = BbTree::Build(points, opts);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.ValueOrDie().num_points(), 100u);
}

TEST(BbTreeBuildTest, DeterministicForFixedSeed) {
  const auto points = ClusteredPoints(150, 5, 13);
  BbTreeOptions opts;
  opts.seed = 99;
  auto a = BbTree::Build(points, opts);
  auto b = BbTree::Build(points, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie().num_nodes(), b.ValueOrDie().num_nodes());
  EXPECT_EQ(a.ValueOrDie().num_leaves(), b.ValueOrDie().num_leaves());
}

// ---------------------------------------------------------------- queries ---

class ExactKnnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactKnnPropertyTest, MatchesLinearScan) {
  const auto points = ClusteredPoints(250, 6, GetParam());
  BbTreeOptions opts;
  opts.max_leaf_size = 10;
  opts.seed = GetParam();
  auto tree_r = BbTree::Build(points, opts);
  ASSERT_TRUE(tree_r.ok());
  const BbTree& tree = tree_r.ValueOrDie();

  Rng rng(GetParam() + 1);
  for (int t = 0; t < 25; ++t) {
    const TopicVector q = simplex::SampleUniformSimplex(6, &rng);
    for (size_t k : {1u, 5u, 10u}) {
      const auto exact = tree.ExactKnn(q, k);
      const auto linear = tree.LinearScanKnn(q, k);
      ASSERT_EQ(exact.size(), k);
      ASSERT_EQ(linear.size(), k);
      for (size_t i = 0; i < k; ++i) {
        // Compare divergences (ids may swap on exact ties).
        EXPECT_NEAR(exact[i].divergence, linear[i].divergence, 1e-10)
            << "k=" << k << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactKnnPropertyTest,
                         ::testing::Values(21, 22, 23, 24));

TEST(ExactKnnTest, PrunesComparedToLinearScan) {
  const auto points = ClusteredPoints(500, 6, 31);
  BbTreeOptions opts;
  opts.max_leaf_size = 16;
  auto tree_r = BbTree::Build(points, opts);
  ASSERT_TRUE(tree_r.ok());
  Rng rng(32);
  size_t total_leaves = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    SearchStats stats;
    tree_r.ValueOrDie().ExactKnn(simplex::SampleUniformSimplex(6, &rng), 5,
                                 &stats);
    total_leaves += stats.leaves_visited;
  }
  // On clustered data branch-and-bound should rarely touch every leaf.
  EXPECT_LT(total_leaves,
            trials * tree_r.ValueOrDie().num_leaves());
}

TEST(LeafBoundedKnnTest, RecallImprovesWithLeafBudget) {
  const auto points = ClusteredPoints(400, 6, 41);
  BbTreeOptions opts;
  opts.max_leaf_size = 10;
  auto tree_r = BbTree::Build(points, opts);
  ASSERT_TRUE(tree_r.ok());
  const BbTree& tree = tree_r.ValueOrDie();

  Rng rng(42);
  const size_t k = 10;
  double recall1 = 0.0, recall5 = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const TopicVector q = simplex::SampleUniformSimplex(6, &rng);
    const auto truth = tree.LinearScanKnn(q, k);
    std::set<uint32_t> truth_ids;
    for (const auto& nb : truth) truth_ids.insert(nb.point_id);
    auto count_hits = [&truth_ids](const std::vector<Neighbor>& got) {
      int hits = 0;
      for (const auto& nb : got) hits += truth_ids.count(nb.point_id);
      return hits;
    };
    recall1 += count_hits(tree.LeafBoundedKnn(q, k, 1));
    recall5 += count_hits(tree.LeafBoundedKnn(q, k, 5));
  }
  recall1 /= trials * k;
  recall5 /= trials * k;
  EXPECT_GE(recall5, recall1);
  EXPECT_GT(recall5, 0.5);  // 5 leaves should recover most of the top-10
}

TEST(InflexSearchTest, EpsilonExactShortCircuit) {
  const auto points = ClusteredPoints(200, 5, 51);
  auto tree_r = BbTree::Build(points, {});
  ASSERT_TRUE(tree_r.ok());
  InflexSearchOptions opts;
  opts.epsilon_exact = 1e-9;
  // Query an indexed point exactly.
  const auto result = tree_r.ValueOrDie().InflexSearch(points[17], opts);
  EXPECT_TRUE(result.epsilon_exact);
  ASSERT_EQ(result.neighbors.size(), 1u);
  EXPECT_NEAR(result.neighbors[0].divergence, 0.0, 1e-9);
  // The matched id must reference an identical point (duplicates possible).
  const auto& matched =
      tree_r.ValueOrDie().point(result.neighbors[0].point_id);
  EXPECT_NEAR(simplex::KlDivergence(matched, points[17]), 0.0, 1e-12);
}

TEST(InflexSearchTest, RespectsMaxLeaves) {
  const auto points = ClusteredPoints(400, 6, 61);
  BbTreeOptions bopts;
  bopts.max_leaf_size = 10;
  auto tree_r = BbTree::Build(points, bopts);
  ASSERT_TRUE(tree_r.ok());
  Rng rng(62);
  InflexSearchOptions opts;
  opts.max_leaves = 3;
  opts.use_ad_early_stop = false;
  opts.epsilon_exact = -1.0;
  for (int t = 0; t < 10; ++t) {
    const auto r = tree_r.ValueOrDie().InflexSearch(
        simplex::SampleUniformSimplex(6, &rng), opts);
    EXPECT_LE(r.stats.leaves_visited, 3u);
    EXPECT_FALSE(r.neighbors.empty());
  }
}

TEST(InflexSearchTest, AdEarlyStopVisitsAtMostLeafCap) {
  const auto points = ClusteredPoints(400, 6, 71);
  BbTreeOptions bopts;
  bopts.max_leaf_size = 20;
  auto tree_r = BbTree::Build(points, bopts);
  ASSERT_TRUE(tree_r.ok());
  Rng rng(72);
  InflexSearchOptions opts;  // AD stop enabled, cap 5
  size_t total_leaves = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const auto r = tree_r.ValueOrDie().InflexSearch(
        simplex::SampleUniformSimplex(6, &rng), opts);
    EXPECT_GE(r.stats.leaves_visited, 1u);
    EXPECT_LE(r.stats.leaves_visited, 5u);
    total_leaves += r.stats.leaves_visited;
  }
  // The early stop should trigger before the cap at least sometimes.
  EXPECT_LT(total_leaves, trials * 5u);
}

TEST(InflexSearchTest, NeighborsSortedAscending) {
  const auto points = ClusteredPoints(300, 6, 81);
  auto tree_r = BbTree::Build(points, {});
  ASSERT_TRUE(tree_r.ok());
  Rng rng(82);
  const auto r = tree_r.ValueOrDie().InflexSearch(
      simplex::SampleUniformSimplex(6, &rng), {});
  for (size_t i = 1; i < r.neighbors.size(); ++i) {
    EXPECT_LE(r.neighbors[i - 1].divergence, r.neighbors[i].divergence);
  }
}

TEST(InflexSearchTest, PruningDoesNotChangeVisitedLeafResults) {
  // With and without Eq. 5 pruning the search returns neighbors of equal
  // quality (pruned subtrees cannot contain closer points than δ).
  const auto points = ClusteredPoints(400, 6, 91);
  BbTreeOptions bopts;
  bopts.max_leaf_size = 12;
  auto tree_r = BbTree::Build(points, bopts);
  ASSERT_TRUE(tree_r.ok());
  Rng rng(92);
  for (int t = 0; t < 10; ++t) {
    const TopicVector q = simplex::SampleUniformSimplex(6, &rng);
    InflexSearchOptions with_pruning;
    with_pruning.use_ad_early_stop = false;
    with_pruning.max_leaves = 4;
    InflexSearchOptions without_pruning = with_pruning;
    without_pruning.use_pruning = false;
    const auto a = tree_r.ValueOrDie().InflexSearch(q, with_pruning);
    const auto b = tree_r.ValueOrDie().InflexSearch(q, without_pruning);
    ASSERT_FALSE(a.neighbors.empty());
    ASSERT_FALSE(b.neighbors.empty());
    // The closest retrieved neighbor must agree.
    EXPECT_NEAR(a.neighbors[0].divergence, b.neighbors[0].divergence, 1e-9);
  }
}

// --------------------------------------------------------- batched screens ---

TEST(BatchedScreenTest, InflexSearchTraversalIdenticalWithAndWithoutBatching) {
  // The batched screen only moves WHEN the screen evaluations happen (one
  // sweep at enqueue vs one scalar eval at dequeue); the values are
  // bit-identical, so the result set and every traversal decision must
  // match exactly.
  const auto points = ClusteredPoints(500, 8, 481);
  BbTreeOptions bopts;
  bopts.max_leaf_size = 8;  // deep tree: the pruning heap actually works
  auto tree = BbTree::Build(points, bopts).ValueOrDie();
  Rng rng(482);
  for (int t = 0; t < 20; ++t) {
    const TopicVector q = simplex::SampleUniformSimplex(8, &rng);
    InflexSearchOptions batched;
    batched.use_ad_early_stop = false;
    batched.max_leaves = 24;
    batched.batched_screen = true;
    InflexSearchOptions unbatched = batched;
    unbatched.batched_screen = false;
    const auto a = tree.InflexSearch(q, batched);
    const auto b = tree.InflexSearch(q, unbatched);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << "t=" << t;
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].point_id, b.neighbors[i].point_id);
      EXPECT_DOUBLE_EQ(a.neighbors[i].divergence, b.neighbors[i].divergence);
    }
    EXPECT_EQ(a.epsilon_exact, b.epsilon_exact);
    // Identical pruning decisions → identical traversal counters. (The
    // kl_evaluations totals may legitimately differ: batching screens every
    // queued sibling, the scalar path only the ones whose pruning test
    // runs.)
    EXPECT_EQ(a.stats.subtrees_pruned, b.stats.subtrees_pruned) << "t=" << t;
    EXPECT_EQ(a.stats.leaves_visited, b.stats.leaves_visited) << "t=" << t;
    EXPECT_EQ(a.stats.nodes_visited, b.stats.nodes_visited) << "t=" << t;
  }
}

TEST(BatchedScreenTest, ExactKnnIdenticalIncludingEvaluationCounts) {
  // For ExactKnn the batched sweep performs exactly the per-child screen
  // evaluations it replaces, so even kl_evaluations must be equal.
  const auto points = ClusteredPoints(400, 10, 483);
  auto tree = BbTree::Build(points).ValueOrDie();
  Rng rng(484);
  for (size_t k : {1u, 5u, 20u}) {
    for (int t = 0; t < 8; ++t) {
      const TopicVector q = simplex::SampleUniformSimplex(10, &rng);
      SearchStats on, off;
      const auto a = tree.ExactKnn(q, k, &on, nullptr, true);
      const auto b = tree.ExactKnn(q, k, &off, nullptr, false);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].point_id, b[i].point_id) << "k=" << k << " t=" << t;
        EXPECT_DOUBLE_EQ(a[i].divergence, b[i].divergence);
      }
      EXPECT_EQ(on.kl_evaluations, off.kl_evaluations) << "k=" << k;
      EXPECT_EQ(on.subtrees_pruned, off.subtrees_pruned) << "k=" << k;
      EXPECT_EQ(on.nodes_visited, off.nodes_visited) << "k=" << k;
      EXPECT_EQ(on.leaves_visited, off.leaves_visited) << "k=" << k;
    }
  }
}

// ----------------------------------------------------------- online insert ---

TEST(InsertTest, RejectsDimensionMismatch) {
  auto tree_r = BbTree::Build(ClusteredPoints(50, 4, 301), {});
  ASSERT_TRUE(tree_r.ok());
  EXPECT_FALSE(tree_r.ValueOrDie().Insert({0.5, 0.5}).ok());
}

TEST(InsertTest, InsertedPointsFoundByExactKnn) {
  // ExactKnn must stay exact after inserts: conservative ball enlargement
  // keeps every Eq. 5 bound sound.
  auto tree_r = BbTree::Build(ClusteredPoints(200, 5, 311), {});
  ASSERT_TRUE(tree_r.ok());
  BbTree& tree = tree_r.ValueOrDie();
  Rng rng(312);
  for (int i = 0; i < 25; ++i) {
    auto id = tree.Insert(simplex::SampleUniformSimplex(5, &rng));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(id.ValueOrDie(), 200u + static_cast<uint32_t>(i));
  }
  EXPECT_EQ(tree.num_points(), 225u);
  EXPECT_EQ(tree.num_inserted(), 25u);
  for (int t = 0; t < 20; ++t) {
    const TopicVector q = simplex::SampleUniformSimplex(5, &rng);
    const auto got = tree.ExactKnn(q, 7);
    const auto want = tree.LinearScanKnn(q, 7);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].point_id, want[i].point_id) << "query " << t;
      EXPECT_DOUBLE_EQ(got[i].divergence, want[i].divergence);
    }
  }
}

TEST(InsertTest, InsertedPointServedEpsilonExactByInflexSearch) {
  // A query identical to a freshly inserted point descends along the same
  // closest-center path the insert took, so the ε-exact shortcut fires.
  auto tree_r = BbTree::Build(ClusteredPoints(150, 4, 321), {});
  ASSERT_TRUE(tree_r.ok());
  BbTree& tree = tree_r.ValueOrDie();
  const TopicVector fresh = {0.86, 0.06, 0.05, 0.03};
  auto id = tree.Insert(fresh);
  ASSERT_TRUE(id.ok());
  const auto r = tree.InflexSearch(fresh, {});
  ASSERT_TRUE(r.epsilon_exact);
  ASSERT_EQ(r.neighbors.size(), 1u);
  EXPECT_EQ(r.neighbors[0].point_id, id.ValueOrDie());
}

TEST(InsertTest, DegradationGrowsAndResetsOnRebuild) {
  BbTreeOptions bopts;
  bopts.max_leaf_size = 8;
  auto tree_r = BbTree::Build(ClusteredPoints(100, 4, 331), bopts);
  ASSERT_TRUE(tree_r.ok());
  BbTree& tree = tree_r.ValueOrDie();
  EXPECT_DOUBLE_EQ(tree.degradation(), 0.0);

  Rng rng(332);
  double last = 0.0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(tree.Insert(simplex::SampleUniformSimplex(4, &rng)).ok());
    EXPECT_GE(tree.degradation(), last);
    last = tree.degradation();
  }
  EXPECT_GT(last, 0.2);  // ≥ the inserted fraction alone (30/130)

  // A full rebuild over the same points restores a pristine tree.
  std::vector<TopicVector> all;
  for (uint32_t i = 0; i < tree.num_points(); ++i) all.push_back(tree.point(i));
  auto rebuilt = BbTree::Build(std::move(all), bopts);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.ValueOrDie().num_inserted(), 0u);
  EXPECT_DOUBLE_EQ(rebuilt.ValueOrDie().degradation(), 0.0);
}

// ---------------------------------------------------------- online removal ---

TEST(RemoveTest, RejectsBadInputWithoutMutating) {
  auto tree_r = BbTree::Build(ClusteredPoints(40, 4, 401), {});
  ASSERT_TRUE(tree_r.ok());
  BbTree& tree = tree_r.ValueOrDie();

  const std::vector<uint32_t> out_of_range = {3, 40};
  EXPECT_FALSE(tree.RemovePoints(out_of_range).ok());
  EXPECT_EQ(tree.num_points(), 40u);
  EXPECT_EQ(tree.num_removed(), 0u);

  std::vector<uint32_t> everything(40);
  for (uint32_t i = 0; i < 40; ++i) everything[i] = i;
  EXPECT_FALSE(tree.RemovePoints(everything).ok());
  EXPECT_EQ(tree.num_points(), 40u);
  EXPECT_DOUBLE_EQ(tree.degradation(), 0.0);

  EXPECT_TRUE(tree.RemovePoints({}).ok());  // no-op
  EXPECT_EQ(tree.num_points(), 40u);
}

TEST(RemoveTest, PrunedTreeSearchesMatchFreshBuildOnSurvivors) {
  // After removing a mix of built and inserted points, every search on the
  // pruned tree must agree bit-for-bit with a fresh tree built over the
  // survivors in order: the renumbering is dense and order-preserving, and
  // the KL kernel evaluates every point row in a fixed reduction order, so
  // ids AND divergences are comparable exactly.
  const auto points = ClusteredPoints(180, 5, 411);
  auto tree_r = BbTree::Build(points, {});
  ASSERT_TRUE(tree_r.ok());
  BbTree& tree = tree_r.ValueOrDie();
  Rng rng(412);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tree.Insert(simplex::SampleUniformSimplex(5, &rng)).ok());
  }

  // Drop every 7th id (covers built rows and the inserted tail), plus a
  // duplicate to confirm duplicates are tolerated.
  std::vector<uint32_t> victims;
  for (uint32_t id = 0; id < 200; id += 7) victims.push_back(id);
  victims.push_back(victims.front());
  std::vector<TopicVector> survivors;
  for (uint32_t id = 0; id < 200; ++id) {
    if (id % 7 != 0) survivors.push_back(tree.point(id));
  }

  ASSERT_TRUE(tree.RemovePoints(victims).ok());
  EXPECT_EQ(tree.num_points(), survivors.size());
  EXPECT_EQ(tree.num_removed(), 200u / 7 + 1);
  EXPECT_GT(tree.degradation(), 0.0);

  auto fresh_r = BbTree::Build(survivors, {});
  ASSERT_TRUE(fresh_r.ok());
  const BbTree& fresh = fresh_r.ValueOrDie();

  for (int t = 0; t < 20; ++t) {
    const TopicVector q = simplex::SampleUniformSimplex(5, &rng);
    // Exactness within the pruned tree itself (balls stayed conservative).
    const auto got = tree.ExactKnn(q, 6);
    const auto scan = tree.LinearScanKnn(q, 6);
    // ...and bit-identity against the pristine rebuild.
    const auto want = fresh.ExactKnn(q, 6);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].point_id, scan[i].point_id) << "query " << t;
      EXPECT_EQ(got[i].point_id, want[i].point_id) << "query " << t;
      EXPECT_DOUBLE_EQ(got[i].divergence, scan[i].divergence);
      EXPECT_DOUBLE_EQ(got[i].divergence, want[i].divergence);
    }
  }
}

TEST(RemoveTest, SurvivingPointsKeepTheirDataUnderRenumbering) {
  const auto points = ClusteredPoints(60, 4, 421);
  auto tree_r = BbTree::Build(points, {});
  ASSERT_TRUE(tree_r.ok());
  BbTree& tree = tree_r.ValueOrDie();
  ASSERT_TRUE(tree.RemovePoints(std::vector<uint32_t>{0, 13, 27, 59}).ok());
  // Survivor with old id `old` now answers to old minus dropped-before-it.
  uint32_t new_id = 0;
  for (uint32_t old = 0; old < 60; ++old) {
    if (old == 0 || old == 13 || old == 27 || old == 59) continue;
    const auto got = tree.point(new_id);
    ASSERT_EQ(got.size(), points[old].size());
    for (size_t d = 0; d < got.size(); ++d) {
      EXPECT_EQ(got[d], points[old][d]) << "survivor " << old;
    }
    ++new_id;
  }
  EXPECT_EQ(new_id, tree.num_points());
}

// Regression: degradation() used to compare the largest leaf against
// max_leaf_size, so a build whose degenerate split legitimately left an
// oversized leaf (duplicate-heavy data) reported phantom degradation — and a
// rebuild could never bring it back to 0.
TEST(RemoveTest, DegradationIsZeroAfterBuildEvenWithOversizedLeaves) {
  std::vector<TopicVector> points;
  for (int i = 0; i < 40; ++i) points.push_back({0.7, 0.1, 0.1, 0.1});
  for (int i = 0; i < 4; ++i) {
    points.push_back({0.1, 0.7, 0.1, 0.1});
  }
  BbTreeOptions bopts;
  bopts.max_leaf_size = 4;  // duplicates cannot split below this
  auto tree_r = BbTree::Build(points, bopts);
  ASSERT_TRUE(tree_r.ok());
  BbTree& tree = tree_r.ValueOrDie();
  EXPECT_DOUBLE_EQ(tree.degradation(), 0.0);

  // Degrade it, then rebuild over the same points: back to exactly 0.
  Rng rng(431);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree.Insert(simplex::SampleUniformSimplex(4, &rng)).ok());
  }
  ASSERT_TRUE(tree.RemovePoints(std::vector<uint32_t>{1, 2, 3}).ok());
  EXPECT_GT(tree.degradation(), 0.0);
  std::vector<TopicVector> all;
  for (uint32_t i = 0; i < tree.num_points(); ++i) all.push_back(tree.point(i));
  auto rebuilt = BbTree::Build(std::move(all), bopts);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_DOUBLE_EQ(rebuilt.ValueOrDie().degradation(), 0.0);
}

// ------------------------------------------------- search context lifetime ---

// Regression: a long-lived SearchContext (the thread_local fallback on a
// serving thread) used to keep its worst-case scratch forever and was never
// re-validated against the tree it was about to search, so one context
// serving trees of different dimension back to back was unsound by
// construction. Every entry point now re-binds the scratch per search.
TEST(SearchContextTest, OneContextServesTreesOfDifferentDimension) {
  auto small_r = BbTree::Build(ClusteredPoints(80, 4, 441), {});
  auto big_r = BbTree::Build(ClusteredPoints(600, 16, 442), {});
  ASSERT_TRUE(small_r.ok());
  ASSERT_TRUE(big_r.ok());
  const BbTree& small = small_r.ValueOrDie();
  const BbTree& big = big_r.ValueOrDie();

  SearchContext ctx;
  Rng rng(443);
  for (int t = 0; t < 8; ++t) {
    // Alternate trees through ONE context; answers must match fresh-context
    // searches exactly (same kernel, same traversal — scratch is invisible).
    const TopicVector qs = simplex::SampleUniformSimplex(4, &rng);
    const TopicVector qb = simplex::SampleUniformSimplex(16, &rng);
    const auto got_s = small.ExactKnn(qs, 5, nullptr, &ctx);
    const auto want_s = small.ExactKnn(qs, 5);
    const auto got_b = big.ExactKnn(qb, 5, nullptr, &ctx);
    const auto want_b = big.ExactKnn(qb, 5);
    ASSERT_EQ(got_s.size(), want_s.size());
    ASSERT_EQ(got_b.size(), want_b.size());
    for (size_t i = 0; i < got_s.size(); ++i) {
      EXPECT_EQ(got_s[i].point_id, want_s[i].point_id);
      EXPECT_DOUBLE_EQ(got_s[i].divergence, want_s[i].divergence);
    }
    for (size_t i = 0; i < got_b.size(); ++i) {
      EXPECT_EQ(got_b[i].point_id, want_b[i].point_id);
      EXPECT_DOUBLE_EQ(got_b[i].divergence, want_b[i].divergence);
    }
    // InflexSearch through the same context as well.
    const auto r = small.InflexSearch(qs, {}, &ctx);
    ASSERT_FALSE(r.neighbors.empty());
  }
}

TEST(SearchContextTest, RetainedCapacityIsBoundedAfterWorstCaseSearch) {
  auto small_r = BbTree::Build(ClusteredPoints(60, 4, 451), {});
  // Worst case by construction: one 500-point leaf (max_leaf_size above the
  // point count), so a single search inflates the leaf-scan scratch to 500 —
  // far beyond the release threshold of the small tree's ≤16-point leaves.
  BbTreeOptions one_leaf;
  one_leaf.max_leaf_size = 600;
  auto big_r = BbTree::Build(ClusteredPoints(500, 8, 452), one_leaf);
  // A deep wide tree of larger dimension inflates the other scratch family:
  // the batched-screen gather rows (frontier × stride doubles) plus the
  // sibling queue, which the one-leaf tree never touches.
  BbTreeOptions deep_opts;
  deep_opts.max_leaf_size = 4;
  auto deep_r = BbTree::Build(ClusteredPoints(400, 16, 454), deep_opts);
  ASSERT_TRUE(small_r.ok());
  ASSERT_TRUE(big_r.ok());
  ASSERT_TRUE(deep_r.ok());
  const BbTree& small = small_r.ValueOrDie();
  const BbTree& big = big_r.ValueOrDie();
  const BbTree& deep = deep_r.ValueOrDie();

  SearchContext ctx;
  Rng rng(453);
  // Phase 1 — batched screens on (the default): every descent's bypassed
  // frontier of the deep tree is gathered into ctx's screen rows.
  for (int t = 0; t < 3; ++t) {
    InflexSearchOptions explore;
    explore.use_ad_early_stop = false;
    explore.max_leaves = 32;
    deep.InflexSearch(simplex::SampleUniformSimplex(16, &rng), explore, &ctx);
    deep.ExactKnn(simplex::SampleUniformSimplex(16, &rng), 10, nullptr, &ctx);
  }
  const size_t after_deep = ctx.retained_capacity();
  ASSERT_GT(after_deep, 0u);  // includes the screen gather rows
  // Phase 2 — the one-leaf tree inflates the leaf-scan scratch on top (its
  // dim-8 bind keeps phase 1's screen scratch: not "far beyond" its needs).
  for (int t = 0; t < 3; ++t) {
    big.ExactKnn(simplex::SampleUniformSimplex(8, &rng), 10, nullptr, &ctx);
  }
  const size_t inflated = ctx.retained_capacity();
  ASSERT_GT(inflated, after_deep);

  // Re-binding to the small tree must release the far-oversized buffers
  // instead of pinning the high-water mark forever.
  small.ExactKnn(simplex::SampleUniformSimplex(4, &rng), 5, nullptr, &ctx);
  const size_t rebound = ctx.retained_capacity();
  EXPECT_LT(rebound, inflated);

  // Steady-state reuse on one tree is stable (hysteresis: no realloc churn).
  small.ExactKnn(simplex::SampleUniformSimplex(4, &rng), 5, nullptr, &ctx);
  EXPECT_EQ(ctx.retained_capacity(), rebound);
}

}  // namespace
}  // namespace bbtree
}  // namespace inflex
