#!/bin/sh
# Loopback smoke test of the network serving front end: builds a small
# dataset + index with inflex_cli, boots the inflex_serve daemon on an
# ephemeral port, and drives it with the inflex_serve client mode — ping,
# single query, a pipelined query run, and a catalog delta — then sends
# SIGTERM and asserts the graceful-shutdown markers. Registered as a CTest
# test; $1 is the path to inflex_cli and $2 the path to inflex_serve.
set -eu

CLI="$1"
SERVE="$2"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

echo "== generate + build-index"
"$CLI" generate --out data --users 250 --topics 4 --items 100 --seed 11 \
  > /dev/null
"$CLI" build-index --data data --out index.bin --h 16 --ell 10 \
  --snapshots 30 > /dev/null

echo "== start daemon (ephemeral port)"
"$SERVE" --data data --index index.bin --listen 0 --workers 2 \
  > serve.log 2>&1 &
SERVE_PID=$!
i=0
while ! grep -q "listening on" serve.log 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "daemon did not start; log:" >&2
    cat serve.log >&2
    exit 1
  fi
  sleep 0.1
done
PORT="$(sed -n 's/^listening on [0-9.]*:\([0-9]*\).*/\1/p' serve.log)"
[ -n "$PORT" ] || { echo "could not parse port from serve.log" >&2; exit 1; }

echo "== ping"
"$SERVE" --connect "$PORT" --ping | grep -q "ping ok | epoch 0"

echo "== query"
"$SERVE" --connect "$PORT" --gamma 0.7,0.1,0.1,0.1 --k 5 | grep -q "seeds:"

echo "== repeated queries (cache on the server side)"
"$SERVE" --connect "$PORT" --gamma 0.25,0.25,0.25,0.25 --k 5 --count 16 \
  --quiet | grep -q "16 ok, 0 overloaded, 0 expired, 0 failed"

echo "== catalog delta over the wire"
"$SERVE" --connect "$PORT" --delta-id smoke-item \
  --gamma 0.995,0.002,0.002,0.001 > delta.log
grep -q "delta smoke-item:" delta.log

echo "== graceful shutdown"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
grep -q "shutting down: draining in-flight requests" serve.log
grep -q "net serving summary:" serve.log
grep -q "engine summary:" serve.log
grep -q "drained cleanly" serve.log

echo "net smoke: OK"
