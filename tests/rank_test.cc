#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "rank/aggregators.h"
#include "rank/kemeny.h"
#include "rank/kendall_tau.h"
#include "rank/local_kemenization.h"
#include "rank/preference_matrix.h"
#include "rank/ranked_list.h"
#include "util/random.h"

namespace inflex {
namespace rank {
namespace {

// -------------------------------------------------------------- validation ---

TEST(RankedListTest, ValidateDetectsDuplicates) {
  EXPECT_TRUE(ValidateRankedList({1, 2, 3}).ok());
  EXPECT_FALSE(ValidateRankedList({1, 2, 1}).ok());
  EXPECT_TRUE(ValidateRankedList({}).ok());
}

TEST(RankedListTest, UnionPreservesFirstAppearanceOrder) {
  const RankedList u = UnionOfLists({{3, 1, 2}, {2, 4}, {5}});
  EXPECT_EQ(u, (RankedList{3, 1, 2, 4, 5}));
}

// ------------------------------------------------------------ Kendall full ---

TEST(KendallTauFullTest, IdenticalListsZero) {
  EXPECT_DOUBLE_EQ(KendallTauFull({1, 2, 3, 4}, {1, 2, 3, 4}).ValueOrDie(),
                   0.0);
}

TEST(KendallTauFullTest, ReversedListsOne) {
  EXPECT_DOUBLE_EQ(KendallTauFull({1, 2, 3, 4}, {4, 3, 2, 1}).ValueOrDie(),
                   1.0);
}

TEST(KendallTauFullTest, SingleSwap) {
  // One adjacent transposition = 1 discordant pair out of C(4,2)=6.
  EXPECT_DOUBLE_EQ(KendallTauFull({1, 2, 3, 4}, {2, 1, 3, 4}).ValueOrDie(),
                   1.0 / 6.0);
}

TEST(KendallTauFullTest, UnnormalizedCountsInversions) {
  EXPECT_DOUBLE_EQ(
      KendallTauFull({1, 2, 3}, {3, 2, 1}, /*normalized=*/false).ValueOrDie(),
      3.0);
}

TEST(KendallTauFullTest, SymmetricInArguments) {
  Rng rng(3);
  RankedList a(20), b(20);
  std::iota(a.begin(), a.end(), 0u);
  b = a;
  rng.Shuffle(&a);
  rng.Shuffle(&b);
  EXPECT_DOUBLE_EQ(KendallTauFull(a, b).ValueOrDie(),
                   KendallTauFull(b, a).ValueOrDie());
}

TEST(KendallTauFullTest, MatchesBruteForceOnRandomPermutations) {
  Rng rng(5);
  for (int t = 0; t < 30; ++t) {
    RankedList a(12), b(12);
    std::iota(a.begin(), a.end(), 0u);
    b = a;
    rng.Shuffle(&a);
    rng.Shuffle(&b);
    // Brute force discordant pair count.
    std::vector<size_t> pos_a(12), pos_b(12);
    for (size_t i = 0; i < 12; ++i) {
      pos_a[a[i]] = i;
      pos_b[b[i]] = i;
    }
    double brute = 0;
    for (Item i = 0; i < 12; ++i) {
      for (Item j = i + 1; j < 12; ++j) {
        if ((pos_a[i] < pos_a[j]) != (pos_b[i] < pos_b[j])) brute += 1.0;
      }
    }
    EXPECT_DOUBLE_EQ(
        KendallTauFull(a, b, /*normalized=*/false).ValueOrDie(), brute);
  }
}

TEST(KendallTauFullTest, RejectsBadInput) {
  EXPECT_FALSE(KendallTauFull({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(KendallTauFull({1, 1}, {1, 2}).ok());
  EXPECT_FALSE(KendallTauFull({1, 2}, {1, 3}).ok());  // different item sets
}

// ----------------------------------------------------------- Kendall top-ℓ ---

TEST(KendallTauTopLTest, IdenticalListsZero) {
  EXPECT_DOUBLE_EQ(KendallTauTopL({5, 9, 2}, {5, 9, 2}).ValueOrDie(), 0.0);
}

TEST(KendallTauTopLTest, DisjointListsOne) {
  // Completely disjoint top-ℓ lists are at the maximum distance.
  EXPECT_DOUBLE_EQ(KendallTauTopL({1, 2, 3}, {4, 5, 6}).ValueOrDie(), 1.0);
}

TEST(KendallTauTopLTest, HandComputedFourCases) {
  // a = [1,2,3], b = [1,3,4], p = 0.5.
  // Pairs over union {1,2,3,4}:
  //  {1,2}: both in a (1≺2); only 1 in b → case 2, 1 ahead: penalty 0.
  //  {1,3}: in both, same order: 0.
  //  {1,4}: both in b (1≺4); only 1 in a → case 2: 0.
  //  {2,3}: both in a (2≺3); only 3 in b → case 2, present item 3 must be
  //         ahead but a says 2≺3: penalty 1.
  //  {2,4}: 2 only in a, 4 only in b → case 3: penalty 1.
  //  {3,4}: both in b (3≺4); only 3 in a → case 2: 0.
  // Total = 2; normalizer = ℓ² + ℓ(ℓ−1)p = 9 + 3 = 12.
  TopLKendallOptions opts;
  opts.normalized = false;
  EXPECT_DOUBLE_EQ(KendallTauTopL({1, 2, 3}, {1, 3, 4}, opts).ValueOrDie(),
                   2.0);
  EXPECT_DOUBLE_EQ(KendallTauTopL({1, 2, 3}, {1, 3, 4}).ValueOrDie(),
                   2.0 / 12.0);
}

TEST(KendallTauTopLTest, PenaltyParameterMatters) {
  // Lists sharing no order info within their exclusive tails.
  TopLKendallOptions p0;
  p0.p = 0.0;
  p0.normalized = false;
  TopLKendallOptions p1;
  p1.p = 1.0;
  p1.normalized = false;
  const RankedList a = {1, 2, 3};
  const RankedList b = {4, 5, 6};
  // Case-4 pairs: {1,2},{1,3},{2,3},{4,5},{4,6},{5,6} = 6 pairs; case-3: 9.
  EXPECT_DOUBLE_EQ(KendallTauTopL(a, b, p0).ValueOrDie(), 9.0);
  EXPECT_DOUBLE_EQ(KendallTauTopL(a, b, p1).ValueOrDie(), 15.0);
}

TEST(KendallTauTopLTest, SymmetricInArguments) {
  EXPECT_DOUBLE_EQ(KendallTauTopL({1, 2, 3}, {3, 5, 1}).ValueOrDie(),
                   KendallTauTopL({3, 5, 1}, {1, 2, 3}).ValueOrDie());
}

TEST(KendallTauTopLTest, ValueInUnitInterval) {
  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    RankedList a, b;
    for (Item i = 0; i < 10; ++i) {
      a.push_back(static_cast<Item>(rng.UniformInt(1000) + 1000 * i));
      b.push_back(static_cast<Item>(rng.UniformInt(1000) + 1000 * i + 500));
    }
    const double d = KendallTauTopL(a, b).ValueOrDie();
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(KendallTauTopLTest, RejectsBadInput) {
  EXPECT_FALSE(KendallTauTopL({}, {}).ok());
  EXPECT_FALSE(KendallTauTopL({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(KendallTauTopL({1, 1}, {1, 2}).ok());
  TopLKendallOptions bad;
  bad.p = 1.5;
  EXPECT_FALSE(KendallTauTopL({1, 2}, {3, 4}, bad).ok());
}

// -------------------------------------------------------- preference matrix ---

TEST(PreferenceMatrixTest, CountsPairwiseVotes) {
  auto pm = PreferenceMatrix::Build({{1, 2, 3}, {2, 1, 3}, {1, 3, 2}}, {});
  ASSERT_TRUE(pm.ok());
  const auto& m = pm.ValueOrDie();
  EXPECT_DOUBLE_EQ(m.Preference(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.Preference(2, 1), 1.0);
  EXPECT_TRUE(m.MajorityPrefers(1, 2));
  EXPECT_FALSE(m.MajorityPrefers(2, 1));
  EXPECT_DOUBLE_EQ(m.Preference(1, 3), 3.0);
}

TEST(PreferenceMatrixTest, PresentBeatsAbsent) {
  auto pm = PreferenceMatrix::Build({{1, 2}, {3, 4}}, {});
  ASSERT_TRUE(pm.ok());
  // 1 present only in list 1, 3 present only in list 2: one vote each way.
  EXPECT_DOUBLE_EQ(pm.ValueOrDie().Preference(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(pm.ValueOrDie().Preference(3, 1), 1.0);
}

TEST(PreferenceMatrixTest, WeightsScaleVotes) {
  auto pm = PreferenceMatrix::Build({{1, 2}, {2, 1}}, {3.0, 1.0});
  ASSERT_TRUE(pm.ok());
  EXPECT_DOUBLE_EQ(pm.ValueOrDie().Preference(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(pm.ValueOrDie().Preference(2, 1), 1.0);
  EXPECT_TRUE(pm.ValueOrDie().MajorityPrefers(1, 2));
}

TEST(PreferenceMatrixTest, RejectsBadInput) {
  EXPECT_FALSE(PreferenceMatrix::Build({}, {}).ok());
  EXPECT_FALSE(PreferenceMatrix::Build({{1, 2}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(PreferenceMatrix::Build({{1, 1}}, {}).ok());
  EXPECT_FALSE(PreferenceMatrix::Build({{1, 2}}, {-1.0}).ok());
}

// ---------------------------------------------------------------- Borda ---

TEST(BordaTest, UnweightedKnownExample) {
  // Lists over {a=1,b=2,c=3}: ℓ = 3; scores: rank r gets ℓ − r.
  auto scores = WeightedBordaScores({{1, 2, 3}, {2, 1, 3}}, {});
  ASSERT_TRUE(scores.ok());
  // Union order: 1, 2, 3.
  // 1: (3−0) + (3−1) = 5;  2: (3−1)+(3−0) = 5;  3: 1+1 = 2.
  EXPECT_DOUBLE_EQ(scores.ValueOrDie()[0], 5.0);
  EXPECT_DOUBLE_EQ(scores.ValueOrDie()[1], 5.0);
  EXPECT_DOUBLE_EQ(scores.ValueOrDie()[2], 2.0);
}

TEST(BordaTest, WeightsShiftTheWinner) {
  const std::vector<RankedList> lists = {{1, 2}, {2, 1}};
  auto unweighted = WeightedBordaScores(lists, {});
  ASSERT_TRUE(unweighted.ok());
  EXPECT_DOUBLE_EQ(unweighted.ValueOrDie()[0], unweighted.ValueOrDie()[1]);
  auto weighted = WeightedBordaScores(lists, {5.0, 1.0});
  ASSERT_TRUE(weighted.ok());
  EXPECT_GT(weighted.ValueOrDie()[0], weighted.ValueOrDie()[1]);  // item 1 wins
}

TEST(BordaTest, AbsentItemContributesNothing) {
  auto scores = WeightedBordaScores({{1, 2}, {3, 4}}, {});
  ASSERT_TRUE(scores.ok());
  // Every item appears in exactly one list at symmetric positions.
  EXPECT_DOUBLE_EQ(scores.ValueOrDie()[0], scores.ValueOrDie()[2]);  // 1 vs 3
  EXPECT_DOUBLE_EQ(scores.ValueOrDie()[1], scores.ValueOrDie()[3]);  // 2 vs 4
}

// --------------------------------------------------------------- Copeland ---

TEST(CopelandTest, CondorcetWinnerGetsTopScore) {
  // Item 1 beats every other item in a majority of lists.
  auto scores =
      WeightedCopelandScores({{1, 2, 3}, {1, 3, 2}, {2, 1, 3}}, {});
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores.ValueOrDie()[0], 2.0);  // item 1 beats 2 and 3
  EXPECT_GT(scores.ValueOrDie()[0], scores.ValueOrDie()[1]);
  EXPECT_GT(scores.ValueOrDie()[0], scores.ValueOrDie()[2]);
}

TEST(CopelandTest, WeightedMajorityFlips) {
  const std::vector<RankedList> lists = {{1, 2}, {2, 1}, {2, 1}};
  auto unweighted = WeightedCopelandScores(lists, {});
  ASSERT_TRUE(unweighted.ok());
  EXPECT_GT(unweighted.ValueOrDie()[1], unweighted.ValueOrDie()[0]);
  // Give the first list overwhelming weight: item 1 now wins.
  auto weighted = WeightedCopelandScores(lists, {10.0, 1.0, 1.0});
  ASSERT_TRUE(weighted.ok());
  EXPECT_GT(weighted.ValueOrDie()[0], weighted.ValueOrDie()[1]);
}

// ------------------------------------------------------ local kemenization ---

TEST(LocalKemenizationTest, FixesObviousInversion) {
  const std::vector<RankedList> lists = {{1, 2, 3}, {1, 2, 3}, {1, 2, 3}};
  RankedList tau = {3, 2, 1};
  ASSERT_TRUE(LocalKemenization(lists, {}, &tau).ok());
  EXPECT_EQ(tau, (RankedList{1, 2, 3}));
}

TEST(LocalKemenizationTest, NeverWorsensKemenyObjective) {
  Rng rng(11);
  for (int t = 0; t < 40; ++t) {
    std::vector<RankedList> lists;
    for (int j = 0; j < 4; ++j) {
      RankedList l(8);
      std::iota(l.begin(), l.end(), 0u);
      rng.Shuffle(&l);
      l.resize(5);
      lists.push_back(l);
    }
    RankedList tau = UnionOfLists(lists);
    rng.Shuffle(&tau);
    const double before = KemenyObjective(tau, lists, {}).ValueOrDie();
    RankedList improved = tau;
    ASSERT_TRUE(LocalKemenization(lists, {}, &improved).ok());
    const double after = KemenyObjective(improved, lists, {}).ValueOrDie();
    EXPECT_LE(after, before + 1e-9) << "trial " << t;
  }
}

TEST(LocalKemenizationTest, ResultIsLocallyOptimal) {
  Rng rng(13);
  for (int t = 0; t < 20; ++t) {
    std::vector<RankedList> lists;
    for (int j = 0; j < 3; ++j) {
      RankedList l(6);
      std::iota(l.begin(), l.end(), 0u);
      rng.Shuffle(&l);
      lists.push_back(l);
    }
    RankedList tau(6);
    std::iota(tau.begin(), tau.end(), 0u);
    rng.Shuffle(&tau);
    ASSERT_TRUE(LocalKemenization(lists, {}, &tau).ok());
    // No adjacent pair should be majority-inverted.
    auto pm = PreferenceMatrix::Build(lists, {}).ValueOrDie();
    for (size_t i = 0; i + 1 < tau.size(); ++i) {
      EXPECT_FALSE(pm.MajorityPrefers(tau[i + 1], tau[i]))
          << "trial " << t << " position " << i;
    }
  }
}

// ------------------------------------------------------------- aggregation ---

TEST(AggregateRankingsTest, ReturnsTopK) {
  const std::vector<RankedList> lists = {{1, 2, 3, 4}, {2, 1, 3, 5}};
  AggregationOptions opts;
  auto r = AggregateRankings(lists, {}, 3, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().size(), 3u);
}

TEST(AggregateRankingsTest, KLargerThanUnionReturnsUnion) {
  const std::vector<RankedList> lists = {{1, 2}, {2, 3}};
  auto r = AggregateRankings(lists, {}, 100, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().size(), 3u);  // union is {1,2,3}
}

TEST(AggregateRankingsTest, PerfectConsensusIsRecovered) {
  const RankedList consensus = {7, 3, 9, 1, 5};
  const std::vector<RankedList> lists(4, consensus);
  for (auto method : {AggregationMethod::kBorda, AggregationMethod::kCopeland}) {
    AggregationOptions opts;
    opts.method = method;
    auto r = AggregateRankings(lists, {}, 5, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie(), consensus);
  }
}

TEST(AggregateRankingsTest, WeightsPullTowardClosestList) {
  const std::vector<RankedList> lists = {{1, 2, 3}, {4, 5, 6}, {4, 6, 5}};
  AggregationOptions opts;
  opts.method = AggregationMethod::kCopeland;
  // Dominant weight on the first list: its items must lead the output.
  auto r = AggregateRankings(lists, {100.0, 1.0, 1.0}, 3, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), (RankedList{1, 2, 3}));
}

TEST(AggregateRankingsTest, UnweightedOptionIgnoresWeights) {
  const std::vector<RankedList> lists = {{1, 2}, {2, 1}, {2, 1}};
  AggregationOptions opts;
  opts.use_weights = false;
  auto r = AggregateRankings(lists, {100.0, 1.0, 1.0}, 2, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie()[0], 2u);  // majority wins despite the weights
}

TEST(AggregateRankingsTest, DeterministicOnTies) {
  const std::vector<RankedList> lists = {{1, 2}, {2, 1}};
  auto a = AggregateRankings(lists, {}, 2, {});
  auto b = AggregateRankings(lists, {}, 2, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie(), b.ValueOrDie());
}

TEST(AggregateRankingsTest, AggregationApproximatesKemeny) {
  // The aggregated list should score no worse on the Kemeny objective than
  // the best single input list (a weak but meaningful quality bar).
  Rng rng(17);
  for (int t = 0; t < 20; ++t) {
    std::vector<RankedList> lists;
    for (int j = 0; j < 5; ++j) {
      RankedList l(10);
      std::iota(l.begin(), l.end(), 0u);
      // Mild perturbations of a common base order.
      for (int s = 0; s < 3; ++s) {
        const size_t i = rng.UniformInt(9);
        std::swap(l[i], l[i + 1]);
      }
      lists.push_back(l);
    }
    AggregationOptions opts;
    opts.method = AggregationMethod::kCopeland;
    auto agg = AggregateRankings(lists, {}, 10, opts);
    ASSERT_TRUE(agg.ok());
    const double agg_cost =
        KemenyObjective(agg.ValueOrDie(), lists, {}).ValueOrDie();
    double best_single = 1e9;
    for (const auto& l : lists) {
      best_single =
          std::min(best_single, KemenyObjective(l, lists, {}).ValueOrDie());
    }
    EXPECT_LE(agg_cost, best_single + 1e-9) << "trial " << t;
  }
}

TEST(AggregateRankingsTest, RejectsBadInput) {
  EXPECT_FALSE(AggregateRankings({}, {}, 3, {}).ok());
  EXPECT_FALSE(AggregateRankings({{1, 2}}, {}, 0, {}).ok());
  EXPECT_FALSE(AggregateRankings({{1, 1}}, {}, 2, {}).ok());
  EXPECT_FALSE(AggregateRankings({{1, 2}}, {1.0, 2.0}, 2, {}).ok());
}

TEST(KemenyObjectiveTest, ZeroForIdenticalInput) {
  const RankedList l = {4, 2, 9};
  EXPECT_DOUBLE_EQ(KemenyObjective(l, {l, l}, {}).ValueOrDie(), 0.0);
}

// ------------------------------------------------------------ exact Kemeny ---

TEST(ExactKemenyTest, ConsensusHasZeroCost) {
  const RankedList l = {3, 1, 4, 2};
  auto r = ExactKemenyAggregate({l, l, l}, {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie(), l);
  EXPECT_DOUBLE_EQ(PairwiseKemenyCost(l, {l, l, l}, {}).ValueOrDie(), 0.0);
}

TEST(ExactKemenyTest, MatchesBruteForceOnSmallInstances) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<RankedList> lists;
    for (int j = 0; j < 5; ++j) {
      RankedList l(5);
      std::iota(l.begin(), l.end(), 10u);
      rng.Shuffle(&l);
      lists.push_back(l);
    }
    auto dp = ExactKemenyAggregate(lists, {});
    ASSERT_TRUE(dp.ok());
    const double dp_cost =
        PairwiseKemenyCost(dp.ValueOrDie(), lists, {}).ValueOrDie();
    // Brute force over all 5! permutations.
    RankedList perm = {10, 11, 12, 13, 14};
    double best = 1e18;
    std::sort(perm.begin(), perm.end());
    do {
      best = std::min(best, PairwiseKemenyCost(perm, lists, {}).ValueOrDie());
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(dp_cost, best, 1e-9) << "trial " << trial;
  }
}

TEST(ExactKemenyTest, NeverWorseThanHeuristicAggregators) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<RankedList> lists;
    for (int j = 0; j < 4; ++j) {
      RankedList l(9);
      std::iota(l.begin(), l.end(), 0u);
      rng.Shuffle(&l);
      lists.push_back(l);
    }
    auto exact = ExactKemenyAggregate(lists, {});
    ASSERT_TRUE(exact.ok());
    const double optimum =
        PairwiseKemenyCost(exact.ValueOrDie(), lists, {}).ValueOrDie();
    for (auto method : {AggregationMethod::kBorda, AggregationMethod::kCopeland,
                        AggregationMethod::kMarkovChainMc4}) {
      AggregationOptions opts;
      opts.method = method;
      auto heur = AggregateRankings(lists, {}, 9, opts);
      ASSERT_TRUE(heur.ok());
      const double cost =
          PairwiseKemenyCost(heur.ValueOrDie(), lists, {}).ValueOrDie();
      EXPECT_GE(cost + 1e-9, optimum) << static_cast<int>(method);
      // Sanity against the cited approximation bounds: nothing remotely
      // near-optimal should blow past 5x on mild random instances.
      if (optimum > 0.0) {
        EXPECT_LE(cost, 5.0 * optimum + 1e-9) << static_cast<int>(method);
      }
    }
  }
}

TEST(ExactKemenyTest, WeightedInstanceFollowsDominantList) {
  const std::vector<RankedList> lists = {{1, 2, 3}, {3, 2, 1}, {3, 2, 1}};
  auto unweighted = ExactKemenyAggregate(lists, {});
  ASSERT_TRUE(unweighted.ok());
  EXPECT_EQ(unweighted.ValueOrDie(), (RankedList{3, 2, 1}));
  auto weighted = ExactKemenyAggregate(lists, {10.0, 1.0, 1.0});
  ASSERT_TRUE(weighted.ok());
  EXPECT_EQ(weighted.ValueOrDie(), (RankedList{1, 2, 3}));
}

TEST(ExactKemenyTest, RejectsOversizedUnions) {
  RankedList big(25);
  std::iota(big.begin(), big.end(), 0u);
  EXPECT_FALSE(ExactKemenyAggregate({big}, {}).ok());
  RankedList ok_list(10);
  std::iota(ok_list.begin(), ok_list.end(), 0u);
  EXPECT_FALSE(ExactKemenyAggregate({ok_list}, {}, /*max_union_size=*/5).ok());
}

TEST(PairwiseKemenyCostTest, Validation) {
  EXPECT_FALSE(PairwiseKemenyCost({1, 2}, {{1, 2, 3}}, {}).ok());  // subset
  EXPECT_FALSE(PairwiseKemenyCost({1, 2, 9}, {{1, 2, 3}}, {}).ok());
}

// ---------------------------------------------------------------- footrule ---

TEST(FootruleTest, KnownValues) {
  EXPECT_DOUBLE_EQ(
      FootruleDistance({1, 2, 3}, {1, 2, 3}).ValueOrDie(), 0.0);
  // Reversal of 3 items: |0−2| + |1−1| + |2−0| = 4; max = ⌊9/2⌋ = 4.
  EXPECT_DOUBLE_EQ(
      FootruleDistance({1, 2, 3}, {3, 2, 1}).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(FootruleDistance({1, 2, 3}, {3, 2, 1},
                                    /*normalized=*/false)
                       .ValueOrDie(),
                   4.0);
}

TEST(FootruleTest, DiaconisGrahamInequality) {
  // For permutations: Kendall ≤ Footrule ≤ 2 · Kendall (unnormalized).
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    RankedList a(12), b(12);
    std::iota(a.begin(), a.end(), 0u);
    b = a;
    rng.Shuffle(&a);
    rng.Shuffle(&b);
    const double kendall =
        KendallTauFull(a, b, /*normalized=*/false).ValueOrDie();
    const double footrule =
        FootruleDistance(a, b, /*normalized=*/false).ValueOrDie();
    EXPECT_LE(kendall, footrule + 1e-9);
    EXPECT_LE(footrule, 2.0 * kendall + 1e-9);
  }
}

TEST(FootruleTest, Validation) {
  EXPECT_FALSE(FootruleDistance({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(FootruleDistance({1, 2}, {1, 3}).ok());
  EXPECT_FALSE(FootruleDistance({1, 1}, {1, 2}).ok());
}

}  // namespace
}  // namespace rank
}  // namespace inflex
