#include <gtest/gtest.h>

#include <cmath>

#include "simplex/divergence.h"
#include "simplex/ilr.h"
#include "simplex/sampling.h"
#include "simplex/topic_distribution.h"
#include "util/random.h"

namespace inflex {
namespace simplex {
namespace {

// ------------------------------------------------------ TopicDistribution ---

TEST(TopicDistributionTest, CreateValid) {
  auto td = TopicDistribution::Create({0.2, 0.3, 0.5});
  ASSERT_TRUE(td.ok());
  EXPECT_EQ(td.ValueOrDie().num_topics(), 3u);
  EXPECT_DOUBLE_EQ(td.ValueOrDie()[2], 0.5);
}

TEST(TopicDistributionTest, CreateRejectsBadInput) {
  EXPECT_FALSE(TopicDistribution::Create({}).ok());
  EXPECT_FALSE(TopicDistribution::Create({0.5, 0.6}).ok());   // sums to 1.1
  EXPECT_FALSE(TopicDistribution::Create({-0.1, 1.1}).ok());  // negative
  EXPECT_FALSE(TopicDistribution::Create({0.5, NAN}).ok());
}

TEST(TopicDistributionTest, CreateRenormalizesWithinTolerance) {
  auto td = TopicDistribution::Create({0.2500001, 0.7499999});
  ASSERT_TRUE(td.ok());
  double sum = 0.0;
  for (double p : td.ValueOrDie().probs()) sum += p;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(TopicDistributionTest, FromUnnormalized) {
  auto td = TopicDistribution::FromUnnormalized({1.0, 3.0});
  ASSERT_TRUE(td.ok());
  EXPECT_NEAR(td.ValueOrDie()[0], 0.25, 1e-12);
  EXPECT_NEAR(td.ValueOrDie()[1], 0.75, 1e-12);
  EXPECT_FALSE(TopicDistribution::FromUnnormalized({0.0, 0.0}).ok());
  EXPECT_FALSE(TopicDistribution::FromUnnormalized({-1.0, 2.0}).ok());
}

TEST(TopicDistributionTest, UniformAndDelta) {
  const auto u = TopicDistribution::Uniform(4);
  for (size_t z = 0; z < 4; ++z) EXPECT_DOUBLE_EQ(u[z], 0.25);
  const auto d = TopicDistribution::Delta(4, 2);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(TopicDistributionTest, SmoothedTowardUniform) {
  const auto d = TopicDistribution::Delta(2, 0);
  const auto s = d.SmoothedTowardUniform(0.1);
  EXPECT_NEAR(s[0], 0.95, 1e-12);
  EXPECT_NEAR(s[1], 0.05, 1e-12);
  const auto full = d.SmoothedTowardUniform(1.0);
  EXPECT_NEAR(full[0], 0.5, 1e-12);
}

TEST(TopicDistributionTest, ToStringRendersProbabilities) {
  auto td = TopicDistribution::Create({0.25, 0.75}).ValueOrDie();
  EXPECT_EQ(td.ToString(), "(0.250, 0.750)");
}

// -------------------------------------------------------------- divergence ---

TEST(KlDivergenceTest, ZeroIffIdentical) {
  const TopicVector p = {0.1, 0.4, 0.5};
  EXPECT_DOUBLE_EQ(KlDivergence(p, p), 0.0);
  const TopicVector q = {0.2, 0.3, 0.5};
  EXPECT_GT(KlDivergence(p, q), 0.0);
  EXPECT_GT(KlDivergence(q, p), 0.0);
}

TEST(KlDivergenceTest, KnownValue) {
  // KL((0.5,0.5) || (0.25,0.75)) = 0.5 ln 2 + 0.5 ln(2/3).
  const double expected = 0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0);
  EXPECT_NEAR(KlDivergence({0.5, 0.5}, {0.25, 0.75}), expected, 1e-12);
}

TEST(KlDivergenceTest, IsAsymmetric) {
  const TopicVector p = {0.9, 0.1};
  const TopicVector q = {0.5, 0.5};
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
}

TEST(KlDivergenceTest, HandlesZerosViaSmoothing) {
  const TopicVector p = {1.0, 0.0};
  const TopicVector q = {0.0, 1.0};
  const double d = KlDivergence(p, q);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_NEAR(d, KlMaxBound(), 1e-9);
  // Zero entries in p contribute nothing.
  EXPECT_DOUBLE_EQ(KlDivergence({0.0, 1.0}, {0.5, 0.5}), std::log(2.0));
}

TEST(KlDivergenceTest, SymmetrizedIsSymmetric) {
  const TopicVector p = {0.7, 0.2, 0.1};
  const TopicVector q = {0.1, 0.2, 0.7};
  EXPECT_DOUBLE_EQ(SymmetrizedKl(p, q), SymmetrizedKl(q, p));
  EXPECT_GT(SymmetrizedKl(p, q), 0.0);
}

TEST(KlDivergenceTest, TriangleInequalityFails) {
  // KL is not a metric: exhibit a concrete triangle-inequality violation,
  // the reason the paper needs a Bregman (not metric) index structure.
  const TopicVector a = {0.98, 0.02};
  const TopicVector b = {0.5, 0.5};
  const TopicVector c = {0.02, 0.98};
  EXPECT_GT(KlDivergence(a, c), KlDivergence(a, b) + KlDivergence(b, c));
}

TEST(EntropyTest, BoundsAndKnownValues) {
  EXPECT_DOUBLE_EQ(Entropy({1.0, 0.0}), 0.0);
  EXPECT_NEAR(Entropy({0.5, 0.5}), std::log(2.0), 1e-12);
  // Uniform maximizes entropy.
  EXPECT_GT(Entropy({0.25, 0.25, 0.25, 0.25}), Entropy({0.7, 0.1, 0.1, 0.1}));
}

TEST(SquaredEuclideanTest, Basic) {
  EXPECT_DOUBLE_EQ(SquaredEuclidean({1, 2}, {4, 6}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredEuclidean({1, 2}, {1, 2}), 0.0);
}

// --------------------------------------------------------------------- ILR ---

TEST(IlrTest, DimensionIsZMinusOne) {
  const auto y = IlrTransform({0.2, 0.3, 0.5});
  EXPECT_EQ(y.size(), 2u);
}

TEST(IlrTest, UniformMapsToOrigin) {
  const auto y = IlrTransform({0.25, 0.25, 0.25, 0.25});
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(IlrTest, RoundTripThroughInverse) {
  Rng rng(4);
  for (int t = 0; t < 50; ++t) {
    const TopicVector x = SampleUniformSimplex(5, &rng);
    const TopicVector back = IlrInverse(IlrTransform(x));
    ASSERT_EQ(back.size(), x.size());
    for (size_t d = 0; d < x.size(); ++d) {
      EXPECT_NEAR(back[d], x[d], 1e-9) << "trial " << t << " dim " << d;
    }
  }
}

TEST(IlrTest, IsometryOnAitchisonMetric) {
  // The ILR transform is an isometry between the Aitchison geometry and
  // Euclidean space: Euclidean distance of images equals the Aitchison
  // distance of the originals (computed via CLR differences).
  Rng rng(6);
  for (int t = 0; t < 20; ++t) {
    const TopicVector a = SampleUniformSimplex(4, &rng);
    const TopicVector b = SampleUniformSimplex(4, &rng);
    // Aitchison distance via centered log-ratio.
    auto clr = [](const TopicVector& x) {
      std::vector<double> out(x.size());
      double mean_log = 0.0;
      for (double v : x) mean_log += std::log(v);
      mean_log /= static_cast<double>(x.size());
      for (size_t i = 0; i < x.size(); ++i) out[i] = std::log(x[i]) - mean_log;
      return out;
    };
    const auto ca = clr(a), cb = clr(b);
    double aitchison_sq = 0.0;
    for (size_t i = 0; i < ca.size(); ++i) {
      aitchison_sq += (ca[i] - cb[i]) * (ca[i] - cb[i]);
    }
    const auto ya = IlrTransform(a), yb = IlrTransform(b);
    double euclid_sq = 0.0;
    for (size_t i = 0; i < ya.size(); ++i) {
      euclid_sq += (ya[i] - yb[i]) * (ya[i] - yb[i]);
    }
    EXPECT_NEAR(euclid_sq, aitchison_sq, 1e-9 * (1.0 + aitchison_sq));
  }
}

// ---------------------------------------------------------------- sampling ---

TEST(SamplingTest, UniformSimplexPointsAreValid) {
  Rng rng(8);
  for (int t = 0; t < 100; ++t) {
    const TopicVector x = SampleUniformSimplex(6, &rng);
    double sum = 0.0;
    for (double v : x) {
      EXPECT_GT(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(SamplingTest, UniformSimplexMeanIsCenter) {
  Rng rng(9);
  const size_t z = 4;
  std::vector<double> mean(z, 0.0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const TopicVector x = SampleUniformSimplex(z, &rng);
    for (size_t d = 0; d < z; ++d) mean[d] += x[d];
  }
  for (size_t d = 0; d < z; ++d) {
    EXPECT_NEAR(mean[d] / n, 0.25, 0.005) << d;
  }
}

TEST(SamplingTest, SampleManyCount) {
  Rng rng(10);
  const auto pts = SampleUniformSimplexMany(3, 17, &rng);
  EXPECT_EQ(pts.size(), 17u);
}

}  // namespace
}  // namespace simplex
}  // namespace inflex
