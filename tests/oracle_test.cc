// Tests for the spread-oracle subsystem (src/oracle/, DESIGN.md §14): the
// backend factory and name parsing, request validation, cross-backend seed
// quality (RIS and sketch must match the CELF++ golden reference within
// Monte-Carlo tolerance, on full and topic-masked mixtures), deterministic
// near-tie ordering, the RCU-shared sketch universe, per-backend precompute
// attribution through the maintenance plane, and a concurrent admission
// storm per backend whose published seed lists must be bit-identical to a
// serial replay of the same delta sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "graph/topic_graph.h"
#include "im/ris.h"
#include "im/spread_estimator.h"
#include "inflex/index_maintainer.h"
#include "inflex/inflex_index.h"
#include "inflex/query_engine.h"
#include "oracle/sketch_oracle.h"
#include "oracle/spread_oracle.h"
#include "simplex/sampling.h"
#include "simplex/topic_distribution.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace inflex {
namespace {

using oracle::MakeSpreadOracle;
using oracle::OracleBackend;
using oracle::SpreadOracleOptions;

class OracleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticDatasetOptions dopts;
    dopts.num_users = 200;
    dopts.num_topics = 4;
    dopts.num_items = 60;
    dopts.seed = 808;
    auto ds = data::GenerateSyntheticDataset(dopts);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::SyntheticDataset(std::move(ds).ValueOrDie());
    core::InflexBuildOptions bopts;
    bopts.index_points.num_index_points = 16;
    bopts.index_points.num_dirichlet_samples = 2000;
    bopts.seed_list_length = 12;
    bopts.oracle_snapshots = 30;
    auto index =
        core::InflexIndex::Build(dataset_->graph, dataset_->catalog, bopts);
    ASSERT_TRUE(index.ok());
    index_ = new core::InflexIndex(std::move(index).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static std::shared_ptr<const core::InflexIndex> InitialGeneration() {
    return std::make_shared<core::InflexIndex>(*index_);
  }

  /// Backend tunings sized for the 200-user graph: accurate enough that the
  /// cross-backend quality assertions are far from their tolerance.
  static SpreadOracleOptions TunedOptions(OracleBackend backend) {
    SpreadOracleOptions o;
    o.backend = backend;
    o.seed = 515;
    o.num_snapshots = 60;
    o.num_rr_sets = 20000;
    o.sketch_instances = 32;
    o.sketch_k = 16;
    return o;
  }

  static simplex::TopicDistribution UniformMixture() {
    return simplex::TopicDistribution::Create({0.25, 0.25, 0.25, 0.25})
        .ValueOrDie();
  }

  /// A topic-masked mixture: nearly all mass on one topic, so the IC
  /// instance runs one community's arcs at full strength and everything
  /// else near zero — the regime where WHO is influential depends on topic.
  static simplex::TopicDistribution CornerMixture(size_t corner) {
    std::vector<double> p(4, 0.0001 / 3.0);
    p[corner % 4] = 0.9999;
    return simplex::TopicDistribution::Create(p).ValueOrDie();
  }

  static core::CatalogDelta CornerDelta(size_t corner, double mass = 0.9997) {
    const double rest = (1.0 - mass) / 3.0;
    std::vector<double> p(4, rest);
    p[corner % 4] = mass;
    core::CatalogDelta d;
    d.id = "corner-" + std::to_string(corner);
    d.item = simplex::TopicDistribution::Create(p).ValueOrDie();
    return d;
  }

  /// Monte-Carlo spread of `seeds` on the `item` instance — the common
  /// referee every cross-backend comparison shares.
  static double RefereeSpread(const simplex::TopicDistribution& item,
                              const std::vector<graph::NodeId>& seeds) {
    im::MonteCarloOptions mc;
    mc.num_simulations = 1000;
    mc.seed = 4242;
    mc.parallel = false;
    auto est = im::EstimateSpread(
        dataset_->graph, dataset_->graph.ItemArcProbabilities(item), seeds,
        mc);
    EXPECT_TRUE(est.ok());
    return est.ok() ? est.ValueOrDie().mean : 0.0;
  }

  static data::SyntheticDataset* dataset_;
  static core::InflexIndex* index_;
};

data::SyntheticDataset* OracleTest::dataset_ = nullptr;
core::InflexIndex* OracleTest::index_ = nullptr;

// ------------------------------------------------------ factory & parsing ---

TEST_F(OracleTest, BackendNamesRoundTrip) {
  for (const OracleBackend b :
       {OracleBackend::kCelfPp, OracleBackend::kRis, OracleBackend::kSketch}) {
    const auto parsed = oracle::ParseOracleBackend(oracle::OracleBackendName(b));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), b);
  }
  EXPECT_FALSE(oracle::ParseOracleBackend("celf").ok());
  EXPECT_FALSE(oracle::ParseOracleBackend("").ok());
}

TEST_F(OracleTest, FactoryBuildsEveryBackend) {
  for (const OracleBackend b :
       {OracleBackend::kCelfPp, OracleBackend::kRis, OracleBackend::kSketch}) {
    auto made = MakeSpreadOracle(&dataset_->graph, TunedOptions(b));
    ASSERT_TRUE(made.ok()) << oracle::OracleBackendName(b);
    EXPECT_EQ(made.ValueOrDie()->backend(), b);
    EXPECT_STREQ(made.ValueOrDie()->name(), oracle::OracleBackendName(b));
  }
}

TEST_F(OracleTest, FactoryRejectsDegenerateSketchTuning) {
  SpreadOracleOptions o = TunedOptions(OracleBackend::kSketch);
  o.sketch_instances = 0;
  EXPECT_FALSE(MakeSpreadOracle(&dataset_->graph, o).ok());
  o = TunedOptions(OracleBackend::kSketch);
  o.sketch_k = 1;
  EXPECT_FALSE(MakeSpreadOracle(&dataset_->graph, o).ok());
}

TEST_F(OracleTest, SelectSeedsValidatesRequests) {
  for (const OracleBackend b :
       {OracleBackend::kCelfPp, OracleBackend::kRis, OracleBackend::kSketch}) {
    auto made = MakeSpreadOracle(&dataset_->graph, TunedOptions(b));
    ASSERT_TRUE(made.ok());
    auto& orc = *made.ValueOrDie();
    EXPECT_FALSE(orc.SelectSeeds(UniformMixture(), 0).ok());
    EXPECT_FALSE(
        orc.SelectSeeds(UniformMixture(), dataset_->graph.num_nodes() + 1)
            .ok());
    // Wrong topic dimensionality for the 4-topic graph.
    const auto bad =
        simplex::TopicDistribution::Create({0.5, 0.5}).ValueOrDie();
    EXPECT_FALSE(orc.SelectSeeds(bad, 3).ok());
  }
}

// ------------------------------------------------- cross-backend quality ---

// RIS and sketch must reach CELF++-grade spread, judged by one common
// Monte-Carlo referee. The tolerance (0.85x) is far looser than the bench
// gate (0.95x at bench scale): on a 200-user graph a single borderline seed
// moves the ratio, and this test must stay deterministic-robust.
TEST_F(OracleTest, BackendsAgreeOnFullMixture) {
  constexpr size_t kSeeds = 5;
  const auto item = UniformMixture();
  double golden = 0.0;
  for (const OracleBackend b :
       {OracleBackend::kCelfPp, OracleBackend::kRis, OracleBackend::kSketch}) {
    auto made = MakeSpreadOracle(&dataset_->graph, TunedOptions(b));
    ASSERT_TRUE(made.ok());
    auto sel = made.ValueOrDie()->SelectSeeds(item, kSeeds, 7);
    ASSERT_TRUE(sel.ok()) << oracle::OracleBackendName(b);
    ASSERT_EQ(sel.ValueOrDie().seeds.size(), kSeeds);
    const double spread = RefereeSpread(item, sel.ValueOrDie().seeds);
    EXPECT_GT(spread, 0.0);
    if (b == OracleBackend::kCelfPp) {
      golden = spread;
    } else {
      EXPECT_GE(spread, 0.85 * golden)
          << oracle::OracleBackendName(b) << " fell below CELF++ quality";
    }
  }
}

TEST_F(OracleTest, BackendsAgreeOnTopicMaskedMixture) {
  constexpr size_t kSeeds = 5;
  for (const size_t corner : {0u, 2u}) {
    const auto item = CornerMixture(corner);
    double golden = 0.0;
    for (const OracleBackend b : {OracleBackend::kCelfPp, OracleBackend::kRis,
                                  OracleBackend::kSketch}) {
      auto made = MakeSpreadOracle(&dataset_->graph, TunedOptions(b));
      ASSERT_TRUE(made.ok());
      auto sel = made.ValueOrDie()->SelectSeeds(item, kSeeds, 11);
      ASSERT_TRUE(sel.ok());
      const double spread = RefereeSpread(item, sel.ValueOrDie().seeds);
      if (b == OracleBackend::kCelfPp) {
        golden = spread;
      } else {
        EXPECT_GE(spread, 0.85 * golden)
            << oracle::OracleBackendName(b) << " corner " << corner;
      }
    }
  }
}

TEST_F(OracleTest, SelectSeedsIsDeterministicPerSalt) {
  const auto item = CornerMixture(1);
  for (const OracleBackend b :
       {OracleBackend::kCelfPp, OracleBackend::kRis, OracleBackend::kSketch}) {
    auto a = MakeSpreadOracle(&dataset_->graph, TunedOptions(b));
    auto c = MakeSpreadOracle(&dataset_->graph, TunedOptions(b));
    ASSERT_TRUE(a.ok() && c.ok());
    auto r1 = a.ValueOrDie()->SelectSeeds(item, 6, 42);
    auto r2 = c.ValueOrDie()->SelectSeeds(item, 6, 42);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_EQ(r1.ValueOrDie().seeds, r2.ValueOrDie().seeds)
        << oracle::OracleBackendName(b)
        << ": same options + salt must replay bit-identically";
  }
}

// ---------------------------------------------- deterministic tie ordering ---

// On a deterministic cycle (every arc probability 1) every node covers every
// RR set, so all greedy choices are exact ties: the selection must resolve
// toward smaller node ids, yielding 0, 1, 2, ... regardless of the sampling
// seed.
TEST_F(OracleTest, RisBreaksExactTiesTowardSmallerIds) {
  constexpr size_t kNodes = 6;
  graph::TopicGraphBuilder b(kNodes, 1);
  for (size_t u = 0; u < kNodes; ++u) {
    ASSERT_TRUE(
        b.AddArc(static_cast<graph::NodeId>(u),
                 static_cast<graph::NodeId>((u + 1) % kNodes), {1.0})
            .ok());
  }
  const graph::TopicGraph g = b.Build().ValueOrDie();
  const graph::ArcProbabilities probs(g.num_arcs(), 1.0);
  for (const uint64_t seed : {1u, 99u, 12345u}) {
    im::RisOptions ropts;
    ropts.num_rr_sets = 500;
    ropts.seed = seed;
    auto sel = im::SelectSeedsRis(g, probs, 3, ropts);
    ASSERT_TRUE(sel.ok());
    EXPECT_EQ(sel.ValueOrDie().seeds,
              (std::vector<graph::NodeId>{0, 1, 2}))
        << "sampling seed " << seed;
  }
}

// ----------------------------------------------------- the sketch universe ---

TEST_F(OracleTest, SketchUniverseIsBuiltOnceAndSharedAcrossItems) {
  oracle::SketchOracle sketch(&dataset_->graph,
                              TunedOptions(OracleBackend::kSketch));
  EXPECT_EQ(sketch.universe_builds(), 0u) << "construction must be lazy";
  auto r1 = sketch.SelectSeeds(CornerMixture(0), 4, 0);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(sketch.universe_builds(), 1u);
  auto r2 = sketch.SelectSeeds(CornerMixture(3), 4, 0);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(sketch.universe_builds(), 1u)
      << "the universe must be shared across items, not rebuilt per call";
}

TEST_F(OracleTest, SketchPrepareRepublishesAnEquivalentUniverse) {
  oracle::SketchOracle sketch(&dataset_->graph,
                              TunedOptions(OracleBackend::kSketch));
  auto before = sketch.SelectSeeds(CornerMixture(2), 5, 0);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(sketch.Prepare().ok());
  EXPECT_EQ(sketch.universe_builds(), 2u);
  auto after = sketch.SelectSeeds(CornerMixture(2), 5, 0);
  ASSERT_TRUE(after.ok());
  // Same options seed the same universe, so an RCU republish must not
  // perturb selection.
  EXPECT_EQ(before.ValueOrDie().seeds, after.ValueOrDie().seeds);
}

// ----------------------------------------- maintenance-plane integration ---

TEST_F(OracleTest, MaintainerAttributesPrecomputePerBackend) {
  for (const OracleBackend b :
       {OracleBackend::kCelfPp, OracleBackend::kRis, OracleBackend::kSketch}) {
    auto initial = InitialGeneration();
    core::QueryEngine engine(initial);
    core::IndexMaintainerOptions mopts;
    mopts.oracle_snapshots = 20;
    mopts.admission_threshold = 0.05;
    mopts.oracle = TunedOptions(b);
    core::IndexMaintainer m(initial, &dataset_->graph, &engine, mopts);

    auto receipt = m.SubmitDelta(CornerDelta(b == OracleBackend::kRis ? 1 : 2));
    ASSERT_TRUE(receipt.ok());
    ASSERT_EQ(receipt.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted);
    m.Drain();

    EXPECT_EQ(m.stats().generations_published, 1u);
    EXPECT_GT(m.current()->num_index_points(), initial->num_index_points());

    const auto stats = engine.cumulative_stats();
    ASSERT_EQ(stats.precompute.size(), 1u) << oracle::OracleBackendName(b);
    EXPECT_EQ(stats.precompute[0].backend, oracle::OracleBackendName(b));
    EXPECT_EQ(stats.precompute[0].count, 1u);
    EXPECT_GT(stats.precompute[0].mean_ns(), 0.0);
    EXPECT_GE(stats.precompute[0].max_ns, stats.precompute[0].mean_ns());
  }
}

TEST_F(OracleTest, DefaultMaintainerOptionsReproduceRisPath) {
  // A maintainer with untouched oracle options must publish bit-identical
  // seed lists to one explicitly configured for the RIS backend — RIS is
  // the default since it cleared the golden-corpus quality gate, and
  // "untouched options" must keep meaning exactly one reproducible path.
  const auto delta = CornerDelta(3);
  std::vector<rank::RankedList> lists;
  for (const bool explicit_backend : {false, true}) {
    auto initial = InitialGeneration();
    core::IndexMaintainerOptions mopts;
    mopts.oracle_snapshots = 20;
    mopts.admission_threshold = 0.05;
    if (explicit_backend) mopts.oracle.backend = OracleBackend::kRis;
    core::IndexMaintainer m(initial, &dataset_->graph, nullptr, mopts);
    auto receipt = m.SubmitDelta(delta);
    ASSERT_TRUE(receipt.ok());
    ASSERT_EQ(receipt.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted);
    m.Drain();
    const auto current = m.current();
    const auto nn =
        current->tree().ExactKnn(delta.item.probs(), 1).front();
    lists.push_back(current->seed_list(nn.point_id));
    EXPECT_FALSE(lists.back().empty());
  }
  EXPECT_EQ(lists[0], lists[1]);
}

// ------------------------------------------------- concurrent admission ---

// Per backend: a serving storm hammers the engine while corner deltas are
// admitted and precomputed on a multi-worker maintenance pool. Afterwards,
// every published seed list must be bit-identical to a serial replay of the
// same delta sequence — the deterministic-salt contract under real
// concurrency. run_sanitized_stress.sh runs this under TSan.
TEST_F(OracleTest, ConcurrentStormMatchesSerialReplayPerBackend) {
  for (const OracleBackend b :
       {OracleBackend::kCelfPp, OracleBackend::kRis, OracleBackend::kSketch}) {
    SCOPED_TRACE(oracle::OracleBackendName(b));
    std::vector<core::CatalogDelta> deltas;
    for (size_t i = 0; i < 4; ++i) {
      deltas.push_back(CornerDelta(i, i % 2 == 0 ? 0.9997 : 0.999));
    }

    core::IndexMaintainerOptions mopts;
    mopts.oracle_snapshots = 10;
    mopts.admission_threshold = 0.05;
    mopts.oracle = TunedOptions(b);
    mopts.oracle.num_rr_sets = 4000;  // storm cares about races, not quality
    mopts.oracle.num_snapshots = 10;

    // Concurrent run: queries + multi-worker precompute + publication.
    auto initial = InitialGeneration();
    ThreadPool serve_pool(3);
    ThreadPool maint_pool(2);
    core::QueryEngineOptions eopts;
    eopts.pool = &serve_pool;
    core::QueryEngine engine(initial, eopts);
    core::IndexMaintainerOptions storm_opts = mopts;
    storm_opts.pool = &maint_pool;
    core::IndexMaintainer m(initial, &dataset_->graph, &engine, storm_opts);

    std::atomic<bool> stop{false};
    std::thread querier([&] {
      Rng rng(99);
      while (!stop.load(std::memory_order_relaxed)) {
        core::QueryRequest r;
        r.item = simplex::TopicDistribution::Create(
                     simplex::SampleUniformSimplex(4, &rng))
                     .ValueOrDie();
        r.k = 5;
        (void)engine.Query(r);
      }
    });
    for (const auto& d : deltas) {
      auto receipt = m.SubmitDelta(d);
      ASSERT_TRUE(receipt.ok());
      ASSERT_EQ(receipt.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted);
    }
    m.Drain();
    stop.store(true);
    querier.join();

    // Serial replay: same deltas, same order, single-threaded pool, no
    // serving load.
    auto replay_initial = InitialGeneration();
    core::IndexMaintainer replay(replay_initial, &dataset_->graph, nullptr,
                                 mopts);
    for (const auto& d : deltas) {
      auto receipt = replay.SubmitDelta(d);
      ASSERT_TRUE(receipt.ok());
      ASSERT_EQ(receipt.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted);
    }
    replay.Drain();

    const auto stormed = m.current();
    const auto replayed = replay.current();
    for (const auto& d : deltas) {
      const auto nn_s = stormed->tree().ExactKnn(d.item.probs(), 1).front();
      const auto nn_r = replayed->tree().ExactKnn(d.item.probs(), 1).front();
      EXPECT_EQ(stormed->seed_list(nn_s.point_id),
                replayed->seed_list(nn_r.point_id))
          << d.id << " under " << oracle::OracleBackendName(b);
    }
  }
}

}  // namespace
}  // namespace inflex
