// Replays the golden relevance corpus THROUGH THE WIRE: ScoreBackend's
// transport seam (quality/scorer.h) routes every corpus query over a
// loopback InflexServer whose tenant router serves the scoring stack under
// a non-default tenant id. The resulting report must be byte-identical to
// the pure in-process run — which puts the whole net plane (frame codec,
// request admission, worker batching, tenant routing) inside the relevance
// quality gate: a wire-layer bug that changes a single seed in a single
// answer flips a byte in the report and fails this test.
//
// The corpus path is compiled in from the source tree (INFLEX_CORPUS_FILE,
// set by tests/CMakeLists).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "inflex/index_maintainer.h"
#include "inflex/query_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "oracle/spread_oracle.h"
#include "quality/corpus.h"
#include "quality/json.h"
#include "quality/scorer.h"
#include "tenant/tenant_registry.h"
#include "tenant/tenant_router.h"

namespace inflex {
namespace {

TEST(QualityNetTest, GoldenCorpusOverWireMatchesInProcessByteForByte) {
  auto corpus = quality::LoadCorpus(INFLEX_CORPUS_FILE);
  ASSERT_TRUE(corpus.ok()) << corpus.status().message();
  auto world = quality::BuildCorpusWorld(corpus.ValueOrDie());
  ASSERT_TRUE(world.ok()) << world.status().message();

  // RIS is the default production oracle — the backend the serving path
  // actually runs behind the wire.
  const oracle::OracleBackend backend = oracle::OracleBackend::kRis;

  auto in_process =
      quality::ScoreBackend(world.ValueOrDie(), corpus.ValueOrDie(), backend);
  ASSERT_TRUE(in_process.ok()) << in_process.status().message();
  ASSERT_TRUE(in_process.ValueOrDie().passed);

  // The wire run: the scenario replay still drives the scoring stack
  // directly (deltas and decay sweeps are maintenance-plane work), then the
  // hooks wrap the live engine in a server and answer every corpus query
  // over TCP as tenant "golden" — deliberately NOT the default tenant, so
  // the per-request tenant resolution path is exercised by every query.
  tenant::TenantRegistry registry;
  tenant::TenantRouter router(&registry);
  std::unique_ptr<net::InflexServer> server;
  std::unique_ptr<net::InflexClient> client;

  quality::ScoreBackendHooks hooks;
  hooks.on_scenario_ready = [&](core::QueryEngine* engine,
                                core::IndexMaintainer* maintainer) {
    auto adopted = registry.AdoptTenant("golden", tenant::TenantBudget{},
                                        engine, maintainer);
    ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
    net::InflexServerOptions sopts;
    sopts.router = &router;
    server = std::make_unique<net::InflexServer>(engine, sopts);
    ASSERT_TRUE(server->Start().ok());
    auto connected =
        net::InflexClient::Connect("127.0.0.1", server->port(), 20000);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    client = std::make_unique<net::InflexClient>(
        std::move(connected).ValueOrDie());
    client->set_tenant("golden");
  };
  hooks.transport =
      [&](const core::QueryRequest& request) -> Result<core::QueryResult> {
    auto resp = client->Query(request);
    INFLEX_RETURN_NOT_OK(resp.status());
    const net::WireResponse& wire = resp.ValueOrDie();
    if (wire.status != net::WireStatus::kOk) {
      return Status::Internal(std::string("wire status ") +
                              net::WireStatusName(wire.status) + ": " +
                              wire.message);
    }
    core::QueryResult result;
    result.seeds.assign(wire.seeds.begin(), wire.seeds.end());
    result.epsilon_exact = wire.epsilon_exact;
    result.from_cache = wire.from_cache;
    result.generation = wire.epoch;
    return result;
  };
  hooks.on_queries_done = [&] {
    // Tear the wire stack down while the scoring engine is still alive.
    client.reset();
    if (server != nullptr) server->Stop();
    EXPECT_TRUE(registry.DropTenant("golden", /*drain=*/false).ok());
  };

  auto over_wire =
      quality::ScoreBackend(world.ValueOrDie(), corpus.ValueOrDie(), backend,
                            /*index_override=*/nullptr, hooks);
  ASSERT_TRUE(over_wire.ok()) << over_wire.status().message();
  EXPECT_TRUE(over_wire.ValueOrDie().passed);

  // Byte-for-byte: wrap both backend reports in the deterministic JSON
  // rendering and compare the dumps.
  quality::QualityReport in_process_report;
  in_process_report.corpus_name = corpus.ValueOrDie().name;
  in_process_report.corpus_version = corpus.ValueOrDie().version;
  in_process_report.passed = in_process.ValueOrDie().passed;
  in_process_report.backends.push_back(std::move(in_process).ValueOrDie());
  quality::QualityReport over_wire_report;
  over_wire_report.corpus_name = corpus.ValueOrDie().name;
  over_wire_report.corpus_version = corpus.ValueOrDie().version;
  over_wire_report.passed = over_wire.ValueOrDie().passed;
  over_wire_report.backends.push_back(std::move(over_wire).ValueOrDie());
  EXPECT_EQ(quality::ReportToJson(over_wire_report).Dump(),
            quality::ReportToJson(in_process_report).Dump());
}

}  // namespace
}  // namespace inflex
