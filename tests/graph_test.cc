#include <gtest/gtest.h>

#include <set>

#include "graph/graph_io.h"
#include "graph/topic_graph.h"
#include "simplex/topic_distribution.h"

namespace inflex {
namespace graph {
namespace {

TopicGraph MakeTriangleGraph() {
  // 0→1, 1→2, 2→0, 0→2 with distinct per-topic probabilities (Z = 2).
  TopicGraphBuilder b(3, 2);
  EXPECT_TRUE(b.AddArc(0, 1, {0.1, 0.9}).ok());
  EXPECT_TRUE(b.AddArc(1, 2, {0.2, 0.8}).ok());
  EXPECT_TRUE(b.AddArc(2, 0, {0.3, 0.7}).ok());
  EXPECT_TRUE(b.AddArc(0, 2, {0.4, 0.6}).ok());
  return b.Build().ValueOrDie();
}

TEST(TopicGraphBuilderTest, RejectsInvalidArcs) {
  TopicGraphBuilder b(3, 2);
  EXPECT_EQ(b.AddArc(0, 3, {0.1, 0.2}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.AddArc(3, 0, {0.1, 0.2}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.AddArc(1, 1, {0.1, 0.2}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.AddArc(0, 1, {0.1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.AddArc(0, 1, {0.1, 1.2}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b.AddArc(0, 1, {-0.1, 0.2}).code(), StatusCode::kInvalidArgument);
}

TEST(TopicGraphBuilderTest, RejectsDuplicateArcs) {
  TopicGraphBuilder b(3, 2);
  ASSERT_TRUE(b.AddArc(0, 1, {0.1, 0.2}).ok());
  ASSERT_TRUE(b.AddArc(0, 1, {0.3, 0.4}).ok());
  EXPECT_FALSE(b.Build().ok());
}

TEST(TopicGraphTest, BasicStructure) {
  const TopicGraph g = MakeTriangleGraph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.num_topics(), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(TopicGraphTest, OutNeighborsSortedWithProbs) {
  const TopicGraph g = MakeTriangleGraph();
  const auto n0 = g.OutNeighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);  // arcs sorted by target
  EXPECT_EQ(n0[1], 2u);
  const ArcId a0 = g.OutArcBegin(0);
  EXPECT_DOUBLE_EQ(g.ArcTopicProb(a0, 0), 0.1);      // 0→1 topic 0
  EXPECT_DOUBLE_EQ(g.ArcTopicProb(a0 + 1, 1), 0.6);  // 0→2 topic 1
}

TEST(TopicGraphTest, ReverseAdjacencyConsistent) {
  const TopicGraph g = MakeTriangleGraph();
  // Every in-arc of v must map (via InArcIds) to a forward arc targeting v.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto sources = g.InNeighbors(v);
    const auto arc_ids = g.InArcIds(v);
    ASSERT_EQ(sources.size(), arc_ids.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(g.ArcTarget(arc_ids[i]), v);
      // And the forward arc belongs to the claimed source.
      bool found = false;
      ArcId a = g.OutArcBegin(sources[i]);
      for (size_t j = 0; j < g.OutDegree(sources[i]); ++j, ++a) {
        if (a == arc_ids[i]) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(TopicGraphTest, DegreeSumsMatchArcCount) {
  const TopicGraph g = MakeTriangleGraph();
  size_t out_sum = 0, in_sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out_sum += g.OutDegree(u);
    in_sum += g.InDegree(u);
  }
  EXPECT_EQ(out_sum, g.num_arcs());
  EXPECT_EQ(in_sum, g.num_arcs());
}

TEST(TopicGraphTest, ItemArcProbabilitiesIsEq1Mixture) {
  const TopicGraph g = MakeTriangleGraph();
  const auto item =
      simplex::TopicDistribution::Create({0.25, 0.75}).ValueOrDie();
  const ArcProbabilities p = g.ItemArcProbabilities(item);
  ASSERT_EQ(p.size(), 4u);
  // Arc 0 is 0→1 with topic probs (0.1, 0.9).
  EXPECT_NEAR(p[0], 0.25 * 0.1 + 0.75 * 0.9, 1e-12);
  // Delta item reproduces a single topic's probabilities exactly.
  const auto delta = simplex::TopicDistribution::Delta(2, 0);
  const ArcProbabilities p0 = g.ItemArcProbabilities(delta);
  for (size_t a = 0; a < g.num_arcs(); ++a) {
    EXPECT_DOUBLE_EQ(p0[a], g.ArcTopicProb(static_cast<ArcId>(a), 0));
  }
}

TEST(TopicGraphTest, ItemArcProbabilitiesIntoReusesBuffer) {
  const TopicGraph g = MakeTriangleGraph();
  ArcProbabilities buf;
  g.ItemArcProbabilitiesInto(simplex::TopicDistribution::Uniform(2), &buf);
  EXPECT_EQ(buf.size(), g.num_arcs());
  const double first = buf[0];
  g.ItemArcProbabilitiesInto(simplex::TopicDistribution::Delta(2, 1), &buf);
  EXPECT_NE(buf[0], first);
}

TEST(TopicGraphTest, SetArcTopicProbabilitiesValidates) {
  TopicGraph g = MakeTriangleGraph();
  std::vector<double> wrong_size(3, 0.5);
  EXPECT_FALSE(g.SetArcTopicProbabilities(wrong_size).ok());
  std::vector<double> bad_value(8, 0.5);
  bad_value[3] = 1.5;
  EXPECT_FALSE(g.SetArcTopicProbabilities(bad_value).ok());
  std::vector<double> good(8, 0.25);
  ASSERT_TRUE(g.SetArcTopicProbabilities(good).ok());
  EXPECT_DOUBLE_EQ(g.ArcTopicProb(0, 0), 0.25);
}

TEST(GraphIoTest, BinaryRoundTrip) {
  const TopicGraph g = MakeTriangleGraph();
  const std::string path = testing::TempDir() + "/graph_roundtrip.bin";
  ASSERT_TRUE(SaveTopicGraph(g, path).ok());
  auto loaded = LoadTopicGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TopicGraph& g2 = loaded.ValueOrDie();
  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_arcs(), g.num_arcs());
  ASSERT_EQ(g2.num_topics(), g.num_topics());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = g.OutNeighbors(u);
    const auto b = g2.OutNeighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    for (size_t z = 0; z < g.num_topics(); ++z) {
      EXPECT_DOUBLE_EQ(g2.ArcTopicProb(a, z), g.ArcTopicProb(a, z));
    }
  }
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  const TopicGraph g = MakeTriangleGraph();
  const std::string path = testing::TempDir() + "/graph.edges";
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TopicGraph& g2 = loaded.ValueOrDie();
  EXPECT_EQ(g2.num_nodes(), g.num_nodes());
  EXPECT_EQ(g2.num_arcs(), g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    for (size_t z = 0; z < g.num_topics(); ++z) {
      EXPECT_NEAR(g2.ArcTopicProb(a, z), g.ArcTopicProb(a, z), 1e-12);
    }
  }
}

TEST(GraphIoTest, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a graph", f);
  fclose(f);
  EXPECT_FALSE(LoadTopicGraph(path).ok());
  EXPECT_FALSE(LoadTopicGraph("/no/such/file").ok());
}

TEST(GraphIoTest, EdgeListRejectsMissingHeader) {
  const std::string path = testing::TempDir() + "/bad.edges";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("0 1 0.5 0.5\n", f);
  fclose(f);
  EXPECT_FALSE(ReadEdgeList(path).ok());
}

}  // namespace
}  // namespace graph
}  // namespace inflex
