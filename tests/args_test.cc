#include <gtest/gtest.h>

#include "util/args.h"

namespace inflex {
namespace {

ArgParser Make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParserTest, ParsesKeyEqualsValue) {
  ArgParser p = Make({"--users=100", "--out=dir"});
  EXPECT_EQ(p.GetInt("users", 0).ValueOrDie(), 100);
  EXPECT_EQ(p.GetString("out", ""), "dir");
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ArgParserTest, ParsesKeySpaceValue) {
  ArgParser p = Make({"--users", "250", "--name", "abc"});
  EXPECT_EQ(p.GetInt("users", 0).ValueOrDie(), 250);
  EXPECT_EQ(p.GetString("name", ""), "abc");
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ArgParserTest, BooleanFlags) {
  ArgParser p = Make({"--verbose", "--auto-size"});
  EXPECT_TRUE(p.HasFlag("verbose"));
  EXPECT_TRUE(p.HasFlag("auto-size"));
  EXPECT_FALSE(p.HasFlag("quiet"));
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ArgParserTest, PositionalArguments) {
  ArgParser p = Make({"build", "--k=5", "extra"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "build");
  EXPECT_EQ(p.positional()[1], "extra");
  EXPECT_EQ(p.GetInt("k", 0).ValueOrDie(), 5);
}

TEST(ArgParserTest, DefaultsWhenAbsent) {
  ArgParser p = Make({});
  EXPECT_EQ(p.GetInt("k", 42).ValueOrDie(), 42);
  EXPECT_DOUBLE_EQ(p.GetDouble("x", 1.5).ValueOrDie(), 1.5);
  EXPECT_EQ(p.GetString("s", "dflt"), "dflt");
}

TEST(ArgParserTest, TypeErrorsReported) {
  ArgParser p = Make({"--k=abc", "--x=1.2.3"});
  EXPECT_FALSE(p.GetInt("k", 0).ok());
  EXPECT_FALSE(p.GetDouble("x", 0.0).ok());
}

TEST(ArgParserTest, DoubleList) {
  ArgParser p = Make({"--mix=0.5,0.25,0.25"});
  auto list = p.GetDoubleList("mix");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.ValueOrDie().size(), 3u);
  EXPECT_DOUBLE_EQ(list.ValueOrDie()[0], 0.5);
  ArgParser q = Make({"--mix=a,b"});
  EXPECT_FALSE(q.GetDoubleList("mix").ok());
  ArgParser r = Make({});
  EXPECT_FALSE(r.GetDoubleList("mix").ok());
}

TEST(ArgParserTest, UnknownOptionRejected) {
  ArgParser p = Make({"--known=1", "--typo=2"});
  EXPECT_EQ(p.GetInt("known", 0).ValueOrDie(), 1);
  Status st = p.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("typo"), std::string::npos);
}

TEST(ArgParserTest, NegativeNumberAsValue) {
  ArgParser p = Make({"--offset", "-5"});
  // "-5" is not an option (single dash), so it binds as the value.
  EXPECT_EQ(p.GetInt("offset", 0).ValueOrDie(), -5);
}

}  // namespace
}  // namespace inflex
