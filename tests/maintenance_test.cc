// Tests for the live index maintenance plane: KL-coverage admission of
// catalog deltas, background CELF++ seed precompute, RCU-style generation
// publication under serving load, epoch-keyed cache invalidation, the
// cumulative latency reservoir, persistence across maintenance generations,
// and a query-storm stress test asserting every concurrent answer is
// bit-identical to a serial replay against its pinned generation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "inflex/hit_accounting.h"
#include "inflex/index_maintainer.h"
#include "inflex/inflex_index.h"
#include "inflex/query_engine.h"
#include "simplex/divergence.h"
#include "simplex/sampling.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace inflex {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticDatasetOptions dopts;
    dopts.num_users = 200;
    dopts.num_topics = 4;
    dopts.num_items = 60;
    dopts.seed = 808;
    auto ds = data::GenerateSyntheticDataset(dopts);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::SyntheticDataset(std::move(ds).ValueOrDie());
    core::InflexBuildOptions bopts;
    bopts.index_points.num_index_points = 16;
    bopts.index_points.num_dirichlet_samples = 2000;
    bopts.seed_list_length = 12;
    bopts.oracle_snapshots = 30;
    auto index =
        core::InflexIndex::Build(dataset_->graph, dataset_->catalog, bopts);
    ASSERT_TRUE(index.ok());
    index_ = new core::InflexIndex(std::move(index).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  /// A fresh shared copy of the suite index to serve as generation 0 (the
  /// maintainer mutates nothing, but each test gets an isolated history).
  static std::shared_ptr<const core::InflexIndex> InitialGeneration() {
    return std::make_shared<core::InflexIndex>(*index_);
  }

  /// Maintainer options sized for the small test graph.
  static core::IndexMaintainerOptions FastOptions() {
    core::IndexMaintainerOptions mopts;
    mopts.oracle_snapshots = 20;
    mopts.admission_threshold = 0.05;
    return mopts;
  }

  /// Extreme near-corner mixtures: far (in KL) from every index point the
  /// Dirichlet catalog produces, so they pass the admission test; distinct
  /// corners are also far from each other.
  static core::CatalogDelta CornerDelta(size_t corner, double mass = 0.9997) {
    const double rest = (1.0 - mass) / 3.0;
    std::vector<double> p(4, rest);
    p[corner % 4] = mass;
    core::CatalogDelta d;
    d.id = "corner-" + std::to_string(corner);
    d.item = simplex::TopicDistribution::Create(p).ValueOrDie();
    return d;
  }

  /// Deterministically picks `n` mixtures that are far (in KL, both
  /// directions, with margin) from every index point of `index` AND from
  /// each other: submitted as a burst, every one passes the admission probe
  /// and none is superseded by another within the same batch.
  static std::vector<simplex::TopicDistribution> FarApartMixtures(
      const core::InflexIndex& index, size_t n, double margin,
      uint64_t seed) {
    Rng rng(seed);
    std::vector<simplex::TopicDistribution> picked;
    for (int attempt = 0; attempt < 20000 && picked.size() < n; ++attempt) {
      const auto q = simplex::SampleUniformSimplex(4, &rng);
      // Same probe as admission: min_i D_KL(index point i ‖ q).
      if (index.tree().ExactKnn(q, 1).front().divergence <= margin) continue;
      bool far = true;
      for (const auto& p : picked) {
        if (simplex::KlDivergence(p.probs(), q) <= margin ||
            simplex::KlDivergence(q, p.probs()) <= margin) {
          far = false;
          break;
        }
      }
      if (far) {
        picked.push_back(simplex::TopicDistribution::Create(q).ValueOrDie());
      }
    }
    EXPECT_EQ(picked.size(), n) << "could not find " << n
                                << " mutually far mixtures";
    return picked;
  }

  static std::vector<core::QueryRequest> MakeWorkload(size_t n,
                                                      uint64_t seed) {
    Rng rng(seed);
    std::vector<core::QueryRequest> reqs;
    reqs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      core::QueryRequest r;
      if (i % 3 == 2 && i >= 3) {
        r.item = reqs[i / 3].item;  // repeats exercise the cache-hit path
      } else {
        r.item = simplex::TopicDistribution::Create(
                     simplex::SampleUniformSimplex(4, &rng))
                     .ValueOrDie();
      }
      r.k = 3 + (i % 3) * 4;
      switch (i % 3) {
        case 0:
          r.options.strategy = core::QueryStrategy::kInflex;
          break;
        case 1:
          r.options.strategy = core::QueryStrategy::kExactKnn;
          break;
        case 2:
          r.options.strategy = core::QueryStrategy::kApproxKnnSel;
          break;
      }
      reqs.push_back(std::move(r));
    }
    return reqs;
  }

  static void ExpectSameAnswer(const Result<core::QueryResult>& got,
                               const Result<core::QueryResult>& want,
                               size_t i) {
    ASSERT_EQ(got.ok(), want.ok())
        << "request " << i << ": " << got.status().ToString() << " vs "
        << want.status().ToString();
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), want.status().code()) << "request " << i;
      return;
    }
    const auto& g = got.ValueOrDie();
    const auto& w = want.ValueOrDie();
    EXPECT_EQ(g.seeds, w.seeds) << "request " << i;
    EXPECT_EQ(g.weights, w.weights) << "request " << i;
    EXPECT_EQ(g.epsilon_exact, w.epsilon_exact) << "request " << i;
  }

  static data::SyntheticDataset* dataset_;
  static core::InflexIndex* index_;
};

data::SyntheticDataset* MaintenanceTest::dataset_ = nullptr;
core::InflexIndex* MaintenanceTest::index_ = nullptr;

// ----------------------------------------------------------- admission test ---

TEST_F(MaintenanceTest, CoveredDeltaIsDroppedWithoutWork) {
  auto initial = InitialGeneration();
  core::IndexMaintainer m(initial, &dataset_->graph, nullptr, FastOptions());

  // An existing index point covers itself: divergence 0 ≤ any threshold.
  core::CatalogDelta dup;
  dup.id = "existing-point";
  dup.item =
      simplex::TopicDistribution::Create(initial->index_point(0)).ValueOrDie();
  auto receipt = m.SubmitDelta(dup);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt.ValueOrDie().outcome, core::DeltaOutcome::kCovered);
  EXPECT_EQ(receipt.ValueOrDie().min_divergence, 0.0);
  m.Drain();

  const auto stats = m.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.covered, 1u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.generations_published, 0u);
  EXPECT_EQ(m.epoch(), 0u);
  EXPECT_EQ(m.current().get(), initial.get()) << "generation must not change";
}

TEST_F(MaintenanceTest, AdmittedDeltaPublishesServableGeneration) {
  auto initial = InitialGeneration();
  core::QueryEngine engine(initial);
  core::IndexMaintainer m(initial, &dataset_->graph, &engine, FastOptions());

  const auto delta = CornerDelta(0);
  auto receipt = m.SubmitDelta(delta);
  ASSERT_TRUE(receipt.ok());
  ASSERT_EQ(receipt.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted)
      << "corner item unexpectedly covered (min divergence "
      << receipt.ValueOrDie().min_divergence << ")";
  EXPECT_GT(receipt.ValueOrDie().min_divergence, 0.05);
  EXPECT_EQ(receipt.ValueOrDie().ticket, 1u);
  m.Drain();

  const auto stats = m.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.generations_published, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.index_points, initial->num_index_points() + 1);
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_EQ(engine.index_epoch(), 1u) << "engine must see the publication";
  EXPECT_FALSE(stats.ToString().empty());

  // The published generation serves the new item ε-exactly from its freshly
  // precomputed list, straight through the engine.
  core::QueryRequest req;
  req.item = delta.item;
  req.k = 8;
  auto answer = engine.Query(req);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer.ValueOrDie().epsilon_exact);
  EXPECT_EQ(answer.ValueOrDie().generation, 1u);
  // And identically to querying the generation directly.
  auto direct = m.current()->Query(req.item, req.k, req.options);
  ExpectSameAnswer(answer, direct, 0);

  // Resubmitting the same item is now covered by its own index point.
  auto again = m.SubmitDelta(delta);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.ValueOrDie().outcome, core::DeltaOutcome::kCovered);
}

TEST_F(MaintenanceTest, BackpressureDefersDeltasAtHighWaterMark) {
  auto initial = InitialGeneration();

  // Park the maintenance pool behind a sentinel task so admitted deltas stay
  // pending and the high-water mark is hit deterministically.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  pool.Submit([released] { released.wait(); });

  core::IndexMaintainerOptions mopts = FastOptions();
  mopts.pending_high_watermark = 2;
  mopts.pool = &pool;
  core::IndexMaintainer m(initial, &dataset_->graph, nullptr, mopts);

  const auto mixtures = FarApartMixtures(*initial, 3, 0.08, 77);
  std::vector<core::CatalogDelta> deltas;
  for (size_t i = 0; i < mixtures.size(); ++i) {
    core::CatalogDelta d;
    d.id = "bp-" + std::to_string(i);
    d.item = mixtures[i];
    deltas.push_back(std::move(d));
  }

  // Two admissions fill the pipeline to the watermark...
  for (size_t i = 0; i < 2; ++i) {
    auto receipt = m.SubmitDelta(deltas[i]);
    ASSERT_TRUE(receipt.ok());
    ASSERT_EQ(receipt.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted)
        << "delta " << i;
  }
  // ...so the third is deferred without scheduling anything.
  auto deferred = m.SubmitDelta(deltas[2]);
  ASSERT_TRUE(deferred.ok());
  EXPECT_EQ(deferred.ValueOrDie().outcome, core::DeltaOutcome::kRetryLater);
  EXPECT_EQ(deferred.ValueOrDie().ticket, 0u) << "nothing was admitted";
  {
    const auto stats = m.stats();
    EXPECT_EQ(stats.pending, 2u);
    EXPECT_EQ(stats.deferred, 1u);
    EXPECT_EQ(stats.admitted, 2u);
  }
  EXPECT_NE(core::DeltaOutcomeName(core::DeltaOutcome::kRetryLater),
            nullptr);

  // Once the backlog publishes, the same delta is admitted on retry: the
  // contract is "resubmit later", not "dropped".
  release.set_value();
  m.Drain();
  auto retried = m.SubmitDelta(deltas[2]);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted);
  m.Drain();

  const auto stats = m.stats();
  EXPECT_EQ(stats.deferred, 1u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.index_points, initial->num_index_points() + 3);
}

TEST_F(MaintenanceTest, DimensionMismatchFailsFast) {
  core::IndexMaintainer m(InitialGeneration(), &dataset_->graph, nullptr,
                          FastOptions());
  core::CatalogDelta bad;
  bad.id = "wrong-dims";
  bad.item =
      simplex::TopicDistribution::Create({0.5, 0.3, 0.2}).ValueOrDie();
  auto receipt = m.SubmitDelta(bad);
  EXPECT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(m.stats().failed, 1u);
  EXPECT_EQ(m.stats().generations_published, 0u);
}

// ----------------------------------------------- superseded publication race ---

// Two duplicate deltas admitted back-to-back (the background pool is gated so
// neither publishes in between): the first publishes, the second must detect
// at publish time that it is now covered and back off.
TEST_F(MaintenanceTest, DuplicateAdmissionsResolveToOnePublication) {
  ThreadPool pool(1);
  auto mopts = FastOptions();
  mopts.pool = &pool;
  core::IndexMaintainer m(InitialGeneration(), &dataset_->graph, nullptr,
                          mopts);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.Submit([opened] { opened.wait(); });

  const auto delta = CornerDelta(1);
  auto first = m.SubmitDelta(delta);
  auto second = m.SubmitDelta(delta);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted);
  EXPECT_EQ(second.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted)
      << "admission must race: the first delta has not published yet";

  gate.set_value();
  m.Drain();

  const auto stats = m.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.generations_published, 1u);
  EXPECT_EQ(stats.superseded, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(m.epoch(), 1u);
}

// ------------------------------------------------- epoch cache invalidation ---

TEST_F(MaintenanceTest, PublicationInvalidatesCachedAnswersViaEpoch) {
  auto initial = InitialGeneration();
  core::QueryEngine engine(initial);
  core::IndexMaintainer m(initial, &dataset_->graph, &engine, FastOptions());

  const auto delta = CornerDelta(2);
  core::QueryRequest req;
  req.item = delta.item;
  req.k = 8;

  // Warm the cache under epoch 0.
  auto before = engine.Query(req);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.ValueOrDie().generation, 0u);
  auto cached = engine.Query(req);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.ValueOrDie().from_cache);
  const uint64_t hits_before = engine.cache().hits();

  ASSERT_TRUE(m.SubmitDelta(delta).ok());
  m.Drain();
  ASSERT_EQ(engine.index_epoch(), 1u);

  // Same request: the epoch-tagged key makes the stale entry unreachable, so
  // this is a miss that computes against the NEW generation — no Clear()
  // needed, no stale answer possible.
  auto after = engine.Query(req);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.ValueOrDie().from_cache);
  EXPECT_EQ(after.ValueOrDie().generation, 1u);
  EXPECT_TRUE(after.ValueOrDie().epsilon_exact)
      << "the new generation serves the delta item from its own point";
  EXPECT_EQ(engine.cache().hits(), hits_before);

  // The new-epoch entry caches normally.
  auto warm = engine.Query(req);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.ValueOrDie().from_cache);
  EXPECT_EQ(warm.ValueOrDie().seeds, after.ValueOrDie().seeds);
}

// ------------------------------------------- maintenance metrics in serving ---

// cumulative_stats() surfaces the maintenance plane next to QPS: generation
// swaps, the cache's warm-up within the current epoch, and the
// admission→publish latency of the pipeline.
TEST_F(MaintenanceTest, ServingStatsSurfaceMaintenanceMetrics) {
  auto initial = InitialGeneration();
  core::QueryEngine engine(initial);
  core::IndexMaintainer m(initial, &dataset_->graph, &engine, FastOptions());

  const auto requests = MakeWorkload(20, 91);
  engine.QueryBatch(requests);
  engine.QueryBatch(requests);  // second pass: all hits under epoch 0

  auto stats = engine.cumulative_stats();
  EXPECT_EQ(stats.generation_swaps, 0u);
  EXPECT_EQ(stats.publishes_timed, 0u);
  EXPECT_EQ(stats.admit_to_publish_mean_ms, 0.0);
  EXPECT_GT(stats.epoch_cache_hits, 0u)
      << "without any publish the epoch counters track the whole history";

  ASSERT_TRUE(m.SubmitDelta(CornerDelta(2)).ok());
  m.Drain();
  ASSERT_EQ(engine.index_epoch(), 1u);

  stats = engine.cumulative_stats();
  EXPECT_EQ(stats.generation_swaps, 1u);
  EXPECT_EQ(stats.publishes_timed, 1u);
  EXPECT_GT(stats.admit_to_publish_mean_ms, 0.0);
  EXPECT_GE(stats.admit_to_publish_max_ms, stats.admit_to_publish_mean_ms);
  EXPECT_EQ(stats.epoch_cache_hits, 0u)
      << "a publish re-baselines the epoch counters (cold cache)";
  EXPECT_EQ(stats.epoch_hit_rate(), 0.0);

  // Re-serving the workload under epoch 1: all misses first (stale entries
  // unreachable), then hits — the epoch hit rate tracks the warm-up.
  engine.QueryBatch(requests);
  stats = engine.cumulative_stats();
  EXPECT_GT(stats.epoch_cache_misses, 0u);
  engine.QueryBatch(requests);
  stats = engine.cumulative_stats();
  EXPECT_GT(stats.epoch_cache_hits, 0u);
  EXPECT_GT(stats.epoch_hit_rate(), 0.0);
  EXPECT_LE(stats.epoch_hit_rate(), 1.0);
  EXPECT_FALSE(stats.ToString().empty());
}

// ------------------------------------------------------- tree rebuild gating ---

TEST_F(MaintenanceTest, LowDegradationBudgetTriggersFullRebuild) {
  auto mopts = FastOptions();
  mopts.rebuild_degradation = 1e-9;  // every insert crosses the gate
  core::IndexMaintainer m(InitialGeneration(), &dataset_->graph, nullptr,
                          mopts);
  ASSERT_TRUE(m.SubmitDelta(CornerDelta(3)).ok());
  m.Drain();
  const auto stats = m.stats();
  ASSERT_EQ(stats.generations_published, 1u);
  EXPECT_EQ(stats.tree_rebuilds, 1u);
  EXPECT_EQ(m.current()->tree().degradation(), 0.0)
      << "a rebuilt generation starts from a clean tree";

  // Generous budget: a single insert stays incremental. (On a tree this
  // small even the default 0.10 can trip — one insert is already 1/17th of
  // the point set.)
  auto lazy_opts = FastOptions();
  lazy_opts.rebuild_degradation = 0.75;
  core::IndexMaintainer lazy(InitialGeneration(), &dataset_->graph, nullptr,
                             lazy_opts);
  ASSERT_TRUE(lazy.SubmitDelta(CornerDelta(3)).ok());
  lazy.Drain();
  EXPECT_EQ(lazy.stats().tree_rebuilds, 0u);
  EXPECT_GT(lazy.current()->tree().degradation(), 0.0);
}

// -------------------------------------------- cumulative latency reservoir ---

// Regression: cumulative_stats() used to copy the percentile fields of the
// most recent batch instead of aggregating, so a dashboard reading after a
// quiet batch forgot every slow request before it. The reservoir now spans
// all batches; latency_samples reports its occupancy.
TEST_F(MaintenanceTest, CumulativeLatencyPercentilesSpanAllBatches) {
  core::QueryEngine engine(InitialGeneration());
  const auto requests = MakeWorkload(30, 77);

  core::ServingStats first_batch;
  engine.QueryBatch(requests, &first_batch);
  EXPECT_EQ(first_batch.latency_samples, 30u);
  engine.QueryBatch(requests);
  engine.QueryBatch(requests);

  const auto cumulative = engine.cumulative_stats();
  EXPECT_EQ(cumulative.num_requests, 90u);
  EXPECT_EQ(cumulative.latency_samples, 90u)
      << "percentiles must be estimated over every batch served, not the "
         "most recent one";
  EXPECT_GT(cumulative.p50_ms, 0.0);
  EXPECT_LE(cumulative.p50_ms, cumulative.p95_ms);
  EXPECT_LE(cumulative.p95_ms, cumulative.p99_ms);
  EXPECT_LE(cumulative.p99_ms, cumulative.max_ms);
  EXPECT_GT(cumulative.mean_ms, 0.0);
  static_assert(core::QueryEngine::kLatencyReservoirCapacity >= 1024,
                "reservoir must be big enough for stable tail estimates");
}

// ------------------------------------------ persistence across generations ---

TEST_F(MaintenanceTest, SaveLoadRoundTripsAMaintainedIndex) {
  auto mopts = FastOptions();
  core::IndexMaintainer m(InitialGeneration(), &dataset_->graph, nullptr,
                          mopts);
  ASSERT_TRUE(m.SubmitDelta(CornerDelta(0)).ok());
  ASSERT_TRUE(m.SubmitDelta(CornerDelta(1)).ok());
  m.Drain();
  ASSERT_GE(m.stats().generations_published, 1u);

  const auto maintained = m.current();
  const std::string path =
      ::testing::TempDir() + "/maintained_index.inflex";
  ASSERT_TRUE(maintained->Save(path).ok());
  auto loaded = core::InflexIndex::Load(path, &dataset_->graph);
  ASSERT_TRUE(loaded.ok());
  const auto& reloaded = loaded.ValueOrDie();

  ASSERT_EQ(reloaded.num_index_points(), maintained->num_index_points());
  for (uint32_t id = 0; id < maintained->num_index_points(); ++id) {
    EXPECT_EQ(reloaded.seed_list(id), maintained->seed_list(id))
        << "point " << id;
    EXPECT_EQ(reloaded.index_point(id), maintained->index_point(id))
        << "point " << id;
  }
  // Load() rebuilds the tree from scratch, so tree shape may differ from the
  // incrementally maintained one — but exact answers may not. Compare the
  // tree-shape-independent strategy bit-for-bit across a workload plus the
  // maintained items themselves.
  auto requests = MakeWorkload(24, 4242);
  for (size_t corner = 0; corner < 2; ++corner) {
    core::QueryRequest r;
    r.item = CornerDelta(corner).item;
    r.k = 8;
    requests.push_back(r);
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    auto& r = requests[i];
    r.options.strategy = core::QueryStrategy::kExactKnn;
    ExpectSameAnswer(reloaded.Query(r.item, r.k, r.options),
                     maintained->Query(r.item, r.k, r.options), i);
  }
  std::remove(path.c_str());
}

// ----------------------------------------------- post-insert save/load ---

// A maintained index whose tree still carries post-Insert rows (NOT
// leaf-contiguous — no Compact ran) must round-trip through Save/Load with
// bit-identical neighbor sets: Load rebuilds the tree, but exact search is
// shape-independent and the point data is preserved exactly.
TEST_F(MaintenanceTest, SaveLoadPreservesPostInsertNeighborSetsBitForBit) {
  auto mopts = FastOptions();
  mopts.rebuild_degradation = 0.75;  // keep the inserted rows in place
  core::IndexMaintainer m(InitialGeneration(), &dataset_->graph, nullptr,
                          mopts);
  ASSERT_TRUE(m.SubmitDelta(CornerDelta(0)).ok());
  ASSERT_TRUE(m.SubmitDelta(CornerDelta(3)).ok());
  m.Drain();
  ASSERT_EQ(m.stats().tree_rebuilds, 0u);
  const auto maintained = m.current();
  ASSERT_GT(maintained->tree().num_inserted(), 0u)
      << "precondition: the saved tree must carry post-Insert rows";

  const std::string path = ::testing::TempDir() + "/post_insert.inflex";
  ASSERT_TRUE(maintained->Save(path).ok());
  auto loaded_r = core::InflexIndex::Load(path, &dataset_->graph);
  ASSERT_TRUE(loaded_r.ok());
  const auto& loaded = loaded_r.ValueOrDie();

  Rng rng(606);
  for (int t = 0; t < 25; ++t) {
    const auto q = simplex::SampleUniformSimplex(4, &rng);
    const auto got = loaded.tree().ExactKnn(q, 5);
    const auto want = maintained->tree().ExactKnn(q, 5);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].point_id, want[i].point_id) << "query " << t;
      EXPECT_EQ(got[i].divergence, want[i].divergence) << "query " << t;
    }
    // The 1-NN backs the admission/coverage probe — it must agree too.
    EXPECT_EQ(loaded.tree().ExactKnn(q, 1).front().point_id,
              maintained->tree().ExactKnn(q, 1).front().point_id);
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------- delta coalescing ---

// A burst of admitted deltas whose precomputes land together must fold into
// ONE clone+publish, not one generation per delta. The pool is gated so the
// whole burst is in flight before any precompute starts; the publisher's
// coalescing window (open while precomputes are in flight) then drains all
// of them into a single batch.
TEST_F(MaintenanceTest, CoalescedBurstPublishesOneGeneration) {
  ThreadPool pool(4);
  auto mopts = FastOptions();
  mopts.pool = &pool;
  mopts.max_batch = 64;
  mopts.max_batch_delay_ms = 30'000.0;  // the in-flight gate ends the window
  core::IndexMaintainer m(InitialGeneration(), &dataset_->graph, nullptr,
                          mopts);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  for (int t = 0; t < 4; ++t) pool.Submit([opened] { opened.wait(); });

  // 12 mixtures far from every index point and from each other (3× the
  // admission threshold): every delta admits, none supersedes another.
  const auto burst = FarApartMixtures(*InitialGeneration(), 12, 0.15, 5150);
  ASSERT_EQ(burst.size(), 12u);
  for (size_t i = 0; i < burst.size(); ++i) {
    core::CatalogDelta d;
    d.id = "burst-" + std::to_string(i);
    d.item = burst[i];
    auto receipt = m.SubmitDelta(d);
    ASSERT_TRUE(receipt.ok());
    ASSERT_EQ(receipt.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted)
        << d.id << " at min divergence "
        << receipt.ValueOrDie().min_divergence;
  }

  gate.set_value();
  m.Drain();

  const auto stats = m.stats();
  EXPECT_EQ(stats.admitted, 12u);
  EXPECT_EQ(stats.superseded, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.generations_published, 1u)
      << "a coalesced burst must cost one generation, not one per delta";
  EXPECT_EQ(stats.batched_deltas, 12u);
  EXPECT_EQ(stats.index_points, 16u + 12u);
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_EQ(m.current()->num_index_points(), 28u);
}

// ------------------------------------------------------ decay sweep eviction ---

// Warm every ORIGINAL index point through the engine (ε-exact self-queries
// put exactly one hit per query on exactly that point), leave the admitted
// corner points stone cold, then sweep: the cold points are evicted, the
// index shrinks back, and (retire_admitted_items=true) their items are
// retired — resubmission re-admits.
TEST_F(MaintenanceTest, DecaySweepEvictsColdPointsAndRetiresTheirItems) {
  auto initial = InitialGeneration();
  core::QueryEngineOptions eopts;
  eopts.enable_hit_accounting = true;
  core::QueryEngine engine(initial, eopts);
  auto mopts = FastOptions();
  mopts.rebuild_degradation = 0.75;
  mopts.min_point_age_generations = 1;
  mopts.min_index_points = 4;
  core::IndexMaintainer m(initial, &dataset_->graph, &engine, mopts);

  auto first = m.SubmitDelta(CornerDelta(0));
  auto second = m.SubmitDelta(CornerDelta(1));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted);
  ASSERT_EQ(second.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted);
  m.Drain();
  ASSERT_EQ(m.stats().index_points, 18u);

  const auto gen = m.current();
  for (int pass = 0; pass < 3; ++pass) {
    for (uint32_t id = 0; id < 16; ++id) {
      core::QueryRequest req;
      req.item = simplex::TopicDistribution::Create(gen->index_point(id))
                     .ValueOrDie();
      req.k = 6;
      auto r = engine.Query(req);
      ASSERT_TRUE(r.ok());
      ASSERT_TRUE(r.ValueOrDie().epsilon_exact);
    }
  }

  m.RequestDecaySweep();
  m.Drain();

  const auto stats = m.stats();
  EXPECT_EQ(stats.decay_sweeps, 1u);
  EXPECT_EQ(stats.points_evicted, 2u);
  EXPECT_EQ(stats.index_points, 16u);
  EXPECT_EQ(m.current()->num_index_points(), 16u);
  EXPECT_EQ(engine.index_epoch(), m.epoch());
  EXPECT_EQ(engine.HitScores().size(), 16u)
      << "the hit-score fold must follow the eviction renumbering";
  // The corner points are really gone: the coverage probe no longer finds
  // anything near them.
  const auto nn = m.current()->tree().ExactKnn(CornerDelta(1).item.probs(), 1);
  EXPECT_GT(nn.front().divergence, mopts.admission_threshold);

  // ...and their items were retired, so resubmission re-admits.
  auto again = m.SubmitDelta(CornerDelta(0));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted)
      << "evicting a point must retire its item";
  m.Drain();
}

// Post-eviction staleness window (the corpus's post-eviction category seed):
// an eviction publish renumbers index points, so cached answers minted under
// the old epoch carry neighbors_used ids in the OLD numbering. Those entries
// must (a) never be served again — the epoch-tagged cache key makes them
// unreachable — and (b) never feed PointHitAccounting under the new epoch:
// Record() drops epoch-mismatched observations, and the publish-time Fold
// remaps in-flight old-epoch tallies through old_to_new. A regression in
// either direction would mis-credit hit scores and steer later sweeps at the
// wrong points.
TEST_F(MaintenanceTest, PostEvictionStaleCacheNeverFeedsHitAccounting) {
  auto initial = InitialGeneration();
  core::QueryEngineOptions eopts;
  eopts.enable_cache = true;
  eopts.enable_hit_accounting = true;
  core::QueryEngine engine(initial, eopts);
  auto mopts = FastOptions();
  mopts.min_point_age_generations = 1;
  mopts.min_index_points = 4;
  core::IndexMaintainer m(initial, &dataset_->graph, &engine, mopts);

  // Two publishes append corner points 16 and 17.
  ASSERT_TRUE(m.SubmitDelta(CornerDelta(0)).ok());
  m.Drain();
  ASSERT_TRUE(m.SubmitDelta(CornerDelta(1)).ok());
  m.Drain();
  ASSERT_EQ(m.stats().index_points, 18u);
  const uint64_t pre_sweep_epoch = engine.index_epoch();

  // Warm the cache at the corner mixtures: these entries reference the
  // corner points (ids 16/17) under the pre-sweep epoch...
  const auto gen = m.current();
  for (size_t corner = 0; corner < 2; ++corner) {
    core::QueryRequest req;
    req.item = CornerDelta(corner).item;
    req.k = 6;
    auto r = engine.Query(req);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.ValueOrDie().epsilon_exact);
    ASSERT_GE(r.ValueOrDie().neighbors_used.front().point_id, 16u);
  }
  // ...and heat every point EXCEPT base point 3, so the sweep evicts a
  // low-numbered point and the survivors above it really renumber.
  for (int pass = 0; pass < 3; ++pass) {
    for (uint32_t id = 0; id < 18; ++id) {
      if (id == 3) continue;
      core::QueryRequest req;
      req.item =
          simplex::TopicDistribution::Create(gen->index_point(id)).ValueOrDie();
      req.k = 6;
      ASSERT_TRUE(engine.Query(req).ok());
    }
  }

  m.RequestDecaySweep();
  m.Drain();
  ASSERT_EQ(m.stats().points_evicted, 1u);
  ASSERT_EQ(m.current()->num_index_points(), 17u);
  ASSERT_GT(engine.index_epoch(), pre_sweep_epoch);

  // The fold followed the renumbering: scores exist for exactly the 17
  // survivors, and the heated ex-17 corner point (now id 16) kept a warm
  // score while no phantom score survived for the evicted row.
  const std::vector<double> scores = engine.HitScores();
  ASSERT_EQ(scores.size(), 17u);
  EXPECT_GT(scores[16], 0.0) << "surviving corner point lost its history";

  // Re-asking a corner query under the new epoch must MISS (the stale entry
  // with old point ids is unreachable) and recompute against the renumbered
  // generation, crediting valid point ids only.
  for (size_t corner = 0; corner < 2; ++corner) {
    core::QueryRequest req;
    req.item = CornerDelta(corner).item;
    req.k = 6;
    auto r = engine.Query(req);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.ValueOrDie().from_cache)
        << "stale pre-eviction cache entry served under the new epoch";
    EXPECT_EQ(r.ValueOrDie().generation, engine.index_epoch());
    for (const auto& n : r.ValueOrDie().neighbors_used) {
      EXPECT_LT(n.point_id, 17u)
          << "answer references a renumbered-away point id";
    }
  }

  // Direct stale-epoch probe at the accounting layer: an observation tagged
  // with the pre-sweep epoch (as a late Record() racing the publish would
  // be) is dropped, not credited to whatever now occupies those row ids.
  core::PointHitAccounting accounting(18);
  std::vector<bbtree::Neighbor> stale = {{17u, 0.0}};
  accounting.Record(0, stale);  // live epoch: credited
  std::vector<uint32_t> old_to_new(18);
  for (uint32_t id = 0; id < 18; ++id) {
    old_to_new[id] = id < 3 ? id
                   : id == 3 ? core::kDroppedIndexPoint
                             : id - 1;
  }
  accounting.Fold(1, 17, old_to_new);
  ASSERT_EQ(accounting.HitScores().size(), 17u);
  const double folded = accounting.HitScores()[16];
  EXPECT_GT(folded, 0.0) << "pre-fold credit must follow the remap (17->16)";
  accounting.Record(0, stale);  // stale epoch, old id: must be dropped
  EXPECT_EQ(accounting.HitScores()[16], folded)
      << "stale-epoch observation leaked into the renumbered tally";
}

// With retire_admitted_items=false the maintainer keeps vouching coverage
// for every admitted item: a stone-cold point that is the LAST one covering
// its item is protected from eviction no matter the sweep.
TEST_F(MaintenanceTest, SweepProtectsLastCoverOfAdmittedItems) {
  auto initial = InitialGeneration();
  core::QueryEngineOptions eopts;
  eopts.enable_hit_accounting = true;
  core::QueryEngine engine(initial, eopts);
  auto mopts = FastOptions();
  mopts.rebuild_degradation = 0.75;
  mopts.min_point_age_generations = 1;
  mopts.min_index_points = 4;
  mopts.retire_admitted_items = false;
  core::IndexMaintainer m(initial, &dataset_->graph, &engine, mopts);

  auto receipt = m.SubmitDelta(CornerDelta(2));
  ASSERT_TRUE(receipt.ok());
  ASSERT_EQ(receipt.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted);
  m.Drain();
  ASSERT_EQ(m.stats().index_points, 17u);
  ASSERT_EQ(m.stats().generations_published, 1u);

  const auto gen = m.current();
  for (int pass = 0; pass < 3; ++pass) {
    for (uint32_t id = 0; id < 16; ++id) {
      core::QueryRequest req;
      req.item = simplex::TopicDistribution::Create(gen->index_point(id))
                     .ValueOrDie();
      req.k = 6;
      ASSERT_TRUE(engine.Query(req).ok());
    }
  }

  m.RequestDecaySweep();
  m.Drain();

  const auto stats = m.stats();
  EXPECT_EQ(stats.decay_sweeps, 1u);
  EXPECT_EQ(stats.points_evicted, 0u)
      << "the only point covering an admitted item must survive the sweep";
  EXPECT_EQ(stats.index_points, 17u);
  EXPECT_EQ(stats.generations_published, 1u)
      << "a sweep that evicts nothing must not publish a generation";

  auto again = m.SubmitDelta(CornerDelta(2));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.ValueOrDie().outcome, core::DeltaOutcome::kCovered)
      << "the protected point still covers its item";
}

// ------------------------------------------------- maintenance under storm ---

// The tentpole invariant: 8 threads storm the engine while the maintenance
// plane admits deltas and swaps generations underneath them. No answer may be
// torn — every recorded answer must be bit-identical to a serial replay
// against the exact generation that served it (recorded in
// QueryResult::generation, retained via on_publish).
TEST_F(MaintenanceTest, ConcurrentMaintenanceStress) {
  auto initial = InitialGeneration();
  ThreadPool serve_pool(8);
  core::QueryEngineOptions eopts;
  eopts.pool = &serve_pool;
  eopts.cache.num_shards = 8;
  eopts.cache.capacity = 4096;
  core::QueryEngine engine(initial, eopts);

  std::mutex gen_mu;
  std::map<uint64_t, std::shared_ptr<const core::InflexIndex>> generations;
  generations[0] = initial;

  auto mopts = FastOptions();
  mopts.rebuild_degradation = 0.08;  // let the storm cross the rebuild gate
  mopts.on_publish = [&](uint64_t epoch,
                         std::shared_ptr<const core::InflexIndex> gen) {
    std::lock_guard<std::mutex> lock(gen_mu);
    generations[epoch] = std::move(gen);
  };
  core::IndexMaintainer maintainer(initial, &dataset_->graph, &engine, mopts);

  const auto requests = MakeWorkload(48, 31337);
  struct Recorded {
    size_t request;
    Result<core::QueryResult> result = Status::Internal("unset");
  };

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::vector<std::vector<Recorded>> recorded(kThreads);
  std::atomic<bool> storming{true};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      recorded[t].reserve(kRounds * requests.size());
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < requests.size(); ++i) {
          recorded[t].push_back(Recorded{i, engine.Query(requests[i])});
        }
      }
    });
  }

  // Maintenance runs concurrently with the storm: a stream of far-apart
  // corner items, spaced so several land mid-storm.
  size_t admitted = 0;
  for (size_t d = 0; d < 8 && storming.load(); ++d) {
    core::CatalogDelta delta =
        CornerDelta(d % 4, d < 4 ? 0.9997 : 0.999);
    delta.id = "storm-" + std::to_string(d);
    auto receipt = maintainer.SubmitDelta(delta);
    ASSERT_TRUE(receipt.ok());
    if (receipt.ValueOrDie().outcome == core::DeltaOutcome::kAdmitted) {
      ++admitted;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& th : threads) th.join();
  storming.store(false);
  maintainer.Drain();

  const auto stats = maintainer.stats();
  EXPECT_GE(admitted, 1u) << "the storm must observe at least one swap";
  EXPECT_GE(stats.generations_published, 1u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(engine.index_epoch(), maintainer.epoch());
  {
    std::lock_guard<std::mutex> lock(gen_mu);
    EXPECT_EQ(generations.size(), 1 + stats.generations_published);
  }

  // Serial replay: every answer against its own pinned generation.
  size_t replayed = 0;
  for (const auto& per_thread : recorded) {
    for (const auto& rec : per_thread) {
      const auto& req = requests[rec.request];
      std::shared_ptr<const core::InflexIndex> gen;
      if (rec.result.ok()) {
        std::lock_guard<std::mutex> lock(gen_mu);
        auto it = generations.find(rec.result.ValueOrDie().generation);
        ASSERT_NE(it, generations.end())
            << "answer served by an unknown generation "
            << rec.result.ValueOrDie().generation;
        gen = it->second;
      } else {
        gen = generations[engine.index_epoch()];
      }
      ExpectSameAnswer(rec.result, gen->Query(req.item, req.k, req.options),
                       rec.request);
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, static_cast<size_t>(kThreads) * kRounds *
                          requests.size());
}

// The same invariant under the FULL maintenance plane: coalesced delta
// bursts AND decay sweeps (evictions renumber index points!) race a serving
// storm with hit accounting on. Every recorded answer must still replay
// bit-identically against its pinned generation, and the generation history
// must be exactly the published sequence. Runs under TSan via
// tests/run_sanitized_stress.sh.
TEST_F(MaintenanceTest, EvictionCoalescingStormKeepsAnswersBitIdentical) {
  auto initial = InitialGeneration();
  ThreadPool serve_pool(8);
  core::QueryEngineOptions eopts;
  eopts.pool = &serve_pool;
  eopts.cache.num_shards = 8;
  eopts.cache.capacity = 4096;
  eopts.enable_hit_accounting = true;
  core::QueryEngine engine(initial, eopts);

  std::mutex gen_mu;
  std::map<uint64_t, std::shared_ptr<const core::InflexIndex>> generations;
  generations[0] = initial;

  ThreadPool maint_pool(2);
  auto mopts = FastOptions();
  mopts.pool = &maint_pool;
  mopts.max_batch = 8;
  mopts.max_batch_delay_ms = 5.0;
  mopts.min_point_age_generations = 1;
  mopts.min_index_points = 8;
  mopts.eviction_score_threshold = 0.25;
  mopts.on_publish = [&](uint64_t epoch,
                         std::shared_ptr<const core::InflexIndex> gen) {
    std::lock_guard<std::mutex> lock(gen_mu);
    generations[epoch] = std::move(gen);
  };
  core::IndexMaintainer maintainer(initial, &dataset_->graph, &engine, mopts);

  const auto requests = MakeWorkload(32, 2718);
  struct Recorded {
    size_t request;
    Result<core::QueryResult> result = Status::Internal("unset");
  };
  constexpr int kThreads = 6;
  constexpr int kRounds = 4;
  std::vector<std::vector<Recorded>> recorded(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      recorded[t].reserve(kRounds * requests.size());
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < requests.size(); ++i) {
          recorded[t].push_back(Recorded{i, engine.Query(requests[i])});
        }
      }
    });
  }

  // Maintenance storm: 12 mutually-admissible mixtures interleaved with
  // sweep requests so evictions and coalesced publications overlap the
  // serving load.
  const auto storm = FarApartMixtures(*initial, 12, 0.15, 2719);
  for (size_t d = 0; d < storm.size(); ++d) {
    core::CatalogDelta delta;
    delta.id = "evict-storm-" + std::to_string(d);
    delta.item = storm[d];
    ASSERT_TRUE(maintainer.SubmitDelta(delta).ok());
    if ((d + 1) % 3 == 0) maintainer.RequestDecaySweep();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  maintainer.RequestDecaySweep();
  for (auto& th : threads) th.join();
  maintainer.Drain();

  const auto stats = maintainer.stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_GE(stats.decay_sweeps, 1u);
  EXPECT_GE(stats.generations_published, 1u);
  EXPECT_EQ(engine.index_epoch(), maintainer.epoch());
  EXPECT_EQ(engine.HitScores().size(),
            maintainer.current()->num_index_points());
  {
    std::lock_guard<std::mutex> lock(gen_mu);
    EXPECT_EQ(generations.size(), 1 + stats.generations_published);
  }

  // Serial replay: every answer against its own pinned generation — even
  // answers served by generations whose points were later evicted and
  // renumbered.
  size_t replayed = 0;
  for (const auto& per_thread : recorded) {
    for (const auto& rec : per_thread) {
      const auto& req = requests[rec.request];
      std::shared_ptr<const core::InflexIndex> gen;
      if (rec.result.ok()) {
        std::lock_guard<std::mutex> lock(gen_mu);
        auto it = generations.find(rec.result.ValueOrDie().generation);
        ASSERT_NE(it, generations.end())
            << "answer served by an unknown generation "
            << rec.result.ValueOrDie().generation;
        gen = it->second;
      } else {
        gen = generations[engine.index_epoch()];
      }
      ExpectSameAnswer(rec.result, gen->Query(req.item, req.k, req.options),
                       rec.request);
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, static_cast<size_t>(kThreads) * kRounds *
                          requests.size());
}

}  // namespace
}  // namespace inflex
