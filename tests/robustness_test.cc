// Robustness / failure-injection tests: every persisted artifact must fail
// cleanly (Status, never a crash or silent garbage) under truncation and
// byte corruption, and API boundaries must reject hostile input.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/dataset_io.h"
#include "data/synthetic.h"
#include "graph/graph_io.h"
#include "inflex/inflex_index.h"
#include "tic/propagation_log.h"
#include "util/random.h"
#include "util/serialize.h"

namespace inflex {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in), {});
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ArtifactFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticDatasetOptions dopts;
    dopts.num_users = 120;
    dopts.num_topics = 3;
    dopts.num_items = 40;
    dopts.seed = 777;
    auto ds = data::GenerateSyntheticDataset(dopts);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::SyntheticDataset(std::move(ds).ValueOrDie());

    core::InflexBuildOptions bopts;
    bopts.index_points.num_index_points = 10;
    bopts.index_points.num_dirichlet_samples = 500;
    bopts.seed_list_length = 8;
    bopts.oracle_snapshots = 20;
    auto index = core::InflexIndex::Build(dataset_->graph, dataset_->catalog,
                                          bopts);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(graph::SaveTopicGraph(dataset_->graph,
                                      TempPath("fuzz_graph.bin"))
                    .ok());
    ASSERT_TRUE(dataset_->log.Save(TempPath("fuzz_log.bin")).ok());
    ASSERT_TRUE(
        data::SaveCatalog(dataset_->catalog, TempPath("fuzz_catalog.bin"))
            .ok());
    ASSERT_TRUE(index.ValueOrDie().Save(TempPath("fuzz_index.bin")).ok());
  }

  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  // Attempts to load `path` with the matching loader; must return a Status
  // (any Status) without crashing, and must NOT return OK for files that
  // were damaged in the header or truncated mid-payload.
  static bool TryLoad(const std::string& path) {
    if (path.find("graph") != std::string::npos) {
      return graph::LoadTopicGraph(path).ok();
    }
    if (path.find("log") != std::string::npos) {
      return tic::PropagationLog::Load(path).ok();
    }
    if (path.find("catalog") != std::string::npos) {
      return data::LoadCatalog(path).ok();
    }
    return core::InflexIndex::Load(path, nullptr).ok();
  }

  static data::SyntheticDataset* dataset_;
};

data::SyntheticDataset* ArtifactFuzzTest::dataset_ = nullptr;

TEST_F(ArtifactFuzzTest, TruncationAlwaysFailsCleanly) {
  for (const char* name :
       {"fuzz_graph.bin", "fuzz_log.bin", "fuzz_catalog.bin",
        "fuzz_index.bin"}) {
    const std::string orig = TempPath(name);
    const std::vector<char> bytes = ReadAll(orig);
    ASSERT_GT(bytes.size(), 16u);
    // Truncate at a spread of points including awkward mid-field offsets.
    for (size_t cut : {size_t{0}, size_t{1}, size_t{7}, bytes.size() / 3,
                       bytes.size() / 2, bytes.size() - 1}) {
      const std::string path = TempPath(std::string("trunc_") + name);
      WriteAll(path, std::vector<char>(bytes.begin(), bytes.begin() + cut));
      EXPECT_FALSE(TryLoad(path)) << name << " truncated at " << cut;
    }
  }
}

TEST_F(ArtifactFuzzTest, HeaderCorruptionDetected) {
  for (const char* name :
       {"fuzz_graph.bin", "fuzz_log.bin", "fuzz_catalog.bin",
        "fuzz_index.bin"}) {
    const std::string orig = TempPath(name);
    std::vector<char> bytes = ReadAll(orig);
    bytes[0] ^= 0x5a;  // break the magic
    const std::string path = TempPath(std::string("badmagic_") + name);
    WriteAll(path, bytes);
    EXPECT_FALSE(TryLoad(path)) << name;
  }
}

TEST_F(ArtifactFuzzTest, RandomByteFlipsNeverCrash) {
  // Any outcome is allowed except a crash; most flips must be detected, but
  // flips in payload doubles can legitimately load. We assert no crash and
  // that loads of *length-field* corruption fail.
  Rng rng(4242);
  for (const char* name :
       {"fuzz_graph.bin", "fuzz_log.bin", "fuzz_catalog.bin",
        "fuzz_index.bin"}) {
    const std::string orig = TempPath(name);
    const std::vector<char> bytes = ReadAll(orig);
    for (int trial = 0; trial < 40; ++trial) {
      std::vector<char> mutated = bytes;
      const size_t pos = rng.UniformInt(mutated.size());
      mutated[pos] ^= static_cast<char>(1 + rng.UniformInt(255));
      const std::string path = TempPath(std::string("flip_") + name);
      WriteAll(path, mutated);
      (void)TryLoad(path);  // must not crash; return value unconstrained
    }
  }
}

TEST_F(ArtifactFuzzTest, OversizedLengthFieldRejectedWithoutAllocation) {
  // Craft a file whose vector length claims ~2^60 elements: the reader must
  // reject it instead of attempting the allocation.
  const std::string path = TempPath("huge_len.bin");
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(WriteHeader(&w.ValueOrDie(), 0x494e4758, 1).ok());  // graph
    ASSERT_TRUE(w.ValueOrDie().WritePod<uint64_t>(100).ok());  // nodes
    ASSERT_TRUE(w.ValueOrDie().WritePod<uint64_t>(3).ok());    // topics
    ASSERT_TRUE(w.ValueOrDie().WritePod<uint64_t>(1ull << 60).ok());
    ASSERT_TRUE(w.ValueOrDie().Close().ok());
  }
  EXPECT_FALSE(graph::LoadTopicGraph(path).ok());
}

TEST_F(ArtifactFuzzTest, CrossArtifactConfusionRejected) {
  // Loading one artifact type with another's loader must fail (magic check).
  EXPECT_FALSE(graph::LoadTopicGraph(TempPath("fuzz_log.bin")).ok());
  EXPECT_FALSE(tic::PropagationLog::Load(TempPath("fuzz_catalog.bin")).ok());
  EXPECT_FALSE(data::LoadCatalog(TempPath("fuzz_index.bin")).ok());
  EXPECT_FALSE(
      core::InflexIndex::Load(TempPath("fuzz_graph.bin"), nullptr).ok());
}

TEST_F(ArtifactFuzzTest, DatasetDirectoryWithMissingPiecesFails) {
  const std::string dir = TempPath("partial_dataset");
  ASSERT_TRUE(data::SaveDataset(*dataset_, dir).ok());
  ASSERT_TRUE(data::LoadDataset(dir).ok());
  std::filesystem::remove(dir + "/log.bin");
  EXPECT_FALSE(data::LoadDataset(dir).ok());
}

}  // namespace
}  // namespace inflex
