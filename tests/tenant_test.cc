// Tests for the multi-tenant catalog layer (src/tenant/): RCU tenant-table
// lifecycle (create/drop/lookup under concurrency), deterministic
// token-bucket admission budgets via the router's injectable clock,
// per-tenant eviction floors (one tenant's decay sweep never touches a
// neighbor's index points), and a multi-tenant wire storm with concurrent
// tenant create/drop under live per-tenant generation publishing whose
// every answer replays bit-identically against the generation — of the
// tenant — that served it (run under TSan by run_sanitized_stress.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "inflex/index_maintainer.h"
#include "inflex/inflex_index.h"
#include "inflex/query_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "simplex/sampling.h"
#include "tenant/tenant_registry.h"
#include "tenant/tenant_router.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace inflex {
namespace {

class TenantTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticDatasetOptions dopts;
    dopts.num_users = 220;
    dopts.num_topics = 4;
    dopts.num_items = 70;
    dopts.seed = 616;
    auto ds = data::GenerateSyntheticDataset(dopts);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::SyntheticDataset(std::move(ds).ValueOrDie());
    core::InflexBuildOptions bopts;
    bopts.index_points.num_index_points = 20;
    bopts.index_points.num_dirichlet_samples = 2000;
    bopts.seed_list_length = 12;
    bopts.oracle_snapshots = 30;
    auto index =
        core::InflexIndex::Build(dataset_->graph, dataset_->catalog, bopts);
    ASSERT_TRUE(index.ok());
    index_ = std::make_shared<core::InflexIndex>(
        std::move(index).ValueOrDie());
  }
  static void TearDownTestSuite() {
    index_.reset();
    delete dataset_;
    dataset_ = nullptr;
  }

  /// A far-corner mixture: certain admission against this index.
  static simplex::TopicDistribution Corner(size_t topic,
                                           double mass = 0.9997) {
    std::vector<double> gamma(4, (1.0 - mass) / 3.0);
    gamma[topic] = mass;
    return simplex::TopicDistribution::Create(gamma).ValueOrDie();
  }

  /// Deterministic mixed workload (no segment masks: every request must
  /// succeed so storm answers replay unconditionally).
  static std::vector<core::QueryRequest> MakeWorkload(size_t n,
                                                      uint64_t seed) {
    Rng rng(seed);
    std::vector<core::QueryRequest> reqs;
    reqs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      core::QueryRequest r;
      r.item = simplex::TopicDistribution::Create(
                   simplex::SampleUniformSimplex(4, &rng))
                   .ValueOrDie();
      r.k = 3 + (i % 3) * 4;
      switch (i % 3) {
        case 0:
          r.options.strategy = core::QueryStrategy::kInflex;
          break;
        case 1:
          r.options.strategy = core::QueryStrategy::kExactKnn;
          break;
        case 2:
          r.options.strategy = core::QueryStrategy::kApproxKnnSel;
          break;
      }
      reqs.push_back(std::move(r));
    }
    return reqs;
  }

  static data::SyntheticDataset* dataset_;
  static std::shared_ptr<core::InflexIndex> index_;
};

data::SyntheticDataset* TenantTest::dataset_ = nullptr;
std::shared_ptr<core::InflexIndex> TenantTest::index_;

// ---------------------------------------------------------------------------
// Registry lifecycle
// ---------------------------------------------------------------------------

TEST_F(TenantTest, RegistryCreateLookupDropLifecycle) {
  ThreadPool pool(2);
  tenant::TenantRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Lookup("acme"), nullptr);
  EXPECT_EQ(registry.Resolve(""), nullptr);  // no default registered yet

  tenant::TenantOptions topts;
  topts.engine.pool = &pool;
  topts.with_maintainer = false;
  topts.id = "";
  EXPECT_FALSE(registry.CreateTenant(topts, index_, &dataset_->graph).ok());
  EXPECT_FALSE(
      registry.CreateTenant({.id = "x"}, nullptr, &dataset_->graph).ok());

  topts.id = tenant::kDefaultTenantId;
  ASSERT_TRUE(registry.CreateTenant(topts, index_, &dataset_->graph).ok());
  topts.id = "acme";
  auto acme = registry.CreateTenant(topts, index_, &dataset_->graph);
  ASSERT_TRUE(acme.ok());
  EXPECT_EQ(registry.size(), 2u);

  // Duplicate ids are rejected, not replaced.
  EXPECT_EQ(
      registry.CreateTenant(topts, index_, &dataset_->graph).status().code(),
      StatusCode::kAlreadyExists);

  // Lock-free lookup and the v1 empty-id resolution rule.
  EXPECT_EQ(registry.Lookup("acme"), acme.ValueOrDie());
  EXPECT_EQ(registry.Resolve("")->id(), tenant::kDefaultTenantId);
  EXPECT_EQ(registry.Resolve("acme"), acme.ValueOrDie());
  EXPECT_EQ(registry.Lookup("ghost"), nullptr);

  // List is sorted by id for deterministic iteration.
  const auto listed = registry.List();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0]->id(), "acme");
  EXPECT_EQ(listed[1]->id(), tenant::kDefaultTenantId);

  // A query-only tenant exposes no maintenance plane.
  EXPECT_EQ(acme.ValueOrDie()->maintainer(), nullptr);
  EXPECT_FALSE(acme.ValueOrDie()->Snapshot().has_maintainer);

  // Drop unpublishes immediately; holders keep the tenant alive.
  std::shared_ptr<tenant::Tenant> pinned = registry.Lookup("acme");
  ASSERT_TRUE(registry.DropTenant("acme").ok());
  EXPECT_EQ(registry.Lookup("acme"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.DropTenant("acme").code(), StatusCode::kNotFound);
  EXPECT_NE(pinned->engine(), nullptr);  // still serveable while pinned
}

TEST_F(TenantTest, AdoptedTenantWrapsExternalStack) {
  ThreadPool pool(2);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  core::IndexMaintainerOptions mopts;
  mopts.oracle_snapshots = 10;
  core::IndexMaintainer maintainer(index_, &dataset_->graph, &engine, mopts);

  tenant::TenantRegistry registry;
  auto adopted =
      registry.AdoptTenant("wrapped", tenant::TenantBudget{}, &engine,
                           &maintainer);
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ(adopted.ValueOrDie()->engine(), &engine);
  EXPECT_EQ(adopted.ValueOrDie()->maintainer(), &maintainer);
  EXPECT_TRUE(adopted.ValueOrDie()->Snapshot().has_maintainer);
  ASSERT_TRUE(registry.DropTenant("wrapped").ok());
}

// ---------------------------------------------------------------------------
// Token-bucket budgets (deterministic via the router's injectable clock)
// ---------------------------------------------------------------------------

TEST_F(TenantTest, TokenBucketEnforcesBurstAndRefillRate) {
  ThreadPool pool(2);
  tenant::TenantRegistry registry;
  tenant::TenantOptions topts;
  topts.engine.pool = &pool;
  topts.with_maintainer = false;
  topts.id = "limited";
  topts.budget.query_rate_per_sec = 5.0;
  topts.budget.query_burst = 3.0;
  ASSERT_TRUE(registry.CreateTenant(topts, index_, &dataset_->graph).ok());
  topts.id = "open";
  topts.budget = tenant::TenantBudget{};  // unlimited
  ASSERT_TRUE(registry.CreateTenant(topts, index_, &dataset_->graph).ok());

  std::atomic<uint64_t> now_ns{0};
  tenant::TenantRouter::Options ropts;
  ropts.clock_ns = [&now_ns] { return now_ns.load(); };
  tenant::TenantRouter router(&registry, ropts);

  // The bucket primes full: the burst is spendable immediately.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(router.RouteQuery("limited").decision,
              tenant::RouteDecision::kOk)
        << "burst query " << i;
  }
  tenant::Route shed = router.RouteQuery("limited");
  EXPECT_EQ(shed.decision, tenant::RouteDecision::kShedQuery);
  ASSERT_NE(shed.tenant, nullptr);  // set so callers can stamp counters
  EXPECT_EQ(shed.tenant->id(), "limited");

  // 5 tokens/s: 200 ms buys exactly one query, and tokens cap at the burst.
  now_ns.fetch_add(200'000'000ull);
  EXPECT_EQ(router.RouteQuery("limited").decision,
            tenant::RouteDecision::kOk);
  EXPECT_EQ(router.RouteQuery("limited").decision,
            tenant::RouteDecision::kShedQuery);
  now_ns.fetch_add(3'600'000'000'000ull);  // an hour refills to burst, not 18k
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(router.RouteQuery("limited").decision,
              tenant::RouteDecision::kOk)
        << "post-idle query " << i;
  }
  EXPECT_EQ(router.RouteQuery("limited").decision,
            tenant::RouteDecision::kShedQuery);

  // An unlimited tenant never sheds; unknown ids never route.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(router.RouteQuery("open").decision, tenant::RouteDecision::kOk);
  }
  tenant::Route unknown = router.RouteQuery("ghost");
  EXPECT_EQ(unknown.decision, tenant::RouteDecision::kUnknownTenant);
  EXPECT_EQ(unknown.tenant, nullptr);

  // Deltas resolve + count, but are never bucket-charged (back-pressure is
  // the tenant maintainer's pending watermark).
  EXPECT_EQ(router.RouteDelta("limited").decision, tenant::RouteDecision::kOk);

  const tenant::TenantStats stats = registry.Lookup("limited")->Snapshot();
  EXPECT_EQ(stats.queries_admitted, 7u);
  EXPECT_EQ(stats.queries_shed, 3u);
  EXPECT_EQ(stats.serving.shed_count, 3u);  // mirrored into serving stats
  EXPECT_EQ(stats.deltas_routed, 1u);
  EXPECT_EQ(registry.Lookup("open")->Snapshot().queries_shed, 0u);
}

// ---------------------------------------------------------------------------
// Per-tenant eviction floors (satellite: maintainer knobs are per tenant)
// ---------------------------------------------------------------------------

// Two tenants run the identical churn + heat + sweep scenario but with
// different min_index_points floors; a third tenant idles. Each sweep must
// respect its own tenant's floor, and the idle tenant's generation pointer
// must come through the whole scenario untouched.
TEST_F(TenantTest, DecaySweepsHonorPerTenantFloorsAndNeverCrossTenants) {
  ThreadPool pool(4);
  tenant::TenantRegistry registry;
  const size_t base_points = index_->num_index_points();  // 20

  auto make_tenant = [&](const std::string& id, size_t floor) {
    tenant::TenantOptions topts;
    topts.id = id;
    topts.engine.pool = &pool;
    topts.engine.enable_hit_accounting = true;
    topts.maintainer.admission_threshold = 0.05;
    topts.maintainer.oracle_snapshots = 10;
    topts.maintainer.max_batch_delay_ms = 0.0;
    topts.maintainer.min_index_points = floor;
    ASSERT_TRUE(registry.CreateTenant(topts, index_, &dataset_->graph).ok())
        << id;
  };
  make_tenant("tight", base_points + 1);   // sweep may evict at most 1
  make_tenant("loose", base_points - 4);   // sweep may evict up to 6
  make_tenant("idle", base_points);

  auto run_scenario = [&](const std::string& id) {
    std::shared_ptr<tenant::Tenant> t = registry.Lookup(id);
    ASSERT_NE(t, nullptr);
    core::IndexMaintainer* maintainer = t->maintainer();
    // Two certain admissions age the base points past the sweep's
    // min_point_age_generations grace period (2 publications).
    for (size_t c = 0; c < 2; ++c) {
      core::CatalogDelta delta;
      delta.id = id + "-churn-" + std::to_string(c);
      delta.item = Corner(c);
      auto receipt = maintainer->SubmitDelta(delta);
      ASSERT_TRUE(receipt.ok());
      ASSERT_EQ(receipt.ValueOrDie().outcome, core::DeltaOutcome::kAdmitted);
      maintainer->Drain();
    }
    // Heat the churn points and the first 4 base points (ε-exact queries
    // credit exactly their own point); base points 4..19 stay cold.
    auto snapshot = t->engine()->index_snapshot();
    for (size_t rep = 0; rep < 3; ++rep) {
      for (uint32_t id_hot = 0; id_hot < 4; ++id_hot) {
        core::QueryRequest req;
        req.item = simplex::TopicDistribution::Create(
                       snapshot->index_point(id_hot))
                       .ValueOrDie();
        req.k = 8;
        ASSERT_TRUE(t->engine()->Query(req).ok());
      }
      for (size_t c = 0; c < 2; ++c) {
        core::QueryRequest req;
        req.item = Corner(c);
        req.k = 8;
        ASSERT_TRUE(t->engine()->Query(req).ok());
      }
    }
    maintainer->RequestDecaySweep();
    maintainer->Drain();
  };
  run_scenario("tight");
  run_scenario("loose");

  // 22 points going in, 16 cold eviction candidates: each tenant's sweep
  // stops at ITS OWN floor.
  const core::MaintenanceStats tight =
      registry.Lookup("tight")->Snapshot().maintenance;
  const core::MaintenanceStats loose =
      registry.Lookup("loose")->Snapshot().maintenance;
  EXPECT_EQ(tight.decay_sweeps, 1u);
  EXPECT_EQ(tight.points_evicted, 1u);
  EXPECT_EQ(tight.index_points, base_points + 1);
  EXPECT_EQ(loose.decay_sweeps, 1u);
  EXPECT_EQ(loose.points_evicted, 6u);
  EXPECT_EQ(loose.index_points, base_points - 4);

  // The idle tenant was never touched: same generation OBJECT, not just the
  // same epoch — no sweep, delta, or publication crossed tenants.
  std::shared_ptr<tenant::Tenant> idle = registry.Lookup("idle");
  EXPECT_EQ(idle->engine()->index_snapshot().get(), index_.get());
  EXPECT_EQ(idle->engine()->index_epoch(), 0u);
  const core::MaintenanceStats istats = idle->Snapshot().maintenance;
  EXPECT_EQ(istats.submitted, 0u);
  EXPECT_EQ(istats.decay_sweeps, 0u);
  EXPECT_EQ(istats.generations_published, 0u);
}

// ---------------------------------------------------------------------------
// Concurrent registry churn (pure table hammer, no sockets — TSan fodder)
// ---------------------------------------------------------------------------

TEST_F(TenantTest, ConcurrentCreateDropLookupKeepsTableCoherent) {
  ThreadPool pool(4);
  tenant::TenantRegistry registry;
  tenant::TenantOptions base;
  base.engine.pool = &pool;
  base.with_maintainer = false;
  base.id = tenant::kDefaultTenantId;
  ASSERT_TRUE(registry.CreateTenant(base, index_, &dataset_->graph).ok());

  constexpr size_t kChurners = 3;
  constexpr size_t kRounds = 12;
  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};

  std::vector<std::thread> churners;
  for (size_t t = 0; t < kChurners; ++t) {
    churners.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        const std::string id =
            "churn-" + std::to_string(t) + "-" + std::to_string(round);
        tenant::TenantOptions topts = base;
        topts.id = id;
        auto created = registry.CreateTenant(topts, index_, &dataset_->graph);
        if (!created.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // The freshly published tenant must be visible to its creator.
        if (registry.Lookup(id) == nullptr) failures.fetch_add(1);
        if (!registry.DropTenant(id).ok()) failures.fetch_add(1);
        if (registry.Lookup(id) != nullptr) failures.fetch_add(1);
      }
    });
  }
  // Readers hammer lock-free lookups and snapshot-holding queries while the
  // table churns underneath them.
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      const auto workload = MakeWorkload(4, 900 + t);
      size_t spin = 0;
      while (!done.load()) {
        std::shared_ptr<tenant::Tenant> def = registry.Resolve("");
        if (def == nullptr) {
          failures.fetch_add(1);
          break;
        }
        auto result =
            def->engine()->Query(workload[spin % workload.size()]);
        if (!result.ok()) failures.fetch_add(1);
        // Pinned churn tenants stay serveable even if dropped mid-hold.
        std::shared_ptr<tenant::Tenant> any =
            registry.Lookup("churn-0-" + std::to_string(spin % kRounds));
        if (any != nullptr) {
          if (!any->engine()->Query(workload[0]).ok()) failures.fetch_add(1);
        }
        for (const auto& listed : registry.List()) {
          if (listed == nullptr) failures.fetch_add(1);
        }
        ++spin;
      }
    });
  }
  for (auto& c : churners) c.join();
  done.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(registry.size(), 1u);  // only the default survived the churn
}

// ---------------------------------------------------------------------------
// Multi-tenant wire storm (the TSan gate runs this under -fsanitize=thread)
// ---------------------------------------------------------------------------

// Stable tenants take concurrent queries AND deltas over one server while a
// churn thread creates and drops short-lived tenants (each publishing a
// generation of its own before the drain-on-drop). Every kOk answer is
// replayed bit-for-bit against the generation — of the tenant — that served
// it; queries racing a drop may only fail with kInvalidRequest (unknown
// tenant), never hang, crash, or cross catalogs.
TEST_F(TenantTest, MultiTenantStormRepliesBitIdenticalPerTenantGeneration) {
  ThreadPool pool(4);
  tenant::TenantRegistry registry;

  // generations[tenant][epoch] -> the published index, fed by per-tenant
  // on_publish callbacks; epoch 0 is the shared initial index.
  std::mutex generations_mu;
  std::map<std::string,
           std::map<uint64_t, std::shared_ptr<const core::InflexIndex>>>
      generations;

  auto make_tenant = [&](const std::string& id) {
    tenant::TenantOptions topts;
    topts.id = id;
    topts.engine.pool = &pool;
    topts.maintainer.admission_threshold = 0.05;
    topts.maintainer.oracle_snapshots = 10;
    topts.maintainer.on_publish =
        [&generations_mu, &generations, id](
            uint64_t epoch, std::shared_ptr<const core::InflexIndex> gen) {
          std::lock_guard<std::mutex> lock(generations_mu);
          generations[id][epoch] = std::move(gen);
        };
    {
      std::lock_guard<std::mutex> lock(generations_mu);
      generations[id][0] = index_;
    }
    return registry.CreateTenant(topts, index_, &dataset_->graph);
  };
  ASSERT_TRUE(make_tenant(tenant::kDefaultTenantId).ok());
  ASSERT_TRUE(make_tenant("alpha").ok());
  ASSERT_TRUE(make_tenant("beta").ok());

  tenant::TenantRouter router(&registry);
  net::InflexServerOptions sopts;
  sopts.router = &router;
  sopts.num_workers = 4;
  net::InflexServer server(registry.Resolve("")->engine(), sopts);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  struct Answer {
    std::string tenant;
    core::QueryRequest request;
    uint64_t epoch;
    std::vector<uint32_t> seeds;
  };
  constexpr size_t kQueryThreads = 4;
  constexpr size_t kPerThread = 18;
  std::vector<std::vector<Answer>> answers(kQueryThreads + 1);
  std::atomic<size_t> failures{0};
  std::mutex failures_mu;
  std::string failure_detail;
  auto record_failure = [&](const std::string& detail) {
    failures.fetch_add(1);
    std::lock_guard<std::mutex> lock(failures_mu);
    failure_detail += detail + "\n";
  };

  // Stable-tenant query threads (alternating alpha/beta).
  std::vector<std::thread> query_threads;
  for (size_t t = 0; t < kQueryThreads; ++t) {
    query_threads.emplace_back([&, t] {
      const std::string tenant_id = (t % 2 == 0) ? "alpha" : "beta";
      auto client = net::InflexClient::Connect("127.0.0.1", port, 20000);
      if (!client.ok()) {
        record_failure("connect: " + client.status().ToString());
        return;
      }
      client.ValueOrDie().set_tenant(tenant_id);
      for (const auto& request : MakeWorkload(kPerThread, 3000 + t)) {
        auto resp = client.ValueOrDie().Query(request);
        if (!resp.ok()) {
          record_failure("query transport: " + resp.status().ToString());
          return;
        }
        if (resp.ValueOrDie().status != net::WireStatus::kOk) {
          record_failure(std::string("query status: ") +
                         net::WireStatusName(resp.ValueOrDie().status));
          return;
        }
        answers[t].push_back(Answer{tenant_id, request,
                                    resp.ValueOrDie().epoch,
                                    resp.ValueOrDie().seeds});
      }
    });
  }

  // Per-tenant generation churn: far-corner deltas into alpha and beta.
  std::vector<std::thread> delta_threads;
  for (const std::string tenant_id : {"alpha", "beta"}) {
    delta_threads.emplace_back([&, tenant_id] {
      auto client = net::InflexClient::Connect("127.0.0.1", port, 20000);
      if (!client.ok()) {
        record_failure("delta connect: " + client.status().ToString());
        return;
      }
      client.ValueOrDie().set_tenant(tenant_id);
      for (size_t i = 0; i < 4; ++i) {
        const double mass = 0.999 - 1e-4 * static_cast<double>(i) -
                            (tenant_id == "alpha" ? 0.0 : 5e-5);
        std::vector<double> gamma(4, (1.0 - mass) / 3.0);
        gamma[i % 4] = mass;
        auto resp = client.ValueOrDie().SubmitDelta(
            tenant_id + "-delta-" + std::to_string(i), gamma);
        if (!resp.ok()) {
          record_failure("delta transport: " + resp.status().ToString());
          return;
        }
        if (!resp.ValueOrDie().ok()) {
          record_failure(std::string("delta status: ") +
                         net::WireStatusName(resp.ValueOrDie().status));
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(4));
      }
    });
  }

  // Tenant lifecycle churn: create, feed one delta, drop (drain-on-drop
  // publishes before the registration dies) — while racers query the same
  // names and pin dropped tenants through their in-flight requests.
  constexpr size_t kChurnTenants = 6;
  std::atomic<bool> churn_done{false};
  std::thread churn_thread([&] {
    auto client = net::InflexClient::Connect("127.0.0.1", port, 20000);
    if (!client.ok()) {
      record_failure("churn connect: " + client.status().ToString());
      return;
    }
    for (size_t i = 0; i < kChurnTenants; ++i) {
      const std::string id = "churn-" + std::to_string(i);
      if (!make_tenant(id).ok()) {
        record_failure("churn create failed: " + id);
        return;
      }
      client.ValueOrDie().set_tenant(id);
      auto resp = client.ValueOrDie().SubmitDelta(id + "-delta",
                                                  {0.9995, 2e-4, 2e-4, 1e-4});
      if (!resp.ok() || !resp.ValueOrDie().ok()) {
        record_failure("churn delta failed: " + id);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (!registry.DropTenant(id, /*drain=*/true).ok()) {
        record_failure("churn drop failed: " + id);
        return;
      }
    }
    churn_done.store(true);
  });
  std::thread racer_thread([&] {
    auto client = net::InflexClient::Connect("127.0.0.1", port, 20000);
    if (!client.ok()) {
      record_failure("racer connect: " + client.status().ToString());
      return;
    }
    const auto workload = MakeWorkload(6, 8600);
    size_t spin = 0;
    while (!churn_done.load() && failures.load() == 0) {
      const std::string id =
          "churn-" + std::to_string(spin % kChurnTenants);
      client.ValueOrDie().set_tenant(id);
      auto resp = client.ValueOrDie().Query(workload[spin % workload.size()]);
      if (!resp.ok()) {
        record_failure("racer transport: " + resp.status().ToString());
        return;
      }
      const net::WireResponse& got = resp.ValueOrDie();
      if (got.status == net::WireStatus::kOk) {
        answers[kQueryThreads].push_back(
            Answer{id, workload[spin % workload.size()], got.epoch,
                   got.seeds});
      } else if (got.status != net::WireStatus::kInvalidRequest) {
        // The only acceptable failure while racing create/drop is "unknown
        // tenant" — anything else is a routing bug.
        record_failure(std::string("racer status: ") +
                       net::WireStatusName(got.status) + " " + got.message);
        return;
      }
      ++spin;
    }
  });

  for (auto& t : query_threads) t.join();
  for (auto& t : delta_threads) t.join();
  churn_thread.join();
  racer_thread.join();
  ASSERT_EQ(failures.load(), 0u) << failure_detail;

  server.Stop();  // drains every registered tenant

  // Stable tenants diverged: both published generations of their own.
  EXPECT_GE(registry.Lookup("alpha")->engine()->index_epoch(), 1u);
  EXPECT_GE(registry.Lookup("beta")->engine()->index_epoch(), 1u);
  EXPECT_EQ(registry.Resolve("")->engine()->index_epoch(), 0u);

  // Every answer replays bit-identically against ITS tenant's generation.
  size_t replayed = 0;
  for (const auto& per_thread : answers) {
    for (const Answer& a : per_thread) {
      std::shared_ptr<const core::InflexIndex> gen;
      {
        std::lock_guard<std::mutex> lock(generations_mu);
        auto tenant_it = generations.find(a.tenant);
        ASSERT_NE(tenant_it, generations.end()) << a.tenant;
        auto epoch_it = tenant_it->second.find(a.epoch);
        ASSERT_NE(epoch_it, tenant_it->second.end())
            << a.tenant << " epoch " << a.epoch;
        gen = epoch_it->second;
      }
      auto want = gen->Query(a.request.item, a.request.k, a.request.options);
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(a.seeds, want.ValueOrDie().seeds)
          << a.tenant << " epoch " << a.epoch << " replay diverged";
      ++replayed;
    }
  }
  EXPECT_GE(replayed, kQueryThreads * kPerThread);
}

}  // namespace
}  // namespace inflex
