// Tests for the vectorized KL kernel layer (simplex/kl_kernel.h) and its
// integration into the bb-tree searches: the factorized evaluation must be
// numerically indistinguishable (≤ 1e-12) from the reference KlDivergence,
// and the kernel-based searches must retrieve exactly the same neighbors as
// a reference brute-force scan — before and after online inserts grow the
// flat SoA buffers.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "bbtree/bbtree.h"
#include "bbtree/bregman_ball.h"
#include "simplex/divergence.h"
#include "simplex/kl_kernel.h"
#include "simplex/kl_kernel_simd.h"
#include "simplex/sampling.h"
#include "stats/dirichlet.h"
#include "util/aligned.h"
#include "util/cpu_features.h"
#include "util/random.h"

namespace inflex {
namespace simplex {
namespace {

constexpr double kTol = 1e-12;

std::vector<TopicVector> DirichletPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<TopicVector> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> alpha(dim, 0.3);
    alpha[i % dim] = 6.0;
    stats::Dirichlet d(alpha);
    points.push_back(d.Sample(&rng));
  }
  return points;
}

// -------------------------------------------------------------- primitives --

TEST(KlKernelTest, NegativeEntropyMatchesDirectSum) {
  const TopicVector p = {0.5, 0.25, 0.125, 0.125};
  double expected = 0.0;
  for (double v : p) expected += v * std::log(v);
  EXPECT_NEAR(NegativeEntropy(p.data(), p.size()), expected, kTol);
}

TEST(KlKernelTest, NegativeEntropySkipsZeroCoordinates) {
  // 0·log 0 = 0 by continuity: a zero coordinate must contribute nothing
  // (and must not produce NaN/−inf).
  const TopicVector p = {0.7, 0.0, 0.3, 0.0};
  const double got = NegativeEntropy(p.data(), p.size());
  EXPECT_TRUE(std::isfinite(got));
  EXPECT_NEAR(got, 0.7 * std::log(0.7) + 0.3 * std::log(0.3), kTol);
}

TEST(KlKernelTest, ClampedLogClampsAtEps) {
  const TopicVector v = {0.5, 0.0, 1e-15, 0.5};
  std::vector<double> out(v.size());
  ClampedLog(v.data(), v.size(), kKlSmoothingEps, out.data());
  EXPECT_DOUBLE_EQ(out[0], std::log(0.5));
  EXPECT_DOUBLE_EQ(out[1], std::log(kKlSmoothingEps));
  EXPECT_DOUBLE_EQ(out[2], std::log(kKlSmoothingEps));  // below eps: clamped
  EXPECT_DOUBLE_EQ(out[3], std::log(0.5));
}

TEST(KlKernelTest, DotProductIsDeterministicAcrossLengths) {
  // The 4-accumulator kernel must agree with a plain loop to FP tolerance
  // and with itself exactly (fixed summation order) on every length,
  // including the scalar tail cases n % 4 != 0.
  Rng rng(7);
  for (size_t n = 1; n <= 19; ++n) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Uniform(0.0, 1.0);
      b[i] = rng.Uniform(-1.0, 1.0);
    }
    double naive = 0.0;
    for (size_t i = 0; i < n; ++i) naive += a[i] * b[i];
    const double got = DotProduct(a.data(), b.data(), n);
    EXPECT_NEAR(got, naive, kTol) << "n=" << n;
    EXPECT_DOUBLE_EQ(got, DotProduct(a.data(), b.data(), n));
  }
}

// ----------------------------------------------- factorization equivalence --

TEST(KlKernelTest, FactorizedMatchesReferenceOnRandomPairs) {
  Rng rng(11);
  KlQueryContext ctx;
  for (int trial = 0; trial < 200; ++trial) {
    const size_t dim = 2 + trial % 30;
    const TopicVector p = SampleUniformSimplex(dim, &rng);
    const TopicVector q = SampleUniformSimplex(dim, &rng);
    ctx.Reset(q);
    const double reference = KlDivergence(p, q);
    const double kernel = ctx.Kl(p.data(), NegativeEntropy(p.data(), dim));
    EXPECT_NEAR(kernel, reference, kTol) << "dim=" << dim;
  }
}

TEST(KlKernelTest, FactorizedMatchesReferenceWithZeroCoordinates) {
  // p has exact zeros (its terms drop out); q has exact zeros (clamped to
  // eps by both sides). Sparse topic mixtures hit both cases constantly.
  const TopicVector p = {0.6, 0.0, 0.4, 0.0};
  const TopicVector q = {0.0, 0.5, 0.5, 0.0};
  KlQueryContext ctx;
  ctx.Reset(q);
  const double reference = KlDivergence(p, q);
  const double kernel = ctx.Kl(p.data(), NegativeEntropy(p.data(), p.size()));
  EXPECT_TRUE(std::isfinite(kernel));
  EXPECT_NEAR(kernel, reference, kTol);
}

TEST(KlKernelTest, FactorizedIsClampedAtZero) {
  // D_KL(p ‖ p) is mathematically 0; cancellation could take the factorized
  // form slightly negative, so both sides clamp.
  Rng rng(13);
  KlQueryContext ctx;
  for (int trial = 0; trial < 50; ++trial) {
    const TopicVector p = SampleUniformSimplex(8, &rng);
    ctx.Reset(p);
    const double d = ctx.Kl(p.data(), NegativeEntropy(p.data(), p.size()));
    EXPECT_GE(d, 0.0);
    EXPECT_NEAR(d, 0.0, kTol);
  }
}

TEST(KlKernelTest, KlOfQueryAgainstMatchesReverseDirection) {
  Rng rng(17);
  KlQueryContext ctx;
  for (int trial = 0; trial < 50; ++trial) {
    const TopicVector q = SampleUniformSimplex(6, &rng);
    const TopicVector t = SampleUniformSimplex(6, &rng);
    ctx.Reset(q);
    std::vector<double> log_t(t.size());
    ClampedLog(t.data(), t.size(), kKlSmoothingEps, log_t.data());
    EXPECT_NEAR(ctx.KlOfQueryAgainst(log_t.data()), KlDivergence(q, t), kTol);
  }
}

TEST(KlKernelTest, KlBatchMatchesScalarKernelExactly) {
  Rng rng(19);
  const size_t m = 37, dim = 12;
  std::vector<double> rows(m * dim), negent(m);
  for (size_t i = 0; i < m; ++i) {
    const TopicVector p = SampleUniformSimplex(dim, &rng);
    std::copy(p.begin(), p.end(), rows.begin() + i * dim);
    negent[i] = NegativeEntropy(p.data(), dim);
  }
  KlQueryContext ctx;
  ctx.Reset(SampleUniformSimplex(dim, &rng));
  std::vector<double> out(m);
  KlBatch(rows.data(), negent.data(), m, dim, ctx.log_query(), out.data());
  for (size_t i = 0; i < m; ++i) {
    // Bit-exact: the batch form must run the identical per-row kernel.
    EXPECT_DOUBLE_EQ(out[i], ctx.Kl(rows.data() + i * dim, negent[i])) << i;
  }
}

// --------------------------------------------- SIMD dispatch & bit-identity --

// Every kernel variant the executing host can run: scalar always, plus the
// SIMD variants that are both compiled in and supported by cpuid. On a
// non-AVX2 host the list degenerates to {scalar} and the identity tests
// pass trivially — CI's forced-scalar matrix leg covers that shape
// explicitly.
std::vector<const KlKernelOps*> HostVariants() {
  std::vector<const KlKernelOps*> variants = {&ScalarKernelOps()};
  const util::CpuSimdFeatures cpu = util::DetectCpuSimd();
  if (cpu.avx2 && Avx2KernelOps() != nullptr) variants.push_back(Avx2KernelOps());
  if (cpu.avx512f && Avx512KernelOps() != nullptr) {
    variants.push_back(Avx512KernelOps());
  }
  return variants;
}

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

// Mixture-like vector of length n that exercises every hazard at once:
// exact zeros (whose log the clamp replaces by log(eps)), a subnormal entry,
// and ordinary mixture mass — the inputs the tree feeds these kernels.
std::vector<double> HazardMixture(size_t n, Rng* rng) {
  std::vector<double> v(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    v[i] = rng->Uniform(0.0, 1.0);
    sum += v[i];
  }
  for (double& x : v) x /= sum;
  if (n >= 2) v[1] = 0.0;                 // exact zero → eps clamp
  if (n >= 3) v[n - 1] = 4.9406564584124654e-324;  // smallest subnormal
  return v;
}

// The dims the bit-identity contract is validated on: odd/tail lengths
// around the 4- and 8-lane boundaries plus the bench dims.
const size_t kIdentityDims[] = {1, 2, 3, 4, 7, 8, 13, 50};

TEST(SimdKernelTest, DotProductBitIdenticalAcrossVariants) {
  Rng rng(101);
  const auto variants = HostVariants();
  for (size_t n : kIdentityDims) {
    const std::vector<double> a = HazardMixture(n, &rng);
    std::vector<double> b(n);
    ClampedLog(HazardMixture(n, &rng).data(), n, kKlSmoothingEps, b.data());
    const double want = ScalarKernelOps().dot(a.data(), b.data(), n);
    for (const KlKernelOps* ops : variants) {
      const double got = ops->dot(a.data(), b.data(), n);
      EXPECT_EQ(Bits(got), Bits(want)) << ops->name << " n=" << n;
    }
  }
}

TEST(SimdKernelTest, KlBatchBitIdenticalAcrossVariantsStrided) {
  Rng rng(103);
  const auto variants = HostVariants();
  for (size_t n : kIdentityDims) {
    const size_t m = 13;
    const size_t stride = util::AlignedRowStride(n);
    util::AlignedVector<double> rows(m * stride, 0.0);
    std::vector<double> negent(m);
    for (size_t i = 0; i < m; ++i) {
      const std::vector<double> p = HazardMixture(n, &rng);
      std::copy(p.begin(), p.end(), rows.begin() + i * stride);
      negent[i] = NegativeEntropy(p.data(), n);
    }
    std::vector<double> log_q(n);
    ClampedLog(HazardMixture(n, &rng).data(), n, kKlSmoothingEps,
               log_q.data());
    std::vector<double> want(m), got(m);
    ScalarKernelOps().kl_batch(rows.data(), negent.data(), m, n, stride,
                               log_q.data(), want.data());
    for (const KlKernelOps* ops : variants) {
      ops->kl_batch(rows.data(), negent.data(), m, n, stride, log_q.data(),
                    got.data());
      for (size_t i = 0; i < m; ++i) {
        EXPECT_EQ(Bits(got[i]), Bits(want[i]))
            << ops->name << " n=" << n << " row=" << i;
      }
    }
  }
}

TEST(SimdKernelTest, KlBatchTargetsBitIdenticalAcrossVariants) {
  Rng rng(107);
  const auto variants = HostVariants();
  for (size_t n : kIdentityDims) {
    const size_t m = 9;
    const size_t stride = util::AlignedRowStride(n);
    const std::vector<double> q = HazardMixture(n, &rng);
    const double q_negent = NegativeEntropy(q.data(), n);
    util::AlignedVector<double> log_targets(m * stride, 0.0);
    for (size_t i = 0; i < m; ++i) {
      ClampedLog(HazardMixture(n, &rng).data(), n, kKlSmoothingEps,
                 log_targets.data() + i * stride);
    }
    std::vector<double> want(m), got(m);
    ScalarKernelOps().kl_batch_targets(q.data(), q_negent, log_targets.data(),
                                       m, n, stride, want.data());
    for (const KlKernelOps* ops : variants) {
      ops->kl_batch_targets(q.data(), q_negent, log_targets.data(), m, n,
                            stride, got.data());
      for (size_t i = 0; i < m; ++i) {
        EXPECT_EQ(Bits(got[i]), Bits(want[i]))
            << ops->name << " n=" << n << " row=" << i;
      }
    }
  }
}

TEST(SimdKernelTest, ClampedLogBitIdenticalAcrossVariants) {
  Rng rng(109);
  const auto variants = HostVariants();
  for (size_t n : kIdentityDims) {
    std::vector<double> v = HazardMixture(n, &rng);
    if (n >= 4) v[2] = 1e-15;  // sub-eps but normal: clamped
    std::vector<double> want(n), got(n);
    ScalarKernelOps().clamped_log(v.data(), n, kKlSmoothingEps, want.data());
    for (const KlKernelOps* ops : variants) {
      ops->clamped_log(v.data(), n, kKlSmoothingEps, got.data());
      for (size_t z = 0; z < n; ++z) {
        EXPECT_EQ(Bits(got[z]), Bits(want[z]))
            << ops->name << " n=" << n << " z=" << z;
      }
    }
  }
}

TEST(SimdKernelTest, ResolveForcedScalarAlwaysPicksScalar) {
  EXPECT_STREQ(ResolveKernelOps(true).name, "scalar");
  // Unforced resolution picks the best supported variant and never invents
  // capability the CPU lacks.
  const util::CpuSimdFeatures cpu = util::DetectCpuSimd();
  const char* resolved = ResolveKernelOps(false).name;
  if (cpu.avx512f) {
    EXPECT_STREQ(resolved, "avx512");
  } else if (cpu.avx2) {
    EXPECT_STREQ(resolved, "avx2");
  } else {
    EXPECT_STREQ(resolved, "scalar");
  }
  EXPECT_STREQ(DetectedSimdName(), resolved);
}

TEST(SimdKernelTest, ActiveOpsHonorTheEscapeHatch) {
  // The process-wide table must agree with a fresh resolution under the
  // escape-hatch state captured at startup — this is the invariant the CI
  // matrix leg exercises under INFLEX_FORCE_SCALAR=1.
  EXPECT_STREQ(ActiveKernelOps().name,
               ResolveKernelOps(ActiveKernelsForcedScalar()).name);
  if (ActiveKernelsForcedScalar()) {
    EXPECT_STREQ(ActiveKernelOps().name, "scalar");
  }
}

TEST(SimdKernelTest, ForceScalarRequestedParsesTheEnvContract) {
  EXPECT_FALSE(util::ForceScalarRequested(nullptr));  // unset
  EXPECT_FALSE(util::ForceScalarRequested(""));
  EXPECT_FALSE(util::ForceScalarRequested("0"));
  EXPECT_TRUE(util::ForceScalarRequested("1"));
  EXPECT_TRUE(util::ForceScalarRequested("true"));
  EXPECT_TRUE(util::ForceScalarRequested("yes"));
}

// -------------------------------------------------------- tree integration --

TEST(KernelSearchTest, SoaStorageRoundTripsPoints) {
  const auto points = DirichletPoints(64, 7, 23);
  auto tree = bbtree::BbTree::Build(points).ValueOrDie();
  for (uint32_t id = 0; id < points.size(); ++id) {
    EXPECT_EQ(tree.point(id), points[id]) << "id=" << id;
    const auto span = tree.point_span(id);
    ASSERT_EQ(span.size(), points[id].size());
    EXPECT_TRUE(std::equal(span.begin(), span.end(), points[id].begin()));
    EXPECT_NEAR(tree.point_neg_entropy(id),
                simplex::NegativeEntropy(points[id].data(), points[id].size()),
                kTol);
  }
}

// Reference brute force against the ORIGINAL AoS points with the reference
// divergence — deliberately not touching the tree's storage or kernel.
std::vector<bbtree::Neighbor> ReferenceKnn(
    const std::vector<TopicVector>& points, const TopicVector& q, size_t k) {
  std::vector<bbtree::Neighbor> all;
  all.reserve(points.size());
  for (uint32_t id = 0; id < points.size(); ++id) {
    all.push_back({id, KlDivergence(points[id], q)});
  }
  std::sort(all.begin(), all.end());
  all.resize(std::min(k, all.size()));
  return all;
}

TEST(KernelSearchTest, ExactKnnMatchesReferenceBruteForce) {
  const auto points = DirichletPoints(200, 8, 29);
  auto tree = bbtree::BbTree::Build(points).ValueOrDie();
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    const TopicVector q = SampleUniformSimplex(8, &rng);
    const auto want = ReferenceKnn(points, q, 10);
    const auto got = tree.ExactKnn(q, 10);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].point_id, want[i].point_id) << "trial=" << trial;
      EXPECT_NEAR(got[i].divergence, want[i].divergence, kTol);
    }
  }
}

TEST(KernelSearchTest, InflexSearchDivergencesMatchReference) {
  const auto points = DirichletPoints(150, 6, 37);
  auto tree = bbtree::BbTree::Build(points).ValueOrDie();
  Rng rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    const TopicVector q = SampleUniformSimplex(6, &rng);
    const auto result = tree.InflexSearch(q);
    ASSERT_FALSE(result.neighbors.empty());
    for (const auto& nb : result.neighbors) {
      EXPECT_NEAR(nb.divergence, KlDivergence(points[nb.point_id], q), kTol);
    }
    EXPECT_GT(result.stats.kl_evaluations, 0u);
  }
}

TEST(KernelSearchTest, SearchesStayCorrectAfterInsertGrowsBuffers) {
  auto points = DirichletPoints(80, 5, 43);
  auto tree = bbtree::BbTree::Build(points).ValueOrDie();
  // Grow the SoA buffers well past their built size (forcing reallocation)
  // and interleave searches to catch stale pointers/rows.
  Rng rng(47);
  for (int round = 0; round < 60; ++round) {
    const TopicVector extra = SampleUniformSimplex(5, &rng);
    const uint32_t id = tree.Insert(extra).ValueOrDie();
    ASSERT_EQ(id, points.size());
    points.push_back(extra);

    const TopicVector q = SampleUniformSimplex(5, &rng);
    const auto want = ReferenceKnn(points, q, 5);
    const auto got = tree.ExactKnn(q, 5);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].point_id, want[i].point_id) << "round=" << round;
      EXPECT_NEAR(got[i].divergence, want[i].divergence, kTol);
    }
    // The inserted point itself must be retrievable as an ε-exact match.
    const auto exact = tree.InflexSearch(extra);
    EXPECT_TRUE(exact.epsilon_exact);
    EXPECT_EQ(exact.neighbors.front().point_id, id);
  }
}

TEST(KernelSearchTest, ExplicitContextMatchesThreadLocalFallback) {
  const auto points = DirichletPoints(100, 6, 53);
  auto tree = bbtree::BbTree::Build(points).ValueOrDie();
  Rng rng(59);
  bbtree::SearchContext ctx;  // reused across queries
  for (int trial = 0; trial < 10; ++trial) {
    const TopicVector q = SampleUniformSimplex(6, &rng);
    const auto with_ctx = tree.ExactKnn(q, 8, nullptr, &ctx);
    const auto without = tree.ExactKnn(q, 8);
    ASSERT_EQ(with_ctx.size(), without.size());
    for (size_t i = 0; i < with_ctx.size(); ++i) {
      EXPECT_EQ(with_ctx[i].point_id, without[i].point_id);
      EXPECT_DOUBLE_EQ(with_ctx[i].divergence, without[i].divergence);
    }
  }
}

TEST(KernelSearchTest, SearchStatsAccumulateKernelTime) {
  const auto points = DirichletPoints(300, 10, 61);
  auto tree = bbtree::BbTree::Build(points).ValueOrDie();
  Rng rng(67);
  bbtree::SearchStats stats;
  tree.LinearScanKnn(SampleUniformSimplex(10, &rng), 5, &stats);
  EXPECT_EQ(stats.kl_evaluations, points.size());
  // kl_ns is wall time of the scan loop: non-zero for 300 evaluations.
  EXPECT_GT(stats.kl_ns, 0u);
}

}  // namespace
}  // namespace simplex
}  // namespace inflex
