#include <gtest/gtest.h>

#include <cmath>

#include "stats/anderson_darling.h"
#include "stats/descriptive.h"
#include "stats/dirichlet.h"
#include "stats/special_functions.h"
#include "util/random.h"

namespace inflex {
namespace stats {
namespace {

// ------------------------------------------------------ special functions ---

TEST(SpecialFunctionsTest, DigammaKnownValues) {
  // ψ(1) = −γ (Euler–Mascheroni).
  EXPECT_NEAR(Digamma(1.0), -0.5772156649015329, 1e-10);
  // ψ(0.5) = −γ − 2 ln 2.
  EXPECT_NEAR(Digamma(0.5), -1.9635100260214235, 1e-10);
  // ψ(2) = 1 − γ.
  EXPECT_NEAR(Digamma(2.0), 0.42278433509846713, 1e-10);
  // Large-argument behaviour: ψ(x) ≈ ln x − 1/(2x).
  EXPECT_NEAR(Digamma(100.0), std::log(100.0) - 0.005, 1e-4);
}

TEST(SpecialFunctionsTest, DigammaRecurrence) {
  // ψ(x+1) = ψ(x) + 1/x.
  for (double x : {0.1, 0.7, 1.3, 3.9, 12.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10) << x;
  }
}

TEST(SpecialFunctionsTest, TrigammaKnownValues) {
  // ψ'(1) = π²/6.
  EXPECT_NEAR(Trigamma(1.0), M_PI * M_PI / 6.0, 1e-10);
  // ψ'(0.5) = π²/2.
  EXPECT_NEAR(Trigamma(0.5), M_PI * M_PI / 2.0, 1e-10);
}

TEST(SpecialFunctionsTest, TrigammaRecurrence) {
  for (double x : {0.2, 0.9, 2.6, 7.7}) {
    EXPECT_NEAR(Trigamma(x + 1.0), Trigamma(x) - 1.0 / (x * x), 1e-10) << x;
  }
}

TEST(SpecialFunctionsTest, TrigammaIsDigammaDerivative) {
  const double h = 1e-6;
  for (double x : {0.5, 1.5, 4.0, 10.0}) {
    const double numeric = (Digamma(x + h) - Digamma(x - h)) / (2 * h);
    EXPECT_NEAR(Trigamma(x), numeric, 1e-5) << x;
  }
}

TEST(SpecialFunctionsTest, InverseDigammaRoundTrip) {
  for (double x : {0.01, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0}) {
    EXPECT_NEAR(InverseDigamma(Digamma(x)), x, 1e-8 * (1 + x)) << x;
  }
}

TEST(SpecialFunctionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145707, 1e-9);
}

TEST(SpecialFunctionsTest, IncompleteBetaKnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(2, 2) = x²(3 − 2x).
  EXPECT_NEAR(RegularizedIncompleteBeta(2, 2, 0.4), 0.16 * (3 - 0.8), 1e-10);
  // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
  EXPECT_NEAR(RegularizedIncompleteBeta(3.5, 1.2, 0.7),
              1.0 - RegularizedIncompleteBeta(1.2, 3.5, 0.3), 1e-10);
  EXPECT_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(SpecialFunctionsTest, StudentTPValues) {
  // t=0 → p=1 two-sided.
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10), 1.0, 1e-12);
  // Known quantile: t_{0.975, 10} = 2.228139.
  EXPECT_NEAR(StudentTTwoSidedPValue(2.228139, 10), 0.05, 1e-4);
  // Symmetric in t.
  EXPECT_NEAR(StudentTTwoSidedPValue(1.7, 7),
              StudentTTwoSidedPValue(-1.7, 7), 1e-12);
  // Upper tail of a positive t is half the two-sided p.
  EXPECT_NEAR(StudentTUpperPValue(2.0, 12),
              StudentTTwoSidedPValue(2.0, 12) / 2, 1e-12);
}

// --------------------------------------------------------------- Dirichlet ---

TEST(DirichletTest, MeanIsNormalizedAlpha) {
  Dirichlet d({2.0, 6.0, 2.0});
  const auto mean = d.Mean();
  EXPECT_NEAR(mean[0], 0.2, 1e-12);
  EXPECT_NEAR(mean[1], 0.6, 1e-12);
  EXPECT_NEAR(mean[2], 0.2, 1e-12);
  EXPECT_NEAR(d.alpha_sum(), 10.0, 1e-12);
}

TEST(DirichletTest, SamplesLieOnSimplex) {
  Dirichlet d({0.5, 1.5, 3.0, 0.2});
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto s = d.Sample(&rng);
    double sum = 0.0;
    for (double v : s) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DirichletTest, SampleMeanConvergesToExpectation) {
  Dirichlet d({1.0, 4.0, 5.0});
  Rng rng(5);
  std::vector<double> mean(3, 0.0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto s = d.Sample(&rng);
    for (int k = 0; k < 3; ++k) mean[k] += s[k];
  }
  for (int k = 0; k < 3; ++k) mean[k] /= n;
  EXPECT_NEAR(mean[0], 0.1, 0.005);
  EXPECT_NEAR(mean[1], 0.4, 0.005);
  EXPECT_NEAR(mean[2], 0.5, 0.005);
}

TEST(DirichletTest, LogPdfIntegratesViaMonteCarloSanity) {
  // LogPdf at the mode of a symmetric Dirichlet should exceed the density at
  // a corner-ish point for alpha > 1.
  Dirichlet d({3.0, 3.0, 3.0});
  EXPECT_GT(d.LogPdf({1.0 / 3, 1.0 / 3, 1.0 / 3}),
            d.LogPdf({0.9, 0.05, 0.05}));
}

class DirichletMleRecoveryTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(DirichletMleRecoveryTest, RecoversGroundTruthAlpha) {
  const std::vector<double> truth = GetParam();
  Dirichlet d(truth);
  Rng rng(42);
  const auto data = d.SampleMany(20000, &rng);
  auto fit = FitDirichletMle(data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const auto& alpha = fit.ValueOrDie().alpha();
  ASSERT_EQ(alpha.size(), truth.size());
  for (size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(alpha[k], truth[k], 0.12 * truth[k] + 0.03)
        << "component " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaSweep, DirichletMleRecoveryTest,
    ::testing::Values(std::vector<double>{1.0, 1.0, 1.0},
                      std::vector<double>{2.0, 5.0, 3.0},
                      std::vector<double>{0.5, 0.5, 0.5, 0.5},
                      std::vector<double>{10.0, 1.0, 0.5, 2.0},
                      std::vector<double>{0.3, 4.0}));

TEST(DirichletMleTest, FixedPointAgreesWithNewton) {
  Dirichlet d({1.5, 3.0, 0.8});
  Rng rng(11);
  const auto data = d.SampleMany(5000, &rng);
  DirichletMleOptions newton;
  DirichletMleOptions fixed_point;
  fixed_point.use_newton = false;
  auto a = FitDirichletMle(data, newton);
  auto b = FitDirichletMle(data, fixed_point);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(a.ValueOrDie().alpha()[k], b.ValueOrDie().alpha()[k], 1e-4);
  }
}

TEST(DirichletMleTest, RejectsBadInput) {
  EXPECT_FALSE(FitDirichletMle({}).ok());
  EXPECT_FALSE(FitDirichletMle({{1.0}}).ok());  // dimension 1
  EXPECT_FALSE(FitDirichletMle({{0.5, 0.5}, {0.3, 0.3, 0.4}}).ok());
  EXPECT_FALSE(
      FitDirichletMle({{0.5, 0.5}, {-0.1, 1.1}}).ok());  // negative entry
}

// -------------------------------------------------------- Anderson-Darling ---

TEST(AndersonDarlingTest, AcceptsGaussianSample) {
  Rng rng(123);
  std::vector<double> sample(500);
  for (auto& v : sample) v = 3.0 + 2.0 * rng.Normal();
  auto r = AndersonDarlingNormality(sample);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().IsNormal(0.05))
      << "A*^2=" << r.ValueOrDie().a_squared_star;
}

TEST(AndersonDarlingTest, RejectsUniformSample) {
  Rng rng(123);
  std::vector<double> sample(500);
  for (auto& v : sample) v = rng.Uniform();
  auto r = AndersonDarlingNormality(sample);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.ValueOrDie().IsNormal(0.05));
}

TEST(AndersonDarlingTest, RejectsBimodalSample) {
  Rng rng(7);
  std::vector<double> sample(400);
  for (size_t i = 0; i < sample.size(); ++i) {
    sample[i] = (i % 2 == 0 ? -4.0 : 4.0) + 0.5 * rng.Normal();
  }
  auto r = AndersonDarlingNormality(sample);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.ValueOrDie().IsNormal(0.05));
}

TEST(AndersonDarlingTest, RejectsExponentialSample) {
  Rng rng(9);
  std::vector<double> sample(300);
  for (auto& v : sample) v = -std::log1p(-rng.Uniform());
  auto r = AndersonDarlingNormality(sample);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.ValueOrDie().IsNormal(0.05));
}

TEST(AndersonDarlingTest, FalsePositiveRateRoughlyCalibrated) {
  // At α = 0.05 the test should reject a true normal sample ~5% of the time.
  Rng rng(31);
  int rejections = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample(60);
    for (auto& v : sample) v = rng.Normal();
    auto r = AndersonDarlingNormality(sample);
    ASSERT_TRUE(r.ok());
    if (!r.ValueOrDie().IsNormal(0.05)) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / trials;
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.12);
}

TEST(AndersonDarlingTest, RejectsDegenerateInput) {
  EXPECT_FALSE(AndersonDarlingNormality({1.0, 2.0}).ok());  // too small
  EXPECT_FALSE(
      AndersonDarlingNormality({2.0, 2.0, 2.0, 2.0, 2.0, 2.0}).ok());
}

// ------------------------------------------------------------- descriptive ---

TEST(DescriptiveTest, MeanVarianceStdDev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(Mean(v), 5.0, 1e-12);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, PercentileInterpolatesOrderStatistics) {
  const std::vector<double> v = {40.0, 10.0, 30.0, 20.0};  // unsorted on purpose
  EXPECT_NEAR(Percentile(v, 0.0), 10.0, 1e-12);
  EXPECT_NEAR(Percentile(v, 1.0), 40.0, 1e-12);
  EXPECT_NEAR(Percentile(v, 0.5), 25.0, 1e-12);   // between 20 and 30
  EXPECT_NEAR(Percentile(v, 0.25), 17.5, 1e-12);  // 10 + 0.75·(20−10)
  EXPECT_NEAR(Percentile({3.5}, 0.99), 3.5, 1e-12);
}

TEST(DescriptiveTest, WeightedPercentileBasics) {
  // Equal weights behave like an unweighted estimate: the median of
  // {1,2,3} is 2, extremes clamp to the extreme samples.
  const std::vector<double> v = {3.0, 1.0, 2.0};  // unsorted on purpose
  const std::vector<double> w = {1.0, 1.0, 1.0};
  EXPECT_NEAR(WeightedPercentile(v, w, 0.5), 2.0, 1e-12);
  EXPECT_NEAR(WeightedPercentile(v, w, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(WeightedPercentile(v, w, 1.0), 3.0, 1e-12);
  EXPECT_NEAR(WeightedPercentile({7.0}, {2.5}, 0.95), 7.0, 1e-12);
}

TEST(DescriptiveTest, WeightedPercentileSkewedLoadMergeBias) {
  // The striped-reservoir merge scenario (QueryEngine::cumulative_stats):
  // a hot stripe observed 9900 fast requests (reservoir: 100 samples of
  // 1 ms, each standing in for 99 observations) and a cold stripe observed
  // 100 slow requests (reservoir: 100 samples of 1000 ms, weight 1 each).
  // 99% of real traffic was 1 ms, so p50 and even p95 must be 1 ms.
  std::vector<double> samples;
  std::vector<double> weights;
  std::vector<double> unweighted;
  for (int i = 0; i < 100; ++i) {
    samples.push_back(1.0);
    weights.push_back(99.0);
    samples.push_back(1000.0);
    weights.push_back(1.0);
    unweighted.push_back(1.0);
    unweighted.push_back(1000.0);
  }
  // The old unweighted concatenation reported the tail of the COLD stripe:
  // half the merged samples are 1000 ms, so p95 looked like 1000 ms.
  EXPECT_GT(Percentile(unweighted, 0.95), 999.0);
  // Weighted by observed counts, the estimate follows the true stream.
  EXPECT_NEAR(WeightedPercentile(samples, weights, 0.50), 1.0, 1e-9);
  EXPECT_NEAR(WeightedPercentile(samples, weights, 0.95), 1.0, 1e-9);
  // The true p99+ tail is still visible at the right quantile.
  EXPECT_GT(WeightedPercentile(samples, weights, 0.999), 500.0);
}

TEST(DescriptiveTest, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y).ValueOrDie(), 1.0, 1e-12);
  const std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z).ValueOrDie(), -1.0, 1e-12);
}

TEST(DescriptiveTest, PearsonRejectsDegenerate) {
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(PearsonCorrelation({1}, {2}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());
}

TEST(DescriptiveTest, RmseAndNrmse) {
  const std::vector<double> truth = {10, 10, 10, 10};
  const std::vector<double> pred = {11, 9, 11, 9};
  EXPECT_NEAR(Rmse(pred, truth).ValueOrDie(), 1.0, 1e-12);
  EXPECT_NEAR(Nrmse(pred, truth).ValueOrDie(), 0.1, 1e-12);
  EXPECT_FALSE(Nrmse(pred, {0, 0, 0, 0}).ok());
  EXPECT_FALSE(Rmse({1.0}, {1.0, 2.0}).ok());
}

TEST(DescriptiveTest, PairedTTestDetectsShift) {
  Rng rng(77);
  std::vector<double> a(50), b(50);
  for (int i = 0; i < 50; ++i) {
    a[i] = rng.Normal();
    b[i] = a[i] + 1.0 + 0.1 * rng.Normal();  // systematic +1 shift
  }
  auto r = PairedTTest(b, a);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.ValueOrDie().t_statistic, 5.0);
  EXPECT_LT(r.ValueOrDie().p_value_two_sided, 1e-6);
  EXPECT_NEAR(r.ValueOrDie().mean_difference, 1.0, 0.1);
}

TEST(DescriptiveTest, PairedTTestNoShift) {
  Rng rng(78);
  std::vector<double> a(100), b(100);
  for (int i = 0; i < 100; ++i) {
    a[i] = rng.Normal();
    b[i] = a[i] + 0.5 * rng.Normal();  // no systematic shift
  }
  auto r = PairedTTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.ValueOrDie().p_value_two_sided, 0.01);
}

}  // namespace
}  // namespace stats
}  // namespace inflex
