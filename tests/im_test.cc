#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/topic_graph.h"
#include "im/cascade.h"
#include "im/celf.h"
#include "im/celfpp.h"
#include "im/greedy.h"
#include "im/heuristics.h"
#include "im/snapshot_oracle.h"
#include "im/spread_estimator.h"
#include "util/random.h"

namespace inflex {
namespace im {
namespace {

using graph::ArcProbabilities;
using graph::NodeId;
using graph::TopicGraph;
using graph::TopicGraphBuilder;

// Path 0→1→2→3 with Z = 1; the single topic prob equals the IC prob.
TopicGraph MakePathGraph(const std::vector<double>& probs) {
  TopicGraphBuilder b(probs.size() + 1, 1);
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_TRUE(b.AddArc(static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                         {probs[i]})
                    .ok());
  }
  return b.Build().ValueOrDie();
}

// Random sparse digraph for property tests.
TopicGraph MakeRandomGraph(size_t n, size_t arcs, double p_lo, double p_hi,
                           uint64_t seed) {
  Rng rng(seed);
  TopicGraphBuilder b(n, 1);
  std::set<std::pair<NodeId, NodeId>> used;
  size_t added = 0;
  while (added < arcs) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v || used.count({u, v})) continue;
    used.insert({u, v});
    EXPECT_TRUE(b.AddArc(u, v, {rng.Uniform(p_lo, p_hi)}).ok());
    ++added;
  }
  return b.Build().ValueOrDie();
}

ArcProbabilities SingleTopicProbs(const TopicGraph& g) {
  ArcProbabilities p(g.num_arcs());
  for (graph::ArcId a = 0; a < g.num_arcs(); ++a) p[a] = g.ArcTopicProb(a, 0);
  return p;
}

// ----------------------------------------------------------------- cascade ---

TEST(CascadeTest, DeterministicAllOnesPath) {
  const TopicGraph g = MakePathGraph({1.0, 1.0, 1.0});
  const ArcProbabilities p = SingleTopicProbs(g);
  Rng rng(1);
  CascadeWorkspace ws(g.num_nodes());
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateCascadeCount(g, p, seeds, &rng, &ws), 4u);
}

TEST(CascadeTest, ZeroProbabilitiesOnlySeedActive) {
  TopicGraphBuilder b(4, 1);
  ASSERT_TRUE(b.AddArc(0, 1, {0.0}).ok());
  ASSERT_TRUE(b.AddArc(1, 2, {0.0}).ok());
  const TopicGraph g = b.Build().ValueOrDie();
  const ArcProbabilities p = SingleTopicProbs(g);
  Rng rng(2);
  CascadeWorkspace ws(g.num_nodes());
  const std::vector<NodeId> seeds = {0};
  for (int t = 0; t < 20; ++t) {
    EXPECT_EQ(SimulateCascadeCount(g, p, seeds, &rng, &ws), 1u);
  }
}

TEST(CascadeTest, DuplicateSeedsCountedOnce) {
  const TopicGraph g = MakePathGraph({1.0});
  const ArcProbabilities p = SingleTopicProbs(g);
  Rng rng(3);
  CascadeWorkspace ws(g.num_nodes());
  const std::vector<NodeId> seeds = {0, 0, 1};
  EXPECT_EQ(SimulateCascadeCount(g, p, seeds, &rng, &ws), 2u);
}

TEST(CascadeTest, NodesVariantRecordsActivationOrder) {
  const TopicGraph g = MakePathGraph({1.0, 1.0});
  const ArcProbabilities p = SingleTopicProbs(g);
  Rng rng(4);
  CascadeWorkspace ws(g.num_nodes());
  std::vector<NodeId> activated;
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(SimulateCascadeNodes(g, p, seeds, &rng, &ws, &activated), 3u);
  ASSERT_EQ(activated.size(), 3u);
  EXPECT_EQ(activated[0], 0u);  // seed first, then BFS order
  EXPECT_EQ(activated[1], 1u);
  EXPECT_EQ(activated[2], 2u);
}

// -------------------------------------------------------- spread estimator ---

TEST(SpreadEstimatorTest, ClosedFormSingleArc) {
  // σ({0}) on 0→1 with prob p is 1 + p.
  const double p_arc = 0.37;
  const TopicGraph g = MakePathGraph({p_arc});
  const ArcProbabilities p = SingleTopicProbs(g);
  MonteCarloOptions opts;
  opts.num_simulations = 200000;
  const std::vector<NodeId> seeds = {0};
  auto est = EstimateSpread(g, p, seeds, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.ValueOrDie().mean, 1.0 + p_arc, 0.01);
  EXPECT_GT(est.ValueOrDie().std_error, 0.0);
}

TEST(SpreadEstimatorTest, ClosedFormTwoHopPath) {
  // σ({0}) on 0→1→2 with probs p, q is 1 + p + p·q.
  const TopicGraph g = MakePathGraph({0.5, 0.4});
  const ArcProbabilities p = SingleTopicProbs(g);
  MonteCarloOptions opts;
  opts.num_simulations = 200000;
  const std::vector<NodeId> seeds = {0};
  auto est = EstimateSpread(g, p, seeds, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.ValueOrDie().mean, 1.0 + 0.5 + 0.2, 0.01);
}

TEST(SpreadEstimatorTest, EmptySeedsGiveZero) {
  const TopicGraph g = MakePathGraph({0.5});
  auto est = EstimateSpread(g, SingleTopicProbs(g), {});
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est.ValueOrDie().mean, 0.0);
}

TEST(SpreadEstimatorTest, ParallelMatchesSerial) {
  const TopicGraph g = MakeRandomGraph(100, 500, 0.05, 0.3, 5);
  const ArcProbabilities p = SingleTopicProbs(g);
  const std::vector<NodeId> seeds = {3, 17, 42};
  MonteCarloOptions serial;
  serial.num_simulations = 2000;
  serial.parallel = false;
  MonteCarloOptions parallel = serial;
  parallel.parallel = true;
  auto a = EstimateSpread(g, p, seeds, serial);
  auto b = EstimateSpread(g, p, seeds, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Identical per-simulation RNG streams ⇒ identical estimates.
  EXPECT_DOUBLE_EQ(a.ValueOrDie().mean, b.ValueOrDie().mean);
}

TEST(SpreadEstimatorTest, ValidatesInput) {
  const TopicGraph g = MakePathGraph({0.5});
  const std::vector<NodeId> bad_seed = {99};
  EXPECT_FALSE(EstimateSpread(g, SingleTopicProbs(g), bad_seed).ok());
  ArcProbabilities wrong(5, 0.1);
  const std::vector<NodeId> seeds = {0};
  EXPECT_FALSE(EstimateSpread(g, wrong, seeds).ok());
}

// --------------------------------------------------------- snapshot oracle ---

TEST(SnapshotOracleTest, DeterministicGraphExactSpread) {
  const TopicGraph g = MakePathGraph({1.0, 1.0, 1.0});
  SnapshotSpreadOracle::Options opts;
  opts.num_snapshots = 10;
  auto oracle = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  ASSERT_TRUE(oracle.ok());
  auto& o = oracle.ValueOrDie();
  auto ws = o.MakeWorkspace();
  EXPECT_DOUBLE_EQ(o.MarginalGain(0, &ws), 4.0);
  EXPECT_DOUBLE_EQ(o.MarginalGain(2, &ws), 2.0);
  o.CommitSeed(2, &ws);
  // After committing 2, node 0 only adds {0, 1}.
  EXPECT_DOUBLE_EQ(o.MarginalGain(0, &ws), 2.0);
  EXPECT_DOUBLE_EQ(o.CurrentSpread(), 2.0);
}

TEST(SnapshotOracleTest, MarginalGainMatchesSpreadDifference) {
  const TopicGraph g = MakeRandomGraph(80, 400, 0.1, 0.5, 7);
  SnapshotSpreadOracle::Options opts;
  opts.num_snapshots = 50;
  auto oracle = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  ASSERT_TRUE(oracle.ok());
  auto& o = oracle.ValueOrDie();
  auto ws = o.MakeWorkspace();

  std::vector<NodeId> committed;
  Rng rng(8);
  for (int step = 0; step < 5; ++step) {
    const NodeId v = static_cast<NodeId>(rng.UniformInt(80));
    const double before = o.SpreadOf(committed, &ws);
    std::vector<NodeId> extended = committed;
    extended.push_back(v);
    const double after = o.SpreadOf(extended, &ws);
    EXPECT_NEAR(o.MarginalGain(v, &ws), after - before, 1e-9);
    o.CommitSeed(v, &ws);
    committed.push_back(v);
    EXPECT_NEAR(o.CurrentSpread(), after, 1e-9);
  }
}

TEST(SnapshotOracleTest, MarginalGainPairConsistent) {
  const TopicGraph g = MakeRandomGraph(60, 300, 0.1, 0.5, 9);
  SnapshotSpreadOracle::Options opts;
  opts.num_snapshots = 40;
  auto oracle = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  ASSERT_TRUE(oracle.ok());
  auto& o = oracle.ValueOrDie();
  auto ws = o.MakeWorkspace();

  Rng rng(10);
  for (int t = 0; t < 20; ++t) {
    const NodeId v = static_cast<NodeId>(rng.UniformInt(60));
    const NodeId other = static_cast<NodeId>(rng.UniformInt(60));
    if (v == other) continue;
    double mg1 = 0, mg2 = 0;
    o.MarginalGainPair(v, other, &ws, &mg1, &mg2);
    // mg1 must equal the plain marginal gain.
    EXPECT_NEAR(mg1, o.MarginalGain(v, &ws), 1e-9);
    // mg2 = σ(S∪{other,v}) − σ(S∪{other}).
    const std::vector<NodeId> base = {other};
    const std::vector<NodeId> both = {other, v};
    EXPECT_NEAR(mg2, o.SpreadOf(both, &ws) - o.SpreadOf(base, &ws), 1e-9);
    // Submodularity of the pair: mg2 ≤ mg1.
    EXPECT_LE(mg2, mg1 + 1e-9);
  }
}

TEST(SnapshotOracleTest, SubmodularityProperty) {
  // Gains never increase as the committed seed set grows — the property
  // CELF's lazy evaluation depends on.
  const TopicGraph g = MakeRandomGraph(70, 350, 0.1, 0.4, 11);
  SnapshotSpreadOracle::Options opts;
  opts.num_snapshots = 30;
  auto oracle = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  ASSERT_TRUE(oracle.ok());
  auto& o = oracle.ValueOrDie();
  auto ws = o.MakeWorkspace();

  std::vector<double> gains_before(70), gains_after(70);
  for (NodeId v = 0; v < 70; ++v) gains_before[v] = o.MarginalGain(v, &ws);
  o.CommitSeed(5, &ws);
  o.CommitSeed(50, &ws);
  for (NodeId v = 0; v < 70; ++v) gains_after[v] = o.MarginalGain(v, &ws);
  for (NodeId v = 0; v < 70; ++v) {
    EXPECT_LE(gains_after[v], gains_before[v] + 1e-9) << "node " << v;
  }
}

TEST(SnapshotOracleTest, SpreadApproximatesMonteCarlo) {
  const TopicGraph g = MakeRandomGraph(100, 600, 0.05, 0.3, 13);
  const ArcProbabilities p = SingleTopicProbs(g);
  SnapshotSpreadOracle::Options opts;
  opts.num_snapshots = 3000;
  auto oracle = SnapshotSpreadOracle::Create(g, p, opts);
  ASSERT_TRUE(oracle.ok());
  auto ws = oracle.ValueOrDie().MakeWorkspace();
  const std::vector<NodeId> seeds = {1, 20, 60};
  const double snapshot_spread = oracle.ValueOrDie().SpreadOf(seeds, &ws);
  MonteCarloOptions mc;
  mc.num_simulations = 30000;
  auto est = EstimateSpread(g, p, seeds, mc);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(snapshot_spread, est.ValueOrDie().mean,
              0.05 * est.ValueOrDie().mean + 0.5);
}

TEST(SnapshotOracleTest, ResetSeedsRestoresGains) {
  const TopicGraph g = MakeRandomGraph(50, 250, 0.1, 0.5, 15);
  SnapshotSpreadOracle::Options opts;
  auto oracle = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  ASSERT_TRUE(oracle.ok());
  auto& o = oracle.ValueOrDie();
  auto ws = o.MakeWorkspace();
  const double g0 = o.MarginalGain(7, &ws);
  o.CommitSeed(7, &ws);
  EXPECT_NEAR(o.MarginalGain(7, &ws), 0.0, 1e-12);
  o.ResetSeeds();
  EXPECT_DOUBLE_EQ(o.MarginalGain(7, &ws), g0);
  EXPECT_DOUBLE_EQ(o.CurrentSpread(), 0.0);
}

// ---------------------------------------------------- greedy / CELF / CELF++ ---

class SeedSelectorAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSelectorAgreementTest, AllThreeAlgorithmsAgree) {
  const TopicGraph g = MakeRandomGraph(120, 700, 0.05, 0.4, GetParam());
  SnapshotSpreadOracle::Options opts;
  opts.num_snapshots = 60;
  opts.seed = GetParam() * 3 + 1;
  auto oracle = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  ASSERT_TRUE(oracle.ok());
  auto& o = oracle.ValueOrDie();

  SeedSelectionOptions sopts;
  sopts.parallel_first_iteration = false;
  const size_t k = 8;
  auto greedy = SelectSeedsGreedy(&o, k, sopts);
  auto celf = SelectSeedsCelf(&o, k, sopts);
  auto celfpp = SelectSeedsCelfPp(&o, k, sopts);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(celf.ok());
  ASSERT_TRUE(celfpp.ok());

  // Same oracle ⇒ identical greedy sequences (ties broken identically) and
  // identical final spreads.
  EXPECT_EQ(celf.ValueOrDie().seeds, greedy.ValueOrDie().seeds);
  EXPECT_EQ(celfpp.ValueOrDie().seeds, greedy.ValueOrDie().seeds);
  EXPECT_NEAR(celf.ValueOrDie().expected_spread,
              greedy.ValueOrDie().expected_spread, 1e-9);

  // Lazy evaluation must not do MORE work than plain greedy, and CELF++
  // should not do more than CELF (its whole point).
  EXPECT_LE(celf.ValueOrDie().num_evaluations,
            greedy.ValueOrDie().num_evaluations);
  EXPECT_LE(celfpp.ValueOrDie().num_evaluations,
            celf.ValueOrDie().num_evaluations * 2);  // counts pair evals
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSelectorAgreementTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(SeedSelectorTest, MarginalGainsNonIncreasing) {
  const TopicGraph g = MakeRandomGraph(100, 500, 0.1, 0.4, 17);
  SnapshotSpreadOracle::Options opts;
  auto oracle = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  ASSERT_TRUE(oracle.ok());
  SeedSelectionOptions sopts;
  sopts.parallel_first_iteration = false;
  auto r = SelectSeedsCelfPp(&oracle.ValueOrDie(), 10, sopts);
  ASSERT_TRUE(r.ok());
  const auto& gains = r.ValueOrDie().marginal_gains;
  for (size_t i = 1; i < gains.size(); ++i) {
    EXPECT_LE(gains[i], gains[i - 1] + 1e-9) << i;
  }
  // Spread equals the sum of marginal gains.
  double total = 0.0;
  for (double gn : gains) total += gn;
  EXPECT_NEAR(total, r.ValueOrDie().expected_spread, 1e-9);
}

TEST(SeedSelectorTest, SeedsAreDistinct) {
  const TopicGraph g = MakeRandomGraph(60, 300, 0.1, 0.5, 19);
  SnapshotSpreadOracle::Options opts;
  auto oracle = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  ASSERT_TRUE(oracle.ok());
  auto r = SelectSeedsCelfPp(&oracle.ValueOrDie(), 20, {});
  ASSERT_TRUE(r.ok());
  std::set<NodeId> unique(r.ValueOrDie().seeds.begin(),
                          r.ValueOrDie().seeds.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(SeedSelectorTest, RejectsBadK) {
  const TopicGraph g = MakePathGraph({0.5});
  SnapshotSpreadOracle::Options opts;
  auto oracle = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  ASSERT_TRUE(oracle.ok());
  EXPECT_FALSE(SelectSeedsGreedy(&oracle.ValueOrDie(), 0, {}).ok());
  EXPECT_FALSE(SelectSeedsCelf(&oracle.ValueOrDie(), 99, {}).ok());
  EXPECT_FALSE(SelectSeedsCelfPp(&oracle.ValueOrDie(), 99, {}).ok());
}

TEST(SeedSelectorTest, ParallelFirstIterationMatchesSerial) {
  const TopicGraph g = MakeRandomGraph(400, 2000, 0.05, 0.3, 23);
  SnapshotSpreadOracle::Options opts;
  opts.num_snapshots = 40;
  auto o1 = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  auto o2 = SnapshotSpreadOracle::Create(g, SingleTopicProbs(g), opts);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  SeedSelectionOptions serial;
  serial.parallel_first_iteration = false;
  SeedSelectionOptions parallel;
  parallel.parallel_first_iteration = true;
  auto a = SelectSeedsCelfPp(&o1.ValueOrDie(), 5, serial);
  auto b = SelectSeedsCelfPp(&o2.ValueOrDie(), 5, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie().seeds, b.ValueOrDie().seeds);
}

// ---------------------------------------------------------------- heuristics ---

TEST(HeuristicsTest, RandomSeedsDistinctAndInRange) {
  Rng rng(29);
  auto r = SelectSeedsRandom(50, 10, &rng);
  ASSERT_TRUE(r.ok());
  std::set<NodeId> unique(r.ValueOrDie().begin(), r.ValueOrDie().end());
  EXPECT_EQ(unique.size(), 10u);
  for (NodeId v : r.ValueOrDie()) EXPECT_LT(v, 50u);
  EXPECT_FALSE(SelectSeedsRandom(5, 6, &rng).ok());
  EXPECT_FALSE(SelectSeedsRandom(5, 0, &rng).ok());
}

TEST(HeuristicsTest, DegreeSeedsAreTopDegree) {
  TopicGraphBuilder b(5, 1);
  // Node 2 has out-degree 3; node 0 has 2; others less.
  ASSERT_TRUE(b.AddArc(2, 0, {0.5}).ok());
  ASSERT_TRUE(b.AddArc(2, 1, {0.5}).ok());
  ASSERT_TRUE(b.AddArc(2, 3, {0.5}).ok());
  ASSERT_TRUE(b.AddArc(0, 1, {0.5}).ok());
  ASSERT_TRUE(b.AddArc(0, 3, {0.5}).ok());
  ASSERT_TRUE(b.AddArc(4, 3, {0.5}).ok());
  const TopicGraph g = b.Build().ValueOrDie();
  auto r = SelectSeedsByDegree(g, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie()[0], 2u);
  EXPECT_EQ(r.ValueOrDie()[1], 0u);
}

TEST(HeuristicsTest, WeightedDegreeUsesProbabilities) {
  TopicGraphBuilder b(4, 1);
  ASSERT_TRUE(b.AddArc(0, 1, {0.9}).ok());   // node 0: weight 0.9
  ASSERT_TRUE(b.AddArc(1, 2, {0.1}).ok());   // node 1: weight 0.3 total
  ASSERT_TRUE(b.AddArc(1, 3, {0.2}).ok());
  const TopicGraph g = b.Build().ValueOrDie();
  auto r = SelectSeedsByWeightedDegree(g, SingleTopicProbs(g), 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie()[0], 0u);
}

}  // namespace
}  // namespace im
}  // namespace inflex
