#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/dataset_io.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "simplex/divergence.h"

namespace inflex {
namespace data {
namespace {

SyntheticDatasetOptions SmallOptions(uint64_t seed) {
  SyntheticDatasetOptions o;
  o.num_users = 200;
  o.num_topics = 4;
  o.num_items = 80;
  o.seed = seed;
  return o;
}

TEST(SyntheticDatasetTest, ValidatesOptions) {
  SyntheticDatasetOptions o = SmallOptions(1);
  o.num_users = 2;
  EXPECT_FALSE(GenerateSyntheticDataset(o).ok());
  o = SmallOptions(1);
  o.num_topics = 1;
  EXPECT_FALSE(GenerateSyntheticDataset(o).ok());
  o = SmallOptions(1);
  o.strong_prob_lo = 0.5;
  o.strong_prob_hi = 0.1;
  EXPECT_FALSE(GenerateSyntheticDataset(o).ok());
  o = SmallOptions(1);
  o.seeds_per_cascade = 0;
  EXPECT_FALSE(GenerateSyntheticDataset(o).ok());
}

TEST(SyntheticDatasetTest, StructuralInvariants) {
  auto ds_r = GenerateSyntheticDataset(SmallOptions(7));
  ASSERT_TRUE(ds_r.ok()) << ds_r.status().ToString();
  const SyntheticDataset& ds = ds_r.ValueOrDie();

  EXPECT_EQ(ds.graph.num_nodes(), 200u);
  EXPECT_EQ(ds.graph.num_topics(), 4u);
  EXPECT_GT(ds.graph.num_arcs(), 200u);  // several arcs per node on average
  EXPECT_EQ(ds.catalog.size(), 80u);
  EXPECT_EQ(ds.user_community.size(), 200u);
  EXPECT_EQ(ds.log.num_users(), 200u);
  EXPECT_EQ(ds.log.num_items(), 80u);
  EXPECT_GT(ds.log.size(), 80u);  // cascades produced activity

  for (uint32_t c : ds.user_community) EXPECT_LT(c, 4u);
  for (const auto& item : ds.catalog) {
    EXPECT_EQ(item.num_topics(), 4u);
  }
  for (graph::ArcId a = 0; a < ds.graph.num_arcs(); ++a) {
    for (size_t z = 0; z < 4; ++z) {
      const double p = ds.graph.ArcTopicProb(a, z);
      EXPECT_GT(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
  }
}

TEST(SyntheticDatasetTest, TopicStructureIsPresent) {
  // An arc's strongest topic should usually be its source's community —
  // the property that makes influence topic-dependent.
  auto ds_r = GenerateSyntheticDataset(SmallOptions(11));
  ASSERT_TRUE(ds_r.ok());
  const SyntheticDataset& ds = ds_r.ValueOrDie();
  size_t matches = 0, arcs = 0;
  for (graph::NodeId u = 0; u < ds.graph.num_nodes(); ++u) {
    graph::ArcId a = ds.graph.OutArcBegin(u);
    for (size_t i = 0; i < ds.graph.OutDegree(u); ++i, ++a) {
      const auto probs = ds.graph.ArcTopicProbs(a);
      const size_t best =
          std::max_element(probs.begin(), probs.end()) - probs.begin();
      if (best == ds.user_community[u]) ++matches;
      ++arcs;
    }
  }
  EXPECT_GT(static_cast<double>(matches) / arcs, 0.8);
}

TEST(SyntheticDatasetTest, DeterministicForFixedSeed) {
  auto a = GenerateSyntheticDataset(SmallOptions(13));
  auto b = GenerateSyntheticDataset(SmallOptions(13));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie().graph.num_arcs(), b.ValueOrDie().graph.num_arcs());
  EXPECT_EQ(a.ValueOrDie().log.size(), b.ValueOrDie().log.size());
  for (size_t i = 0; i < 80; ++i) {
    EXPECT_EQ(a.ValueOrDie().catalog[i].probs(),
              b.ValueOrDie().catalog[i].probs());
  }
}

TEST(SyntheticDatasetTest, DifferentSeedsDiffer) {
  auto a = GenerateSyntheticDataset(SmallOptions(17));
  auto b = GenerateSyntheticDataset(SmallOptions(18));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.ValueOrDie().catalog[0].probs(),
            b.ValueOrDie().catalog[0].probs());
}

TEST(DatasetIoTest, FullRoundTrip) {
  auto ds_r = GenerateSyntheticDataset(SmallOptions(19));
  ASSERT_TRUE(ds_r.ok());
  const std::string dir = testing::TempDir() + "/dataset_roundtrip";
  ASSERT_TRUE(SaveDataset(ds_r.ValueOrDie(), dir).ok());
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SyntheticDataset& a = ds_r.ValueOrDie();
  const SyntheticDataset& b = loaded.ValueOrDie();
  EXPECT_EQ(a.graph.num_arcs(), b.graph.num_arcs());
  EXPECT_EQ(a.catalog.size(), b.catalog.size());
  EXPECT_EQ(a.log.size(), b.log.size());
  EXPECT_EQ(a.user_community, b.user_community);
  for (size_t i = 0; i < a.catalog.size(); ++i) {
    EXPECT_EQ(a.catalog[i].probs(), b.catalog[i].probs());
  }
}

TEST(DatasetIoTest, CatalogRoundTrip) {
  auto ds_r = GenerateSyntheticDataset(SmallOptions(23));
  ASSERT_TRUE(ds_r.ok());
  const std::string path = testing::TempDir() + "/catalog.bin";
  ASSERT_TRUE(SaveCatalog(ds_r.ValueOrDie().catalog, path).ok());
  auto loaded = LoadCatalog(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().size(), 80u);
  EXPECT_FALSE(SaveCatalog({}, path).ok());
  EXPECT_FALSE(LoadCatalog("/no/such/catalog.bin").ok());
}

// ----------------------------------------------------------------- workload ---

TEST(WorkloadTest, GeneratesBothPopulations) {
  auto ds_r = GenerateSyntheticDataset(SmallOptions(29));
  ASSERT_TRUE(ds_r.ok());
  QueryWorkloadOptions opts;
  opts.num_data_driven = 20;
  opts.num_uniform = 15;
  auto w = GenerateQueryWorkload(ds_r.ValueOrDie().catalog, opts);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w.ValueOrDie().queries.size(), 35u);
  size_t data_driven = 0;
  for (bool b : w.ValueOrDie().is_data_driven) data_driven += b;
  EXPECT_EQ(data_driven, 20u);
  for (const auto& q : w.ValueOrDie().queries) {
    EXPECT_EQ(q.num_topics(), 4u);
  }
}

TEST(WorkloadTest, DataDrivenQueriesFollowCatalogShape) {
  // Data-driven queries should on average sit closer to their nearest
  // catalog item (in symmetrized KL) than uniform-simplex queries do —
  // they are drawn from the distribution the catalog induces.
  auto ds_r = GenerateSyntheticDataset(SmallOptions(31));
  ASSERT_TRUE(ds_r.ok());
  const auto& catalog = ds_r.ValueOrDie().catalog;

  QueryWorkloadOptions opts;
  opts.num_data_driven = 100;
  opts.num_uniform = 100;
  auto w = GenerateQueryWorkload(catalog, opts);
  ASSERT_TRUE(w.ok());
  double dd = 0.0, uni = 0.0;
  for (size_t i = 0; i < w.ValueOrDie().queries.size(); ++i) {
    double nearest = 1e18;
    for (const auto& item : catalog) {
      nearest = std::min(nearest,
                         simplex::SymmetrizedKl(
                             w.ValueOrDie().queries[i].probs(), item.probs()));
    }
    if (w.ValueOrDie().is_data_driven[i]) {
      dd += nearest;
    } else {
      uni += nearest;
    }
  }
  EXPECT_LT(dd / 100.0, uni / 100.0);
}

TEST(WorkloadTest, RejectsBadInput) {
  EXPECT_FALSE(GenerateQueryWorkload({}, {}).ok());
  auto ds_r = GenerateSyntheticDataset(SmallOptions(37));
  ASSERT_TRUE(ds_r.ok());
  QueryWorkloadOptions bad;
  bad.boundary_smoothing = 2.0;
  EXPECT_FALSE(GenerateQueryWorkload(ds_r.ValueOrDie().catalog, bad).ok());
}

}  // namespace
}  // namespace data
}  // namespace inflex
