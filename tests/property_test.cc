// Cross-module property tests: parameterized sweeps asserting invariants
// that must hold for ANY configuration, not just the tuned defaults.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "bbtree/bbtree.h"
#include "data/synthetic.h"
#include "im/snapshot_oracle.h"
#include "im/spread_estimator.h"
#include "rank/aggregators.h"
#include "rank/kendall_tau.h"
#include "simplex/divergence.h"
#include "simplex/sampling.h"
#include "stats/dirichlet.h"
#include "util/random.h"

namespace inflex {
namespace {

// ------------------------------------------------ spread estimator accord ---

struct SpreadRegime {
  double p_lo;
  double p_hi;
  size_t arcs;
};

class SpreadAgreementTest : public ::testing::TestWithParam<SpreadRegime> {};

TEST_P(SpreadAgreementTest, SnapshotOracleTracksMonteCarlo) {
  // The two spread estimators are independent implementations of the same
  // expectation; across sparse/dense and weak/strong regimes they must
  // agree within sampling noise.
  const SpreadRegime regime = GetParam();
  Rng rng(1234);
  graph::TopicGraphBuilder b(150, 1);
  std::set<std::pair<graph::NodeId, graph::NodeId>> used;
  while (used.size() < regime.arcs) {
    const auto u = static_cast<graph::NodeId>(rng.UniformInt(150));
    const auto v = static_cast<graph::NodeId>(rng.UniformInt(150));
    if (u == v || used.count({u, v})) continue;
    used.insert({u, v});
    ASSERT_TRUE(b.AddArc(u, v, {rng.Uniform(regime.p_lo, regime.p_hi)}).ok());
  }
  const auto g = b.Build().ValueOrDie();
  graph::ArcProbabilities probs(g.num_arcs());
  for (graph::ArcId a = 0; a < g.num_arcs(); ++a) {
    probs[a] = g.ArcTopicProb(a, 0);
  }

  im::SnapshotSpreadOracle::Options oopts;
  oopts.num_snapshots = 4000;
  auto oracle = im::SnapshotSpreadOracle::Create(g, probs, oopts);
  ASSERT_TRUE(oracle.ok());
  auto ws = oracle.ValueOrDie().MakeWorkspace();

  im::MonteCarloOptions mc;
  mc.num_simulations = 20000;
  mc.parallel = false;
  const std::vector<graph::NodeId> seeds = {3, 77, 140};
  const double snap = oracle.ValueOrDie().SpreadOf(seeds, &ws);
  const double monte =
      im::EstimateSpread(g, probs, seeds, mc).ValueOrDie().mean;
  EXPECT_NEAR(snap, monte, 0.06 * monte + 0.6)
      << "regime p=[" << regime.p_lo << "," << regime.p_hi << "] arcs="
      << regime.arcs;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, SpreadAgreementTest,
    ::testing::Values(SpreadRegime{0.01, 0.05, 400},   // weak, sparse
                      SpreadRegime{0.05, 0.2, 800},    // medium
                      SpreadRegime{0.2, 0.6, 400},     // strong, sparse
                      SpreadRegime{0.3, 0.9, 1500}));  // near-percolating

// ------------------------------------------------------- Kendall distance ---

TEST(KendallPropertyTest, MonotoneInPerturbationStrength) {
  // More adjacent transpositions applied to a list ⇒ the top-ℓ distance to
  // the original never decreases (in expectation; we assert on averages).
  Rng rng(77);
  const size_t ell = 20;
  double prev_avg = -1.0;
  for (int swaps : {0, 3, 10, 30, 90}) {
    double total = 0.0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      rank::RankedList base(ell);
      std::iota(base.begin(), base.end(), 1000u);
      rank::RankedList perturbed = base;
      for (int s = 0; s < swaps; ++s) {
        const size_t i = rng.UniformInt(ell - 1);
        std::swap(perturbed[i], perturbed[i + 1]);
      }
      total += rank::KendallTauTopL(base, perturbed).ValueOrDie();
    }
    const double avg = total / trials;
    EXPECT_GE(avg, prev_avg - 1e-9) << swaps;
    prev_avg = avg;
  }
}

TEST(KendallPropertyTest, TopLDistanceIsBounded) {
  Rng rng(78);
  for (int t = 0; t < 60; ++t) {
    const size_t ell = 2 + rng.UniformInt(30);
    std::set<rank::Item> pool;
    while (pool.size() < 2 * ell) {
      pool.insert(static_cast<rank::Item>(rng.UniformInt(10000)));
    }
    std::vector<rank::Item> items(pool.begin(), pool.end());
    rng.Shuffle(&items);
    rank::RankedList a(items.begin(), items.begin() + ell);
    rng.Shuffle(&items);
    rank::RankedList b(items.begin(), items.begin() + ell);
    const double d = rank::KendallTauTopL(a, b).ValueOrDie();
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
    EXPECT_DOUBLE_EQ(rank::KendallTauTopL(a, a).ValueOrDie(), 0.0);
    EXPECT_DOUBLE_EQ(d, rank::KendallTauTopL(b, a).ValueOrDie());
  }
}

// ------------------------------------------------------------ aggregation ---

TEST(AggregationPropertyTest, UnanimousPrefixIsPreserved) {
  // When every input list starts with the same two items in the same order,
  // any aggregation method must keep them on top in that order.
  Rng rng(79);
  for (auto method :
       {rank::AggregationMethod::kBorda, rank::AggregationMethod::kCopeland,
        rank::AggregationMethod::kMarkovChainMc4}) {
    for (int t = 0; t < 10; ++t) {
      std::vector<rank::RankedList> lists;
      for (int j = 0; j < 4; ++j) {
        rank::RankedList tail(8);
        std::iota(tail.begin(), tail.end(), 100u);
        rng.Shuffle(&tail);
        rank::RankedList l = {1, 2};
        l.insert(l.end(), tail.begin(), tail.begin() + 5);
        lists.push_back(l);
      }
      rank::AggregationOptions opts;
      opts.method = method;
      auto r = rank::AggregateRankings(lists, {}, 7, opts);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.ValueOrDie()[0], 1u) << static_cast<int>(method);
      EXPECT_EQ(r.ValueOrDie()[1], 2u) << static_cast<int>(method);
    }
  }
}

TEST(AggregationPropertyTest, SingleListIsReturnedVerbatim) {
  const rank::RankedList l = {9, 4, 6, 2, 8};
  for (auto method :
       {rank::AggregationMethod::kBorda, rank::AggregationMethod::kCopeland,
        rank::AggregationMethod::kMarkovChainMc4}) {
    rank::AggregationOptions opts;
    opts.method = method;
    auto r = rank::AggregateRankings({l}, {}, 5, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie(), l) << static_cast<int>(method);
  }
}

// -------------------------------------------------------------- divergence ---

class KlSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KlSweepTest, BasicAxiomsAcrossDimensions) {
  const size_t dim = GetParam();
  Rng rng(dim * 31 + 1);
  for (int t = 0; t < 40; ++t) {
    const auto p = simplex::SampleUniformSimplex(dim, &rng);
    const auto q = simplex::SampleUniformSimplex(dim, &rng);
    const double d_pq = simplex::KlDivergence(p, q);
    EXPECT_GE(d_pq, 0.0);
    EXPECT_DOUBLE_EQ(simplex::KlDivergence(p, p), 0.0);
    EXPECT_LE(d_pq, simplex::KlMaxBound() + 1e-9);
    // Symmetrized version bounds both sided versions from below / above.
    const double sym = simplex::SymmetrizedKl(p, q);
    EXPECT_LE(std::min(d_pq, simplex::KlDivergence(q, p)), sym + 1e-12);
    EXPECT_GE(std::max(d_pq, simplex::KlDivergence(q, p)) + 1e-12, sym);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, KlSweepTest, ::testing::Values(2, 3, 8, 32));

// --------------------------------------------------------------- bb-tree ---

class BbTreeInvariantTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BbTreeInvariantTest, SearchResultsAreAlwaysValidPoints) {
  const size_t leaf_size = GetParam();
  Rng rng(leaf_size * 7 + 5);
  std::vector<simplex::TopicVector> points;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> alpha(6, 0.4);
    alpha[i % 6] = 5.0;
    stats::Dirichlet d(alpha);
    points.push_back(d.Sample(&rng));
  }
  bbtree::BbTreeOptions opts;
  opts.max_leaf_size = leaf_size;
  auto tree = bbtree::BbTree::Build(points, opts);
  ASSERT_TRUE(tree.ok());

  for (int t = 0; t < 15; ++t) {
    const auto q = simplex::SampleUniformSimplex(6, &rng);
    // All three searches: ids in range, divergences correct and sorted.
    bbtree::SearchStats stats;
    for (const auto& result :
         {tree.ValueOrDie().ExactKnn(q, 7, &stats),
          tree.ValueOrDie().LeafBoundedKnn(q, 7, 3, &stats),
          tree.ValueOrDie().InflexSearch(q).neighbors}) {
      for (size_t i = 0; i < result.size(); ++i) {
        ASSERT_LT(result[i].point_id, points.size());
        EXPECT_NEAR(result[i].divergence,
                    simplex::KlDivergence(
                        points[result[i].point_id], q),
                    1e-12);
        if (i > 0) {
          EXPECT_LE(result[i - 1].divergence, result[i].divergence);
        }
      }
    }
    EXPECT_GT(stats.kl_evaluations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, BbTreeInvariantTest,
                         ::testing::Values(2, 4, 16, 64));

TEST(BbTreeInvariantTest, ExactKnnPrunesOnClusteredData) {
  Rng rng(99);
  std::vector<simplex::TopicVector> points;
  for (int i = 0; i < 400; ++i) {
    std::vector<double> alpha(8, 0.15);
    alpha[i % 8] = 8.0;
    stats::Dirichlet d(alpha);
    points.push_back(d.Sample(&rng));
  }
  bbtree::BbTreeOptions opts;
  opts.max_leaf_size = 10;
  auto tree = bbtree::BbTree::Build(points, opts);
  ASSERT_TRUE(tree.ok());
  size_t pruned = 0;
  for (int t = 0; t < 20; ++t) {
    bbtree::SearchStats stats;
    tree.ValueOrDie().ExactKnn(simplex::SampleUniformSimplex(8, &rng), 3,
                               &stats);
    pruned += stats.subtrees_pruned;
  }
  EXPECT_GT(pruned, 0u);  // the Eq. 5 bound actually prunes
}

// ---------------------------------------------------- dataset invariants ---

class DatasetSweepTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(DatasetSweepTest, GeneratorInvariantsAcrossShapes) {
  const auto [users, topics] = GetParam();
  data::SyntheticDatasetOptions opts;
  opts.num_users = users;
  opts.num_topics = topics;
  opts.num_items = 60;
  opts.seed = users + topics;
  auto ds = data::GenerateSyntheticDataset(opts);
  ASSERT_TRUE(ds.ok());
  const auto& d = ds.ValueOrDie();
  EXPECT_EQ(d.graph.num_nodes(), users);
  EXPECT_EQ(d.graph.num_topics(), topics);
  // Log activations reference valid users/items and are time-ordered per
  // item.
  for (tic::ItemId i = 0; i < 60; ++i) {
    double prev = -1.0;
    for (const auto& a : d.log.ItemActivations(i)) {
      EXPECT_LT(a.user, users);
      EXPECT_GE(a.timestamp, prev);
      prev = a.timestamp;
    }
  }
  // Every catalog entry is a valid distribution.
  for (const auto& item : d.catalog) {
    double sum = 0.0;
    for (double p : item.probs()) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DatasetSweepTest,
    ::testing::Values(std::make_pair<size_t, size_t>(50, 2),
                      std::make_pair<size_t, size_t>(200, 5),
                      std::make_pair<size_t, size_t>(500, 12)));

}  // namespace
}  // namespace inflex
