// Tests for the extension features beyond the paper's core: MC4 rank
// aggregation, segment-targeted TIM queries, seed-candidate restriction in
// the IM algorithms, RIS influence maximization, DegreeDiscount, and the
// automatic index-size suggestion.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "data/synthetic.h"
#include "im/celf.h"
#include "im/celfpp.h"
#include "im/heuristics.h"
#include "im/lt_model.h"
#include "im/ris.h"
#include "im/spread_estimator.h"
#include "inflex/index_points.h"
#include "simplex/sampling.h"
#include "inflex/inflex_index.h"
#include "inflex/query_cache.h"
#include "rank/kendall_tau.h"
#include "rank/markov_chain.h"
#include "util/random.h"

namespace inflex {
namespace {

// ---------------------------------------------------------------------- MC4 ---

TEST(Mc4Test, RecoversPerfectConsensus) {
  const rank::RankedList consensus = {4, 1, 9, 2};
  auto r = rank::Mc4Aggregate({consensus, consensus, consensus}, {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie(), consensus);
}

TEST(Mc4Test, CondorcetWinnerRanksFirst) {
  // Item 1 beats everyone pairwise in a majority of the lists.
  auto r = rank::Mc4Aggregate({{1, 2, 3}, {1, 3, 2}, {2, 1, 3}}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().front(), 1u);
}

TEST(Mc4Test, StationaryDistributionIsProbability) {
  Rng rng(5);
  std::vector<rank::RankedList> lists;
  for (int j = 0; j < 4; ++j) {
    rank::RankedList l(8);
    std::iota(l.begin(), l.end(), 0u);
    rng.Shuffle(&l);
    l.resize(5);
    lists.push_back(l);
  }
  auto pi = rank::Mc4StationaryDistribution(lists, {});
  ASSERT_TRUE(pi.ok());
  double sum = 0.0;
  for (double p : pi.ValueOrDie()) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mc4Test, WeightsShiftTheOutcome) {
  const std::vector<rank::RankedList> lists = {{1, 2}, {2, 1}, {2, 1}};
  auto unweighted = rank::Mc4Aggregate(lists, {});
  ASSERT_TRUE(unweighted.ok());
  EXPECT_EQ(unweighted.ValueOrDie().front(), 2u);  // majority
  auto weighted = rank::Mc4Aggregate(lists, {10.0, 1.0, 1.0});
  ASSERT_TRUE(weighted.ok());
  EXPECT_EQ(weighted.ValueOrDie().front(), 1u);  // dominant first list
}

TEST(Mc4Test, RejectsBadInput) {
  EXPECT_FALSE(rank::Mc4Aggregate({}, {}).ok());
  rank::Mc4Options bad;
  bad.damping = 0.0;
  EXPECT_FALSE(rank::Mc4Aggregate({{1, 2}}, {}, bad).ok());
}

TEST(Mc4Test, WorksAsAggregationMethodInPipeline) {
  rank::AggregationOptions opts;
  opts.method = rank::AggregationMethod::kMarkovChainMc4;
  auto r = rank::AggregateRankings({{1, 2, 3}, {1, 3, 2}}, {}, 3, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().size(), 3u);
  EXPECT_EQ(r.ValueOrDie().front(), 1u);
}

// --------------------------------------------------------- candidate masks ---

class CandidateMaskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticDatasetOptions dopts;
    dopts.num_users = 200;
    dopts.num_topics = 4;
    dopts.num_items = 40;
    dopts.seed = 303;
    auto ds = data::GenerateSyntheticDataset(dopts);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<data::SyntheticDataset>(
        std::move(ds).ValueOrDie());
    const auto probs = dataset_->graph.ItemArcProbabilities(
        simplex::TopicDistribution::Uniform(4));
    im::SnapshotSpreadOracle::Options oopts;
    oopts.num_snapshots = 40;
    auto oracle = im::SnapshotSpreadOracle::Create(dataset_->graph, probs,
                                                   oopts);
    ASSERT_TRUE(oracle.ok());
    oracle_ = std::make_unique<im::SnapshotSpreadOracle>(
        std::move(oracle).ValueOrDie());
  }

  std::unique_ptr<data::SyntheticDataset> dataset_;
  std::unique_ptr<im::SnapshotSpreadOracle> oracle_;
};

TEST_F(CandidateMaskTest, AllSelectorsRespectTheMask) {
  // Only even node ids are eligible.
  im::SeedSelectionOptions opts;
  opts.parallel_first_iteration = false;
  opts.candidate_mask.assign(200, 0);
  for (size_t v = 0; v < 200; v += 2) opts.candidate_mask[v] = 1;

  auto greedy = im::SelectSeedsGreedy(oracle_.get(), 6, opts);
  auto celf = im::SelectSeedsCelf(oracle_.get(), 6, opts);
  auto celfpp = im::SelectSeedsCelfPp(oracle_.get(), 6, opts);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(celf.ok());
  ASSERT_TRUE(celfpp.ok());
  for (const auto* r : {&greedy.ValueOrDie(), &celf.ValueOrDie(),
                        &celfpp.ValueOrDie()}) {
    for (graph::NodeId v : r->seeds) EXPECT_EQ(v % 2, 0u);
  }
  // The three algorithms still agree under the restriction.
  EXPECT_EQ(celf.ValueOrDie().seeds, greedy.ValueOrDie().seeds);
  EXPECT_EQ(celfpp.ValueOrDie().seeds, greedy.ValueOrDie().seeds);
}

TEST_F(CandidateMaskTest, RestrictionNeverImprovesSpread) {
  im::SeedSelectionOptions unrestricted;
  unrestricted.parallel_first_iteration = false;
  auto full = im::SelectSeedsCelfPp(oracle_.get(), 5, unrestricted);
  ASSERT_TRUE(full.ok());

  im::SeedSelectionOptions restricted = unrestricted;
  restricted.candidate_mask.assign(200, 0);
  for (size_t v = 0; v < 100; ++v) restricted.candidate_mask[v] = 1;
  auto half = im::SelectSeedsCelfPp(oracle_.get(), 5, restricted);
  ASSERT_TRUE(half.ok());
  EXPECT_LE(half.ValueOrDie().expected_spread,
            full.ValueOrDie().expected_spread + 1e-9);
}

TEST_F(CandidateMaskTest, ValidatesMask) {
  im::SeedSelectionOptions wrong_size;
  wrong_size.candidate_mask.assign(10, 1);
  EXPECT_FALSE(im::SelectSeedsCelfPp(oracle_.get(), 3, wrong_size).ok());

  im::SeedSelectionOptions too_few;
  too_few.candidate_mask.assign(200, 0);
  too_few.candidate_mask[0] = 1;
  EXPECT_FALSE(im::SelectSeedsCelfPp(oracle_.get(), 3, too_few).ok());
}

// ------------------------------------------------------- segment TIM query ---

class SegmentQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticDatasetOptions dopts;
    dopts.num_users = 300;
    dopts.num_topics = 4;
    dopts.num_items = 100;
    dopts.seed = 404;
    auto ds = data::GenerateSyntheticDataset(dopts);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::SyntheticDataset(std::move(ds).ValueOrDie());
    core::InflexBuildOptions bopts;
    bopts.index_points.num_index_points = 24;
    bopts.index_points.num_dirichlet_samples = 2000;
    bopts.seed_list_length = 15;
    bopts.oracle_snapshots = 40;
    auto index = core::InflexIndex::Build(dataset_->graph, dataset_->catalog,
                                          bopts);
    ASSERT_TRUE(index.ok());
    index_ = new core::InflexIndex(std::move(index).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    index_ = nullptr;
    dataset_ = nullptr;
  }
  static data::SyntheticDataset* dataset_;
  static core::InflexIndex* index_;
};

data::SyntheticDataset* SegmentQueryTest::dataset_ = nullptr;
core::InflexIndex* SegmentQueryTest::index_ = nullptr;

TEST_F(SegmentQueryTest, AnswersContainOnlySegmentMembers) {
  core::QueryOptions opts;
  opts.segment_mask.assign(300, 0);
  for (size_t v = 0; v < 300; v += 3) opts.segment_mask[v] = 1;
  Rng rng(1);
  for (int t = 0; t < 5; ++t) {
    auto q = simplex::TopicDistribution::Create(
                 simplex::SampleUniformSimplex(4, &rng))
                 .ValueOrDie();
    auto r = index_->Query(q, 5, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.ValueOrDie().seeds.empty());
    for (rank::Item v : r.ValueOrDie().seeds) EXPECT_EQ(v % 3, 0u);
  }
}

TEST_F(SegmentQueryTest, FullSegmentEqualsUnrestrictedAnswer) {
  // A mask admitting every user must not change the answer.
  core::QueryOptions unrestricted;
  core::QueryOptions seg;
  seg.segment_mask.assign(300, 1);
  Rng rng(2);
  for (int t = 0; t < 5; ++t) {
    auto q = simplex::TopicDistribution::Create(
                 simplex::SampleUniformSimplex(4, &rng))
                 .ValueOrDie();
    auto full = index_->Query(q, 10, unrestricted);
    auto masked = index_->Query(q, 10, seg);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(masked.ok());
    EXPECT_EQ(full.ValueOrDie().seeds, masked.ValueOrDie().seeds);
  }
}

TEST_F(SegmentQueryTest, EmptySegmentFailsCleanly) {
  core::QueryOptions opts;
  opts.segment_mask.assign(300, 0);  // nobody eligible
  auto r = index_->Query(simplex::TopicDistribution::Uniform(4), 5, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(SegmentQueryTest, WrongMaskSizeRejected) {
  core::QueryOptions opts;
  opts.segment_mask.assign(7, 1);
  auto r = index_->Query(simplex::TopicDistribution::Uniform(4), 5, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------------------- RIS ---

TEST(RisTest, MatchesCelfPpSpreadOnSameInstance) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 250;
  dopts.num_topics = 4;
  dopts.num_items = 40;
  dopts.seed = 77;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  const auto& g = ds.ValueOrDie().graph;
  const auto item =
      simplex::TopicDistribution::Delta(4, 1).SmoothedTowardUniform(0.1);
  const auto probs = g.ItemArcProbabilities(item);

  im::RisOptions ropts;
  ropts.num_rr_sets = 40000;
  auto ris = im::SelectSeedsRis(g, probs, 10, ropts);
  ASSERT_TRUE(ris.ok()) << ris.status().ToString();
  ASSERT_EQ(ris.ValueOrDie().seeds.size(), 10u);

  im::SnapshotSpreadOracle::Options oopts;
  oopts.num_snapshots = 100;
  auto oracle = im::SnapshotSpreadOracle::Create(g, probs, oopts);
  ASSERT_TRUE(oracle.ok());
  im::SeedSelectionOptions sopts;
  sopts.parallel_first_iteration = false;
  auto celfpp = im::SelectSeedsCelfPp(&oracle.ValueOrDie(), 10, sopts);
  ASSERT_TRUE(celfpp.ok());

  // Evaluate both seed sets with the same MC estimator: they must be within
  // a few percent of each other (both are (1−1/e)-approximations).
  im::MonteCarloOptions mc;
  mc.num_simulations = 8000;
  const double ris_spread =
      im::EstimateSpread(g, probs, ris.ValueOrDie().seeds, mc)
          .ValueOrDie()
          .mean;
  const double celf_spread =
      im::EstimateSpread(g, probs, celfpp.ValueOrDie().seeds, mc)
          .ValueOrDie()
          .mean;
  EXPECT_GT(ris_spread, 0.9 * celf_spread);
  // And the RIS internal estimate should be close to the MC evaluation.
  EXPECT_NEAR(ris.ValueOrDie().expected_spread, ris_spread,
              0.15 * ris_spread + 2.0);
}

TEST(RisTest, MarginalGainsNonIncreasingAndSeedsDistinct) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 150;
  dopts.num_topics = 3;
  dopts.num_items = 30;
  dopts.seed = 88;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  const auto& g = ds.ValueOrDie().graph;
  const auto probs =
      g.ItemArcProbabilities(simplex::TopicDistribution::Uniform(3));
  im::RisOptions ropts;
  ropts.num_rr_sets = 20000;
  auto r = im::SelectSeedsRis(g, probs, 12, ropts);
  ASSERT_TRUE(r.ok());
  const auto& gains = r.ValueOrDie().marginal_gains;
  for (size_t i = 1; i < gains.size(); ++i) {
    EXPECT_LE(gains[i], gains[i - 1] + 1e-9);
  }
  std::set<graph::NodeId> unique(r.ValueOrDie().seeds.begin(),
                                 r.ValueOrDie().seeds.end());
  EXPECT_EQ(unique.size(), 12u);
  // Spread equals the sum of marginal gains.
  double total = 0.0;
  for (double gn : gains) total += gn;
  EXPECT_NEAR(total, r.ValueOrDie().expected_spread, 1e-6);
}

TEST(RisTest, RejectsBadInput) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 50;
  dopts.num_topics = 2;
  dopts.num_items = 10;
  dopts.seed = 99;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  const auto& g = ds.ValueOrDie().graph;
  const auto probs =
      g.ItemArcProbabilities(simplex::TopicDistribution::Uniform(2));
  EXPECT_FALSE(im::SelectSeedsRis(g, probs, 0).ok());
  EXPECT_FALSE(im::SelectSeedsRis(g, probs, 51).ok());
  graph::ArcProbabilities wrong(3, 0.1);
  EXPECT_FALSE(im::SelectSeedsRis(g, wrong, 5).ok());
}

// -------------------------------------------------- linear threshold model ---

TEST(LtModelTest, ValidatesWeights) {
  graph::TopicGraphBuilder b(3, 1);
  ASSERT_TRUE(b.AddArc(0, 2, {0.7}).ok());
  ASSERT_TRUE(b.AddArc(1, 2, {0.6}).ok());  // node 2's in-weights sum to 1.3
  const auto g = b.Build().ValueOrDie();
  graph::ArcProbabilities w = {0.7, 0.6};
  EXPECT_FALSE(im::ValidateLtWeights(g, w).ok());
  auto normalized = im::NormalizeToLtWeights(g, w);
  ASSERT_TRUE(normalized.ok());
  EXPECT_TRUE(im::ValidateLtWeights(g, normalized.ValueOrDie()).ok());
  EXPECT_NEAR(normalized.ValueOrDie()[0] + normalized.ValueOrDie()[1], 1.0,
              1e-12);
  // Already-admissible nodes keep their exact weights.
  graph::ArcProbabilities ok_w = {0.3, 0.4};
  EXPECT_EQ(im::NormalizeToLtWeights(g, ok_w).ValueOrDie(), ok_w);
}

TEST(LtModelTest, SingleInArcMatchesIcClosedForm) {
  // With one in-arc of weight w, LT activation probability is exactly w —
  // the same as IC: σ({0}) on a path 0→1→2 is 1 + w1 + w1·w2.
  graph::TopicGraphBuilder b(3, 1);
  ASSERT_TRUE(b.AddArc(0, 1, {0.6}).ok());
  ASSERT_TRUE(b.AddArc(1, 2, {0.5}).ok());
  const auto g = b.Build().ValueOrDie();
  const graph::ArcProbabilities w = {0.6, 0.5};
  im::MonteCarloOptions mc;
  mc.num_simulations = 100000;
  const std::vector<graph::NodeId> seeds = {0};
  auto est = im::EstimateLtSpread(g, w, seeds, mc);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.ValueOrDie().mean, 1.0 + 0.6 + 0.3, 0.02);
}

TEST(LtModelTest, DeterministicWeightOneChainFullyActivates) {
  graph::TopicGraphBuilder b(4, 1);
  ASSERT_TRUE(b.AddArc(0, 1, {1.0}).ok());
  ASSERT_TRUE(b.AddArc(1, 2, {1.0}).ok());
  ASSERT_TRUE(b.AddArc(2, 3, {1.0}).ok());
  const auto g = b.Build().ValueOrDie();
  const graph::ArcProbabilities w = {1.0, 1.0, 1.0};
  Rng rng(3);
  im::LtWorkspace ws(4);
  const std::vector<graph::NodeId> seeds = {0};
  for (int t = 0; t < 10; ++t) {
    // θ ~ U[0,1) < 1 always, so weight-1 influence always activates.
    EXPECT_EQ(im::SimulateLtCascadeCount(g, w, seeds, &rng, &ws), 4u);
  }
}

TEST(LtModelTest, JointInfluenceExceedsSingleSource) {
  // Node 2 hears from both 0 and 1 at weight 0.4 each: activation
  // probability 0.8 when both seeded vs 0.4 from one seed.
  graph::TopicGraphBuilder b(3, 1);
  ASSERT_TRUE(b.AddArc(0, 2, {0.4}).ok());
  ASSERT_TRUE(b.AddArc(1, 2, {0.4}).ok());
  const auto g = b.Build().ValueOrDie();
  const graph::ArcProbabilities w = {0.4, 0.4};
  im::MonteCarloOptions mc;
  mc.num_simulations = 60000;
  const std::vector<graph::NodeId> one = {0};
  const std::vector<graph::NodeId> both = {0, 1};
  const double single =
      im::EstimateLtSpread(g, w, one, mc).ValueOrDie().mean - 1.0;
  const double joint =
      im::EstimateLtSpread(g, w, both, mc).ValueOrDie().mean - 2.0;
  EXPECT_NEAR(single, 0.4, 0.01);
  EXPECT_NEAR(joint, 0.8, 0.01);
}

TEST(LtModelTest, TopicAwareLtViaEq1Pipeline) {
  // The full topic-aware path: Eq. 1 mixing + LT normalization + spread.
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 200;
  dopts.num_topics = 4;
  dopts.num_items = 30;
  dopts.seed = 55;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  const auto& g = ds.ValueOrDie().graph;
  const auto item =
      simplex::TopicDistribution::Delta(4, 2).SmoothedTowardUniform(0.1);
  auto weights = im::NormalizeToLtWeights(g, g.ItemArcProbabilities(item));
  ASSERT_TRUE(weights.ok());
  im::MonteCarloOptions mc;
  mc.num_simulations = 2000;
  const std::vector<graph::NodeId> seeds = {0, 50, 100};
  auto est = im::EstimateLtSpread(g, weights.ValueOrDie(), seeds, mc);
  ASSERT_TRUE(est.ok());
  EXPECT_GE(est.ValueOrDie().mean, 3.0);  // at least the seeds
  EXPECT_LE(est.ValueOrDie().mean, 200.0);
}

TEST(LtModelTest, EmptySeedsAndBadInput) {
  graph::TopicGraphBuilder b(2, 1);
  ASSERT_TRUE(b.AddArc(0, 1, {0.5}).ok());
  const auto g = b.Build().ValueOrDie();
  const graph::ArcProbabilities w = {0.5};
  EXPECT_EQ(im::EstimateLtSpread(g, w, {}).ValueOrDie().mean, 0.0);
  const std::vector<graph::NodeId> bad = {9};
  EXPECT_FALSE(im::EstimateLtSpread(g, w, bad).ok());
  graph::ArcProbabilities wrong(3, 0.1);
  const std::vector<graph::NodeId> seeds = {0};
  EXPECT_FALSE(im::EstimateLtSpread(g, wrong, seeds).ok());
}

// -------------------------------------------------------- degree discount ---

TEST(DegreeDiscountTest, BeatsPlainDegreeOnSpread) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 400;
  dopts.num_topics = 4;
  dopts.num_items = 50;
  dopts.seed = 111;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  const auto& g = ds.ValueOrDie().graph;
  const auto item =
      simplex::TopicDistribution::Delta(4, 0).SmoothedTowardUniform(0.1);
  const auto probs = g.ItemArcProbabilities(item);

  auto degree = im::SelectSeedsByDegree(g, 15);
  auto discount = im::SelectSeedsDegreeDiscount(g, probs, 15);
  ASSERT_TRUE(degree.ok());
  ASSERT_TRUE(discount.ok());
  im::MonteCarloOptions mc;
  mc.num_simulations = 6000;
  const double degree_spread =
      im::EstimateSpread(g, probs, degree.ValueOrDie(), mc).ValueOrDie().mean;
  const double discount_spread =
      im::EstimateSpread(g, probs, discount.ValueOrDie(), mc)
          .ValueOrDie()
          .mean;
  EXPECT_GT(discount_spread, 0.95 * degree_spread);
  std::set<graph::NodeId> unique(discount.ValueOrDie().begin(),
                                 discount.ValueOrDie().end());
  EXPECT_EQ(unique.size(), 15u);
}

TEST(DegreeDiscountTest, RejectsBadInput) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 50;
  dopts.num_topics = 2;
  dopts.num_items = 10;
  dopts.seed = 112;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  const auto& g = ds.ValueOrDie().graph;
  const auto probs =
      g.ItemArcProbabilities(simplex::TopicDistribution::Uniform(2));
  EXPECT_FALSE(im::SelectSeedsDegreeDiscount(g, probs, 0).ok());
  EXPECT_FALSE(im::SelectSeedsDegreeDiscount(g, probs, 51).ok());
}

// ------------------------------------------------- online index updates ---

TEST_F(SegmentQueryTest, AddIndexPointServesNewItemExactly) {
  // A freshly catalogued item arrives online with its precomputed list.
  core::InflexIndex index = [] {
    // Private copy so other tests' index is untouched: reload via parts.
    std::vector<simplex::TopicVector> points;
    std::vector<rank::RankedList> lists;
    for (uint32_t i = 0; i < index_->num_index_points(); ++i) {
      points.push_back(index_->index_point(i));
      lists.push_back(index_->seed_list(i));
    }
    return core::InflexIndex::FromParts(&dataset_->graph, std::move(points),
                                        std::move(lists), {})
        .ValueOrDie();
  }();
  const size_t before = index.num_index_points();

  const auto new_item = simplex::TopicDistribution::Create(
                            {0.85, 0.05, 0.05, 0.05})
                            .ValueOrDie();
  const rank::RankedList new_list = {7, 3, 99, 42, 11};
  ASSERT_TRUE(index.AddIndexPoint(new_item, new_list).ok());
  EXPECT_EQ(index.num_index_points(), before + 1);
  EXPECT_EQ(index.overflow_size(), 1u);

  // Querying the new item exactly must hit the ε-exact shortcut and return
  // its stored list.
  auto r = index.Query(new_item, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().epsilon_exact);
  EXPECT_EQ(r.ValueOrDie().seeds, new_list);

  // Compact folds the point into the tree; the answer must not change.
  ASSERT_TRUE(index.Compact().ok());
  EXPECT_EQ(index.overflow_size(), 0u);
  EXPECT_EQ(index.num_index_points(), before + 1);
  auto r2 = index.Query(new_item, 5);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.ValueOrDie().epsilon_exact);
  EXPECT_EQ(r2.ValueOrDie().seeds, new_list);
}

TEST_F(SegmentQueryTest, AddIndexPointValidates) {
  std::vector<simplex::TopicVector> points = {index_->index_point(0)};
  std::vector<rank::RankedList> lists = {index_->seed_list(0)};
  auto index = core::InflexIndex::FromParts(&dataset_->graph,
                                            std::move(points),
                                            std::move(lists), {})
                   .ValueOrDie();
  EXPECT_FALSE(
      index.AddIndexPoint(simplex::TopicDistribution::Uniform(7), {1, 2})
          .ok());
  EXPECT_FALSE(
      index.AddIndexPoint(simplex::TopicDistribution::Uniform(4), {}).ok());
  EXPECT_FALSE(
      index.AddIndexPoint(simplex::TopicDistribution::Uniform(4), {5, 5})
          .ok());
  EXPECT_FALSE(index
                   .AddIndexPoint(simplex::TopicDistribution::Uniform(4),
                                  {9999999})
                   .ok());
}

TEST_F(SegmentQueryTest, OverflowPointsParticipateInKnnSearches) {
  std::vector<simplex::TopicVector> points;
  std::vector<rank::RankedList> lists;
  for (uint32_t i = 0; i < index_->num_index_points(); ++i) {
    points.push_back(index_->index_point(i));
    lists.push_back(index_->seed_list(i));
  }
  auto index = core::InflexIndex::FromParts(&dataset_->graph,
                                            std::move(points),
                                            std::move(lists), {})
                   .ValueOrDie();
  const auto near_item =
      simplex::TopicDistribution::Create({0.82, 0.06, 0.06, 0.06})
          .ValueOrDie();
  ASSERT_TRUE(index.AddIndexPoint(near_item, {1, 2, 3}).ok());

  // A query close (but not ε-equal) to the new point must retrieve it as a
  // top neighbor under the exact-KNN strategy.
  const auto query =
      simplex::TopicDistribution::Create({0.80, 0.07, 0.07, 0.06})
          .ValueOrDie();
  core::QueryOptions opts;
  opts.strategy = core::QueryStrategy::kExactKnn;
  opts.knn_k = 3;
  auto r = index.Query(query, 3, opts);
  ASSERT_TRUE(r.ok());
  bool found = false;
  for (const auto& nb : r.ValueOrDie().neighbors_used) {
    if (nb.point_id == index.num_index_points() - 1) found = true;
  }
  EXPECT_TRUE(found);
}

// -------------------------------------------------------------- query cache ---

TEST_F(SegmentQueryTest, QueryCacheHitsOnRepeatAndNearbyQueries) {
  core::QueryCache cache;
  const auto q =
      simplex::TopicDistribution::Create({0.4, 0.3, 0.2, 0.1}).ValueOrDie();
  auto first = cache.Query(*index_, q, 8);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  // Exact repeat: hit with identical seeds.
  auto second = cache.Query(*index_, q, 8);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(second.ValueOrDie().seeds, first.ValueOrDie().seeds);

  // Within the quantization cell (default 0.01): also a hit.
  const auto near_q =
      simplex::TopicDistribution::Create({0.401, 0.299, 0.2, 0.1})
          .ValueOrDie();
  auto third = cache.Query(*index_, near_q, 8);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(cache.hits(), 2u);

  // Clearly different mixture: miss.
  const auto far_q =
      simplex::TopicDistribution::Create({0.1, 0.2, 0.3, 0.4}).ValueOrDie();
  auto fourth = cache.Query(*index_, far_q, 8);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(cache.misses(), 2u);

  // Different k: its own entry.
  auto fifth = cache.Query(*index_, q, 5);
  ASSERT_TRUE(fifth.ok());
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(fifth.ValueOrDie().seeds.size(), 5u);
}

TEST_F(SegmentQueryTest, QueryCacheEvictsLru) {
  core::QueryCache::Options copts;
  copts.capacity = 2;
  // Strict global LRU order needs a single shard; with striping each shard
  // evicts independently.
  copts.num_shards = 1;
  core::QueryCache cache(copts);
  Rng rng(7);
  const auto a = simplex::TopicDistribution::Create(
                     simplex::SampleUniformSimplex(4, &rng))
                     .ValueOrDie();
  const auto b = simplex::TopicDistribution::Create(
                     simplex::SampleUniformSimplex(4, &rng))
                     .ValueOrDie();
  const auto c = simplex::TopicDistribution::Create(
                     simplex::SampleUniformSimplex(4, &rng))
                     .ValueOrDie();
  ASSERT_TRUE(cache.Query(*index_, a, 5).ok());
  ASSERT_TRUE(cache.Query(*index_, b, 5).ok());
  ASSERT_TRUE(cache.Query(*index_, c, 5).ok());  // evicts `a`
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.Query(*index_, a, 5).ok());
  EXPECT_EQ(cache.hits(), 0u);  // `a` had been evicted
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

// --------------------------------------------------- automatic index size ---

TEST(SuggestIndexPointCountTest, MoreDemandingTargetsNeedMorePoints) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 100;
  dopts.num_topics = 5;
  dopts.num_items = 200;
  dopts.seed = 131;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());

  core::IndexSizeCriterion loose;
  loose.target_divergence = 1.0;
  loose.validation_samples = 400;
  core::IndexSizeCriterion tight = loose;
  tight.target_divergence = 0.2;
  auto h_loose = core::SuggestIndexPointCount(ds.ValueOrDie().catalog, loose);
  auto h_tight = core::SuggestIndexPointCount(ds.ValueOrDie().catalog, tight);
  ASSERT_TRUE(h_loose.ok()) << h_loose.status().ToString();
  ASSERT_TRUE(h_tight.ok());
  EXPECT_GE(h_tight.ValueOrDie(), h_loose.ValueOrDie());
  EXPECT_GE(h_loose.ValueOrDie(), loose.min_points);
  EXPECT_LE(h_tight.ValueOrDie(), tight.max_points);
}

TEST(SuggestIndexPointCountTest, RespectsBounds) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 100;
  dopts.num_topics = 3;
  dopts.num_items = 100;
  dopts.seed = 137;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  core::IndexSizeCriterion impossible;
  impossible.target_divergence = 1e-9;  // unreachable
  impossible.max_points = 64;
  impossible.validation_samples = 200;
  auto h = core::SuggestIndexPointCount(ds.ValueOrDie().catalog, impossible);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.ValueOrDie(), 64u);
}

TEST(SuggestIndexPointCountTest, RejectsBadInput) {
  EXPECT_FALSE(core::SuggestIndexPointCount({}).ok());
  const auto item = simplex::TopicDistribution::Uniform(3);
  core::IndexSizeCriterion bad;
  bad.quantile = 1.5;
  EXPECT_FALSE(core::SuggestIndexPointCount({item}, bad).ok());
  core::IndexSizeCriterion bad2;
  bad2.min_points = 100;
  bad2.max_points = 10;
  EXPECT_FALSE(core::SuggestIndexPointCount({item}, bad2).ok());
}

}  // namespace
}  // namespace inflex
