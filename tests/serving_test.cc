// Tests for the concurrent serving layer: the sharded thread-safe QueryCache
// (key fingerprinting, hit semantics, LRU striping), the QueryEngine batch
// API, the ThreadPool re-entrancy contract, and a multi-threaded stress test
// asserting that parallel serving is bit-identical to serial evaluation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "im/spread_estimator.h"
#include "inflex/inflex_index.h"
#include "inflex/query_cache.h"
#include "inflex/query_engine.h"
#include "simplex/sampling.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace inflex {
namespace {

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticDatasetOptions dopts;
    dopts.num_users = 250;
    dopts.num_topics = 4;
    dopts.num_items = 80;
    dopts.seed = 515;
    auto ds = data::GenerateSyntheticDataset(dopts);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::SyntheticDataset(std::move(ds).ValueOrDie());
    core::InflexBuildOptions bopts;
    bopts.index_points.num_index_points = 20;
    bopts.index_points.num_dirichlet_samples = 2000;
    bopts.seed_list_length = 12;
    bopts.oracle_snapshots = 30;
    auto index = core::InflexIndex::Build(dataset_->graph, dataset_->catalog,
                                          bopts);
    ASSERT_TRUE(index.ok());
    index_ = new core::InflexIndex(std::move(index).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  /// A deterministic mixed workload: varied mixtures, k, strategies and
  /// segment masks, with every 3rd request repeating an earlier mixture so
  /// batches exercise the cache-hit path too.
  static std::vector<core::QueryRequest> MakeWorkload(size_t n,
                                                      uint64_t seed) {
    std::vector<uint8_t> even_mask(dataset_->graph.num_nodes(), 0);
    for (size_t v = 0; v < even_mask.size(); v += 2) even_mask[v] = 1;
    Rng rng(seed);
    std::vector<core::QueryRequest> reqs;
    reqs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      core::QueryRequest r;
      if (i % 3 == 2 && i >= 3) {
        r.item = reqs[i / 3].item;  // repeat an earlier mixture
      } else {
        r.item = simplex::TopicDistribution::Create(
                     simplex::SampleUniformSimplex(4, &rng))
                     .ValueOrDie();
      }
      r.k = 3 + (i % 3) * 4;  // 3, 7, 11
      switch (i % 4) {
        case 0:
          r.options.strategy = core::QueryStrategy::kInflex;
          break;
        case 1:
          r.options.strategy = core::QueryStrategy::kExactKnn;
          break;
        case 2:
          r.options.strategy = core::QueryStrategy::kApproxKnnSel;
          break;
        case 3:
          r.options.strategy = core::QueryStrategy::kApproxAd;
          break;
      }
      if (i % 5 == 0) r.options.segment_mask = even_mask;
      reqs.push_back(std::move(r));
    }
    return reqs;
  }

  static void ExpectSameAnswer(const Result<core::QueryResult>& got,
                               const Result<core::QueryResult>& want,
                               size_t i) {
    ASSERT_EQ(got.ok(), want.ok()) << "request " << i << ": "
                                   << got.status().ToString() << " vs "
                                   << want.status().ToString();
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), want.status().code()) << "request " << i;
      return;
    }
    const auto& g = got.ValueOrDie();
    const auto& w = want.ValueOrDie();
    EXPECT_EQ(g.seeds, w.seeds) << "request " << i;
    EXPECT_EQ(g.weights, w.weights) << "request " << i;
    EXPECT_EQ(g.epsilon_exact, w.epsilon_exact) << "request " << i;
    ASSERT_EQ(g.neighbors_used.size(), w.neighbors_used.size())
        << "request " << i;
    for (size_t j = 0; j < g.neighbors_used.size(); ++j) {
      EXPECT_EQ(g.neighbors_used[j].point_id, w.neighbors_used[j].point_id);
      EXPECT_EQ(g.neighbors_used[j].divergence, w.neighbors_used[j].divergence);
    }
  }

  static data::SyntheticDataset* dataset_;
  static core::InflexIndex* index_;
};

data::SyntheticDataset* ServingTest::dataset_ = nullptr;
core::InflexIndex* ServingTest::index_ = nullptr;

// ------------------------------------------- cache key fingerprint (bugfix) ---

// Regression: the cache key used to ignore QueryOptions::segment_mask, so a
// segment-restricted query could be answered with a cached *unrestricted*
// seed list (and vice versa).
TEST_F(ServingTest, CacheKeySeparatesSegmentMasks) {
  core::QueryCache cache;
  const auto q =
      simplex::TopicDistribution::Create({0.4, 0.3, 0.2, 0.1}).ValueOrDie();

  auto unrestricted = cache.Query(*index_, q, 8);
  ASSERT_TRUE(unrestricted.ok());
  EXPECT_EQ(cache.misses(), 1u);

  core::QueryOptions seg;
  seg.segment_mask.assign(dataset_->graph.num_nodes(), 0);
  for (size_t v = 0; v < seg.segment_mask.size(); v += 2) {
    seg.segment_mask[v] = 1;
  }
  auto segmented = cache.Query(*index_, q, 8, seg);
  ASSERT_TRUE(segmented.ok());
  EXPECT_EQ(cache.misses(), 2u) << "segmented query answered from the "
                                   "unsegmented cache entry";
  EXPECT_EQ(cache.hits(), 0u);
  for (rank::Item v : segmented.ValueOrDie().seeds) EXPECT_EQ(v % 2, 0u);

  // A different mask is again its own entry.
  core::QueryOptions other_seg = seg;
  other_seg.segment_mask.back() = 1;
  ASSERT_TRUE(cache.Query(*index_, q, 8, other_seg).ok());
  EXPECT_EQ(cache.misses(), 3u);

  // Re-asking with each option set hits its own entry.
  auto again = cache.Query(*index_, q, 8, seg);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(again.ValueOrDie().seeds, segmented.ValueOrDie().seeds);
  auto again_unrestricted = cache.Query(*index_, q, 8);
  ASSERT_TRUE(again_unrestricted.ok());
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(again_unrestricted.ValueOrDie().seeds,
            unrestricted.ValueOrDie().seeds);
}

TEST_F(ServingTest, CacheKeySeparatesKnnKAndMaxLeaves) {
  core::QueryCache cache;
  const auto q =
      simplex::TopicDistribution::Create({0.25, 0.25, 0.3, 0.2}).ValueOrDie();
  core::QueryOptions opts;
  opts.strategy = core::QueryStrategy::kApproxKnn;
  opts.knn_k = 2;
  ASSERT_TRUE(cache.Query(*index_, q, 8, opts).ok());
  opts.knn_k = 8;
  ASSERT_TRUE(cache.Query(*index_, q, 8, opts).ok());
  EXPECT_EQ(cache.misses(), 2u) << "knn_k not in the cache key";
  opts.max_leaves = 1;
  ASSERT_TRUE(cache.Query(*index_, q, 8, opts).ok());
  EXPECT_EQ(cache.misses(), 3u) << "max_leaves not in the cache key";
  EXPECT_EQ(cache.hits(), 0u);
}

// ----------------------------------------------- cache hit semantics (bugfix) ---

// Regression: a hit used to return the original run's per-stage timings and
// search stats, misreporting per-stage latency for cached answers.
TEST_F(ServingTest, CacheHitZeroesStageTimingsAndStats) {
  core::QueryCache cache;
  const auto q =
      simplex::TopicDistribution::Create({0.5, 0.2, 0.2, 0.1}).ValueOrDie();
  auto miss = cache.Query(*index_, q, 8);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.ValueOrDie().from_cache);
  EXPECT_GT(miss.ValueOrDie().search_stats.kl_evaluations, 0u);
  EXPECT_GT(miss.ValueOrDie().similarity_search_ms, 0.0);

  auto hit = cache.Query(*index_, q, 8);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.ValueOrDie().from_cache);
  EXPECT_EQ(hit.ValueOrDie().similarity_search_ms, 0.0);
  EXPECT_EQ(hit.ValueOrDie().aggregation_ms, 0.0);
  EXPECT_EQ(hit.ValueOrDie().search_stats.kl_evaluations, 0u);
  EXPECT_EQ(hit.ValueOrDie().search_stats.leaves_visited, 0u);
  EXPECT_EQ(hit.ValueOrDie().search_stats.nodes_visited, 0u);
  EXPECT_GE(hit.ValueOrDie().total_ms, 0.0);
  EXPECT_EQ(hit.ValueOrDie().seeds, miss.ValueOrDie().seeds);
}

// ------------------------------------------------------- QueryEngine batches ---

TEST_F(ServingTest, QueryBatchMatchesSerialAnswersBitForBit) {
  const auto requests = MakeWorkload(48, 99);

  // Serial reference, straight through the index (no cache).
  std::vector<Result<core::QueryResult>> reference;
  for (const auto& r : requests) {
    reference.push_back(index_->Query(r.item, r.k, r.options));
  }

  ThreadPool pool(8);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);

  // First pass fills the cache, second pass is hit-heavy; both must agree
  // with the serial reference exactly.
  for (int pass = 0; pass < 2; ++pass) {
    core::ServingStats stats;
    auto results = engine.QueryBatch(requests, &stats);
    ASSERT_EQ(results.size(), requests.size());
    EXPECT_EQ(stats.num_requests, requests.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ExpectSameAnswer(results[i], reference[i], i);
    }
    if (pass == 1) {
      EXPECT_GT(stats.cache_hits, 0u);
      EXPECT_EQ(stats.cache_misses, 0u);
    }
  }
}

TEST_F(ServingTest, QueryBatchCollectsServingStats) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  const auto requests = MakeWorkload(30, 7);

  core::ServingStats stats;
  auto results = engine.QueryBatch(requests, &stats);
  EXPECT_EQ(stats.num_requests, 30u);
  EXPECT_EQ(stats.num_ok + stats.num_failed, 30u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 30u);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.max_ms);
  EXPECT_GE(stats.hit_rate(), 0.0);
  EXPECT_LE(stats.hit_rate(), 1.0);
  EXPECT_FALSE(stats.ToString().empty());
  // Maintenance visibility is a cumulative_stats() readout; per-batch stats
  // leave those fields at their zero defaults.
  EXPECT_EQ(stats.generation_swaps, 0u);
  EXPECT_EQ(stats.publishes_timed, 0u);
  EXPECT_EQ(stats.epoch_hit_rate(), 0.0);

  const auto cumulative = engine.cumulative_stats();
  EXPECT_EQ(cumulative.num_requests, 30u);
  engine.QueryBatch(requests);
  EXPECT_EQ(engine.cumulative_stats().num_requests, 60u);
  EXPECT_GT(engine.cumulative_stats().cache_hits, 0u);
}

TEST_F(ServingTest, EngineWithCacheDisabledStillAgrees) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  eopts.enable_cache = false;
  core::QueryEngine engine(index_, eopts);
  const auto requests = MakeWorkload(20, 21);

  core::ServingStats stats;
  auto results = engine.QueryBatch(requests, &stats);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameAnswer(results[i],
                     index_->Query(requests[i].item, requests[i].k,
                                   requests[i].options),
                     i);
  }
}

// ------------------------------------------------------ multi-threaded stress ---

// 8 engine-serving threads + 4 raw-cache threads hammer one shared cache.
// Every answer must be bit-identical to the single-threaded reference.
TEST_F(ServingTest, ConcurrentServingStress) {
  const auto requests = MakeWorkload(64, 1234);
  std::vector<Result<core::QueryResult>> reference;
  for (const auto& r : requests) {
    reference.push_back(index_->Query(r.item, r.k, r.options));
  }

  ThreadPool pool(8);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  eopts.cache.num_shards = 8;
  eopts.cache.capacity = 1024;
  core::QueryEngine engine(index_, eopts);

  constexpr int kServerThreads = 8;
  constexpr int kCacheThreads = 4;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kServerThreads + kCacheThreads);

  // Engine hammers: whole batches through QueryBatch (which itself fans out
  // across the shared pool — nested submission must not deadlock).
  for (int t = 0; t < kServerThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        auto results = engine.QueryBatch(requests);
        for (size_t i = 0; i < results.size(); ++i) {
          if (results[i].ok() != reference[i].ok()) {
            mismatches.fetch_add(1);
            continue;
          }
          if (results[i].ok() &&
              (results[i].ValueOrDie().seeds !=
                   reference[i].ValueOrDie().seeds ||
               results[i].ValueOrDie().weights !=
                   reference[i].ValueOrDie().weights)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  // Raw cache hammers: direct concurrent QueryCache access, interleaved with
  // Clear() to exercise the invalidation path under load.
  for (int t = 0; t < kCacheThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = t; i < requests.size(); i += kCacheThreads) {
          auto r = engine.cache().Query(*index_, requests[i].item,
                                        requests[i].k, requests[i].options);
          if (r.ok() != reference[i].ok() ||
              (r.ok() && r.ValueOrDie().seeds !=
                             reference[i].ValueOrDie().seeds)) {
            mismatches.fetch_add(1);
          }
        }
        if (t == 0 && round == kRounds / 2) engine.InvalidateCache();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = engine.cumulative_stats();
  EXPECT_EQ(stats.num_requests,
            static_cast<size_t>(kServerThreads) * kRounds * requests.size());
  EXPECT_EQ(stats.num_failed + stats.num_ok, stats.num_requests);
  // Counter consistency: every request (engine or raw-cache) bumped exactly
  // one atomic counter. (Per-batch hit/miss deltas overlap under concurrency,
  // so the cumulative engine stats are not exact here — the cache's own
  // counters are.)
  const uint64_t raw_requests = static_cast<uint64_t>(kCacheThreads) * kRounds *
                                ((requests.size() + kCacheThreads - 1) /
                                 kCacheThreads);
  EXPECT_EQ(engine.cache().hits() + engine.cache().misses(),
            stats.num_requests + raw_requests);
}

// ---------------------------------------------- epoch hit-rate coherence ---

// Regression: cumulative_stats() used to subtract epoch baselines that were
// two independent atomics sampled at different times, so a reader racing a
// publish could pair the new hits baseline with the old misses baseline (or
// vice versa) and report wrapped-around epoch counters. The baselines are now
// stored as a coherent pair and the subtraction is clamped; under a storm of
// concurrent queries, publishes and readers the epoch-scoped counters must
// stay sane (bounded by the cache's own monotonic totals).
TEST_F(ServingTest, EpochHitRateStaysCoherentUnderPublishStorm) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  const auto requests = MakeWorkload(32, 77);

  std::atomic<bool> stop{false};
  std::atomic<int> bad_readouts{0};
  std::vector<std::thread> threads;

  // Publisher: republish the current snapshot as fast as possible (same
  // index, bumped epoch — exactly what re-baselines the epoch counters).
  threads.emplace_back([&] {
    while (!stop.load()) {
      engine.PublishIndex(engine.index_snapshot());
    }
  });
  // Readers: the racing readout must never see wrapped counters.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        const auto stats = engine.cumulative_stats();
        const double rate = stats.epoch_hit_rate();
        if (rate < 0.0 || rate > 1.0) bad_readouts.fetch_add(1);
        // Epoch-scoped deltas are clamped differences of the cache's
        // monotonic counters, so they can never exceed the totals sampled
        // AFTER the readout.
        if (stats.epoch_cache_hits > engine.cache().hits() ||
            stats.epoch_cache_misses > engine.cache().misses()) {
          bad_readouts.fetch_add(1);
        }
      }
    });
  }
  // Query load (hit-heavy after the first pass) racing both of the above.
  for (int round = 0; round < 40; ++round) {
    engine.QueryBatch(requests);
  }
  stop.store(true);
  for (auto& th : threads) th.join();

  EXPECT_EQ(bad_readouts.load(), 0);
  const auto stats = engine.cumulative_stats();
  EXPECT_GT(stats.generation_swaps, 0u);
  EXPECT_LE(stats.epoch_cache_hits, engine.cache().hits());
  EXPECT_LE(stats.epoch_cache_misses, engine.cache().misses());
}

// --------------------------------------------- nested parallelism regression ---

// Regression: EstimateSpread(parallel=true) from inside a task running on the
// same pool (exactly what a parallel precompute or a pool-served
// QueryCache::Query miss does) used to wedge the pool; nested submissions now
// execute inline.
TEST_F(ServingTest, NestedEstimateSpreadInsidePoolTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  const auto probs = dataset_->graph.ItemArcProbabilities(
      simplex::TopicDistribution::Uniform(4));
  const std::vector<graph::NodeId> seeds = {0, 1, 2};
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&] {
      im::MonteCarloOptions mc;
      mc.num_simulations = 64;  // ≥ the ParallelFor threshold
      mc.parallel = true;
      mc.pool = &pool;  // nested: same pool the task runs on
      auto est = im::EstimateSpread(dataset_->graph, probs, seeds, mc);
      if (est.ok() && est.ValueOrDie().mean > 0.0) done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 4);
}

// The same nested-parallel spread estimate must produce the identical value
// as a serial run (per-simulation RNG streams are index-derived).
TEST_F(ServingTest, NestedSpreadEstimateIsDeterministic) {
  const auto probs = dataset_->graph.ItemArcProbabilities(
      simplex::TopicDistribution::Uniform(4));
  const std::vector<graph::NodeId> seeds = {3, 8, 13};
  im::MonteCarloOptions serial;
  serial.num_simulations = 128;
  serial.parallel = false;
  auto want = im::EstimateSpread(dataset_->graph, probs, seeds, serial);
  ASSERT_TRUE(want.ok());

  ThreadPool pool(3);
  double got_mean = -1.0;
  pool.Submit([&] {
    im::MonteCarloOptions mc;
    mc.num_simulations = 128;
    mc.parallel = true;
    mc.pool = &pool;
    auto est = im::EstimateSpread(dataset_->graph, probs, seeds, mc);
    if (est.ok()) got_mean = est.ValueOrDie().mean;
  });
  pool.Wait();
  EXPECT_EQ(got_mean, want.ValueOrDie().mean);
}

// ----------------------------------------- cumulative wall span (bugfix) ---

// Regression: cumulative_.wall_ms used to be the SUM of every caller's batch
// wall, so N concurrent batchers counted overlapping time N times and
// cumulative qps understated real throughput by ~N. The engine now tracks a
// busy-period span (first-batch-start to last-batch-end); with two callers
// running fully overlapped, the span must be well under the sum of their
// per-batch walls, and qps must be consistent with requests / span.
TEST_F(ServingTest, CumulativeQpsUsesEngineWallSpanNotSummedWalls) {
  ThreadPool pool(2);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  eopts.enable_cache = false;  // every request does real index work
  core::QueryEngine engine(index_, eopts);
  const auto requests = MakeWorkload(64, 4242);

  constexpr int kCallers = 2;
  constexpr int kRounds = 4;
  core::ServingStats per_caller[kCallers];
  std::atomic<int> ready{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      // Barrier: both callers enter their batches together so the walls
      // overlap nearly completely.
      ready.fetch_add(1);
      while (ready.load() < kCallers) std::this_thread::yield();
      for (int round = 0; round < kRounds; ++round) {
        core::ServingStats s;
        engine.QueryBatch(requests, &s);
        per_caller[t].wall_ms += s.wall_ms;
      }
    });
  }
  for (auto& th : callers) th.join();

  const auto stats = engine.cumulative_stats();
  EXPECT_EQ(stats.num_requests, kCallers * kRounds * requests.size());
  EXPECT_EQ(stats.num_ok + stats.num_failed, stats.num_requests);
  const double summed_walls = per_caller[0].wall_ms + per_caller[1].wall_ms;
  ASSERT_GT(summed_walls, 0.0);
  ASSERT_GT(stats.wall_ms, 0.0);
  // The span covers both callers at once, so it must be meaningfully smaller
  // than the two walls added together (the old buggy accounting). 0.8 leaves
  // slack for ragged batch starts/finishes.
  EXPECT_LT(stats.wall_ms, 0.8 * summed_walls);
  // qps is requests over the span, not over the summed walls.
  EXPECT_TRUE(std::isfinite(stats.qps));
  EXPECT_GT(stats.qps, 0.0);
  const double expect_qps =
      static_cast<double>(stats.num_requests) / (stats.wall_ms / 1e3);
  EXPECT_NEAR(stats.qps, expect_qps, expect_qps * 1e-6);
}

// ------------------------------------- striped stats coherence (TSan gate) ---

// Stress: 8 threads batching while a publisher flips generations. Under TSan
// this drives the striped stats fold, the span bookkeeping, the striped cache
// counters, and the RCU generation swap at once; the assertions pin the
// merged readout's invariants (exact request count, bounded reservoir,
// finite positive qps).
TEST_F(ServingTest, StripedStatsStayCoherentUnderBatchAndPublishStorm) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  const auto requests = MakeWorkload(32, 909);

  constexpr int kBatchers = 8;
  constexpr int kRounds = 6;
  std::atomic<bool> stop{false};
  std::atomic<int> bad_readouts{0};
  std::vector<std::thread> threads;
  // Publisher: republish the current snapshot (epoch bump) as fast as it can.
  threads.emplace_back([&] {
    while (!stop.load()) engine.PublishIndex(engine.index_snapshot());
  });
  // Reader: mid-storm merged readouts must already be internally coherent.
  threads.emplace_back([&] {
    while (!stop.load()) {
      const auto s = engine.cumulative_stats();
      if (s.num_ok + s.num_failed != s.num_requests) bad_readouts.fetch_add(1);
      if (s.latency_samples > core::QueryEngine::kLatencyReservoirCapacity) {
        bad_readouts.fetch_add(1);
      }
      if (s.num_requests > 0 &&
          (!std::isfinite(s.qps) || s.qps < 0.0 || s.wall_ms <= 0.0)) {
        bad_readouts.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> batchers;
  for (int t = 0; t < kBatchers; ++t) {
    batchers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        engine.QueryBatch(requests);
      }
    });
  }
  for (auto& th : batchers) th.join();
  stop.store(true);
  for (auto& th : threads) th.join();

  EXPECT_EQ(bad_readouts.load(), 0);
  const auto stats = engine.cumulative_stats();
  // num_requests is exact: every batch folded its full size into one stripe.
  EXPECT_EQ(stats.num_requests,
            static_cast<size_t>(kBatchers) * kRounds * requests.size());
  EXPECT_EQ(stats.num_ok + stats.num_failed, stats.num_requests);
  EXPECT_LE(stats.latency_samples, core::QueryEngine::kLatencyReservoirCapacity);
  EXPECT_GT(stats.latency_samples, 0u);
  EXPECT_TRUE(std::isfinite(stats.qps));
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GT(stats.mean_ms, 0.0);
  EXPECT_GE(stats.max_ms, stats.mean_ms);
}

// ------------------------------------------ cache shard selection (bugfix) ---

// Pins shard selection across the single-pass 128-bit key path: the shard a
// query lands on must be a stable pure function of (item, k, options, epoch),
// must not depend on which QueryCache instance computes it (same shard
// count), and must actually spread distinct queries across shards.
TEST_F(ServingTest, CacheShardSelectionIsStableAcrossKeyPath) {
  core::QueryCache::Options copts;
  copts.num_shards = 16;
  core::QueryCache cache_a(copts);
  core::QueryCache cache_b(copts);
  const auto requests = MakeWorkload(48, 321);

  std::vector<size_t> first_pass;
  for (const auto& r : requests) {
    const size_t shard =
        cache_a.ShardIndexForTesting(r.item, r.k, r.options, /*epoch=*/0);
    ASSERT_LT(shard, cache_a.num_shards());
    // Same inputs → same shard, on this instance and on an identically
    // configured sibling (the hash has no per-instance salt).
    EXPECT_EQ(shard,
              cache_a.ShardIndexForTesting(r.item, r.k, r.options, 0));
    EXPECT_EQ(shard,
              cache_b.ShardIndexForTesting(r.item, r.k, r.options, 0));
    first_pass.push_back(shard);
  }
  // An epoch bump must be able to move entries (the key includes the epoch);
  // at least one request of a 48-query workload lands elsewhere.
  bool epoch_moves_any = false;
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto& r = requests[i];
    if (cache_a.ShardIndexForTesting(r.item, r.k, r.options, 1) !=
        first_pass[i]) {
      epoch_moves_any = true;
      break;
    }
  }
  EXPECT_TRUE(epoch_moves_any);
  // Spread check: distinct queries must not all pile into one shard.
  std::vector<size_t> counts(cache_a.num_shards(), 0);
  for (size_t s : first_pass) ++counts[s];
  const size_t used = static_cast<size_t>(
      std::count_if(counts.begin(), counts.end(),
                    [](size_t c) { return c > 0; }));
  EXPECT_GE(used, 4u);
}

// The shard chosen by the key path must be the shard the entry actually
// lives in: after one miss, a repeat of the same query must hit.
TEST_F(ServingTest, CacheShardRoutingRoundTrips) {
  core::QueryCache cache;
  auto requests = MakeWorkload(24, 654);
  // Masked requests can legitimately fail (and failures are not cached);
  // this test is about hit/miss routing, so keep every query serveable.
  for (auto& r : requests) r.options.segment_mask.clear();
  for (const auto& r : requests) {
    ASSERT_TRUE(cache.Query(*index_, r.item, r.k, r.options).ok());
  }
  const uint64_t misses_after_first = cache.misses();
  for (const auto& r : requests) {
    ASSERT_TRUE(cache.Query(*index_, r.item, r.k, r.options).ok());
  }
  // Second pass is all hits: every lookup found its entry in the shard the
  // single-pass hash routed it to.
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GE(cache.hits(), requests.size());
}

}  // namespace
}  // namespace inflex
