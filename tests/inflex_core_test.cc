#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/synthetic.h"
#include "inflex/baselines.h"
#include "inflex/index_points.h"
#include "inflex/inflex_index.h"
#include "inflex/weighting.h"
#include "simplex/divergence.h"
#include "simplex/sampling.h"
#include "util/random.h"

namespace inflex {
namespace core {
namespace {

// --------------------------------------------------------------- weighting ---

std::vector<bbtree::Neighbor> MakeNeighbors(std::vector<double> divergences) {
  std::vector<bbtree::Neighbor> out;
  for (size_t i = 0; i < divergences.size(); ++i) {
    out.push_back({static_cast<uint32_t>(i), divergences[i]});
  }
  return out;
}

TEST(WeightingTest, ExponentialWeightsDecreasing) {
  WeightingOptions opts;
  auto w = ComputeImportanceWeights(MakeNeighbors({0.0, 0.1, 0.5, 2.0}), opts);
  ASSERT_TRUE(w.ok());
  const auto& weights = w.ValueOrDie();
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  for (size_t i = 1; i < weights.size(); ++i) {
    EXPECT_LT(weights[i], weights[i - 1]);
    EXPECT_GT(weights[i], 0.0);
  }
}

TEST(WeightingTest, PaperEq9InUnitIntervalAndMonotone) {
  WeightingOptions opts;
  opts.function = WeightFunction::kPaperEq9;
  opts.kl_max = 5.0;
  auto w = ComputeImportanceWeights(MakeNeighbors({0.0, 1.0, 3.0, 10.0}), opts);
  ASSERT_TRUE(w.ok());
  const auto& weights = w.ValueOrDie();
  EXPECT_NEAR(weights[0], 1.0, 1e-12);  // KL = 0 ⇒ maximal weight
  for (size_t i = 1; i < weights.size(); ++i) {
    EXPECT_LE(weights[i], weights[i - 1]);
    EXPECT_GE(weights[i], 0.0);
    EXPECT_LE(weights[i], 1.0);
  }
  EXPECT_NEAR(weights[3], 0.0, 1e-12);  // clamped at KL_max
}

TEST(WeightingTest, RejectsBadInput) {
  WeightingOptions opts;
  auto unsorted = MakeNeighbors({0.5, 0.1});
  EXPECT_FALSE(ComputeImportanceWeights(unsorted, opts).ok());
  auto negative = MakeNeighbors({-0.1});
  EXPECT_FALSE(ComputeImportanceWeights(negative, opts).ok());
  opts.exponential_scale = 0.0;
  EXPECT_FALSE(ComputeImportanceWeights(MakeNeighbors({0.1}), opts).ok());
}

TEST(SelectNeighborCountTest, EqualWeightsKeepEverything) {
  WeightingOptions opts;
  const std::vector<double> weights(10, 0.7);
  EXPECT_EQ(SelectNeighborCount(weights, opts), 10u);
}

TEST(SelectNeighborCountTest, SharpDropCutsTail) {
  WeightingOptions opts;
  opts.min_neighbors = 2;
  // Three equally strong neighbors then negligible ones: the rule keeps
  // exactly the equal-share head.
  const std::vector<double> weights = {1.0, 1.0, 1.0, 0.001, 0.001, 0.001};
  const size_t t = SelectNeighborCount(weights, opts);
  EXPECT_EQ(t, 3u);
}

TEST(SelectNeighborCountTest, AbsoluteGapRuleCutsOnGradualDecay) {
  WeightingOptions opts;
  opts.min_neighbors = 2;
  opts.selection_rule = SelectionRule::kAbsoluteGap;
  // 5%-steps: the third weight's normalized share is already 0.0175 below
  // the equal share 1/3 — past the paper's 0.005 — so only the first two
  // neighbors survive the (sign-corrected) printed rule.
  const std::vector<double> weights = {1.0, 0.95, 0.9, 0.85};
  EXPECT_EQ(SelectNeighborCount(weights, opts), 2u);
}

TEST(SelectNeighborCountTest, RelativeShareRuleToleratesGradualDecay) {
  WeightingOptions opts;
  opts.min_neighbors = 2;
  // Default rule: every weight pulls at least selection_ratio of an equal
  // share, so the whole gently decaying head is kept.
  const std::vector<double> weights = {1.0, 0.97, 0.94, 0.91, 0.88};
  EXPECT_EQ(SelectNeighborCount(weights, opts), 5u);
}

TEST(SelectNeighborCountTest, RespectsMinNeighbors) {
  WeightingOptions opts;
  opts.min_neighbors = 3;
  const std::vector<double> weights = {1.0, 0.01, 0.01, 0.01, 0.01};
  EXPECT_GE(SelectNeighborCount(weights, opts), 3u);
}

TEST(SelectNeighborCountTest, DisabledSelectionKeepsAll) {
  WeightingOptions opts;
  opts.enable_selection = false;
  const std::vector<double> weights = {1.0, 0.0001};
  EXPECT_EQ(SelectNeighborCount(weights, opts), 2u);
}

// ------------------------------------------------------------ index points ---

TEST(IndexPointsTest, PipelineProducesRequestedCount) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 150;
  dopts.num_topics = 4;
  dopts.num_items = 100;
  dopts.seed = 3;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());

  IndexPointOptions opts;
  opts.num_index_points = 25;
  opts.num_dirichlet_samples = 2000;
  auto sel = SelectIndexPoints(ds.ValueOrDie().catalog, opts);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_EQ(sel.ValueOrDie().points.size(), 25u);
  EXPECT_EQ(sel.ValueOrDie().samples.size(), 2000u);
  EXPECT_EQ(sel.ValueOrDie().dirichlet_alpha.size(), 4u);
  for (const auto& p : sel.ValueOrDie().points) {
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(IndexPointsTest, CentroidsCoverCatalogRegion) {
  // Every catalog item should have a reasonably close index point — the
  // "good coverage" requirement of §3.1.
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 150;
  dopts.num_topics = 4;
  dopts.num_items = 100;
  dopts.seed = 5;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  IndexPointOptions opts;
  opts.num_index_points = 40;
  opts.num_dirichlet_samples = 5000;
  auto sel = SelectIndexPoints(ds.ValueOrDie().catalog, opts);
  ASSERT_TRUE(sel.ok());
  double worst = 0.0;
  for (const auto& item : ds.ValueOrDie().catalog) {
    double best = 1e18;
    for (const auto& p : sel.ValueOrDie().points) {
      best = std::min(best, simplex::KlDivergence(p, item.probs()));
    }
    worst = std::max(worst, best);
  }
  EXPECT_LT(worst, 3.0);
}

TEST(IndexPointsTest, RejectsBadInput) {
  EXPECT_FALSE(SelectIndexPoints({}, {}).ok());
  const auto item = simplex::TopicDistribution::Uniform(3);
  IndexPointOptions zero;
  zero.num_index_points = 0;
  EXPECT_FALSE(SelectIndexPoints({item}, zero).ok());
  IndexPointOptions few_samples;
  few_samples.num_index_points = 100;
  few_samples.num_dirichlet_samples = 10;
  EXPECT_FALSE(SelectIndexPoints({item}, few_samples).ok());
}

// ---------------------------------------------------------------- baselines ---

TEST(BaselinesTest, OfflineTicVsIcDifferOnTopicalItem) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 250;
  dopts.num_topics = 4;
  dopts.num_items = 40;
  dopts.seed = 7;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  const auto& g = ds.ValueOrDie().graph;

  const auto topical =
      simplex::TopicDistribution::Delta(4, 0).SmoothedTowardUniform(0.05);
  OfflineImOptions opts;
  opts.num_snapshots = 80;
  auto tic_seeds = OfflineTicSeeds(g, topical, 5, opts);
  auto ic_seeds = OfflineIcSeeds(g, 5, opts);
  ASSERT_TRUE(tic_seeds.ok());
  ASSERT_TRUE(ic_seeds.ok());
  EXPECT_EQ(tic_seeds.ValueOrDie().seeds.size(), 5u);
  EXPECT_EQ(ic_seeds.ValueOrDie().seeds.size(), 5u);
  // Topic-aware and topic-blind seed sets should differ on topical items.
  EXPECT_NE(tic_seeds.ValueOrDie().seeds, ic_seeds.ValueOrDie().seeds);
}

TEST(BaselinesTest, ValidatesDimensions) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 100;
  dopts.num_topics = 3;
  dopts.num_items = 20;
  dopts.seed = 9;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  const auto wrong_dim = simplex::TopicDistribution::Uniform(5);
  EXPECT_FALSE(OfflineTicSeeds(ds.ValueOrDie().graph, wrong_dim, 5, {}).ok());
}

// ------------------------------------------------------------- InflexIndex ---

class InflexIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticDatasetOptions dopts;
    dopts.num_users = 300;
    dopts.num_topics = 4;
    dopts.num_items = 120;
    dopts.seed = 11;
    auto ds = data::GenerateSyntheticDataset(dopts);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::SyntheticDataset(std::move(ds).ValueOrDie());

    InflexBuildOptions bopts;
    bopts.index_points.num_index_points = 30;
    bopts.index_points.num_dirichlet_samples = 3000;
    bopts.seed_list_length = 10;
    bopts.oracle_snapshots = 40;
    bopts.tree.max_leaf_size = 6;
    auto index = InflexIndex::Build(dataset_->graph, dataset_->catalog, bopts);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new InflexIndex(std::move(index).ValueOrDie());
  }

  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static data::SyntheticDataset* dataset_;
  static InflexIndex* index_;
};

data::SyntheticDataset* InflexIndexTest::dataset_ = nullptr;
InflexIndex* InflexIndexTest::index_ = nullptr;

TEST_F(InflexIndexTest, BuildProducesExpectedShape) {
  EXPECT_EQ(index_->num_index_points(), 30u);
  EXPECT_EQ(index_->seed_list_length(), 10u);
  EXPECT_EQ(index_->num_topics(), 4u);
  for (uint32_t i = 0; i < index_->num_index_points(); ++i) {
    const auto& list = index_->seed_list(i);
    EXPECT_EQ(list.size(), 10u);
    std::set<rank::Item> unique(list.begin(), list.end());
    EXPECT_EQ(unique.size(), list.size());
    for (rank::Item v : list) EXPECT_LT(v, 300u);
  }
}

TEST_F(InflexIndexTest, QueryReturnsRequestedK) {
  Rng rng(21);
  for (size_t k : {1u, 5u, 10u}) {
    auto q = simplex::TopicDistribution::Create(
                 simplex::SampleUniformSimplex(4, &rng))
                 .ValueOrDie();
    auto r = index_->Query(q, k);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie().seeds.size(), k);
    std::set<rank::Item> unique(r.ValueOrDie().seeds.begin(),
                                r.ValueOrDie().seeds.end());
    EXPECT_EQ(unique.size(), k);
    EXPECT_GT(r.ValueOrDie().total_ms, 0.0);
  }
}

TEST_F(InflexIndexTest, KGreaterThanEllIsServedFromTheUnion) {
  Rng rng(23);
  auto q = simplex::TopicDistribution::Create(
               simplex::SampleUniformSimplex(4, &rng))
               .ValueOrDie();
  QueryOptions opts;
  opts.search.epsilon_exact = -1.0;  // force aggregation
  auto r = index_->Query(q, 25, opts);
  ASSERT_TRUE(r.ok());
  // ℓ = 10 but the union of several lists can satisfy k = 25.
  EXPECT_GT(r.ValueOrDie().seeds.size(), 10u);
}

TEST_F(InflexIndexTest, EpsilonExactPathReturnsStoredList) {
  // Query an index point itself.
  const auto q = simplex::TopicDistribution::Create(index_->index_point(3))
                     .ValueOrDie();
  auto r = index_->Query(q, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().epsilon_exact);
  // The matched point may be a duplicate centroid; its seed list must equal
  // the queried point's list.
  EXPECT_EQ(r.ValueOrDie().seeds,
            index_->seed_list(r.ValueOrDie().neighbors_used[0].point_id));
}

TEST_F(InflexIndexTest, AllStrategiesProduceValidAnswers) {
  Rng rng(29);
  auto q = simplex::TopicDistribution::Create(
               simplex::SampleUniformSimplex(4, &rng))
               .ValueOrDie();
  for (QueryStrategy s :
       {QueryStrategy::kInflex, QueryStrategy::kExactKnn,
        QueryStrategy::kApproxKnn, QueryStrategy::kApproxKnnSel,
        QueryStrategy::kApproxAd}) {
    QueryOptions opts;
    opts.strategy = s;
    auto r = index_->Query(q, 8, opts);
    ASSERT_TRUE(r.ok()) << QueryStrategyName(s);
    EXPECT_EQ(r.ValueOrDie().seeds.size(), 8u) << QueryStrategyName(s);
    EXPECT_FALSE(r.ValueOrDie().neighbors_used.empty());
  }
}

TEST_F(InflexIndexTest, ExactKnnUsesExactlyK) {
  Rng rng(31);
  auto q = simplex::TopicDistribution::Create(
               simplex::SampleUniformSimplex(4, &rng))
               .ValueOrDie();
  QueryOptions opts;
  opts.strategy = QueryStrategy::kExactKnn;
  opts.knn_k = 7;
  auto r = index_->Query(q, 5, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().neighbors_used.size(), 7u);
}

TEST_F(InflexIndexTest, SelectionDiscardsOnlyTail) {
  Rng rng(37);
  auto q = simplex::TopicDistribution::Create(
               simplex::SampleUniformSimplex(4, &rng))
               .ValueOrDie();
  QueryOptions opts;
  opts.strategy = QueryStrategy::kInflex;
  auto r = index_->Query(q, 8, opts);
  ASSERT_TRUE(r.ok());
  if (!r.ValueOrDie().epsilon_exact) {
    const auto& used = r.ValueOrDie().neighbors_used;
    for (size_t i = 1; i < used.size(); ++i) {
      EXPECT_LE(used[i - 1].divergence, used[i].divergence);
    }
    EXPECT_EQ(used.size(), r.ValueOrDie().weights.size());
  }
}

TEST_F(InflexIndexTest, SaveLoadPreservesAnswers) {
  const std::string path = testing::TempDir() + "/index_roundtrip.bin";
  ASSERT_TRUE(index_->Save(path).ok());
  bbtree::BbTreeOptions topts;
  topts.max_leaf_size = 6;
  auto loaded = InflexIndex::Load(path, &dataset_->graph, topts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().num_index_points(),
            index_->num_index_points());

  Rng rng(41);
  for (int t = 0; t < 5; ++t) {
    auto q = simplex::TopicDistribution::Create(
                 simplex::SampleUniformSimplex(4, &rng))
                 .ValueOrDie();
    auto a = index_->Query(q, 8);
    auto b = loaded.ValueOrDie().Query(q, 8);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.ValueOrDie().seeds, b.ValueOrDie().seeds) << "trial " << t;
  }
}

TEST_F(InflexIndexTest, QueryValidatesInput) {
  auto q = simplex::TopicDistribution::Uniform(4);
  EXPECT_FALSE(index_->Query(q, 0).ok());
  EXPECT_FALSE(index_->Query(simplex::TopicDistribution::Uniform(7), 5).ok());
}

TEST(InflexIndexFromPartsTest, Validation) {
  EXPECT_FALSE(InflexIndex::FromParts(nullptr, {}, {}, {}).ok());
  EXPECT_FALSE(InflexIndex::FromParts(nullptr, {{0.5, 0.5}}, {}, {}).ok());
  EXPECT_FALSE(
      InflexIndex::FromParts(nullptr, {{0.5, 0.5}}, {{}}, {}).ok());
  EXPECT_FALSE(
      InflexIndex::FromParts(nullptr, {{0.5, 0.5}}, {{1, 1}}, {}).ok());
  // Minimal valid index.
  auto idx = InflexIndex::FromParts(nullptr, {{0.5, 0.5}, {0.9, 0.1}},
                                    {{1, 2, 3}, {4, 5, 6}}, {});
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_EQ(idx.ValueOrDie().num_index_points(), 2u);
}

TEST(InflexIndexBuildTest, ValidatesOptions) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 60;
  dopts.num_topics = 3;
  dopts.num_items = 20;
  dopts.seed = 43;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  InflexBuildOptions bad;
  bad.seed_list_length = 0;
  EXPECT_FALSE(
      InflexIndex::Build(ds.ValueOrDie().graph, ds.ValueOrDie().catalog, bad)
          .ok());
  InflexBuildOptions too_long;
  too_long.seed_list_length = 100;  // > 60 nodes
  EXPECT_FALSE(InflexIndex::Build(ds.ValueOrDie().graph,
                                  ds.ValueOrDie().catalog, too_long)
                   .ok());
  EXPECT_FALSE(InflexIndex::Build(ds.ValueOrDie().graph, {}, {}).ok());
}

}  // namespace
}  // namespace core
}  // namespace inflex
