// End-to-end tests of the full paper pipeline (Figure 1 + Figure 2):
// synthesize data → learn TIC parameters from the log → build INFLEX →
// answer TIM queries → compare against from-scratch offline computation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/synthetic.h"
#include "data/workload.h"
#include "inflex/baselines.h"
#include "inflex/inflex_index.h"
#include "im/heuristics.h"
#include "simplex/sampling.h"
#include "rank/kendall_tau.h"
#include "stats/descriptive.h"
#include "tic/tic_learner.h"
#include "tic/tic_model.h"
#include "util/random.h"

namespace inflex {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static constexpr size_t kUsers = 400;
  static constexpr size_t kTopics = 5;
  static constexpr size_t kItems = 150;
  static constexpr size_t kEll = 10;

  static void SetUpTestSuite() {
    data::SyntheticDatasetOptions dopts;
    dopts.num_users = kUsers;
    dopts.num_topics = kTopics;
    dopts.num_items = kItems;
    dopts.seed = 71;
    auto ds = data::GenerateSyntheticDataset(dopts);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::SyntheticDataset(std::move(ds).ValueOrDie());

    core::InflexBuildOptions bopts;
    bopts.index_points.num_index_points = 40;
    bopts.index_points.num_dirichlet_samples = 4000;
    bopts.seed_list_length = kEll;
    bopts.oracle_snapshots = 60;
    bopts.tree.max_leaf_size = 8;
    auto index =
        core::InflexIndex::Build(dataset_->graph, dataset_->catalog, bopts);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new core::InflexIndex(std::move(index).ValueOrDie());
  }

  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static data::SyntheticDataset* dataset_;
  static core::InflexIndex* index_;
};

data::SyntheticDataset* EndToEndTest::dataset_ = nullptr;
core::InflexIndex* EndToEndTest::index_ = nullptr;

TEST_F(EndToEndTest, InflexApproximatesOfflineTicSeeds) {
  // INFLEX's answer should be much closer to the offline ground truth than
  // an unrelated (random) list — the paper's headline accuracy claim,
  // asserted with loose thresholds appropriate for the small test scale.
  data::QueryWorkloadOptions wopts;
  wopts.num_data_driven = 6;
  wopts.num_uniform = 0;
  wopts.seed = 77;
  auto workload = data::GenerateQueryWorkload(dataset_->catalog, wopts);
  ASSERT_TRUE(workload.ok());

  core::OfflineImOptions oopts;
  oopts.num_snapshots = 60;
  Rng rng(79);
  std::vector<double> inflex_dist, random_dist;
  for (const auto& q : workload.ValueOrDie().queries) {
    auto truth = core::OfflineTicSeeds(dataset_->graph, q, kEll, oopts);
    ASSERT_TRUE(truth.ok());
    rank::RankedList truth_list(truth.ValueOrDie().seeds.begin(),
                                truth.ValueOrDie().seeds.end());

    auto answer = index_->Query(q, kEll);
    ASSERT_TRUE(answer.ok());
    rank::RankedList inflex_list = answer.ValueOrDie().seeds;
    ASSERT_EQ(inflex_list.size(), kEll);

    auto random_seeds = im::SelectSeedsRandom(kUsers, kEll, &rng);
    ASSERT_TRUE(random_seeds.ok());
    rank::RankedList random_list(random_seeds.ValueOrDie().begin(),
                                 random_seeds.ValueOrDie().end());

    inflex_dist.push_back(
        rank::KendallTauTopL(inflex_list, truth_list).ValueOrDie());
    random_dist.push_back(
        rank::KendallTauTopL(random_list, truth_list).ValueOrDie());
  }
  const double inflex_avg = stats::Mean(inflex_dist);
  const double random_avg = stats::Mean(random_dist);
  EXPECT_LT(inflex_avg, random_avg);
  EXPECT_LT(inflex_avg, 0.75);
  EXPECT_GT(random_avg, 0.9);  // random lists share almost nothing
}

TEST_F(EndToEndTest, InflexSpreadNearOfflineAndAboveRandom) {
  data::QueryWorkloadOptions wopts;
  wopts.num_data_driven = 5;
  wopts.num_uniform = 0;
  wopts.seed = 83;
  auto workload = data::GenerateQueryWorkload(dataset_->catalog, wopts);
  ASSERT_TRUE(workload.ok());

  tic::TicModel model(&dataset_->graph);
  core::OfflineImOptions oopts;
  oopts.num_snapshots = 60;
  im::MonteCarloOptions mc;
  mc.num_simulations = 2000;

  Rng rng(89);
  double inflex_total = 0.0, offline_total = 0.0, random_total = 0.0;
  for (const auto& q : workload.ValueOrDie().queries) {
    auto truth = core::OfflineTicSeeds(dataset_->graph, q, kEll, oopts);
    ASSERT_TRUE(truth.ok());
    auto answer = index_->Query(q, kEll);
    ASSERT_TRUE(answer.ok());
    auto random_seeds = im::SelectSeedsRandom(kUsers, kEll, &rng);
    ASSERT_TRUE(random_seeds.ok());

    offline_total +=
        model.EstimateSpread(q, truth.ValueOrDie().seeds, mc)
            .ValueOrDie()
            .mean;
    std::vector<graph::NodeId> inflex_seeds(answer.ValueOrDie().seeds.begin(),
                                            answer.ValueOrDie().seeds.end());
    inflex_total += model.EstimateSpread(q, inflex_seeds, mc).ValueOrDie().mean;
    random_total +=
        model.EstimateSpread(q, random_seeds.ValueOrDie(), mc)
            .ValueOrDie()
            .mean;
  }
  // INFLEX ≈ offline (within 15% at this tiny scale) and ≫ random.
  EXPECT_GT(inflex_total, 0.85 * offline_total);
  EXPECT_GT(inflex_total, 1.5 * random_total);
}

TEST_F(EndToEndTest, TopicBlindSeedsUnderperformOnTopicalItems) {
  // The motivation experiment: on a strongly topical item, seeds chosen
  // topic-blind (uniform mixture) spread far less than topic-aware seeds.
  const auto item = simplex::TopicDistribution::Delta(kTopics, 1)
                        .SmoothedTowardUniform(0.05);
  core::OfflineImOptions oopts;
  oopts.num_snapshots = 80;
  auto tic_seeds = core::OfflineTicSeeds(dataset_->graph, item, kEll, oopts);
  auto ic_seeds = core::OfflineIcSeeds(dataset_->graph, kEll, oopts);
  ASSERT_TRUE(tic_seeds.ok());
  ASSERT_TRUE(ic_seeds.ok());

  tic::TicModel model(&dataset_->graph);
  im::MonteCarloOptions mc;
  mc.num_simulations = 4000;
  const double tic_spread =
      model.EstimateSpread(item, tic_seeds.ValueOrDie().seeds, mc)
          .ValueOrDie()
          .mean;
  const double ic_spread =
      model.EstimateSpread(item, ic_seeds.ValueOrDie().seeds, mc)
          .ValueOrDie()
          .mean;
  EXPECT_GT(tic_spread, ic_spread);
}

TEST_F(EndToEndTest, LearnedParametersSupportTheFullPipeline) {
  // Learn TIC parameters from the log, install them into a copy of the
  // graph, rebuild an index on the learned model, and answer a query — the
  // complete Figure 1 flow with no ground-truth leakage.
  tic::TicLearnerOptions lopts;
  lopts.num_topics = kTopics;
  lopts.max_iterations = 10;
  auto learned = tic::LearnTicParameters(dataset_->graph, dataset_->log, lopts);
  ASSERT_TRUE(learned.ok());

  graph::TopicGraph learned_graph = dataset_->graph;
  ASSERT_TRUE(learned_graph
                  .SetArcTopicProbabilities(learned.ValueOrDie().arc_topic_probs)
                  .ok());

  core::InflexBuildOptions bopts;
  bopts.index_points.num_index_points = 15;
  bopts.index_points.num_dirichlet_samples = 1500;
  bopts.seed_list_length = 8;
  bopts.oracle_snapshots = 30;
  auto index = core::InflexIndex::Build(
      learned_graph, learned.ValueOrDie().item_topics, bopts);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  auto q = simplex::TopicDistribution::Uniform(kTopics);
  auto r = index.ValueOrDie().Query(q, 8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().seeds.size(), 8u);
}

TEST_F(EndToEndTest, QueryLatencyIsInteractive) {
  // The entire point of INFLEX: answers in milliseconds. Allow a generous
  // bound to stay robust on loaded CI machines.
  Rng rng(97);
  auto q = simplex::TopicDistribution::Create(
               simplex::SampleUniformSimplex(kTopics, &rng))
               .ValueOrDie();
  auto r = index_->Query(q, kEll);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.ValueOrDie().total_ms, 250.0);
}

}  // namespace
}  // namespace inflex
