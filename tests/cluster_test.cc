#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/gmeans.h"
#include "cluster/kmeans.h"
#include "simplex/sampling.h"
#include "stats/dirichlet.h"
#include "util/random.h"

namespace inflex {
namespace cluster {
namespace {

using simplex::TopicVector;

// Three well-separated Dirichlet blobs on the 4-simplex.
std::vector<TopicVector> MakeThreeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  std::vector<TopicVector> points;
  const std::vector<std::vector<double>> alphas = {
      {40.0, 2.0, 2.0, 2.0}, {2.0, 40.0, 2.0, 2.0}, {2.0, 2.0, 40.0, 2.0}};
  for (const auto& alpha : alphas) {
    stats::Dirichlet d(alpha);
    for (size_t i = 0; i < per_blob; ++i) points.push_back(d.Sample(&rng));
  }
  return points;
}

TEST(BregmanDivergenceTest, MatchesUnderlyingKernels) {
  const TopicVector p = {0.3, 0.7};
  const TopicVector q = {0.6, 0.4};
  EXPECT_GT(BregmanDivergence(BregmanDivergenceKind::kKl, p, q), 0.0);
  EXPECT_DOUBLE_EQ(
      BregmanDivergence(BregmanDivergenceKind::kSquaredEuclidean, p, q),
      2 * 0.09);
  EXPECT_DOUBLE_EQ(BregmanDivergence(BregmanDivergenceKind::kKl, p, p), 0.0);
}

TEST(KMeansTest, RejectsBadInput) {
  EXPECT_FALSE(KMeansPlusPlus({}, {}).ok());
  KMeansOptions o;
  o.num_clusters = 0;
  EXPECT_FALSE(KMeansPlusPlus({{0.5, 0.5}}, o).ok());
  KMeansOptions o2;
  EXPECT_FALSE(KMeansPlusPlus({{0.5, 0.5}, {0.3, 0.3, 0.4}}, o2).ok());
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  const auto points = MakeThreeBlobs(100, 21);
  KMeansOptions opts;
  opts.num_clusters = 3;
  opts.seed = 5;
  auto r = KMeansPlusPlus(points, opts);
  ASSERT_TRUE(r.ok());
  const auto& result = r.ValueOrDie();
  ASSERT_EQ(result.centroids.size(), 3u);
  // Each blob should be internally pure: points 0..99 share a label, etc.
  for (int blob = 0; blob < 3; ++blob) {
    const uint32_t label = result.assignment[blob * 100];
    int agree = 0;
    for (int i = 0; i < 100; ++i) {
      if (result.assignment[blob * 100 + i] == label) ++agree;
    }
    EXPECT_GE(agree, 97) << "blob " << blob;
  }
  // And the three blobs get three distinct labels.
  std::set<uint32_t> labels = {result.assignment[0], result.assignment[100],
                               result.assignment[200]};
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeansTest, CentroidIsMeanOfMembers) {
  const auto points = MakeThreeBlobs(50, 22);
  KMeansOptions opts;
  opts.num_clusters = 3;
  auto r = KMeansPlusPlus(points, opts);
  ASSERT_TRUE(r.ok());
  const auto& res = r.ValueOrDie();
  for (size_t c = 0; c < res.centroids.size(); ++c) {
    TopicVector mean(points.front().size(), 0.0);
    size_t count = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      if (res.assignment[i] == c) {
        ++count;
        for (size_t d = 0; d < mean.size(); ++d) mean[d] += points[i][d];
      }
    }
    if (count == 0) continue;
    for (size_t d = 0; d < mean.size(); ++d) {
      EXPECT_NEAR(res.centroids[c][d], mean[d] / count, 1e-9);
    }
  }
}

TEST(KMeansTest, MoreClustersNeverIncreaseObjective) {
  const auto points = MakeThreeBlobs(60, 23);
  double prev = std::numeric_limits<double>::infinity();
  for (size_t k : {1u, 2u, 4u, 8u, 16u}) {
    KMeansOptions opts;
    opts.num_clusters = k;
    opts.seed = 7;
    opts.max_iterations = 200;
    auto r = KMeansPlusPlus(points, opts);
    ASSERT_TRUE(r.ok());
    // k-means++ is randomized; allow small non-monotonicity slack.
    EXPECT_LE(r.ValueOrDie().objective, prev * 1.05) << "k=" << k;
    prev = std::min(prev, r.ValueOrDie().objective);
  }
}

TEST(KMeansTest, KGreaterThanNClampsToN) {
  std::vector<TopicVector> points = {{0.5, 0.5}, {0.9, 0.1}};
  KMeansOptions opts;
  opts.num_clusters = 10;
  auto r = KMeansPlusPlus(points, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().centroids.size(), 2u);
  EXPECT_NEAR(r.ValueOrDie().objective, 0.0, 1e-9);
}

TEST(KMeansTest, EuclideanDivergenceWorksToo) {
  const auto points = MakeThreeBlobs(50, 29);
  KMeansOptions opts;
  opts.num_clusters = 3;
  opts.divergence = BregmanDivergenceKind::kSquaredEuclidean;
  auto r = KMeansPlusPlus(points, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().centroids.size(), 3u);
}

TEST(KMeansTest, DeterministicForFixedSeed) {
  const auto points = MakeThreeBlobs(40, 31);
  KMeansOptions opts;
  opts.num_clusters = 4;
  opts.seed = 77;
  auto a = KMeansPlusPlus(points, opts);
  auto b = KMeansPlusPlus(points, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie().assignment, b.ValueOrDie().assignment);
  EXPECT_DOUBLE_EQ(a.ValueOrDie().objective, b.ValueOrDie().objective);
}

// ------------------------------------------------------------------ G-means ---

TEST(ProjectedGaussianTest, GaussianNotSplit) {
  Rng rng(41);
  std::vector<TopicVector> points;
  for (int i = 0; i < 300; ++i) {
    // Isotropic Gaussian blob around the simplex center, projected back.
    TopicVector p = {0.5 + 0.05 * rng.Normal(), 0.0};
    p[0] = std::clamp(p[0], 0.01, 0.99);
    p[1] = 1.0 - p[0];
    points.push_back(p);
  }
  EXPECT_TRUE(ProjectedGaussianTest(points, {1.0, -1.0}, 0.05));
}

TEST(ProjectedGaussianTest, BimodalSplit) {
  Rng rng(43);
  std::vector<TopicVector> points;
  for (int i = 0; i < 300; ++i) {
    const double center = i % 2 == 0 ? 0.2 : 0.8;
    TopicVector p = {std::clamp(center + 0.02 * rng.Normal(), 0.01, 0.99),
                     0.0};
    p[1] = 1.0 - p[0];
    points.push_back(p);
  }
  EXPECT_FALSE(ProjectedGaussianTest(points, {1.0, -1.0}, 0.05));
}

TEST(ProjectedGaussianTest, DegenerateInputsNotSplit) {
  EXPECT_TRUE(ProjectedGaussianTest({}, {1.0, 0.0}, 0.05));
  EXPECT_TRUE(ProjectedGaussianTest({{0.5, 0.5}}, {1.0, 0.0}, 0.05));
  std::vector<TopicVector> pts(10, {0.5, 0.5});
  EXPECT_TRUE(ProjectedGaussianTest(pts, {0.0, 0.0}, 0.05));  // zero direction
}

TEST(GMeansTest, FindsMultipleClustersInSeparatedData) {
  const auto points = MakeThreeBlobs(150, 47);
  GMeansOptions opts;
  opts.max_clusters = 8;
  opts.seed = 3;
  auto r = GMeans(points, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.ValueOrDie().centroids.size(), 3u);
  EXPECT_LE(r.ValueOrDie().centroids.size(), 8u);
}

TEST(GMeansTest, SingleBlobStaysWhole) {
  Rng rng(53);
  stats::Dirichlet d({30.0, 30.0, 30.0});
  std::vector<TopicVector> points;
  for (int i = 0; i < 200; ++i) points.push_back(d.Sample(&rng));
  GMeansOptions opts;
  opts.max_clusters = 8;
  opts.ad_alpha = 0.01;  // conservative splitting
  auto r = GMeans(points, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.ValueOrDie().centroids.size(), 2u);
}

TEST(GMeansTest, RespectsMaxClusters) {
  const auto points = MakeThreeBlobs(100, 59);
  GMeansOptions opts;
  opts.max_clusters = 2;
  auto r = GMeans(points, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.ValueOrDie().centroids.size(), 2u);
}

TEST(GMeansTest, RejectsBadInput) {
  EXPECT_FALSE(GMeans({}, {}).ok());
  GMeansOptions opts;
  opts.max_clusters = 0;
  EXPECT_FALSE(GMeans({{0.5, 0.5}}, opts).ok());
}

TEST(GMeansTest, AssignmentCoversAllPoints) {
  const auto points = MakeThreeBlobs(80, 61);
  GMeansOptions opts;
  auto r = GMeans(points, opts);
  ASSERT_TRUE(r.ok());
  const auto& res = r.ValueOrDie();
  ASSERT_EQ(res.assignment.size(), points.size());
  for (uint32_t label : res.assignment) {
    EXPECT_LT(label, res.centroids.size());
  }
}

}  // namespace
}  // namespace cluster
}  // namespace inflex
