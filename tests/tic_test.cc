#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/synthetic.h"
#include "graph/topic_graph.h"
#include "simplex/divergence.h"
#include "tic/propagation_log.h"
#include "tic/tic_learner.h"
#include "tic/tic_model.h"

namespace inflex {
namespace tic {
namespace {

using graph::NodeId;
using graph::TopicGraph;
using graph::TopicGraphBuilder;

// ---------------------------------------------------------- PropagationLog ---

TEST(PropagationLogTest, AddValidatesInput) {
  PropagationLog log(10, 5);
  EXPECT_TRUE(log.Add(0, 0, 1.0).ok());
  EXPECT_EQ(log.Add(10, 0, 1.0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(log.Add(0, 5, 1.0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(log.Add(0, 0, NAN).code(), StatusCode::kInvalidArgument);
}

TEST(PropagationLogTest, FinalizeSortsAndDeduplicates) {
  PropagationLog log(10, 2);
  ASSERT_TRUE(log.Add(3, 0, 5.0).ok());
  ASSERT_TRUE(log.Add(1, 0, 2.0).ok());
  ASSERT_TRUE(log.Add(3, 0, 1.0).ok());  // earlier duplicate wins
  ASSERT_TRUE(log.Add(2, 1, 9.0).ok());
  ASSERT_TRUE(log.Finalize().ok());
  const auto acts = log.ItemActivations(0);
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_EQ(acts[0].user, 3u);
  EXPECT_DOUBLE_EQ(acts[0].timestamp, 1.0);
  EXPECT_EQ(acts[1].user, 1u);
  EXPECT_EQ(log.ItemActivations(1).size(), 1u);
  EXPECT_EQ(log.num_active_items(), 2u);
  EXPECT_EQ(log.size(), 3u);
}

TEST(PropagationLogTest, DoubleFinalizeAndPostAddFail) {
  PropagationLog log(5, 2);
  ASSERT_TRUE(log.Add(0, 0, 1.0).ok());
  ASSERT_TRUE(log.Finalize().ok());
  EXPECT_FALSE(log.Finalize().ok());
  EXPECT_FALSE(log.Add(1, 0, 2.0).ok());
}

TEST(PropagationLogTest, SaveLoadRoundTrip) {
  PropagationLog log(20, 3);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(log.Add(i % 20, i % 3, static_cast<double>(i)).ok());
  }
  ASSERT_TRUE(log.Finalize().ok());
  const std::string path = testing::TempDir() + "/log_roundtrip.bin";
  ASSERT_TRUE(log.Save(path).ok());
  auto loaded = PropagationLog::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().size(), log.size());
  EXPECT_EQ(loaded.ValueOrDie().num_users(), 20u);
  EXPECT_EQ(loaded.ValueOrDie().num_items(), 3u);
  for (ItemId i = 0; i < 3; ++i) {
    const auto a = log.ItemActivations(i);
    const auto b = loaded.ValueOrDie().ItemActivations(i);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].user, b[j].user);
      EXPECT_DOUBLE_EQ(a[j].timestamp, b[j].timestamp);
    }
  }
}

TEST(PropagationLogTest, SaveUnfinalizedFails) {
  PropagationLog log(5, 2);
  EXPECT_FALSE(log.Save(testing::TempDir() + "/never.bin").ok());
}

// ---------------------------------------------------------------- TicModel ---

TEST(TicModelTest, SpreadMatchesDirectEstimate) {
  TopicGraphBuilder b(3, 2);
  ASSERT_TRUE(b.AddArc(0, 1, {0.8, 0.2}).ok());
  ASSERT_TRUE(b.AddArc(1, 2, {0.5, 0.5}).ok());
  const TopicGraph g = b.Build().ValueOrDie();
  TicModel model(&g);
  const auto item = simplex::TopicDistribution::Create({1.0, 0.0}).ValueOrDie();
  im::MonteCarloOptions mc;
  mc.num_simulations = 100000;
  const std::vector<NodeId> seeds = {0};
  auto spread = model.EstimateSpread(item, seeds, mc);
  ASSERT_TRUE(spread.ok());
  // Closed form: 1 + 0.8 + 0.8·0.5.
  EXPECT_NEAR(spread.ValueOrDie().mean, 2.2, 0.02);
}

// -------------------------------------------------------------- TicLearner ---

TEST(TicLearnerTest, ValidatesInput) {
  TopicGraphBuilder b(4, 2);
  ASSERT_TRUE(b.AddArc(0, 1, {0.5, 0.5}).ok());
  const TopicGraph g = b.Build().ValueOrDie();
  PropagationLog unfinalized(4, 2);
  TicLearnerOptions opts;
  opts.num_topics = 2;
  EXPECT_FALSE(LearnTicParameters(g, unfinalized, opts).ok());

  PropagationLog wrong_users(5, 2);
  ASSERT_TRUE(wrong_users.Finalize().ok());
  EXPECT_FALSE(LearnTicParameters(g, wrong_users, opts).ok());

  PropagationLog ok_log(4, 2);
  ASSERT_TRUE(ok_log.Finalize().ok());
  TicLearnerOptions bad_p = opts;
  bad_p.p_min = 0.5;
  bad_p.p_max = 0.1;
  EXPECT_FALSE(LearnTicParameters(g, ok_log, bad_p).ok());
}

TEST(TicLearnerTest, OutputShapesAndRanges) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 150;
  dopts.num_topics = 3;
  dopts.num_items = 60;
  dopts.seed = 5;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  TicLearnerOptions opts;
  opts.num_topics = 3;
  opts.max_iterations = 8;
  auto learned = LearnTicParameters(ds.ValueOrDie().graph,
                                    ds.ValueOrDie().log, opts);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  const auto& r = learned.ValueOrDie();
  EXPECT_EQ(r.item_topics.size(), 60u);
  EXPECT_EQ(r.arc_topic_probs.size(),
            ds.ValueOrDie().graph.num_arcs() * 3);
  for (double p : r.arc_topic_probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  for (const auto& gamma : r.item_topics) {
    double sum = 0.0;
    for (double v : gamma.probs()) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // The learned table must be installable back into the graph.
  graph::TopicGraph g = ds.ValueOrDie().graph;
  EXPECT_TRUE(g.SetArcTopicProbabilities(r.arc_topic_probs).ok());
}

TEST(TicLearnerTest, LikelihoodImprovesOverIterations) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 200;
  dopts.num_topics = 4;
  dopts.num_items = 80;
  dopts.seed = 9;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());

  TicLearnerOptions opts;
  opts.num_topics = 4;
  opts.max_iterations = 12;
  opts.tolerance = 0.0;  // run all sweeps
  auto learned = LearnTicParameters(ds.ValueOrDie().graph,
                                    ds.ValueOrDie().log, opts);
  ASSERT_TRUE(learned.ok());
  const auto& ll = learned.ValueOrDie().log_likelihood;
  ASSERT_GE(ll.size(), 3u);
  // EM guarantees monotone expected likelihood; allow tiny numerical slack.
  EXPECT_GT(ll.back(), ll.front());
  for (size_t i = 2; i < ll.size(); ++i) {
    EXPECT_GE(ll[i], ll[i - 1] - std::fabs(ll[i - 1]) * 1e-6) << i;
  }
}

TEST(TicLearnerTest, RandomInitializationPathWorks) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 150;
  dopts.num_topics = 3;
  dopts.num_items = 50;
  dopts.seed = 21;
  auto ds = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds.ok());
  TicLearnerOptions opts;
  opts.num_topics = 3;
  opts.max_iterations = 5;
  opts.cluster_initialization = false;  // the pure random-restart variant
  opts.gamma_freeze_iterations = 0;
  auto learned = LearnTicParameters(ds.ValueOrDie().graph,
                                    ds.ValueOrDie().log, opts);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_EQ(learned.ValueOrDie().item_topics.size(), 50u);
}

TEST(TicLearnerTest, ClusterInitImprovesTopicRecovery) {
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 300;
  dopts.num_topics = 3;
  dopts.num_items = 150;
  dopts.cascades_per_item = 5;
  dopts.seeds_per_cascade = 5;
  dopts.strong_prob_lo = 0.15;
  dopts.strong_prob_hi = 0.4;
  dopts.generalist_fraction = 0.0;
  dopts.seed = 23;
  auto ds_r = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds_r.ok());
  const auto& ds = ds_r.ValueOrDie();

  auto primary = [](const simplex::TopicDistribution& td) {
    const auto& p = td.probs();
    return std::max_element(p.begin(), p.end()) - p.begin();
  };
  // Best-permutation primary-topic agreement for a learned catalog.
  auto accuracy = [&](const std::vector<simplex::TopicDistribution>& learned) {
    size_t best = 0;
    std::vector<size_t> perm = {0, 1, 2};
    std::sort(perm.begin(), perm.end());
    do {
      size_t correct = 0;
      for (size_t i = 0; i < learned.size(); ++i) {
        if (perm[primary(learned[i])] ==
            static_cast<size_t>(primary(ds.catalog[i]))) {
          ++correct;
        }
      }
      best = std::max(best, correct);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return static_cast<double>(best) / static_cast<double>(learned.size());
  };

  TicLearnerOptions with_init;
  with_init.num_topics = 3;
  with_init.max_iterations = 15;
  TicLearnerOptions without_init = with_init;
  without_init.cluster_initialization = false;
  without_init.gamma_freeze_iterations = 0;
  auto a = LearnTicParameters(ds.graph, ds.log, with_init);
  auto b = LearnTicParameters(ds.graph, ds.log, without_init);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const double acc_with = accuracy(a.ValueOrDie().item_topics);
  const double acc_without = accuracy(b.ValueOrDie().item_topics);
  // The clustering initialization should help (or at worst tie) and must be
  // clearly above the 1/3 chance level on this clean dataset.
  EXPECT_GE(acc_with + 0.05, acc_without);
  EXPECT_GT(acc_with, 0.5);
}

TEST(TicLearnerTest, RecoversTopicStructure) {
  // With a strongly topic-structured dataset, items whose ground-truth
  // primary topics agree should end up closer (in learned-γ KL) than items
  // with different primary topics.
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = 300;
  dopts.num_topics = 3;
  dopts.num_items = 120;
  dopts.cascades_per_item = 5;
  dopts.seeds_per_cascade = 5;
  // Strong, clean topical signal so 20 EM sweeps suffice.
  dopts.strong_prob_lo = 0.15;
  dopts.strong_prob_hi = 0.4;
  dopts.generalist_fraction = 0.0;
  dopts.seed = 17;
  auto ds_r = data::GenerateSyntheticDataset(dopts);
  ASSERT_TRUE(ds_r.ok());
  const auto& ds = ds_r.ValueOrDie();

  TicLearnerOptions opts;
  opts.num_topics = 3;
  opts.max_iterations = 20;
  opts.seed = 3;
  auto learned = LearnTicParameters(ds.graph, ds.log, opts);
  ASSERT_TRUE(learned.ok());
  const auto& gammas = learned.ValueOrDie().item_topics;

  auto primary = [](const simplex::TopicDistribution& td) {
    const auto& p = td.probs();
    return std::max_element(p.begin(), p.end()) - p.begin();
  };
  double same_sum = 0.0, diff_sum = 0.0;
  size_t same_n = 0, diff_n = 0;
  for (size_t i = 0; i < gammas.size(); ++i) {
    for (size_t j = i + 1; j < gammas.size(); j += 7) {
      const double d =
          simplex::SymmetrizedKl(gammas[i].probs(), gammas[j].probs());
      if (primary(ds.catalog[i]) == primary(ds.catalog[j])) {
        same_sum += d;
        ++same_n;
      } else {
        diff_sum += d;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 10u);
  ASSERT_GT(diff_n, 10u);
  EXPECT_LT(same_sum / same_n, diff_sum / diff_n);
}

}  // namespace
}  // namespace tic
}  // namespace inflex
