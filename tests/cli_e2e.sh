#!/bin/sh
# End-to-end exercise of inflex_cli: generate → learn → suggest-h →
# build-index → query → add-item → evaluate → info, asserting exit codes and
# key output markers, plus a concurrent-serving replay through inflex_serve.
# Registered as a CTest test; $1 is the path to the inflex_cli binary and the
# optional $2 the path to inflex_serve.
set -eu

CLI="$1"
SERVE="${2:-}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

echo "== generate"
"$CLI" generate --out data --users 300 --topics 4 --items 150 --seed 9 \
  | grep -q "generated 300 users"

echo "== info (dataset only)"
"$CLI" info --data data | grep -q "users: 300"

echo "== learn"
"$CLI" learn --data data --out learned --iters 5 | grep -q "learned model"

echo "== suggest-h"
"$CLI" suggest-h --data data --target 0.5 | grep -q "suggested h"

echo "== build-index"
"$CLI" build-index --data data --out index.bin --h 16 --ell 10 \
  --snapshots 30 | grep -q "built index"

echo "== query"
"$CLI" query --data data --index index.bin --mix 0.7,0.1,0.1,0.1 --k 5 \
  | grep -q "seeds:"

echo "== query with explicit strategy"
"$CLI" query --data data --index index.bin --mix 0.25,0.25,0.25,0.25 \
  --k 5 --strategy exact | grep -q "exact"

echo "== add-item"
"$CLI" add-item --data data --index index.bin --mix 0.1,0.1,0.1,0.7 \
  --ell 8 | grep -q "index now has 17 points"

if [ -n "$SERVE" ]; then
  echo "== serve (batched concurrent replay, cache on)"
  "$SERVE" --data data --index index.bin --queries 256 --unique 32 \
    --batch 64 --threads 4 --k 5 | grep -q "QPS overall"
  echo "== serve (cache off)"
  "$SERVE" --data data --index index.bin --queries 64 --unique 32 \
    --batch 32 --threads 2 --k 5 --no-cache | grep -q "hit rate 0.0%"
  echo "== serve (live maintenance: --deltas)"
  # Catalog deltas stream in under the replay: >=1 must be admitted, its
  # seeds recomputed in the background, and the resulting generations
  # published under load (the binary exits non-zero otherwise).
  "$SERVE" --data data --index index.bin --queries 256 --unique 32 \
    --batch 64 --threads 4 --k 5 --deltas 4 > serve_deltas.log
  grep -q "maintenance: published generation" serve_deltas.log
  grep -q "maintenance summary:" serve_deltas.log
  grep -q "0 failed |" serve_deltas.log
fi

echo "== evaluate"
"$CLI" evaluate --data data --index index.bin --queries 4 --k 8 \
  | grep -q "avg Kendall-tau"

echo "== info (with index)"
"$CLI" info --data data --index index.bin | grep -q "points (h): 17"

echo "== error handling"
if "$CLI" query --data data --index index.bin --mix 0.5,0.5 --k 5 \
    2>/dev/null; then
  echo "expected dimension mismatch to fail" >&2
  exit 1
fi
if "$CLI" build-index --data data --out x.bin --bogus 1 2>/dev/null; then
  echo "expected unknown option to fail" >&2
  exit 1
fi
if "$CLI" nonsense-command 2>/dev/null; then
  echo "expected unknown command to fail" >&2
  exit 1
fi

echo "CLI end-to-end: OK"
