#!/bin/sh
# Tier-1 concurrency gate: builds the serving + maintenance stress tests
# under ThreadSanitizer (-DINFLEX_SANITIZE=thread) in a dedicated build
# directory and runs them. Any data race in the sharded QueryCache, the
# QueryEngine batch path, the ThreadPool re-entrancy logic, or the
# IndexMaintainer generation-swap pipeline fails this script.
#
# Usage: tests/run_sanitized_stress.sh [source-dir] [build-dir]
# (defaults: the repo root containing this script, <source>/build-tsan)
set -eu

SRC="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
BUILD="${2:-$SRC/build-tsan}"

echo "== configure ($BUILD, INFLEX_SANITIZE=thread)"
cmake -B "$BUILD" -S "$SRC" \
  -DINFLEX_SANITIZE=thread \
  -DINFLEX_BUILD_BENCHMARKS=OFF \
  -DINFLEX_BUILD_EXAMPLES=OFF \
  -DINFLEX_BUILD_TOOLS=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== build (serving_test maintenance_test util_test)"
cmake --build "$BUILD" --target serving_test maintenance_test util_test \
  -j "$(nproc)" > /dev/null

echo "== run serving stress + thread-pool tests under TSan"
# halt_on_error: any reported race is a hard failure, not a log line.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  "$BUILD/tests/serving_test"
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  "$BUILD/tests/util_test" --gtest_filter='ThreadPoolTest.*'

echo "== run live-maintenance stress under TSan"
# The query storm runs concurrently with background seed recompute and
# RCU-style generation swaps; the test additionally replays every answer
# serially against its pinned generation and requires bit-identity.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  "$BUILD/tests/maintenance_test"

echo "TSan stress: OK (zero reported races)"
