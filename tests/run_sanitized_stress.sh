#!/bin/sh
# Tier-1 concurrency gate: builds the serving + maintenance stress tests
# under ThreadSanitizer (-DINFLEX_SANITIZE=thread) in a dedicated build
# directory and runs them. Any data race in the sharded QueryCache, the
# QueryEngine batch path, the ThreadPool re-entrancy logic, or the
# IndexMaintainer generation-swap pipeline fails this script.
# A second phase builds kernel_test under ASan+UBSan (-DINFLEX_SANITIZE=
# address): the KL kernel layer works on raw pointers into flat SoA buffers
# that Insert() reallocates, exactly the kind of code ASan exists for.
#
# Usage: tests/run_sanitized_stress.sh [source-dir] [build-dir] [asan-dir]
# (defaults: the repo root containing this script, <source>/build-tsan,
# <source>/build-asan)
set -eu

SRC="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
BUILD="${2:-$SRC/build-tsan}"
BUILD_ASAN="${3:-$SRC/build-asan}"

echo "== configure ($BUILD, INFLEX_SANITIZE=thread)"
cmake -B "$BUILD" -S "$SRC" \
  -DINFLEX_SANITIZE=thread \
  -DINFLEX_BUILD_BENCHMARKS=OFF \
  -DINFLEX_BUILD_EXAMPLES=OFF \
  -DINFLEX_BUILD_TOOLS=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== build (serving_test maintenance_test oracle_test util_test net_test quality_test tenant_test)"
cmake --build "$BUILD" --target serving_test maintenance_test oracle_test \
  util_test net_test quality_test tenant_test -j "$(nproc)" > /dev/null

echo "== run serving stress + thread-pool tests under TSan"
# halt_on_error: any reported race is a hard failure, not a log line.
# tsan.supp scopes out libstdc++ 12's _Sp_atomic relaxed-unlock artifact
# (see the comment in that file) without masking races in our own code.
TSAN_OPTIONS="halt_on_error=1 suppressions=$SRC/tests/tsan.supp ${TSAN_OPTIONS:-}" \
  "$BUILD/tests/serving_test"
TSAN_OPTIONS="halt_on_error=1 suppressions=$SRC/tests/tsan.supp ${TSAN_OPTIONS:-}" \
  "$BUILD/tests/util_test" --gtest_filter='ThreadPoolTest.*'

echo "== run live-maintenance stress under TSan"
# The query storm runs concurrently with background seed recompute and
# RCU-style generation swaps; the test additionally replays every answer
# serially against its pinned generation and requires bit-identity.
TSAN_OPTIONS="halt_on_error=1 suppressions=$SRC/tests/tsan.supp ${TSAN_OPTIONS:-}" \
  "$BUILD/tests/maintenance_test"

echo "== run per-backend oracle admission storms under TSan"
# For each spread-oracle backend (CELF++, RIS, sketch) a serving storm runs
# against concurrent multi-worker precompute; the sketch backend's RCU
# universe (atomic shared_ptr publish, lock-free readers) is exactly the
# kind of sharing TSan exists to vet. Published lists must additionally be
# bit-identical to a serial replay.
TSAN_OPTIONS="halt_on_error=1 suppressions=$SRC/tests/tsan.supp ${TSAN_OPTIONS:-}" \
  "$BUILD/tests/oracle_test" \
  --gtest_filter='OracleTest.ConcurrentStormMatchesSerialReplayPerBackend:OracleTest.Sketch*'

echo "== run relevance scorer golden replay under TSan"
# The scorer drives the full serving + maintenance pipeline (admission,
# background precompute, decay sweep, epoch-keyed cache) per backend; under
# TSan it must still reproduce the committed report byte-for-byte.
TSAN_OPTIONS="halt_on_error=1 suppressions=$SRC/tests/tsan.supp ${TSAN_OPTIONS:-}" \
  "$BUILD/tests/quality_test"

echo "== run network loopback storm under TSan"
# The TCP front end's three planes (IO thread, admission queue, workers)
# against concurrent clients, live generation publishing, and graceful
# shutdown with requests in flight.
TSAN_OPTIONS="halt_on_error=1 suppressions=$SRC/tests/tsan.supp ${TSAN_OPTIONS:-}" \
  "$BUILD/tests/net_test"

echo "== run multi-tenant storm under TSan"
# The RCU tenant table under concurrent create/drop, racing lock-free
# lookups, per-tenant token buckets, and live per-tenant generation
# publishing over one server — with every answer replayed bit-for-bit
# against the generation (of the tenant) that served it.
TSAN_OPTIONS="halt_on_error=1 suppressions=$SRC/tests/tsan.supp ${TSAN_OPTIONS:-}" \
  "$BUILD/tests/tenant_test"

echo "TSan stress: OK (zero reported races)"

echo "== configure ($BUILD_ASAN, INFLEX_SANITIZE=address)"
cmake -B "$BUILD_ASAN" -S "$SRC" \
  -DINFLEX_SANITIZE=address \
  -DINFLEX_BUILD_BENCHMARKS=OFF \
  -DINFLEX_BUILD_EXAMPLES=OFF \
  -DINFLEX_BUILD_TOOLS=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== build (kernel_test)"
cmake --build "$BUILD_ASAN" --target kernel_test -j "$(nproc)" > /dev/null

echo "== run KL kernel + SoA search tests under ASan+UBSan"
ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
  "$BUILD_ASAN/tests/kernel_test"

echo "== re-run under ASan+UBSan with INFLEX_FORCE_SCALAR=1"
# The runtime-dispatched SIMD variants dominate the first run on AVX2
# hosts; forcing scalar makes ASan walk the fixed-order reference kernels'
# own pointer arithmetic (including the strided-row tails) too.
ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" INFLEX_FORCE_SCALAR=1 \
  "$BUILD_ASAN/tests/kernel_test"

echo "ASan kernel tests: OK (dispatched + forced-scalar)"
