// Tests for the golden relevance corpus + scorer (src/quality): the
// committed corpus loads and is well-formed, scoring is bit-deterministic,
// the full per-backend golden replay reproduces the committed
// QUALITY_report.json byte-for-byte (ctest also runs that case under
// INFLEX_FORCE_SCALAR=1 — the scalar kernels must not change a single
// byte of the report), and a deliberately degraded index fails the gate
// (the CI quality gate actually has teeth).
//
// The corpus and baseline paths are compiled in from the source tree
// (INFLEX_CORPUS_FILE / INFLEX_QUALITY_BASELINE, set by tests/CMakeLists).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "inflex/inflex_index.h"
#include "oracle/spread_oracle.h"
#include "quality/corpus.h"
#include "quality/json.h"
#include "quality/scorer.h"
#include "rank/ranked_list.h"

namespace inflex {
namespace {

using quality::RelevanceCorpus;

quality::RelevanceCorpus LoadCommitted() {
  auto corpus = quality::LoadCorpus(INFLEX_CORPUS_FILE);
  EXPECT_TRUE(corpus.ok()) << corpus.status().message();
  return std::move(corpus).ValueOrDie();
}

TEST(QualityCorpusTest, CommittedCorpusIsWellFormed) {
  RelevanceCorpus corpus = LoadCommitted();
  EXPECT_EQ(corpus.name, "golden_v1");
  EXPECT_EQ(corpus.version, 1);
  EXPECT_GE(corpus.queries.size(), 15u);

  // Every category of the taxonomy is represented and has a threshold.
  std::set<std::string> seen;
  for (const auto& q : corpus.queries) {
    seen.insert(q.category);
    EXPECT_FALSE(q.id.empty());
    EXPECT_GT(q.k, 0u);
    EXPECT_EQ(q.golden_seeds.size(), q.k) << q.id;
    EXPECT_GT(q.golden_spread, 0.0) << q.id;
    if (q.category == quality::kCategorySegmentRestricted) {
      EXPECT_FALSE(q.segment.empty()) << q.id;
      // Segment queries must be answerable: golden seeds inside the segment.
      std::set<graph::NodeId> segment(q.segment.begin(), q.segment.end());
      for (graph::NodeId s : q.golden_seeds) {
        EXPECT_TRUE(segment.count(s)) << q.id << " golden seed " << s
                                      << " outside its segment";
      }
    }
  }
  for (const auto& category : quality::AllCorpusCategories()) {
    EXPECT_TRUE(seen.count(std::string(category)))
        << "category " << category << " has no queries";
    EXPECT_TRUE(corpus.ThresholdFor(std::string(category)).ok())
        << "category " << category << " has no threshold";
  }
}

TEST(QualityScorerTest, ScoringIsDeterministicWithinProcess) {
  RelevanceCorpus corpus = LoadCommitted();
  auto world = quality::BuildCorpusWorld(corpus);
  ASSERT_TRUE(world.ok()) << world.status().message();

  const std::vector<oracle::OracleBackend> backends = {
      oracle::OracleBackend::kCelfPp};
  auto first = quality::ScoreCorpus(world.ValueOrDie(), corpus, backends);
  auto second = quality::ScoreCorpus(world.ValueOrDie(), corpus, backends);
  ASSERT_TRUE(first.ok()) << first.status().message();
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(quality::ReportToJson(first.ValueOrDie()).Dump(),
            quality::ReportToJson(second.ValueOrDie()).Dump());
}

// The full golden replay: every backend, every category, refereed against
// the committed corpus — and the rendered report must match the committed
// QUALITY_report.json byte-for-byte (both sides canonicalized through
// Dump(), so on-disk indentation is immaterial). ctest registers a second
// run of this case with INFLEX_FORCE_SCALAR=1: kernel dispatch must not
// leak into relevance results.
TEST(QualityScorerTest, GoldenReplayMatchesCommittedBaseline) {
  RelevanceCorpus corpus = LoadCommitted();
  auto world = quality::BuildCorpusWorld(corpus);
  ASSERT_TRUE(world.ok()) << world.status().message();

  const std::vector<oracle::OracleBackend> backends = {
      oracle::OracleBackend::kCelfPp, oracle::OracleBackend::kRis,
      oracle::OracleBackend::kSketch};
  auto report = quality::ScoreCorpus(world.ValueOrDie(), corpus, backends);
  ASSERT_TRUE(report.ok()) << report.status().message();

  EXPECT_TRUE(report.ValueOrDie().passed);
  for (const auto& backend : report.ValueOrDie().backends) {
    EXPECT_TRUE(backend.scenario_ok) << backend.backend;
    EXPECT_TRUE(backend.passed) << backend.backend;
    for (const auto& category : backend.categories) {
      EXPECT_TRUE(category.passed)
          << backend.backend << "/" << category.category;
    }
  }

  auto baseline = quality::LoadJsonFile(INFLEX_QUALITY_BASELINE);
  ASSERT_TRUE(baseline.ok()) << baseline.status().message();
  EXPECT_EQ(quality::ReportToJson(report.ValueOrDie()).Dump(),
            baseline.ValueOrDie().Dump())
      << "scored report drifted from the committed QUALITY_report.json "
         "baseline; if the change is intentional, regenerate it with "
         "tools/score_relevance";
}

// The acceptance criterion for the gate itself: wreck the index's seed
// lists (keep the same points, so the maintenance scenario replays
// identically) and the gate must fail — in particular the near-index-point
// category, whose floors are the tightest.
TEST(QualityScorerTest, DegradedSeedListsFailTheGate) {
  RelevanceCorpus corpus = LoadCommitted();
  auto world = quality::BuildCorpusWorld(corpus);
  ASSERT_TRUE(world.ok()) << world.status().message();
  const auto& base = *world.ValueOrDie().base_index;

  // Same index points, but every seed list replaced by the first ℓ node
  // ids — arbitrary nodes instead of the CELF++-optimized ranking.
  std::vector<simplex::TopicVector> points;
  std::vector<rank::RankedList> seed_lists;
  rank::RankedList junk;
  for (uint32_t n = 0; n < base.seed_list_length(); ++n) junk.push_back(n);
  for (uint32_t id = 0; id < base.num_index_points(); ++id) {
    points.push_back(base.index_point(id));
    seed_lists.push_back(junk);
  }
  auto degraded = core::InflexIndex::FromParts(
      &world.ValueOrDie().graph(), std::move(points), std::move(seed_lists),
      bbtree::BbTreeOptions{});
  ASSERT_TRUE(degraded.ok()) << degraded.status().message();

  auto report = quality::ScoreBackend(
      world.ValueOrDie(), corpus, oracle::OracleBackend::kCelfPp,
      std::make_shared<core::InflexIndex>(std::move(degraded).ValueOrDie()));
  ASSERT_TRUE(report.ok()) << report.status().message();

  EXPECT_TRUE(report.ValueOrDie().scenario_ok)
      << "degrading seed lists must not disturb the maintenance scenario";
  EXPECT_FALSE(report.ValueOrDie().passed);
  bool near_failed = false;
  for (const auto& category : report.ValueOrDie().categories) {
    if (category.category == quality::kCategoryNearIndexPoint) {
      near_failed = !category.passed;
    }
  }
  EXPECT_TRUE(near_failed)
      << "near-index-point floors did not catch junk seed lists";
}

}  // namespace
}  // namespace inflex
