#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "util/random.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace inflex {
namespace {

// ---------------------------------------------------------------- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyIsCheapAndEqualityWorks) {
  Status a = Status::IOError("disk");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.message(), "disk");
}

Status FailingHelper() { return Status::NotFound("nope"); }

Status PropagationHelper() {
  INFLEX_RETURN_NOT_OK(FailingHelper());
  return Status::OK();  // unreachable
}

TEST(StatusTest, ReturnNotOkPropagates) {
  Status s = PropagationHelper();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Result ---

Result<int> MakeValue(bool fail) {
  if (fail) return Status::InvalidArgument("fail requested");
  return 42;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = MakeValue(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = MakeValue(true);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> ChainHelper(bool fail) {
  INFLEX_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(ChainHelper(false).ValueOrDie(), 43);
  EXPECT_EQ(ChainHelper(true).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 7);
}

// ------------------------------------------------------------------- Rng ---

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    counts[v]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(17);
  for (double shape : {0.3, 1.0, 2.5, 8.0}) {
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.05) << "shape=" << shape;
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

// ------------------------------------------------------------ ThreadPool ---

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  ParallelFor(0, 1000, [&hits](size_t i) { hits[i]++; }, &pool);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(5, 5, [&called](size_t) { called = true; }, &pool);
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeSerial) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  ParallelFor(10, 11, [&total](size_t i) { total += static_cast<int>(i); },
              &pool);
  EXPECT_EQ(total.load(), 10);
}

// Regression: a task submitting to its own pool used to be forbidden (and a
// task blocking in a nested ParallelFor could wedge every worker). Nested
// submissions now execute inline on the calling worker.
TEST(ThreadPoolTest, NestedSubmitRunsInlineInsteadOfDeadlocking) {
  ThreadPool pool(1);  // one worker: any queued nested task could never run
  std::atomic<int> inner{0};
  std::atomic<bool> inner_done_before_outer_returned{false};
  pool.Submit([&] {
    pool.Submit([&] { inner.fetch_add(1); });
    inner_done_before_outer_returned = inner.load() == 1;
  });
  pool.Wait();
  EXPECT_EQ(inner.load(), 1);
  EXPECT_TRUE(inner_done_before_outer_returned.load());
}

TEST(ThreadPoolTest, NestedParallelForCompletesOnSamePool) {
  ThreadPool pool(2);
  std::vector<int> hits(256, 0);
  std::atomic<int> outer_done{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&] {
      // Nested ParallelFor on the pool this task runs on: must degrade to a
      // serial loop rather than deadlock waiting for busy workers.
      std::vector<int> local(hits.size(), 0);
      ParallelFor(0, local.size(), [&local](size_t i) { local[i]++; }, &pool);
      for (int h : local) {
        if (h != 1) return;  // leave outer_done unincremented
      }
      outer_done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(outer_done.load(), 4);
}

// The per-worker-queue pool must serve many EXTERNAL threads running
// ParallelFor on the same pool at once (exactly what N net-server workers do
// with concurrent QueryBatch calls): every caller's range completes exactly
// once, and no caller returns before its own iterations have all run.
TEST(ThreadPoolTest, ParallelForManyConcurrentExternalCallers) {
  ThreadPool pool(4);
  constexpr int kCallers = 8;
  constexpr int kRounds = 20;
  constexpr size_t kRange = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<int> hits(kRange, 0);
        ParallelFor(0, kRange, [&hits](size_t i) { hits[i]++; }, &pool);
        // The call returned: every slot must already be exactly 1.
        for (int h : hits) {
          if (h != 1) {
            failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Submissions racing Wait() from several threads: Wait() must only return
// once every task submitted before it has run.
TEST(ThreadPoolTest, ConcurrentSubmittersNeverLoseTasks) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kPerThread = 200;
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& th : submitters) th.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kSubmitters * kPerThread);
}

TEST(ThreadPoolTest, OnWorkerThreadDistinguishesPools) {
  ThreadPool a(1);
  ThreadPool b(1);
  EXPECT_FALSE(a.OnWorkerThread());
  std::atomic<int> checks{0};
  a.Submit([&] {
    if (a.OnWorkerThread() && !b.OnWorkerThread()) checks.fetch_add(1);
    // Submitting to a *different* pool from a worker still enqueues there.
    b.Submit([&] {
      if (b.OnWorkerThread() && !a.OnWorkerThread()) checks.fetch_add(1);
    });
  });
  a.Wait();
  b.Wait();
  EXPECT_EQ(checks.load(), 2);
}

// --------------------------------------------------------------- Serialize ---

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializeTest, PodRoundTrip) {
  const std::string path = TempPath("pod.bin");
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.ValueOrDie().WritePod<uint32_t>(0xdeadbeef).ok());
    ASSERT_TRUE(w.ValueOrDie().WritePod<double>(3.5).ok());
    ASSERT_TRUE(w.ValueOrDie().Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  uint32_t a = 0;
  double b = 0;
  ASSERT_TRUE(r.ValueOrDie().ReadPod(&a).ok());
  ASSERT_TRUE(r.ValueOrDie().ReadPod(&b).ok());
  EXPECT_EQ(a, 0xdeadbeef);
  EXPECT_EQ(b, 3.5);
}

TEST(SerializeTest, VectorAndStringRoundTrip) {
  const std::string path = TempPath("vec.bin");
  const std::vector<double> values = {1.0, -2.5, 1e-9};
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.ValueOrDie().WriteVector(values).ok());
    ASSERT_TRUE(w.ValueOrDie().WriteString("hello").ok());
    ASSERT_TRUE(w.ValueOrDie().Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  std::vector<double> decoded;
  std::string s;
  ASSERT_TRUE(r.ValueOrDie().ReadVector(&decoded).ok());
  ASSERT_TRUE(r.ValueOrDie().ReadString(&s).ok());
  EXPECT_EQ(decoded, values);
  EXPECT_EQ(s, "hello");
}

TEST(SerializeTest, HeaderMismatchDetected) {
  const std::string path = TempPath("hdr.bin");
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(WriteHeader(&w.ValueOrDie(), 0x1111, 1).ok());
    ASSERT_TRUE(w.ValueOrDie().Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  Status s = CheckHeader(&r.ValueOrDie(), 0x2222, 1);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(SerializeTest, VersionMismatchDetected) {
  const std::string path = TempPath("ver.bin");
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(WriteHeader(&w.ValueOrDie(), 0x1111, 3).ok());
    ASSERT_TRUE(w.ValueOrDie().Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  Status s = CheckHeader(&r.ValueOrDie(), 0x1111, 1);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(SerializeTest, TruncatedReadFails) {
  const std::string path = TempPath("trunc.bin");
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.ValueOrDie().WritePod<uint16_t>(1).ok());
    ASSERT_TRUE(w.ValueOrDie().Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  uint64_t big = 0;
  EXPECT_EQ(r.ValueOrDie().ReadPod(&big).code(), StatusCode::kIOError);
}

TEST(SerializeTest, OpenMissingFileFails) {
  auto r = BinaryReader::Open("/nonexistent/dir/file.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

// ------------------------------------------------------------------ Timer ---

// Prevents the busy-wait loops below from being optimized away.
volatile double benchmark_sink_ = 0.0;

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  benchmark_sink_ = sink;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());  // ms scale larger
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  benchmark_sink_ = sink;
  const double before = t.ElapsedSeconds();
  t.Reset();
  EXPECT_LE(t.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace inflex
