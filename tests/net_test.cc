// Tests for the network serving front end (src/net/): wire-protocol frame
// round-trips and rejection of malformed frames, loopback answers
// bit-identical to in-process QueryEngine::Query, deterministic load
// shedding and deadline expiry at the bounded admission queue (workers
// parked on the worker_hook test seam so queue buildup is not a race),
// graceful shutdown with in-flight requests, maintenance back-pressure over
// the wire, and a multi-client loopback storm with live generation
// publishing whose every answer is replayed bit-for-bit against the
// generation that served it (run under TSan by run_sanitized_stress.sh).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "inflex/index_maintainer.h"
#include "inflex/inflex_index.h"
#include "inflex/query_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "simplex/sampling.h"
#include "tenant/tenant_registry.h"
#include "tenant/tenant_router.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace inflex {
namespace {

// ---------------------------------------------------------------------------
// Wire protocol round-trips (no server needed)
// ---------------------------------------------------------------------------

net::WireRequest SampleRequest() {
  net::WireRequest req;
  req.type = net::MessageType::kQuery;
  req.gamma = {0.125, 0.5, 0.25, 0.125};
  req.k = 7;
  req.strategy = core::QueryStrategy::kApproxKnnSel;
  req.knn_k = 12;
  req.max_leaves = 3;
  req.segment_mask = {1, 0, 1, 1, 0};
  req.deadline_ms = 250;
  return req;
}

TEST(WireTest, QueryRequestRoundTrip) {
  const net::WireRequest req = SampleRequest();
  const std::vector<uint8_t> frame = net::EncodeRequestFrame(req);

  size_t total = 0;
  ASSERT_TRUE(net::PeekFrame(frame, &total).ok());
  ASSERT_EQ(total, frame.size());

  auto decoded = net::DecodeRequestPayload(
      std::span<const uint8_t>(frame).subspan(net::kFrameHeaderBytes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const net::WireRequest& got = decoded.ValueOrDie();
  EXPECT_EQ(got.type, req.type);
  EXPECT_EQ(got.gamma, req.gamma);  // bit-exact doubles
  EXPECT_EQ(got.k, req.k);
  EXPECT_EQ(got.strategy, req.strategy);
  EXPECT_EQ(got.knn_k, req.knn_k);
  EXPECT_EQ(got.max_leaves, req.max_leaves);
  EXPECT_EQ(got.segment_mask, req.segment_mask);
  EXPECT_EQ(got.deadline_ms, req.deadline_ms);

  const core::QueryOptions opts = got.ToQueryOptions();
  EXPECT_EQ(opts.strategy, req.strategy);
  EXPECT_EQ(opts.knn_k, 12u);
  EXPECT_EQ(opts.max_leaves, 3u);
  EXPECT_EQ(opts.segment_mask, req.segment_mask);
}

TEST(WireTest, DeltaRequestRoundTrip) {
  net::WireRequest req;
  req.type = net::MessageType::kDelta;
  req.gamma = {0.9, 0.05, 0.05};
  req.delta_id = "item-4711";
  const std::vector<uint8_t> frame = net::EncodeRequestFrame(req);
  auto decoded = net::DecodeRequestPayload(
      std::span<const uint8_t>(frame).subspan(net::kFrameHeaderBytes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().type, net::MessageType::kDelta);
  EXPECT_EQ(decoded.ValueOrDie().gamma, req.gamma);
  EXPECT_EQ(decoded.ValueOrDie().delta_id, "item-4711");
}

TEST(WireTest, ResponseRoundTrip) {
  net::WireResponse resp;
  resp.status = net::WireStatus::kOk;
  resp.from_cache = true;
  resp.epsilon_exact = true;
  resp.retry_after_ms = 17;
  resp.epoch = 41;
  resp.delta_outcome = 2;
  resp.seeds = {5, 1, 99, 3};
  resp.similarity_search_ms = 0.25;
  resp.aggregation_ms = 0.125;
  resp.engine_ms = 0.5;
  resp.queue_ms = 1.75;
  resp.message = "all good";
  const std::vector<uint8_t> frame = net::EncodeResponseFrame(resp);
  auto decoded = net::DecodeResponsePayload(
      std::span<const uint8_t>(frame).subspan(net::kFrameHeaderBytes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const net::WireResponse& got = decoded.ValueOrDie();
  EXPECT_EQ(got.status, resp.status);
  EXPECT_EQ(got.from_cache, resp.from_cache);
  EXPECT_EQ(got.epsilon_exact, resp.epsilon_exact);
  EXPECT_EQ(got.retry_after_ms, resp.retry_after_ms);
  EXPECT_EQ(got.epoch, resp.epoch);
  EXPECT_EQ(got.delta_outcome, resp.delta_outcome);
  EXPECT_EQ(got.seeds, resp.seeds);
  EXPECT_EQ(got.similarity_search_ms, resp.similarity_search_ms);
  EXPECT_EQ(got.aggregation_ms, resp.aggregation_ms);
  EXPECT_EQ(got.engine_ms, resp.engine_ms);
  EXPECT_EQ(got.queue_ms, resp.queue_ms);
  EXPECT_EQ(got.message, resp.message);
}

TEST(WireTest, DecodeRejectsBadMagic) {
  std::vector<uint8_t> frame = net::EncodeRequestFrame(SampleRequest());
  frame[net::kFrameHeaderBytes] ^= 0xFF;  // first payload byte = magic
  auto decoded = net::DecodeRequestPayload(
      std::span<const uint8_t>(frame).subspan(net::kFrameHeaderBytes));
  EXPECT_FALSE(decoded.ok());
}

TEST(WireTest, DecodeRejectsBadVersion) {
  std::vector<uint8_t> frame = net::EncodeRequestFrame(SampleRequest());
  frame[net::kFrameHeaderBytes + 4] += 1;  // version lives after the magic
  auto decoded = net::DecodeRequestPayload(
      std::span<const uint8_t>(frame).subspan(net::kFrameHeaderBytes));
  EXPECT_FALSE(decoded.ok());
}

TEST(WireTest, DecodeRejectsEveryTruncation) {
  // Every field is mandatory, so every strict prefix of a valid payload
  // must be rejected — no truncation may silently parse.
  const std::vector<uint8_t> frame = net::EncodeRequestFrame(SampleRequest());
  const std::span<const uint8_t> payload =
      std::span<const uint8_t>(frame).subspan(net::kFrameHeaderBytes);
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = net::DecodeRequestPayload(payload.subspan(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes parsed";
  }
  const std::vector<uint8_t> rframe = net::EncodeResponseFrame({});
  const std::span<const uint8_t> rpayload =
      std::span<const uint8_t>(rframe).subspan(net::kFrameHeaderBytes);
  for (size_t len = 0; len < rpayload.size(); ++len) {
    EXPECT_FALSE(net::DecodeResponsePayload(rpayload.subspan(0, len)).ok());
  }
}

// ---------------------------------------------------------------------------
// Tenant field back-compat matrix (flag-gated protocol evolution)
// ---------------------------------------------------------------------------

/// Offset of the request flags byte inside a frame: header, then
/// magic(4) + version(2) + type(1).
constexpr size_t kFlagsByteOffset = net::kFrameHeaderBytes + 7;

TEST(WireTest, TenantRequestRoundTrip) {
  net::WireRequest req = SampleRequest();
  req.delta_id = "item-9";
  req.tenant = "acme-corp";
  const std::vector<uint8_t> frame = net::EncodeRequestFrame(req);
  auto decoded = net::DecodeRequestPayload(
      std::span<const uint8_t>(frame).subspan(net::kFrameHeaderBytes));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const net::WireRequest& got = decoded.ValueOrDie();
  EXPECT_EQ(got.tenant, "acme-corp");
  EXPECT_EQ(got.delta_id, "item-9");
  EXPECT_EQ(got.gamma, req.gamma);
  EXPECT_EQ(got.segment_mask, req.segment_mask);
}

TEST(WireTest, TenantFreeFrameStaysBitIdenticalToV1) {
  // The tenant field is flag-gated and appended at the END of the payload:
  // a tenant-free frame must be byte-for-byte what a pre-tenant encoder
  // emitted, and a tenant frame must differ ONLY in the length prefix, one
  // flag bit, and the appended suffix. This is the structural proof that v1
  // peers interoperate: nothing they parse has moved.
  net::WireRequest req = SampleRequest();
  req.delta_id = "item-1";
  const std::vector<uint8_t> v1 = net::EncodeRequestFrame(req);
  req.tenant = "acme";
  const std::vector<uint8_t> flagged = net::EncodeRequestFrame(req);

  // Suffix = u32 string length + bytes; everything before it is untouched
  // except the flags byte.
  ASSERT_EQ(flagged.size(), v1.size() + sizeof(uint32_t) + req.tenant.size());
  for (size_t i = net::kFrameHeaderBytes; i < v1.size(); ++i) {
    if (i == kFlagsByteOffset) continue;
    ASSERT_EQ(v1[i], flagged[i]) << "payload byte " << i << " moved";
  }
  EXPECT_EQ(flagged[kFlagsByteOffset],
            static_cast<uint8_t>(v1[kFlagsByteOffset] | (1u << 1)));

  // v1 frames decode on the tenant-aware codec with an empty tenant and
  // re-encode bit-identically (the v1-client ↔ tenant-aware-server leg).
  auto v1_decoded = net::DecodeRequestPayload(
      std::span<const uint8_t>(v1).subspan(net::kFrameHeaderBytes));
  ASSERT_TRUE(v1_decoded.ok()) << v1_decoded.status().ToString();
  EXPECT_TRUE(v1_decoded.ValueOrDie().tenant.empty());
  EXPECT_EQ(net::EncodeRequestFrame(v1_decoded.ValueOrDie()), v1);

  // Tenant frames round-trip bit-identically too.
  auto t_decoded = net::DecodeRequestPayload(
      std::span<const uint8_t>(flagged).subspan(net::kFrameHeaderBytes));
  ASSERT_TRUE(t_decoded.ok()) << t_decoded.status().ToString();
  EXPECT_EQ(net::EncodeRequestFrame(t_decoded.ValueOrDie()), flagged);
}

TEST(WireTest, TenantFrameRejectsEveryTruncationAndTrailingGarbage) {
  // With segment mask AND tenant present, every strict prefix must still be
  // rejected — the new field's length prefix and bytes are as mandatory as
  // the rest once its flag bit is set.
  net::WireRequest req = SampleRequest();
  req.delta_id = "item-2";
  req.tenant = "acme-corp";
  std::vector<uint8_t> frame = net::EncodeRequestFrame(req);
  const std::span<const uint8_t> payload =
      std::span<const uint8_t>(frame).subspan(net::kFrameHeaderBytes);
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = net::DecodeRequestPayload(payload.subspan(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes parsed";
  }
  frame.push_back(0x5A);
  EXPECT_FALSE(net::DecodeRequestPayload(
                   std::span<const uint8_t>(frame).subspan(
                       net::kFrameHeaderBytes))
                   .ok());
}

TEST(WireTest, DecodeRejectsTrailingGarbage) {
  std::vector<uint8_t> frame = net::EncodeRequestFrame(SampleRequest());
  frame.push_back(0xAB);
  auto decoded = net::DecodeRequestPayload(
      std::span<const uint8_t>(frame).subspan(net::kFrameHeaderBytes));
  EXPECT_FALSE(decoded.ok());
}

TEST(WireTest, DecodeRejectsOutOfRangeEnums) {
  {
    std::vector<uint8_t> frame = net::EncodeRequestFrame(SampleRequest());
    frame[net::kFrameHeaderBytes + 6] = 99;  // message type byte
    EXPECT_FALSE(net::DecodeRequestPayload(
                     std::span<const uint8_t>(frame).subspan(
                         net::kFrameHeaderBytes))
                     .ok());
  }
  {
    std::vector<uint8_t> frame = net::EncodeResponseFrame({});
    frame[net::kFrameHeaderBytes + 6] = 0xEE;  // status low byte
    EXPECT_FALSE(net::DecodeResponsePayload(
                     std::span<const uint8_t>(frame).subspan(
                         net::kFrameHeaderBytes))
                     .ok());
  }
}

TEST(WireTest, PeekFrameHandlesPartialAndHostileHeaders) {
  size_t total = 123;
  // Too short for the length prefix: need more bytes, not an error.
  ASSERT_TRUE(net::PeekFrame({}, &total).ok());
  EXPECT_EQ(total, 0u);
  const std::vector<uint8_t> partial = {0x01, 0x02};
  ASSERT_TRUE(net::PeekFrame(partial, &total).ok());
  EXPECT_EQ(total, 0u);

  // Empty payload: a desynchronized peer.
  const std::vector<uint8_t> empty = {0, 0, 0, 0};
  EXPECT_FALSE(net::PeekFrame(empty, &total).ok());

  // Oversized payload announcement.
  std::vector<uint8_t> oversized(net::kFrameHeaderBytes);
  const uint32_t huge = net::kMaxFramePayloadBytes + 1;
  std::memcpy(oversized.data(), &huge, sizeof(huge));
  EXPECT_FALSE(net::PeekFrame(oversized, &total).ok());
}

// ---------------------------------------------------------------------------
// Loopback fixture
// ---------------------------------------------------------------------------

/// A worker parking brake: the server's worker_hook blocks here until the
/// test opens the gate, making overload deterministic instead of a race.
struct WorkerGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entries{0};

  void Hook() {
    entries.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

bool WaitFor(const std::function<bool()>& pred, double timeout_ms = 5000.0) {
  Timer t;
  while (t.ElapsedMillis() < timeout_ms) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// A raw TCP connection speaking frames directly — for pipelining several
/// requests without waiting for responses, and for sending hostile bytes.
struct RawConn {
  int fd = -1;

  ~RawConn() { Close(); }
  void Close() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  bool Connect(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    timeval tv{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool Send(const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadExactly(uint8_t* data, size_t size) {
    size_t off = 0;
    while (off < size) {
      ssize_t n = ::recv(fd, data + off, size - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads and decodes one response frame.
  Result<net::WireResponse> ReadResponse() {
    uint8_t header[net::kFrameHeaderBytes];
    if (!ReadExactly(header, sizeof(header))) {
      return Status::IOError("eof or timeout reading frame header");
    }
    uint32_t len = 0;
    std::memcpy(&len, header, sizeof(len));
    if (len == 0 || len > net::kMaxFramePayloadBytes) {
      return Status::IOError("bad frame length");
    }
    std::vector<uint8_t> payload(len);
    if (!ReadExactly(payload.data(), payload.size())) {
      return Status::IOError("eof or timeout reading frame payload");
    }
    return net::DecodeResponsePayload(payload);
  }

  /// True when the server has closed the connection (clean EOF).
  bool AtEof() {
    uint8_t b;
    return ::recv(fd, &b, 1, 0) == 0;
  }
};

class NetServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticDatasetOptions dopts;
    dopts.num_users = 250;
    dopts.num_topics = 4;
    dopts.num_items = 80;
    dopts.seed = 515;
    auto ds = data::GenerateSyntheticDataset(dopts);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::SyntheticDataset(std::move(ds).ValueOrDie());
    core::InflexBuildOptions bopts;
    bopts.index_points.num_index_points = 20;
    bopts.index_points.num_dirichlet_samples = 2000;
    bopts.seed_list_length = 12;
    bopts.oracle_snapshots = 30;
    auto index =
        core::InflexIndex::Build(dataset_->graph, dataset_->catalog, bopts);
    ASSERT_TRUE(index.ok());
    index_ = std::make_shared<core::InflexIndex>(
        std::move(index).ValueOrDie());
  }
  static void TearDownTestSuite() {
    index_.reset();
    delete dataset_;
    dataset_ = nullptr;
  }

  /// A deterministic mixed workload: varied mixtures, k, strategies and
  /// segment masks (the same shape serving_test uses).
  static std::vector<core::QueryRequest> MakeWorkload(size_t n,
                                                      uint64_t seed) {
    std::vector<uint8_t> even_mask(dataset_->graph.num_nodes(), 0);
    for (size_t v = 0; v < even_mask.size(); v += 2) even_mask[v] = 1;
    Rng rng(seed);
    std::vector<core::QueryRequest> reqs;
    reqs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      core::QueryRequest r;
      if (i % 3 == 2 && i >= 3) {
        r.item = reqs[i / 3].item;  // repeat an earlier mixture
      } else {
        r.item = simplex::TopicDistribution::Create(
                     simplex::SampleUniformSimplex(4, &rng))
                     .ValueOrDie();
      }
      r.k = 3 + (i % 3) * 4;  // 3, 7, 11
      switch (i % 4) {
        case 0:
          r.options.strategy = core::QueryStrategy::kInflex;
          break;
        case 1:
          r.options.strategy = core::QueryStrategy::kExactKnn;
          break;
        case 2:
          r.options.strategy = core::QueryStrategy::kApproxKnnSel;
          break;
        case 3:
          r.options.strategy = core::QueryStrategy::kApproxAd;
          break;
      }
      if (i % 5 == 0) r.options.segment_mask = even_mask;
      reqs.push_back(std::move(r));
    }
    return reqs;
  }

  static core::QueryRequest SimpleRequest() {
    core::QueryRequest r;
    r.item = simplex::TopicDistribution::Create({0.7, 0.1, 0.1, 0.1})
                 .ValueOrDie();
    r.k = 5;
    return r;
  }

  static data::SyntheticDataset* dataset_;
  static std::shared_ptr<core::InflexIndex> index_;
};

data::SyntheticDataset* NetServingTest::dataset_ = nullptr;
std::shared_ptr<core::InflexIndex> NetServingTest::index_;

// ---------------------------------------------------------------------------
// Loopback correctness
// ---------------------------------------------------------------------------

TEST_F(NetServingTest, LoopbackBitIdenticalToInProcess) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  net::InflexServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  // The reference engine runs the same generation entirely in-process.
  core::QueryEngine reference(index_, eopts);

  auto client = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto workload = MakeWorkload(32, 99);
  size_t expect_ok = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    auto wire = client.ValueOrDie().Query(workload[i]);
    ASSERT_TRUE(wire.ok()) << "request " << i << ": "
                           << wire.status().ToString();
    const net::WireResponse& got = wire.ValueOrDie();

    auto want = reference.Query(workload[i]);
    if (!want.ok()) {
      // Some masked requests legitimately fail; the wire must agree.
      EXPECT_EQ(got.status, net::WireStatus::kQueryFailed) << "request " << i;
      continue;
    }
    ASSERT_EQ(got.status, net::WireStatus::kOk) << got.message;
    ++expect_ok;
    EXPECT_EQ(got.seeds, want.ValueOrDie().seeds) << "request " << i;
    EXPECT_EQ(got.epsilon_exact, want.ValueOrDie().epsilon_exact)
        << "request " << i;
    EXPECT_EQ(got.epoch, 0u);
  }
  EXPECT_GT(expect_ok, 0u);
  server.Stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_ok, expect_ok);
  EXPECT_EQ(stats.queries_ok + stats.queries_failed, workload.size());
  EXPECT_EQ(stats.malformed, 0u);
}

TEST_F(NetServingTest, PingReportsEpoch) {
  ThreadPool pool(2);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  net::InflexServer server(&engine);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(client.ok());
  auto resp = client.ValueOrDie().Ping();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.ValueOrDie().status, net::WireStatus::kOk);
  EXPECT_EQ(resp.ValueOrDie().epoch, 0u);
}

TEST_F(NetServingTest, MalformedFramesAnswerThenClose) {
  ThreadPool pool(2);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  net::InflexServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  {
    // Decodable frame envelope, garbage payload (bad magic).
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    std::vector<uint8_t> frame =
        net::EncodeRequestFrame(net::MakeQueryRequest(SimpleRequest()));
    frame[net::kFrameHeaderBytes] ^= 0xFF;
    ASSERT_TRUE(conn.Send(frame));
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.ValueOrDie().status, net::WireStatus::kMalformed);
    EXPECT_TRUE(conn.AtEof());  // the stream is poisoned: server closes
  }
  {
    // Hostile length prefix: an oversized frame announcement.
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    std::vector<uint8_t> header(net::kFrameHeaderBytes);
    const uint32_t huge = net::kMaxFramePayloadBytes + 7;
    std::memcpy(header.data(), &huge, sizeof(huge));
    ASSERT_TRUE(conn.Send(header));
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.ValueOrDie().status, net::WireStatus::kMalformed);
    EXPECT_TRUE(conn.AtEof());
  }
  // The server survives hostile peers: a healthy client still gets answers.
  auto client = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(client.ok());
  auto resp = client.ValueOrDie().Query(SimpleRequest());
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.ValueOrDie().status, net::WireStatus::kOk);
  server.Stop();
  EXPECT_EQ(server.stats().malformed, 2u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST_F(NetServingTest, ShedsWithOverloadedUnderSaturatingBurst) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);

  WorkerGate gate;
  net::InflexServerOptions sopts;
  sopts.num_workers = 2;
  sopts.max_worker_batch = 1;
  sopts.queue_high_watermark = 4;
  sopts.queue_low_watermark = 1;
  sopts.retry_after_ms = 35;
  sopts.worker_hook = [&gate] { gate.Hook(); };
  net::InflexServer server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  const std::vector<uint8_t> frame =
      net::EncodeRequestFrame(net::MakeQueryRequest(SimpleRequest()));

  // Park both workers on one request each.
  ASSERT_TRUE(conn.Send(frame));
  ASSERT_TRUE(WaitFor([&] { return gate.entries.load() == 1; }));
  ASSERT_TRUE(conn.Send(frame));
  ASSERT_TRUE(WaitFor([&] { return gate.entries.load() == 2; }));

  // Fill the queue exactly to the high-water mark...
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(conn.Send(frame));
  ASSERT_TRUE(WaitFor([&] { return server.stats().queue_depth == 4; }));

  // ...so the next request must be shed without blocking.
  ASSERT_TRUE(conn.Send(frame));
  ASSERT_TRUE(WaitFor([&] { return server.stats().shed == 1; }));

  gate.Open();

  // Responses flush in request order: 6 answers, then the shed response.
  for (int i = 0; i < 6; ++i) {
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok()) << "response " << i << ": "
                           << resp.status().ToString();
    EXPECT_EQ(resp.ValueOrDie().status, net::WireStatus::kOk)
        << "response " << i;
  }
  auto shed = conn.ReadResponse();
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.ValueOrDie().status, net::WireStatus::kOverloaded);
  EXPECT_EQ(shed.ValueOrDie().retry_after_ms, 35u);

  // Hysteresis: once drained below the low-water mark, admission resumes.
  ASSERT_TRUE(WaitFor([&] { return server.stats().queue_depth == 0; }));
  ASSERT_TRUE(conn.Send(frame));
  auto after = conn.ReadResponse();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie().status, net::WireStatus::kOk);

  server.Stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_GE(stats.queue_depth_peak, 4u);
  // Overload is mirrored into the engine's serving stats.
  const core::ServingStats estats = engine.cumulative_stats();
  EXPECT_EQ(estats.shed_count, 1u);
  EXPECT_GE(estats.admission_queue_peak, 4u);
}

TEST_F(NetServingTest, DeadlineExpiresInQueue) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);

  WorkerGate gate;
  net::InflexServerOptions sopts;
  sopts.num_workers = 1;
  sopts.max_worker_batch = 4;
  sopts.worker_hook = [&gate] { gate.Hook(); };
  net::InflexServer server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));

  // Request 0 parks the only worker; request 1 waits with a 25 ms budget.
  ASSERT_TRUE(conn.Send(
      net::EncodeRequestFrame(net::MakeQueryRequest(SimpleRequest()))));
  ASSERT_TRUE(WaitFor([&] { return gate.entries.load() == 1; }));
  ASSERT_TRUE(conn.Send(net::EncodeRequestFrame(
      net::MakeQueryRequest(SimpleRequest(), /*deadline_ms=*/25))));
  ASSERT_TRUE(WaitFor([&] { return server.stats().queue_depth == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  gate.Open();

  auto first = conn.ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.ValueOrDie().status, net::WireStatus::kOk);
  auto second = conn.ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.ValueOrDie().status, net::WireStatus::kDeadlineExceeded);
  EXPECT_GE(second.ValueOrDie().queue_ms, 25.0);

  server.Stop();
  EXPECT_EQ(server.stats().deadline_expired, 1u);
  EXPECT_EQ(engine.cumulative_stats().deadline_expired_count, 1u);
}

TEST_F(NetServingTest, SaturatedQueueDrainsExpiredBeforeShedding) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);

  WorkerGate gate;
  net::InflexServerOptions sopts;
  sopts.num_workers = 1;
  sopts.max_worker_batch = 1;
  sopts.queue_high_watermark = 3;
  sopts.queue_low_watermark = 1;
  sopts.worker_hook = [&gate] { gate.Hook(); };
  net::InflexServer server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));

  // Park the worker, then saturate the queue with short-deadline requests.
  ASSERT_TRUE(conn.Send(
      net::EncodeRequestFrame(net::MakeQueryRequest(SimpleRequest()))));
  ASSERT_TRUE(WaitFor([&] { return gate.entries.load() == 1; }));
  const std::vector<uint8_t> doomed = net::EncodeRequestFrame(
      net::MakeQueryRequest(SimpleRequest(), /*deadline_ms=*/20));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(conn.Send(doomed));
  ASSERT_TRUE(WaitFor([&] { return server.stats().queue_depth == 3; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The queue sits at the high-water mark, but its front has expired: the
  // next request reclaims that slot instead of being shed.
  ASSERT_TRUE(conn.Send(
      net::EncodeRequestFrame(net::MakeQueryRequest(SimpleRequest()))));
  ASSERT_TRUE(WaitFor([&] { return server.stats().deadline_expired >= 1; }));
  EXPECT_EQ(server.stats().shed, 0u);
  gate.Open();

  // In order: parked request OK, three doomed requests expired (at
  // admission or at worker pop), the late request OK.
  auto first = conn.ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.ValueOrDie().status, net::WireStatus::kOk);
  for (int i = 0; i < 3; ++i) {
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok()) << "doomed " << i;
    EXPECT_EQ(resp.ValueOrDie().status, net::WireStatus::kDeadlineExceeded)
        << "doomed " << i;
  }
  auto last = conn.ReadResponse();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.ValueOrDie().status, net::WireStatus::kOk);

  server.Stop();
  EXPECT_EQ(server.stats().deadline_expired, 3u);
  EXPECT_EQ(server.stats().shed, 0u);
}

// ---------------------------------------------------------------------------
// Graceful shutdown
// ---------------------------------------------------------------------------

TEST_F(NetServingTest, GracefulShutdownAnswersInFlightRequests) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);

  WorkerGate gate;
  net::InflexServerOptions sopts;
  sopts.num_workers = 1;
  sopts.worker_hook = [&gate] { gate.Hook(); };
  net::InflexServer server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // One request in flight (its worker parked), one idle connection.
  RawConn in_flight;
  ASSERT_TRUE(in_flight.Connect(port));
  ASSERT_TRUE(in_flight.Send(
      net::EncodeRequestFrame(net::MakeQueryRequest(SimpleRequest()))));
  ASSERT_TRUE(WaitFor([&] { return gate.entries.load() == 1; }));
  RawConn idle;
  ASSERT_TRUE(idle.Connect(port));

  std::thread stopper([&server] { server.Stop(); });

  // Draining: new connections are refused...
  ASSERT_TRUE(WaitFor([&] {
    RawConn probe;
    return !probe.Connect(port);
  }));
  // ...and new requests on existing connections get kShuttingDown.
  ASSERT_TRUE(idle.Send(
      net::EncodeRequestFrame(net::MakeQueryRequest(SimpleRequest()))));
  auto rejected = idle.ReadResponse();
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected.ValueOrDie().status, net::WireStatus::kShuttingDown);

  // The in-flight request still completes with a real answer.
  gate.Open();
  auto answered = in_flight.ReadResponse();
  ASSERT_TRUE(answered.ok()) << answered.status().ToString();
  EXPECT_EQ(answered.ValueOrDie().status, net::WireStatus::kOk);
  EXPECT_FALSE(answered.ValueOrDie().seeds.empty());

  stopper.join();
  EXPECT_FALSE(server.running());
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_ok, 1u);
  EXPECT_EQ(stats.rejected_draining, 1u);
}

// ---------------------------------------------------------------------------
// Maintenance plane over the wire
// ---------------------------------------------------------------------------

TEST_F(NetServingTest, DeltaBackpressureMapsToOverloaded) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);

  // Park the maintenance pool so the first admitted delta stays pending.
  ThreadPool maintenance_pool(1);
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  maintenance_pool.Submit([released] { released.wait(); });

  core::IndexMaintainerOptions mopts;
  mopts.admission_threshold = 0.05;
  mopts.oracle_snapshots = 10;
  mopts.pending_high_watermark = 1;
  mopts.pool = &maintenance_pool;
  core::IndexMaintainer maintainer(index_, &dataset_->graph, &engine, mopts);

  net::InflexServerOptions sopts;
  sopts.maintainer = &maintainer;
  sopts.retry_after_ms = 40;
  net::InflexServer server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(client.ok());
  net::InflexClient& c = client.ValueOrDie();

  // Far-corner mixtures: certain admissions for this index.
  auto first = c.SubmitDelta("bp-0", {0.9997, 0.0001, 0.0001, 0.0001});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first.ValueOrDie().status, net::WireStatus::kOk);
  EXPECT_EQ(first.ValueOrDie().delta_outcome,
            static_cast<uint16_t>(core::DeltaOutcome::kAdmitted) + 1);

  // The pipeline now holds pending_high_watermark deltas: back-pressure.
  auto second = c.SubmitDelta("bp-1", {0.0001, 0.9997, 0.0001, 0.0001});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.ValueOrDie().status, net::WireStatus::kOverloaded);
  EXPECT_EQ(second.ValueOrDie().retry_after_ms, 40u);
  EXPECT_EQ(second.ValueOrDie().delta_outcome,
            static_cast<uint16_t>(core::DeltaOutcome::kRetryLater) + 1);
  EXPECT_EQ(maintainer.stats().deferred, 1u);

  // Once the backlog publishes, resubmission is admitted.
  release.set_value();
  maintainer.Drain();
  ASSERT_TRUE(WaitFor([&] { return engine.index_epoch() >= 1; }));
  auto retried = c.SubmitDelta("bp-1", {0.0001, 0.9997, 0.0001, 0.0001});
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.ValueOrDie().status, net::WireStatus::kOk);

  server.Stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.deltas_submitted, 2u);
  EXPECT_EQ(stats.deltas_deferred, 1u);
}

// ---------------------------------------------------------------------------
// Loopback storm (the TSan gate runs this test under -fsanitize=thread)
// ---------------------------------------------------------------------------

TEST_F(NetServingTest, LoopbackStormWithLivePublishingRepliesBitIdentical) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);

  // Keep every published generation so each wire answer can be replayed
  // against the exact index that served it.
  std::mutex generations_mu;
  std::map<uint64_t, std::shared_ptr<const core::InflexIndex>> generations;
  generations[0] = index_;

  core::IndexMaintainerOptions mopts;
  mopts.admission_threshold = 0.05;
  mopts.oracle_snapshots = 10;
  mopts.on_publish = [&](uint64_t epoch,
                         std::shared_ptr<const core::InflexIndex> gen) {
    std::lock_guard<std::mutex> lock(generations_mu);
    generations[epoch] = std::move(gen);
  };
  core::IndexMaintainer maintainer(index_, &dataset_->graph, &engine, mopts);

  net::InflexServerOptions sopts;
  sopts.num_workers = 4;
  sopts.maintainer = &maintainer;
  net::InflexServer server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  constexpr size_t kClients = 6;
  constexpr size_t kPerClient = 25;
  struct Answer {
    core::QueryRequest request;
    uint64_t epoch;
    std::vector<uint32_t> seeds;
  };
  std::vector<std::vector<Answer>> answers(kClients);
  std::atomic<size_t> transport_failures{0};
  std::mutex failures_mu;
  std::string failure_detail;
  auto record_failure = [&](const std::string& detail) {
    transport_failures.fetch_add(1);
    std::lock_guard<std::mutex> lock(failures_mu);
    failure_detail += detail + "\n";
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      auto client = net::InflexClient::Connect("127.0.0.1", port, 20000);
      if (!client.ok()) {
        record_failure("client connect: " + client.status().ToString());
        return;
      }
      // No segment masks in the storm: masked requests can legitimately
      // fail, and failure responses carry a best-effort epoch that the
      // per-generation replay below could not pin down under churn.
      auto workload = MakeWorkload(kPerClient, 1000 + t);
      for (auto& r : workload) r.options.segment_mask.clear();
      for (const core::QueryRequest& request : workload) {
        auto resp = client.ValueOrDie().Query(request);
        if (!resp.ok()) {
          record_failure("query transport: " + resp.status().ToString());
          return;
        }
        if (resp.ValueOrDie().status != net::WireStatus::kOk) {
          record_failure(
              std::string("query status: ") +
              net::WireStatusName(resp.ValueOrDie().status) + " " +
              resp.ValueOrDie().message);
          return;
        }
        answers[t].push_back(Answer{request, resp.ValueOrDie().epoch,
                                    resp.ValueOrDie().seeds});
      }
    });
  }
  // Generation churn under the storm: far-corner deltas through the wire.
  std::thread delta_thread([&] {
    auto client = net::InflexClient::Connect("127.0.0.1", port, 20000);
    if (!client.ok()) {
      record_failure("delta connect: " + client.status().ToString());
      return;
    }
    for (size_t i = 0; i < 6; ++i) {
      const double mass = 0.999 - 1e-4 * static_cast<double>(i);
      std::vector<double> gamma(4, (1.0 - mass) / 3.0);
      gamma[i % 4] = mass;
      auto resp =
          client.ValueOrDie().SubmitDelta("storm-" + std::to_string(i), gamma);
      if (!resp.ok()) {
        record_failure("delta transport: " + resp.status().ToString());
        return;
      }
      if (!resp.ValueOrDie().ok()) {
        record_failure(std::string("delta status: ") +
                       net::WireStatusName(resp.ValueOrDie().status) + " " +
                       resp.ValueOrDie().message);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  for (auto& c : clients) c.join();
  delta_thread.join();
  ASSERT_EQ(transport_failures.load(), 0u) << failure_detail;

  server.Stop();  // drains the maintainer too
  EXPECT_FALSE(server.running());

  // Every answer must be bit-identical to a direct in-process query against
  // the generation that served it.
  size_t replayed = 0;
  for (const auto& per_client : answers) {
    ASSERT_EQ(per_client.size(), kPerClient);
    for (const Answer& a : per_client) {
      std::shared_ptr<const core::InflexIndex> gen;
      {
        std::lock_guard<std::mutex> lock(generations_mu);
        auto it = generations.find(a.epoch);
        ASSERT_NE(it, generations.end()) << "unknown epoch " << a.epoch;
        gen = it->second;
      }
      auto want = gen->Query(a.request.item, a.request.k, a.request.options);
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(a.seeds, want.ValueOrDie().seeds)
          << "epoch " << a.epoch << " replay diverged";
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, kClients * kPerClient);
}

// ---------------------------------------------------------------------------
// Multi-loop IO plane (SO_REUSEPORT sharding)
// ---------------------------------------------------------------------------

// io_threads=4: the kernel shards 8 clients across four poll loops, each
// owning its connections exclusively. Answers must stay bit-identical to an
// in-process reference, responses must stay request-ordered per connection
// (pipelined bursts), and the per-loop counters must sum to the exact
// request totals. Under TSan this is the gate on cross-loop completion
// routing and the per-loop connection ownership model.
TEST_F(NetServingTest, MultiLoopServerShardsConnectionsAndStaysCoherent) {
  ThreadPool pool(4);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  core::QueryEngine reference(index_, eopts);

  net::InflexServerOptions sopts;
  sopts.io_threads = 4;
  sopts.num_workers = 4;
  net::InflexServer server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 24;
  std::atomic<size_t> transport_failures{0};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      auto client = net::InflexClient::Connect("127.0.0.1", port, 20000);
      if (!client.ok()) {
        transport_failures.fetch_add(1);
        return;
      }
      auto workload = MakeWorkload(kPerClient, 7000 + t);
      for (const core::QueryRequest& request : workload) {
        auto resp = client.ValueOrDie().Query(request);
        if (!resp.ok()) {
          transport_failures.fetch_add(1);
          return;
        }
        const net::WireResponse& got = resp.ValueOrDie();
        auto want = reference.Query(request);
        if (!want.ok()) {
          if (got.status != net::WireStatus::kQueryFailed) {
            mismatches.fetch_add(1);
          }
          continue;
        }
        if (got.status != net::WireStatus::kOk ||
            got.seeds != want.ValueOrDie().seeds) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  ASSERT_EQ(transport_failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  server.Stop();
  EXPECT_FALSE(server.running());
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.connections_closed, stats.connections_accepted);
  EXPECT_EQ(stats.requests_received, kClients * kPerClient);
  EXPECT_EQ(stats.responses_sent, stats.requests_received);
  EXPECT_EQ(stats.queries_ok + stats.queries_failed, kClients * kPerClient);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.shed, 0u);
}

// A pipelined burst against a multi-loop server: responses on one connection
// must come back strictly in request order even though completions fan in
// from several engine workers through the owning loop.
TEST_F(NetServingTest, MultiLoopPipelinedBurstStaysOrdered) {
  ThreadPool pool(2);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  core::QueryEngine reference(index_, eopts);

  net::InflexServerOptions sopts;
  sopts.io_threads = 3;
  sopts.num_workers = 3;
  sopts.max_worker_batch = 4;
  net::InflexServer server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  auto workload = MakeWorkload(20, 5150);
  for (auto& r : workload) r.options.segment_mask.clear();
  // Fire all requests before reading anything back.
  for (const core::QueryRequest& request : workload) {
    ASSERT_TRUE(
        conn.Send(net::EncodeRequestFrame(net::MakeQueryRequest(request))));
  }
  // Responses must arrive positionally aligned with the pipelined requests.
  for (size_t i = 0; i < workload.size(); ++i) {
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok()) << "response " << i << ": "
                           << resp.status().ToString();
    auto want = reference.Query(workload[i]);
    ASSERT_TRUE(want.ok()) << "request " << i;
    ASSERT_EQ(resp.ValueOrDie().status, net::WireStatus::kOk)
        << "response " << i << ": " << resp.ValueOrDie().message;
    EXPECT_EQ(resp.ValueOrDie().seeds, want.ValueOrDie().seeds)
        << "response " << i << " out of order or wrong";
  }
  conn.Close();
  server.Stop();
}

// io_threads=1 must behave exactly like the classic single-loop server (no
// SO_REUSEPORT, same port semantics) — the default path taken by every
// existing test, pinned here explicitly against the option plumbing.
TEST_F(NetServingTest, SingleIoThreadRemainsDefault) {
  ThreadPool pool(2);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  net::InflexServerOptions sopts;
  sopts.io_threads = 0;  // 0 clamps to 1
  net::InflexServer server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(client.ok());
  auto resp = client.ValueOrDie().Query(SimpleRequest());
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.ValueOrDie().status, net::WireStatus::kOk);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Multi-tenant routing over the wire (tenant router + per-tenant budgets)
// ---------------------------------------------------------------------------

TEST_F(NetServingTest, V1ClientRoutesToDefaultTenant) {
  ThreadPool pool(4);
  tenant::TenantRegistry registry;
  tenant::TenantOptions topts;
  topts.id = tenant::kDefaultTenantId;
  topts.engine.pool = &pool;
  topts.with_maintainer = false;
  ASSERT_TRUE(registry.CreateTenant(topts, index_, &dataset_->graph).ok());
  topts.id = "acme";
  ASSERT_TRUE(registry.CreateTenant(topts, index_, &dataset_->graph).ok());
  tenant::TenantRouter router(&registry);

  net::InflexServerOptions sopts;
  sopts.router = &router;
  net::InflexServer server(registry.Resolve("")->engine(), sopts);
  ASSERT_TRUE(server.Start().ok());

  // A client that never sets a tenant emits frames byte-identical to a v1
  // client; the router must land them on the default tenant's catalog with
  // answers bit-identical to an in-process reference.
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine reference(index_, eopts);
  auto client = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto workload = MakeWorkload(16, 272);
  for (size_t i = 0; i < workload.size(); ++i) {
    auto wire = client.ValueOrDie().Query(workload[i]);
    ASSERT_TRUE(wire.ok()) << "request " << i;
    auto want = reference.Query(workload[i]);
    if (!want.ok()) {
      EXPECT_EQ(wire.ValueOrDie().status, net::WireStatus::kQueryFailed);
      continue;
    }
    ASSERT_EQ(wire.ValueOrDie().status, net::WireStatus::kOk)
        << wire.ValueOrDie().message;
    EXPECT_EQ(wire.ValueOrDie().seeds, want.ValueOrDie().seeds)
        << "request " << i;
  }
  server.Stop();

  // All traffic landed on the default tenant; the sibling saw none of it.
  EXPECT_GT(registry.Resolve("")->Snapshot().queries_admitted, 0u);
  EXPECT_EQ(registry.Lookup("acme")->Snapshot().queries_admitted, 0u);
  EXPECT_EQ(registry.Lookup("acme")->Snapshot().serving.num_requests, 0u);
}

TEST_F(NetServingTest, SingleTenantServerAcceptsOnlyDefaultTenantName) {
  ThreadPool pool(2);
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine engine(index_, eopts);
  net::InflexServer server(&engine);  // classic single-tenant wiring
  ASSERT_TRUE(server.Start().ok());

  auto client = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(client.ok());
  net::InflexClient& c = client.ValueOrDie();

  // Naming the back-compat catalog explicitly is fine...
  c.set_tenant(tenant::kDefaultTenantId);
  auto ok = c.Query(SimpleRequest());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie().status, net::WireStatus::kOk);

  // ...any other name must be rejected, never silently served from the only
  // catalog — queries, pings, and deltas alike.
  c.set_tenant("acme");
  auto q = c.Query(SimpleRequest());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.ValueOrDie().status, net::WireStatus::kInvalidRequest);
  auto p = c.Ping();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.ValueOrDie().status, net::WireStatus::kInvalidRequest);
  auto d = c.SubmitDelta("x", {0.7, 0.1, 0.1, 0.1});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.ValueOrDie().status, net::WireStatus::kInvalidRequest);
  server.Stop();
}

TEST_F(NetServingTest, UnknownTenantRejectedNotCrossRouted) {
  ThreadPool pool(2);
  tenant::TenantRegistry registry;
  tenant::TenantOptions topts;
  topts.id = tenant::kDefaultTenantId;
  topts.engine.pool = &pool;
  topts.with_maintainer = false;
  ASSERT_TRUE(registry.CreateTenant(topts, index_, &dataset_->graph).ok());
  tenant::TenantRouter router(&registry);
  net::InflexServerOptions sopts;
  sopts.router = &router;
  net::InflexServer server(registry.Resolve("")->engine(), sopts);
  ASSERT_TRUE(server.Start().ok());

  auto client = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(client.ok());
  net::InflexClient& c = client.ValueOrDie();
  c.set_tenant("ghost");
  auto q = c.Query(SimpleRequest());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.ValueOrDie().status, net::WireStatus::kInvalidRequest);
  auto p = c.Ping();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.ValueOrDie().status, net::WireStatus::kInvalidRequest);
  server.Stop();
  // Nothing leaked into the default tenant.
  EXPECT_EQ(registry.Resolve("")->Snapshot().queries_admitted, 0u);
}

TEST_F(NetServingTest, TenantsServeIsolatedCatalogsOverOneServer) {
  ThreadPool pool(4);
  tenant::TenantRegistry registry;
  tenant::TenantOptions topts;
  topts.engine.pool = &pool;
  topts.maintainer.admission_threshold = 0.05;
  topts.maintainer.oracle_snapshots = 10;
  for (const char* id :
       {tenant::kDefaultTenantId, "alpha", "beta"}) {
    topts.id = id;
    ASSERT_TRUE(registry.CreateTenant(topts, index_, &dataset_->graph).ok());
  }
  tenant::TenantRouter router(&registry);
  net::InflexServerOptions sopts;
  sopts.router = &router;
  net::InflexServer server(registry.Resolve("")->engine(), sopts);
  ASSERT_TRUE(server.Start().ok());

  auto alpha = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  auto beta = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(alpha.ok() && beta.ok());
  alpha.ValueOrDie().set_tenant("alpha");
  beta.ValueOrDie().set_tenant("beta");

  // A certain-admission delta into alpha forks its generation sequence;
  // beta (and default) must stay on generation 0.
  auto receipt =
      alpha.ValueOrDie().SubmitDelta("only-alpha", {0.9997, 1e-4, 1e-4, 1e-4});
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  ASSERT_EQ(receipt.ValueOrDie().status, net::WireStatus::kOk);
  EXPECT_EQ(receipt.ValueOrDie().delta_outcome,
            static_cast<uint16_t>(core::DeltaOutcome::kAdmitted) + 1);
  registry.Lookup("alpha")->maintainer()->Drain();

  auto alpha_ping = alpha.ValueOrDie().Ping();
  ASSERT_TRUE(alpha_ping.ok());
  EXPECT_GE(alpha_ping.ValueOrDie().epoch, 1u);
  auto beta_ping = beta.ValueOrDie().Ping();
  ASSERT_TRUE(beta_ping.ok());
  EXPECT_EQ(beta_ping.ValueOrDie().epoch, 0u);

  // Beta's answers still come from the base generation, bit-identical to an
  // in-process reference on the initial index.
  core::QueryEngineOptions eopts;
  eopts.pool = &pool;
  core::QueryEngine reference(index_, eopts);
  const auto workload = MakeWorkload(8, 4242);
  for (const auto& request : workload) {
    auto wire = beta.ValueOrDie().Query(request);
    ASSERT_TRUE(wire.ok());
    auto want = reference.Query(request);
    if (!want.ok()) {
      EXPECT_EQ(wire.ValueOrDie().status, net::WireStatus::kQueryFailed);
      continue;
    }
    ASSERT_EQ(wire.ValueOrDie().status, net::WireStatus::kOk);
    EXPECT_EQ(wire.ValueOrDie().seeds, want.ValueOrDie().seeds);
    EXPECT_EQ(wire.ValueOrDie().epoch, 0u);
  }
  server.Stop();

  const tenant::TenantStats astats = registry.Lookup("alpha")->Snapshot();
  const tenant::TenantStats bstats = registry.Lookup("beta")->Snapshot();
  EXPECT_EQ(astats.deltas_routed, 1u);
  EXPECT_EQ(astats.maintenance.generations_published, 1u);
  EXPECT_EQ(bstats.deltas_routed, 0u);
  EXPECT_EQ(bstats.maintenance.generations_published, 0u);
  EXPECT_GT(bstats.queries_admitted, 0u);
}

TEST_F(NetServingTest, TenantBudgetShedsOverWireWithoutTouchingNeighbors) {
  ThreadPool pool(2);
  // Deterministic token bucket: the router reads this fake clock.
  std::atomic<uint64_t> now_ns{0};
  tenant::TenantRegistry registry;
  tenant::TenantOptions topts;
  topts.id = tenant::kDefaultTenantId;
  topts.engine.pool = &pool;
  topts.with_maintainer = false;
  ASSERT_TRUE(registry.CreateTenant(topts, index_, &dataset_->graph).ok());
  topts.id = "limited";
  topts.budget.query_rate_per_sec = 10.0;
  topts.budget.query_burst = 2.0;
  ASSERT_TRUE(registry.CreateTenant(topts, index_, &dataset_->graph).ok());
  tenant::TenantRouter::Options ropts;
  ropts.clock_ns = [&now_ns] { return now_ns.load(); };
  tenant::TenantRouter router(&registry, ropts);

  net::InflexServerOptions sopts;
  sopts.router = &router;
  sopts.retry_after_ms = 25;
  net::InflexServer server(registry.Resolve("")->engine(), sopts);
  ASSERT_TRUE(server.Start().ok());

  auto limited = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  auto unmetered = net::InflexClient::Connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(limited.ok() && unmetered.ok());
  limited.ValueOrDie().set_tenant("limited");

  // Burst capacity admits exactly two; the third is shed at the tenant
  // layer with kOverloaded + retry-after, before the shared queue.
  for (int i = 0; i < 2; ++i) {
    auto resp = limited.ValueOrDie().Query(SimpleRequest());
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.ValueOrDie().status, net::WireStatus::kOk) << "query " << i;
  }
  auto shed = limited.ValueOrDie().Query(SimpleRequest());
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed.ValueOrDie().status, net::WireStatus::kOverloaded);
  EXPECT_EQ(shed.ValueOrDie().retry_after_ms, 25u);

  // The default tenant's bucket is untouched: a v1 client sails through
  // while the noisy tenant is out of tokens.
  auto ok = unmetered.ValueOrDie().Query(SimpleRequest());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie().status, net::WireStatus::kOk);

  // 100 ms at 10 tokens/s refills exactly one token.
  now_ns.fetch_add(100'000'000ull);
  auto refilled = limited.ValueOrDie().Query(SimpleRequest());
  ASSERT_TRUE(refilled.ok());
  EXPECT_EQ(refilled.ValueOrDie().status, net::WireStatus::kOk);
  auto dry = limited.ValueOrDie().Query(SimpleRequest());
  ASSERT_TRUE(dry.ok());
  EXPECT_EQ(dry.ValueOrDie().status, net::WireStatus::kOverloaded);

  server.Stop();
  const tenant::TenantStats lstats = registry.Lookup("limited")->Snapshot();
  EXPECT_EQ(lstats.queries_admitted, 3u);
  EXPECT_EQ(lstats.queries_shed, 2u);
  // Budget sheds are mirrored into the tenant's own serving stats...
  EXPECT_EQ(lstats.serving.shed_count, 2u);
  // ...and never into a neighbor's.
  EXPECT_EQ(registry.Resolve("")->Snapshot().serving.shed_count, 0u);
  EXPECT_EQ(registry.Resolve("")->Snapshot().queries_shed, 0u);
}

}  // namespace
}  // namespace inflex
