#include "simplex/kl_kernel.h"

#include <cmath>

namespace inflex {
namespace simplex {

double NegativeEntropy(const double* p, size_t n) {
  double s = 0.0;
  for (size_t z = 0; z < n; ++z) {
    if (p[z] > 0.0) s += p[z] * std::log(p[z]);
  }
  return s;
}

void ClampedLog(const double* v, size_t n, double eps, double* out) {
  for (size_t z = 0; z < n; ++z) {
    out[z] = std::log(std::max(v[z], eps));
  }
}

double DotProduct(const double* a, const double* b, size_t n) {
  // Four independent partial sums: the summation order is fixed by the
  // source (bit-identical results at every call site, no -ffast-math
  // needed), yet the chains are independent enough to pipeline/vectorize.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t z = 0;
  for (; z + 4 <= n; z += 4) {
    s0 += a[z] * b[z];
    s1 += a[z + 1] * b[z + 1];
    s2 += a[z + 2] * b[z + 2];
    s3 += a[z + 3] * b[z + 3];
  }
  for (; z < n; ++z) s0 += a[z] * b[z];
  return (s0 + s1) + (s2 + s3);
}

void KlBatch(const double* rows, const double* neg_entropies, size_t m,
             size_t n, const double* log_q, double* out) {
  for (size_t i = 0; i < m; ++i) {
    out[i] = KlFactorized(neg_entropies[i], rows + i * n, log_q, n);
  }
}

void KlQueryContext::Reset(const double* query, size_t n, double eps) {
  dim_ = n;
  q_.assign(query, query + n);
  log_q_.resize(n);
  ClampedLog(query, n, eps, log_q_.data());
  neg_entropy_q_ = NegativeEntropy(query, n);
}

}  // namespace simplex
}  // namespace inflex
