#include "simplex/kl_kernel.h"

#include <cmath>

#include "simplex/kl_kernel_simd.h"

namespace inflex {
namespace simplex {

double NegativeEntropy(const double* p, size_t n) {
  double s = 0.0;
  for (size_t z = 0; z < n; ++z) {
    if (p[z] > 0.0) s += p[z] * std::log(p[z]);
  }
  return s;
}

// The public kernels route through the process-wide dispatch table
// (kl_kernel_simd.h): resolved once from cpuid + INFLEX_FORCE_SCALAR, and
// every variant reproduces the scalar fixed-order reduction bit-for-bit, so
// call sites keep the determinism guarantees they had when these were plain
// scalar loops.

void ClampedLog(const double* v, size_t n, double eps, double* out) {
  ActiveKernelOps().clamped_log(v, n, eps, out);
}

double DotProduct(const double* a, const double* b, size_t n) {
  return ActiveKernelOps().dot(a, b, n);
}

void KlBatch(const double* rows, const double* neg_entropies, size_t m,
             size_t n, const double* log_q, double* out) {
  ActiveKernelOps().kl_batch(rows, neg_entropies, m, n, n, log_q, out);
}

void KlBatch(const double* rows, const double* neg_entropies, size_t m,
             size_t n, size_t row_stride, const double* log_q, double* out) {
  ActiveKernelOps().kl_batch(rows, neg_entropies, m, n, row_stride, log_q,
                             out);
}

void KlBatchTargets(const double* q, double q_neg_entropy,
                    const double* log_targets, size_t m, size_t n,
                    size_t row_stride, double* out) {
  ActiveKernelOps().kl_batch_targets(q, q_neg_entropy, log_targets, m, n,
                                     row_stride, out);
}

void KlQueryContext::Reset(const double* query, size_t n, double eps) {
  dim_ = n;
  q_.assign(query, query + n);
  log_q_.resize(n);
  ClampedLog(query, n, eps, log_q_.data());
  neg_entropy_q_ = NegativeEntropy(query, n);
}

}  // namespace simplex
}  // namespace inflex
