#ifndef INFLEX_SIMPLEX_KL_KERNEL_SIMD_H_
#define INFLEX_SIMPLEX_KL_KERNEL_SIMD_H_

#include <cstddef>

namespace inflex {
namespace simplex {

/// \brief Explicit-SIMD implementations of the KL kernel primitives with
/// runtime ISA dispatch (DESIGN.md §10).
///
/// The contract every variant must honor is *bit-determinism*: the public
/// kernels (simplex/kl_kernel.h) promise the exact floating-point result of
/// the fixed-order 4-accumulator scalar reduction, because cache keys,
/// golden seed lists, and the per-generation bit-identical replay tests all
/// compare doubles across code paths. So the SIMD variants are not free to
/// reduce however is fastest; they must reproduce the scalar reduction
/// bit-for-bit:
///
///  - AVX2 keeps ONE 4×f64 accumulator whose lane j is exactly the scalar
///    partial sum s_j (lane→accumulator mapping: element z accumulates into
///    lane z mod 4), multiplies and adds as separate rounded operations (no
///    FMA — the scalar TU is pinned to -ffp-contract=off for the same
///    reason), finishes the tail scalar into lane 0's sum, and reduces
///    horizontally in the scalar's exact order (s0+s1)+(s2+s3).
///  - AVX-512 may only widen the *multiply* (8 independent products per
///    iteration — rounding of a product does not depend on neighbors); the
///    two 256-bit halves of the product are folded into the same 4-lane
///    accumulator in element order, so the per-lane addition sequence is
///    unchanged. This is why AVX-512 is optional and its win is modest: the
///    deterministic reduction shape caps it at halving the load/multiply
///    work, never the addition chain.
///
/// Selection happens once per process (cpuid + the INFLEX_FORCE_SCALAR
/// escape hatch) through ActiveKernelOps(); tests pin variants explicitly.
struct KlKernelOps {
  /// Variant name as recorded in bench artifacts: "scalar"|"avx2"|"avx512".
  const char* name;
  /// ⟨a, b⟩ with the fixed 4-accumulator reduction order.
  double (*dot)(const double* a, const double* b, size_t n);
  /// out[i] = max(neg_entropies[i] − ⟨rows + i·row_stride, log_q⟩, 0) over m
  /// rows of n entries each (row_stride ≥ n; padding is never read).
  void (*kl_batch)(const double* rows, const double* neg_entropies, size_t m,
                   size_t n, size_t row_stride, const double* log_q,
                   double* out);
  /// The reverse-direction batch used by the bisection screen:
  /// out[i] = max(q_neg_entropy − ⟨q, log_targets + i·row_stride⟩, 0).
  void (*kl_batch_targets)(const double* q, double q_neg_entropy,
                           const double* log_targets, size_t m, size_t n,
                           size_t row_stride, double* out);
  /// out[z] = log(max(v[z], eps)). The clamp vectorizes; the log calls are
  /// the same scalar libm calls in the same order (vector-log libraries are
  /// not bit-compatible with scalar std::log, so they are off the table).
  void (*clamped_log)(const double* v, size_t n, double eps, double* out);
};

/// The portable fixed-order scalar kernels (always available; also the
/// reference the bit-identity tests compare every SIMD variant against).
const KlKernelOps& ScalarKernelOps();

/// The AVX2 variant, or nullptr when the binary was compiled without x86
/// target-attribute support. Callers must additionally check cpuid before
/// invoking (tests use util::DetectCpuSimd()).
const KlKernelOps* Avx2KernelOps();

/// The AVX-512 variant, or nullptr when unavailable at compile time.
const KlKernelOps* Avx512KernelOps();

/// Picks the best variant the executing CPU supports (avx512 > avx2 >
/// scalar), or the scalar kernels when `force_scalar` is set. Pure function
/// of (cpuid, force_scalar): callable repeatedly from tests.
const KlKernelOps& ResolveKernelOps(bool force_scalar);

/// The process-wide variant: resolved once on first use from cpuid and the
/// INFLEX_FORCE_SCALAR environment variable, then immutable.
const KlKernelOps& ActiveKernelOps();

/// Name of the best variant the executing CPU supports, ignoring the
/// escape hatch ("what the hardware has"), for bench artifact host records.
const char* DetectedSimdName();

/// True when INFLEX_FORCE_SCALAR pinned ActiveKernelOps() to scalar.
bool ActiveKernelsForcedScalar();

}  // namespace simplex
}  // namespace inflex

#endif  // INFLEX_SIMPLEX_KL_KERNEL_SIMD_H_
