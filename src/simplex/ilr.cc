#include "simplex/ilr.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace inflex {
namespace simplex {

std::vector<double> IlrTransform(const TopicVector& x, double eps) {
  INFLEX_CHECK_GE(x.size(), 2u);
  const size_t z = x.size();
  std::vector<double> logs(z);
  for (size_t i = 0; i < z; ++i) logs[i] = std::log(std::max(x[i], eps));

  std::vector<double> out(z - 1);
  double log_prefix_sum = 0.0;
  for (size_t j = 1; j < z; ++j) {
    log_prefix_sum += logs[j - 1];
    const double jj = static_cast<double>(j);
    const double log_gmean = log_prefix_sum / jj;
    out[j - 1] = std::sqrt(jj / (jj + 1.0)) * (log_gmean - logs[j]);
  }
  return out;
}

TopicVector IlrInverse(const std::vector<double>& y) {
  const size_t z = y.size() + 1;
  INFLEX_CHECK_GE(z, 2u);
  // Reconstruct the centered log-ratio representation from the balances,
  // then soft-max back onto the simplex.
  std::vector<double> clr(z, 0.0);
  for (size_t j = 1; j < z; ++j) {
    const double jj = static_cast<double>(j);
    // The balance basis vectors u_j = sqrt(j/(j+1))·(1/j,…,1/j,−1,0,…) are
    // orthonormal in CLR space, so clr = Σ_j y_j · u_j.
    const double b = y[j - 1] * std::sqrt(jj / (jj + 1.0));
    for (size_t i = 0; i < j; ++i) clr[i] += b / jj;
    clr[j] -= b;
  }
  // clr is defined up to an additive constant; soft-max normalization removes
  // it.
  const double max_clr = *std::max_element(clr.begin(), clr.end());
  TopicVector x(z);
  double sum = 0.0;
  for (size_t i = 0; i < z; ++i) {
    x[i] = std::exp(clr[i] - max_clr);
    sum += x[i];
  }
  for (double& v : x) v /= sum;
  return x;
}

}  // namespace simplex
}  // namespace inflex
