#include "simplex/divergence.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace inflex {
namespace simplex {

double KlDivergence(const TopicVector& p, const TopicVector& q, double eps) {
  INFLEX_CHECK_EQ(p.size(), q.size());
  double kl = 0.0;
  for (size_t z = 0; z < p.size(); ++z) {
    if (p[z] > 0.0) {
      kl += p[z] * std::log(p[z] / std::max(q[z], eps));
    }
  }
  // Tiny negative values can arise from floating-point cancellation when
  // p ≈ q; clamp to the mathematical lower bound.
  return std::max(kl, 0.0);
}

double KlDivergence(const TopicDistribution& p, const TopicDistribution& q,
                    double eps) {
  return KlDivergence(p.probs(), q.probs(), eps);
}

double SymmetrizedKl(const TopicVector& p, const TopicVector& q, double eps) {
  return 0.5 * (KlDivergence(p, q, eps) + KlDivergence(q, p, eps));
}

double KlMaxBound(double eps) {
  INFLEX_CHECK_GT(eps, 0.0);
  // D_KL(e_i ‖ e_j) with the second argument clamped at eps: 1·log(1/eps).
  return std::log(1.0 / eps);
}

double Entropy(const TopicVector& p) {
  double h = 0.0;
  for (double v : p) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

double SquaredEuclidean(const TopicVector& p, const TopicVector& q) {
  INFLEX_CHECK_EQ(p.size(), q.size());
  double s = 0.0;
  for (size_t z = 0; z < p.size(); ++z) {
    const double d = p[z] - q[z];
    s += d * d;
  }
  return s;
}

}  // namespace simplex
}  // namespace inflex
