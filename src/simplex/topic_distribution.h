#ifndef INFLEX_SIMPLEX_TOPIC_DISTRIBUTION_H_
#define INFLEX_SIMPLEX_TOPIC_DISTRIBUTION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace inflex {
namespace simplex {

/// Raw probability vector over topics; the unchecked currency of the hot
/// paths (KL kernels, cascade simulation).
using TopicVector = std::vector<double>;

/// Tolerance used when validating that a vector sums to 1.
inline constexpr double kSimplexSumTolerance = 1e-6;

/// \brief A validated point on the probability simplex Δ^{Z−1}: the
/// description γ of an item as a distribution over Z topics (TIC model).
///
/// Construction goes through factory functions that enforce simplex
/// membership, so downstream code (divergences, Eq. 1 mixing) can assume
/// well-formed input.
class TopicDistribution {
 public:
  TopicDistribution() = default;

  /// Validates that `probs` is non-empty, finite, non-negative and sums to 1
  /// within kSimplexSumTolerance, then renormalizes exactly.
  static Result<TopicDistribution> Create(TopicVector probs);

  /// Normalizes arbitrary non-negative weights into a distribution.
  /// Fails if the weights are empty, contain negatives/non-finite values, or
  /// sum to zero.
  static Result<TopicDistribution> FromUnnormalized(TopicVector weights);

  /// Uniform distribution over `num_topics` topics (the paper's topic-blind
  /// "offline IC" baseline queries the model with this).
  static TopicDistribution Uniform(size_t num_topics);

  /// Point mass on `topic` (a corner of the simplex).
  static TopicDistribution Delta(size_t num_topics, size_t topic);

  const TopicVector& probs() const { return probs_; }
  size_t num_topics() const { return probs_.size(); }
  double operator[](size_t z) const { return probs_[z]; }
  bool empty() const { return probs_.empty(); }

  /// Blends this distribution toward uniform: (1−λ)·γ + λ·u. Used to keep
  /// query workloads away from the simplex boundary.
  TopicDistribution SmoothedTowardUniform(double lambda) const;

  /// "(0.25, 0.50, ...)" rendering for logs and examples.
  std::string ToString() const;

  bool operator==(const TopicDistribution& other) const {
    return probs_ == other.probs_;
  }

 private:
  explicit TopicDistribution(TopicVector probs) : probs_(std::move(probs)) {}
  TopicVector probs_;
};

}  // namespace simplex
}  // namespace inflex

#endif  // INFLEX_SIMPLEX_TOPIC_DISTRIBUTION_H_
