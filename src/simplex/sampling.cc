#include "simplex/sampling.h"

#include <cmath>

#include "util/check.h"

namespace inflex {
namespace simplex {

TopicVector SampleUniformSimplex(size_t num_topics, Rng* rng) {
  INFLEX_CHECK_GT(num_topics, 0u);
  TopicVector v(num_topics);
  double sum = 0.0;
  for (size_t z = 0; z < num_topics; ++z) {
    // Exponential(1) = Gamma(1,1); −log(1−U) avoids log(0) since U ∈ [0,1).
    v[z] = -std::log1p(-rng->Uniform());
    sum += v[z];
  }
  for (double& x : v) x /= sum;
  return v;
}

std::vector<TopicVector> SampleUniformSimplexMany(size_t num_topics, size_t n,
                                                  Rng* rng) {
  std::vector<TopicVector> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(SampleUniformSimplex(num_topics, rng));
  }
  return out;
}

}  // namespace simplex
}  // namespace inflex
