#ifndef INFLEX_SIMPLEX_KL_KERNEL_H_
#define INFLEX_SIMPLEX_KL_KERNEL_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "simplex/divergence.h"
#include "simplex/topic_distribution.h"

namespace inflex {
namespace simplex {

/// \brief The vectorized right-sided KL kernel layer.
///
/// Every tree search evaluates D_KL(p ‖ q) for one fixed query q against many
/// stored points p (leaf scans, child-center descent, Eq. 5 bisection). The
/// reference KlDivergence() recomputes std::log for both arguments on every
/// call; this layer factorizes
///
///   D_KL(p ‖ q) = Σ_z p_z·log p_z − Σ_z p_z·log(max(q_z, eps))
///               = −H(p) − ⟨p, log q̂⟩
///
/// so that −H(p) is precomputed once per *stored point* (at index build /
/// insert time), log q̂ is computed once per *query* (KlQueryContext), and
/// each remaining evaluation is a single branch- and log-free dot product
/// over contiguous memory. Equivalence with the reference: terms with
/// p_z = 0 vanish in the dot product exactly as the reference skips them,
/// and both sides clamp the result at the mathematical lower bound 0; only
/// floating-point association differs (≤ 1e-12 observed, see DESIGN.md §10).

/// Σ_{z : p_z > 0} p_z·log p_z — the negative Shannon entropy −H(p).
double NegativeEntropy(const double* p, size_t n);

/// out[z] = log(max(v[z], eps)) — the per-query (or per-center) clamped log
/// transform of the factorization. Dispatched (kl_kernel_simd.h): the clamp
/// vectorizes, the log calls stay scalar libm for bit-identity.
void ClampedLog(const double* v, size_t n, double eps, double* out);

/// Plain dot product ⟨a, b⟩ with four independent partial sums in a fixed
/// summation order — deterministic across call sites AND across the
/// scalar/AVX2/AVX-512 variants behind the runtime dispatch
/// (kl_kernel_simd.h): every variant reproduces the same reduction
/// bit-for-bit, so swapping ISAs never moves a cached answer.
double DotProduct(const double* a, const double* b, size_t n);

/// The factorized kernel: max(p_neg_entropy − ⟨p, log_q⟩, 0).
inline double KlFactorized(double p_neg_entropy, const double* p,
                           const double* log_q, size_t n) {
  return std::max(p_neg_entropy - DotProduct(p, log_q, n), 0.0);
}

/// Batch kernel over a row-major matrix: out[i] = KlFactorized over row i of
/// `rows` (m rows × n columns) with its precomputed negative entropy.
void KlBatch(const double* rows, const double* neg_entropies, size_t m,
             size_t n, const double* log_q, double* out);

/// Strided batch kernel for 64-byte-aligned padded row storage: row i starts
/// at rows + i·row_stride (row_stride ≥ n; the padding is never read, so it
/// can hold anything). The dense overload above is row_stride == n.
void KlBatch(const double* rows, const double* neg_entropies, size_t m,
             size_t n, size_t row_stride, const double* log_q, double* out);

/// Reverse-direction batch (the batched bisection screen, DESIGN.md §10):
/// out[i] = max(q_neg_entropy − ⟨q, log_targets + i·row_stride⟩, 0)
///        = D_KL(q ‖ target_i) for targets with precomputed clamped logs.
/// Bit-identical to KlQueryContext::KlOfQueryAgainst per row.
void KlBatchTargets(const double* q, double q_neg_entropy,
                    const double* log_targets, size_t m, size_t n,
                    size_t row_stride, double* out);

/// \brief Per-query evaluation context: owns a copy of the query, its
/// clamped log transform, and its negative entropy. Reset() once per query,
/// then every KL evaluation against the query is one dot product. Reusable
/// across queries without reallocation (buffers are retained), which is what
/// makes the tree searches allocation-free in steady state.
class KlQueryContext {
 public:
  KlQueryContext() = default;

  void Reset(const double* query, size_t n, double eps = kKlSmoothingEps);
  void Reset(const TopicVector& query, double eps = kKlSmoothingEps) {
    Reset(query.data(), query.size(), eps);
  }

  size_t dim() const { return dim_; }
  const double* query() const { return q_.data(); }
  /// log(max(q_z, eps)) — shared by the KL factorization and the geodesic
  /// bisection (both clamp at kKlSmoothingEps).
  const double* log_query() const { return log_q_.data(); }
  /// −H(q), for divergences *of the query* against a stored center.
  double query_neg_entropy() const { return neg_entropy_q_; }

  /// D_KL(p ‖ q) for a stored point with precomputed −H(p).
  double Kl(const double* p, double p_neg_entropy) const {
    return KlFactorized(p_neg_entropy, p, log_q_.data(), dim_);
  }

  /// D_KL(q ‖ t) against a target with precomputed log(max(t_z, eps)).
  double KlOfQueryAgainst(const double* log_target) const {
    return KlFactorized(neg_entropy_q_, q_.data(), log_target, dim_);
  }

  /// Retained buffer capacity in doubles (the query copy + its log).
  size_t retained_capacity() const {
    return q_.capacity() + log_q_.capacity();
  }

  /// Releases the retained buffers when their capacity is far beyond `dim`
  /// (long-lived contexts serve queries of different dimension back to back;
  /// see bbtree::SearchContext::BindTo for the hysteresis contract).
  void ShrinkTo(size_t dim) {
    if (q_.capacity() > std::max<size_t>(4 * dim, 64)) {
      std::vector<double>().swap(q_);
      std::vector<double>().swap(log_q_);
      q_.reserve(dim);
      log_q_.reserve(dim);
      dim_ = 0;
      neg_entropy_q_ = 0.0;
    }
  }

 private:
  std::vector<double> q_;
  std::vector<double> log_q_;
  double neg_entropy_q_ = 0.0;
  size_t dim_ = 0;
};

}  // namespace simplex
}  // namespace inflex

#endif  // INFLEX_SIMPLEX_KL_KERNEL_H_
