#ifndef INFLEX_SIMPLEX_ILR_H_
#define INFLEX_SIMPLEX_ILR_H_

#include <vector>

#include "simplex/topic_distribution.h"
#include "util/status.h"

namespace inflex {
namespace simplex {

/// Isometric log-ratio transform (Egozcue et al. 2003): maps a point of the
/// open simplex Δ^{Z−1} isometrically into R^{Z−1} using the standard
/// Helmert-type balance basis:
///   ilr_j(x) = sqrt(j/(j+1)) · ln( g(x_1..x_j) / x_{j+1} ),  j = 1..Z−1,
/// where g is the geometric mean. The paper uses this mapping (followed by
/// dimensionality reduction) to visualize catalog/sample/index items in
/// Figure 3. Inputs are `eps`-clamped away from the boundary.
std::vector<double> IlrTransform(const TopicVector& x, double eps = 1e-12);

/// Inverse ILR: maps a vector in R^{Z−1} back onto the simplex.
TopicVector IlrInverse(const std::vector<double>& y);

}  // namespace simplex
}  // namespace inflex

#endif  // INFLEX_SIMPLEX_ILR_H_
