#include "simplex/topic_distribution.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace inflex {
namespace simplex {

Result<TopicDistribution> TopicDistribution::Create(TopicVector probs) {
  if (probs.empty()) {
    return Status::InvalidArgument("topic distribution must be non-empty");
  }
  double sum = 0.0;
  for (double p : probs) {
    if (!std::isfinite(p) || p < 0.0) {
      return Status::InvalidArgument(
          "topic distribution entries must be finite and non-negative");
    }
    sum += p;
  }
  if (std::fabs(sum - 1.0) > kSimplexSumTolerance) {
    return Status::InvalidArgument("topic distribution sums to " +
                                   std::to_string(sum) + ", expected 1");
  }
  // Renormalize only when materially off 1 so that already-normalized
  // vectors survive save/load round trips bit-for-bit.
  if (std::fabs(sum - 1.0) > 1e-12) {
    for (double& p : probs) p /= sum;
  }
  return TopicDistribution(std::move(probs));
}

Result<TopicDistribution> TopicDistribution::FromUnnormalized(
    TopicVector weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("topic weights must be non-empty");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(
          "topic weights must be finite and non-negative");
    }
    sum += w;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("topic weights sum to zero");
  }
  for (double& w : weights) w /= sum;
  return TopicDistribution(std::move(weights));
}

TopicDistribution TopicDistribution::Uniform(size_t num_topics) {
  INFLEX_CHECK_GT(num_topics, 0u);
  return TopicDistribution(
      TopicVector(num_topics, 1.0 / static_cast<double>(num_topics)));
}

TopicDistribution TopicDistribution::Delta(size_t num_topics, size_t topic) {
  INFLEX_CHECK_LT(topic, num_topics);
  TopicVector v(num_topics, 0.0);
  v[topic] = 1.0;
  return TopicDistribution(std::move(v));
}

TopicDistribution TopicDistribution::SmoothedTowardUniform(
    double lambda) const {
  INFLEX_CHECK_GE(lambda, 0.0);
  INFLEX_CHECK_LE(lambda, 1.0);
  TopicVector v = probs_;
  const double u = 1.0 / static_cast<double>(v.size());
  for (double& p : v) p = (1.0 - lambda) * p + lambda * u;
  return TopicDistribution(std::move(v));
}

std::string TopicDistribution::ToString() const {
  std::string out = "(";
  char buf[32];
  for (size_t z = 0; z < probs_.size(); ++z) {
    std::snprintf(buf, sizeof(buf), "%.3f", probs_[z]);
    out += buf;
    if (z + 1 < probs_.size()) out += ", ";
  }
  out += ")";
  return out;
}

}  // namespace simplex
}  // namespace inflex
