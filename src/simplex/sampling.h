#ifndef INFLEX_SIMPLEX_SAMPLING_H_
#define INFLEX_SIMPLEX_SAMPLING_H_

#include <cstddef>
#include <vector>

#include "simplex/topic_distribution.h"
#include "util/random.h"

namespace inflex {
namespace simplex {

/// Draws one point uniformly from the simplex Δ^{Z−1} (Dirichlet(1,…,1),
/// via normalized exponentials). Used for the paper's "random perspective"
/// query workload.
TopicVector SampleUniformSimplex(size_t num_topics, Rng* rng);

/// Draws `n` uniform-simplex points.
std::vector<TopicVector> SampleUniformSimplexMany(size_t num_topics, size_t n,
                                                  Rng* rng);

}  // namespace simplex
}  // namespace inflex

#endif  // INFLEX_SIMPLEX_SAMPLING_H_
