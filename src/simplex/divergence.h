#ifndef INFLEX_SIMPLEX_DIVERGENCE_H_
#define INFLEX_SIMPLEX_DIVERGENCE_H_

#include "simplex/topic_distribution.h"

namespace inflex {
namespace simplex {

/// Smoothing factor used to handle zero probabilities when computing KL
/// divergences, following §4.2 of the paper ("a smoothing factor of
/// machine-ε value"). We use 1e-12 rather than true machine epsilon so the
/// resulting KL_max bound stays numerically comfortable.
inline constexpr double kKlSmoothingEps = 1e-12;

/// Kullback-Leibler divergence D_KL(p ‖ q) = Σ_z p_z log(p_z / q_z), with
/// q clamped away from zero by `eps`. Terms with p_z = 0 contribute zero.
/// This is the paper's *right-sided* divergence when q is the query item.
double KlDivergence(const TopicVector& p, const TopicVector& q,
                    double eps = kKlSmoothingEps);

/// Convenience overload on validated distributions.
double KlDivergence(const TopicDistribution& p, const TopicDistribution& q,
                    double eps = kKlSmoothingEps);

/// Symmetrized KL: (D(p‖q) + D(q‖p)) / 2.
double SymmetrizedKl(const TopicVector& p, const TopicVector& q,
                     double eps = kKlSmoothingEps);

/// Empirical upper bound KL_max of the divergence on the ε-smoothed simplex:
/// the divergence between two distinct corners, log(1/eps). Used to scale
/// the importance-weighting function (Eq. 9).
double KlMaxBound(double eps = kKlSmoothingEps);

/// Shannon entropy H(p) = −Σ p_z log p_z (natural log).
double Entropy(const TopicVector& p);

/// Squared Euclidean distance between two equal-length vectors — the other
/// Bregman divergence the clustering layer supports.
double SquaredEuclidean(const TopicVector& p, const TopicVector& q);

}  // namespace simplex
}  // namespace inflex

#endif  // INFLEX_SIMPLEX_DIVERGENCE_H_
