// Explicit-SIMD KL kernels with runtime ISA dispatch. Read the contract in
// kl_kernel_simd.h before touching any loop here: every variant must
// reproduce the scalar fixed-order reduction bit-for-bit, which is enforced
// by kernel_test.cc across dims, tails, eps-clamped zeros, and subnormal
// mixture entries. This translation unit is compiled with -ffp-contract=off
// (see src/simplex/CMakeLists.txt) so neither the scalar loops nor the
// vector tails can be contracted into FMAs behind our back.
#include "simplex/kl_kernel_simd.h"

#include <algorithm>
#include <cmath>

#include "util/cpu_features.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define INFLEX_KERNEL_X86 1
#include <immintrin.h>
#endif

namespace inflex {
namespace simplex {
namespace {

// ------------------------------------------------------------------ scalar --

// The reference reduction every other variant must match bit-for-bit: four
// independent partial sums (element z feeds sum z mod 4), scalar tail into
// s0, horizontal reduction (s0+s1)+(s2+s3).
double DotScalar(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t z = 0;
  for (; z + 4 <= n; z += 4) {
    s0 += a[z] * b[z];
    s1 += a[z + 1] * b[z + 1];
    s2 += a[z + 2] * b[z + 2];
    s3 += a[z + 3] * b[z + 3];
  }
  for (; z < n; ++z) s0 += a[z] * b[z];
  return (s0 + s1) + (s2 + s3);
}

void KlBatchScalar(const double* rows, const double* neg_entropies, size_t m,
                   size_t n, size_t row_stride, const double* log_q,
                   double* out) {
  for (size_t i = 0; i < m; ++i) {
    out[i] =
        std::max(neg_entropies[i] - DotScalar(rows + i * row_stride, log_q, n),
                 0.0);
  }
}

void KlBatchTargetsScalar(const double* q, double q_neg_entropy,
                          const double* log_targets, size_t m, size_t n,
                          size_t row_stride, double* out) {
  for (size_t i = 0; i < m; ++i) {
    out[i] = std::max(
        q_neg_entropy - DotScalar(q, log_targets + i * row_stride, n), 0.0);
  }
}

void ClampedLogScalar(const double* v, size_t n, double eps, double* out) {
  for (size_t z = 0; z < n; ++z) {
    out[z] = std::log(std::max(v[z], eps));
  }
}

constexpr KlKernelOps kScalarOps = {
    "scalar", DotScalar, KlBatchScalar, KlBatchTargetsScalar, ClampedLogScalar,
};

#ifdef INFLEX_KERNEL_X86

// -------------------------------------------------------------------- AVX2 --

// Lane j of `acc` is exactly the scalar partial sum s_j: _mm256_loadu_pd
// reads elements z..z+3 into lanes 0..3, the separate mul/add rounds exactly
// like the scalar `s_j += a*b` (contraction is off), and the loop body's
// iteration order matches the scalar's. loadu vs load is a non-issue on
// every AVX2 CPU when the address is aligned — what alignment buys is that
// the tree's stride-padded rows never straddle cache lines — so the kernels
// accept unaligned callers (e.g. KlQueryContext's buffers) for free.
__attribute__((target("avx2"))) inline __m256d
DotAccumulateAvx2(const double* a, const double* b, size_t n, size_t* z_out) {
  __m256d acc = _mm256_setzero_pd();
  size_t z = 0;
  for (; z + 4 <= n; z += 4) {
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(_mm256_loadu_pd(a + z),
                                      _mm256_loadu_pd(b + z)));
  }
  *z_out = z;
  return acc;
}

// Scalar tail into lane 0's sum, then the scalar's horizontal order.
__attribute__((target("avx2"))) inline double
DotReduceAvx2(__m256d acc, const double* a, const double* b, size_t n,
              size_t z) {
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double s0 = s[0];
  for (; z < n; ++z) s0 += a[z] * b[z];
  return (s0 + s[1]) + (s[2] + s[3]);
}

__attribute__((target("avx2"))) double DotAvx2(const double* a,
                                               const double* b, size_t n) {
  size_t z = 0;
  const __m256d acc = DotAccumulateAvx2(a, b, n, &z);
  return DotReduceAvx2(acc, a, b, n, z);
}

// Finishes four row reductions at once without leaving registers: a 4x4
// transpose turns the row accumulators into per-partial-sum vectors (v_j's
// lane r is row r's s_j), the tail loop feeds element z into every row's s0
// in the scalar's sequence (one broadcast multiply per element), and the
// final adds associate (s0+s1)+(s2+s3) lane-wise. Every lane therefore
// computes exactly the DotReduceAvx2 arithmetic for its row — the epilogue
// is vectorized across ROWS, not reordered within one.
__attribute__((target("avx2"))) inline __m256d
DotReduce4Avx2(__m256d a0, __m256d a1, __m256d a2, __m256d a3,
               const double* r0, const double* r1, const double* r2,
               const double* r3, const double* shared, size_t n, size_t z) {
  const __m256d t0 = _mm256_unpacklo_pd(a0, a1);
  const __m256d t1 = _mm256_unpackhi_pd(a0, a1);
  const __m256d t2 = _mm256_unpacklo_pd(a2, a3);
  const __m256d t3 = _mm256_unpackhi_pd(a2, a3);
  __m256d v0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  const __m256d v1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  const __m256d v2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  const __m256d v3 = _mm256_permute2f128_pd(t1, t3, 0x31);
  for (; z < n; ++z) {
    const __m256d pz = _mm256_set_pd(r3[z], r2[z], r1[z], r0[z]);
    v0 = _mm256_add_pd(v0, _mm256_mul_pd(pz, _mm256_set1_pd(shared[z])));
  }
  return _mm256_add_pd(_mm256_add_pd(v0, v1), _mm256_add_pd(v2, v3));
}

// max(diff, 0.0) with std::max's exact semantics: maxpd returns the SECOND
// operand on ties and NaN, so putting diff second reproduces
// `(diff < 0.0) ? 0.0 : diff` bit-for-bit (including -0.0 and NaN).
__attribute__((target("avx2"))) inline __m256d ClampNonNegAvx2(__m256d diff) {
  return _mm256_max_pd(_mm256_setzero_pd(), diff);
}

// Four rows in flight per outer step. Bit-identity pins each ROW's reduction
// to one dependent add chain (lane j is s_j, nothing else may touch it), so
// a single row can never retire faster than one vector-add latency per four
// elements — at any ISA width. Rows, however, are independent outputs:
// giving four rows four private accumulators hides that latency behind ILP
// and loads the shared query vector once per step instead of once per row.
// Each row still sees exactly the single-row mul/add sequence, so results
// stay bit-identical to DotAvx2 and to the scalar reference.
__attribute__((target("avx2"))) void KlBatchAvx2(
    const double* rows, const double* neg_entropies, size_t m, size_t n,
    size_t row_stride, const double* log_q, double* out) {
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* p0 = rows + i * row_stride;
    const double* p1 = p0 + row_stride;
    const double* p2 = p1 + row_stride;
    const double* p3 = p2 + row_stride;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    size_t z = 0;
    for (; z + 4 <= n; z += 4) {
      const __m256d lq = _mm256_loadu_pd(log_q + z);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(p0 + z), lq));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(p1 + z), lq));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(p2 + z), lq));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(p3 + z), lq));
    }
    const __m256d dots =
        DotReduce4Avx2(a0, a1, a2, a3, p0, p1, p2, p3, log_q, n, z);
    _mm256_storeu_pd(
        out + i,
        ClampNonNegAvx2(_mm256_sub_pd(_mm256_loadu_pd(neg_entropies + i),
                                      dots)));
  }
  for (; i < m; ++i) {
    const double* p = rows + i * row_stride;
    size_t z = 0;
    const __m256d acc = DotAccumulateAvx2(p, log_q, n, &z);
    out[i] =
        std::max(neg_entropies[i] - DotReduceAvx2(acc, p, log_q, n, z), 0.0);
  }
}

__attribute__((target("avx2"))) void KlBatchTargetsAvx2(
    const double* q, double q_neg_entropy, const double* log_targets, size_t m,
    size_t n, size_t row_stride, double* out) {
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* t0 = log_targets + i * row_stride;
    const double* t1 = t0 + row_stride;
    const double* t2 = t1 + row_stride;
    const double* t3 = t2 + row_stride;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    size_t z = 0;
    for (; z + 4 <= n; z += 4) {
      const __m256d qv = _mm256_loadu_pd(q + z);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(qv, _mm256_loadu_pd(t0 + z)));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(qv, _mm256_loadu_pd(t1 + z)));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(qv, _mm256_loadu_pd(t2 + z)));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(qv, _mm256_loadu_pd(t3 + z)));
    }
    const __m256d dots =
        DotReduce4Avx2(a0, a1, a2, a3, t0, t1, t2, t3, q, n, z);
    _mm256_storeu_pd(
        out + i,
        ClampNonNegAvx2(_mm256_sub_pd(_mm256_set1_pd(q_neg_entropy), dots)));
  }
  for (; i < m; ++i) {
    const double* t = log_targets + i * row_stride;
    size_t z = 0;
    const __m256d acc = DotAccumulateAvx2(q, t, n, &z);
    out[i] = std::max(q_neg_entropy - DotReduceAvx2(acc, q, t, n, z), 0.0);
  }
}

// The clamp vectorizes; the log stays the identical scalar libm call per
// element (vector-log is not bit-compatible with std::log). Writing the
// clamped values first lets the log pass read one contiguous buffer.
__attribute__((target("avx2"))) void ClampedLogAvx2(const double* v, size_t n,
                                                    double eps, double* out) {
  const __m256d veps = _mm256_set1_pd(eps);
  size_t z = 0;
  for (; z + 4 <= n; z += 4) {
    _mm256_storeu_pd(out + z, _mm256_max_pd(_mm256_loadu_pd(v + z), veps));
  }
  for (; z < n; ++z) out[z] = std::max(v[z], eps);
  for (size_t i = 0; i < n; ++i) out[i] = std::log(out[i]);
}

constexpr KlKernelOps kAvx2Ops = {
    "avx2", DotAvx2, KlBatchAvx2, KlBatchTargetsAvx2, ClampedLogAvx2,
};

// ------------------------------------------------------------------ AVX512 --

// GCC's _mm512_extractf64x4_pd expands through _mm256_undefined_pd(), which
// trips -Wmaybe-uninitialized as a false positive (GCC PR105593); the
// undefined lanes are fully overwritten by the extract.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// Only the multiply widens to 8 lanes (each product rounds independently);
// both 256-bit halves fold into the SAME 4-lane accumulator in element
// order, so lane j still receives a[z+j]·b[z+j] then a[z+4+j]·b[z+4+j] —
// the scalar addition sequence, unchanged. See the header for why this
// deterministic shape caps the AVX-512 win and makes the variant optional.
__attribute__((target("avx512f,avx2"))) inline __m256d
DotAccumulateAvx512(const double* a, const double* b, size_t n,
                    size_t* z_out) {
  __m256d acc = _mm256_setzero_pd();
  size_t z = 0;
  for (; z + 8 <= n; z += 8) {
    const __m512d prod =
        _mm512_mul_pd(_mm512_loadu_pd(a + z), _mm512_loadu_pd(b + z));
    acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(prod));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(prod, 1));
  }
  for (; z + 4 <= n; z += 4) {
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(_mm256_loadu_pd(a + z),
                                      _mm256_loadu_pd(b + z)));
  }
  *z_out = z;
  return acc;
}

__attribute__((target("avx512f,avx2"))) double DotAvx512(const double* a,
                                                         const double* b,
                                                         size_t n) {
  size_t z = 0;
  const __m256d acc = DotAccumulateAvx512(a, b, n, &z);
  return DotReduceAvx2(acc, a, b, n, z);
}

// Same four-rows-in-flight structure as KlBatchAvx2 (see the comment there),
// with each row stepping 8 elements at a time through the widened multiply +
// ordered lo/hi fold of DotAccumulateAvx512. The two folds per row per step
// are a dependent pair, but across four rows eight folds interleave, so the
// chain latency the contract imposes is again hidden by row-level ILP.
__attribute__((target("avx512f,avx2"))) void KlBatchAvx512(
    const double* rows, const double* neg_entropies, size_t m, size_t n,
    size_t row_stride, const double* log_q, double* out) {
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* p0 = rows + i * row_stride;
    const double* p1 = p0 + row_stride;
    const double* p2 = p1 + row_stride;
    const double* p3 = p2 + row_stride;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    size_t z = 0;
    for (; z + 8 <= n; z += 8) {
      const __m512d lq = _mm512_loadu_pd(log_q + z);
      const __m512d r0 = _mm512_mul_pd(_mm512_loadu_pd(p0 + z), lq);
      const __m512d r1 = _mm512_mul_pd(_mm512_loadu_pd(p1 + z), lq);
      const __m512d r2 = _mm512_mul_pd(_mm512_loadu_pd(p2 + z), lq);
      const __m512d r3 = _mm512_mul_pd(_mm512_loadu_pd(p3 + z), lq);
      a0 = _mm256_add_pd(a0, _mm512_castpd512_pd256(r0));
      a1 = _mm256_add_pd(a1, _mm512_castpd512_pd256(r1));
      a2 = _mm256_add_pd(a2, _mm512_castpd512_pd256(r2));
      a3 = _mm256_add_pd(a3, _mm512_castpd512_pd256(r3));
      a0 = _mm256_add_pd(a0, _mm512_extractf64x4_pd(r0, 1));
      a1 = _mm256_add_pd(a1, _mm512_extractf64x4_pd(r1, 1));
      a2 = _mm256_add_pd(a2, _mm512_extractf64x4_pd(r2, 1));
      a3 = _mm256_add_pd(a3, _mm512_extractf64x4_pd(r3, 1));
    }
    for (; z + 4 <= n; z += 4) {
      const __m256d lq = _mm256_loadu_pd(log_q + z);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(p0 + z), lq));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(p1 + z), lq));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(p2 + z), lq));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(p3 + z), lq));
    }
    const __m256d dots =
        DotReduce4Avx2(a0, a1, a2, a3, p0, p1, p2, p3, log_q, n, z);
    _mm256_storeu_pd(
        out + i,
        ClampNonNegAvx2(_mm256_sub_pd(_mm256_loadu_pd(neg_entropies + i),
                                      dots)));
  }
  for (; i < m; ++i) {
    const double* p = rows + i * row_stride;
    size_t z = 0;
    const __m256d acc = DotAccumulateAvx512(p, log_q, n, &z);
    out[i] =
        std::max(neg_entropies[i] - DotReduceAvx2(acc, p, log_q, n, z), 0.0);
  }
}

__attribute__((target("avx512f,avx2"))) void KlBatchTargetsAvx512(
    const double* q, double q_neg_entropy, const double* log_targets, size_t m,
    size_t n, size_t row_stride, double* out) {
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* t0 = log_targets + i * row_stride;
    const double* t1 = t0 + row_stride;
    const double* t2 = t1 + row_stride;
    const double* t3 = t2 + row_stride;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    size_t z = 0;
    for (; z + 8 <= n; z += 8) {
      const __m512d qv = _mm512_loadu_pd(q + z);
      const __m512d r0 = _mm512_mul_pd(qv, _mm512_loadu_pd(t0 + z));
      const __m512d r1 = _mm512_mul_pd(qv, _mm512_loadu_pd(t1 + z));
      const __m512d r2 = _mm512_mul_pd(qv, _mm512_loadu_pd(t2 + z));
      const __m512d r3 = _mm512_mul_pd(qv, _mm512_loadu_pd(t3 + z));
      a0 = _mm256_add_pd(a0, _mm512_castpd512_pd256(r0));
      a1 = _mm256_add_pd(a1, _mm512_castpd512_pd256(r1));
      a2 = _mm256_add_pd(a2, _mm512_castpd512_pd256(r2));
      a3 = _mm256_add_pd(a3, _mm512_castpd512_pd256(r3));
      a0 = _mm256_add_pd(a0, _mm512_extractf64x4_pd(r0, 1));
      a1 = _mm256_add_pd(a1, _mm512_extractf64x4_pd(r1, 1));
      a2 = _mm256_add_pd(a2, _mm512_extractf64x4_pd(r2, 1));
      a3 = _mm256_add_pd(a3, _mm512_extractf64x4_pd(r3, 1));
    }
    for (; z + 4 <= n; z += 4) {
      const __m256d qv = _mm256_loadu_pd(q + z);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(qv, _mm256_loadu_pd(t0 + z)));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(qv, _mm256_loadu_pd(t1 + z)));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(qv, _mm256_loadu_pd(t2 + z)));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(qv, _mm256_loadu_pd(t3 + z)));
    }
    const __m256d dots =
        DotReduce4Avx2(a0, a1, a2, a3, t0, t1, t2, t3, q, n, z);
    _mm256_storeu_pd(
        out + i,
        ClampNonNegAvx2(_mm256_sub_pd(_mm256_set1_pd(q_neg_entropy), dots)));
  }
  for (; i < m; ++i) {
    const double* t = log_targets + i * row_stride;
    size_t z = 0;
    const __m256d acc = DotAccumulateAvx512(q, t, n, &z);
    out[i] = std::max(q_neg_entropy - DotReduceAvx2(acc, q, t, n, z), 0.0);
  }
}

constexpr KlKernelOps kAvx512Ops = {
    "avx512", DotAvx512, KlBatchAvx512, KlBatchTargetsAvx512, ClampedLogAvx2,
};

#pragma GCC diagnostic pop

#endif  // INFLEX_KERNEL_X86

}  // namespace

const KlKernelOps& ScalarKernelOps() { return kScalarOps; }

const KlKernelOps* Avx2KernelOps() {
#ifdef INFLEX_KERNEL_X86
  return &kAvx2Ops;
#else
  return nullptr;
#endif
}

const KlKernelOps* Avx512KernelOps() {
#ifdef INFLEX_KERNEL_X86
  return &kAvx512Ops;
#else
  return nullptr;
#endif
}

const KlKernelOps& ResolveKernelOps(bool force_scalar) {
  if (force_scalar) return kScalarOps;
  const util::CpuSimdFeatures cpu = util::DetectCpuSimd();
  if (cpu.avx512f && Avx512KernelOps() != nullptr) return *Avx512KernelOps();
  if (cpu.avx2 && Avx2KernelOps() != nullptr) return *Avx2KernelOps();
  return kScalarOps;
}

namespace {
// One-time resolution: cpuid + the INFLEX_FORCE_SCALAR escape hatch, read
// exactly once (magic static). Everything downstream — every search, every
// cache key, every golden seed list — sees one variant for the process
// lifetime, which is what keeps replay bit-identical.
struct ActiveKernels {
  bool forced_scalar = util::ForceScalarFromEnv();
  const KlKernelOps* ops = &ResolveKernelOps(forced_scalar);
};
const ActiveKernels& Active() {
  static const ActiveKernels active;
  return active;
}
}  // namespace

const KlKernelOps& ActiveKernelOps() { return *Active().ops; }

const char* DetectedSimdName() { return ResolveKernelOps(false).name; }

bool ActiveKernelsForcedScalar() { return Active().forced_scalar; }

}  // namespace simplex
}  // namespace inflex
