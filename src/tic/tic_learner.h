#ifndef INFLEX_TIC_TIC_LEARNER_H_
#define INFLEX_TIC_TIC_LEARNER_H_

#include <vector>

#include "graph/topic_graph.h"
#include "simplex/topic_distribution.h"
#include "tic/propagation_log.h"
#include "util/status.h"

namespace inflex {
namespace tic {

/// \brief Options for TIC parameter learning.
struct TicLearnerOptions {
  /// Number of latent topics Z.
  size_t num_topics = 10;
  /// EM sweeps.
  int max_iterations = 25;
  /// Stop when the relative improvement of the expected complete-data
  /// log-likelihood falls below this.
  double tolerance = 1e-5;
  /// Learned per-topic arc probabilities are clamped to [p_min, p_max].
  double p_min = 1e-4;
  double p_max = 0.95;
  /// Symmetric Dirichlet pseudo-count smoothing the item-topic posteriors.
  double gamma_smoothing = 0.02;
  /// Initialize topics by clustering items on their adopter overlap
  /// (random-projection k-means) instead of randomly. EM from a random
  /// start tends to stall near the symmetric fixed point when the log is
  /// weak; adopter clustering breaks the symmetry along the real topical
  /// communities. Disable for the pure random-restart behaviour.
  bool cluster_initialization = true;
  /// Dimension of the random projection used by the clustering init.
  size_t init_projection_dim = 1024;
  /// Keep γ pinned to the initialization for this many sweeps so that the
  /// per-topic probability tables specialize to the initial clusters before
  /// items are allowed to migrate (a brief deterministic annealing).
  int gamma_freeze_iterations = 3;
  uint64_t seed = 13;
};

/// \brief Learned TIC parameters.
struct TicLearnerResult {
  /// γ_i for every item of the log's universe (uniform for items with no
  /// activations — nothing can be learned about them).
  std::vector<simplex::TopicDistribution> item_topics;
  /// Arc-major table of p^z_{u,v} (num_arcs × Z), installable into the graph
  /// via TopicGraph::SetArcTopicProbabilities.
  std::vector<double> arc_topic_probs;
  /// Expected log-likelihood trajectory (one entry per EM sweep).
  std::vector<double> log_likelihood;
  int iterations = 0;
};

/// Learns topic-aware influence probabilities and item-topic distributions
/// from a log of past propagations, in the spirit of Barbieri et al.
/// (ICDM 2012) — the pre-processing stage of Figure 1.
///
/// EM with two latent structures:
///  - the topic of each item: responsibility q_i(z) ∝ γ_i^z · L_i(z), where
///    L_i(z) is the likelihood of item i's observed activations and failed
///    trials under the topic-z influence probabilities;
///  - the influencer credited with each activation: within topic z, a
///    potential influencer u of an activation of v receives credit
///    proportional to p^z_{u,v} among F_{i,v} (standard credit attribution).
///
/// The M-step re-estimates p^z_{u,v} as weighted-credit over weighted-trials
/// and γ_i as the smoothed topic responsibility. Activations with no
/// potential influencer (no earlier-adopting in-neighbor) are treated as
/// external/seed adoptions and contribute no influence evidence.
///
/// `topology` supplies only the arc structure; its probability entries are
/// ignored. Fails when the log is not finalized or user universes disagree.
Result<TicLearnerResult> LearnTicParameters(const graph::TopicGraph& topology,
                                            const PropagationLog& log,
                                            const TicLearnerOptions& options);

}  // namespace tic
}  // namespace inflex

#endif  // INFLEX_TIC_TIC_LEARNER_H_
