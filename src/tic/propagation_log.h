#ifndef INFLEX_TIC_PROPAGATION_LOG_H_
#define INFLEX_TIC_PROPAGATION_LOG_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/topic_graph.h"
#include "util/status.h"

namespace inflex {
namespace tic {

using ItemId = uint32_t;

/// \brief One log record: `user` adopted (acted on) `item` at `timestamp`.
/// In the paper's Flixster experiment this is "user v rated movie i at
/// time t".
struct Activation {
  graph::NodeId user = 0;
  ItemId item = 0;
  double timestamp = 0.0;
};

/// \brief A log of past propagations over a fixed user and item universe —
/// the raw input of the TIC learning phase (Figure 1).
///
/// Internally grouped by item with activations sorted by (timestamp, user),
/// which is the access pattern of the learner (scan an item's adoptions in
/// temporal order). Repeated (user, item) records keep only the earliest
/// timestamp, matching the "first adoption" semantics of the IC family.
class PropagationLog {
 public:
  PropagationLog(size_t num_users, size_t num_items);

  size_t num_users() const { return num_users_; }
  size_t num_items() const { return num_items_; }
  /// Total records (after Finalize: deduplicated).
  size_t size() const { return activations_.size(); }
  bool finalized() const { return finalized_; }

  /// Appends a record. Fails on out-of-range user/item, a non-finite
  /// timestamp, or when already finalized.
  Status Add(graph::NodeId user, ItemId item, double timestamp);

  /// Sorts, groups by item and deduplicates. Must be called exactly once
  /// before any read accessor.
  Status Finalize();

  /// Activations of one item in temporal order. Requires finalized().
  std::span<const Activation> ItemActivations(ItemId item) const;

  /// Number of items with at least one activation. Requires finalized().
  size_t num_active_items() const;

  /// Persists the (finalized) log to a binary artifact.
  Status Save(const std::string& path) const;

  /// Loads a finalized log.
  static Result<PropagationLog> Load(const std::string& path);

 private:
  size_t num_users_;
  size_t num_items_;
  bool finalized_ = false;
  std::vector<Activation> activations_;
  std::vector<uint64_t> item_offsets_;  // size num_items_+1 once finalized
};

}  // namespace tic
}  // namespace inflex

#endif  // INFLEX_TIC_PROPAGATION_LOG_H_
