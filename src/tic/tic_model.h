#ifndef INFLEX_TIC_TIC_MODEL_H_
#define INFLEX_TIC_TIC_MODEL_H_

#include <span>
#include <vector>

#include "graph/topic_graph.h"
#include "im/spread_estimator.h"
#include "simplex/topic_distribution.h"

namespace inflex {
namespace tic {

/// \brief Convenience facade over the TIC propagation model (Barbieri et
/// al., ICDM 2012): a topic-weighted social graph plus the Eq. 1 reduction
/// to item-specific IC instances.
///
/// Holds only a reference to the graph — cheap to copy, but the graph must
/// outlive it.
class TicModel {
 public:
  explicit TicModel(const graph::TopicGraph* g) : graph_(g) {
    INFLEX_CHECK(g != nullptr);
  }

  const graph::TopicGraph& graph() const { return *graph_; }
  size_t num_topics() const { return graph_->num_topics(); }

  /// Materializes the IC instance for `item` (Eq. 1).
  graph::ArcProbabilities InstanceFor(
      const simplex::TopicDistribution& item) const {
    return graph_->ItemArcProbabilities(item);
  }

  /// Monte-Carlo estimate of the expected spread σ(S, γ) of `seeds` when
  /// propagating `item` under TIC — the paper's evaluation measure for
  /// Figure 8 / Tables 2-3.
  Result<im::SpreadEstimate> EstimateSpread(
      const simplex::TopicDistribution& item,
      std::span<const graph::NodeId> seeds,
      const im::MonteCarloOptions& options = {}) const {
    return im::EstimateSpread(*graph_, InstanceFor(item), seeds, options);
  }

 private:
  const graph::TopicGraph* graph_;
};

}  // namespace tic
}  // namespace inflex

#endif  // INFLEX_TIC_TIC_MODEL_H_
