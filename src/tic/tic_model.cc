// TicModel is header-only; this translation unit anchors the library target
// and validates that the header is self-contained.
#include "tic/tic_model.h"
