#include "tic/tic_learner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans.h"

#include "util/check.h"
#include "util/logging.h"
#include "util/random.h"

namespace inflex {
namespace tic {

namespace {

/// One observed activation with its potential influencers: the in-neighbors
/// of the activated user that adopted the same item strictly earlier.
struct SuccessEvent {
  std::vector<graph::ArcId> influencer_arcs;
};

/// Parameter-independent evidence extracted from the log for one item.
struct ItemEvidence {
  std::vector<SuccessEvent> successes;
  /// Arcs (u,v) where u adopted the item but v never did: failed trials.
  std::vector<graph::ArcId> failures;

  bool empty() const { return successes.empty() && failures.empty(); }
};

/// Per-arc totals across all items: how often the arc was a potential
/// influence (credited uniformly among the activation's influencers) and
/// how often it was exposed at all. Drives the EM initialization.
struct ArcCounts {
  std::vector<double> successes;
  std::vector<double> trials;
};

std::vector<ItemEvidence> ExtractEvidence(const graph::TopicGraph& g,
                                          const PropagationLog& log,
                                          ArcCounts* counts) {
  const size_t num_items = log.num_items();
  std::vector<ItemEvidence> evidence(num_items);
  counts->successes.assign(g.num_arcs(), 0.0);
  counts->trials.assign(g.num_arcs(), 0.0);

  // Reusable adoption-time table (NaN = not adopted), reset via touch list.
  std::vector<double> adopted_at(g.num_nodes(),
                                 std::numeric_limits<double>::quiet_NaN());
  std::vector<graph::NodeId> touched;

  for (ItemId i = 0; i < num_items; ++i) {
    const auto acts = log.ItemActivations(i);
    if (acts.size() < 2) continue;  // no influence episode possible
    touched.clear();
    for (const Activation& a : acts) {
      adopted_at[a.user] = a.timestamp;
      touched.push_back(a.user);
    }

    ItemEvidence& ev = evidence[i];
    for (const Activation& a : acts) {
      const graph::NodeId v = a.user;
      SuccessEvent se;
      const auto in_neighbors = g.InNeighbors(v);
      const auto in_arcs = g.InArcIds(v);
      for (size_t idx = 0; idx < in_neighbors.size(); ++idx) {
        const double tu = adopted_at[in_neighbors[idx]];
        if (!std::isnan(tu) && tu < a.timestamp) {
          se.influencer_arcs.push_back(in_arcs[idx]);
        }
      }
      if (!se.influencer_arcs.empty()) {
        const double credit =
            1.0 / static_cast<double>(se.influencer_arcs.size());
        for (graph::ArcId a : se.influencer_arcs) {
          counts->successes[a] += credit;
          counts->trials[a] += 1.0;
        }
        ev.successes.push_back(std::move(se));
      }
      // Failed trials: v adopted, so every out-neighbor that never adopted
      // the item received one unsuccessful attempt from v.
      graph::ArcId arc = g.OutArcBegin(v);
      for (graph::NodeId w : g.OutNeighbors(v)) {
        if (std::isnan(adopted_at[w])) {
          ev.failures.push_back(arc);
          counts->trials[arc] += 1.0;
        }
        ++arc;
      }
    }
    for (graph::NodeId u : touched) {
      adopted_at[u] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  return evidence;
}

// Clusters items by adopter overlap: each item becomes the (normalized) sum
// of random ±1 signature vectors of its adopters; k-means with Z clusters
// over these projections groups items whose cascades ran through the same
// users. Returns one cluster label per item (items with no activations get
// a rotating label).
std::vector<uint32_t> ClusterItemsByAdopters(const PropagationLog& log,
                                             size_t num_users, size_t z_count,
                                             size_t projection_dim, Rng* rng) {
  // Fixed random signature per user.
  std::vector<double> signatures(num_users * projection_dim);
  for (double& v : signatures) v = rng->Bernoulli(0.5) ? 1.0 : -1.0;

  std::vector<std::vector<double>> item_vectors(log.num_items());
  for (ItemId i = 0; i < log.num_items(); ++i) {
    auto& vec = item_vectors[i];
    vec.assign(projection_dim, 0.0);
    const auto acts = log.ItemActivations(i);
    for (const Activation& a : acts) {
      const double* sig = signatures.data() + a.user * projection_dim;
      for (size_t d = 0; d < projection_dim; ++d) vec[d] += sig[d];
    }
    // L2-normalize so popular items don't dominate the geometry.
    double norm = 0.0;
    for (double v : vec) norm += v * v;
    if (norm > 0.0) {
      norm = std::sqrt(norm);
      for (double& v : vec) v /= norm;
    }
  }

  cluster::KMeansOptions kopts;
  kopts.num_clusters = z_count;
  kopts.divergence = cluster::BregmanDivergenceKind::kSquaredEuclidean;
  kopts.max_iterations = 40;
  kopts.seed = rng->Next();
  auto clustering = cluster::KMeansPlusPlus(item_vectors, kopts);
  std::vector<uint32_t> labels(log.num_items());
  if (clustering.ok()) {
    labels = std::move(clustering.ValueOrDie().assignment);
  } else {
    for (ItemId i = 0; i < log.num_items(); ++i) {
      labels[i] = i % static_cast<uint32_t>(z_count);
    }
  }
  return labels;
}

}  // namespace

Result<TicLearnerResult> LearnTicParameters(const graph::TopicGraph& topology,
                                            const PropagationLog& log,
                                            const TicLearnerOptions& options) {
  if (!log.finalized()) {
    return Status::FailedPrecondition("finalize the log before learning");
  }
  if (log.num_users() != topology.num_nodes()) {
    return Status::InvalidArgument(
        "log user universe does not match the graph");
  }
  if (options.num_topics < 1) {
    return Status::InvalidArgument("num_topics must be >= 1");
  }
  if (!(options.p_min > 0.0) || !(options.p_max < 1.0) ||
      options.p_min >= options.p_max) {
    return Status::InvalidArgument("require 0 < p_min < p_max < 1");
  }

  const size_t z_count = options.num_topics;
  const size_t m = topology.num_arcs();
  const size_t num_items = log.num_items();
  Rng rng(options.seed);

  ArcCounts counts;
  const std::vector<ItemEvidence> evidence =
      ExtractEvidence(topology, log, &counts);

  // Parameter tables, arc-major: p[a * Z + z]. Initialize every topic from
  // the arc's empirical (topic-blind) influence rate, perturbed per topic:
  // real influence arcs start strong everywhere and the E-step's item
  // clustering then differentiates the topics. A fully random init tends to
  // stall near the symmetric fixed point on weak-signal logs.
  std::vector<double> p(m * z_count);
  for (size_t a = 0; a < m; ++a) {
    const double rate =
        counts.trials[a] > 0.0
            ? std::clamp(counts.successes[a] / counts.trials[a],
                         options.p_min, options.p_max)
            : 0.05;
    for (size_t z = 0; z < z_count; ++z) {
      p[a * z_count + z] =
          std::clamp(rate * rng.Uniform(0.5, 1.5), options.p_min,
                     options.p_max);
    }
  }

  // Item-topic distributions, item-major: gamma[i * Z + z]. With the
  // clustering init, items start near-one-hot on their adopter cluster —
  // the first M-step then estimates genuinely different per-topic tables
  // (γ uniform would leave EM at the symmetric fixed point). Without it,
  // fall back to a random initialization.
  std::vector<double> gamma(num_items * z_count);
  if (options.cluster_initialization && z_count > 1) {
    const std::vector<uint32_t> labels = ClusterItemsByAdopters(
        log, topology.num_nodes(), z_count,
        std::max<size_t>(options.init_projection_dim, 4), &rng);
    constexpr double kLabelMass = 0.9;
    const double rest = (1.0 - kLabelMass) / static_cast<double>(z_count - 1);
    for (ItemId i = 0; i < num_items; ++i) {
      for (size_t z = 0; z < z_count; ++z) {
        gamma[i * z_count + z] = z == labels[i] ? kLabelMass : rest;
      }
    }
  } else {
    for (ItemId i = 0; i < num_items; ++i) {
      double sum = 0.0;
      for (size_t z = 0; z < z_count; ++z) {
        gamma[i * z_count + z] = 0.5 + rng.Uniform();
        sum += gamma[i * z_count + z];
      }
      for (size_t z = 0; z < z_count; ++z) gamma[i * z_count + z] /= sum;
    }
  }

  TicLearnerResult result;
  std::vector<double> numer(m * z_count), denom(m * z_count);
  std::vector<double> loglik_z(z_count), resp(z_count);
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(numer.begin(), numer.end(), 0.0);
    std::fill(denom.begin(), denom.end(), 0.0);
    double total_ll = 0.0;

    for (ItemId i = 0; i < num_items; ++i) {
      const ItemEvidence& ev = evidence[i];
      if (ev.empty()) continue;

      // E-step (topic responsibilities): q_i(z) ∝ γ_i^z · L_i(z).
      for (size_t z = 0; z < z_count; ++z) {
        double ll = 0.0;
        for (const SuccessEvent& se : ev.successes) {
          double log_miss = 0.0;
          for (graph::ArcId a : se.influencer_arcs) {
            log_miss += std::log1p(-p[static_cast<size_t>(a) * z_count + z]);
          }
          // P(v activated) = 1 − Π (1 − p); log via -expm1 for stability.
          ll += std::log(std::max(-std::expm1(log_miss), 1e-300));
        }
        for (graph::ArcId a : ev.failures) {
          ll += std::log1p(-p[static_cast<size_t>(a) * z_count + z]);
        }
        loglik_z[z] = ll + std::log(std::max(gamma[i * z_count + z], 1e-300));
      }
      const double max_l = *std::max_element(loglik_z.begin(), loglik_z.end());
      double norm = 0.0;
      for (size_t z = 0; z < z_count; ++z) {
        resp[z] = std::exp(loglik_z[z] - max_l);
        norm += resp[z];
      }
      total_ll += max_l + std::log(norm);
      for (size_t z = 0; z < z_count; ++z) resp[z] /= norm;

      // Accumulate M-step sufficient statistics: per topic, credit each
      // activation's influencers proportionally to their success
      // probability; every trial (successful or failed) adds exposure.
      for (size_t z = 0; z < z_count; ++z) {
        const double qz = resp[z];
        if (qz < 1e-12) continue;
        for (const SuccessEvent& se : ev.successes) {
          double log_miss = 0.0;
          for (graph::ArcId a : se.influencer_arcs) {
            log_miss += std::log1p(-p[static_cast<size_t>(a) * z_count + z]);
          }
          const double p_act = std::max(-std::expm1(log_miss), 1e-12);
          for (graph::ArcId a : se.influencer_arcs) {
            const size_t idx = static_cast<size_t>(a) * z_count + z;
            numer[idx] += qz * (p[idx] / p_act);
            denom[idx] += qz;
          }
        }
        for (graph::ArcId a : ev.failures) {
          denom[static_cast<size_t>(a) * z_count + z] += qz;
        }
      }

      // M-step for γ_i: smoothed responsibilities (pinned during the
      // annealing phase so the topic tables specialize first).
      if (iter >= options.gamma_freeze_iterations) {
        double gsum = 0.0;
        for (size_t z = 0; z < z_count; ++z) {
          gamma[i * z_count + z] = resp[z] + options.gamma_smoothing;
          gsum += gamma[i * z_count + z];
        }
        for (size_t z = 0; z < z_count; ++z) gamma[i * z_count + z] /= gsum;
      }
    }

    // M-step for the influence probabilities.
    for (size_t idx = 0; idx < m * z_count; ++idx) {
      if (denom[idx] > 0.0) {
        p[idx] = std::clamp(numer[idx] / denom[idx], options.p_min,
                            options.p_max);
      }
      // Arcs with no exposure keep their current value: the log carries no
      // evidence about them.
    }

    result.log_likelihood.push_back(total_ll);
    result.iterations = iter + 1;
    if (iter > 0 &&
        std::fabs(total_ll - prev_ll) <=
            options.tolerance * (std::fabs(prev_ll) + 1.0)) {
      break;
    }
    prev_ll = total_ll;
  }

  result.arc_topic_probs = std::move(p);
  result.item_topics.reserve(num_items);
  for (ItemId i = 0; i < num_items; ++i) {
    simplex::TopicVector gi(gamma.begin() + i * z_count,
                            gamma.begin() + (i + 1) * z_count);
    auto td = simplex::TopicDistribution::Create(std::move(gi));
    if (!td.ok()) return td.status();
    result.item_topics.push_back(std::move(td).ValueOrDie());
  }
  return result;
}

}  // namespace tic
}  // namespace inflex
