#include "tic/propagation_log.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/serialize.h"

namespace inflex {
namespace tic {

namespace {
constexpr uint32_t kLogMagic = 0x494e4c47;  // "INLG"
constexpr uint32_t kLogVersion = 1;
}  // namespace

PropagationLog::PropagationLog(size_t num_users, size_t num_items)
    : num_users_(num_users), num_items_(num_items) {
  INFLEX_CHECK_GT(num_users, 0u);
  INFLEX_CHECK_GT(num_items, 0u);
}

Status PropagationLog::Add(graph::NodeId user, ItemId item, double timestamp) {
  if (finalized_) {
    return Status::FailedPrecondition("log already finalized");
  }
  if (user >= num_users_) return Status::OutOfRange("user id out of range");
  if (item >= num_items_) return Status::OutOfRange("item id out of range");
  if (!std::isfinite(timestamp)) {
    return Status::InvalidArgument("timestamp must be finite");
  }
  activations_.push_back(Activation{user, item, timestamp});
  return Status::OK();
}

Status PropagationLog::Finalize() {
  if (finalized_) return Status::FailedPrecondition("log already finalized");
  std::sort(activations_.begin(), activations_.end(),
            [](const Activation& a, const Activation& b) {
              if (a.item != b.item) return a.item < b.item;
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.user < b.user;
            });
  // Keep only each user's earliest activation per item.
  std::vector<Activation> dedup;
  dedup.reserve(activations_.size());
  std::vector<char> seen(num_users_, 0);
  size_t i = 0;
  while (i < activations_.size()) {
    const ItemId item = activations_[i].item;
    size_t j = i;
    while (j < activations_.size() && activations_[j].item == item) ++j;
    for (size_t k = i; k < j; ++k) {
      if (!seen[activations_[k].user]) {
        seen[activations_[k].user] = 1;
        dedup.push_back(activations_[k]);
      }
    }
    for (size_t k = i; k < j; ++k) seen[activations_[k].user] = 0;
    i = j;
  }
  activations_ = std::move(dedup);

  item_offsets_.assign(num_items_ + 1, 0);
  for (const Activation& a : activations_) item_offsets_[a.item + 1]++;
  for (size_t it = 0; it < num_items_; ++it) {
    item_offsets_[it + 1] += item_offsets_[it];
  }
  finalized_ = true;
  return Status::OK();
}

std::span<const Activation> PropagationLog::ItemActivations(
    ItemId item) const {
  INFLEX_CHECK(finalized_);
  INFLEX_CHECK_LT(item, num_items_);
  return {activations_.data() + item_offsets_[item],
          static_cast<size_t>(item_offsets_[item + 1] - item_offsets_[item])};
}

size_t PropagationLog::num_active_items() const {
  INFLEX_CHECK(finalized_);
  size_t n = 0;
  for (ItemId i = 0; i < num_items_; ++i) {
    if (item_offsets_[i + 1] > item_offsets_[i]) ++n;
  }
  return n;
}

Status PropagationLog::Save(const std::string& path) const {
  if (!finalized_) {
    return Status::FailedPrecondition("finalize the log before saving");
  }
  INFLEX_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::Open(path));
  INFLEX_RETURN_NOT_OK(WriteHeader(&w, kLogMagic, kLogVersion));
  INFLEX_RETURN_NOT_OK(w.WritePod<uint64_t>(num_users_));
  INFLEX_RETURN_NOT_OK(w.WritePod<uint64_t>(num_items_));
  INFLEX_RETURN_NOT_OK(w.WriteVector(activations_));
  INFLEX_RETURN_NOT_OK(w.WriteVector(item_offsets_));
  return w.Close();
}

Result<PropagationLog> PropagationLog::Load(const std::string& path) {
  INFLEX_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  INFLEX_RETURN_NOT_OK(CheckHeader(&r, kLogMagic, kLogVersion));
  uint64_t users = 0, items = 0;
  INFLEX_RETURN_NOT_OK(r.ReadPod(&users));
  INFLEX_RETURN_NOT_OK(r.ReadPod(&items));
  if (users == 0 || items == 0) {
    return Status::IOError("corrupt propagation log header");
  }
  PropagationLog log(users, items);
  INFLEX_RETURN_NOT_OK(r.ReadVector(&log.activations_));
  INFLEX_RETURN_NOT_OK(r.ReadVector(&log.item_offsets_));
  if (log.item_offsets_.size() != items + 1 ||
      (items > 0 && log.item_offsets_.back() != log.activations_.size())) {
    return Status::IOError("inconsistent propagation log artifact");
  }
  log.finalized_ = true;
  return log;
}

}  // namespace tic
}  // namespace inflex
