#include "im/greedy.h"

#include <limits>
#include <memory>

namespace inflex {
namespace im {

Result<size_t> ValidateCandidateMask(const SeedSelectionOptions& options,
                                     size_t num_nodes, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (options.candidate_mask.empty()) {
    if (k > num_nodes) {
      return Status::InvalidArgument("k exceeds the number of nodes");
    }
    return num_nodes;
  }
  if (options.candidate_mask.size() != num_nodes) {
    return Status::InvalidArgument(
        "candidate mask must have one entry per node");
  }
  size_t eligible = 0;
  for (uint8_t c : options.candidate_mask) eligible += c != 0;
  if (k > eligible) {
    return Status::InvalidArgument(
        "k exceeds the number of eligible candidate seeds");
  }
  return eligible;
}

Result<SeedSelectionResult> SelectSeedsGreedy(
    SnapshotSpreadOracle* oracle, size_t k,
    const SeedSelectionOptions& options) {
  const size_t n = oracle->num_nodes();
  INFLEX_RETURN_NOT_OK(ValidateCandidateMask(options, n, k).status());

  oracle->ResetSeeds();
  SeedSelectionResult result;
  result.seeds.reserve(k);
  result.marginal_gains.reserve(k);

  std::vector<double> gains(n);
  std::vector<uint8_t> selected(n, 0);
  auto ws = oracle->MakeWorkspace();

  for (size_t iter = 0; iter < k; ++iter) {
    if (iter == 0 && options.parallel_first_iteration && n >= 256) {
      ParallelFor(
          0, n,
          [&](size_t v) {
            thread_local std::unique_ptr<SnapshotSpreadOracle::Workspace> tws;
            if (tws == nullptr) {
              tws = std::make_unique<SnapshotSpreadOracle::Workspace>(
                  oracle->MakeWorkspace());
            }
            gains[v] =
                oracle->MarginalGain(static_cast<graph::NodeId>(v), tws.get());
          },
          options.pool);
      result.num_evaluations += n;
    } else {
      for (size_t v = 0; v < n; ++v) {
        if (selected[v] || !IsCandidate(options, v)) continue;
        gains[v] = oracle->MarginalGain(static_cast<graph::NodeId>(v), &ws);
        ++result.num_evaluations;
      }
    }
    double best_gain = -std::numeric_limits<double>::infinity();
    size_t best_v = n;
    for (size_t v = 0; v < n; ++v) {
      if (selected[v] || !IsCandidate(options, v)) continue;
      if (gains[v] > best_gain) {
        best_gain = gains[v];
        best_v = v;
      }
    }
    selected[best_v] = 1;
    oracle->CommitSeed(static_cast<graph::NodeId>(best_v), &ws);
    result.seeds.push_back(static_cast<graph::NodeId>(best_v));
    result.marginal_gains.push_back(best_gain);
  }
  result.expected_spread = oracle->CurrentSpread();
  return result;
}

}  // namespace im
}  // namespace inflex
