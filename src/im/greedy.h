#ifndef INFLEX_IM_GREEDY_H_
#define INFLEX_IM_GREEDY_H_

#include "im/snapshot_oracle.h"
#include "im/spread_estimator.h"
#include "util/thread_pool.h"

namespace inflex {
namespace im {

/// \brief Shared knobs for the seed-selection algorithms.
struct SeedSelectionOptions {
  /// Evaluate the first iteration's n marginal gains across the thread pool.
  bool parallel_first_iteration = true;
  ThreadPool* pool = nullptr;  // nullptr: the process-global pool
  /// Optional seed-candidate restriction (segment-targeted campaigns): when
  /// non-empty, must have one entry per node and only nodes with a non-zero
  /// entry are eligible as seeds. Influence still propagates through
  /// everyone — only WHO can be targeted is restricted.
  std::vector<uint8_t> candidate_mask;
};

/// Validates a candidate mask against the oracle size and k; returns the
/// number of eligible candidates (num_nodes when the mask is empty).
Result<size_t> ValidateCandidateMask(const SeedSelectionOptions& options,
                                     size_t num_nodes, size_t k);

/// True when node v may be chosen as a seed under `options`.
inline bool IsCandidate(const SeedSelectionOptions& options, size_t v) {
  return options.candidate_mask.empty() || options.candidate_mask[v] != 0;
}

/// Plain greedy (Kempe et al. 2003): k iterations, each recomputing the
/// marginal gain of every node. O(n·k) oracle evaluations — the reference
/// implementation used to validate CELF/CELF++ (all three must return the
/// same seed sequence on the same oracle, up to gain ties).
///
/// The oracle's committed seed set is reset first and holds the selected
/// seeds afterwards. Fails when k is 0 or exceeds the node count.
Result<SeedSelectionResult> SelectSeedsGreedy(
    SnapshotSpreadOracle* oracle, size_t k,
    const SeedSelectionOptions& options = {});

}  // namespace im
}  // namespace inflex

#endif  // INFLEX_IM_GREEDY_H_
