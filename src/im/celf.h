#ifndef INFLEX_IM_CELF_H_
#define INFLEX_IM_CELF_H_

#include "im/greedy.h"

namespace inflex {
namespace im {

/// CELF (Leskovec et al., KDD 2007): lazy-forward greedy. Keeps stale
/// marginal gains in a max-heap; a node is only re-evaluated when it surfaces
/// at the top, exploiting submodularity (gains never grow as S grows — exact
/// under the snapshot oracle). Produces the same seed sequence as plain
/// greedy with far fewer oracle evaluations.
Result<SeedSelectionResult> SelectSeedsCelf(
    SnapshotSpreadOracle* oracle, size_t k,
    const SeedSelectionOptions& options = {});

}  // namespace im
}  // namespace inflex

#endif  // INFLEX_IM_CELF_H_
