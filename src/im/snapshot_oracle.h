#ifndef INFLEX_IM_SNAPSHOT_ORACLE_H_
#define INFLEX_IM_SNAPSHOT_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/topic_graph.h"
#include "im/spread_estimator.h"
#include "util/status.h"

namespace inflex {
namespace im {

/// \brief Live-edge snapshot spread oracle (Kempe et al.'s equivalence):
/// pre-samples W deterministic subgraphs by keeping each arc with its
/// influence probability; then σ(S) ≈ (1/W) Σ_g |reachable_g(S)|.
///
/// Supports the incremental protocol greedy/CELF/CELF++ need:
///  - MarginalGain(v): expected newly reached nodes if v joined the current
///    seed set, computed by BFS per snapshot skipping already-covered nodes;
///  - CommitSeed(v): permanently covers v's incremental reach;
/// Both are deterministic given the sampling seed, which makes lazy
/// (CELF-style) evaluation sound: a node's cached gain can only shrink as
/// the seed set grows (submodularity holds exactly per snapshot).
class SnapshotSpreadOracle {
 public:
  struct Options {
    size_t num_snapshots = 100;
    uint64_t seed = 7;
  };

  /// Samples the W snapshots of the IC instance. Fails on a probability
  /// vector of the wrong size or zero snapshots.
  static Result<SnapshotSpreadOracle> Create(
      const graph::TopicGraph& g, const graph::ArcProbabilities& arc_probs,
      const Options& options);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_snapshots() const { return num_snapshots_; }

  /// \brief Per-caller scratch (BFS stamps + frontier); one per thread when
  /// evaluating marginal gains concurrently.
  class Workspace {
   public:
    explicit Workspace(size_t num_nodes)
        : stamps_(num_nodes, 0), extra_stamps_(num_nodes, 0) {
      frontier_.reserve(64);
    }

   private:
    friend class SnapshotSpreadOracle;
    std::vector<uint32_t> stamps_;
    std::vector<uint32_t> extra_stamps_;  // marks an auxiliary covered set
    std::vector<graph::NodeId> frontier_;
    uint32_t epoch_ = 0;
    uint32_t extra_epoch_ = 0;
  };

  Workspace MakeWorkspace() const { return Workspace(num_nodes_); }

  /// Average number of nodes v would newly reach across snapshots, given the
  /// currently committed seeds. Thread-safe w.r.t. other MarginalGain calls.
  double MarginalGain(graph::NodeId v, Workspace* ws) const;

  /// Marginal gains of `v` with respect to (a) the committed seeds — mg1 —
  /// and (b) the committed seeds plus `other` — mg2 — in one evaluation.
  /// This is the pair CELF++ maintains (gain w.r.t. S and w.r.t.
  /// S ∪ {prev_best}).
  void MarginalGainPair(graph::NodeId v, graph::NodeId other, Workspace* ws,
                        double* mg1, double* mg2) const;

  /// Commits `v` as a seed: its incremental reach becomes covered in every
  /// snapshot. Returns the realized marginal gain. Not thread-safe.
  double CommitSeed(graph::NodeId v, Workspace* ws);

  /// Spread estimate of the committed seed set.
  double CurrentSpread() const {
    return static_cast<double>(total_covered_) /
           static_cast<double>(num_snapshots_);
  }

  /// Clears the committed seed set (snapshots are kept).
  void ResetSeeds();

  /// One-shot spread of an arbitrary seed set under the snapshots (ignores
  /// committed seeds). Used by tests to cross-check the estimator.
  double SpreadOf(std::span<const graph::NodeId> seeds, Workspace* ws) const;

 private:
  SnapshotSpreadOracle() = default;

  // Snapshot adjacency, concatenated: snapshot g's arcs of node u live in
  // targets_[offsets_[g * (n+1) + u] .. offsets_[g * (n+1) + u + 1]).
  size_t num_nodes_ = 0;
  size_t num_snapshots_ = 0;
  std::vector<uint64_t> offsets_;
  std::vector<graph::NodeId> targets_;

  // covered_[g * n + v] != 0 iff v is reached by committed seeds in snapshot g.
  std::vector<uint8_t> covered_;
  uint64_t total_covered_ = 0;
};

}  // namespace im
}  // namespace inflex

#endif  // INFLEX_IM_SNAPSHOT_ORACLE_H_
