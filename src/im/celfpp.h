#ifndef INFLEX_IM_CELFPP_H_
#define INFLEX_IM_CELFPP_H_

#include "im/greedy.h"

namespace inflex {
namespace im {

/// CELF++ (Goyal, Lu & Lakshmanan, WWW 2011) — the algorithm the paper uses
/// for every offline influence-maximization computation.
///
/// On top of CELF's lazy forwarding, each node u additionally caches
/// mg2 = Δ_u(S ∪ {prev_best}), the marginal gain w.r.t. the seed set extended
/// by the best node seen in the iteration when u was last evaluated. If that
/// node (prev_best) does become the next seed, u's new gain is mg2 — already
/// known, no oracle call needed.
///
/// Returns the identical seed sequence as greedy/CELF on the same oracle
/// (modulo exact gain ties), with the fewest oracle evaluations of the three.
Result<SeedSelectionResult> SelectSeedsCelfPp(
    SnapshotSpreadOracle* oracle, size_t k,
    const SeedSelectionOptions& options = {});

}  // namespace im
}  // namespace inflex

#endif  // INFLEX_IM_CELFPP_H_
