#ifndef INFLEX_IM_SPREAD_ESTIMATOR_H_
#define INFLEX_IM_SPREAD_ESTIMATOR_H_

#include <span>
#include <vector>

#include "graph/topic_graph.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace inflex {
namespace im {

/// \brief A Monte-Carlo estimate of the expected spread σ(S).
struct SpreadEstimate {
  double mean = 0.0;
  /// Standard error of the mean across simulations.
  double std_error = 0.0;
  size_t num_simulations = 0;
};

/// \brief Options for Monte-Carlo spread estimation.
struct MonteCarloOptions {
  size_t num_simulations = 1000;
  uint64_t seed = 42;
  /// Simulations are sharded across the pool when non-serial; pass nullptr
  /// to use the process-global pool, or set `parallel=false` for strictly
  /// serial execution (bit-reproducible independent of thread count either
  /// way: each simulation derives its RNG from its index).
  bool parallel = true;
  ThreadPool* pool = nullptr;
};

/// Estimates σ(S) on an IC instance by averaging independent cascade
/// realizations. This is the paper's evaluation primitive ("running Monte
/// Carlo simulations employing the TIC propagation model" — the TIC layer
/// materializes `arc_probs` from an item first). Fails on out-of-range seeds.
Result<SpreadEstimate> EstimateSpread(const graph::TopicGraph& g,
                                      const graph::ArcProbabilities& arc_probs,
                                      std::span<const graph::NodeId> seeds,
                                      const MonteCarloOptions& options = {});

/// \brief Output of any seed-selection algorithm. `seeds` is the ranked list
/// (selection order), which is exactly what the rank-aggregation layer
/// consumes — the paper stresses that "seed sets" are really ranked lists.
struct SeedSelectionResult {
  std::vector<graph::NodeId> seeds;
  /// Marginal gain recorded when each seed was selected (same order).
  std::vector<double> marginal_gains;
  /// Estimated spread of the full seed set under the selection oracle.
  double expected_spread = 0.0;
  /// Number of marginal-gain oracle evaluations performed (the classic
  /// efficiency metric for greedy vs CELF vs CELF++).
  size_t num_evaluations = 0;
};

}  // namespace im
}  // namespace inflex

#endif  // INFLEX_IM_SPREAD_ESTIMATOR_H_
