#include "im/celf.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

namespace inflex {
namespace im {

namespace {

struct HeapEntry {
  double gain;
  graph::NodeId node;
  uint32_t flag;  // |S| at the time `gain` was computed

  bool operator<(const HeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return node > other.node;  // deterministic tie-break: smaller node first
  }
};

}  // namespace

Result<SeedSelectionResult> SelectSeedsCelf(
    SnapshotSpreadOracle* oracle, size_t k,
    const SeedSelectionOptions& options) {
  const size_t n = oracle->num_nodes();
  INFLEX_RETURN_NOT_OK(ValidateCandidateMask(options, n, k).status());

  oracle->ResetSeeds();
  SeedSelectionResult result;
  auto ws = oracle->MakeWorkspace();

  // Initial pass: gain of every singleton (parallelizable).
  std::vector<double> init_gains(n);
  if (options.parallel_first_iteration && n >= 256) {
    ParallelFor(
        0, n,
        [&](size_t v) {
          thread_local std::unique_ptr<SnapshotSpreadOracle::Workspace> tws;
          if (tws == nullptr) {
            tws = std::make_unique<SnapshotSpreadOracle::Workspace>(
                oracle->MakeWorkspace());
          }
          init_gains[v] =
              oracle->MarginalGain(static_cast<graph::NodeId>(v), tws.get());
        },
        options.pool);
  } else {
    for (size_t v = 0; v < n; ++v) {
      init_gains[v] = oracle->MarginalGain(static_cast<graph::NodeId>(v), &ws);
    }
  }
  result.num_evaluations += n;

  std::priority_queue<HeapEntry> heap;
  for (size_t v = 0; v < n; ++v) {
    if (!IsCandidate(options, v)) continue;
    heap.push({init_gains[v], static_cast<graph::NodeId>(v), 0});
  }

  while (result.seeds.size() < k) {
    HeapEntry top = heap.top();
    heap.pop();
    const uint32_t cur_size = static_cast<uint32_t>(result.seeds.size());
    if (top.flag == cur_size) {
      // Fresh w.r.t. the current seed set: greedy-optimal by submodularity.
      oracle->CommitSeed(top.node, &ws);
      result.seeds.push_back(top.node);
      result.marginal_gains.push_back(top.gain);
    } else {
      top.gain = oracle->MarginalGain(top.node, &ws);
      top.flag = cur_size;
      ++result.num_evaluations;
      heap.push(top);
    }
  }
  result.expected_spread = oracle->CurrentSpread();
  return result;
}

}  // namespace im
}  // namespace inflex
