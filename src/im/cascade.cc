#include "im/cascade.h"

namespace inflex {
namespace im {

namespace {

template <typename OnActivate>
size_t RunCascade(const graph::TopicGraph& g,
                  const graph::ArcProbabilities& arc_probs,
                  std::span<const graph::NodeId> seeds, Rng* rng,
                  CascadeWorkspace* ws, OnActivate&& on_activate) {
  ws->NextEpoch();
  auto& frontier = ws->frontier();
  frontier.clear();
  size_t activated = 0;
  for (graph::NodeId s : seeds) {
    if (!ws->Visited(s)) {
      ws->MarkVisited(s);
      frontier.push_back(s);
      ++activated;
      on_activate(s);
    }
  }
  // BFS order matches the discrete-time unfolding of the IC model; since each
  // arc is tested at most once, processing order does not change the
  // distribution of the final active set.
  for (size_t head = 0; head < frontier.size(); ++head) {
    const graph::NodeId u = frontier[head];
    graph::ArcId a = g.OutArcBegin(u);
    for (graph::NodeId v : g.OutNeighbors(u)) {
      if (!ws->Visited(v) && rng->Bernoulli(arc_probs[a])) {
        ws->MarkVisited(v);
        frontier.push_back(v);
        ++activated;
        on_activate(v);
      }
      ++a;
    }
  }
  return activated;
}

}  // namespace

size_t SimulateCascadeCount(const graph::TopicGraph& g,
                            const graph::ArcProbabilities& arc_probs,
                            std::span<const graph::NodeId> seeds, Rng* rng,
                            CascadeWorkspace* ws) {
  return RunCascade(g, arc_probs, seeds, rng, ws, [](graph::NodeId) {});
}

size_t SimulateCascadeNodes(const graph::TopicGraph& g,
                            const graph::ArcProbabilities& arc_probs,
                            std::span<const graph::NodeId> seeds, Rng* rng,
                            CascadeWorkspace* ws,
                            std::vector<graph::NodeId>* out) {
  out->clear();
  return RunCascade(g, arc_probs, seeds, rng, ws,
                    [out](graph::NodeId v) { out->push_back(v); });
}

}  // namespace im
}  // namespace inflex
