#include "im/snapshot_oracle.h"

#include <algorithm>

#include "util/check.h"
#include "util/random.h"

namespace inflex {
namespace im {

Result<SnapshotSpreadOracle> SnapshotSpreadOracle::Create(
    const graph::TopicGraph& g, const graph::ArcProbabilities& arc_probs,
    const Options& options) {
  if (arc_probs.size() != g.num_arcs()) {
    return Status::InvalidArgument("arc probability vector size mismatch");
  }
  if (options.num_snapshots == 0) {
    return Status::InvalidArgument("num_snapshots must be positive");
  }

  SnapshotSpreadOracle oracle;
  const size_t n = g.num_nodes();
  const size_t w = options.num_snapshots;
  oracle.num_nodes_ = n;
  oracle.num_snapshots_ = w;
  oracle.offsets_.assign(w * (n + 1), 0);
  oracle.covered_.assign(w * n, 0);
  oracle.total_covered_ = 0;

  Rng rng(options.seed);
  std::vector<graph::NodeId> kept_targets;
  kept_targets.reserve(g.num_arcs() / 4 + 16);
  for (size_t s = 0; s < w; ++s) {
    uint64_t* off = oracle.offsets_.data() + s * (n + 1);
    const uint64_t base = kept_targets.size();
    off[0] = base;
    for (graph::NodeId u = 0; u < n; ++u) {
      graph::ArcId a = g.OutArcBegin(u);
      for (graph::NodeId v : g.OutNeighbors(u)) {
        if (arc_probs[a] > 0.0 && rng.Bernoulli(arc_probs[a])) {
          kept_targets.push_back(v);
        }
        ++a;
      }
      off[u + 1] = kept_targets.size();
    }
  }
  oracle.targets_ = std::move(kept_targets);
  return oracle;
}

double SnapshotSpreadOracle::MarginalGain(graph::NodeId v,
                                          Workspace* ws) const {
  INFLEX_CHECK_LT(v, num_nodes_);
  const size_t n = num_nodes_;
  uint64_t gain = 0;
  auto& frontier = ws->frontier_;
  for (size_t s = 0; s < num_snapshots_; ++s) {
    const uint8_t* cov = covered_.data() + s * n;
    if (cov[v]) continue;
    if (++ws->epoch_ == 0) {
      std::fill(ws->stamps_.begin(), ws->stamps_.end(), 0u);
      ws->epoch_ = 1;
    }
    const uint32_t epoch = ws->epoch_;
    const uint64_t* off = offsets_.data() + s * (n + 1);
    frontier.clear();
    frontier.push_back(v);
    ws->stamps_[v] = epoch;
    ++gain;
    for (size_t head = 0; head < frontier.size(); ++head) {
      const graph::NodeId u = frontier[head];
      for (uint64_t e = off[u]; e < off[u + 1]; ++e) {
        const graph::NodeId t = targets_[e];
        if (ws->stamps_[t] != epoch && !cov[t]) {
          ws->stamps_[t] = epoch;
          frontier.push_back(t);
          ++gain;
        }
      }
    }
  }
  return static_cast<double>(gain) / static_cast<double>(num_snapshots_);
}

void SnapshotSpreadOracle::MarginalGainPair(graph::NodeId v,
                                            graph::NodeId other, Workspace* ws,
                                            double* mg1, double* mg2) const {
  INFLEX_CHECK_LT(v, num_nodes_);
  INFLEX_CHECK_LT(other, num_nodes_);
  const size_t n = num_nodes_;
  uint64_t gain1 = 0, gain2 = 0;
  auto& frontier = ws->frontier_;
  for (size_t s = 0; s < num_snapshots_; ++s) {
    const uint8_t* cov = covered_.data() + s * n;
    const uint64_t* off = offsets_.data() + s * (n + 1);

    // Pass 1: mark `other`'s incremental reach in this snapshot.
    if (++ws->extra_epoch_ == 0) {
      std::fill(ws->extra_stamps_.begin(), ws->extra_stamps_.end(), 0u);
      ws->extra_epoch_ = 1;
    }
    const uint32_t xepoch = ws->extra_epoch_;
    if (!cov[other]) {
      frontier.clear();
      frontier.push_back(other);
      ws->extra_stamps_[other] = xepoch;
      for (size_t head = 0; head < frontier.size(); ++head) {
        const graph::NodeId u = frontier[head];
        for (uint64_t e = off[u]; e < off[u + 1]; ++e) {
          const graph::NodeId t = targets_[e];
          if (ws->extra_stamps_[t] != xepoch && !cov[t]) {
            ws->extra_stamps_[t] = xepoch;
            frontier.push_back(t);
          }
        }
      }
    }

    // Pass 2: BFS from v over uncovered nodes, counting both totals.
    if (cov[v]) continue;
    if (++ws->epoch_ == 0) {
      std::fill(ws->stamps_.begin(), ws->stamps_.end(), 0u);
      ws->epoch_ = 1;
    }
    const uint32_t epoch = ws->epoch_;
    frontier.clear();
    frontier.push_back(v);
    ws->stamps_[v] = epoch;
    ++gain1;
    if (ws->extra_stamps_[v] != xepoch) ++gain2;
    for (size_t head = 0; head < frontier.size(); ++head) {
      const graph::NodeId u = frontier[head];
      for (uint64_t e = off[u]; e < off[u + 1]; ++e) {
        const graph::NodeId t = targets_[e];
        if (ws->stamps_[t] != epoch && !cov[t]) {
          ws->stamps_[t] = epoch;
          frontier.push_back(t);
          ++gain1;
          if (ws->extra_stamps_[t] != xepoch) ++gain2;
        }
      }
    }
  }
  *mg1 = static_cast<double>(gain1) / static_cast<double>(num_snapshots_);
  *mg2 = static_cast<double>(gain2) / static_cast<double>(num_snapshots_);
}

double SnapshotSpreadOracle::CommitSeed(graph::NodeId v, Workspace* ws) {
  INFLEX_CHECK_LT(v, num_nodes_);
  const size_t n = num_nodes_;
  uint64_t gain = 0;
  auto& frontier = ws->frontier_;
  for (size_t s = 0; s < num_snapshots_; ++s) {
    uint8_t* cov = covered_.data() + s * n;
    if (cov[v]) continue;
    const uint64_t* off = offsets_.data() + s * (n + 1);
    frontier.clear();
    frontier.push_back(v);
    cov[v] = 1;
    ++gain;
    for (size_t head = 0; head < frontier.size(); ++head) {
      const graph::NodeId u = frontier[head];
      for (uint64_t e = off[u]; e < off[u + 1]; ++e) {
        const graph::NodeId t = targets_[e];
        if (!cov[t]) {
          cov[t] = 1;
          frontier.push_back(t);
          ++gain;
        }
      }
    }
  }
  total_covered_ += gain;
  return static_cast<double>(gain) / static_cast<double>(num_snapshots_);
}

void SnapshotSpreadOracle::ResetSeeds() {
  std::fill(covered_.begin(), covered_.end(), 0u);
  total_covered_ = 0;
}

double SnapshotSpreadOracle::SpreadOf(std::span<const graph::NodeId> seeds,
                                      Workspace* ws) const {
  const size_t n = num_nodes_;
  uint64_t total = 0;
  auto& frontier = ws->frontier_;
  for (size_t s = 0; s < num_snapshots_; ++s) {
    if (++ws->epoch_ == 0) {
      std::fill(ws->stamps_.begin(), ws->stamps_.end(), 0u);
      ws->epoch_ = 1;
    }
    const uint32_t epoch = ws->epoch_;
    const uint64_t* off = offsets_.data() + s * (n + 1);
    frontier.clear();
    for (graph::NodeId seed : seeds) {
      INFLEX_CHECK_LT(seed, num_nodes_);
      if (ws->stamps_[seed] != epoch) {
        ws->stamps_[seed] = epoch;
        frontier.push_back(seed);
        ++total;
      }
    }
    for (size_t head = 0; head < frontier.size(); ++head) {
      const graph::NodeId u = frontier[head];
      for (uint64_t e = off[u]; e < off[u + 1]; ++e) {
        const graph::NodeId t = targets_[e];
        if (ws->stamps_[t] != epoch) {
          ws->stamps_[t] = epoch;
          frontier.push_back(t);
          ++total;
        }
      }
    }
  }
  return static_cast<double>(total) / static_cast<double>(num_snapshots_);
}

}  // namespace im
}  // namespace inflex
