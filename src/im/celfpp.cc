#include "im/celfpp.h"

#include <limits>
#include <memory>
#include <queue>
#include <vector>

namespace inflex {
namespace im {

namespace {

constexpr graph::NodeId kInvalidNode =
    std::numeric_limits<graph::NodeId>::max();

struct HeapEntry {
  double gain;
  graph::NodeId node;

  bool operator<(const HeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return node > other.node;
  }
};

}  // namespace

Result<SeedSelectionResult> SelectSeedsCelfPp(
    SnapshotSpreadOracle* oracle, size_t k,
    const SeedSelectionOptions& options) {
  const size_t n = oracle->num_nodes();
  INFLEX_RETURN_NOT_OK(ValidateCandidateMask(options, n, k).status());

  oracle->ResetSeeds();
  SeedSelectionResult result;
  auto ws = oracle->MakeWorkspace();

  // Per-node CELF++ state.
  std::vector<double> mg1(n), mg2(n);
  std::vector<graph::NodeId> prev_best(n, kInvalidNode);
  std::vector<uint32_t> flag(n, 0);

  // Initial pass: mg1 of every singleton, in parallel. mg2 w.r.t. the
  // eventual global best singleton is filled in a second parallel pass, so
  // the parallel code matches the sequential semantics ("cur_best after
  // examining all nodes" = the global argmax).
  if (options.parallel_first_iteration && n >= 256) {
    ParallelFor(
        0, n,
        [&](size_t v) {
          thread_local std::unique_ptr<SnapshotSpreadOracle::Workspace> tws;
          if (tws == nullptr) {
            tws = std::make_unique<SnapshotSpreadOracle::Workspace>(
                oracle->MakeWorkspace());
          }
          mg1[v] = oracle->MarginalGain(static_cast<graph::NodeId>(v),
                                        tws.get());
        },
        options.pool);
  } else {
    for (size_t v = 0; v < n; ++v) {
      mg1[v] = oracle->MarginalGain(static_cast<graph::NodeId>(v), &ws);
    }
  }
  result.num_evaluations += n;

  graph::NodeId best0 = kInvalidNode;
  for (size_t v = 0; v < n; ++v) {
    if (!IsCandidate(options, v)) continue;
    if (best0 == kInvalidNode || mg1[v] > mg1[best0]) {
      best0 = static_cast<graph::NodeId>(v);
    }
  }
  INFLEX_CHECK_NE(best0, kInvalidNode);
  auto fill_mg2 = [&](size_t v) {
    if (v == best0) {
      mg2[v] = mg1[v];
      prev_best[v] = kInvalidNode;
      return;
    }
    thread_local std::unique_ptr<SnapshotSpreadOracle::Workspace> tws;
    if (tws == nullptr) {
      tws = std::make_unique<SnapshotSpreadOracle::Workspace>(
          oracle->MakeWorkspace());
    }
    double a = 0.0, b = 0.0;
    oracle->MarginalGainPair(static_cast<graph::NodeId>(v), best0, tws.get(),
                             &a, &b);
    mg1[v] = a;  // identical to the first pass (deterministic oracle)
    mg2[v] = b;
    prev_best[v] = best0;
  };
  if (options.parallel_first_iteration && n >= 256) {
    ParallelFor(0, n, fill_mg2, options.pool);
  } else {
    for (size_t v = 0; v < n; ++v) fill_mg2(v);
  }

  std::priority_queue<HeapEntry> heap;
  for (size_t v = 0; v < n; ++v) {
    if (!IsCandidate(options, v)) continue;
    heap.push({mg1[v], static_cast<graph::NodeId>(v)});
  }

  std::vector<uint8_t> seeded(n, 0);
  graph::NodeId last_seed = kInvalidNode;
  graph::NodeId cur_best = kInvalidNode;
  double cur_best_gain = -1.0;

  while (result.seeds.size() < k && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const graph::NodeId u = top.node;
    if (seeded[u] || top.gain != mg1[u]) continue;  // stale duplicate
    const uint32_t cur_size = static_cast<uint32_t>(result.seeds.size());

    if (flag[u] == cur_size) {
      // Fresh: select u.
      oracle->CommitSeed(u, &ws);
      result.seeds.push_back(u);
      result.marginal_gains.push_back(mg1[u]);
      seeded[u] = 1;
      last_seed = u;
      cur_best = kInvalidNode;
      cur_best_gain = -1.0;
      continue;
    }

    if (prev_best[u] == last_seed && flag[u] + 1 == cur_size &&
        last_seed != kInvalidNode) {
      // The node that became a seed is exactly the one mg2 conditioned on:
      // reuse it, saving an oracle evaluation.
      mg1[u] = mg2[u];
      // mg2 is now stale; conditioning on the (unknown) next best is covered
      // by the recompute branch on a later surfacing.
      prev_best[u] = kInvalidNode;
    } else if (cur_best != kInvalidNode && cur_best != u) {
      oracle->MarginalGainPair(u, cur_best, &ws, &mg1[u], &mg2[u]);
      prev_best[u] = cur_best;
      ++result.num_evaluations;
    } else {
      mg1[u] = oracle->MarginalGain(u, &ws);
      mg2[u] = mg1[u];
      prev_best[u] = kInvalidNode;
      ++result.num_evaluations;
    }
    flag[u] = cur_size;
    if (mg1[u] > cur_best_gain) {
      cur_best_gain = mg1[u];
      cur_best = u;
    }
    heap.push({mg1[u], u});
  }
  result.expected_spread = oracle->CurrentSpread();
  return result;
}

}  // namespace im
}  // namespace inflex
