#ifndef INFLEX_IM_RIS_H_
#define INFLEX_IM_RIS_H_

#include "graph/topic_graph.h"
#include "im/spread_estimator.h"

namespace inflex {
namespace im {

/// \brief Options for Reverse Influence Sampling.
struct RisOptions {
  /// Number of reverse-reachable (RR) sets to sample. More sets tighten the
  /// (1 − 1/e − ε) guarantee; 64·n is a pragmatic default at library scale.
  size_t num_rr_sets = 0;  // 0: use 64 · num_nodes
  uint64_t seed = 97;
};

/// Reverse Influence Sampling / TIM-style influence maximization (Borgs et
/// al. 2014; Tang et al. 2014) — the modern alternative to the CELF family,
/// included as a cross-check baseline and for building indexes faster:
/// sample RR sets (reverse live-edge BFS from random roots), then greedy
/// maximum coverage over the sets. σ(S) is estimated as
/// n · (covered sets) / (total sets).
///
/// On the same instance, RIS and CELF++ must agree on spread within Monte-
/// Carlo noise (asserted by tests), though the seed sets may differ among
/// near-ties.
///
/// Exact coverage ties in the greedy phase break toward the smaller node id,
/// making the selection fully deterministic in (graph, arc_probs, options) —
/// the property the maintenance plane's bit-identical replay tests rely on
/// when the RIS backend does admission-time precompute.
Result<SeedSelectionResult> SelectSeedsRis(
    const graph::TopicGraph& g, const graph::ArcProbabilities& arc_probs,
    size_t k, const RisOptions& options = {});

}  // namespace im
}  // namespace inflex

#endif  // INFLEX_IM_RIS_H_
