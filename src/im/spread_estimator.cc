#include "im/spread_estimator.h"

#include <cmath>

#include "im/cascade.h"
#include "util/random.h"

namespace inflex {
namespace im {

Result<SpreadEstimate> EstimateSpread(const graph::TopicGraph& g,
                                      const graph::ArcProbabilities& arc_probs,
                                      std::span<const graph::NodeId> seeds,
                                      const MonteCarloOptions& options) {
  if (arc_probs.size() != g.num_arcs()) {
    return Status::InvalidArgument("arc probability vector size mismatch");
  }
  if (options.num_simulations == 0) {
    return Status::InvalidArgument("num_simulations must be positive");
  }
  for (graph::NodeId s : seeds) {
    if (s >= g.num_nodes()) return Status::OutOfRange("seed out of range");
  }
  if (seeds.empty()) {
    return SpreadEstimate{0.0, 0.0, options.num_simulations};
  }

  const size_t r = options.num_simulations;
  std::vector<double> counts(r);
  auto run_one = [&](size_t i) {
    // Deterministic per-simulation stream: results do not depend on thread
    // scheduling or pool size.
    Rng rng(options.seed ^ (0x51ed2700abcd1234ULL + i * 0x9e3779b97f4a7c15ULL));
    thread_local CascadeWorkspace* ws = nullptr;
    thread_local size_t ws_nodes = 0;
    if (ws == nullptr || ws_nodes != g.num_nodes()) {
      delete ws;
      ws = new CascadeWorkspace(g.num_nodes());
      ws_nodes = g.num_nodes();
    }
    counts[i] =
        static_cast<double>(SimulateCascadeCount(g, arc_probs, seeds, &rng, ws));
  };

  if (options.parallel && r >= 32) {
    ParallelFor(0, r, run_one, options.pool);
  } else {
    for (size_t i = 0; i < r; ++i) run_one(i);
  }

  double sum = 0.0, sum_sq = 0.0;
  for (double c : counts) {
    sum += c;
    sum_sq += c * c;
  }
  SpreadEstimate est;
  est.num_simulations = r;
  est.mean = sum / static_cast<double>(r);
  if (r > 1) {
    const double var =
        (sum_sq - sum * sum / static_cast<double>(r)) /
        static_cast<double>(r - 1);
    est.std_error = std::sqrt(std::max(var, 0.0) / static_cast<double>(r));
  }
  return est;
}

}  // namespace im
}  // namespace inflex
