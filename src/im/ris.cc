#include "im/ris.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/random.h"

namespace inflex {
namespace im {

Result<SeedSelectionResult> SelectSeedsRis(
    const graph::TopicGraph& g, const graph::ArcProbabilities& arc_probs,
    size_t k, const RisOptions& options) {
  const size_t n = g.num_nodes();
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > n) return Status::InvalidArgument("k exceeds the number of nodes");
  if (arc_probs.size() != g.num_arcs()) {
    return Status::InvalidArgument("arc probability vector size mismatch");
  }
  const size_t num_sets =
      options.num_rr_sets > 0 ? options.num_rr_sets : 64 * n;

  // --- Phase 1: sample RR sets. ------------------------------------------
  // A node u belongs to the RR set of root v iff u reaches v in the live-
  // edge realization, i.e. reverse-BFS from v crossing in-arcs with their
  // probabilities. We store the inverted index (node → RR-set ids), which
  // is all the coverage phase needs.
  Rng rng(options.seed);
  std::vector<std::vector<uint32_t>> sets_of_node(n);
  std::vector<uint32_t> stamps(n, 0);
  uint32_t epoch = 0;
  std::vector<graph::NodeId> frontier;
  frontier.reserve(64);

  for (uint32_t set_id = 0; set_id < num_sets; ++set_id) {
    const graph::NodeId root = static_cast<graph::NodeId>(rng.UniformInt(n));
    ++epoch;
    frontier.clear();
    frontier.push_back(root);
    stamps[root] = epoch;
    sets_of_node[root].push_back(set_id);
    for (size_t head = 0; head < frontier.size(); ++head) {
      const graph::NodeId v = frontier[head];
      const auto sources = g.InNeighbors(v);
      const auto arc_ids = g.InArcIds(v);
      for (size_t i = 0; i < sources.size(); ++i) {
        const graph::NodeId u = sources[i];
        if (stamps[u] != epoch && rng.Bernoulli(arc_probs[arc_ids[i]])) {
          stamps[u] = epoch;
          frontier.push_back(u);
          sets_of_node[u].push_back(set_id);
        }
      }
    }
  }

  // --- Phase 2: greedy maximum coverage with lazy evaluation. -------------
  SeedSelectionResult result;
  result.seeds.reserve(k);
  std::vector<uint8_t> covered(num_sets, 0);
  std::vector<size_t> degree(n);
  for (size_t v = 0; v < n; ++v) degree[v] = sets_of_node[v].size();

  using Entry = std::pair<size_t, graph::NodeId>;  // (coverage, node)
  // Max-heap on coverage with ties broken toward the smaller node id, so
  // selection among exact ties is deterministic (replay tests depend on it).
  const auto heap_less = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(heap_less)> heap(
      heap_less);
  for (size_t v = 0; v < n; ++v) {
    heap.push({degree[v], static_cast<graph::NodeId>(v)});
  }
  const double scale = static_cast<double>(n) / static_cast<double>(num_sets);
  std::vector<uint8_t> chosen(n, 0);
  size_t total_covered = 0;
  while (result.seeds.size() < k && !heap.empty()) {
    auto [cov, v] = heap.top();
    heap.pop();
    if (chosen[v]) continue;
    // Lazy refresh: recount uncovered sets (monotone non-increasing).
    size_t fresh = 0;
    for (uint32_t s : sets_of_node[v]) fresh += covered[s] == 0;
    ++result.num_evaluations;
    if (fresh < cov) {
      heap.push({fresh, v});
      continue;
    }
    chosen[v] = 1;
    for (uint32_t s : sets_of_node[v]) {
      if (!covered[s]) {
        covered[s] = 1;
        ++total_covered;
      }
    }
    result.seeds.push_back(v);
    result.marginal_gains.push_back(static_cast<double>(fresh) * scale);
  }
  result.expected_spread = static_cast<double>(total_covered) * scale;
  return result;
}

}  // namespace im
}  // namespace inflex
