#include "im/lt_model.h"

#include <algorithm>
#include <cmath>

namespace inflex {
namespace im {

namespace {
constexpr double kSumSlack = 1e-9;
}  // namespace

Status ValidateLtWeights(const graph::TopicGraph& g,
                         const graph::ArcProbabilities& weights) {
  if (weights.size() != g.num_arcs()) {
    return Status::InvalidArgument("weight vector size mismatch");
  }
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0 || w > 1.0) {
      return Status::InvalidArgument("LT weight outside [0, 1]");
    }
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    double sum = 0.0;
    for (graph::ArcId a : g.InArcIds(v)) sum += weights[a];
    if (sum > 1.0 + kSumSlack) {
      return Status::InvalidArgument(
          "in-weights of node " + std::to_string(v) + " sum to " +
          std::to_string(sum) + " > 1");
    }
  }
  return Status::OK();
}

Result<graph::ArcProbabilities> NormalizeToLtWeights(
    const graph::TopicGraph& g, const graph::ArcProbabilities& arc_probs) {
  if (arc_probs.size() != g.num_arcs()) {
    return Status::InvalidArgument("arc probability vector size mismatch");
  }
  graph::ArcProbabilities weights = arc_probs;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    double sum = 0.0;
    for (graph::ArcId a : g.InArcIds(v)) sum += weights[a];
    if (sum > 1.0) {
      for (graph::ArcId a : g.InArcIds(v)) weights[a] /= sum;
    }
  }
  return weights;
}

size_t SimulateLtCascadeCount(const graph::TopicGraph& g,
                              const graph::ArcProbabilities& weights,
                              std::span<const graph::NodeId> seeds, Rng* rng,
                              LtWorkspace* ws) {
  // The epoch occupies the high 31 bits of a stamp; reset before it would
  // wrap into the state bit.
  if (++ws->epoch_ >= (1u << 31)) {
    std::fill(ws->stamps_.begin(), ws->stamps_.end(), 0u);
    ws->epoch_ = 1;
  }
  const uint32_t epoch = ws->epoch_;
  auto& frontier = ws->frontier_;
  frontier.clear();

  // stamps_ encodes per-epoch node state via the low bit: touched (has a
  // threshold + accumulator) vs active. We use two stamp values:
  // epoch*2 = touched-but-inactive, epoch*2+1 = active. To keep the uint32
  // arithmetic simple we store epoch in the high 31 bits.
  const uint32_t touched = epoch << 1;
  const uint32_t active = touched | 1u;

  size_t activated = 0;
  for (graph::NodeId s : seeds) {
    if (ws->stamps_[s] != active) {
      ws->stamps_[s] = active;
      frontier.push_back(s);
      ++activated;
    }
  }
  for (size_t head = 0; head < frontier.size(); ++head) {
    const graph::NodeId u = frontier[head];
    graph::ArcId a = g.OutArcBegin(u);
    for (graph::NodeId v : g.OutNeighbors(u)) {
      const double w = weights[a];
      ++a;
      if (w <= 0.0 || ws->stamps_[v] == active) continue;
      if (ws->stamps_[v] != touched) {
        // First contact: draw v's threshold lazily.
        ws->stamps_[v] = touched;
        ws->thresholds_[v] = rng->Uniform();
        ws->influence_[v] = 0.0;
      }
      ws->influence_[v] += w;
      if (ws->influence_[v] >= ws->thresholds_[v]) {
        ws->stamps_[v] = active;
        frontier.push_back(v);
        ++activated;
      }
    }
  }
  return activated;
}

Result<SpreadEstimate> EstimateLtSpread(const graph::TopicGraph& g,
                                        const graph::ArcProbabilities& weights,
                                        std::span<const graph::NodeId> seeds,
                                        const MonteCarloOptions& options) {
  INFLEX_RETURN_NOT_OK(ValidateLtWeights(g, weights));
  if (options.num_simulations == 0) {
    return Status::InvalidArgument("num_simulations must be positive");
  }
  for (graph::NodeId s : seeds) {
    if (s >= g.num_nodes()) return Status::OutOfRange("seed out of range");
  }
  if (seeds.empty()) {
    return SpreadEstimate{0.0, 0.0, options.num_simulations};
  }
  LtWorkspace ws(g.num_nodes());
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < options.num_simulations; ++i) {
    Rng rng(options.seed ^ (0x7a11cafe00000000ULL + i * 0x9e3779b97f4a7c15ULL));
    const double c = static_cast<double>(
        SimulateLtCascadeCount(g, weights, seeds, &rng, &ws));
    sum += c;
    sum_sq += c * c;
  }
  const double r = static_cast<double>(options.num_simulations);
  SpreadEstimate est;
  est.num_simulations = options.num_simulations;
  est.mean = sum / r;
  if (options.num_simulations > 1) {
    const double var = (sum_sq - sum * sum / r) / (r - 1.0);
    est.std_error = std::sqrt(std::max(var, 0.0) / r);
  }
  return est;
}

}  // namespace im
}  // namespace inflex
