#ifndef INFLEX_IM_CASCADE_H_
#define INFLEX_IM_CASCADE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/topic_graph.h"
#include "util/random.h"

namespace inflex {
namespace im {

/// \brief Reusable scratch space for cascade simulation. One per thread;
/// avoids re-zeroing the visited array via epoch stamping.
class CascadeWorkspace {
 public:
  explicit CascadeWorkspace(size_t num_nodes)
      : stamps_(num_nodes, 0), frontier_() {
    frontier_.reserve(64);
  }

  /// Begins a fresh cascade: all nodes become unvisited in O(1) (amortized).
  void NextEpoch() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
  }

  bool Visited(graph::NodeId v) const { return stamps_[v] == epoch_; }
  void MarkVisited(graph::NodeId v) { stamps_[v] = epoch_; }

  std::vector<graph::NodeId>& frontier() { return frontier_; }

 private:
  std::vector<uint32_t> stamps_;
  std::vector<graph::NodeId> frontier_;
  uint32_t epoch_ = 0;
};

/// Runs one Independent Cascade realization from `seeds` on the IC instance
/// (graph topology + one probability per arc) and returns the number of
/// activated nodes (seeds included). Each arc (u,v) is tested exactly once
/// when u first activates, with success probability `arc_probs[arc]`.
size_t SimulateCascadeCount(const graph::TopicGraph& g,
                            const graph::ArcProbabilities& arc_probs,
                            std::span<const graph::NodeId> seeds, Rng* rng,
                            CascadeWorkspace* ws);

/// As SimulateCascadeCount but also appends every activated node to `out`
/// (cleared first). Used by the propagation-log synthesizer.
size_t SimulateCascadeNodes(const graph::TopicGraph& g,
                            const graph::ArcProbabilities& arc_probs,
                            std::span<const graph::NodeId> seeds, Rng* rng,
                            CascadeWorkspace* ws,
                            std::vector<graph::NodeId>* out);

}  // namespace im
}  // namespace inflex

#endif  // INFLEX_IM_CASCADE_H_
