#include "im/heuristics.h"

#include <algorithm>
#include <numeric>

namespace inflex {
namespace im {

Result<std::vector<graph::NodeId>> SelectSeedsRandom(size_t num_nodes,
                                                     size_t k, Rng* rng) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > num_nodes) {
    return Status::InvalidArgument("k exceeds the number of nodes");
  }
  // Partial Fisher–Yates over a node-id vector.
  std::vector<graph::NodeId> ids(num_nodes);
  std::iota(ids.begin(), ids.end(), 0u);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + rng->UniformInt(num_nodes - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(k);
  return ids;
}

namespace {

Result<std::vector<graph::NodeId>> TopKByScore(const std::vector<double>& score,
                                               size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > score.size()) {
    return Status::InvalidArgument("k exceeds the number of nodes");
  }
  std::vector<graph::NodeId> ids(score.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&score](graph::NodeId a, graph::NodeId b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

}  // namespace

Result<std::vector<graph::NodeId>> SelectSeedsByDegree(
    const graph::TopicGraph& g, size_t k) {
  std::vector<double> score(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    score[u] = static_cast<double>(g.OutDegree(u));
  }
  return TopKByScore(score, k);
}

Result<std::vector<graph::NodeId>> SelectSeedsByWeightedDegree(
    const graph::TopicGraph& g, const graph::ArcProbabilities& arc_probs,
    size_t k) {
  if (arc_probs.size() != g.num_arcs()) {
    return Status::InvalidArgument("arc probability vector size mismatch");
  }
  std::vector<double> score(g.num_nodes(), 0.0);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    graph::ArcId a = g.OutArcBegin(u);
    for (size_t i = 0; i < g.OutDegree(u); ++i, ++a) {
      score[u] += arc_probs[a];
    }
  }
  return TopKByScore(score, k);
}

Result<std::vector<graph::NodeId>> SelectSeedsDegreeDiscount(
    const graph::TopicGraph& g, const graph::ArcProbabilities& arc_probs,
    size_t k) {
  if (arc_probs.size() != g.num_arcs()) {
    return Status::InvalidArgument("arc probability vector size mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > g.num_nodes()) {
    return Status::InvalidArgument("k exceeds the number of nodes");
  }
  const size_t n = g.num_nodes();
  // Base out-weight of each node.
  std::vector<double> weight(n, 0.0);
  for (graph::NodeId u = 0; u < n; ++u) {
    graph::ArcId a = g.OutArcBegin(u);
    for (size_t i = 0; i < g.OutDegree(u); ++i, ++a) weight[u] += arc_probs[a];
  }
  // discount[v] = Σ p(s→v) over already-selected in-neighbors s: the
  // probability mass with which v is expected to be activated anyway.
  std::vector<double> discount(n, 0.0);
  std::vector<uint8_t> selected(n, 0);
  std::vector<graph::NodeId> seeds;
  seeds.reserve(k);
  for (size_t step = 0; step < k; ++step) {
    double best_score = -1.0;
    graph::NodeId best = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (selected[v]) continue;
      // A node likely activated by existing seeds contributes little as a
      // seed itself: scale its out-weight by (1 − discount), clamped.
      const double score =
          weight[v] * std::max(0.0, 1.0 - std::min(discount[v], 1.0));
      if (score > best_score || (score == best_score && v < best)) {
        best_score = score;
        best = v;
      }
    }
    selected[best] = 1;
    seeds.push_back(best);
    graph::ArcId a = g.OutArcBegin(best);
    for (graph::NodeId v : g.OutNeighbors(best)) {
      discount[v] += arc_probs[a];
      ++a;
    }
  }
  return seeds;
}

}  // namespace im
}  // namespace inflex
