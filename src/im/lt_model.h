#ifndef INFLEX_IM_LT_MODEL_H_
#define INFLEX_IM_LT_MODEL_H_

#include <span>

#include "graph/topic_graph.h"
#include "im/cascade.h"
#include "im/spread_estimator.h"

namespace inflex {
namespace im {

/// The Linear Threshold (LT) diffusion model (Kempe et al. 2003), provided
/// as an alternative substrate to IC: node v activates once the total
/// weight of its active in-neighbors reaches a threshold θ_v ~ U[0,1]
/// drawn independently per cascade. Requires Σ_u w(u→v) ≤ 1 for every v.
///
/// Topic-aware LT falls out of the same Eq. 1 machinery: materialize
/// item-specific arc values with TopicGraph::ItemArcProbabilities and
/// normalize them into admissible LT weights with NormalizeToLtWeights.

/// Returns InvalidArgument when any node's in-weights sum above 1 (+ε) or a
/// weight is outside [0, 1].
Status ValidateLtWeights(const graph::TopicGraph& g,
                         const graph::ArcProbabilities& weights);

/// Scales each node's in-weights down to sum ≤ 1 (nodes already admissible
/// are untouched), turning an IC-style probability table into valid LT
/// weights.
Result<graph::ArcProbabilities> NormalizeToLtWeights(
    const graph::TopicGraph& g, const graph::ArcProbabilities& arc_probs);

/// \brief Scratch space for LT simulation (thresholds + accumulated
/// influence, epoch-reset).
class LtWorkspace {
 public:
  explicit LtWorkspace(size_t num_nodes)
      : thresholds_(num_nodes, 0.0),
        influence_(num_nodes, 0.0),
        stamps_(num_nodes, 0) {}

 private:
  friend size_t SimulateLtCascadeCount(const graph::TopicGraph&,
                                       const graph::ArcProbabilities&,
                                       std::span<const graph::NodeId>, Rng*,
                                       LtWorkspace*);
  std::vector<double> thresholds_;
  std::vector<double> influence_;
  std::vector<uint32_t> stamps_;
  std::vector<graph::NodeId> frontier_;
  uint32_t epoch_ = 0;
};

/// Runs one LT cascade from `seeds`; returns the number of activated nodes.
/// Thresholds are sampled lazily on first contact (equivalent in
/// distribution and cheaper for small cascades).
size_t SimulateLtCascadeCount(const graph::TopicGraph& g,
                              const graph::ArcProbabilities& weights,
                              std::span<const graph::NodeId> seeds, Rng* rng,
                              LtWorkspace* ws);

/// Monte-Carlo estimate of the LT expected spread (serial).
Result<SpreadEstimate> EstimateLtSpread(const graph::TopicGraph& g,
                                        const graph::ArcProbabilities& weights,
                                        std::span<const graph::NodeId> seeds,
                                        const MonteCarloOptions& options = {});

}  // namespace im
}  // namespace inflex

#endif  // INFLEX_IM_LT_MODEL_H_
