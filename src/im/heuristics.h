#ifndef INFLEX_IM_HEURISTICS_H_
#define INFLEX_IM_HEURISTICS_H_

#include <vector>

#include "graph/topic_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace inflex {
namespace im {

/// k distinct nodes chosen uniformly at random — the paper's `random`
/// baseline (Table 2 / Figure 8).
Result<std::vector<graph::NodeId>> SelectSeedsRandom(size_t num_nodes,
                                                     size_t k, Rng* rng);

/// Top-k nodes by out-degree (classic structural heuristic).
Result<std::vector<graph::NodeId>> SelectSeedsByDegree(
    const graph::TopicGraph& g, size_t k);

/// Top-k nodes by total outgoing influence probability Σ_a p_a under an
/// item-specific IC instance.
Result<std::vector<graph::NodeId>> SelectSeedsByWeightedDegree(
    const graph::TopicGraph& g, const graph::ArcProbabilities& arc_probs,
    size_t k);

/// DegreeDiscount heuristic (Chen, Wang & Yang, KDD 2009), generalized to
/// per-arc probabilities: iteratively picks the node with the highest
/// discounted out-weight, where a node's weight is reduced by the influence
/// already expected to arrive from previously selected in-neighbors.
/// Much better than raw degree at a similar cost.
Result<std::vector<graph::NodeId>> SelectSeedsDegreeDiscount(
    const graph::TopicGraph& g, const graph::ArcProbabilities& arc_probs,
    size_t k);

}  // namespace im
}  // namespace inflex

#endif  // INFLEX_IM_HEURISTICS_H_
