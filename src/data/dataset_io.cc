#include "data/dataset_io.h"

#include <filesystem>

#include "graph/graph_io.h"
#include "util/serialize.h"

namespace inflex {
namespace data {

namespace {
constexpr uint32_t kCatalogMagic = 0x494e4354;  // "INCT"
constexpr uint32_t kCatalogVersion = 1;
constexpr uint32_t kCommunityMagic = 0x494e434d;  // "INCM"
constexpr uint32_t kCommunityVersion = 1;
}  // namespace

Status SaveCatalog(const std::vector<simplex::TopicDistribution>& catalog,
                   const std::string& path) {
  if (catalog.empty()) {
    return Status::InvalidArgument("refusing to save an empty catalog");
  }
  INFLEX_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::Open(path));
  INFLEX_RETURN_NOT_OK(WriteHeader(&w, kCatalogMagic, kCatalogVersion));
  INFLEX_RETURN_NOT_OK(w.WritePod<uint64_t>(catalog.size()));
  INFLEX_RETURN_NOT_OK(w.WritePod<uint64_t>(catalog.front().num_topics()));
  for (const auto& item : catalog) {
    if (item.num_topics() != catalog.front().num_topics()) {
      return Status::InvalidArgument("catalog items disagree on dimension");
    }
    INFLEX_RETURN_NOT_OK(w.WriteVector(item.probs()));
  }
  return w.Close();
}

Result<std::vector<simplex::TopicDistribution>> LoadCatalog(
    const std::string& path) {
  INFLEX_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  INFLEX_RETURN_NOT_OK(CheckHeader(&r, kCatalogMagic, kCatalogVersion));
  uint64_t count = 0, z_count = 0;
  INFLEX_RETURN_NOT_OK(r.ReadPod(&count));
  INFLEX_RETURN_NOT_OK(r.ReadPod(&z_count));
  if (count == 0 || z_count == 0) {
    return Status::IOError("corrupt catalog header");
  }
  std::vector<simplex::TopicDistribution> catalog;
  catalog.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    simplex::TopicVector probs;
    INFLEX_RETURN_NOT_OK(r.ReadVector(&probs));
    if (probs.size() != z_count) {
      return Status::IOError("catalog item dimension mismatch");
    }
    INFLEX_ASSIGN_OR_RETURN(simplex::TopicDistribution td,
                            simplex::TopicDistribution::Create(
                                std::move(probs)));
    catalog.push_back(std::move(td));
  }
  return catalog;
}

Status SaveDataset(const SyntheticDataset& dataset, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory: " + dir);
  INFLEX_RETURN_NOT_OK(
      graph::SaveTopicGraph(dataset.graph, dir + "/graph.bin"));
  INFLEX_RETURN_NOT_OK(SaveCatalog(dataset.catalog, dir + "/catalog.bin"));
  INFLEX_RETURN_NOT_OK(dataset.log.Save(dir + "/log.bin"));
  INFLEX_ASSIGN_OR_RETURN(BinaryWriter w,
                          BinaryWriter::Open(dir + "/communities.bin"));
  INFLEX_RETURN_NOT_OK(WriteHeader(&w, kCommunityMagic, kCommunityVersion));
  INFLEX_RETURN_NOT_OK(w.WriteVector(dataset.user_community));
  return w.Close();
}

Result<SyntheticDataset> LoadDataset(const std::string& dir) {
  SyntheticDataset ds;
  INFLEX_ASSIGN_OR_RETURN(ds.graph, graph::LoadTopicGraph(dir + "/graph.bin"));
  INFLEX_ASSIGN_OR_RETURN(ds.catalog, LoadCatalog(dir + "/catalog.bin"));
  INFLEX_ASSIGN_OR_RETURN(ds.log,
                          tic::PropagationLog::Load(dir + "/log.bin"));
  INFLEX_ASSIGN_OR_RETURN(BinaryReader r,
                          BinaryReader::Open(dir + "/communities.bin"));
  INFLEX_RETURN_NOT_OK(CheckHeader(&r, kCommunityMagic, kCommunityVersion));
  INFLEX_RETURN_NOT_OK(r.ReadVector(&ds.user_community));
  if (ds.user_community.size() != ds.graph.num_nodes()) {
    return Status::IOError("community table does not match the graph");
  }
  return ds;
}

}  // namespace data
}  // namespace inflex
