#ifndef INFLEX_DATA_SYNTHETIC_H_
#define INFLEX_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "graph/topic_graph.h"
#include "simplex/topic_distribution.h"
#include "tic/propagation_log.h"
#include "util/status.h"

namespace inflex {
namespace data {

/// \brief Parameters of the synthetic Flixster-equivalent dataset.
///
/// The paper's evaluation uses the Flixster social-movie dataset (~30k
/// users, 425k directed links, 12k items with a rating log); that download
/// is unavailable offline, so this generator synthesizes a dataset with the
/// same *structure* (see DESIGN.md §3):
///  - a directed social graph with power-law influence (a few authorities
///    with many outgoing arcs) organized into one community per topic;
///  - ground-truth per-topic arc probabilities that are strong inside a
///    topic's community and weak elsewhere — so WHO is influential depends
///    on the topic, the property the whole paper rests on;
///  - an item catalog drawn from a peaked Dirichlet mixture (items
///    concentrate on a primary topic, as LDA-style learning produces);
///  - a propagation log obtained by actually running TIC cascades of the
///    catalog items, from which TIC parameters can be re-learned exactly as
///    in the paper's pipeline (Figure 1).
struct SyntheticDatasetOptions {
  size_t num_users = 2000;
  size_t num_topics = 10;
  size_t num_items = 3000;
  /// Expected in-degree (≈ arcs per user).
  double avg_degree = 8.0;
  /// Probability that a link stays inside the user's community.
  double intra_community_fraction = 0.8;
  /// Pareto shape of the authority (out-degree) distribution.
  double authority_exponent = 4.0;
  /// Per-topic arc probability on a community-matching arc: drawn uniformly
  /// from [strong_prob_lo, strong_prob_hi], scaled by source authority.
  /// The defaults keep cascades below community saturation so that
  /// topic-aware seeding has room to beat topic-blind seeding (the paper's
  /// Figure 8 gap); raising them saturates small communities and shrinks
  /// that gap.
  double strong_prob_lo = 0.05;
  double strong_prob_hi = 0.22;
  /// Background probability on non-matching topics: [weak_lo, weak_hi].
  double weak_prob_lo = 0.0005;
  double weak_prob_hi = 0.005;
  /// Fraction of users that are "generalists": they exert a moderate,
  /// flat influence on EVERY topic (news-aggregator style) instead of a
  /// strong influence on one. Under a uniform topic mixture a generalist
  /// arc (≈ scale × strong) beats a specialist arc (≈ strong / Z), so a
  /// topic-blind seeder gravitates to generalists — and then underperforms
  /// on topical items, reproducing the paper's offline-IC collapse
  /// (Figure 8: less than half the TIC spread).
  double generalist_fraction = 0.25;
  /// Generalists' per-topic probability as a fraction of the strong range.
  double generalist_prob_scale = 0.25;
  /// Dirichlet concentration of an item's primary topic and of the rest.
  double item_primary_alpha = 4.0;
  double item_background_alpha = 0.25;
  /// TIC cascades recorded in the log for every catalog item. The paper's
  /// Flixster log is enormous (millions of ratings); several cascades per
  /// item keep the EM learner's signal comparable at synthetic scale.
  size_t cascades_per_item = 4;
  /// Seeds per recorded cascade.
  size_t seeds_per_cascade = 4;
  uint64_t seed = 2024;
};

/// \brief The generated dataset: the three inputs of Figure 1.
struct SyntheticDataset {
  /// Social graph carrying the ground-truth per-topic probabilities.
  graph::TopicGraph graph;
  /// Ground-truth item-topic distributions (the "catalog" I).
  std::vector<simplex::TopicDistribution> catalog;
  /// Simulated propagation traces.
  tic::PropagationLog log{1, 1};
  /// Community (primary topic) of every user — kept for diagnostics.
  std::vector<uint32_t> user_community;
};

/// Generates a dataset. Fails on degenerate parameter combinations
/// (zero users/topics/items, probability ranges outside (0,1), …).
Result<SyntheticDataset> GenerateSyntheticDataset(
    const SyntheticDatasetOptions& options);

}  // namespace data
}  // namespace inflex

#endif  // INFLEX_DATA_SYNTHETIC_H_
