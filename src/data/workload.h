#ifndef INFLEX_DATA_WORKLOAD_H_
#define INFLEX_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "simplex/topic_distribution.h"
#include "util/status.h"

namespace inflex {
namespace data {

/// \brief Options for the TIM query workload of §5: half the queries follow
/// the catalog's distribution ("data-driven perspective"), half are uniform
/// on the simplex ("random perspective", robustness check).
struct QueryWorkloadOptions {
  size_t num_data_driven = 100;
  size_t num_uniform = 100;
  /// Queries are blended toward uniform by this factor to keep them off the
  /// simplex boundary (0 disables).
  double boundary_smoothing = 0.0;
  uint64_t seed = 99;
};

/// \brief A generated workload, keeping the two populations distinguishable
/// so experiments can report per-population metrics.
struct QueryWorkload {
  std::vector<simplex::TopicDistribution> queries;
  /// True at position i when queries[i] came from the data-driven sampler.
  std::vector<bool> is_data_driven;
};

/// Generates the workload: fits a maximum-likelihood Dirichlet to `catalog`
/// (Minka's procedure, as in index construction) and samples the data-driven
/// queries from it; uniform queries come from Dirichlet(1,…,1).
/// Fails when the catalog is empty or dimensions disagree.
Result<QueryWorkload> GenerateQueryWorkload(
    const std::vector<simplex::TopicDistribution>& catalog,
    const QueryWorkloadOptions& options);

}  // namespace data
}  // namespace inflex

#endif  // INFLEX_DATA_WORKLOAD_H_
