#include "data/workload.h"

#include "simplex/sampling.h"
#include "stats/dirichlet.h"
#include "util/random.h"

namespace inflex {
namespace data {

Result<QueryWorkload> GenerateQueryWorkload(
    const std::vector<simplex::TopicDistribution>& catalog,
    const QueryWorkloadOptions& options) {
  if (catalog.empty()) {
    return Status::InvalidArgument("workload requires a non-empty catalog");
  }
  if (options.boundary_smoothing < 0.0 || options.boundary_smoothing > 1.0) {
    return Status::InvalidArgument("boundary_smoothing outside [0,1]");
  }
  const size_t z_count = catalog.front().num_topics();

  std::vector<simplex::TopicVector> raw;
  raw.reserve(catalog.size());
  for (const auto& item : catalog) {
    if (item.num_topics() != z_count) {
      return Status::InvalidArgument("catalog items disagree on dimension");
    }
    raw.push_back(item.probs());
  }

  Rng rng(options.seed);
  QueryWorkload workload;
  workload.queries.reserve(options.num_data_driven + options.num_uniform);

  if (options.num_data_driven > 0) {
    INFLEX_ASSIGN_OR_RETURN(stats::Dirichlet fitted,
                            stats::FitDirichletMle(raw));
    for (size_t i = 0; i < options.num_data_driven; ++i) {
      auto td = simplex::TopicDistribution::Create(fitted.Sample(&rng));
      if (!td.ok()) return td.status();
      workload.queries.push_back(std::move(td).ValueOrDie().
                                 SmoothedTowardUniform(
                                     options.boundary_smoothing));
      workload.is_data_driven.push_back(true);
    }
  }
  for (size_t i = 0; i < options.num_uniform; ++i) {
    auto td = simplex::TopicDistribution::Create(
        simplex::SampleUniformSimplex(z_count, &rng));
    if (!td.ok()) return td.status();
    workload.queries.push_back(
        std::move(td).ValueOrDie().SmoothedTowardUniform(
            options.boundary_smoothing));
    workload.is_data_driven.push_back(false);
  }
  return workload;
}

}  // namespace data
}  // namespace inflex
