#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "im/cascade.h"
#include "util/random.h"

namespace inflex {
namespace data {

namespace {

Status ValidateOptions(const SyntheticDatasetOptions& o) {
  if (o.num_users < 10) return Status::InvalidArgument("need >= 10 users");
  if (o.num_topics < 2) return Status::InvalidArgument("need >= 2 topics");
  if (o.num_items < 1) return Status::InvalidArgument("need >= 1 item");
  if (!(o.avg_degree > 0.0)) {
    return Status::InvalidArgument("avg_degree must be positive");
  }
  if (!(o.strong_prob_lo > 0.0) || !(o.strong_prob_hi < 1.0) ||
      o.strong_prob_lo > o.strong_prob_hi) {
    return Status::InvalidArgument("bad strong probability range");
  }
  if (!(o.weak_prob_lo > 0.0) || !(o.weak_prob_hi < 1.0) ||
      o.weak_prob_lo > o.weak_prob_hi) {
    return Status::InvalidArgument("bad weak probability range");
  }
  if (o.intra_community_fraction < 0.0 || o.intra_community_fraction > 1.0) {
    return Status::InvalidArgument("intra_community_fraction outside [0,1]");
  }
  if (o.generalist_fraction < 0.0 || o.generalist_fraction > 1.0) {
    return Status::InvalidArgument("generalist_fraction outside [0,1]");
  }
  if (!(o.generalist_prob_scale > 0.0) || o.generalist_prob_scale > 1.0) {
    return Status::InvalidArgument("generalist_prob_scale outside (0,1]");
  }
  if (o.seeds_per_cascade == 0 || o.seeds_per_cascade >= o.num_users) {
    return Status::InvalidArgument("bad seeds_per_cascade");
  }
  return Status::OK();
}

/// Samples an index from cumulative weights via binary search.
size_t SampleByCumulative(const std::vector<double>& cumulative, Rng* rng) {
  const double r = rng->Uniform() * cumulative.back();
  return static_cast<size_t>(
      std::lower_bound(cumulative.begin(), cumulative.end(), r) -
      cumulative.begin());
}

}  // namespace

Result<SyntheticDataset> GenerateSyntheticDataset(
    const SyntheticDatasetOptions& options) {
  INFLEX_RETURN_NOT_OK(ValidateOptions(options));
  Rng rng(options.seed);

  const size_t n = options.num_users;
  const size_t z_count = options.num_topics;

  SyntheticDataset ds;

  // --- Communities and authority scores -----------------------------------
  // User u belongs to community u % Z (balanced); authority is Pareto-
  // distributed so every community has a few strong influencers.
  ds.user_community.resize(n);
  std::vector<double> authority(n);
  for (size_t u = 0; u < n; ++u) {
    ds.user_community[u] = static_cast<uint32_t>(u % z_count);
    authority[u] =
        std::pow(1.0 - rng.Uniform(), -1.0 / options.authority_exponent);
  }

  // Authority-cumulative tables per community (for weighted source picks)
  // and globally.
  std::vector<std::vector<graph::NodeId>> community_members(z_count);
  for (size_t u = 0; u < n; ++u) {
    community_members[ds.user_community[u]].push_back(
        static_cast<graph::NodeId>(u));
  }
  std::vector<std::vector<double>> community_cumulative(z_count);
  for (size_t c = 0; c < z_count; ++c) {
    double acc = 0.0;
    community_cumulative[c].reserve(community_members[c].size());
    for (graph::NodeId u : community_members[c]) {
      acc += authority[u];
      community_cumulative[c].push_back(acc);
    }
  }
  std::vector<double> global_cumulative(n);
  {
    double acc = 0.0;
    for (size_t u = 0; u < n; ++u) {
      acc += authority[u];
      global_cumulative[u] = acc;
    }
  }

  // --- Arcs ----------------------------------------------------------------
  // For every user v draw ~avg_degree influencers u (arc u→v): mostly
  // authority-weighted members of v's community, the rest global. This
  // yields power-law out-degrees (influence) per community.
  std::set<std::pair<graph::NodeId, graph::NodeId>> arcs;
  for (size_t v = 0; v < n; ++v) {
    const uint32_t community = ds.user_community[v];
    const size_t degree =
        1 + rng.UniformInt(static_cast<uint64_t>(2.0 * options.avg_degree));
    for (size_t d = 0; d < degree; ++d) {
      graph::NodeId u;
      if (rng.Uniform() < options.intra_community_fraction) {
        const size_t idx =
            SampleByCumulative(community_cumulative[community], &rng);
        u = community_members[community][idx];
      } else {
        u = static_cast<graph::NodeId>(
            SampleByCumulative(global_cumulative, &rng));
      }
      if (u != v) arcs.insert({u, static_cast<graph::NodeId>(v)});
    }
  }

  // --- Per-topic probabilities ---------------------------------------------
  // Arc u→v is strong ONLY on u's community topic: authorities persuade on
  // their own subject and are near-inert elsewhere. This is what makes WHO
  // is influential topic-dependent — a topic-blind (uniform-mixture) seeder
  // sees every arc at roughly strong/Z and picks generically popular hubs,
  // few of which can actually push a topical item.
  const double max_authority =
      *std::max_element(authority.begin(), authority.end());
  std::vector<char> is_generalist(n, 0);
  for (size_t u = 0; u < n; ++u) {
    is_generalist[u] = rng.Uniform() < options.generalist_fraction ? 1 : 0;
  }
  graph::TopicGraphBuilder builder(n, z_count);
  std::vector<double> probs(z_count);
  for (const auto& [u, v] : arcs) {
    const uint32_t cu = ds.user_community[u];
    // Source authority scales the strong topic: hubs are more persuasive.
    const double auth_scale =
        0.5 + 0.5 * std::sqrt(authority[u] / max_authority);
    for (size_t z = 0; z < z_count; ++z) {
      if (is_generalist[u]) {
        probs[z] = options.generalist_prob_scale * auth_scale *
                   rng.Uniform(options.strong_prob_lo, options.strong_prob_hi);
      } else if (z == cu) {
        probs[z] = auth_scale *
                   rng.Uniform(options.strong_prob_lo, options.strong_prob_hi);
      } else {
        probs[z] = rng.Uniform(options.weak_prob_lo, options.weak_prob_hi);
      }
    }
    INFLEX_RETURN_NOT_OK(builder.AddArc(u, v, probs));
  }
  INFLEX_ASSIGN_OR_RETURN(ds.graph, builder.Build());

  // --- Catalog ---------------------------------------------------------------
  // Peaked Dirichlet mixture: each item concentrates on a primary topic.
  ds.catalog.reserve(options.num_items);
  for (size_t i = 0; i < options.num_items; ++i) {
    const size_t primary = rng.UniformInt(z_count);
    simplex::TopicVector gamma(z_count);
    double sum = 0.0;
    for (size_t z = 0; z < z_count; ++z) {
      const double alpha = z == primary ? options.item_primary_alpha
                                        : options.item_background_alpha;
      gamma[z] = rng.Gamma(alpha);
      sum += gamma[z];
    }
    for (double& g : gamma) g /= sum;
    auto td = simplex::TopicDistribution::Create(std::move(gamma));
    if (!td.ok()) return td.status();
    ds.catalog.push_back(std::move(td).ValueOrDie());
  }

  // --- Propagation log -------------------------------------------------------
  // Run real TIC cascades of every catalog item; the activation order is the
  // timestamp (the learner only needs the temporal order of adoptions).
  ds.log = tic::PropagationLog(n, options.num_items);
  im::CascadeWorkspace ws(n);
  graph::ArcProbabilities item_probs;
  std::vector<graph::NodeId> activated;
  std::vector<graph::NodeId> seeds(options.seeds_per_cascade);
  for (uint32_t i = 0; i < options.num_items; ++i) {
    ds.graph.ItemArcProbabilitiesInto(ds.catalog[i], &item_probs);
    // Seed cascades from the item's dominant community so the log actually
    // exercises the topic-specific influence structure.
    const auto& gamma = ds.catalog[i].probs();
    const size_t primary = static_cast<size_t>(
        std::max_element(gamma.begin(), gamma.end()) - gamma.begin());
    const auto& members = community_members[primary];
    for (size_t c = 0; c < options.cascades_per_item; ++c) {
      for (auto& s : seeds) s = members[rng.UniformInt(members.size())];
      SimulateCascadeNodes(ds.graph, item_probs, seeds, &rng, &ws, &activated);
      double t = 0.0;
      for (graph::NodeId u : activated) {
        INFLEX_RETURN_NOT_OK(
            ds.log.Add(u, i, static_cast<double>(c) * 1e6 + t));
        t += 1.0;
      }
    }
  }
  INFLEX_RETURN_NOT_OK(ds.log.Finalize());
  return ds;
}

}  // namespace data
}  // namespace inflex
