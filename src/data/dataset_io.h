#ifndef INFLEX_DATA_DATASET_IO_H_
#define INFLEX_DATA_DATASET_IO_H_

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "simplex/topic_distribution.h"
#include "util/status.h"

namespace inflex {
namespace data {

/// Persists an item catalog (topic distributions) to a binary artifact.
Status SaveCatalog(const std::vector<simplex::TopicDistribution>& catalog,
                   const std::string& path);

/// Loads a catalog saved by SaveCatalog.
Result<std::vector<simplex::TopicDistribution>> LoadCatalog(
    const std::string& path);

/// Persists a full dataset into `dir` (created if missing):
/// graph.bin, catalog.bin, log.bin, communities.bin.
Status SaveDataset(const SyntheticDataset& dataset, const std::string& dir);

/// Loads a dataset saved by SaveDataset.
Result<SyntheticDataset> LoadDataset(const std::string& dir);

}  // namespace data
}  // namespace inflex

#endif  // INFLEX_DATA_DATASET_IO_H_
