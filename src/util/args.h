#ifndef INFLEX_UTIL_ARGS_H_
#define INFLEX_UTIL_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace inflex {

/// \brief Minimal command-line parser for the inflex tools.
///
/// Grammar: positional arguments and `--key=value` / `--key value` options;
/// a `--key` followed by another option (or nothing) is a boolean flag.
/// Option names are registered implicitly by the first accessor that asks
/// for them; Validate() then rejects any option the program never asked
/// about, catching typos like `--topcs=8`.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True when `--name` was given (with or without a value).
  bool HasFlag(const std::string& name);

  /// String option with a default.
  std::string GetString(const std::string& name, const std::string& def);

  /// Integer option with a default; fails on non-numeric input.
  Result<int64_t> GetInt(const std::string& name, int64_t def);

  /// Floating-point option with a default; fails on non-numeric input.
  Result<double> GetDouble(const std::string& name, double def);

  /// Comma-separated list of doubles (e.g. a topic mixture).
  Result<std::vector<double>> GetDoubleList(const std::string& name);

  /// Fails if the command line contains options never requested by any
  /// accessor. Call after all Get*/HasFlag calls.
  Status Validate() const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> requested_;
};

}  // namespace inflex

#endif  // INFLEX_UTIL_ARGS_H_
