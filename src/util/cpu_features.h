#ifndef INFLEX_UTIL_CPU_FEATURES_H_
#define INFLEX_UTIL_CPU_FEATURES_H_

namespace inflex {
namespace util {

/// \brief SIMD capabilities of the executing CPU relevant to the KL kernel
/// layer (simplex/kl_kernel_simd.*). Detection goes through the compiler's
/// cpuid support (__builtin_cpu_supports), which also checks OS state
/// (OSXSAVE/XCR0) before reporting a vector extension as usable; on non-x86
/// targets everything is false and the scalar kernels serve every call.
struct CpuSimdFeatures {
  bool avx2 = false;
  bool avx512f = false;
};

/// Queries the executing CPU once per call (callers cache the result; the
/// kernel dispatch does so behind a function-local static).
CpuSimdFeatures DetectCpuSimd();

/// True when `value` (the content of INFLEX_FORCE_SCALAR, or nullptr when
/// the variable is unset) requests the scalar kernels. Any non-empty value
/// other than "0" forces scalar — the escape hatch must err toward honoring
/// the operator's intent.
bool ForceScalarRequested(const char* value);

/// Reads INFLEX_FORCE_SCALAR from the environment and applies
/// ForceScalarRequested.
bool ForceScalarFromEnv();

}  // namespace util
}  // namespace inflex

#endif  // INFLEX_UTIL_CPU_FEATURES_H_
