#ifndef INFLEX_UTIL_SERIALIZE_H_
#define INFLEX_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace inflex {

/// \brief Little binary writer used for dataset / index persistence.
///
/// Format: raw little-endian PODs; containers are a uint64 length followed by
/// elements. Every file starts with a caller-supplied magic + version so
/// loads can fail cleanly on mismatched artifacts.
class BinaryWriter {
 public:
  /// Opens `path` for writing (truncates).
  static Result<BinaryWriter> Open(const std::string& path);

  BinaryWriter(BinaryWriter&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  BinaryWriter& operator=(BinaryWriter&& other) noexcept {
    if (this != &other) {
      CloseFile();
      file_ = other.file_;
      other.file_ = nullptr;
    }
    return *this;
  }
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;
  ~BinaryWriter() { CloseFile(); }

  /// Writes a trivially copyable value.
  template <typename T>
  Status WritePod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return WriteBytes(&v, sizeof(T));
  }

  /// Writes a vector of trivially copyable values (length-prefixed).
  template <typename T>
  Status WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    INFLEX_RETURN_NOT_OK(WritePod<uint64_t>(v.size()));
    if (!v.empty()) {
      return WriteBytes(v.data(), v.size() * sizeof(T));
    }
    return Status::OK();
  }

  /// Writes a length-prefixed string.
  Status WriteString(const std::string& s);

  /// Flushes and closes; returns an error if the final flush fails.
  Status Close();

 private:
  explicit BinaryWriter(std::FILE* file) : file_(file) {}
  Status WriteBytes(const void* data, size_t n);
  void CloseFile() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  std::FILE* file_;
};

/// \brief Counterpart reader for BinaryWriter output.
class BinaryReader {
 public:
  /// Opens `path` for reading.
  static Result<BinaryReader> Open(const std::string& path);

  BinaryReader(BinaryReader&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  BinaryReader& operator=(BinaryReader&& other) noexcept {
    if (this != &other) {
      CloseFile();
      file_ = other.file_;
      other.file_ = nullptr;
    }
    return *this;
  }
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;
  ~BinaryReader() { CloseFile(); }

  template <typename T>
  Status ReadPod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(v, sizeof(T));
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    INFLEX_RETURN_NOT_OK(ReadPod(&n));
    if (n > (1ull << 40) / std::max<size_t>(sizeof(T), 1)) {
      return Status::IOError("corrupt vector length in binary stream");
    }
    v->resize(n);
    if (n > 0) {
      return ReadBytes(v->data(), n * sizeof(T));
    }
    return Status::OK();
  }

  Status ReadString(std::string* s);

 private:
  explicit BinaryReader(std::FILE* file) : file_(file) {}
  Status ReadBytes(void* data, size_t n);
  void CloseFile() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  std::FILE* file_;
};

/// Writes the standard artifact header (magic + version).
Status WriteHeader(BinaryWriter* w, uint32_t magic, uint32_t version);

/// Reads and validates the standard artifact header.
Status CheckHeader(BinaryReader* r, uint32_t magic, uint32_t expected_version);

}  // namespace inflex

#endif  // INFLEX_UTIL_SERIALIZE_H_
