#include "util/args.h"

#include <cstdlib>
#include <sstream>

namespace inflex {

namespace {
bool IsOption(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}
}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!IsOption(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !IsOption(argv[i + 1])) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";  // boolean flag
    }
  }
}

bool ArgParser::HasFlag(const std::string& name) {
  requested_[name] = true;
  return options_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& def) {
  requested_[name] = true;
  auto it = options_.find(name);
  return it == options_.end() ? def : it->second;
}

Result<int64_t> ArgParser::GetInt(const std::string& name, int64_t def) {
  requested_[name] = true;
  auto it = options_.find(name);
  if (it == options_.end()) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   it->second + "'");
  }
  return v;
}

Result<double> ArgParser::GetDouble(const std::string& name, double def) {
  requested_[name] = true;
  auto it = options_.find(name);
  if (it == options_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                   it->second + "'");
  }
  return v;
}

Result<std::vector<double>> ArgParser::GetDoubleList(const std::string& name) {
  requested_[name] = true;
  auto it = options_.find(name);
  if (it == options_.end()) {
    return Status::InvalidArgument("missing required option --" + name);
  }
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("--" + name +
                                     " expects comma-separated numbers");
    }
    out.push_back(v);
  }
  if (out.empty()) {
    return Status::InvalidArgument("--" + name + " is empty");
  }
  return out;
}

Status ArgParser::Validate() const {
  for (const auto& [key, value] : options_) {
    (void)value;
    if (requested_.count(key) == 0) {
      return Status::InvalidArgument("unknown option --" + key);
    }
  }
  return Status::OK();
}

}  // namespace inflex
