#ifndef INFLEX_UTIL_LOGGING_H_
#define INFLEX_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace inflex {

/// \brief Severity levels for library log output.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is actually emitted (default Info).
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace inflex

#define INFLEX_LOG(level)                                               \
  ::inflex::internal::LogMessage(::inflex::LogLevel::k##level, __FILE__, \
                                 __LINE__)

#endif  // INFLEX_UTIL_LOGGING_H_
