#ifndef INFLEX_UTIL_CHECK_H_
#define INFLEX_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Programming-error assertions, active in all build types. These guard
/// library invariants (index bounds, simplex validity, heap consistency);
/// runtime/user errors go through Status instead.
#define INFLEX_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "INFLEX_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define INFLEX_CHECK_OP(a, b, op)                                            \
  do {                                                                       \
    if (!((a)op(b))) {                                                       \
      std::fprintf(stderr, "INFLEX_CHECK failed at %s:%d: %s %s %s\n",       \
                   __FILE__, __LINE__, #a, #op, #b);                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define INFLEX_CHECK_EQ(a, b) INFLEX_CHECK_OP(a, b, ==)
#define INFLEX_CHECK_NE(a, b) INFLEX_CHECK_OP(a, b, !=)
#define INFLEX_CHECK_LT(a, b) INFLEX_CHECK_OP(a, b, <)
#define INFLEX_CHECK_LE(a, b) INFLEX_CHECK_OP(a, b, <=)
#define INFLEX_CHECK_GT(a, b) INFLEX_CHECK_OP(a, b, >)
#define INFLEX_CHECK_GE(a, b) INFLEX_CHECK_OP(a, b, >=)

/// Aborts if a Status-returning expression fails. For use in examples,
/// benches and tests where failure is unrecoverable.
#define INFLEX_CHECK_OK(expr)                                                \
  do {                                                                       \
    ::inflex::Status _st = (expr);                                           \
    if (!_st.ok()) {                                                         \
      std::fprintf(stderr, "INFLEX_CHECK_OK failed at %s:%d: %s\n",          \
                   __FILE__, __LINE__, _st.ToString().c_str());              \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // INFLEX_UTIL_CHECK_H_
