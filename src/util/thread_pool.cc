#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace inflex {

namespace {
// The pool whose WorkerLoop the calling thread is running, if any. Lets
// Submit/ParallelFor/Wait detect nested use from inside a task: a worker
// blocking on its own pool's completion can deadlock the whole pool, so
// nested work runs inline instead (see the header's re-entrancy contract).
thread_local const ThreadPool* tls_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::Submit(std::function<void()> task) {
  if (OnWorkerThread()) {
    // Nested submission from one of our own tasks: run it right here. All
    // sibling workers may be blocked waiting for this very task's caller to
    // finish, so parking it in the queue could wait forever.
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    INFLEX_CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  INFLEX_CHECK(!OnWorkerThread());
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                 ThreadPool* pool) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (pool == nullptr) pool = &ThreadPool::Global();
  const size_t num_workers = pool->num_threads();
  // Serial fallbacks: trivial ranges, single-worker pools, and nested calls
  // from a task already running on this pool (the outer parallel stage owns
  // the workers; fanning out again would enqueue work nobody can pick up).
  if (n <= 1 || num_workers <= 1 || pool->OnWorkerThread()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const size_t num_chunks = std::min(n, num_workers * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  // ParallelFor may be invoked from many call sites; use a local completion
  // latch rather than pool Wait() so that concurrent ParallelFor calls on the
  // global pool do not wait on each other's tasks.
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = 0;
  {
    std::unique_lock<std::mutex> lock(mu);
    for (size_t start = begin; start < end; start += chunk) ++remaining;
  }
  for (size_t start = begin; start < end; start += chunk) {
    const size_t stop = std::min(end, start + chunk);
    pool->Submit([start, stop, &fn, &mu, &cv, &remaining] {
      for (size_t i = start; i < stop; ++i) fn(i);
      std::unique_lock<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&remaining] { return remaining == 0; });
}

}  // namespace inflex
