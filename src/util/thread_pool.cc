#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace inflex {

namespace {
// The pool whose WorkerLoop the calling thread is running, if any. Lets
// Submit/ParallelFor/Wait detect nested use from inside a task: a worker
// blocking on its own pool's completion can deadlock the whole pool, so
// nested work runs inline instead (see the header's re-entrancy contract).
thread_local const ThreadPool* tls_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  shutting_down_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker between its sleep-predicate check and
    // the actual block cannot miss the broadcast once we have held the lock.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::Submit(std::function<void()> task) {
  if (OnWorkerThread()) {
    // Nested submission from one of our own tasks: run it right here. All
    // sibling workers may be blocked waiting for this very task's caller to
    // finish, so parking it in the queue could wait forever.
    task();
    return;
  }
  INFLEX_CHECK(!shutting_down_.load(std::memory_order_acquire));
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  const size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  // The push precedes the increment: any worker that observes pending_ > 0
  // and scans will find the task (or a sibling will have claimed it).
  pending_.fetch_add(1, std::memory_order_seq_cst);
  WakeOne();
}

void ThreadPool::WakeOne() {
  // seq_cst pairing with the sleeper: the sleeper publishes num_sleepers_
  // before re-checking pending_, we publish pending_ (in Submit) before
  // reading num_sleepers_ — at least one side sees the other, so a parked
  // worker is either woken here or never parks.
  if (num_sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::PopFrom(size_t q, std::function<void()>* task) {
  WorkerQueue& wq = *queues_[q];
  std::lock_guard<std::mutex> lock(wq.mu);
  if (wq.tasks.empty()) return false;
  *task = std::move(wq.tasks.front());
  wq.tasks.pop_front();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::StealFrom(size_t self, std::function<void()>* task) {
  const size_t n = queues_.size();
  for (size_t i = 1; i < n; ++i) {
    WorkerQueue& wq = *queues_[(self + i) % n];
    std::lock_guard<std::mutex> lock(wq.mu);
    if (wq.tasks.empty()) continue;
    // Steal from the back, away from the owner's pop end.
    *task = std::move(wq.tasks.back());
    wq.tasks.pop_back();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_worker_pool = this;
  while (true) {
    std::function<void()> task;
    if (PopFrom(self, &task) || StealFrom(self, &task)) {
      task();
      task = nullptr;  // release captures before accounting
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        {
          std::lock_guard<std::mutex> lock(wait_mu_);
        }
        all_done_.notify_all();
      }
      continue;
    }
    // Ran dry: park until a submit lands or shutdown. num_sleepers_ is
    // published (seq_cst) before the predicate re-reads pending_, pairing
    // with WakeOne (see there).
    std::unique_lock<std::mutex> lock(sleep_mu_);
    num_sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [this] {
      return shutting_down_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_seq_cst) > 0;
    });
    num_sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (shutting_down_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;  // every queued task has been claimed; drain is done
    }
  }
}

void ThreadPool::Wait() {
  INFLEX_CHECK(!OnWorkerThread());
  std::unique_lock<std::mutex> lock(wait_mu_);
  all_done_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                 ThreadPool* pool) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (pool == nullptr) pool = &ThreadPool::Global();
  const size_t num_workers = pool->num_threads();
  // Serial fallbacks: trivial ranges, single-worker pools, and nested calls
  // from a task already running on this pool (the outer parallel stage owns
  // the workers; fanning out again would enqueue work nobody can pick up).
  if (n <= 1 || num_workers <= 1 || pool->OnWorkerThread()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // One chunk per worker unless the range is large enough that per-item cost
  // imbalance is worth extra claims; oversubscribing small ranges only
  // multiplies dispatch traffic (the old 4x-always policy turned an 8-item
  // batch into 32 lock round-trips).
  const size_t num_chunks = n >= num_workers * 64
                                ? std::min(n, num_workers * 4)
                                : std::min(n, num_workers);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;

  // Chunk-claiming dispatch: runner tasks and the calling thread all claim
  // chunks from one atomic cursor. Completion is "every runner task exited
  // and the caller's own claiming loop exited" — at that point the cursor is
  // exhausted and every claimed chunk has been executed by its claimant, so
  // no task can still touch this stack frame.
  std::atomic<size_t> next_chunk{0};
  const auto run_chunks = [&] {
    while (true) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const size_t start = begin + c * chunk;
      const size_t stop = std::min(end, start + chunk);
      for (size_t i = start; i < stop; ++i) fn(i);
    }
  };

  // The caller claims too, so it covers one runner's worth of chunks.
  const size_t num_runners = std::min(num_workers, num_chunks) - 1;
  size_t runners_exited = 0;  // guarded by mu
  std::mutex mu;
  std::condition_variable cv;
  for (size_t r = 0; r < num_runners; ++r) {
    pool->Submit([&] {
      run_chunks();
      // Count AND notify under the lock: if the increment were outside, the
      // waiting caller could observe completion, return, and destroy mu/cv
      // on its stack while this runner is still between the increment and
      // the notify. Notifying under the lock also keeps the caller's wait
      // blocked on re-acquiring mu until this runner is fully done with cv.
      std::lock_guard<std::mutex> lock(mu);
      if (++runners_exited == num_runners) cv.notify_all();
    });
  }
  run_chunks();
  if (num_runners > 0) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return runners_exited == num_runners; });
  }
}

}  // namespace inflex
