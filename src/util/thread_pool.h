#ifndef INFLEX_UTIL_THREAD_POOL_H_
#define INFLEX_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace inflex {

/// \brief Fixed-size worker pool used to parallelize embarrassingly parallel
/// stages (Monte-Carlo spread estimation, per-index-point CELF++ runs, batched
/// query serving).
///
/// Tasks are plain std::function<void()>; Wait() blocks until every submitted
/// task has finished.
///
/// Scalability: each worker owns its own task deque behind its own mutex;
/// Submit() pushes to one worker's deque (round-robin) and idle workers steal
/// from their siblings, so concurrent submitters and workers never serialize
/// on a single pool-wide lock the way the original one-queue design did.
/// Sleep/wake uses a shared condvar that is touched only when a worker has
/// found the whole pool empty — on a busy pool, Submit() is one small
/// uncontended lock plus an atomic increment, with no condvar signal at all.
///
/// Re-entrancy contract: Submit() and ParallelFor() may be called from inside
/// a task running on this pool. A nested submission executes inline on the
/// calling worker (and a nested ParallelFor degrades to a serial loop) instead
/// of enqueueing — enqueueing and blocking on a pool whose workers are all
/// blocked on the same queue is a self-deadlock. Wait() must NOT be called
/// from a worker of the same pool (a worker can never observe its own task as
/// finished); this is CHECK-enforced.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. Called from one of this pool's own
  /// workers, the task runs inline (synchronously) instead — see the
  /// re-entrancy contract above.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed. Must not be called
  /// from one of this pool's workers.
  void Wait();

  /// True when the calling thread is one of this pool's workers (i.e. we are
  /// inside a task of this pool).
  bool OnWorkerThread() const;

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool (lazily created with hardware concurrency).
  static ThreadPool& Global();

 private:
  /// One worker's task deque. Cache-line separated so pushes to neighboring
  /// queues never false-share; the mutex covers only push/pop of the deque.
  struct alignas(64) WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops from queue `q` (front). True on success.
  bool PopFrom(size_t q, std::function<void()>* task);
  /// Steals from any sibling of `self` (back, to stay off the owner's hot
  /// end). True on success.
  bool StealFrom(size_t self, std::function<void()>* task);
  /// Wakes one sleeping worker if any worker is parked.
  void WakeOne();

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<size_t> next_queue_{0};

  /// Queued-but-not-yet-popped tasks across all worker queues. Drives the
  /// sleep predicate; each push strictly precedes its increment so a woken
  /// worker that sees pending_ > 0 will find the task by scanning.
  std::atomic<size_t> pending_{0};
  /// Submitted-but-not-finished tasks; drives Wait().
  std::atomic<size_t> in_flight_{0};
  std::atomic<bool> shutting_down_{false};

  /// Sleep/wake plane — touched only when workers run dry.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<size_t> num_sleepers_{0};

  /// Wait() plane.
  std::mutex wait_mu_;
  std::condition_variable all_done_;
};

/// Runs `fn(i)` for every i in [begin, end) across the given pool (or the
/// global pool when `pool` is nullptr), in contiguous chunks. Blocks until
/// every iteration has finished. Falls back to a serial loop for tiny ranges
/// and when invoked from a worker of the target pool (nested parallelism —
/// the outer loop already owns the workers).
///
/// Dispatch is chunk-claiming: the range is cut into at most one chunk per
/// worker (4x oversubscription only for large ranges, where per-item cost
/// imbalance is worth extra claims), a handful of runner tasks are submitted,
/// and the calling thread claims and executes chunks alongside them from a
/// shared atomic cursor. A small batch therefore costs a few uncontended
/// per-worker pushes — not one pool-wide lock round-trip per chunk — and the
/// caller never blocks while there is work left to claim.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn,
                 ThreadPool* pool = nullptr);

}  // namespace inflex

#endif  // INFLEX_UTIL_THREAD_POOL_H_
