#ifndef INFLEX_UTIL_THREAD_POOL_H_
#define INFLEX_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace inflex {

/// \brief Fixed-size worker pool used to parallelize embarrassingly parallel
/// stages (Monte-Carlo spread estimation, per-index-point CELF++ runs).
///
/// Tasks are plain std::function<void()>; Wait() blocks until every submitted
/// task has finished. The pool is not re-entrant: tasks must not submit tasks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool (lazily created with hardware concurrency).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `fn(i)` for every i in [begin, end) across the given pool (or the
/// global pool when `pool` is nullptr), in contiguous chunks. Blocks until
/// every iteration has finished. Falls back to a serial loop for tiny ranges.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn,
                 ThreadPool* pool = nullptr);

}  // namespace inflex

#endif  // INFLEX_UTIL_THREAD_POOL_H_
