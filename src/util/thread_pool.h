#ifndef INFLEX_UTIL_THREAD_POOL_H_
#define INFLEX_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace inflex {

/// \brief Fixed-size worker pool used to parallelize embarrassingly parallel
/// stages (Monte-Carlo spread estimation, per-index-point CELF++ runs, batched
/// query serving).
///
/// Tasks are plain std::function<void()>; Wait() blocks until every submitted
/// task has finished.
///
/// Re-entrancy contract: Submit() and ParallelFor() may be called from inside
/// a task running on this pool. A nested submission executes inline on the
/// calling worker (and a nested ParallelFor degrades to a serial loop) instead
/// of enqueueing — enqueueing and blocking on a pool whose workers are all
/// blocked on the same queue is a self-deadlock. Wait() must NOT be called
/// from a worker of the same pool (a worker can never observe its own task as
/// finished); this is CHECK-enforced.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. Called from one of this pool's own
  /// workers, the task runs inline (synchronously) instead — see the
  /// re-entrancy contract above.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed. Must not be called
  /// from one of this pool's workers.
  void Wait();

  /// True when the calling thread is one of this pool's workers (i.e. we are
  /// inside a task of this pool).
  bool OnWorkerThread() const;

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool (lazily created with hardware concurrency).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `fn(i)` for every i in [begin, end) across the given pool (or the
/// global pool when `pool` is nullptr), in contiguous chunks. Blocks until
/// every iteration has finished. Falls back to a serial loop for tiny ranges
/// and when invoked from a worker of the target pool (nested parallelism —
/// the outer loop already owns the workers).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn,
                 ThreadPool* pool = nullptr);

}  // namespace inflex

#endif  // INFLEX_UTIL_THREAD_POOL_H_
