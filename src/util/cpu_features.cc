#include "util/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace inflex {
namespace util {

CpuSimdFeatures DetectCpuSimd() {
  CpuSimdFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return f;
}

bool ForceScalarRequested(const char* value) {
  if (value == nullptr) return false;
  if (value[0] == '\0') return false;
  return std::strcmp(value, "0") != 0;
}

bool ForceScalarFromEnv() {
  return ForceScalarRequested(std::getenv("INFLEX_FORCE_SCALAR"));
}

}  // namespace util
}  // namespace inflex
