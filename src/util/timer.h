#ifndef INFLEX_UTIL_TIMER_H_
#define INFLEX_UTIL_TIMER_H_

#include <chrono>

namespace inflex {

/// \brief Monotonic wall-clock stopwatch used by the query evaluator and the
/// experiment harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace inflex

#endif  // INFLEX_UTIL_TIMER_H_
