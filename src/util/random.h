#ifndef INFLEX_UTIL_RANDOM_H_
#define INFLEX_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace inflex {

/// \brief Fast deterministic PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can drive
/// <random> distributions, while also providing the handful of inline
/// samplers (uniform double, bounded int, Bernoulli, Gamma) used in the hot
/// cascade-simulation loops without libstdc++ distribution overhead.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion, the recommended seeding procedure for xoshiro.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  /// Next raw 64-bit output.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    INFLEX_CHECK_GT(n, 0u);
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double Normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * f;
    has_cached_normal_ = true;
    return u * f;
  }

  /// Gamma(shape, 1) sample via Marsaglia–Tsang; supports shape < 1 via the
  /// standard boosting trick. Requires shape > 0.
  double Gamma(double shape) {
    INFLEX_CHECK_GT(shape, 0.0);
    if (shape < 1.0) {
      const double u = Uniform();
      // Guard against u == 0 which would return an exact zero sample.
      const double boost =
          std::pow(u > 0 ? u : std::numeric_limits<double>::min(),
                   1.0 / shape);
      return Gamma(shape + 1.0) * boost;
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
      double x, v;
      do {
        x = Normal();
        v = 1.0 + c * x;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = Uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (u > 0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v;
      }
    }
  }

  /// Derives an independent child generator (for per-thread/per-task use).
  Rng Fork() { return Rng(Next()); }

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[UniformInt(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace inflex

#endif  // INFLEX_UTIL_RANDOM_H_
