#ifndef INFLEX_UTIL_ALIGNED_H_
#define INFLEX_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace inflex {
namespace util {

/// \brief Minimal std::allocator replacement that over-aligns every
/// allocation to `Alignment` bytes (default: one cache line). The KL kernel
/// layer's SoA buffers (BbTree::point_data_, per-node child-center matrices,
/// the batched-screen gather scratch) use it together with row strides padded
/// to a multiple of Alignment/sizeof(T), so every row starts on a cache-line
/// boundary and a vector load never straddles two lines.
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Alignment>&) const noexcept {
    return false;
  }
};

/// A std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

/// Rounds a row length up so consecutive rows of a row-major matrix each
/// start 64-byte aligned (for double rows: the next multiple of 8).
constexpr std::size_t AlignedRowStride(std::size_t n,
                                       std::size_t elem_size = sizeof(double)) {
  const std::size_t per_line = 64 / elem_size;
  return (n + per_line - 1) / per_line * per_line;
}

}  // namespace util
}  // namespace inflex

#endif  // INFLEX_UTIL_ALIGNED_H_
