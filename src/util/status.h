#ifndef INFLEX_UTIL_STATUS_H_
#define INFLEX_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace inflex {

/// \brief Machine-readable error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kNotImplemented,
  kInternal,
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail without a value payload.
///
/// Follows the Arrow/RocksDB idiom: cheap to copy in the OK case (a single
/// pointer test), carries a code and message otherwise. Functions in this
/// library that can fail at runtime (I/O, parsing, user-supplied parameters)
/// return Status or Result<T>; programming errors use INFLEX_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // nullptr means OK
};

/// \brief Outcome of an operation returning T on success, Status on failure.
///
/// Usage:
/// \code
///   Result<Graph> r = LoadGraph(path);
///   if (!r.ok()) return r.status();
///   Graph g = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (failure). Aborts if status is OK, since an
  /// OK Result must carry a value.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status (OK if this Result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Returns the value; must only be called when ok().
  const T& ValueOrDie() const& { return std::get<T>(payload_); }
  T& ValueOrDie() & { return std::get<T>(payload_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(payload_)); }

  /// Returns the value or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define INFLEX_RETURN_NOT_OK(expr)                   \
  do {                                               \
    ::inflex::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (false)

#define INFLEX_CONCAT_IMPL(x, y) x##y
#define INFLEX_CONCAT(x, y) INFLEX_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error propagates the Status, on
/// success move-assigns the value into `lhs` (which it declares).
#define INFLEX_ASSIGN_OR_RETURN(lhs, expr)                            \
  INFLEX_ASSIGN_OR_RETURN_IMPL(INFLEX_CONCAT(_result_, __LINE__), lhs, expr)

#define INFLEX_ASSIGN_OR_RETURN_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                                 \
  if (!result_name.ok()) return result_name.status();        \
  lhs = std::move(result_name).ValueOrDie()

}  // namespace inflex

#endif  // INFLEX_UTIL_STATUS_H_
