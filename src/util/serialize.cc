#include "util/serialize.h"

#include <algorithm>

namespace inflex {

Result<BinaryWriter> BinaryWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return BinaryWriter(f);
}

Status BinaryWriter::WriteBytes(const void* data, size_t n) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer closed");
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

Status BinaryWriter::WriteString(const std::string& s) {
  INFLEX_RETURN_NOT_OK(WritePod<uint64_t>(s.size()));
  if (!s.empty()) return WriteBytes(s.data(), s.size());
  return Status::OK();
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const bool ok = std::fflush(file_) == 0;
  CloseFile();
  if (!ok) return Status::IOError("flush failed on close");
  return Status::OK();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return BinaryReader(f);
}

Status BinaryReader::ReadBytes(void* data, size_t n) {
  if (file_ == nullptr) return Status::FailedPrecondition("reader closed");
  if (std::fread(data, 1, n, file_) != n) {
    return Status::IOError("short read (truncated or corrupt file)");
  }
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* s) {
  uint64_t n = 0;
  INFLEX_RETURN_NOT_OK(ReadPod(&n));
  if (n > (1ull << 32)) return Status::IOError("corrupt string length");
  s->resize(n);
  if (n > 0) return ReadBytes(s->data(), n);
  return Status::OK();
}

Status WriteHeader(BinaryWriter* w, uint32_t magic, uint32_t version) {
  INFLEX_RETURN_NOT_OK(w->WritePod(magic));
  return w->WritePod(version);
}

Status CheckHeader(BinaryReader* r, uint32_t magic, uint32_t expected_version) {
  uint32_t m = 0, v = 0;
  INFLEX_RETURN_NOT_OK(r->ReadPod(&m));
  INFLEX_RETURN_NOT_OK(r->ReadPod(&v));
  if (m != magic) return Status::IOError("bad magic: not an inflex artifact");
  if (v != expected_version) {
    return Status::IOError("unsupported artifact version " + std::to_string(v) +
                           " (expected " + std::to_string(expected_version) +
                           ")");
  }
  return Status::OK();
}

}  // namespace inflex
