#include "stats/dirichlet.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"
#include "util/check.h"

namespace inflex {
namespace stats {

Dirichlet::Dirichlet(std::vector<double> alpha) : alpha_(std::move(alpha)) {
  INFLEX_CHECK(!alpha_.empty());
  alpha_sum_ = 0.0;
  for (double a : alpha_) {
    INFLEX_CHECK_GT(a, 0.0);
    alpha_sum_ += a;
  }
  log_norm_ = -std::lgamma(alpha_sum_);
  for (double a : alpha_) log_norm_ += std::lgamma(a);
}

std::vector<double> Dirichlet::Mean() const {
  std::vector<double> m(alpha_.size());
  for (size_t k = 0; k < alpha_.size(); ++k) m[k] = alpha_[k] / alpha_sum_;
  return m;
}

double Dirichlet::LogPdf(const std::vector<double>& gamma) const {
  INFLEX_CHECK_EQ(gamma.size(), alpha_.size());
  constexpr double kEps = 1e-12;
  double lp = -log_norm_;
  for (size_t k = 0; k < alpha_.size(); ++k) {
    lp += (alpha_[k] - 1.0) * std::log(std::max(gamma[k], kEps));
  }
  return lp;
}

std::vector<double> Dirichlet::Sample(Rng* rng) const {
  std::vector<double> g(alpha_.size());
  double sum = 0.0;
  for (size_t k = 0; k < alpha_.size(); ++k) {
    g[k] = rng->Gamma(alpha_[k]);
    sum += g[k];
  }
  if (sum <= 0.0) {
    // All Gamma draws underflowed (possible for very small α); return the
    // uniform center as a safe fallback.
    std::fill(g.begin(), g.end(), 1.0 / static_cast<double>(g.size()));
    return g;
  }
  for (double& v : g) v /= sum;
  return g;
}

std::vector<std::vector<double>> Dirichlet::SampleMany(size_t n,
                                                       Rng* rng) const {
  std::vector<std::vector<double>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Sample(rng));
  return out;
}

namespace {

// Sufficient statistics: log p̄_k = (1/N) Σ_i log x_{ik}, with ε clamping.
std::vector<double> MeanLog(const std::vector<std::vector<double>>& data,
                            double eps) {
  const size_t dim = data.front().size();
  std::vector<double> mean_log(dim, 0.0);
  for (const auto& row : data) {
    for (size_t k = 0; k < dim; ++k) {
      mean_log[k] += std::log(std::max(row[k], eps));
    }
  }
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (double& v : mean_log) v *= inv_n;
  return mean_log;
}

// Moment-matching initialization (Minka 2000, Eq. 23): estimate the precision
// from the first two moments of the first usable component.
std::vector<double> MomentInit(const std::vector<std::vector<double>>& data) {
  const size_t dim = data.front().size();
  const size_t n = data.size();
  std::vector<double> mean(dim, 0.0), mean_sq(dim, 0.0);
  for (const auto& row : data) {
    for (size_t k = 0; k < dim; ++k) {
      mean[k] += row[k];
      mean_sq[k] += row[k] * row[k];
    }
  }
  for (size_t k = 0; k < dim; ++k) {
    mean[k] /= static_cast<double>(n);
    mean_sq[k] /= static_cast<double>(n);
  }
  double precision = static_cast<double>(dim);
  for (size_t k = 0; k < dim; ++k) {
    const double var = mean_sq[k] - mean[k] * mean[k];
    if (var > 1e-12 && mean[k] > 1e-12) {
      precision = (mean[k] - mean_sq[k]) / var;
      break;
    }
  }
  precision = std::max(precision, 1e-3);
  std::vector<double> alpha(dim);
  for (size_t k = 0; k < dim; ++k) {
    alpha[k] = std::max(mean[k] * precision, 1e-6);
  }
  return alpha;
}

// One sweep of Minka's fixed-point iteration:
//   ψ(α_k^new) = ψ(Σ_j α_j) + log p̄_k.
void FixedPointSweep(const std::vector<double>& mean_log,
                     std::vector<double>* alpha) {
  double alpha_sum = 0.0;
  for (double a : *alpha) alpha_sum += a;
  const double psi_sum = Digamma(alpha_sum);
  for (size_t k = 0; k < alpha->size(); ++k) {
    (*alpha)[k] = InverseDigamma(psi_sum + mean_log[k]);
  }
}

// One step of Minka's generalized Newton iteration, exploiting the
// diagonal-plus-rank-one structure of the Hessian. Returns false (leaving
// alpha untouched) when the step would exit the positive orthant.
bool NewtonStep(const std::vector<double>& mean_log, size_t n,
                std::vector<double>* alpha) {
  const size_t dim = alpha->size();
  double alpha_sum = 0.0;
  for (double a : *alpha) alpha_sum += a;
  const double psi_sum = Digamma(alpha_sum);
  const double nn = static_cast<double>(n);

  std::vector<double> g(dim), q(dim);
  for (size_t k = 0; k < dim; ++k) {
    g[k] = nn * (psi_sum - Digamma((*alpha)[k]) + mean_log[k]);
    q[k] = -nn * Trigamma((*alpha)[k]);
  }
  const double z = nn * Trigamma(alpha_sum);
  double sum_g_over_q = 0.0, sum_inv_q = 0.0;
  for (size_t k = 0; k < dim; ++k) {
    sum_g_over_q += g[k] / q[k];
    sum_inv_q += 1.0 / q[k];
  }
  const double b = sum_g_over_q / (1.0 / z + sum_inv_q);

  std::vector<double> next(dim);
  for (size_t k = 0; k < dim; ++k) {
    next[k] = (*alpha)[k] - (g[k] - b) / q[k];
    if (!(next[k] > 0.0) || !std::isfinite(next[k])) return false;
  }
  *alpha = std::move(next);
  return true;
}

}  // namespace

Result<Dirichlet> FitDirichletMle(const std::vector<std::vector<double>>& data,
                                  const DirichletMleOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("Dirichlet MLE requires at least one point");
  }
  const size_t dim = data.front().size();
  if (dim < 2) {
    return Status::InvalidArgument("Dirichlet MLE requires dimension >= 2");
  }
  for (const auto& row : data) {
    if (row.size() != dim) {
      return Status::InvalidArgument("inconsistent dimensions in MLE data");
    }
    for (double v : row) {
      if (!std::isfinite(v) || v < 0.0) {
        return Status::InvalidArgument("non-finite or negative simplex entry");
      }
    }
  }

  const std::vector<double> mean_log = MeanLog(data, options.smoothing_eps);
  std::vector<double> alpha = MomentInit(data);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::vector<double> prev = alpha;
    bool stepped = false;
    if (options.use_newton) {
      stepped = NewtonStep(mean_log, data.size(), &alpha);
    }
    if (!stepped) {
      FixedPointSweep(mean_log, &alpha);
    }
    double max_rel = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      max_rel = std::max(max_rel,
                         std::fabs(alpha[k] - prev[k]) / (1.0 + prev[k]));
    }
    if (max_rel < options.tolerance) break;
  }
  for (double a : alpha) {
    if (!(a > 0.0) || !std::isfinite(a)) {
      return Status::Internal("Dirichlet MLE diverged");
    }
  }
  return Dirichlet(std::move(alpha));
}

}  // namespace stats
}  // namespace inflex
