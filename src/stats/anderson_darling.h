#ifndef INFLEX_STATS_ANDERSON_DARLING_H_
#define INFLEX_STATS_ANDERSON_DARLING_H_

#include <vector>

#include "util/status.h"

namespace inflex {
namespace stats {

/// \brief Result of an Anderson-Darling normality test (mean and variance
/// estimated from the sample — "case 3" in D'Agostino & Stephens).
struct AndersonDarlingResult {
  /// Raw A² statistic.
  double a_squared = 0.0;
  /// Small-sample adjusted statistic A*² = A²(1 + 0.75/n + 2.25/n²).
  double a_squared_star = 0.0;
  /// Approximate p-value for the null hypothesis "sample is normal".
  double p_value = 0.0;
  size_t n = 0;

  /// True when the normality hypothesis is NOT rejected at level alpha.
  bool IsNormal(double alpha) const { return p_value >= alpha; }
};

/// Runs the Anderson-Darling normality test on `sample`.
///
/// Used in two places, exactly as in the paper: (a) deciding whether a
/// cluster should be split while learning the bb-tree branching factor
/// (G-means), and (b) the `similar_enough` early-stopping criterion of the
/// INFLEX similarity search (Algorithm 1).
///
/// Fails for fewer than 5 observations or a degenerate (zero-variance)
/// sample.
Result<AndersonDarlingResult> AndersonDarlingNormality(
    const std::vector<double>& sample);

}  // namespace stats
}  // namespace inflex

#endif  // INFLEX_STATS_ANDERSON_DARLING_H_
