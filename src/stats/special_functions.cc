#include "stats/special_functions.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace inflex {
namespace stats {

double Digamma(double x) {
  INFLEX_CHECK_GT(x, 0.0);
  double result = 0.0;
  // Recurrence ψ(x) = ψ(x+1) − 1/x until the asymptotic series is accurate.
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion: ψ(x) ≈ ln x − 1/(2x) − Σ B_{2n}/(2n x^{2n}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -= inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 - inv2 / 132.0))));
  return result;
}

double Trigamma(double x) {
  INFLEX_CHECK_GT(x, 0.0);
  double result = 0.0;
  // Recurrence ψ'(x) = ψ'(x+1) + 1/x².
  while (x < 10.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // Asymptotic: ψ'(x) ≈ 1/x + 1/(2x²) + Σ B_{2n}/x^{2n+1}.
  result += inv * (1.0 +
                   inv * (0.5 +
                          inv * (1.0 / 6.0 -
                                 inv2 * (1.0 / 30.0 -
                                         inv2 * (1.0 / 42.0 - inv2 / 30.0)))));
  return result;
}

double InverseDigamma(double y) {
  // Minka (2000), "Estimating a Dirichlet distribution", Appendix C.
  double x;
  if (y >= -2.22) {
    x = std::exp(y) + 0.5;
  } else {
    const double gamma_euler = 0.5772156649015328606;
    x = -1.0 / (y + gamma_euler);
  }
  for (int i = 0; i < 5; ++i) {
    x -= (Digamma(x) - y) / Trigamma(x);
    if (!(x > 0.0)) x = std::numeric_limits<double>::min();
  }
  return x;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

namespace {

// Continued-fraction evaluation for the incomplete beta function
// (modified Lentz method).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  INFLEX_CHECK_GT(a, 0.0);
  INFLEX_CHECK_GT(b, 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoSidedPValue(double t, double dof) {
  INFLEX_CHECK_GT(dof, 0.0);
  const double x = dof / (dof + t * t);
  return RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
}

double StudentTUpperPValue(double t, double dof) {
  const double two_sided = StudentTTwoSidedPValue(t, dof);
  return t >= 0.0 ? two_sided / 2.0 : 1.0 - two_sided / 2.0;
}

}  // namespace stats
}  // namespace inflex
