#ifndef INFLEX_STATS_SPECIAL_FUNCTIONS_H_
#define INFLEX_STATS_SPECIAL_FUNCTIONS_H_

namespace inflex {
namespace stats {

/// Digamma function ψ(x) = d/dx ln Γ(x), for x > 0.
/// Asymptotic expansion with upward recurrence below x = 6; absolute error
/// below 1e-12 over the domain used by Dirichlet estimation.
double Digamma(double x);

/// Trigamma function ψ'(x), for x > 0.
double Trigamma(double x);

/// Inverse of the digamma function (Minka 2000, Appendix C): returns x > 0
/// such that ψ(x) = y, via 5 Newton iterations from a piecewise-analytic
/// initialization.
double InverseDigamma(double y);

/// Standard normal CDF Φ(z).
double NormalCdf(double z);

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, x in [0,1],
/// evaluated with the Lentz continued fraction (Numerical Recipes style).
double RegularizedIncompleteBeta(double a, double b, double x);

/// Two-sided p-value of a Student-t statistic with `dof` degrees of freedom.
double StudentTTwoSidedPValue(double t, double dof);

/// One-sided (upper-tail) p-value of a Student-t statistic.
double StudentTUpperPValue(double t, double dof);

}  // namespace stats
}  // namespace inflex

#endif  // INFLEX_STATS_SPECIAL_FUNCTIONS_H_
