#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "stats/special_functions.h"
#include "util/check.h"

namespace inflex {
namespace stats {

double Mean(const std::vector<double>& v) {
  INFLEX_CHECK(!v.empty());
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  INFLEX_CHECK_GE(v.size(), 2u);
  const double m = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(v.size() - 1);
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Percentile(const std::vector<double>& v, double q) {
  INFLEX_CHECK(!v.empty());
  INFLEX_CHECK_GE(q, 0.0);
  INFLEX_CHECK_LE(q, 1.0);
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double WeightedPercentile(const std::vector<double>& v,
                          const std::vector<double>& w, double q) {
  INFLEX_CHECK(!v.empty());
  INFLEX_CHECK_EQ(v.size(), w.size());
  INFLEX_CHECK_GE(q, 0.0);
  INFLEX_CHECK_LE(q, 1.0);
  std::vector<std::pair<double, double>> sorted(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    INFLEX_CHECK_GT(w[i], 0.0);
    sorted[i] = {v[i], w[i]};
  }
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (const auto& [value, weight] : sorted) total += weight;
  // Midpoint cumulative position of each sample; the quantile interpolates
  // linearly between the two samples bracketing q.
  double cum = 0.0;
  double prev_pos = 0.0;
  double prev_value = sorted.front().first;
  for (const auto& [value, weight] : sorted) {
    const double pos = (cum + weight / 2.0) / total;
    if (q <= pos) {
      if (pos == prev_pos) return value;
      const double frac = (q - prev_pos) / (pos - prev_pos);
      return prev_value * (1.0 - frac) + value * frac;
    }
    cum += weight;
    prev_pos = pos;
    prev_value = value;
  }
  return sorted.back().first;
}

Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("correlation inputs differ in length");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("correlation requires at least 2 points");
  }
  const double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return Status::InvalidArgument("correlation undefined for constant input");
  }
  return sxy / std::sqrt(sxx * syy);
}

Result<double> Rmse(const std::vector<double>& predicted,
                    const std::vector<double>& truth) {
  if (predicted.size() != truth.size()) {
    return Status::InvalidArgument("RMSE inputs differ in length");
  }
  if (predicted.empty()) {
    return Status::InvalidArgument("RMSE requires at least one point");
  }
  double ss = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double d = predicted[i] - truth[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(truth.size()));
}

Result<double> Nrmse(const std::vector<double>& predicted,
                     const std::vector<double>& truth) {
  INFLEX_ASSIGN_OR_RETURN(const double rmse, Rmse(predicted, truth));
  const double m = Mean(truth);
  if (m == 0.0) {
    return Status::InvalidArgument("NRMSE undefined: ground truth mean is 0");
  }
  return rmse / std::fabs(m);
}

Result<PairedTTestResult> PairedTTest(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired t-test inputs differ in length");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("paired t-test requires at least 2 pairs");
  }
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  const double md = Mean(diff);
  const double var = Variance(diff);
  if (!(var > 0.0)) {
    return Status::InvalidArgument("paired t-test: zero-variance differences");
  }
  const double n = static_cast<double>(diff.size());
  PairedTTestResult r;
  r.n = diff.size();
  r.mean_difference = md;
  r.t_statistic = md / std::sqrt(var / n);
  r.p_value_two_sided = StudentTTwoSidedPValue(r.t_statistic, n - 1.0);
  return r;
}

}  // namespace stats
}  // namespace inflex
