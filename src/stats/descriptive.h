#ifndef INFLEX_STATS_DESCRIPTIVE_H_
#define INFLEX_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace inflex {
namespace stats {

/// Arithmetic mean. Requires a non-empty vector.
double Mean(const std::vector<double>& v);

/// Unbiased sample variance (n−1 denominator). Requires n >= 2.
double Variance(const std::vector<double>& v);

/// Sample standard deviation.
double StdDev(const std::vector<double>& v);

/// The q-quantile (q in [0, 1]) by linear interpolation between order
/// statistics (the common "type 7" estimator). Requires a non-empty vector;
/// the input need not be sorted (a copy is sorted internally). Used for the
/// serving-latency percentiles (p50/p95/p99).
double Percentile(const std::vector<double>& v, double q);

/// The q-quantile of a WEIGHTED sample: sample i stands in for `w[i]`
/// observations of value `v[i]`. Uses midpoint cumulative positions
/// p_i = (cum_i − w_i/2) / W with linear interpolation between adjacent
/// samples (clamped at the extremes) — the standard weighted estimator
/// (matches numpy's "inverted_cdf"-with-averaging family; equal weights
/// recover an unweighted estimate up to interpolation convention). Built
/// for merging per-stripe
/// latency reservoirs whose observed counts differ: each reservoir sample
/// carries weight seen_i / |R_i|, so a lightly-loaded stripe no longer
/// drowns out a heavily-loaded one (the unweighted-concatenation bias).
/// Requires equal non-zero lengths, weights > 0, q in [0, 1].
double WeightedPercentile(const std::vector<double>& v,
                          const std::vector<double>& w, double q);

/// Pearson correlation coefficient of two equal-length samples.
/// Fails on mismatched lengths, n < 2, or a zero-variance side.
Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y);

/// Root-mean-square error between predictions and ground truth.
Result<double> Rmse(const std::vector<double>& predicted,
                    const std::vector<double>& truth);

/// RMSE normalized by the mean of the ground truth (the paper's NRMSE).
Result<double> Nrmse(const std::vector<double>& predicted,
                     const std::vector<double>& truth);

/// \brief Outcome of a paired two-sample t-test.
struct PairedTTestResult {
  double t_statistic = 0.0;
  double p_value_two_sided = 1.0;
  double mean_difference = 0.0;
  size_t n = 0;
};

/// Paired t-test on equal-length samples (used in the paper to compare
/// retrieval strategies and aggregation methods). Fails on mismatched
/// lengths, n < 2, or zero variance of the differences.
Result<PairedTTestResult> PairedTTest(const std::vector<double>& a,
                                      const std::vector<double>& b);

}  // namespace stats
}  // namespace inflex

#endif  // INFLEX_STATS_DESCRIPTIVE_H_
