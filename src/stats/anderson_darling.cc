#include "stats/anderson_darling.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"

namespace inflex {
namespace stats {

namespace {

// p-value approximation for the adjusted statistic, from D'Agostino &
// Stephens, "Goodness-of-Fit Techniques" (1986), Table 4.9.
double AdPValue(double a_star) {
  if (a_star >= 0.6) {
    return std::exp(1.2937 - 5.709 * a_star + 0.0186 * a_star * a_star);
  }
  if (a_star >= 0.34) {
    return std::exp(0.9177 - 4.279 * a_star - 1.38 * a_star * a_star);
  }
  if (a_star > 0.2) {
    return 1.0 - std::exp(-8.318 + 42.796 * a_star - 59.938 * a_star * a_star);
  }
  return 1.0 - std::exp(-13.436 + 101.14 * a_star - 223.73 * a_star * a_star);
}

}  // namespace

Result<AndersonDarlingResult> AndersonDarlingNormality(
    const std::vector<double>& sample) {
  const size_t n = sample.size();
  if (n < 5) {
    return Status::InvalidArgument(
        "Anderson-Darling test requires at least 5 observations");
  }
  double mean = 0.0;
  for (double v : sample) mean += v;
  mean /= static_cast<double>(n);
  double ss = 0.0;
  for (double v : sample) ss += (v - mean) * (v - mean);
  const double sd = std::sqrt(ss / static_cast<double>(n - 1));
  if (!(sd > 0.0) || !std::isfinite(sd)) {
    return Status::InvalidArgument(
        "Anderson-Darling test requires non-degenerate sample variance");
  }

  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) z[i] = (sample[i] - mean) / sd;
  std::sort(z.begin(), z.end());

  // Clamp the probits away from {0,1}: extreme outliers would otherwise
  // produce log(0). The clamp only strengthens the evidence against
  // normality, which is the conservative direction for both of our uses.
  constexpr double kTiny = 1e-15;
  double a2 = 0.0;
  const double nn = static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double phi_lo =
        std::clamp(NormalCdf(z[i]), kTiny, 1.0 - kTiny);
    const double phi_hi =
        std::clamp(NormalCdf(z[n - 1 - i]), kTiny, 1.0 - kTiny);
    a2 += (2.0 * static_cast<double>(i) + 1.0) *
          (std::log(phi_lo) + std::log1p(-phi_hi));
  }
  a2 = -nn - a2 / nn;

  AndersonDarlingResult result;
  result.n = n;
  result.a_squared = a2;
  result.a_squared_star = a2 * (1.0 + 0.75 / nn + 2.25 / (nn * nn));
  result.p_value = std::clamp(AdPValue(result.a_squared_star), 0.0, 1.0);
  return result;
}

}  // namespace stats
}  // namespace inflex
