#ifndef INFLEX_STATS_DIRICHLET_H_
#define INFLEX_STATS_DIRICHLET_H_

#include <cstddef>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace inflex {
namespace stats {

/// \brief Dirichlet distribution over the (Z−1)-simplex with concentration
/// parameters α. Used both to model the item catalog (index-point selection,
/// §3.1 of the paper) and to synthesize catalogs in the data substrate.
class Dirichlet {
 public:
  /// Constructs Dirichlet(α). All α_k must be positive.
  explicit Dirichlet(std::vector<double> alpha);

  size_t dim() const { return alpha_.size(); }
  const std::vector<double>& alpha() const { return alpha_; }

  /// Sum of concentration parameters (the "precision").
  double alpha_sum() const { return alpha_sum_; }

  /// Expected value E[γ] (the normalized α vector).
  std::vector<double> Mean() const;

  /// Log density at a point on the simplex; the point is ε-clamped away from
  /// the boundary to keep the density finite for sparse inputs.
  double LogPdf(const std::vector<double>& gamma) const;

  /// Draws one sample via normalized Gamma variates.
  std::vector<double> Sample(Rng* rng) const;

  /// Draws `n` samples.
  std::vector<std::vector<double>> SampleMany(size_t n, Rng* rng) const;

 private:
  std::vector<double> alpha_;
  double alpha_sum_;
  double log_norm_;  // log B(α)
};

/// \brief Options for maximum-likelihood Dirichlet estimation.
struct DirichletMleOptions {
  /// Maximum Newton / fixed-point sweeps.
  int max_iterations = 1000;
  /// Convergence threshold on max |Δα_k| / (1 + |α_k|).
  double tolerance = 1e-9;
  /// Boundary clamp applied to the observations before taking logs.
  double smoothing_eps = 1e-10;
  /// When true uses Minka's generalized Newton iteration (with the
  /// diagonal-plus-rank-one Hessian inverse); otherwise the slower but
  /// unconditionally stable fixed-point iteration. Newton falls back to a
  /// fixed-point sweep whenever a step would leave the positive orthant.
  bool use_newton = true;
};

/// Fits Dirichlet concentration parameters that maximize the likelihood of
/// `data` (each row a point on the simplex) following Minka (2000).
/// Fails when data is empty, rows disagree on dimension, or any row has a
/// non-finite entry.
Result<Dirichlet> FitDirichletMle(const std::vector<std::vector<double>>& data,
                                  const DirichletMleOptions& options = {});

}  // namespace stats
}  // namespace inflex

#endif  // INFLEX_STATS_DIRICHLET_H_
