#include "tenant/tenant_router.h"

#include <chrono>
#include <utility>

namespace inflex {
namespace tenant {

const char* RouteDecisionName(RouteDecision decision) {
  switch (decision) {
    case RouteDecision::kOk:
      return "ok";
    case RouteDecision::kUnknownTenant:
      return "unknown-tenant";
    case RouteDecision::kShedQuery:
      return "shed-query";
  }
  return "?";
}

TenantRouter::TenantRouter(TenantRegistry* registry, Options options)
    : registry_(registry), options_(std::move(options)) {}

uint64_t TenantRouter::NowNs() const {
  if (options_.clock_ns) return options_.clock_ns();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Route TenantRouter::RouteQuery(std::string_view tenant_id) {
  Route route;
  route.tenant = registry_->Resolve(tenant_id);
  if (route.tenant == nullptr) {
    route.decision = RouteDecision::kUnknownTenant;
    return route;
  }
  route.decision = AdmitQuery(route.tenant.get()) ? RouteDecision::kOk
                                                  : RouteDecision::kShedQuery;
  return route;
}

bool TenantRouter::AdmitQuery(Tenant* tenant) {
  return tenant->TryAdmitQuery(NowNs());
}

Route TenantRouter::RouteDelta(std::string_view tenant_id) {
  Route route;
  route.tenant = registry_->Resolve(tenant_id);
  if (route.tenant == nullptr) {
    route.decision = RouteDecision::kUnknownTenant;
    return route;
  }
  route.tenant->RecordDeltaRouted();
  route.decision = RouteDecision::kOk;
  return route;
}

}  // namespace tenant
}  // namespace inflex
