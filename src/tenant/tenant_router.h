#ifndef INFLEX_TENANT_TENANT_ROUTER_H_
#define INFLEX_TENANT_TENANT_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "tenant/tenant_registry.h"

namespace inflex {
namespace tenant {

/// \brief What the router decided for one request.
enum class RouteDecision {
  /// Routed: `tenant` is set and (for queries) a budget token was spent.
  kOk,
  /// The tenant id names no registered tenant -> kInvalidRequest on the
  /// wire. Unknown ids must NOT fall through to the default tenant: that
  /// would silently cross catalogs on a typo.
  kUnknownTenant,
  /// The tenant's query token bucket is empty -> kOverloaded + retry-after.
  /// `tenant` is still set so callers can stamp per-tenant counters.
  kShedQuery,
};

const char* RouteDecisionName(RouteDecision decision);

/// \brief One routing outcome: the resolved tenant (when any) plus the
/// decision.
struct Route {
  std::shared_ptr<Tenant> tenant;
  RouteDecision decision = RouteDecision::kOk;
};

/// \brief The per-tenant admission layer in front of the shared worker pool:
/// resolves a wire tenant id against the registry (lock-free snapshot) and
/// charges the tenant's token bucket for queries, so a noisy tenant runs out
/// of its own budget long before it can flood the shared admission queue.
///
/// Deltas are budget-checked by the tenant's own maintainer instead (its
/// `pending_high_watermark` IS the bounded per-tenant delta queue; a bounce
/// surfaces as kRetryLater -> kOverloaded), so RouteDelta only resolves and
/// counts.
///
/// The clock is injectable so token-bucket tests are deterministic; the
/// default reads the steady clock. Thread-safe.
class TenantRouter {
 public:
  struct Options {
    /// Monotonic nanoseconds used to refill token buckets. Leave empty for
    /// std::chrono::steady_clock.
    std::function<uint64_t()> clock_ns;
  };

  /// The registry must outlive the router.
  explicit TenantRouter(TenantRegistry* registry, Options options = {});

  /// Resolves `tenant_id` (empty = default tenant) and spends one query
  /// token. Never blocks.
  Route RouteQuery(std::string_view tenant_id);

  /// Resolves `tenant_id` (empty = default tenant) and counts the routed
  /// delta. Back-pressure is the maintainer's job (see class comment).
  Route RouteDelta(std::string_view tenant_id);

  /// Charges one query token of an already-resolved tenant at the router
  /// clock (the server resolves once, pins the tenant, then charges — no
  /// second registry lookup, and a concurrently dropped tenant is still
  /// charged consistently against its own bucket).
  bool AdmitQuery(Tenant* tenant);

  TenantRegistry* registry() const { return registry_; }

 private:
  uint64_t NowNs() const;

  TenantRegistry* registry_;
  Options options_;
};

}  // namespace tenant
}  // namespace inflex

#endif  // INFLEX_TENANT_TENANT_ROUTER_H_
