#ifndef INFLEX_TENANT_TENANT_REGISTRY_H_
#define INFLEX_TENANT_TENANT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/topic_graph.h"
#include "inflex/index_maintainer.h"
#include "inflex/inflex_index.h"
#include "inflex/query_engine.h"
#include "util/status.h"

namespace inflex {
namespace tenant {

/// Tenant id a request with no (or an empty) tenant field routes to. v1
/// clients predate the tenant field entirely, so the default tenant is the
/// back-compat catalog: a single-tenant deployment never has to name it.
inline constexpr const char kDefaultTenantId[] = "default";

/// \brief Per-tenant admission budget. Zero values mean "unlimited" so a
/// default-constructed budget reproduces the pre-multi-tenant behavior
/// exactly (nothing shed at the tenant layer).
struct TenantBudget {
  /// Token-bucket refill rate for queries, in queries/second. 0 = no
  /// per-tenant query budget (only the server's global admission queue
  /// sheds).
  double query_rate_per_sec = 0.0;
  /// Bucket capacity in tokens (the burst a tenant may spend after idling).
  /// 0 = one second's worth of tokens (max(1, query_rate_per_sec)).
  double query_burst = 0.0;
  /// Bounded per-tenant delta queue: forwarded into the tenant's
  /// IndexMaintainerOptions::pending_high_watermark when the registry builds
  /// the maintainer, so an over-budget delta bounces with kRetryLater (and
  /// kOverloaded on the wire) without touching any other tenant's pipeline.
  /// 0 = unbounded.
  size_t delta_pending_limit = 0;

  /// Effective bucket capacity (resolves the 0 default).
  double burst_tokens() const {
    if (query_burst > 0.0) return query_burst;
    return query_rate_per_sec > 1.0 ? query_rate_per_sec : 1.0;
  }
  bool unlimited_queries() const { return query_rate_per_sec <= 0.0; }
};

/// \brief Everything needed to build one owned tenant: its id, budget, and
/// the per-tenant engine/maintainer tuning. Maintainer knobs are per tenant
/// by construction — eviction floors (`min_index_points`), decay thresholds,
/// and oracle choice can all differ between catalogs sharing one server.
struct TenantOptions {
  std::string id;
  TenantBudget budget;
  core::QueryEngineOptions engine;
  core::IndexMaintainerOptions maintainer;
  /// false builds a query-only tenant (deltas rejected as kInvalidRequest).
  bool with_maintainer = true;
};

/// \brief Cumulative per-tenant serving counters (the tenant-scoped slice of
/// the dashboard): the engine's ServingStats plus the router's budget
/// decisions and the maintenance plane's counters.
struct TenantStats {
  std::string id;
  core::ServingStats serving;
  /// Queries the token bucket admitted / shed at the tenant layer. Budget
  /// sheds are also mirrored into `serving.shed_count` via
  /// QueryEngine::RecordLoadShed so the per-tenant dashboard keeps one
  /// shed total.
  uint64_t queries_admitted = 0;
  uint64_t queries_shed = 0;
  /// Deltas routed to this tenant's maintainer / bounced by its pending
  /// watermark (kRetryLater -> kOverloaded on the wire).
  uint64_t deltas_routed = 0;
  uint64_t deltas_deferred = 0;
  bool has_maintainer = false;
  core::MaintenanceStats maintenance;
  /// One-line operator rendering ("tenant acme | 1200 req | shed 3 | ...").
  std::string ToString() const;
};

/// \brief One tenant: an id, a per-tenant QueryEngine + IndexMaintainer
/// (owned, or adopted from a caller who keeps ownership — benches and tests
/// wrap pre-built stacks), and the token-bucket budget state.
///
/// Thread-safety: everything is safe to call concurrently. The token bucket
/// sits behind a tiny per-tenant mutex — contention is per tenant, never
/// cross-tenant, and the registry lookup in front of it is lock-free.
class Tenant {
 public:
  /// Owning construction: builds the engine (and maintainer unless
  /// `options.with_maintainer` is false) around `initial`. The index may be
  /// shared across tenants — generations fork per tenant from there, since
  /// published generations are immutable. `graph` must outlive the tenant.
  /// `options.budget.delta_pending_limit` overrides
  /// `options.maintainer.pending_high_watermark` when non-zero.
  Tenant(const TenantOptions& options,
         std::shared_ptr<const core::InflexIndex> initial,
         const graph::TopicGraph* graph);

  /// Adopting construction: serves from an externally owned engine and
  /// (optional) maintainer, which must outlive the tenant.
  Tenant(std::string id, const TenantBudget& budget,
         core::QueryEngine* engine, core::IndexMaintainer* maintainer);

  ~Tenant();

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const std::string& id() const { return id_; }
  const TenantBudget& budget() const { return budget_; }
  core::QueryEngine* engine() const { return engine_; }
  /// nullptr for query-only tenants.
  core::IndexMaintainer* maintainer() const { return maintainer_; }

  /// Token-bucket admission for one query at time `now_ns` (monotonic
  /// nanoseconds; callers inject the clock so tests are deterministic).
  /// true = admitted (a token was spent). An unlimited budget always admits.
  /// On false the caller still owns the shed response; the tenant has
  /// already counted the shed and mirrored it into the engine's stats.
  bool TryAdmitQuery(uint64_t now_ns);

  /// Counts one delta routed to this tenant's maintainer.
  void RecordDeltaRouted();
  /// Counts one delta bounced by the tenant's pending watermark.
  void RecordDeltaDeferred();

  /// Point-in-time stats snapshot (engine + budget + maintenance).
  TenantStats Snapshot() const;

  /// Blocks until the tenant's maintenance pipeline is empty (no-op for
  /// query-only and adopted-maintainer-null tenants). DropTenant calls this
  /// after unpublishing the tenant, so a dropped tenant finishes its
  /// in-flight publications before the last reference lets go — the
  /// graceful per-tenant drain.
  void Drain();

 private:
  std::string id_;
  TenantBudget budget_;

  /// Owned stack (owning construction) — declaration order matters: the
  /// maintainer references the engine, so it must be destroyed first
  /// (members are destroyed in reverse order below).
  std::shared_ptr<const core::InflexIndex> initial_;
  std::unique_ptr<core::QueryEngine> owned_engine_;
  std::unique_ptr<core::IndexMaintainer> owned_maintainer_;

  core::QueryEngine* engine_ = nullptr;
  core::IndexMaintainer* maintainer_ = nullptr;

  /// Token bucket (guarded by bucket_mu_). Tokens refill continuously at
  /// query_rate_per_sec up to burst_tokens(); one token per admitted query.
  mutable std::mutex bucket_mu_;
  double tokens_ = 0.0;
  uint64_t last_refill_ns_ = 0;
  bool bucket_primed_ = false;

  std::atomic<uint64_t> queries_admitted_{0};
  std::atomic<uint64_t> queries_shed_{0};
  std::atomic<uint64_t> deltas_routed_{0};
  std::atomic<uint64_t> deltas_deferred_{0};
};

/// \brief The tenant table: id -> Tenant, RCU-published so the per-request
/// lookup on the serving hot path is one atomic shared_ptr load — no lock,
/// no refcount contention beyond the snapshot itself.
///
/// Writers (CreateTenant / AdoptTenant / DropTenant) serialize on a mutex,
/// copy the table, mutate the copy, and publish it atomically — the same
/// copy-on-write discipline the index generations use. Readers that resolved
/// a tenant keep it alive via shared_ptr even after a concurrent drop: a
/// dropped tenant finishes its in-flight queries and publications and is
/// destroyed when the last reference releases (graceful drain, never a
/// dangling engine).
class TenantRegistry {
 public:
  using Table = std::unordered_map<std::string, std::shared_ptr<Tenant>>;

  TenantRegistry();
  ~TenantRegistry();

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Lock-free lookup; nullptr when `id` is not registered.
  std::shared_ptr<Tenant> Lookup(std::string_view id) const;

  /// Lookup with the v1 back-compat rule: an empty id means the default
  /// tenant. nullptr when the resolved id is not registered.
  std::shared_ptr<Tenant> Resolve(std::string_view id) const;

  /// Builds and registers an owned tenant. Fails with kInvalidArgument on an
  /// empty id and kAlreadyExists on a duplicate.
  Result<std::shared_ptr<Tenant>> CreateTenant(
      const TenantOptions& options,
      std::shared_ptr<const core::InflexIndex> initial,
      const graph::TopicGraph* graph);

  /// Registers a tenant around an externally owned engine/maintainer (the
  /// caller keeps ownership and must outlive the registration).
  Result<std::shared_ptr<Tenant>> AdoptTenant(
      const std::string& id, const TenantBudget& budget,
      core::QueryEngine* engine, core::IndexMaintainer* maintainer);

  /// Unpublishes `id` (new lookups miss immediately) and, when `drain` is
  /// true, blocks until the tenant's maintenance pipeline is empty.
  /// In-flight holders of the tenant keep it alive until they finish.
  Status DropTenant(const std::string& id, bool drain = true);

  /// Point-in-time snapshot of every registered tenant, sorted by id (so
  /// dashboards and tests iterate deterministically).
  std::vector<std::shared_ptr<Tenant>> List() const;

  size_t size() const;

 private:
  Result<std::shared_ptr<Tenant>> Publish(const std::string& id,
                                          std::shared_ptr<Tenant> tenant);

  std::atomic<std::shared_ptr<const Table>> table_;
  std::mutex write_mu_;  // serializes copy-on-write publications
};

}  // namespace tenant
}  // namespace inflex

#endif  // INFLEX_TENANT_TENANT_REGISTRY_H_
