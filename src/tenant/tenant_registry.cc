#include "tenant/tenant_registry.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace inflex {
namespace tenant {

std::string TenantStats::ToString() const {
  std::ostringstream os;
  os << "tenant " << id << " | " << serving.num_requests << " req | "
     << static_cast<uint64_t>(serving.qps) << " QPS | hit "
     << static_cast<int>(serving.hit_rate() * 100.0) << "% | shed "
     << serving.shed_count << " (budget " << queries_shed << ") | deltas "
     << deltas_routed << " (+" << deltas_deferred << " deferred)";
  if (has_maintainer) {
    os << " | epoch " << maintenance.epoch << " | " << maintenance.index_points
       << " pts";
  }
  return os.str();
}

Tenant::Tenant(const TenantOptions& options,
               std::shared_ptr<const core::InflexIndex> initial,
               const graph::TopicGraph* graph)
    : id_(options.id), budget_(options.budget), initial_(std::move(initial)) {
  owned_engine_ =
      std::make_unique<core::QueryEngine>(initial_, options.engine);
  engine_ = owned_engine_.get();
  if (options.with_maintainer) {
    core::IndexMaintainerOptions mopts = options.maintainer;
    if (budget_.delta_pending_limit > 0) {
      mopts.pending_high_watermark = budget_.delta_pending_limit;
    }
    owned_maintainer_ = std::make_unique<core::IndexMaintainer>(
        initial_, graph, engine_, mopts);
    maintainer_ = owned_maintainer_.get();
  }
}

Tenant::Tenant(std::string id, const TenantBudget& budget,
               core::QueryEngine* engine, core::IndexMaintainer* maintainer)
    : id_(std::move(id)),
      budget_(budget),
      engine_(engine),
      maintainer_(maintainer) {}

Tenant::~Tenant() = default;

bool Tenant::TryAdmitQuery(uint64_t now_ns) {
  if (budget_.unlimited_queries()) {
    queries_admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(bucket_mu_);
    const double burst = budget_.burst_tokens();
    if (!bucket_primed_) {
      // A fresh bucket starts full: a tenant's first burst after creation
      // (or process start) is within budget by definition.
      tokens_ = burst;
      last_refill_ns_ = now_ns;
      bucket_primed_ = true;
    } else if (now_ns > last_refill_ns_) {
      const double elapsed_s =
          static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
      tokens_ = std::min(burst, tokens_ + elapsed_s * budget_.query_rate_per_sec);
      last_refill_ns_ = now_ns;
    }
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      admitted = true;
    }
  }
  if (admitted) {
    queries_admitted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    queries_shed_.fetch_add(1, std::memory_order_relaxed);
    // Mirror into the engine's ServingStats so the per-tenant dashboard has
    // one shed total covering both the tenant budget and the global queue.
    if (engine_ != nullptr) engine_->RecordLoadShed(1);
  }
  return admitted;
}

void Tenant::RecordDeltaRouted() {
  deltas_routed_.fetch_add(1, std::memory_order_relaxed);
}

void Tenant::RecordDeltaDeferred() {
  deltas_deferred_.fetch_add(1, std::memory_order_relaxed);
}

TenantStats Tenant::Snapshot() const {
  TenantStats stats;
  stats.id = id_;
  if (engine_ != nullptr) stats.serving = engine_->cumulative_stats();
  stats.queries_admitted = queries_admitted_.load(std::memory_order_relaxed);
  stats.queries_shed = queries_shed_.load(std::memory_order_relaxed);
  stats.deltas_routed = deltas_routed_.load(std::memory_order_relaxed);
  stats.deltas_deferred = deltas_deferred_.load(std::memory_order_relaxed);
  stats.has_maintainer = maintainer_ != nullptr;
  if (maintainer_ != nullptr) stats.maintenance = maintainer_->stats();
  return stats;
}

void Tenant::Drain() {
  if (maintainer_ != nullptr) maintainer_->Drain();
}

TenantRegistry::TenantRegistry() {
  table_.store(std::make_shared<const Table>(), std::memory_order_release);
}

TenantRegistry::~TenantRegistry() = default;

std::shared_ptr<Tenant> TenantRegistry::Lookup(std::string_view id) const {
  std::shared_ptr<const Table> table = table_.load(std::memory_order_acquire);
  // unordered_map<string,...>::find requires a string key pre-C++20
  // heterogeneous lookup; ids are short, so the copy is a non-issue on a
  // path that just took a shared_ptr snapshot anyway.
  auto it = table->find(std::string(id));
  return it == table->end() ? nullptr : it->second;
}

std::shared_ptr<Tenant> TenantRegistry::Resolve(std::string_view id) const {
  return Lookup(id.empty() ? std::string_view(kDefaultTenantId) : id);
}

Result<std::shared_ptr<Tenant>> TenantRegistry::Publish(
    const std::string& id, std::shared_ptr<Tenant> tenant) {
  std::lock_guard<std::mutex> lock(write_mu_);
  std::shared_ptr<const Table> old = table_.load(std::memory_order_acquire);
  if (old->count(id) > 0) {
    return Status::AlreadyExists("tenant '" + id + "' already registered");
  }
  auto next = std::make_shared<Table>(*old);
  (*next)[id] = tenant;
  table_.store(std::shared_ptr<const Table>(std::move(next)),
               std::memory_order_release);
  return tenant;
}

Result<std::shared_ptr<Tenant>> TenantRegistry::CreateTenant(
    const TenantOptions& options,
    std::shared_ptr<const core::InflexIndex> initial,
    const graph::TopicGraph* graph) {
  if (options.id.empty()) {
    return Status::InvalidArgument("tenant id must be non-empty");
  }
  if (initial == nullptr) {
    return Status::InvalidArgument("tenant '" + options.id +
                                   "' needs an initial index");
  }
  auto tenant = std::make_shared<Tenant>(options, std::move(initial), graph);
  return Publish(options.id, std::move(tenant));
}

Result<std::shared_ptr<Tenant>> TenantRegistry::AdoptTenant(
    const std::string& id, const TenantBudget& budget,
    core::QueryEngine* engine, core::IndexMaintainer* maintainer) {
  if (id.empty()) {
    return Status::InvalidArgument("tenant id must be non-empty");
  }
  if (engine == nullptr) {
    return Status::InvalidArgument("tenant '" + id + "' needs an engine");
  }
  auto tenant = std::make_shared<Tenant>(id, budget, engine, maintainer);
  return Publish(id, std::move(tenant));
}

Status TenantRegistry::DropTenant(const std::string& id, bool drain) {
  std::shared_ptr<Tenant> dropped;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    std::shared_ptr<const Table> old = table_.load(std::memory_order_acquire);
    auto it = old->find(id);
    if (it == old->end()) {
      return Status::NotFound("tenant '" + id + "' is not registered");
    }
    dropped = it->second;
    auto next = std::make_shared<Table>(*old);
    next->erase(id);
    table_.store(std::shared_ptr<const Table>(std::move(next)),
                 std::memory_order_release);
  }
  // Drain OUTSIDE write_mu_: a tenant mid-publication must not block
  // unrelated creates/drops, and Drain can take publisher-thread time.
  if (drain) dropped->Drain();
  return Status::OK();
}

std::vector<std::shared_ptr<Tenant>> TenantRegistry::List() const {
  std::shared_ptr<const Table> table = table_.load(std::memory_order_acquire);
  std::vector<std::shared_ptr<Tenant>> tenants;
  tenants.reserve(table->size());
  for (const auto& [id, tenant] : *table) tenants.push_back(tenant);
  std::sort(tenants.begin(), tenants.end(),
            [](const std::shared_ptr<Tenant>& a,
               const std::shared_ptr<Tenant>& b) { return a->id() < b->id(); });
  return tenants;
}

size_t TenantRegistry::size() const {
  return table_.load(std::memory_order_acquire)->size();
}

}  // namespace tenant
}  // namespace inflex
