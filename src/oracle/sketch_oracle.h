#ifndef INFLEX_ORACLE_SKETCH_ORACLE_H_
#define INFLEX_ORACLE_SKETCH_ORACLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "oracle/spread_oracle.h"

namespace inflex {
namespace oracle {

/// \brief SKIM-style backend (Cohen, Delling, Pajor & Werneck 2014): combined
/// bottom-k reachability sketches over W live-edge instances, with
/// sketch-estimated lazy greedy and exact residual-coverage commits.
///
/// The amortizable piece is the *universe*: per-(instance, arc) uniform
/// thresholds (arc a is live in instance w iff U[w][a] < p_a(γ), so one draw
/// serves every topic mixture) plus per-(instance, node) pair ranks and the
/// rank-sorted processing order. It is built once per graph generation —
/// eagerly by Prepare() (the IndexMaintainer warms it at construction so the
/// build never lands in an admit→publish window), or lazily on the first
/// SelectSeeds otherwise — then shared read-only by every index-point
/// precompute and republished RCU-style by Prepare(): readers pin the
/// shared_ptr they loaded, a rebuild swaps the atomic, nobody blocks.
///
/// Per item, SelectSeeds decides each arc's liveness inline against the
/// item's Eq. 1 probabilities (the W live subgraphs are never materialized),
/// builds each node's bottom-k sketch in one pass over pairs in increasing
/// rank order (reverse BFS, pruned at full sketches — exact bottom-k by the
/// containment argument), then runs lazy greedy in estimate-then-verify
/// style: sketch estimates (error ~1/sqrt(sketch_k)) only prioritize the
/// heap, and every candidate surfacing at the top is sharpened with an
/// exact residual gain before acceptance. Selection is therefore exact
/// greedy on the W-realization objective — sketch noise costs extra heap
/// pops, not seed quality — which is why quality tracks CELF++
/// (bench-gated at ≥ 0.95×).
class SketchOracle final : public SpreadOracle {
 public:
  SketchOracle(const graph::TopicGraph* graph,
               const SpreadOracleOptions& options)
      : SpreadOracle(graph, options) {}

  OracleBackend backend() const override { return OracleBackend::kSketch; }

  Result<im::SeedSelectionResult> SelectSeeds(
      const simplex::TopicDistribution& weights, size_t k,
      uint64_t salt) override;

  /// Rebuilds the universe and publishes it RCU-style. In-flight SelectSeeds
  /// calls finish on the universe they pinned.
  Status Prepare() override;

  /// Number of universe builds so far (tests assert the build is shared
  /// across SelectSeeds calls rather than redone per item).
  size_t universe_builds() const {
    return builds_.load(std::memory_order_relaxed);
  }

 private:
  /// The shared randomness. Immutable after construction.
  struct Universe {
    size_t num_instances = 0;
    /// U[w·m + a] ∈ [0,1): arc a is live in instance w iff U < p_a(γ).
    std::vector<float> arc_thresholds;
    /// rank[w·n + v] ∈ (0,1]: the pair (w, v)'s rank for bottom-k sketches.
    std::vector<double> pair_rank;
    /// All W·n pair ids sorted by ascending rank (ties by id).
    std::vector<uint32_t> pair_order;
  };

  /// Returns the current universe, building and publishing it on first use.
  Result<std::shared_ptr<const Universe>> GetOrBuildUniverse();
  std::shared_ptr<const Universe> BuildUniverse() const;

  std::atomic<std::shared_ptr<const Universe>> universe_;
  std::mutex build_mu_;  // serializes builders, never held by readers
  std::atomic<size_t> builds_{0};
};

}  // namespace oracle
}  // namespace inflex

#endif  // INFLEX_ORACLE_SKETCH_ORACLE_H_
