#ifndef INFLEX_ORACLE_RIS_ORACLE_H_
#define INFLEX_ORACLE_RIS_ORACLE_H_

#include "oracle/spread_oracle.h"

namespace inflex {
namespace oracle {

/// \brief RIS/TIM backend: materialize Eq. 1 arc probabilities for the item's
/// topic mixture, then SelectSeedsRis — RR-set sampling plus lazy greedy
/// maximum coverage with deterministic near-tie ordering (coverage ties break
/// toward the smaller node id, so admission replays are bit-identical).
/// Stateless across calls; `salt` shifts the sampling seed per admission
/// ticket.
class RisOracle final : public SpreadOracle {
 public:
  RisOracle(const graph::TopicGraph* graph, const SpreadOracleOptions& options)
      : SpreadOracle(graph, options) {}

  OracleBackend backend() const override { return OracleBackend::kRis; }

  Result<im::SeedSelectionResult> SelectSeeds(
      const simplex::TopicDistribution& weights, size_t k,
      uint64_t salt) override;
};

}  // namespace oracle
}  // namespace inflex

#endif  // INFLEX_ORACLE_RIS_ORACLE_H_
