#include "oracle/ris_oracle.h"

#include "im/ris.h"

namespace inflex {
namespace oracle {

Result<im::SeedSelectionResult> RisOracle::SelectSeeds(
    const simplex::TopicDistribution& weights, size_t k, uint64_t salt) {
  INFLEX_RETURN_NOT_OK(ValidateRequest(weights, k));
  const graph::ArcProbabilities probs = graph().ItemArcProbabilities(weights);
  im::RisOptions ropts;
  ropts.num_rr_sets = options().num_rr_sets;  // 0: SelectSeedsRis picks 64·n
  ropts.seed = options().seed + salt;
  return im::SelectSeedsRis(graph(), probs, k, ropts);
}

}  // namespace oracle
}  // namespace inflex
